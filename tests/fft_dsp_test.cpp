//===- tests/fft_dsp_test.cpp - Windows, convolution, bitonic routing -----===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Convolution.h"
#include "fft/ReferenceDft.h"
#include "fft/Window.h"
#include "permute/BitonicNetwork.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace fft3d;

//===----------------------------------------------------------------------===//
// Window
//===----------------------------------------------------------------------===//

TEST(Window, RectangularIsUnity) {
  const Window W(WindowKind::Rectangular, 64);
  for (std::uint64_t I = 0; I != 64; ++I)
    EXPECT_DOUBLE_EQ(W.coefficient(I), 1.0);
  EXPECT_DOUBLE_EQ(W.coherentGain(), 1.0);
  EXPECT_DOUBLE_EQ(W.equivalentNoiseBandwidth(), 1.0);
}

TEST(Window, HannProperties) {
  const Window W(WindowKind::Hann, 256);
  EXPECT_NEAR(W.coefficient(0), 0.0, 1e-12);
  EXPECT_NEAR(W.coefficient(255), 0.0, 1e-12);
  // Peak at the center, symmetric.
  EXPECT_NEAR(W.coefficient(127), 1.0, 1e-3);
  for (std::uint64_t I = 0; I != 128; ++I)
    EXPECT_NEAR(W.coefficient(I), W.coefficient(255 - I), 1e-12);
  // Textbook values: CG ~= 0.5, ENBW ~= 1.5 bins.
  EXPECT_NEAR(W.coherentGain(), 0.5, 0.01);
  EXPECT_NEAR(W.equivalentNoiseBandwidth(), 1.5, 0.02);
}

TEST(Window, HammingAndBlackmanTextbookFigures) {
  const Window Hm(WindowKind::Hamming, 1024);
  EXPECT_NEAR(Hm.coherentGain(), 0.54, 0.01);
  EXPECT_NEAR(Hm.equivalentNoiseBandwidth(), 1.36, 0.02);
  const Window Bk(WindowKind::Blackman, 1024);
  EXPECT_NEAR(Bk.coherentGain(), 0.42, 0.01);
  EXPECT_NEAR(Bk.equivalentNoiseBandwidth(), 1.73, 0.03);
}

TEST(Window, ReducesSpectralLeakage) {
  // An off-bin tone leaks everywhere with a rectangular window; Hann
  // must push distant sidelobes down by orders of magnitude.
  const std::uint64_t N = 256;
  std::vector<CplxD> Rect(N), Hann(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    const double Phase = 2.0 * std::numbers::pi * 10.5 *
                         static_cast<double>(I) / N;
    Rect[I] = Hann[I] = CplxD(std::cos(Phase), std::sin(Phase));
  }
  Window(WindowKind::Hann, N).apply(Hann);
  const std::vector<CplxD> SRect = referenceDft(Rect);
  const std::vector<CplxD> SHann = referenceDft(Hann);
  // Compare leakage far from the tone (bin 100).
  const double LeakRect = std::abs(SRect[100]);
  const double LeakHann = std::abs(SHann[100]);
  EXPECT_GT(LeakRect, 50.0 * LeakHann);
}

TEST(Window, AppliesToAllTypes) {
  const Window W(WindowKind::Hamming, 8);
  std::vector<double> D(8, 2.0);
  std::vector<CplxF> F(8, CplxF(2.0f, 0.0f));
  W.apply(D);
  W.apply(F);
  for (std::uint64_t I = 0; I != 8; ++I) {
    EXPECT_NEAR(D[I], 2.0 * W.coefficient(I), 1e-12);
    EXPECT_NEAR(F[I].real(), 2.0 * W.coefficient(I), 1e-5);
  }
}

//===----------------------------------------------------------------------===//
// Convolution
//===----------------------------------------------------------------------===//

TEST(Convolution, MatchesDirectOracle) {
  Rng R(9);
  for (const std::size_t N : {8ull, 32ull, 128ull}) {
    std::vector<CplxD> A(N), B(N);
    for (std::size_t I = 0; I != N; ++I) {
      A[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
      B[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    }
    const auto Fast = circularConvolve(A, B);
    const auto Slow = circularConvolveDirect(A, B);
    EXPECT_LT(maxAbsDiff(Fast, Slow), 1e-9 * N);
  }
}

TEST(Convolution, DeltaIsIdentity) {
  std::vector<CplxD> A = {CplxD(1, 2), CplxD(3, 4), CplxD(5, 6),
                          CplxD(7, 8)};
  std::vector<CplxD> Delta(4, CplxD(0, 0));
  Delta[0] = CplxD(1, 0);
  const auto Out = circularConvolve(A, Delta);
  EXPECT_LT(maxAbsDiff(Out, A), 1e-12);
}

TEST(Convolution, ShiftKernelRotates) {
  std::vector<CplxD> A = {CplxD(1, 0), CplxD(2, 0), CplxD(3, 0),
                          CplxD(4, 0)};
  std::vector<CplxD> Shift(4, CplxD(0, 0));
  Shift[1] = CplxD(1, 0);
  const auto Out = circularConvolve(A, Shift);
  const std::vector<CplxD> Expected = {CplxD(4, 0), CplxD(1, 0), CplxD(2, 0),
                                       CplxD(3, 0)};
  EXPECT_LT(maxAbsDiff(Out, Expected), 1e-12);
}

TEST(Convolution, TwoDimensionalShift) {
  Matrix Img(4, 4);
  for (std::uint64_t R = 0; R != 4; ++R)
    for (std::uint64_t C = 0; C != 4; ++C)
      Img.at(R, C) = CplxF(static_cast<float>(R * 4 + C), 0.0f);
  Matrix Kernel(4, 4);
  Kernel.at(1, 0) = CplxF(1, 0); // Shift down one row.
  const Matrix Out = circularConvolve2d(Img, Kernel);
  for (std::uint64_t R = 0; R != 4; ++R)
    for (std::uint64_t C = 0; C != 4; ++C)
      EXPECT_NEAR(std::abs(widen(Out.at(R, C)) -
                           widen(Img.at((R + 3) % 4, C))),
                  0.0, 1e-4);
}

TEST(Convolution, RejectsShapeMismatch) {
  const std::vector<CplxD> A(8), B(16);
  EXPECT_DEATH(circularConvolve(A, B), "equal length");
}

//===----------------------------------------------------------------------===//
// BitonicNetwork
//===----------------------------------------------------------------------===//

TEST(BitonicNetwork, ResourceCountsMatchBatcher) {
  // W/2 comparators per stage, log2(W)(log2(W)+1)/2 stages.
  for (const unsigned W : {2u, 8u, 64u}) {
    const BitonicNetwork Net(W);
    const unsigned Log = static_cast<unsigned>(std::log2(W));
    EXPECT_EQ(Net.stageCount(), Log * (Log + 1) / 2);
    EXPECT_EQ(Net.comparatorCount(),
              std::uint64_t(W) / 2 * Net.stageCount());
  }
}

TEST(BitonicNetwork, RealizesStructuredPermutations) {
  const BitonicNetwork Net(16);
  std::vector<int> In(16);
  std::iota(In.begin(), In.end(), 100);
  for (const auto &P :
       {Permutation::identity(16), Permutation::stride(16, 4),
        Permutation::digitReversal(16, 2), Permutation::transpose(4, 4)}) {
    EXPECT_EQ(Net.route(In, P), P.apply(In));
  }
}

TEST(BitonicNetwork, RealizesRandomPermutations) {
  const BitonicNetwork Net(64);
  std::vector<int> In(64);
  std::iota(In.begin(), In.end(), 0);
  Rng R(31);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<std::uint64_t> Map(64);
    std::iota(Map.begin(), Map.end(), 0u);
    for (std::uint64_t I = 64; I > 1; --I)
      std::swap(Map[I - 1], Map[R.nextBelow(I)]);
    const Permutation P{Map};
    EXPECT_EQ(Net.route(In, P), P.apply(In)) << "trial " << Trial;
  }
}

TEST(BitonicNetwork, RejectsBadWidth) {
  EXPECT_DEATH(BitonicNetwork(12), "power of two");
  EXPECT_DEATH(BitonicNetwork(1), "power of two");
}
