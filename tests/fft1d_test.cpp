//===- tests/fft1d_test.cpp - 1D FFT correctness and properties -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft1d.h"
#include "fft/RadixBlock.h"
#include "fft/ReferenceDft.h"
#include "fft/Twiddle.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fft3d;

namespace {

std::vector<CplxD> randomSignal(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<CplxD> Signal(N);
  for (auto &Value : Signal)
    Value = CplxD(R.nextDouble(-1.0, 1.0), R.nextDouble(-1.0, 1.0));
  return Signal;
}

double l2Norm(const std::vector<CplxD> &V) {
  double Sum = 0.0;
  for (const CplxD &Value : V)
    Sum += std::norm(Value);
  return std::sqrt(Sum);
}

} // namespace

//===----------------------------------------------------------------------===//
// Twiddle / radix blocks
//===----------------------------------------------------------------------===//

TEST(Twiddle, KnownValues) {
  EXPECT_NEAR(std::abs(twiddle(4, 0) - CplxD(1, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(twiddle(4, 1) - CplxD(0, -1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(twiddle(4, 2) - CplxD(-1, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(twiddle(8, 1) - CplxD(std::sqrt(0.5), -std::sqrt(0.5))),
              0.0, 1e-15);
}

TEST(Twiddle, RomIsPeriodic) {
  const TwiddleRom Rom(16);
  EXPECT_EQ(Rom.size(), 16u);
  EXPECT_NEAR(std::abs(Rom.root(17) - Rom.root(1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(Rom.conjRoot(1) - std::conj(Rom.root(1))), 0.0, 1e-15);
  EXPECT_EQ(Rom.romBytes(), 16u * 8);
}

TEST(RadixBlock, Radix2IsTwoPointDft) {
  CplxD A(1, 2), B(3, -1);
  radix2Butterfly(A, B);
  EXPECT_NEAR(std::abs(A - CplxD(4, 1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(B - CplxD(-2, 3)), 0.0, 1e-15);
}

TEST(RadixBlock, Radix4IsFourPointDft) {
  std::array<CplxD, 4> X = {CplxD(1, 0), CplxD(2, 1), CplxD(0, -1),
                            CplxD(-1, 3)};
  const std::vector<CplxD> Ref =
      referenceDft({X[0], X[1], X[2], X[3]});
  radix4Butterfly(X);
  for (int I = 0; I != 4; ++I)
    EXPECT_NEAR(std::abs(X[I] - Ref[I]), 0.0, 1e-12) << I;
}

TEST(RadixBlock, Radix4InverseIsConjugateTransform) {
  std::array<CplxD, 4> X = {CplxD(1, 0), CplxD(2, 1), CplxD(0, -1),
                            CplxD(-1, 3)};
  std::array<CplxD, 4> Y = X;
  radix4ButterflyInverse(Y);
  const std::vector<CplxD> Ref =
      referenceDft({X[0], X[1], X[2], X[3]}, /*Inverse=*/true);
  for (int I = 0; I != 4; ++I)
    EXPECT_NEAR(std::abs(Y[I] - Ref[I] * 4.0), 0.0, 1e-12) << I;
}

TEST(RadixBlock, CostModel) {
  EXPECT_EQ(radixBlockCost(2).realAddSub(), 4u);
  EXPECT_EQ(radixBlockCost(4).realAddSub(), 16u);
}

//===----------------------------------------------------------------------===//
// Fft1d vs the reference DFT
//===----------------------------------------------------------------------===//

class Fft1dSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fft1dSizes, ForwardMatchesReference) {
  const std::uint64_t N = GetParam();
  const Fft1d Plan(N);
  std::vector<CplxD> Data = randomSignal(N, N);
  const std::vector<CplxD> Ref = referenceDft(Data);
  Plan.forward(Data);
  EXPECT_LT(maxAbsDiff(Data, Ref), 1e-9 * static_cast<double>(N));
}

TEST_P(Fft1dSizes, InverseMatchesReference) {
  const std::uint64_t N = GetParam();
  const Fft1d Plan(N);
  std::vector<CplxD> Data = randomSignal(N, N + 1);
  const std::vector<CplxD> Ref = referenceDft(Data, /*Inverse=*/true);
  Plan.inverse(Data);
  EXPECT_LT(maxAbsDiff(Data, Ref), 1e-9 * static_cast<double>(N));
}

TEST_P(Fft1dSizes, RoundTripRestoresInput) {
  const std::uint64_t N = GetParam();
  const Fft1d Plan(N);
  const std::vector<CplxD> Original = randomSignal(N, 7 * N);
  std::vector<CplxD> Data = Original;
  Plan.forward(Data);
  Plan.inverse(Data);
  EXPECT_LT(maxAbsDiff(Data, Original), 1e-10 * static_cast<double>(N));
}

TEST_P(Fft1dSizes, ParsevalHolds) {
  const std::uint64_t N = GetParam();
  const Fft1d Plan(N);
  std::vector<CplxD> Data = randomSignal(N, 3 * N);
  const double TimeNorm = l2Norm(Data);
  Plan.forward(Data);
  const double FreqNorm = l2Norm(Data) / std::sqrt(static_cast<double>(N));
  EXPECT_NEAR(FreqNorm, TimeNorm, 1e-9 * TimeNorm * N);
}

TEST_P(Fft1dSizes, LinearityHolds) {
  const std::uint64_t N = GetParam();
  const Fft1d Plan(N);
  std::vector<CplxD> A = randomSignal(N, 11);
  std::vector<CplxD> B = randomSignal(N, 13);
  const CplxD Alpha(0.5, -1.25);
  std::vector<CplxD> Mix(N);
  for (std::uint64_t I = 0; I != N; ++I)
    Mix[I] = A[I] + Alpha * B[I];
  Plan.forward(A);
  Plan.forward(B);
  Plan.forward(Mix);
  double Max = 0.0;
  for (std::uint64_t I = 0; I != N; ++I)
    Max = std::max(Max, std::abs(Mix[I] - (A[I] + Alpha * B[I])));
  EXPECT_LT(Max, 1e-9 * static_cast<double>(N));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Fft1dSizes,
                         ::testing::Values<std::uint64_t>(2, 4, 8, 16, 32, 64,
                                                          128, 256, 512, 1024,
                                                          2048));

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  const Fft1d Plan(64);
  std::vector<CplxD> Data(64, CplxD(0, 0));
  Data[0] = CplxD(1, 0);
  Plan.forward(Data);
  for (const CplxD &Value : Data)
    EXPECT_NEAR(std::abs(Value - CplxD(1, 0)), 0.0, 1e-12);
}

TEST(Fft1d, ShiftedImpulseGivesTwiddleRamp) {
  const std::uint64_t N = 32;
  const Fft1d Plan(N);
  std::vector<CplxD> Data(N, CplxD(0, 0));
  Data[1] = CplxD(1, 0);
  Plan.forward(Data);
  for (std::uint64_t K = 0; K != N; ++K)
    EXPECT_NEAR(std::abs(Data[K] - twiddle(N, K)), 0.0, 1e-12);
}

TEST(Fft1d, ConstantGivesDcSpike) {
  const Fft1d Plan(128);
  std::vector<CplxD> Data(128, CplxD(2, 0));
  Plan.forward(Data);
  EXPECT_NEAR(std::abs(Data[0] - CplxD(256, 0)), 0.0, 1e-9);
  for (std::uint64_t K = 1; K != 128; ++K)
    EXPECT_NEAR(std::abs(Data[K]), 0.0, 1e-9);
}

TEST(Fft1d, StagePlanMatchesSize) {
  const Fft1d P4096(4096); // 4^6
  EXPECT_FALSE(P4096.hasRadix2Stage());
  EXPECT_EQ(P4096.numRadix4Stages(), 6u);
  const Fft1d P2048(2048); // 2 * 4^5
  EXPECT_TRUE(P2048.hasRadix2Stage());
  EXPECT_EQ(P2048.numRadix4Stages(), 5u);
}

TEST(Fft1d, SinglePrecisionPathTracksDouble) {
  const std::uint64_t N = 256;
  const Fft1d Plan(N);
  const std::vector<CplxD> Wide = randomSignal(N, 99);
  std::vector<CplxF> NarrowData(N);
  for (std::uint64_t I = 0; I != N; ++I)
    NarrowData[I] = narrow(Wide[I]);
  std::vector<CplxD> WideData = Wide;
  Plan.forward(WideData);
  Plan.forward(NarrowData);
  double Max = 0.0;
  for (std::uint64_t I = 0; I != N; ++I)
    Max = std::max(Max, std::abs(widen(NarrowData[I]) - WideData[I]));
  // Single-precision storage: expect ~1e-5 relative at this size.
  EXPECT_LT(Max, 1e-3);
}

//===----------------------------------------------------------------------===//
// Four-step (Bailey) FFT
//===----------------------------------------------------------------------===//

#include "fft/FourStep.h"

TEST(FourStep, MatchesDirectFftAcrossFactorizations) {
  for (const auto &[N1, N2] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {2, 2}, {4, 8}, {8, 4}, {16, 16}, {4, 64}, {64, 4}}) {
    const std::uint64_t N = N1 * N2;
    std::vector<CplxD> Data = randomSignal(N, N1 * 1000 + N2);
    std::vector<CplxD> Ref = Data;
    Fft1d(N).forward(Ref);
    fftFourStep(Data, N1, N2);
    EXPECT_LT(maxAbsDiff(Data, Ref), 1e-9 * static_cast<double>(N))
        << N1 << "x" << N2;
  }
}

TEST(FourStep, AutoSplitMatches) {
  for (const std::uint64_t N : {16ull, 128ull, 1024ull}) {
    std::vector<CplxD> Data = randomSignal(N, N + 3);
    std::vector<CplxD> Ref = Data;
    Fft1d(N).forward(Ref);
    fftFourStep(Data);
    EXPECT_LT(maxAbsDiff(Data, Ref), 1e-9 * static_cast<double>(N));
  }
}

TEST(FourStep, InverseRoundTrips) {
  const std::vector<CplxD> Original = randomSignal(256, 5);
  std::vector<CplxD> Data = Original;
  fftFourStep(Data, 16, 16);
  fftFourStep(Data, 16, 16, /*Inverse=*/true);
  EXPECT_LT(maxAbsDiff(Data, Original), 1e-10 * 256);
}

TEST(FourStep, InverseUndoesDirectForward) {
  // Cross-engine: four-step inverse must undo Fft1d's forward.
  const std::vector<CplxD> Original = randomSignal(512, 6);
  std::vector<CplxD> Data = Original;
  Fft1d(512).forward(Data);
  fftFourStep(Data, 32, 16, /*Inverse=*/true);
  EXPECT_LT(maxAbsDiff(Data, Original), 1e-10 * 512);
}

TEST(FourStep, RejectsBadFactors) {
  std::vector<CplxD> Data(12);
  EXPECT_DEATH(fftFourStep(Data, 3, 4), "powers of two");
  std::vector<CplxD> Data2(8);
  EXPECT_DEATH(fftFourStep(Data2, 4, 4), "N1 \\* N2");
}
