//===- tests/serve_workload_test.cpp - Request generators -----------------===//
//
// Part of the fft3d project.
//
// The workload layer's contracts: the streaming Poisson source replays
// byte-identically and matches its materialized twin, tenanting extends
// the draw sequence without disturbing it, the closed loop accounts
// think time per client, and the job-trace parser reports malformed
// input with line-numbered diagnostics.
//
//===----------------------------------------------------------------------===//

#include "serve/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace fft3d;

namespace {

/// Shared fast service model: small simulation budget, default device.
ServiceModel &model() {
  static ServiceModel Model(MemoryConfig(), /*MaxSimBytes=*/2ull << 20,
                            /*MaxSimOps=*/10000);
  return Model;
}

std::vector<JobRequest> drain(ArrivalStream &Stream) {
  std::vector<JobRequest> Jobs;
  JobRequest Job;
  while (Stream.next(Job))
    Jobs.push_back(Job);
  return Jobs;
}

void expectJobsEqual(const JobRequest &A, const JobRequest &B) {
  EXPECT_EQ(A.Id, B.Id);
  EXPECT_EQ(A.N, B.N);
  EXPECT_EQ(A.Frames, B.Frames);
  EXPECT_EQ(A.Precision, B.Precision);
  EXPECT_EQ(A.Priority, B.Priority);
  EXPECT_EQ(A.Arrival, B.Arrival);
  EXPECT_EQ(A.Deadline, B.Deadline);
  EXPECT_EQ(A.Tenant, B.Tenant);
}

} // namespace

//===----------------------------------------------------------------------===//
// Poisson arrival stream
//===----------------------------------------------------------------------===//

TEST(PoissonStream, ResetReplaysTheIdenticalStream) {
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 200, 120.0, 17,
                              model(), 5);
  const std::vector<JobRequest> First = drain(Stream);
  ASSERT_EQ(First.size(), 200u);
  EXPECT_EQ(Stream.produced(), 200u);
  // Exhausted: further pulls keep returning false.
  JobRequest Dummy;
  EXPECT_FALSE(Stream.next(Dummy));

  Stream.reset();
  const std::vector<JobRequest> Second = drain(Stream);
  ASSERT_EQ(Second.size(), First.size());
  for (std::size_t I = 0; I != First.size(); ++I)
    expectJobsEqual(First[I], Second[I]);
}

TEST(PoissonStream, StreamedAndMaterializedTracesAreByteIdentical) {
  // generatePoissonTrace is the stream drained into a vector: the two
  // paths must agree on every field of every job, so simulators that
  // stream and tools that materialize see the same workload.
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  PoissonArrivalStream Stream(Mix, 150, 90.0, 42, model());
  const std::vector<JobRequest> Streamed = drain(Stream);
  const std::vector<JobRequest> Materialized =
      generatePoissonTrace(Mix, 150, 90.0, 42, model());
  ASSERT_EQ(Streamed.size(), Materialized.size());
  for (std::size_t I = 0; I != Streamed.size(); ++I)
    expectJobsEqual(Streamed[I], Materialized[I]);
}

TEST(PoissonStream, StreamInvariantsHold) {
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 300, 200.0, 7,
                              model(), 6);
  const std::vector<JobRequest> Jobs = drain(Stream);
  ASSERT_EQ(Jobs.size(), 300u);
  Picos Last = 0;
  for (std::size_t I = 0; I != Jobs.size(); ++I) {
    // Ids are 1.. in arrival order; arrivals never go backwards.
    EXPECT_EQ(Jobs[I].Id, I + 1);
    EXPECT_GE(Jobs[I].Arrival, Last);
    Last = Jobs[I].Arrival;
    // Tenants are drawn in [1, NumTenants].
    EXPECT_GE(Jobs[I].Tenant, 1u);
    EXPECT_LE(Jobs[I].Tenant, 6u);
    // Mixed-workload templates all carry deadlines past the arrival.
    EXPECT_TRUE(Jobs[I].hasDeadline());
    EXPECT_GT(Jobs[I].Deadline, Jobs[I].Arrival);
  }
}

TEST(PoissonStream, TenantDrawFollowsTheGapAndTemplateDraws) {
  // Per job the stream draws gap, then template, then tenant. The
  // tenant draw consumes generator state, so a tenanted stream shares
  // only its FIRST job with the untenanted one - after that the
  // sequences intentionally diverge. NumTenants = 0 skips the draw
  // entirely, which is what keeps the pre-tenant trace format
  // reproducible (covered by the byte-identity test above).
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  PoissonArrivalStream Plain(Mix, 100, 150.0, 11, model(), 0);
  PoissonArrivalStream Tenanted(Mix, 100, 150.0, 11, model(), 4);
  const std::vector<JobRequest> A = drain(Plain);
  const std::vector<JobRequest> B = drain(Tenanted);
  ASSERT_EQ(A.size(), B.size());
  // Job 1: gap and template drawn before any tenant draw, so identical.
  EXPECT_EQ(A[0].Arrival, B[0].Arrival);
  EXPECT_EQ(A[0].N, B[0].N);
  EXPECT_EQ(A[0].Precision, B[0].Precision);
  for (std::size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Tenant, 0u);
    EXPECT_GE(B[I].Tenant, 1u);
    EXPECT_LE(B[I].Tenant, 4u);
  }
}

//===----------------------------------------------------------------------===//
// Closed loop
//===----------------------------------------------------------------------===//

TEST(ClosedLoop, EveryClientThinksBeforeEveryRequest) {
  const Picos Think = 5 * PicosPerMilli;
  ClosedLoopWorkload Load(mixedWorkloadTemplates(), /*NumClients=*/4,
                          /*JobsPerClient=*/3, Think, 23, model());
  EXPECT_EQ(Load.totalJobs(), 12u);

  // Initial requests: one per client, each after a think-time pause
  // (exponential, so strictly positive with this seed's draws, and at
  // time >= 0 regardless).
  std::vector<JobRequest> Initial = Load.initialJobs();
  ASSERT_EQ(Initial.size(), 4u);
  for (const JobRequest &J : Initial) {
    EXPECT_GE(J.ClientId, 1u);
    EXPECT_LE(J.ClientId, 4u);
  }

  // Responses trigger exactly one follow-up per client until its budget
  // is spent, and the follow-up arrival is after the response: arrivals
  // self-throttle to response + think, the closed-loop property.
  std::uint64_t Issued = Initial.size();
  const Picos ResponseAt = 100 * PicosPerMilli;
  for (const JobRequest &J : Initial) {
    const std::vector<JobRequest> Next = Load.onResponse(J, ResponseAt);
    ASSERT_EQ(Next.size(), 1u);
    EXPECT_EQ(Next[0].ClientId, J.ClientId);
    EXPECT_GE(Next[0].Arrival, ResponseAt);
    ++Issued;
  }
  // Third round exhausts each client's three jobs.
  for (const JobRequest &J : Initial) {
    JobRequest Probe = J;
    const std::vector<JobRequest> Next =
        Load.onResponse(Probe, 2 * ResponseAt);
    ASSERT_EQ(Next.size(), 1u);
    ++Issued;
    // The budget is spent: a fourth response yields nothing.
    EXPECT_TRUE(Load.onResponse(Probe, 3 * ResponseAt).empty());
  }
  EXPECT_EQ(Issued, Load.totalJobs());
}

TEST(ClosedLoop, ResetReplaysClientStreamsIdentically) {
  ClosedLoopWorkload Load(mixedWorkloadTemplates(), 3, 2,
                          10 * PicosPerMilli, 31, model());
  const std::vector<JobRequest> A = Load.initialJobs();
  const std::vector<JobRequest> FollowA =
      Load.onResponse(A[0], 50 * PicosPerMilli);
  Load.reset();
  const std::vector<JobRequest> B = Load.initialJobs();
  const std::vector<JobRequest> FollowB =
      Load.onResponse(B[0], 50 * PicosPerMilli);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Arrival, B[I].Arrival);
    EXPECT_EQ(A[I].N, B[I].N);
    EXPECT_EQ(A[I].ClientId, B[I].ClientId);
  }
  ASSERT_EQ(FollowA.size(), FollowB.size());
  EXPECT_EQ(FollowA[0].Arrival, FollowB[0].Arrival);
  EXPECT_EQ(FollowA[0].N, FollowB[0].N);
}

//===----------------------------------------------------------------------===//
// Job-trace parsing
//===----------------------------------------------------------------------===//

TEST(JobTraceParser, ParsesTheFullGrammar) {
  const std::string Text =
      "# fixture: two jobs, all attributes\n"
      "\n"
      "job at 0 n 2048\n"
      "job at 1.5 n 4096 frames 2 fp16 prio 3 deadline 250 tenant 9\n";
  std::vector<JobRequest> Jobs;
  std::string Error;
  ASSERT_TRUE(parseJobTrace(Text, Jobs, &Error)) << Error;
  ASSERT_EQ(Jobs.size(), 2u);

  EXPECT_EQ(Jobs[0].Id, 1u);
  EXPECT_EQ(Jobs[0].Arrival, 0u);
  EXPECT_EQ(Jobs[0].N, 2048u);
  EXPECT_EQ(Jobs[0].Frames, 1u);
  EXPECT_EQ(Jobs[0].Precision, JobPrecision::Fp32);
  EXPECT_FALSE(Jobs[0].hasDeadline());
  EXPECT_EQ(Jobs[0].Tenant, 0u);

  EXPECT_EQ(Jobs[1].Id, 2u);
  EXPECT_EQ(Jobs[1].Arrival, static_cast<Picos>(1.5 * PicosPerMilli));
  EXPECT_EQ(Jobs[1].N, 4096u);
  EXPECT_EQ(Jobs[1].Frames, 2u);
  EXPECT_EQ(Jobs[1].Precision, JobPrecision::Fp16);
  EXPECT_EQ(Jobs[1].Priority, 3u);
  EXPECT_EQ(Jobs[1].Deadline, 250 * PicosPerMilli);
  EXPECT_EQ(Jobs[1].Tenant, 9u);
}

TEST(JobTraceParser, DiagnosticsCarryTheLineNumber) {
  // Every rejection names the offending line - the parser's contract for
  // hand-written trace files. Each case also leaves Out untouched.
  const struct {
    const char *Text;
    const char *Line;
    const char *Fragment;
  } Cases[] = {
      {"job at 0 n 512\nrun at 1 n 512\n", "line 2:", "expected 'job'"},
      {"job at 0 n 512\njob at 1 n\n", "line 2:", "missing its value"},
      {"job at 0 n 1000\n", "line 1:", "power of two"},
      {"job at 0 n 0\n", "line 1:", "power of two"},
      {"job n 512\n", "line 1:", "'at <ms>' arrival"},
      {"job at 5\n", "line 1:", "'n <size>'"},
      {"job at 0 n 512 frames 0\n", "line 1:", "frames"},
      {"job at 0 n 512 speed 9\n", "line 1:", "unknown job attribute"},
      {"job at 9 n 512\njob at 3 n 512\n", "line 2:", "goes backwards"},
      {"job at 10 n 512 deadline 10\n", "line 1:",
       "deadline must be after"},
      {"# comment\n\njob at 0 n 512\njob at bad n 512\n", "line 4:",
       "at <ms>"},
  };
  for (const auto &Case : Cases) {
    std::vector<JobRequest> Jobs{JobRequest{}};
    std::string Error;
    EXPECT_FALSE(parseJobTrace(Case.Text, Jobs, &Error)) << Case.Text;
    EXPECT_NE(Error.find(Case.Line), std::string::npos)
        << "'" << Error << "' for " << Case.Text;
    EXPECT_NE(Error.find(Case.Fragment), std::string::npos)
        << "'" << Error << "' for " << Case.Text;
    // The output vector is untouched on failure.
    ASSERT_EQ(Jobs.size(), 1u);
  }
}

TEST(JobTraceParser, CommentsAndBlankLinesCountTowardLineNumbers) {
  std::vector<JobRequest> Jobs;
  std::string Error;
  // An empty / comment-only text parses to an empty trace.
  EXPECT_TRUE(parseJobTrace("# nothing here\n\n", Jobs, &Error)) << Error;
  EXPECT_TRUE(Jobs.empty());
  // A trailing comment on a job line is stripped, not parsed.
  ASSERT_TRUE(
      parseJobTrace("job at 0 n 512 # interactive probe\n", Jobs, &Error))
      << Error;
  ASSERT_EQ(Jobs.size(), 1u);
  EXPECT_EQ(Jobs[0].N, 512u);
}
