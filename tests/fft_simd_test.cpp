//===- tests/fft_simd_test.cpp - SIMD kernel dispatch tests ---------------===//
//
// Part of the fft3d project.
//
// The SIMD contract: every supported dispatch level produces bit-
// identical transforms to the scalar reference on finite data (the
// vector kernels replay the same IEEE operations in the same order),
// and unsupported levels fall back cleanly. These tests force each
// level in turn and compare whole transforms at 0 ulp.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft1d.h"
#include "fft/Fft2d.h"
#include "fft/ReferenceDft.h"
#include "fft/SimdKernels.h"

#include "gtest/gtest.h"

#include <cmath>
#include <random>
#include <vector>

using namespace fft3d;

namespace {

/// Deterministic pseudo-random signal in [-1, 1).
std::vector<CplxD> randomSignal(std::uint64_t N, unsigned Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<CplxD> Data(N);
  for (CplxD &V : Data)
    V = CplxD(Dist(Rng), Dist(Rng));
  return Data;
}

/// Bitwise comparison; 0-ulp means exact bit equality.
void expectBitIdentical(const std::vector<CplxD> &A,
                        const std::vector<CplxD> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].real(), B[I].real()) << "real mismatch at " << I;
    EXPECT_EQ(A[I].imag(), B[I].imag()) << "imag mismatch at " << I;
    EXPECT_EQ(std::signbit(A[I].real()), std::signbit(B[I].real()));
    EXPECT_EQ(std::signbit(A[I].imag()), std::signbit(B[I].imag()));
  }
}

/// Levels this build+CPU can actually run.
std::vector<SimdLevel> supportedLevels() {
  std::vector<SimdLevel> Levels;
  for (SimdLevel L : {SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2,
                      SimdLevel::Neon})
    if (simdLevelSupported(L))
      Levels.push_back(L);
  return Levels;
}

/// Restores the entry dispatch level when a test scope ends.
class LevelGuard {
public:
  LevelGuard() : Saved(activeSimdLevel()) {}
  ~LevelGuard() { setSimdLevel(Saved); }

private:
  SimdLevel Saved;
};

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simdLevelSupported(SimdLevel::Scalar));
  EXPECT_TRUE(simdLevelSupported(detectSimdLevel()));
}

TEST(SimdDispatch, SetLevelClampsToSupported) {
  LevelGuard Guard;
  // Every request resolves to some supported level, never above it.
  for (SimdLevel L : {SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2,
                      SimdLevel::Neon}) {
    const SimdLevel Got = setSimdLevel(L);
    EXPECT_TRUE(simdLevelSupported(Got));
    EXPECT_LE(static_cast<int>(Got), static_cast<int>(L));
    EXPECT_EQ(Got, activeSimdLevel());
  }
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(simdLevelName(SimdLevel::Sse2), "sse2");
  EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
  EXPECT_STREQ(simdLevelName(SimdLevel::Neon), "neon");
}

TEST(SimdDispatch, KernelsForFallsBackToScalar) {
  // kernelsFor never returns a null table, whatever is requested.
  for (SimdLevel L : {SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2,
                      SimdLevel::Neon}) {
    const FftKernels &K = kernelsFor(L);
    EXPECT_NE(K.Radix4Stage, nullptr);
    EXPECT_NE(K.Radix2Combine, nullptr);
  }
}

/// Forward transforms at every supported level match the scalar level
/// bit for bit, across power-of-four and radix-2-split sizes.
TEST(SimdBitIdentity, ForwardMatchesScalarAllSizes) {
  LevelGuard Guard;
  for (std::uint64_t N : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull,
                          256ull, 512ull, 1024ull, 2048ull, 4096ull}) {
    const Fft1d Plan(N);
    const std::vector<CplxD> Input = randomSignal(N, 17 + unsigned(N));

    setSimdLevel(SimdLevel::Scalar);
    std::vector<CplxD> Reference = Input;
    Plan.forward(Reference);

    for (SimdLevel L : supportedLevels()) {
      setSimdLevel(L);
      std::vector<CplxD> Out = Input;
      Plan.forward(Out);
      SCOPED_TRACE(std::string("N=") + std::to_string(N) + " level=" +
                   simdLevelName(L));
      expectBitIdentical(Reference, Out);
    }
  }
}

TEST(SimdBitIdentity, InverseMatchesScalar) {
  LevelGuard Guard;
  for (std::uint64_t N : {8ull, 64ull, 512ull, 2048ull}) {
    const Fft1d Plan(N);
    const std::vector<CplxD> Input = randomSignal(N, 41 + unsigned(N));

    setSimdLevel(SimdLevel::Scalar);
    std::vector<CplxD> Reference = Input;
    Plan.inverse(Reference);

    for (SimdLevel L : supportedLevels()) {
      setSimdLevel(L);
      std::vector<CplxD> Out = Input;
      Plan.inverse(Out);
      SCOPED_TRACE(std::string("N=") + std::to_string(N) + " level=" +
                   simdLevelName(L));
      expectBitIdentical(Reference, Out);
    }
  }
}

/// The dispatched transform still matches the O(N^2) reference DFT to
/// the library's usual tolerance at the best level the CPU offers.
TEST(SimdBitIdentity, BestLevelMatchesReferenceDft) {
  LevelGuard Guard;
  setSimdLevel(detectSimdLevel());
  const std::uint64_t N = 256;
  const Fft1d Plan(N);
  const std::vector<CplxD> Input = randomSignal(N, 99);

  std::vector<CplxD> Fast = Input;
  Plan.forward(Fast);
  const std::vector<CplxD> Slow = referenceDft(Input, /*Inverse=*/false);

  for (std::uint64_t I = 0; I != N; ++I) {
    EXPECT_NEAR(Fast[I].real(), Slow[I].real(), 1e-9 * N);
    EXPECT_NEAR(Fast[I].imag(), Slow[I].imag(), 1e-9 * N);
  }
}

TEST(SimdBitIdentity, RoundTripAtEveryLevel) {
  LevelGuard Guard;
  const std::uint64_t N = 1024;
  const Fft1d Plan(N);
  const std::vector<CplxD> Input = randomSignal(N, 7);
  for (SimdLevel L : supportedLevels()) {
    setSimdLevel(L);
    std::vector<CplxD> Data = Input;
    Plan.forward(Data);
    Plan.inverse(Data);
    SCOPED_TRACE(simdLevelName(L));
    for (std::uint64_t I = 0; I != N; ++I) {
      EXPECT_NEAR(Data[I].real(), Input[I].real(), 1e-12);
      EXPECT_NEAR(Data[I].imag(), Input[I].imag(), 1e-12);
    }
  }
}

/// The convolution theorem's pointwise spectral product matches the
/// scalar kernel bit for bit at every supported level, across lengths
/// that cover full vectors, remainders and the empty product.
TEST(SimdBitIdentity, PointwiseMulMatchesScalarAllLevels) {
  for (std::uint64_t N : {0ull, 1ull, 2ull, 3ull, 5ull, 8ull, 64ull,
                          1023ull, 4096ull}) {
    const std::vector<CplxD> Acc = randomSignal(N, 211 + unsigned(N));
    const std::vector<CplxD> Other = randomSignal(N, 503 + unsigned(N));

    std::vector<CplxD> Reference = Acc;
    kernelsFor(SimdLevel::Scalar)
        .PointwiseMul(Reference.data(), Other.data(), N);

    for (SimdLevel L : supportedLevels()) {
      std::vector<CplxD> Out = Acc;
      kernelsFor(L).PointwiseMul(Out.data(), Other.data(), N);
      SCOPED_TRACE(std::string("N=") + std::to_string(N) + " level=" +
                   simdLevelName(L));
      expectBitIdentical(Reference, Out);
    }
  }
}

/// 2D forward at the best level matches scalar bit for bit - exercises
/// the transpose-based column phase against the same kernels.
TEST(SimdBitIdentity, Fft2dMatchesScalar) {
  LevelGuard Guard;
  const std::uint64_t N = 64;
  const Fft2d Plan(N, N);
  Matrix Input(N, N);
  std::mt19937_64 Rng(123);
  std::uniform_real_distribution<float> Dist(-1.0f, 1.0f);
  for (std::uint64_t R = 0; R != N; ++R)
    for (std::uint64_t C = 0; C != N; ++C)
      Input.at(R, C) = CplxF(Dist(Rng), Dist(Rng));

  setSimdLevel(SimdLevel::Scalar);
  Matrix Reference = Input;
  Plan.forward(Reference);

  for (SimdLevel L : supportedLevels()) {
    setSimdLevel(L);
    Matrix Out = Input;
    Plan.forward(Out);
    SCOPED_TRACE(simdLevelName(L));
    for (std::uint64_t R = 0; R != N; ++R)
      for (std::uint64_t C = 0; C != N; ++C) {
        EXPECT_EQ(Reference.at(R, C).real(), Out.at(R, C).real());
        EXPECT_EQ(Reference.at(R, C).imag(), Out.at(R, C).imag());
      }
  }
}

/// Rectangular matrices take the strided column path; square ones the
/// transpose path. Both must agree with a hand-rolled per-column
/// transform.
TEST(SimdBitIdentity, ColPhaseTransposePathMatchesStrided) {
  const std::uint64_t N = 32;
  const Fft2d Plan(N, N);
  Matrix M(N, N);
  std::mt19937_64 Rng(5);
  std::uniform_real_distribution<float> Dist(-1.0f, 1.0f);
  for (std::uint64_t R = 0; R != N; ++R)
    for (std::uint64_t C = 0; C != N; ++C)
      M.at(R, C) = CplxF(Dist(Rng), Dist(Rng));

  // Hand-rolled rows-then-strided-columns with the same 1D plan; the
  // library's square path transposes instead, and must agree exactly.
  const Fft1d LinePlan(N);
  std::vector<CplxF> Line;
  Matrix Expected2 = M;
  for (std::uint64_t R = 0; R != N; ++R) {
    Expected2.copyRow(R, Line);
    LinePlan.forward(Line);
    Expected2.setRow(R, Line);
  }
  for (std::uint64_t C = 0; C != N; ++C) {
    Expected2.copyCol(C, Line);
    LinePlan.forward(Line);
    Expected2.setCol(C, Line);
  }

  Matrix Out = M;
  Plan.forward(Out);
  for (std::uint64_t R = 0; R != N; ++R)
    for (std::uint64_t C = 0; C != N; ++C) {
      EXPECT_EQ(Out.at(R, C).real(), Expected2.at(R, C).real());
      EXPECT_EQ(Out.at(R, C).imag(), Expected2.at(R, C).imag());
    }
}

/// Blocked transpose is still an exact transpose, including sizes that
/// are not multiples of the tile.
TEST(SimdBitIdentity, BlockedTransposeExact) {
  for (std::uint64_t N : {1ull, 7ull, 32ull, 33ull, 64ull, 100ull}) {
    Matrix M(N, N);
    for (std::uint64_t R = 0; R != N; ++R)
      for (std::uint64_t C = 0; C != N; ++C)
        M.at(R, C) = CplxF(float(R), float(C));
    M.transposeSquare();
    for (std::uint64_t R = 0; R != N; ++R)
      for (std::uint64_t C = 0; C != N; ++C) {
        ASSERT_EQ(M.at(R, C).real(), float(C));
        ASSERT_EQ(M.at(R, C).imag(), float(R));
      }
  }
}

} // namespace
