//===- tests/mem3d_geometry_sweep_test.cpp - Cross-geometry properties ----===//
//
// Part of the fft3d project.
//
// Property tests across device geometries: peak bandwidth must follow
// V * beat / period, sequential streams must approach it, and the
// latency ladder must keep the paper's ordering - for every geometry,
// not just the calibrated default.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

struct GeometryCase {
  unsigned Vaults;
  unsigned Layers;
  unsigned BanksPerLayer;
  std::uint64_t RowBufferBytes;
  unsigned Tsvs;
};

class GeometrySweep : public ::testing::TestWithParam<GeometryCase> {
protected:
  MemoryConfig makeConfig() const {
    MemoryConfig Config;
    const GeometryCase &C = GetParam();
    Config.Geo.NumVaults = C.Vaults;
    Config.Geo.LayersPerVault = C.Layers;
    Config.Geo.BanksPerLayer = C.BanksPerLayer;
    Config.Geo.RowBufferBytes = C.RowBufferBytes;
    Config.Geo.NumTsvsPerVault = C.Tsvs;
    return Config;
  }
};

} // namespace

TEST_P(GeometrySweep, GeometryIsValid) {
  EXPECT_TRUE(makeConfig().Geo.isValid());
}

TEST_P(GeometrySweep, PeakFollowsStructure) {
  const MemoryConfig Config = makeConfig();
  EventQueue Events;
  Memory3D Mem(Events, Config);
  const double Expected = Config.Geo.NumVaults *
                          (Config.Geo.NumTsvsPerVault / 8.0) /
                          picosToNanos(Config.Time.TsvPeriod);
  EXPECT_NEAR(Mem.peakBandwidthGBps(), Expected, 1e-9);
}

TEST_P(GeometrySweep, SequentialStreamApproachesPeak) {
  const MemoryConfig Config = makeConfig();
  EventQueue Events;
  Memory3D Mem(Events, Config);
  const unsigned Count = 16 * Config.Geo.NumVaults;
  Picos Last = 0;
  for (unsigned I = 0; I != Count; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
    Req.Bytes = static_cast<std::uint32_t>(Config.Geo.RowBufferBytes);
    Mem.submit(Req, [&Last](const MemRequest &, Picos At) { Last = At; });
  }
  Events.run();
  const double GBps = bytesOverPicosToGBps(
      std::uint64_t(Count) * Config.Geo.RowBufferBytes, Last);
  EXPECT_GT(GBps, 0.85 * Mem.peakBandwidthGBps());
  EXPECT_LE(GBps, Mem.peakBandwidthGBps() + 1e-9);
}

TEST_P(GeometrySweep, LatencyLadderOrderingHolds) {
  const MemoryConfig Config = makeConfig();
  const Geometry &G = Config.Geo;
  auto pairLatency = [&Config](PhysAddr First, PhysAddr Second) {
    EventQueue Events;
    Memory3D Mem(Events, Config);
    Picos Done = 0;
    MemRequest A, B;
    A.Addr = First;
    A.Bytes = 8;
    B.Addr = Second;
    B.Bytes = 8;
    Mem.submit(A, {});
    Mem.submit(B, [&Done](const MemRequest &, Picos At) { Done = At; });
    Events.run();
    return Done;
  };

  const PhysAddr RowBuf = G.RowBufferBytes;
  const Picos SameBankRow =
      pairLatency(0, RowBuf * G.NumVaults * G.banksPerVault());
  const Picos SameLayerBank =
      G.BanksPerLayer > 1 ? pairLatency(0, RowBuf * G.NumVaults) : 0;
  const Picos OtherLayer =
      G.LayersPerVault > 1
          ? pairLatency(0, RowBuf * G.NumVaults * G.BanksPerLayer)
          : 0;
  const Picos OtherVault =
      G.NumVaults > 1 ? pairLatency(0, RowBuf) : 0;

  if (G.NumVaults > 1 && G.LayersPerVault > 1) {
    EXPECT_LT(OtherVault, OtherLayer);
  }
  if (G.LayersPerVault > 1 && G.BanksPerLayer > 1) {
    EXPECT_LT(OtherLayer, SameLayerBank);
  }
  if (G.BanksPerLayer > 1) {
    EXPECT_LT(SameLayerBank, SameBankRow);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(GeometryCase{16, 4, 2, 8192, 64},  // default
                      GeometryCase{8, 4, 2, 8192, 64},   // half vaults
                      GeometryCase{32, 4, 2, 8192, 32},  // many narrow
                      GeometryCase{16, 8, 2, 8192, 64},  // tall stack
                      GeometryCase{16, 2, 4, 4096, 64},  // small rows
                      GeometryCase{16, 4, 2, 16384, 128}, // wide rows
                      GeometryCase{4, 1, 8, 8192, 64},   // planar-ish
                      GeometryCase{1, 4, 2, 8192, 64})); // single vault
