//===- tests/fft_real_test.cpp - Real-input FFT tests ----------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/RealFft1d.h"
#include "fft/RealFft2d.h"
#include "fft/ReferenceDft.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using namespace fft3d;

namespace {

std::vector<double> randomReal(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Signal(N);
  for (double &V : Signal)
    V = R.nextDouble(-1.0, 1.0);
  return Signal;
}

} // namespace

class RealFftSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RealFftSizes, MatchesComplexReference) {
  const std::uint64_t N = GetParam();
  const RealFft1d Plan(N);
  const std::vector<double> Signal = randomReal(N, N);
  std::vector<CplxD> Wide(N);
  for (std::uint64_t I = 0; I != N; ++I)
    Wide[I] = CplxD(Signal[I], 0.0);
  const std::vector<CplxD> Ref = referenceDft(Wide);
  const std::vector<CplxD> Spectrum = Plan.forward(Signal);
  ASSERT_EQ(Spectrum.size(), N / 2 + 1);
  for (std::uint64_t K = 0; K <= N / 2; ++K)
    EXPECT_LT(std::abs(Spectrum[K] - Ref[K]), 1e-9 * N) << "bin " << K;
}

TEST_P(RealFftSizes, RoundTripRestoresSignal) {
  const std::uint64_t N = GetParam();
  const RealFft1d Plan(N);
  const std::vector<double> Signal = randomReal(N, 3 * N + 1);
  const std::vector<double> Back = Plan.inverse(Plan.forward(Signal));
  ASSERT_EQ(Back.size(), N);
  for (std::uint64_t I = 0; I != N; ++I)
    EXPECT_NEAR(Back[I], Signal[I], 1e-10 * N);
}

TEST_P(RealFftSizes, EdgeBinsAreReal) {
  const std::uint64_t N = GetParam();
  const RealFft1d Plan(N);
  const std::vector<CplxD> Spectrum =
      Plan.forward(randomReal(N, 7 * N + 5));
  EXPECT_NEAR(Spectrum.front().imag(), 0.0, 1e-9 * N);
  EXPECT_NEAR(Spectrum.back().imag(), 0.0, 1e-9 * N);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RealFftSizes,
                         ::testing::Values<std::uint64_t>(4, 8, 16, 64, 256,
                                                          1024, 4096));

TEST(RealFft1d, CosineHitsOneBin) {
  const std::uint64_t N = 64;
  const RealFft1d Plan(N);
  std::vector<double> Signal(N);
  const std::uint64_t Tone = 5;
  for (std::uint64_t I = 0; I != N; ++I)
    Signal[I] = std::cos(2.0 * std::numbers::pi * Tone *
                         static_cast<double>(I) / N);
  const std::vector<CplxD> Spectrum = Plan.forward(Signal);
  for (std::uint64_t K = 0; K <= N / 2; ++K) {
    const double Expected = K == Tone ? N / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(Spectrum[K]), Expected, 1e-9) << K;
  }
}

TEST(RealFft1d, DcSignal) {
  const RealFft1d Plan(16);
  const std::vector<double> Ones(16, 1.0);
  const std::vector<CplxD> Spectrum = Plan.forward(Ones);
  EXPECT_NEAR(Spectrum[0].real(), 16.0, 1e-12);
  for (std::uint64_t K = 1; K <= 8; ++K)
    EXPECT_NEAR(std::abs(Spectrum[K]), 0.0, 1e-12);
}

TEST(RealFft1d, LinearityHolds) {
  const std::uint64_t N = 128;
  const RealFft1d Plan(N);
  const std::vector<double> A = randomReal(N, 21);
  const std::vector<double> B = randomReal(N, 22);
  std::vector<double> Mix(N);
  for (std::uint64_t I = 0; I != N; ++I)
    Mix[I] = 2.0 * A[I] - 0.5 * B[I];
  const auto SA = Plan.forward(A);
  const auto SB = Plan.forward(B);
  const auto SM = Plan.forward(Mix);
  for (std::uint64_t K = 0; K != SM.size(); ++K)
    EXPECT_LT(std::abs(SM[K] - (2.0 * SA[K] - 0.5 * SB[K])), 1e-9 * N);
}

TEST(RealFft1d, RejectsBadSizes) {
  EXPECT_DEATH(RealFft1d(2), "power-of-two size");
  EXPECT_DEATH(RealFft1d(12), "power-of-two size");
}

//===----------------------------------------------------------------------===//
// RealFft2d
//===----------------------------------------------------------------------===//

TEST(RealFft2d, MatchesComplexReference) {
  const std::uint64_t Rows = 8, Cols = 16;
  const RealFft2d Plan(Rows, Cols);
  Rng R(17);
  std::vector<double> Field(Rows * Cols);
  for (double &V : Field)
    V = R.nextDouble(-1, 1);
  std::vector<CplxD> Wide(Rows * Cols);
  for (std::size_t I = 0; I != Field.size(); ++I)
    Wide[I] = CplxD(Field[I], 0.0);
  const std::vector<CplxD> Ref = referenceDft2d(Wide, Rows, Cols);
  const HalfSpectrum S = Plan.forward(Field);
  ASSERT_EQ(S.Bins, Cols / 2 + 1);
  for (std::uint64_t KR = 0; KR != Rows; ++KR)
    for (std::uint64_t KC = 0; KC != S.Bins; ++KC)
      EXPECT_LT(std::abs(S.at(KR, KC) - Ref[KR * Cols + KC]), 1e-9)
          << KR << "," << KC;
}

TEST(RealFft2d, RoundTripRestoresField) {
  const std::uint64_t Rows = 32, Cols = 64;
  const RealFft2d Plan(Rows, Cols);
  Rng R(18);
  std::vector<double> Field(Rows * Cols);
  for (double &V : Field)
    V = R.nextDouble(-1, 1);
  const std::vector<double> Back = Plan.inverse(Plan.forward(Field));
  ASSERT_EQ(Back.size(), Field.size());
  for (std::size_t I = 0; I != Field.size(); ++I)
    EXPECT_NEAR(Back[I], Field[I], 1e-9);
}

TEST(RealFft2d, DcFieldConcentratesAtOrigin) {
  const RealFft2d Plan(8, 8);
  const std::vector<double> Ones(64, 1.0);
  const HalfSpectrum S = Plan.forward(Ones);
  EXPECT_NEAR(S.at(0, 0).real(), 64.0, 1e-10);
  for (std::uint64_t R = 0; R != 8; ++R)
    for (std::uint64_t B = 0; B != 5; ++B)
      if (R != 0 || B != 0) {
        EXPECT_NEAR(std::abs(S.at(R, B)), 0.0, 1e-10);
      }
}

TEST(RealFft2d, HalvesTheSpectrumFootprint) {
  const RealFft2d Plan(64, 64);
  EXPECT_EQ(Plan.bins(), 33u);
  // Half-spectrum storage vs full complex: 33/64 of the columns.
  EXPECT_LT(Plan.bins() * 2, Plan.cols() + 3);
}
