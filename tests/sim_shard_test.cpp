//===- tests/sim_shard_test.cpp - Sharded conservative PDES tests ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the vault-sharded engine directly: window-boundary delivery,
// the canonical (When, vault, seq) merge order, mailbox backpressure
// accounting, constructor contract enforcement, and - the property
// everything else exists for - byte-identical Memory3D behaviour at every
// thread count, under randomized seeded traffic.
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedEventQueue.h"

#include "mem3d/Memory3D.h"
#include "mem3d/Timing.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace fft3d;

namespace {

//===----------------------------------------------------------------------===//
// Window protocol
//===----------------------------------------------------------------------===//

// A completion posted at exactly WindowEnd - the smallest timestamp the
// lookahead contract admits - must be delivered, and in the very next
// window rather than dropped or deferred further.
TEST(ShardedEventQueue, DeliversAtExactWindowBoundary) {
  const Picos W = 100;
  ShardedEventQueue Engine(2, W, 1);
  std::vector<std::pair<std::string, Picos>> Log;

  // Host event at t=0 mails shard 0 at the current time; the shard event
  // replies at exactly t0 + W, the first legal instant.
  Engine.host().scheduleAt(0, [&] {
    Log.emplace_back("host-submit", Engine.host().now());
    Engine.postToShard(0, Engine.host().now(), [&] {
      const Picos ReplyAt = Engine.shard(0).now() + W;
      Engine.postToHost(0, ReplyAt, [&] {
        Log.emplace_back("host-complete", Engine.host().now());
      });
    });
  });

  const std::uint64_t Ran = Engine.run();
  EXPECT_EQ(Ran, 3u);
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].first, "host-submit");
  EXPECT_EQ(Log[0].second, 0);
  EXPECT_EQ(Log[1].first, "host-complete");
  EXPECT_EQ(Log[1].second, W);
  // Window 1 covers [0, W) for submit + shard work, window 2 starts at W
  // for the completion.
  EXPECT_GE(Engine.windows(), 2u);
}

// Same-timestamp completions from different vaults must reach the host in
// vault order, regardless of the order the shard events were created in.
TEST(ShardedEventQueue, MergesSameTimeCompletionsInVaultOrder) {
  const Picos W = 50;
  ShardedEventQueue Engine(4, W, 1);
  std::vector<unsigned> Arrival;

  Engine.host().scheduleAt(0, [&] {
    // Mail vaults in scrambled order; each replies at the same instant.
    for (unsigned V : {3u, 1u, 2u}) {
      Engine.postToShard(V, 0, [&, V] {
        Engine.postToHost(V, W, [&, V] { Arrival.push_back(V); });
      });
    }
  });

  Engine.run();
  ASSERT_EQ(Arrival.size(), 3u);
  EXPECT_EQ(Arrival[0], 1u);
  EXPECT_EQ(Arrival[1], 2u);
  EXPECT_EQ(Arrival[2], 3u);
}

// Chained windows: a shard reply triggers another submission, which
// triggers another reply. The engine must keep opening windows until the
// whole chain drains, and every hop advances time by >= one lookahead.
TEST(ShardedEventQueue, ChainsAcrossManyWindows) {
  const Picos W = 10;
  ShardedEventQueue Engine(2, W, 1);
  unsigned Hops = 0;
  Picos LastWhen = 0;

  // Mutually recursive: host submits, shard replies one lookahead later.
  std::function<void()> Submit = [&] {
    const Picos Now = Engine.host().now();
    if (Hops != 0) {
      EXPECT_GT(Now, LastWhen);
    }
    LastWhen = Now;
    if (++Hops == 8)
      return;
    Engine.postToShard(Hops % 2, Now, [&] {
      const unsigned V = Hops % 2;
      Engine.postToHost(V, Engine.shard(V).now() + W, Submit);
    });
  };
  Engine.host().scheduleAt(0, Submit);

  Engine.run();
  EXPECT_EQ(Hops, 8u);
  EXPECT_EQ(LastWhen, 7 * W);
  EXPECT_GE(Engine.windows(), 8u);
}

//===----------------------------------------------------------------------===//
// Distance-based lookahead (per-shard oracle + per-mail effect bounds)
//===----------------------------------------------------------------------===//

// A shard whose oracle declares a completion distance beyond the static
// lookahead must widen every window by that distance: the same host
// schedule against the same (silent) shard chain takes strictly fewer
// windows when the oracle promises more. This is the whole point of the
// distance-based lookahead - window count scales with the declared
// bound, not the fixed floor.
TEST(ShardedEventQueue, ShardBoundOracleWidensWindows) {
  const auto WindowsFor = [](Picos Distance) {
    ShardedEventQueue Engine(1, /*Lookahead=*/100, 1);
    // The shard stays busy the whole run (one self-chained event every
    // 100 ps) but never posts a completion, so any declared distance is
    // sound.
    std::function<void(unsigned)> Hop = [&Engine, &Hop](unsigned Left) {
      if (Left != 0)
        Engine.shard(0).scheduleAt(Engine.shard(0).now() + 100,
                                   [&Hop, Left] { Hop(Left - 1); });
    };
    Engine.postToShard(0, 0, [&Hop] { Hop(15); });
    Engine.setShardBound(
        0, [Distance](Picos QueueNext) { return QueueNext + Distance; });
    unsigned HostRan = 0;
    for (Picos T = 0; T != 1000; T += 50)
      Engine.host().scheduleAt(T, [&HostRan] { ++HostRan; });
    Engine.run();
    EXPECT_EQ(HostRan, 20u);
    return Engine.windows();
  };
  // Distance == lookahead is the degenerate oracle (pure floor); a 4x
  // promise must cover ~4x the host ticks per window.
  const std::uint64_t Wide = WindowsFor(400);
  const std::uint64_t Floor = WindowsFor(100);
  EXPECT_LT(Wide, Floor);
}

// The property the bounds must never violate: no completion may execute
// inside the window that produced it. The engine counts violations even
// with asserts compiled out; device-backed randomized traffic (which
// registers the controller oracles and per-mail bounds) must count zero,
// at every thread count.
TEST(ShardedEventQueue, LookaheadNeverAdmitsCompletionInsideWindow) {
  for (unsigned K : {1u, 2u, 4u}) {
    MemoryConfig Config;
    ShardedEventQueue Engine(Config.Geo.NumVaults,
                             conservativeLookahead(Config.Time), K,
                             /*MailboxSoftCap=*/64);
    Memory3D Mem(Engine, Config);
    Rng R(7);
    const std::uint64_t Capacity = Mem.geometry().capacityBytes();
    Picos When = 0;
    unsigned Completions = 0;
    for (std::uint64_t I = 0; I != 300; ++I) {
      When += static_cast<Picos>(R.nextBelow(1500));
      Engine.host().scheduleAt(When, [&Mem, &R, &Completions, Capacity] {
        MemRequest Req;
        Req.IsWrite = (R.next() & 1) != 0;
        Req.Addr = (R.nextBelow(Capacity / 64)) * 64;
        Req.Bytes = 64;
        Mem.submit(Req, [&Completions](const MemRequest &, Picos) {
          ++Completions;
        });
      });
    }
    Engine.run();
    EXPECT_EQ(Completions, 300u) << "threads " << K;
    EXPECT_EQ(Engine.windowStats().LookaheadViolations, 0u)
        << "threads " << K;
    // Width accounting covers every bounded window.
    const ShardedEventQueue::WindowStats &W = Engine.windowStats();
    std::uint64_t Bucketed = 0;
    for (std::uint64_t C : W.WidthBuckets)
      Bucketed += C;
    EXPECT_GT(Bucketed, 0u);
    EXPECT_LE(Bucketed, W.Windows);
  }
}

//===----------------------------------------------------------------------===//
// Streaming (host-quiescent) windows
//===----------------------------------------------------------------------===//

// Once the host declares quiescence, pending vault chains free-run in a
// streaming window and their completions still execute at their exact
// timestamps, byte-identically at every thread count.
TEST(ShardedEventQueue, StreamingWindowsAreByteIdentical) {
  const auto Run = [](unsigned K) {
    ShardedEventQueue Engine(4, /*Lookahead=*/100, K);
    std::ostringstream Log;
    // Each vault runs a 20-hop self-chain, one hop per 250 ps, posting a
    // completion every hop - far beyond the host's last event.
    std::function<void(unsigned, unsigned)> Hop = [&](unsigned V,
                                                      unsigned Left) {
      Engine.postToHost(V, Engine.shard(V).now() + 100,
                        [&Log, &Engine, V] {
                          Log << V << "@" << Engine.host().now() << "\n";
                        });
      if (Left != 0)
        Engine.shard(V).scheduleAt(Engine.shard(V).now() + 250,
                                   [&Hop, V, Left] { Hop(V, Left - 1); });
    };
    Engine.host().scheduleAt(0, [&] {
      for (unsigned V = 0; V != 4; ++V)
        Engine.postToShard(V, 0, [&Hop, V] { Hop(V, 19); });
    });
    // The host's promise: nothing more will be submitted, ever.
    Engine.host().scheduleAt(10, [&Engine] {
      Engine.setHostQuiescentUntil(
          std::numeric_limits<Picos>::max());
    });
    Engine.run();
    return std::make_pair(Log.str(), Engine.windowStats());
  };
  const auto Base = Run(1);
  EXPECT_GE(Base.second.StreamWindows, 1u);
  // 4 vaults x 20 hops x 250 ps free-run in O(1) windows instead of one
  // window per hop.
  EXPECT_LE(Base.second.Windows, 6u);
  for (unsigned K : {2u, 4u}) {
    const auto Other = Run(K);
    EXPECT_EQ(Base.first, Other.first) << "threads " << K;
    EXPECT_EQ(Base.second.Windows, Other.second.Windows) << "threads " << K;
    EXPECT_EQ(Base.second.StreamWindows, Other.second.StreamWindows)
        << "threads " << K;
  }
}

// Submitting after declaring quiescence is a contract violation the
// engine must refuse loudly - vaults may already have free-run past the
// mail's timestamp.
TEST(ShardedEventQueueDeathTest, RejectsSubmissionDuringQuiescence) {
  ShardedEventQueue Engine(2, 100, 1);
  Engine.setHostQuiescentUntil(std::numeric_limits<Picos>::max());
  EXPECT_DEATH(Engine.postToShard(0, 0, [] {}), "streaming contract");
}

//===----------------------------------------------------------------------===//
// Mailbox backpressure
//===----------------------------------------------------------------------===//

// Posting past the soft cap counts overflows but never drops mail.
TEST(ShardedEventQueue, CountsMailboxOverflowWithoutDropping) {
  ShardedEventQueue Engine(1, /*Lookahead=*/100, /*SimThreads=*/1,
                           /*MailboxSoftCap=*/4);
  unsigned Delivered = 0;
  for (Picos T = 0; T != 10; ++T)
    Engine.postToShard(0, T, [&] { ++Delivered; });

  // Mails 5..10 found the inbox at occupancy 4,5,...,9.
  EXPECT_EQ(Engine.mailboxOverflows(), 6u);
  EXPECT_EQ(Engine.run(), 10u);
  EXPECT_EQ(Delivered, 10u);
}

// The batched (head-indexed) inbox must count occupancy exactly like the
// old one-erase-per-event path: mail the drain has already delivered no
// longer occupies the box, even while it still sits in the vector behind
// the head index. A partial drain followed by more posts discriminates
// the two accountings.
TEST(ShardedEventQueue, BatchedInboxOverflowMatchesPerEventAccounting) {
  ShardedEventQueue Engine(1, /*Lookahead=*/100, /*SimThreads=*/1,
                           /*MailboxSoftCap=*/4);
  unsigned Delivered = 0;
  const auto Note = [&Delivered] { ++Delivered; };
  Engine.host().scheduleAt(0, [&] {
    // Three due now, three due at 950: the first window ends at the
    // near mail's effect bound (t=100), so the far three stay pending
    // behind the head index. Occupancies seen: 0,1,2,3,4,5 - the last
    // two posts overflow.
    for (int I = 0; I != 3; ++I)
      Engine.postToShard(0, 0, Note);
    for (int I = 0; I != 3; ++I)
      Engine.postToShard(0, 950, Note);
  });
  Engine.host().scheduleAt(900, [&] {
    // Three mails were delivered in the first window, so the box holds 3
    // (not 6): these two posts see occupancies 3 and 4 - exactly one
    // more overflow. An accounting that forgot the head index would see
    // 6 and 7 and count two.
    Engine.postToShard(0, 950, Note);
    Engine.postToShard(0, 950, Note);
  });
  Engine.run();
  EXPECT_EQ(Delivered, 8u);
  EXPECT_EQ(Engine.mailboxOverflows(), 3u);
}

//===----------------------------------------------------------------------===//
// Constructor contract
//===----------------------------------------------------------------------===//

TEST(ShardedEventQueueDeathTest, RejectsZeroLookahead) {
  EXPECT_DEATH(ShardedEventQueue(4, /*Lookahead=*/0, 1), "lookahead");
}

TEST(ShardedEventQueueDeathTest, RejectsZeroShards) {
  EXPECT_DEATH(ShardedEventQueue(0, /*Lookahead=*/100, 1), "shard");
}

TEST(ShardedEventQueue, ClampsThreadsToShardCount) {
  ShardedEventQueue Engine(2, 100, 8);
  EXPECT_EQ(Engine.threadCount(), 2u);
  ShardedEventQueue Zero(2, 100, 0);
  EXPECT_EQ(Zero.threadCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Randomized 1-vs-N equivalence
//===----------------------------------------------------------------------===//

// Everything one run of the device can observe, rendered to text so
// mismatches show *what* diverged, not just that something did.
struct RunFingerprint {
  std::string VaultCounters;
  std::string Latency;
  std::string Completions;
  std::string Trace;
  std::uint64_t Windows = 0;

  friend bool operator==(const RunFingerprint &A, const RunFingerprint &B) {
    return A.VaultCounters == B.VaultCounters && A.Latency == B.Latency &&
           A.Completions == B.Completions && A.Trace == B.Trace;
  }
};

RunFingerprint runRandomTraffic(unsigned SimThreads, std::uint64_t Seed) {
  MemoryConfig Config;
  ShardedEventQueue Engine(Config.Geo.NumVaults,
                           conservativeLookahead(Config.Time), SimThreads,
                           /*MailboxSoftCap=*/64);
  Memory3D Mem(Engine, Config);
  Tracer Trace(TraceCatAll, 1 << 14);
  Mem.setTracer(&Trace);

  RunFingerprint FP;
  std::ostringstream Completions;

  // Random requests injected from host events at jittered times - the
  // same submission schedule for every thread count because the Rng is
  // consumed on the host shard only, in host event order.
  Rng R(Seed);
  const std::uint64_t Capacity = Mem.geometry().capacityBytes();
  Picos When = 0;
  for (std::uint64_t I = 0; I != 400; ++I) {
    When += static_cast<Picos>(R.nextBelow(2000));
    Engine.host().scheduleAt(When, [&Completions, &Mem, &R, Capacity, I] {
      MemRequest Req;
      Req.Id = I;
      Req.IsWrite = (R.next() & 1) != 0;
      Req.Addr = (R.nextBelow(Capacity / 8)) * 8;
      Req.Bytes = 8;
      Mem.submit(Req, [&Completions](const MemRequest &Done, Picos At) {
        Completions << Done.Id << (Done.Failed ? "F" : "ok") << "@" << At
                    << "\n";
      });
    });
  }

  Engine.run();
  Mem.stats().foldLatencyShards();

  std::ostringstream Vaults;
  for (unsigned V = 0; V != Mem.stats().numVaults(); ++V) {
    const VaultStats &S = Mem.stats().vault(V);
    Vaults << V << ":" << S.Reads << "," << S.Writes << "," << S.BytesRead
           << "," << S.BytesWritten << "," << S.RowActivations << ","
           << S.RowHits << "," << S.RowMisses << "," << S.BusBusy << "\n";
  }
  FP.VaultCounters = Vaults.str();

  const RunningStat &Lat = Mem.stats().latencyNanos();
  std::ostringstream Latency;
  // hexfloat: bit-exact comparison of the folded floating-point sums.
  Latency << Lat.count() << " " << std::hexfloat << Lat.sum() << " "
          << Lat.min() << " " << Lat.max();
  FP.Latency = Latency.str();

  FP.Completions = Completions.str();
  FP.Trace = traceDigest(Trace);
  FP.Windows = Engine.windows();
  return FP;
}

TEST(ShardedEventQueue, RandomTrafficIdenticalAcrossThreadCounts) {
  for (std::uint64_t Seed : {1ull, 42ull, 20150907ull}) {
    const RunFingerprint Base = runRandomTraffic(1, Seed);
    EXPECT_GT(Base.Windows, 10u);
    EXPECT_FALSE(Base.Completions.empty());
    for (unsigned K : {2u, 4u, 8u}) {
      const RunFingerprint Other = runRandomTraffic(K, Seed);
      EXPECT_EQ(Base.VaultCounters, Other.VaultCounters)
          << "seed " << Seed << " threads " << K;
      EXPECT_EQ(Base.Latency, Other.Latency)
          << "seed " << Seed << " threads " << K;
      EXPECT_EQ(Base.Completions, Other.Completions)
          << "seed " << Seed << " threads " << K;
      EXPECT_EQ(Base.Trace, Other.Trace)
          << "seed " << Seed << " threads " << K;
    }
  }
}

} // namespace
