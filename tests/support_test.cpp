//===- tests/support_test.cpp - Unit tests for src/support ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/TableWriter.h"
#include "support/Units.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace fft3d;

//===----------------------------------------------------------------------===//
// MathUtils
//===----------------------------------------------------------------------===//

TEST(MathUtils, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ULL << 40));
  EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(MathUtils, Log2Exact) {
  EXPECT_EQ(log2Exact(1), 0u);
  EXPECT_EQ(log2Exact(2), 1u);
  EXPECT_EQ(log2Exact(8192), 13u);
  EXPECT_EQ(log2Exact(1ULL << 63), 63u);
}

TEST(MathUtils, Log2FloorAndCeil) {
  EXPECT_EQ(log2Floor(5), 2u);
  EXPECT_EQ(log2Ceil(5), 3u);
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(8), 3u);
  EXPECT_EQ(log2Floor(8), 3u);
}

TEST(MathUtils, CeilDivAndRoundUp) {
  EXPECT_EQ(ceilDiv(10, 3), 4u);
  EXPECT_EQ(ceilDiv(9, 3), 3u);
  EXPECT_EQ(roundUp(10, 8), 16u);
  EXPECT_EQ(roundUp(16, 8), 16u);
}

TEST(MathUtils, BitReverse) {
  EXPECT_EQ(bitReverse(0b0001, 4), 0b1000u);
  EXPECT_EQ(bitReverse(0b0110, 4), 0b0110u);
  EXPECT_EQ(bitReverse(0b1011, 4), 0b1101u);
  // Involution: reversing twice restores the value.
  for (std::uint64_t I = 0; I != 256; ++I)
    EXPECT_EQ(bitReverse(bitReverse(I, 8), 8), I);
}

TEST(MathUtils, DigitReverse) {
  // Base-4, two digits: 0x1 (digits 0,1) -> digits 1,0 = 4.
  EXPECT_EQ(digitReverse(1, 4, 2), 4u);
  EXPECT_EQ(digitReverse(4, 4, 2), 1u);
  // Base-4 digit reversal is an involution as well.
  for (std::uint64_t I = 0; I != 64; ++I)
    EXPECT_EQ(digitReverse(digitReverse(I, 4, 3), 4, 3), I);
  // Radix 2 digit reversal equals bit reversal.
  for (std::uint64_t I = 0; I != 32; ++I)
    EXPECT_EQ(digitReverse(I, 2, 5), bitReverse(I, 5));
}

TEST(MathUtils, IsPowerOfAndDigitCount) {
  EXPECT_TRUE(isPowerOf(64, 4));
  EXPECT_FALSE(isPowerOf(32, 4));
  EXPECT_TRUE(isPowerOf(32, 2));
  EXPECT_FALSE(isPowerOf(0, 2));
  EXPECT_EQ(digitCount(64, 4), 3u);
  EXPECT_EQ(digitCount(1, 4), 0u);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 100; ++I) {
    const std::uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(Random, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Random, NextBelowCoversAllResidues) {
  Rng R(1);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Random, DoublesInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    const double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Random, GaussianRoughMoments) {
  Rng R(5);
  double Sum = 0.0, SumSq = 0.0;
  const int Samples = 20000;
  for (int I = 0; I != Samples; ++I) {
    const double V = R.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  const double Mean = Sum / Samples;
  const double Var = SumSq / Samples - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, RunningStatBasics) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  S.addSample(2.0);
  S.addSample(4.0);
  S.addSample(6.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
}

TEST(Stats, RunningStatMerge) {
  RunningStat A, B;
  A.addSample(1.0);
  B.addSample(3.0);
  B.addSample(5.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_DOUBLE_EQ(A.mean(), 3.0);
  EXPECT_DOUBLE_EQ(A.max(), 5.0);
}

TEST(Stats, HistogramBucketsAndPercentile) {
  Histogram H(10.0, 10); // [0,100) in tens.
  for (int I = 0; I != 100; ++I)
    H.addSample(I);
  EXPECT_EQ(H.totalCount(), 100u);
  EXPECT_EQ(H.bucketCount(0), 10u);
  EXPECT_EQ(H.overflowCount(), 0u);
  EXPECT_NEAR(H.percentile(0.5), 50.0, 10.0);
  H.addSample(1e9);
  EXPECT_EQ(H.overflowCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Units
//===----------------------------------------------------------------------===//

TEST(Units, Conversions) {
  EXPECT_EQ(nanosToPicos(1.6), 1600u);
  EXPECT_DOUBLE_EQ(picosToNanos(2500), 2.5);
  EXPECT_EQ(periodFromMHz(250.0), 4000u);
  EXPECT_EQ(periodFromMHz(625.0), 1600u);
}

TEST(Units, Bandwidth) {
  // 80 bytes in 1 ns = 80 GB/s.
  EXPECT_DOUBLE_EQ(bytesOverPicosToGBps(80, 1000), 80.0);
  EXPECT_DOUBLE_EQ(bytesOverPicosToGBps(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(gbpsToGbitps(0.8), 6.4);
}

TEST(Units, Formatting) {
  EXPECT_EQ(formatDuration(500), "500 ps");
  EXPECT_EQ(formatDuration(nanosToPicos(1.6)), "1.60 ns");
  EXPECT_EQ(formatDuration(PicosPerMilli * 3 / 2), "1.50 ms");
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(8192), "8.0 KiB");
}

//===----------------------------------------------------------------------===//
// TableWriter
//===----------------------------------------------------------------------===//

TEST(TableWriter, AlignsColumns) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("| name   |"), std::string::npos);
  EXPECT_NE(Out.find("| longer |"), std::string::npos);
}

TEST(TableWriter, Formatters) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(std::uint64_t(42)), "42");
  EXPECT_EQ(TableWriter::percent(0.4), "40.0%");
}

TEST(Stats, CounterBasics) {
  Counter C{"row_activations", 0};
  ++C;
  C += 41;
  EXPECT_EQ(C.Value, 42u);
  EXPECT_EQ(C.Name, "row_activations");
}
