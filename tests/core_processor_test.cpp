//===- tests/core_processor_test.cpp - Full-application integration -------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/BatchProcessor.h"
#include "core/Fft2dProcessor.h"
#include "core/LayoutEvaluator.h"
#include "fft/Fft2d.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

Matrix randomMatrix(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(N, N);
  for (std::uint64_t I = 0; I != N; ++I)
    for (std::uint64_t J = 0; J != N; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                         static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

/// Shrinks the simulation budget so integration tests stay fast.
SystemConfig quickConfig(std::uint64_t N) {
  SystemConfig C = SystemConfig::forProblemSize(N);
  C.MaxSimBytesPerDirection = 4ull << 20;
  C.MaxSimOpsPerDirection = 20000;
  return C;
}

} // namespace

TEST(Fft2dProcessor, DynamicLayoutPipelineComputesTheSameTransform) {
  // The functional integration: route real data through the dynamic
  // layout + permutation network and compare against the plain 2D FFT.
  for (std::uint64_t N : {64ull, 128ull, 256ull}) {
    const SystemConfig C = SystemConfig::forProblemSize(N);
    const Matrix In = randomMatrix(N, 1000 + N);
    Matrix Direct = In;
    Fft2d(N, N).forward(Direct);
    const Matrix Routed = Fft2dProcessor::computeViaDynamicLayout(In, C);
    EXPECT_LT(Routed.maxAbsDiff(Direct), 1e-2) << N;
  }
}

TEST(Fft2dProcessor, OptimizedBeatsBaselineSubstantially) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Base = P.runBaseline();
  const AppReport Opt = P.runOptimized();
  // The headline claim: ~95%+ throughput improvement.
  const double Improvement =
      (Opt.AppThroughputGBps - Base.AppThroughputGBps) /
      Opt.AppThroughputGBps;
  EXPECT_GT(Improvement, 0.90);
  EXPECT_GT(Opt.AppThroughputGBps, 20.0);
  EXPECT_LT(Base.AppThroughputGBps, 2.0);
}

TEST(Fft2dProcessor, OptimizedColumnPhaseIsKernelBound) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Opt = P.runOptimized();
  // 2 x 16 GB/s kernel streams; the memory must not be the limit.
  EXPECT_NEAR(Opt.ColPhase.ThroughputGBps, 32.0, 2.0);
  EXPECT_NEAR(Opt.PeakUtilization, 0.40, 0.03);
}

TEST(Fft2dProcessor, BaselineColumnPhaseIsActivationBound) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Base = P.runBaseline();
  EXPECT_LT(Base.ColPhase.ThroughputGBps, 1.0);
  EXPECT_GT(Base.ColPhase.MeanReqLatencyNanos, 20.0);
  // Essentially every strided access misses the row buffer.
  EXPECT_LT(Base.ColPhase.RowHitRate, 0.05);
}

TEST(Fft2dProcessor, OptimizedColumnPhaseAmortizesActivations) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Opt = P.runOptimized();
  const AppReport Base = P.runBaseline();
  // Per byte moved, the optimized phase activates orders of magnitude
  // fewer rows.
  const double OptActsPerKiB =
      static_cast<double>(Opt.ColPhase.RowActivations) /
      (static_cast<double>(Opt.ColPhase.BytesRead +
                           Opt.ColPhase.BytesWritten) / 1024.0);
  const double BaseActsPerKiB =
      static_cast<double>(Base.ColPhase.RowActivations) /
      (static_cast<double>(Base.ColPhase.BytesRead +
                           Base.ColPhase.BytesWritten) / 1024.0);
  EXPECT_LT(OptActsPerKiB * 20.0, BaseActsPerKiB);
}

TEST(Fft2dProcessor, LatencyImproves) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Base = P.runBaseline();
  const AppReport Opt = P.runOptimized();
  EXPECT_GT(Base.AppLatency, 3 * Opt.AppLatency);
}

TEST(Fft2dProcessor, ReportsCarryPlanAndCosts) {
  Fft2dProcessor P(quickConfig(2048));
  const AppReport Opt = P.runOptimized();
  EXPECT_TRUE(Opt.Optimized);
  EXPECT_EQ(Opt.Plan.H * Opt.Plan.W, 1024u);
  EXPECT_EQ(Opt.DataParallelism, 8u);
  EXPECT_GT(Opt.PermuteBufferBytes, 0u);
  EXPECT_EQ(Opt.Reconfigurations, 2u);
  const AppReport Base = P.runBaseline();
  EXPECT_FALSE(Base.Optimized);
  EXPECT_EQ(Base.DataParallelism, 1u);
}

TEST(Fft2dProcessor, EstimatedTimesScaleWithProblemSize) {
  Fft2dProcessor Small(quickConfig(1024));
  Fft2dProcessor Large(quickConfig(2048));
  const AppReport S = Small.runOptimized();
  const AppReport L = Large.runOptimized();
  // 4x the data at a similar rate: roughly 4x the estimated time.
  const double Ratio = static_cast<double>(L.EstimatedTotalTime) /
                       static_cast<double>(S.EstimatedTotalTime);
  EXPECT_GT(Ratio, 2.5);
  EXPECT_LT(Ratio, 6.5);
}

TEST(SystemConfig, ValidatesCapacity) {
  SystemConfig C = SystemConfig::forProblemSize(2048);
  C.Mem.Geo.RowsPerBank = 64; // Shrink the device below 3 matrices.
  EXPECT_DEATH(C.validate(), "fit");
}

TEST(SystemConfig, DefaultsMatchDesignDoc) {
  const SystemConfig C = SystemConfig::forProblemSize(4096);
  EXPECT_EQ(C.Baseline.Lanes, 1u);
  EXPECT_EQ(C.Baseline.ReadWindow, 1u);
  EXPECT_EQ(C.Optimized.Lanes, 8u);
  EXPECT_EQ(C.Optimized.Intermediate, LayoutKind::BlockDynamic);
  EXPECT_EQ(C.Optimized.VaultsParallel, 16u);
}

TEST(BatchProcessor, PipeliningImprovesFrameRate) {
  SystemConfig Config = SystemConfig::forProblemSize(1024);
  Config.MaxSimBytesPerDirection = 4ull << 20;
  Config.MaxSimOpsPerDirection = 20000;
  const BatchProcessor Batch(Config);
  const BatchReport One = Batch.run(1);
  const BatchReport Many = Batch.run(16);
  EXPECT_GT(Many.FramesPerSecond, 1.4 * One.FramesPerSecond);
  EXPECT_EQ(One.TotalTime, 2 * One.PhaseTime);
  EXPECT_GT(Many.OverlapGBps, 40.0);
}

TEST(BatchProcessor, TotalTimeIsMonotonicInFrames) {
  SystemConfig Config = SystemConfig::forProblemSize(1024);
  Config.MaxSimBytesPerDirection = 2ull << 20;
  Config.MaxSimOpsPerDirection = 10000;
  const BatchProcessor Batch(Config);
  Picos Prev = 0;
  for (unsigned F : {1u, 2u, 4u, 8u}) {
    const BatchReport R = Batch.run(F);
    EXPECT_GT(R.TotalTime, Prev);
    Prev = R.TotalTime;
  }
}

//===----------------------------------------------------------------------===//
// Whole-application invariants across problem sizes
//===----------------------------------------------------------------------===//

class ProcessorSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcessorSizeSweep, OrderingInvariantsHold) {
  const std::uint64_t N = GetParam();
  SystemConfig Config = SystemConfig::forProblemSize(N);
  Config.MaxSimBytesPerDirection = 2ull << 20;
  Config.MaxSimOpsPerDirection = 10000;
  Fft2dProcessor P(Config);
  const AppReport Base = P.runBaseline();
  const AppReport Opt = P.runOptimized();

  // The paper's orderings, at every size:
  EXPECT_GT(Opt.AppThroughputGBps, Base.AppThroughputGBps) << N;
  EXPECT_GT(Opt.ColPhase.ThroughputGBps,
            10.0 * Base.ColPhase.ThroughputGBps)
      << N;
  EXPECT_LT(Opt.AppLatency, Base.AppLatency) << N;
  EXPECT_LE(Opt.PeakUtilization, 0.5) << N; // kernel-bound, not memory
  EXPECT_GT(Opt.PeakUtilization, 0.2) << N;
  // Block plans always fill the row buffer.
  EXPECT_EQ(Opt.Plan.W * Opt.Plan.H, 1024u) << N;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProcessorSizeSweep,
                         ::testing::Values<std::uint64_t>(512, 1024, 2048,
                                                          4096));

TEST(LayoutEvaluatorRect, RectangularMatricesWork) {
  // The layouts and traces are shape-generic even though the processor
  // presets are square: evaluate a 1024 x 4096 intermediate.
  SystemConfig Config = SystemConfig::forProblemSize(2048); // device only
  Config.MaxSimBytesPerDirection = 2ull << 20;
  Config.MaxSimOpsPerDirection = 10000;
  const LayoutEvaluator Evaluator(Config);
  const BlockDynamicLayout Mid(1024, 4096, 8, 1ull << 28, 8, 128);
  const BlockDynamicLayout Out(1024, 4096, 8, 1ull << 29, 8, 128);
  const PhaseResult Col =
      Evaluator.runColumnPhase(Config.Optimized, Mid, Out);
  EXPECT_GT(Col.ThroughputGBps, 25.0);
  EXPECT_EQ(Col.RowActivations, Col.Ops);
}
