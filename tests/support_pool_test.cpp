//===- tests/support_pool_test.cpp - Work-stealing pool tests -------------===//
//
// Part of the fft3d project.
//
// The ThreadPool contract: parallelFor runs the body exactly once per
// index, the calling thread participates, exceptions propagate, the
// pool is reusable across calls, and stealing keeps unevenly sized
// shards busy. These tests are also the TSan targets for the pool.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace fft3d;

namespace {

/// Keeps busy-loops observable without volatile.
std::atomic<std::uint64_t> benchmarkSink{0};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr std::size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](std::size_t I) { Hits[I].fetch_add(1); });
  for (std::size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  const auto Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Seen(8);
  Pool.parallelFor(8, [&](std::size_t I) {
    Seen[I] = std::this_thread::get_id();
  });
  for (const auto &Id : Seen)
    EXPECT_EQ(Id, Caller);
}

TEST(ThreadPool, OnlyPoolThreadsRunTheBody) {
  // At most threadCount() distinct threads touch the body: the caller
  // (shard 0) plus the N-1 workers, never anyone else. (The caller is
  // not *guaranteed* a share - fast workers may steal its whole shard.)
  ThreadPool Pool(4);
  std::mutex M;
  std::set<std::thread::id> Ids;
  Pool.parallelFor(256, [&](std::size_t) {
    std::lock_guard<std::mutex> Lock(M);
    Ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(Ids.size(), std::size_t(Pool.threadCount()));
  EXPECT_GE(Ids.size(), 1u);
}

TEST(ThreadPool, EmptyAndSingleItem) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, [&](std::size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(1, [&](std::size_t I) {
    EXPECT_EQ(I, 0u);
    Count.fetch_add(1);
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool Pool(3);
  std::atomic<std::uint64_t> Sum{0};
  for (int Round = 0; Round != 20; ++Round) {
    Sum.store(0);
    Pool.parallelFor(100, [&](std::size_t I) { Sum.fetch_add(I); });
    EXPECT_EQ(Sum.load(), 4950u) << "round " << Round;
  }
}

TEST(ThreadPool, StealingCoversUnevenWork) {
  // Front-load all the heavy work into shard 0's range: the other
  // workers must steal to finish, and every index must still run once.
  ThreadPool Pool(4);
  constexpr std::size_t N = 256;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](std::size_t I) {
    if (I < N / 4) {
      // Busy-work on the first quarter (shard 0's block).
      std::uint64_t Spin = 0;
      for (int K = 0; K != 20000; ++K)
        Spin += K;
      benchmarkSink.fetch_add(Spin, std::memory_order_relaxed);
    }
    Hits[I].fetch_add(1);
  });
  for (std::size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ThreadPool, FirstExceptionPropagates) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [](std::size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> Count{0};
  Pool.parallelFor(10, [&](std::size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 10);
}

TEST(ThreadPool, ExceptionDoesNotStopOtherIndices) {
  // Every non-throwing index still runs; only the exception is replayed.
  ThreadPool Pool(2);
  constexpr std::size_t N = 50;
  std::vector<std::atomic<int>> Hits(N);
  try {
    Pool.parallelFor(N, [&](std::size_t I) {
      Hits[I].fetch_add(1);
      if (I == 10)
        throw std::runtime_error("one bad cell");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error &) {
  }
  int Total = 0;
  for (std::size_t I = 0; I != N; ++I)
    Total += Hits[I].load();
  EXPECT_EQ(Total, int(N));
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool Pool(8);
  std::atomic<int> Count{0};
  Pool.parallelFor(3, [&](std::size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPool, LargeFanOut) {
  ThreadPool Pool(4);
  constexpr std::size_t N = 20000;
  std::atomic<std::uint64_t> Sum{0};
  Pool.parallelFor(N, [&](std::size_t I) { Sum.fetch_add(I + 1); });
  EXPECT_EQ(Sum.load(), std::uint64_t(N) * (N + 1) / 2);
}

} // namespace
