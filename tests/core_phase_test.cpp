//===- tests/core_phase_test.cpp - Phase engine behaviour ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/PhaseEngine.h"
#include "layout/BlockDynamicLayout.h"
#include "layout/LinearLayouts.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

struct Rig {
  EventQueue Events;
  MemoryConfig Config;
  std::unique_ptr<Memory3D> Mem;
  std::unique_ptr<PhaseEngine> Engine;

  explicit Rig(std::uint64_t MaxBytes = 1ull << 30,
               std::uint64_t MaxOps = 1ull << 30) {
    Mem = std::make_unique<Memory3D>(Events, Config);
    Engine = std::make_unique<PhaseEngine>(*Mem, Events, MaxBytes, MaxOps);
  }
};

} // namespace

TEST(PhaseEngine, ReadOnlyPhaseMovesAllBytes) {
  Rig R;
  const RowMajorLayout L(64, 64, 8, 0);
  RowScanTrace Reads(L, 8192);
  const PhaseResult Res = R.Engine->run(
      {&Reads, false, 16, /*PaceGBps=*/0.0, 0}, {});
  EXPECT_EQ(Res.BytesRead, L.sizeBytes());
  EXPECT_EQ(Res.BytesWritten, 0u);
  EXPECT_FALSE(Res.Truncated);
  EXPECT_GT(Res.ThroughputGBps, 0.0);
  EXPECT_GT(Res.FirstReadComplete, 0u);
}

TEST(PhaseEngine, PacingCapsThroughput) {
  Rig R;
  const RowMajorLayout L(128, 128, 8, 0);
  RowScanTrace Fast(L, 8192);
  const PhaseResult Unpaced =
      R.Engine->run({&Fast, false, 32, 0.0, 0}, {});
  RowScanTrace Slow(L, 8192);
  const PhaseResult Paced =
      R.Engine->run({&Slow, false, 32, /*PaceGBps=*/2.0, 0}, {});
  EXPECT_GT(Unpaced.ThroughputGBps, 10.0);
  EXPECT_LE(Paced.ThroughputGBps, 2.2);
  EXPECT_GT(Paced.ThroughputGBps, 1.5);
}

TEST(PhaseEngine, BlockingWindowSerializesStridedReads) {
  // N must be large enough that the stride (N * 8 B) exceeds the row
  // buffer, otherwise consecutive column elements share a DRAM row.
  Rig R(1ull << 30, /*MaxOps=*/20000);
  const RowMajorLayout L(1024, 1024, 8, 0);
  ColScanTrace Strided(L, 8192);
  const PhaseResult Res =
      R.Engine->run({&Strided, false, /*Window=*/1, 0.0, 0}, {});
  // Every 8-byte element pays the full blocking round trip: ~25-30 ns.
  // That is well under 1 GB/s.
  EXPECT_LT(Res.ThroughputGBps, 1.0);
  EXPECT_GT(Res.MeanReqLatencyNanos, 20.0);
}

TEST(PhaseEngine, WiderWindowRecoversStridedBandwidth) {
  Rig R(1ull << 30, /*MaxOps=*/20000);
  const RowMajorLayout L(1024, 1024, 8, 0);
  ColScanTrace Blocking(L, 8192);
  const PhaseResult Slow =
      R.Engine->run({&Blocking, false, 1, 0.0, 0}, {});
  ColScanTrace Pipelined(L, 8192);
  const PhaseResult Fast =
      R.Engine->run({&Pipelined, false, 64, 0.0, 0}, {});
  EXPECT_GT(Fast.ThroughputGBps, 2.0 * Slow.ThroughputGBps);
}

TEST(PhaseEngine, WriteLagDelaysWrites) {
  Rig R;
  const RowMajorLayout L(32, 32, 8, 0);
  RowScanTrace Reads(L, 8192);
  RowScanTrace Writes(L, 8192);
  const Picos Lag = nanosToPicos(10000.0);
  const PhaseResult Res = R.Engine->run(
      {&Reads, false, 8, 0.0, 0}, {&Writes, true, 8, 0.0, Lag});
  // The phase cannot end before the lagged writes even start.
  EXPECT_GE(Res.Elapsed, Lag);
  EXPECT_EQ(Res.BytesWritten, L.sizeBytes());
}

TEST(PhaseEngine, BudgetTruncatesAndExtrapolates) {
  Rig R(/*MaxBytes=*/16 * 8192, /*MaxOps=*/1ull << 30);
  const RowMajorLayout L(256, 256, 8, 0); // 512 KiB footprint.
  RowScanTrace Reads(L, 8192);
  const PhaseResult Res = R.Engine->run({&Reads, false, 16, 0.0, 0}, {});
  EXPECT_TRUE(Res.Truncated);
  EXPECT_EQ(Res.BytesRead, 16u * 8192);
  EXPECT_EQ(Res.TotalPhaseBytes, L.sizeBytes());
  EXPECT_GT(Res.EstimatedPhaseTime, Res.Elapsed);
}

TEST(PhaseEngine, OpBudgetAlsoTruncates) {
  Rig R(1ull << 30, /*MaxOps=*/10);
  const RowMajorLayout L(256, 256, 8, 0);
  ColScanTrace Reads(L, 8192);
  const PhaseResult Res = R.Engine->run({&Reads, false, 4, 0.0, 0}, {});
  EXPECT_TRUE(Res.Truncated);
  EXPECT_EQ(Res.Ops, 10u);
}

TEST(PhaseEngine, BlockStreamSaturatesMemory) {
  Rig R;
  const BlockDynamicLayout L(512, 512, 8, 0, 8, 128); // 8 KiB blocks.
  BlockTrace Reads(L, BlockOrder::ColMajorBlocks);
  const PhaseResult Res = R.Engine->run({&Reads, false, 64, 0.0, 0}, {});
  // Full-row bursts across skewed vaults: close to the 80 GB/s peak.
  EXPECT_GT(Res.ThroughputGBps, 60.0);
  EXPECT_GT(Res.RowHitRate, -0.01); // defined
  // One activation per block, nothing more.
  EXPECT_EQ(Res.RowActivations, L.blocksPerRow() * L.blocksPerCol());
}

TEST(PhaseEngine, EmptyPhaseIsZero) {
  Rig R;
  const PhaseResult Res = R.Engine->run({}, {});
  EXPECT_EQ(Res.BytesRead + Res.BytesWritten, 0u);
  EXPECT_EQ(Res.Elapsed, 0u);
}

TEST(PhaseEngine, RunStreamsAggregatesDirections) {
  Rig R;
  const RowMajorLayout A(32, 32, 8, 0);
  const RowMajorLayout B(32, 32, 8, 32 * 32 * 8);
  const RowMajorLayout C(32, 32, 8, 2 * 32 * 32 * 8);
  RowScanTrace ReadA(A, 8192);
  RowScanTrace ReadB(B, 8192);
  RowScanTrace WriteC(C, 8192);
  const PhaseResult Res = R.Engine->runStreams(
      {{&ReadA, false, 8, 0.0, 0},
       {&ReadB, false, 8, 0.0, 0},
       {&WriteC, true, 8, 0.0, 0}});
  EXPECT_EQ(Res.BytesRead, 2 * A.sizeBytes());
  EXPECT_EQ(Res.BytesWritten, A.sizeBytes());
  EXPECT_EQ(Res.TotalPhaseBytes, 3 * A.sizeBytes());
  EXPECT_GT(Res.ReadGBps, 0.0);
  EXPECT_GT(Res.WriteGBps, 0.0);
  EXPECT_GT(Res.FirstReadComplete, 0u);
}

TEST(PhaseEngine, RunStreamsMatchesRunForTwoStreams) {
  const RowMajorLayout L(64, 64, 8, 0);
  Rig R1, R2;
  RowScanTrace ReadsA(L, 8192), WritesA(L, 8192);
  const PhaseResult Via2 = R1.Engine->run({&ReadsA, false, 8, 4.0, 0},
                                          {&WritesA, true, 8, 4.0, 0});
  RowScanTrace ReadsB(L, 8192), WritesB(L, 8192);
  StreamParams WP{&WritesB, true, 8, 4.0, 0};
  const PhaseResult ViaN =
      R2.Engine->runStreams({{&ReadsB, false, 8, 4.0, 0}, WP});
  EXPECT_EQ(Via2.Elapsed, ViaN.Elapsed);
  EXPECT_EQ(Via2.BytesRead, ViaN.BytesRead);
  EXPECT_DOUBLE_EQ(Via2.ThroughputGBps, ViaN.ThroughputGBps);
}
