//===- tests/fft_packed_test.cpp - Packed half-spectrum pipeline tests ----===//
//
// Part of the fft3d project.
//
// The real-input contract, in three layers: the Nyquist-into-DC fold is
// an exact bijection (pure data movement); the dynamic-layout pipeline
// computes bit-identically to the straight-line host reference (same
// values through the same kernels, whatever the block streaming order);
// and the whole packed transform agrees with the O(N^2) reference DFT
// and the direct-summation convolution oracle to a couple of ulps of
// the spectrum norm.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "fft/Convolution.h"
#include "fft/PackedSpectrum.h"
#include "fft/RealFft2d.h"
#include "fft/ReferenceDft.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace fft3d;

namespace {

std::vector<double> randomField(std::uint64_t Count, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Field(Count);
  for (double &V : Field)
    V = R.nextDouble(-1.0, 1.0);
  return Field;
}

/// One float ulp at magnitude \p Norm (the spacing of representable
/// floats around the spectrum's largest value).
float floatUlpAt(double Norm) {
  const float F = static_cast<float>(Norm);
  return std::nextafterf(F, std::numeric_limits<float>::infinity()) - F;
}

/// Max |A - B| over the half spectra, in float ulps of the larger
/// reference magnitude ("norm-scaled": every bin is held to the same
/// absolute scale, the way the narrowed storage rounds).
double maxUlpVsReference(const HalfSpectrum &Got,
                         const std::vector<CplxD> &Ref,
                         std::uint64_t RefCols) {
  double Norm = 0.0;
  for (const CplxD &V : Ref)
    Norm = std::max(Norm, std::abs(V));
  const double Ulp = floatUlpAt(Norm);
  double MaxDiff = 0.0;
  for (std::uint64_t R = 0; R != Got.Rows; ++R)
    for (std::uint64_t B = 0; B != Got.Bins; ++B) {
      const CplxD Want = Ref[R * RefCols + B];
      MaxDiff = std::max(MaxDiff, std::abs(Got.at(R, B) - Want));
    }
  return MaxDiff / Ulp;
}

} // namespace

TEST(PackedBins, FoldRoundTripsBitExactDouble) {
  for (std::uint64_t N : {4ull, 8ull, 32ull, 256ull}) {
    Rng R(N);
    // A real row's r2c output: N/2 + 1 bins, DC and Nyquist purely real.
    std::vector<CplxD> Bins(N / 2 + 1);
    for (CplxD &V : Bins)
      V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Bins.front() = CplxD(Bins.front().real(), 0.0);
    Bins.back() = CplxD(Bins.back().real(), 0.0);

    const std::vector<CplxD> Packed = packHermitianBins(Bins);
    ASSERT_EQ(Packed.size(), N / 2);
    EXPECT_EQ(Packed[0].real(), Bins.front().real());
    EXPECT_EQ(Packed[0].imag(), Bins.back().real());

    const std::vector<CplxD> Back = unpackHermitianBins(Packed);
    ASSERT_EQ(Back.size(), Bins.size());
    for (std::size_t I = 0; I != Bins.size(); ++I) {
      EXPECT_EQ(Back[I].real(), Bins[I].real()) << "bin " << I;
      EXPECT_EQ(Back[I].imag(), Bins[I].imag()) << "bin " << I;
    }
  }
}

TEST(PackedBins, FoldRoundTripsBitExactFloat) {
  for (std::uint64_t N : {4ull, 16ull, 128ull}) {
    Rng R(N + 99);
    std::vector<CplxF> Bins(N / 2 + 1);
    for (CplxF &V : Bins)
      V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                static_cast<float>(R.nextDouble(-1, 1)));
    Bins.front() = CplxF(Bins.front().real(), 0.0f);
    Bins.back() = CplxF(Bins.back().real(), 0.0f);

    const std::vector<CplxF> Back =
        unpackHermitianBins(packHermitianBins(Bins));
    ASSERT_EQ(Back.size(), Bins.size());
    for (std::size_t I = 0; I != Bins.size(); ++I) {
      EXPECT_EQ(Back[I].real(), Bins[I].real()) << "bin " << I;
      EXPECT_EQ(Back[I].imag(), Bins[I].imag()) << "bin " << I;
    }
  }
}

TEST(PackedSpectrum, UnpackedForwardMatchesRealFft2d) {
  // The packed transform and the Rows x (N/2 + 1) r2c library transform
  // describe the same spectrum; the packed path narrows to storage
  // precision between phases, so agreement is float-level, not exact.
  for (std::uint64_t N : {16ull, 64ull}) {
    const std::vector<double> Field = randomField(N * N, 7 * N);
    const HalfSpectrum Want = RealFft2d(N, N).forward(Field);
    const HalfSpectrum Got =
        unpackSpectrum(packedRealForward2d(Field, N, N), N);
    ASSERT_EQ(Got.Rows, Want.Rows);
    ASSERT_EQ(Got.Bins, Want.Bins);
    double Norm = 0.0;
    for (const CplxD &V : Want.Data)
      Norm = std::max(Norm, std::abs(V));
    const double Tol = 2.0 * floatUlpAt(Norm);
    for (std::uint64_t R = 0; R != Got.Rows; ++R)
      for (std::uint64_t B = 0; B != Got.Bins; ++B)
        EXPECT_NEAR(std::abs(Got.at(R, B) - Want.at(R, B)), 0.0, Tol)
            << "row " << R << " bin " << B;
  }
}

TEST(PackedSpectrum, ForwardMatchesReferenceDftWithinTwoUlps) {
  // The accuracy gate: max error <= 2 float ulps of the spectrum norm
  // against the O(N^2) direct-summation DFT.
  for (std::uint64_t N : {8ull, 16ull, 32ull}) {
    const std::vector<double> Field = randomField(N * N, 31 * N);
    std::vector<CplxD> Wide(N * N);
    for (std::uint64_t I = 0; I != N * N; ++I)
      Wide[I] = CplxD(Field[I], 0.0);
    const std::vector<CplxD> Ref = referenceDft2d(Wide, N, N);

    const HalfSpectrum Got =
        unpackSpectrum(packedRealForward2d(Field, N, N), N);
    EXPECT_LE(maxUlpVsReference(Got, Ref, N), 2.0) << "N=" << N;
  }
}

TEST(PackedSpectrum, InverseRoundTripsTheField) {
  for (std::uint64_t N : {16ull, 64ull}) {
    const std::vector<double> Field = randomField(N * N, 13 * N);
    const std::vector<double> Back =
        packedRealInverse2d(packedRealForward2d(Field, N, N), N);
    ASSERT_EQ(Back.size(), Field.size());
    // Storage narrows to float between the phases; the round trip is
    // float-accurate relative to the field's O(1) values.
    for (std::size_t I = 0; I != Field.size(); ++I)
      EXPECT_NEAR(Back[I], Field[I], 1e-4) << "elem " << I;
  }
}

TEST(PackedPipeline, BitIdenticalToHostReferenceBothStreamModes) {
  // The pipeline routes the identical packedRealRowTransform values
  // through the Eq. 1 layout and the permutation network, then runs the
  // same complex column kernels - so the match is exact, not approximate,
  // in either kernel stream discipline.
  for (std::uint64_t N : {64ull, 128ull}) {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    const std::vector<double> Field = randomField(N * N, 1000 + N);
    const Matrix Host = packedRealForward2d(Field, N, N);
    for (StreamMode Mode :
         {StreamMode::LaneParallel, StreamMode::ColumnSerial}) {
      const Matrix Routed =
          Fft2dProcessor::computeRealViaDynamicLayout(Field, Config, Mode);
      ASSERT_EQ(Routed.rows(), N);
      ASSERT_EQ(Routed.cols(), N / 2);
      EXPECT_EQ(Routed.maxAbsDiff(Host), 0.0)
          << "N=" << N << " mode=" << static_cast<int>(Mode);
    }
  }
}

TEST(Convolution, RealFftConvMatchesDirectOracle) {
  // FFT convolution (forward, SIMD pointwise multiply, inverse) against
  // the O(N^4) direct circular convolution, to 2 float ulps of the
  // output norm (the FFT path runs in double; float scale leaves slack
  // for the O(N^2) summation differences).
  for (std::uint64_t N : {8ull, 16ull, 32ull}) {
    const std::vector<double> Image = randomField(N * N, 3 * N);
    const std::vector<double> Kernel = randomField(N * N, 5 * N);
    const std::vector<double> Fast =
        circularConvolve2dReal(Image, Kernel, N, N);
    const std::vector<double> Slow =
        circularConvolve2dRealDirect(Image, Kernel, N, N);
    ASSERT_EQ(Fast.size(), Slow.size());
    double Norm = 0.0;
    for (const double V : Slow)
      Norm = std::max(Norm, std::abs(V));
    const double Tol = 2.0 * floatUlpAt(Norm);
    for (std::size_t I = 0; I != Fast.size(); ++I)
      EXPECT_NEAR(Fast[I], Slow[I], Tol) << "elem " << I << " N=" << N;
  }
}

TEST(Convolution, ComplexFftConvStillMatchesNaive) {
  // The pointwise multiply moved onto the SIMD kernel table; the
  // existing complex path must be unchanged in results. Convolving with
  // a delta returns the cyclically shifted signal exactly.
  const std::uint64_t N = 256;
  Rng R(77);
  std::vector<CplxD> Signal(N);
  for (CplxD &V : Signal)
    V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  std::vector<CplxD> Delta(N, CplxD(0.0, 0.0));
  Delta[1] = CplxD(1.0, 0.0); // shift by one
  const std::vector<CplxD> Out = circularConvolve(Signal, Delta);
  ASSERT_EQ(Out.size(), Signal.size());
  for (std::uint64_t I = 0; I != N; ++I) {
    const CplxD Want = Signal[(I + N - 1) % N];
    EXPECT_NEAR(std::abs(Out[I] - Want), 0.0, 1e-12) << "elem " << I;
  }
}
