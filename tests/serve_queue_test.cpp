//===- tests/serve_queue_test.cpp - Queue + admission control -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/AdmissionController.h"
#include "serve/JobQueue.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

JobRequest job(std::uint64_t Id, Picos Arrival, std::uint64_t N = 1024) {
  JobRequest J;
  J.Id = Id;
  J.N = N;
  J.Arrival = Arrival;
  return J;
}

} // namespace

TEST(JobQueue, KeepsArrivalOrderAndIndexedRemoval) {
  JobQueue Q(4);
  EXPECT_TRUE(Q.empty());
  Q.push(job(1, 100));
  Q.push(job(2, 200));
  Q.push(job(3, 300));
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.oldestArrival(), 100u);
  EXPECT_EQ(Q.at(1).Id, 2u);

  // Removing the middle element keeps the rest in order.
  EXPECT_EQ(Q.take(1).Id, 2u);
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.at(0).Id, 1u);
  EXPECT_EQ(Q.at(1).Id, 3u);
  EXPECT_EQ(Q.take(0).Id, 1u);
  EXPECT_EQ(Q.take(0).Id, 3u);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.oldestArrival(), 0u);
}

TEST(JobQueue, ReportsCapacityAndBacklog) {
  JobQueue Q(2);
  Q.push(job(1, 0, 512));
  EXPECT_FALSE(Q.full());
  Q.push(job(2, 0, 1024));
  EXPECT_TRUE(Q.full());
  EXPECT_EQ(Q.pendingElements(), 512ull * 512 + 1024ull * 1024);
}

TEST(AdmissionController, AdmitsUntilQueueFull) {
  JobQueue Q(2);
  AdmissionController Admission;
  EXPECT_EQ(Admission.decide(job(1, 0), Q, 0, 0, 0),
            AdmissionDecision::Admit);
  Q.push(job(1, 0));
  EXPECT_EQ(Admission.decide(job(2, 0), Q, 0, 0, 0),
            AdmissionDecision::Admit);
  Q.push(job(2, 0));
  // Queue at capacity: every further arrival is shed.
  EXPECT_EQ(Admission.decide(job(3, 0), Q, 0, 0, 0),
            AdmissionDecision::ShedQueueFull);
  EXPECT_EQ(Admission.decide(job(4, 0), Q, 0, 0, 0),
            AdmissionDecision::ShedQueueFull);
  EXPECT_EQ(Admission.admitted(), 2u);
  EXPECT_EQ(Admission.shedQueueFull(), 2u);
  EXPECT_EQ(Admission.shedTotal(), 2u);
}

TEST(AdmissionController, ShedsInfeasibleDeadlinesOnlyWhenEnabled) {
  JobQueue Q(8);
  JobRequest Doomed = job(1, 1000);
  Doomed.Deadline = 2000;

  // Backlog 5000 + service 1000 > deadline 2000: infeasible at arrival.
  AdmissionController Lenient(/*ShedInfeasible=*/false);
  EXPECT_EQ(Lenient.decide(Doomed, Q, 1000, 5000, 1000),
            AdmissionDecision::Admit);

  AdmissionController Strict(/*ShedInfeasible=*/true);
  EXPECT_EQ(Strict.decide(Doomed, Q, 1000, 5000, 1000),
            AdmissionDecision::ShedInfeasible);
  EXPECT_EQ(Strict.shedInfeasible(), 1u);

  // Feasible job passes the same controller.
  JobRequest Fine = job(2, 1000);
  Fine.Deadline = 10000;
  EXPECT_EQ(Strict.decide(Fine, Q, 1000, 5000, 1000),
            AdmissionDecision::Admit);

  // No deadline means the feasibility rule never applies.
  EXPECT_EQ(Strict.decide(job(3, 1000), Q, 1000, 500000, 100000),
            AdmissionDecision::Admit);
}

TEST(AdmissionController, ResetClearsCounters) {
  JobQueue Q(1);
  Q.push(job(1, 0));
  AdmissionController Admission;
  (void)Admission.decide(job(2, 0), Q, 0, 0, 0);
  EXPECT_EQ(Admission.shedTotal(), 1u);
  Admission.reset();
  EXPECT_EQ(Admission.shedTotal(), 0u);
  EXPECT_EQ(Admission.admitted(), 0u);
}
