//===- tests/fault_integration_test.cpp - Faults through the full stack ---===//
//
// Part of the fft3d project.
//
// End-to-end properties of fault injection: the memory model's counters
// and redirects, the zero-overhead off path (no fault spec => bit-identical
// behaviour), byte-identical deterministic replay, the degraded-consistency
// throughput property, and the bit-exact functional recovery after a
// mid-run vault loss.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "fft/Fft2d.h"
#include "mem3d/Memory3D.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace fft3d;

namespace {

std::shared_ptr<const FaultSpec> spec(const std::string &Text) {
  auto Spec = std::make_shared<FaultSpec>();
  std::string Error;
  EXPECT_TRUE(Spec->parse(Text, &Error)) << Error;
  return Spec;
}

/// A memory device with an optional fault schedule attached.
struct Harness {
  EventQueue Events;
  MemoryConfig Config;
  std::unique_ptr<Memory3D> Mem;

  explicit Harness(std::shared_ptr<const FaultSpec> Faults = nullptr) {
    Config.Faults = std::move(Faults);
    Mem = std::make_unique<Memory3D>(Events, Config);
  }

  /// First row-buffer-aligned address that decodes to \p Vault.
  PhysAddr addrInVault(unsigned Vault) const {
    for (PhysAddr A = 0;; A += Config.Geo.RowBufferBytes)
      if (Mem->mapper().decode(A).Vault == Vault)
        return A;
  }
};

MemRequest read8(PhysAddr Addr) {
  MemRequest Req;
  Req.Addr = Addr;
  Req.Bytes = 8;
  return Req;
}

/// Submits \p Count reads striding row buffers from \p Base; returns the
/// completion times in submission order and flags any failed completion.
std::vector<Picos> drain(Harness &H, PhysAddr Base, unsigned Count,
                         unsigned *FailedCompletions = nullptr) {
  std::vector<Picos> Done(Count, 0);
  for (unsigned I = 0; I != Count; ++I)
    H.Mem->submit(read8(Base + I * H.Config.Geo.RowBufferBytes),
                  [&Done, I, FailedCompletions](const MemRequest &Req,
                                                Picos At) {
                    Done[I] = At;
                    if (Req.Failed && FailedCompletions)
                      ++*FailedCompletions;
                  });
  H.Events.run();
  return Done;
}

SystemConfig quickConfig(std::uint64_t N) {
  SystemConfig C = SystemConfig::forProblemSize(N);
  C.MaxSimBytesPerDirection = 4ull << 20;
  C.MaxSimOpsPerDirection = 20000;
  return C;
}

Matrix randomMatrix(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(N, N);
  for (std::uint64_t I = 0; I != N; ++I)
    for (std::uint64_t J = 0; J != N; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                         static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

/// The report fields that must match bit for bit between two runs.
void expectReportsIdentical(const AppReport &A, const AppReport &B) {
  EXPECT_EQ(A.RowPhase.Elapsed, B.RowPhase.Elapsed);
  EXPECT_EQ(A.ColPhase.Elapsed, B.ColPhase.Elapsed);
  EXPECT_EQ(A.RowPhase.RowActivations, B.RowPhase.RowActivations);
  EXPECT_EQ(A.ColPhase.RowActivations, B.ColPhase.RowActivations);
  EXPECT_EQ(A.RowPhase.BytesRead, B.RowPhase.BytesRead);
  EXPECT_EQ(A.ColPhase.BytesRead, B.ColPhase.BytesRead);
  EXPECT_EQ(A.EstimatedTotalTime, B.EstimatedTotalTime);
  EXPECT_EQ(A.AppLatency, B.AppLatency);
  EXPECT_EQ(A.MigrationTime, B.MigrationTime);
  EXPECT_EQ(A.Replanned, B.Replanned);
  // Doubles compare exactly: same event schedule, same arithmetic.
  EXPECT_EQ(A.AppThroughputGBps, B.AppThroughputGBps);
  EXPECT_EQ(A.RowPhase.ThroughputGBps, B.RowPhase.ThroughputGBps);
  EXPECT_EQ(A.ColPhase.ThroughputGBps, B.ColPhase.ThroughputGBps);
  EXPECT_EQ(A.ColPhase.RowHitRate, B.ColPhase.RowHitRate);
}

std::string statsText(const Memory3D &Mem, Picos Elapsed) {
  std::ostringstream OS;
  Mem.stats().print(OS, Elapsed);
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Memory-model counters
//===----------------------------------------------------------------------===//

TEST(FaultMemory, OfflineVaultTrafficRedirectsToItsSpare) {
  Harness H(spec("vault_fail 0 at 0\n"));
  const PhysAddr InV0 = H.addrInVault(0);
  unsigned Failed = 0;
  const auto Done = drain(H, InV0, 1, &Failed);
  EXPECT_GT(Done[0], 0);
  EXPECT_EQ(Failed, 0u);
  // The redirect is charged to the failed vault; the spare does the work.
  EXPECT_EQ(H.Mem->stats().vault(0).OfflineRedirects, 1u);
  EXPECT_EQ(H.Mem->stats().vault(0).Reads, 0u);
  EXPECT_EQ(H.Mem->stats().total().Reads, 1u);
  EXPECT_EQ(H.Mem->healthyVaults(0), 15u);
}

TEST(FaultMemory, TotalOutageFailsFastAndRetryably) {
  std::string Text;
  for (unsigned V = 0; V != 16; ++V)
    Text += "vault_fail " + std::to_string(V) + " at 0\n";
  Harness H(spec(Text));
  unsigned Failed = 0;
  const auto Done = drain(H, 0, 4, &Failed);
  EXPECT_EQ(Failed, 4u);
  for (const Picos At : Done)
    EXPECT_GT(At, 0);
  EXPECT_EQ(H.Mem->stats().total().OfflineFailed, 4u);
  EXPECT_EQ(H.Mem->stats().total().Reads, 0u);
}

TEST(FaultMemory, MidRunLossFailsQueuedRequestsOnly) {
  // The vault dies 10 ns in: requests issued before that complete
  // normally, the rest of the queue fails retryably (their data was
  // never read).
  Harness H(spec("vault_fail 0 at 0.00001\n"));
  const PhysAddr InV0 = H.addrInVault(0);
  unsigned Failed = 0;
  std::vector<Picos> Done(64, 0);
  for (unsigned I = 0; I != 64; ++I)
    H.Mem->submit(read8(InV0 + I * 8),
                  [&, I](const MemRequest &Req, Picos At) {
                    Done[I] = At;
                    if (Req.Failed)
                      ++Failed;
                  });
  H.Events.run();
  EXPECT_GT(Failed, 0u);
  EXPECT_LT(Failed, 64u);
  EXPECT_EQ(H.Mem->stats().vault(0).OfflineFailed, Failed);
}

TEST(FaultMemory, EccRetriesStretchReadsAndAreCounted) {
  Harness Clean;
  Harness Faulty(spec("seed 3\ntransient rate 0.3 penalty 200\n"));
  const auto CleanDone = drain(Clean, 0, 64);
  const auto FaultyDone = drain(Faulty, 0, 64);
  EXPECT_GT(Faulty.Mem->stats().total().EccRetries, 0u);
  EXPECT_LT(Faulty.Mem->stats().total().EccRetries, 64u);
  // No retried read finishes earlier than its fault-free twin.
  for (unsigned I = 0; I != 64; ++I)
    EXPECT_GE(FaultyDone[I], CleanDone[I]) << I;
}

TEST(FaultMemory, ThrottleWindowDelaysCommands) {
  Harness Clean;
  Harness Faulty(spec("throttle from 0 until 10 period 100 duty 50\n"));
  const Picos CleanDone = drain(Clean, 0, 1)[0];
  const Picos FaultyDone = drain(Faulty, 0, 1)[0];
  // The command lands at phase 0 of the period: it waits the full 50 us
  // pause before issuing.
  EXPECT_EQ(FaultyDone, CleanDone + 50 * PicosPerMicro);
  EXPECT_GT(Faulty.Mem->stats().total().ThrottleStalls, 0u);
}

//===----------------------------------------------------------------------===//
// Zero-overhead off path
//===----------------------------------------------------------------------===//

TEST(FaultOffPath, NoSpecAndBenignSpecAreBitIdentical) {
  const SystemConfig Base = quickConfig(1024);

  SystemConfig SeedOnly = Base;
  SeedOnly.Mem.Faults = spec("seed 42\n");
  // Events scheduled far beyond any simulated time build an injector but
  // must not perturb a single timing decision.
  SystemConfig FarFuture = Base;
  FarFuture.Mem.Faults =
      spec("vault_fail 3 at 1e9\nthrottle from 1e9 until 2e9 period "
           "100 duty 50\n");

  const AppReport Plain = Fft2dProcessor(Base).runOptimized();
  const AppReport WithSeed = Fft2dProcessor(SeedOnly).runOptimized();
  const AppReport WithFuture = Fft2dProcessor(FarFuture).runOptimized();
  expectReportsIdentical(Plain, WithSeed);
  expectReportsIdentical(Plain, WithFuture);

  EXPECT_EQ(Plain.HealthyVaultsStart, 16u);
  EXPECT_EQ(Plain.HealthyVaultsEnd, 16u);
  EXPECT_FALSE(Plain.Replanned);
  EXPECT_EQ(WithFuture.HealthyVaultsEnd, 16u);

  // The same holds for the raw device: identical request streams give
  // byte-identical stats printouts.
  Harness Plain2;
  Harness Benign(spec("vault_fail 3 at 1e9\n"));
  drain(Plain2, 0, 64);
  drain(Benign, 0, 64);
  EXPECT_EQ(statsText(*Plain2.Mem, Plain2.Events.now()),
            statsText(*Benign.Mem, Benign.Events.now()));
}

//===----------------------------------------------------------------------===//
// Deterministic replay
//===----------------------------------------------------------------------===//

TEST(FaultDeterminism, IdenticalSpecReplaysByteIdentically) {
  const std::string Text = "seed 7\n"
                           "vault_fail 2 at 0.01\n"
                           "vault_recover 2 at 0.05\n"
                           "tsv_degrade 5 at 0 factor 2\n"
                           "throttle from 0 until 1 period 10 duty 20\n"
                           "transient rate 0.05 penalty 100\n";
  // Two independently parsed specs, two independent devices, the same
  // request stream: the MemStats printouts match byte for byte.
  Harness A(spec(Text));
  Harness B(spec(Text));
  drain(A, 0, 256);
  drain(B, 0, 256);
  EXPECT_EQ(A.Events.now(), B.Events.now());
  EXPECT_EQ(statsText(*A.Mem, A.Events.now()),
            statsText(*B.Mem, B.Events.now()));
  EXPECT_GT(A.Mem->stats().total().EccRetries, 0u);

  // And the full application replays identically, including the re-plan.
  SystemConfig Config = quickConfig(1024);
  Config.Mem.Faults = spec("seed 9\nvault_fail 1 at 0.2\n"
                           "transient rate 0.02 penalty 100\n");
  const AppReport R1 = Fft2dProcessor(Config).runOptimized();
  const AppReport R2 = Fft2dProcessor(Config).runOptimized();
  expectReportsIdentical(R1, R2);
}

//===----------------------------------------------------------------------===//
// Degraded consistency
//===----------------------------------------------------------------------===//

TEST(FaultDegraded, HalfFailedDeviceTracksHalfSizedHealthyDevice) {
  // A 16-vault device with 8 vaults dead at t=0 must sustain (within
  // tolerance) the throughput of a healthy 8-vault device: Eq. 1
  // re-planned for the survivors, traffic remapped onto them.
  std::string Text;
  for (unsigned V = 0; V != 8; ++V)
    Text += "vault_fail " + std::to_string(V) + " at 0\n";
  SystemConfig Degraded = quickConfig(1024);
  Degraded.Mem.Faults = spec(Text);

  SystemConfig Half = quickConfig(1024);
  Half.Mem.Geo.NumVaults = 8;
  Half.Optimized.VaultsParallel = 8;

  const AppReport DegradedR = Fft2dProcessor(Degraded).runOptimized();
  const AppReport HalfR = Fft2dProcessor(Half).runOptimized();

  EXPECT_EQ(DegradedR.HealthyVaultsStart, 8u);
  EXPECT_EQ(DegradedR.Plan.VaultsParallel, 8u);
  // Same Eq. 1 solution as the healthy half-sized device.
  EXPECT_EQ(DegradedR.Plan.W, HalfR.Plan.W);
  EXPECT_EQ(DegradedR.Plan.H, HalfR.Plan.H);
  const double Ratio =
      DegradedR.AppThroughputGBps / HalfR.AppThroughputGBps;
  EXPECT_GT(Ratio, 0.75) << DegradedR.AppThroughputGBps << " vs "
                         << HalfR.AppThroughputGBps;
  EXPECT_LT(Ratio, 1.25) << DegradedR.AppThroughputGBps << " vs "
                         << HalfR.AppThroughputGBps;
  // It never beats the healthy full device (at this size both are close
  // to kernel-bound: the optimized design's bandwidth headroom is what
  // absorbs the vault loss).
  const AppReport FullR = Fft2dProcessor(quickConfig(1024)).runOptimized();
  EXPECT_LE(DegradedR.AppThroughputGBps, FullR.AppThroughputGBps * 1.01);
}

//===----------------------------------------------------------------------===//
// Functional recovery
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, VaultLossRecoveryIsBitIdentical) {
  // The acceptance property: a 2048^2 2D FFT that loses 4 of 16 vaults at
  // the phase boundary checkpoints, re-plans for the 12 survivors,
  // migrates, and still produces max-ulp-identical output.
  const std::uint64_t N = 2048;
  const SystemConfig C = SystemConfig::forProblemSize(N);
  const Matrix In = randomMatrix(N, 77);
  const Matrix Healthy = Fft2dProcessor::computeViaDynamicLayout(In, C);
  const Matrix Recovered =
      Fft2dProcessor::computeViaDynamicLayoutWithVaultLoss(In, C, 4);
  EXPECT_DOUBLE_EQ(Recovered.maxAbsDiff(Healthy), 0.0);

  // Zero failures degenerates to the plain path.
  const std::uint64_t Small = 128;
  const SystemConfig SC = SystemConfig::forProblemSize(Small);
  const Matrix SIn = randomMatrix(Small, 78);
  EXPECT_DOUBLE_EQ(
      Fft2dProcessor::computeViaDynamicLayoutWithVaultLoss(SIn, SC, 0)
          .maxAbsDiff(Fft2dProcessor::computeViaDynamicLayout(SIn, SC)),
      0.0);

  // Odd survivor counts work too: 16 - 5 = 11 vaults.
  EXPECT_DOUBLE_EQ(
      Fft2dProcessor::computeViaDynamicLayoutWithVaultLoss(SIn, SC, 5)
          .maxAbsDiff(Fft2dProcessor::computeViaDynamicLayout(SIn, SC)),
      0.0);
}
