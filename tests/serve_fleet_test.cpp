//===- tests/serve_fleet_test.cpp - Fleet front-end tier ------------------===//
//
// Part of the fft3d project.
//
// The fleet serving tier in isolation and end to end: routing policy
// determinism, consistent-hash ring stability under membership changes,
// the shared LRU plan cache (eviction order, hit accounting, health-epoch
// keying), per-tenant token buckets, the tiered brownout ladder, the
// autoscaler's hysteresis guards, and whole-fleet replay determinism.
//
//===----------------------------------------------------------------------===//

#include "serve/fleet/FleetSimulator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace fft3d;

namespace {

/// Shared fast service model: small simulation budget, default device.
ServiceModel &model() {
  static ServiceModel Model(MemoryConfig(), /*MaxSimBytes=*/2ull << 20,
                            /*MaxSimOps=*/10000);
  return Model;
}

JobRequest job(std::uint64_t Id, std::uint64_t Tenant, std::uint64_t N = 512,
               JobPrecision Precision = JobPrecision::Fp32) {
  JobRequest J;
  J.Id = Id;
  J.Tenant = Tenant;
  J.N = N;
  J.Precision = Precision;
  return J;
}

FleetConfig fleetConfig(unsigned Stacks) {
  FleetConfig Config;
  Config.NumStacks = Stacks;
  Config.QueueCapacity = 16;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Routing policies
//===----------------------------------------------------------------------===//

TEST(FleetRouter, ParsesEveryPolicyNameAndRejectsTheRest) {
  RoutePolicy Policy;
  EXPECT_TRUE(parseRoutePolicy("hash", Policy));
  EXPECT_EQ(Policy, RoutePolicy::Hash);
  EXPECT_TRUE(parseRoutePolicy("least-loaded", Policy));
  EXPECT_EQ(Policy, RoutePolicy::LeastLoaded);
  EXPECT_TRUE(parseRoutePolicy("affinity", Policy));
  EXPECT_EQ(Policy, RoutePolicy::Affinity);
  std::string Error;
  EXPECT_FALSE(parseRoutePolicy("round-robin", Policy, &Error));
  EXPECT_NE(Error.find("round-robin"), std::string::npos);
}

TEST(FleetRouter, DecisionsAreDeterministic) {
  // Two independently constructed routers with the same (policy, seed)
  // make identical decisions for an identical job sequence.
  for (const RoutePolicy Policy :
       {RoutePolicy::Hash, RoutePolicy::LeastLoaded, RoutePolicy::Affinity}) {
    FleetRouter A(Policy, 4, 64, 7);
    FleetRouter B(Policy, 4, 64, 7);
    StackDispatchSet SetA(4), SetB(4);
    for (std::uint64_t I = 1; I <= 200; ++I) {
      const JobRequest J = job(I, I % 5, I % 2 ? 512 : 1024);
      const unsigned SA = A.route(J, SetA);
      const unsigned SB = B.route(J, SetB);
      ASSERT_EQ(SA, SB) << routePolicyName(Policy) << " job " << I;
      // Mirror a little backlog so least-loaded sees evolving state.
      SetA.endpoint(SA).Backlog += 100;
      SetB.endpoint(SB).Backlog += 100;
    }
  }
}

TEST(FleetRouter, HashKeepsATenantOnOneStack) {
  FleetRouter Router(RoutePolicy::Hash, 8);
  StackDispatchSet Set(8);
  for (std::uint64_t Tenant = 1; Tenant <= 20; ++Tenant) {
    const unsigned First = Router.route(job(1, Tenant), Set);
    for (std::uint64_t I = 2; I <= 10; ++I)
      ASSERT_EQ(Router.route(job(I, Tenant), Set), First)
          << "tenant " << Tenant;
  }
}

TEST(FleetRouter, HashRingMovesOnlyTheDeadStacksKeys) {
  // The consistent-hashing contract: when a stack leaves, keys that
  // lived on survivors stay put; only the dead stack's keys move (about
  // K/S of them). A modulo router would reshuffle nearly everything.
  const unsigned Stacks = 8;
  const std::uint64_t Keys = 4000;
  FleetRouter Router(RoutePolicy::Hash, Stacks, 64, 3);
  StackDispatchSet Set(Stacks);

  std::map<std::uint64_t, unsigned> Before;
  for (std::uint64_t K = 1; K <= Keys; ++K)
    Before[K] = Router.hashStack(K, Set);

  const unsigned Dead = 5;
  Set.endpoint(Dead).Online = false;
  std::uint64_t Moved = 0;
  for (std::uint64_t K = 1; K <= Keys; ++K) {
    const unsigned Now = Router.hashStack(K, Set);
    ASSERT_NE(Now, Dead);
    if (Before[K] != Dead)
      ASSERT_EQ(Now, Before[K]) << "survivor key " << K << " moved";
    else
      ++Moved;
  }
  // All the dead stack's keys moved, and they are roughly a 1/S share
  // (a healthy ring spread: within 3x of fair on 4000 keys).
  EXPECT_GT(Moved, 0u);
  EXPECT_LT(Moved, 3 * Keys / Stacks);

  // The stack coming back restores the original mapping exactly.
  Set.endpoint(Dead).Online = true;
  for (std::uint64_t K = 1; K <= Keys; ++K)
    ASSERT_EQ(Router.hashStack(K, Set), Before[K]);
}

TEST(FleetRouter, LeastLoadedPicksSmallestBacklogLowestIndexOnTies) {
  FleetRouter Router(RoutePolicy::LeastLoaded, 4);
  StackDispatchSet Set(4);
  // All empty: lowest index wins the tie.
  EXPECT_EQ(Router.route(job(1, 0), Set), 0u);
  Set.endpoint(0).Backlog = 300;
  Set.endpoint(1).Backlog = 100;
  Set.endpoint(2).Backlog = 200;
  Set.endpoint(3).Backlog = 100;
  // 1 and 3 tie at 100: the lower index is chosen.
  EXPECT_EQ(Router.route(job(2, 0), Set), 1u);
  Set.endpoint(1).Online = false;
  EXPECT_EQ(Router.route(job(3, 0), Set), 3u);
}

TEST(FleetRouter, AffinityReturnsShapesToTheirPlanningStack) {
  FleetRouter Router(RoutePolicy::Affinity, 4);
  StackDispatchSet Set(4);
  Set.endpoint(0).Backlog = 500;

  // First sight of the shape falls back to least-loaded (stack 1).
  const unsigned First = Router.route(job(1, 0, 2048), Set);
  EXPECT_EQ(First, 1u);
  // The same shape returns there even when another stack is now idler.
  Set.endpoint(1).Backlog = 900;
  EXPECT_EQ(Router.route(job(2, 0, 2048), Set), First);
  // A different shape (other N, or same N at fp16) is routed afresh.
  EXPECT_EQ(Router.route(job(3, 0, 4096), Set), 2u);
  EXPECT_EQ(Router.route(job(4, 0, 2048, JobPrecision::Fp16), Set), 2u);

  // Dropping the stack's affinities re-learns from the fallback.
  Set.endpoint(First).Online = false;
  Router.dropStackAffinity(First);
  const unsigned Relearned = Router.route(job(5, 0, 2048), Set);
  EXPECT_NE(Relearned, First);
  Set.endpoint(Relearned).Backlog += 10000;
  EXPECT_EQ(Router.route(job(6, 0, 2048), Set), Relearned);
}

TEST(FleetRouter, NoRoutableStackReturnsTheSentinel) {
  for (const RoutePolicy Policy :
       {RoutePolicy::Hash, RoutePolicy::LeastLoaded, RoutePolicy::Affinity}) {
    FleetRouter Router(Policy, 2);
    StackDispatchSet Set(2);
    Set.endpoint(0).Online = false;
    Set.endpoint(1).Active = false;
    EXPECT_EQ(Router.route(job(1, 1), Set), FleetRouter::NoStack)
        << routePolicyName(Policy);
  }
}

//===----------------------------------------------------------------------===//
// Dispatch endpoints
//===----------------------------------------------------------------------===//

TEST(StackDispatch, RefreshHealthReportsEachEdgeOnce) {
  struct ScriptedHealth final : StackHealthSource {
    bool Up = true;
    bool stackUsable(unsigned Stack, Picos) const override {
      return Stack != 1 || Up;
    }
    std::uint64_t stackHealthEpoch(unsigned Stack, Picos) const override {
      return Stack == 1 && !Up ? 1 : 0;
    }
  } Health;

  StackDispatchSet Set(3);
  EXPECT_TRUE(Set.refreshHealth(&Health, 0).empty());
  Health.Up = false;
  StackHealthDelta Down = Set.refreshHealth(&Health, 1);
  ASSERT_EQ(Down.WentOffline.size(), 1u);
  EXPECT_EQ(Down.WentOffline[0], 1u);
  EXPECT_EQ(Set.endpoint(1).HealthEpoch, 1u);
  EXPECT_FALSE(Set.endpoint(1).routable());
  EXPECT_EQ(Set.routableCount(), 2u);
  // Same state again: no new edge.
  EXPECT_TRUE(Set.refreshHealth(&Health, 2).empty());
  Health.Up = true;
  StackHealthDelta UpAgain = Set.refreshHealth(&Health, 3);
  ASSERT_EQ(UpAgain.CameOnline.size(), 1u);
  EXPECT_EQ(UpAgain.CameOnline[0], 1u);
  // A null source means always healthy.
  EXPECT_TRUE(Set.refreshHealth(nullptr, 4).empty());
}

//===----------------------------------------------------------------------===//
// Shared plan cache
//===----------------------------------------------------------------------===//

TEST(SharedPlanCache, SharedModeCollapsesHealthyStacksToOneEntry) {
  SharedPlanCache Shared(PlanCacheMode::Shared, 1 << 20, 100);
  // Stack 0 plans the shape; every other healthy stack then hits.
  EXPECT_EQ(Shared.charge(2048, 16, 0, 0), 100);
  EXPECT_EQ(Shared.charge(2048, 16, 1, 0), 0);
  EXPECT_EQ(Shared.charge(2048, 16, 7, 0), 0);
  EXPECT_EQ(Shared.entries(), 1u);

  // The per-stack baseline pays once per stack instead.
  SharedPlanCache PerStack(PlanCacheMode::PerStack, 1 << 20, 100);
  EXPECT_EQ(PerStack.charge(2048, 16, 0, 0), 100);
  EXPECT_EQ(PerStack.charge(2048, 16, 1, 0), 100);
  EXPECT_EQ(PerStack.charge(2048, 16, 0, 0), 0);
  EXPECT_EQ(PerStack.entries(), 2u);
}

TEST(SharedPlanCache, HealthEpochKeysDegradedPlansSeparately) {
  SharedPlanCache Cache(PlanCacheMode::Shared, 1 << 20, 100);
  EXPECT_EQ(Cache.charge(2048, 16, 1, 0), 100); // shared slot
  // The stack's health changed: its plans are degraded-specific now.
  EXPECT_EQ(Cache.charge(2048, 16, 1, 2), 100);
  EXPECT_EQ(Cache.charge(2048, 16, 1, 2), 0);
  // A later epoch orphans the old degraded entry.
  EXPECT_EQ(Cache.charge(2048, 16, 1, 3), 100);
  EXPECT_EQ(Cache.entries(), 3u);

  // Invalidation drops the stack-keyed entries but never the shared
  // geometry-only slot.
  Cache.invalidateStack(1);
  EXPECT_EQ(Cache.stats().Invalidations, 2u);
  EXPECT_TRUE(Cache.contains(2048, 16, 0, 0));
  EXPECT_FALSE(Cache.contains(2048, 16, 1, 2));
  EXPECT_FALSE(Cache.contains(2048, 16, 1, 3));
}

TEST(SharedPlanCache, EvictsTheLeastRecentlyUsedEntryFirst) {
  // Entry footprint is 4096 + 2N; capacity fits exactly two N=1024
  // entries (6144 bytes each).
  SharedPlanCache Cache(PlanCacheMode::PerStack, 13000, 100);
  Cache.charge(1024, 16, 0, 0); // A
  Cache.charge(1024, 16, 1, 0); // B
  EXPECT_EQ(Cache.entries(), 2u);
  // Touch A so B is the LRU victim when C arrives.
  EXPECT_EQ(Cache.charge(1024, 16, 0, 0), 0);
  Cache.charge(1024, 16, 2, 0); // C evicts B
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_TRUE(Cache.contains(1024, 16, 0, 0));
  EXPECT_FALSE(Cache.contains(1024, 16, 1, 0));
  EXPECT_TRUE(Cache.contains(1024, 16, 2, 0));
  // Bytes track the live set; the peak saw the pre-eviction overshoot.
  EXPECT_EQ(Cache.stats().Bytes, 2u * 6144u);
  EXPECT_EQ(Cache.stats().PeakBytes, 3u * 6144u);
}

TEST(SharedPlanCache, ZeroCapacityModelsTheCachelessBaseline) {
  SharedPlanCache Cache(PlanCacheMode::Shared, 0, 250);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Cache.charge(2048, 16, 0, 0), 250);
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
  EXPECT_EQ(Cache.stats().Misses, 5u);
  EXPECT_DOUBLE_EQ(Cache.stats().hitRate(), 0.0);
}

//===----------------------------------------------------------------------===//
// Tenant quotas and the brownout ladder
//===----------------------------------------------------------------------===//

TEST(TenantQuota, BucketAdmitsTheBurstThenShedsUntilRefill) {
  TenantQuotaPolicy Policy;
  Policy.Enabled = true;
  Policy.JobsPerSec = 2.0;
  Policy.Burst = 3.0;
  TenantQuota Quota(Policy);

  // The first arrival finds a full bucket; the burst drains it.
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(Quota.admit(7, 0));
  EXPECT_FALSE(Quota.admit(7, 0));
  EXPECT_EQ(Quota.shedJobs(), 1u);

  // Untenanted jobs and other tenants are unaffected.
  EXPECT_TRUE(Quota.admit(0, 0));
  EXPECT_TRUE(Quota.admit(8, 0));

  // One second at 2 jobs/s refills two whole tokens.
  EXPECT_TRUE(Quota.admit(7, PicosPerSecond));
  EXPECT_TRUE(Quota.admit(7, PicosPerSecond));
  EXPECT_FALSE(Quota.admit(7, PicosPerSecond));

  // Refill caps at the burst: a long-idle tenant gets 3, not 2000.
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(Quota.admit(7, 1000 * PicosPerSecond));
  EXPECT_FALSE(Quota.admit(7, 1000 * PicosPerSecond));
  EXPECT_EQ(Quota.throttledTenants(), 1u);
}

TEST(TenantQuota, DisabledPolicyAdmitsEverything) {
  TenantQuota Quota(TenantQuotaPolicy{});
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(Quota.admit(1, 0));
  EXPECT_EQ(Quota.shedJobs(), 0u);
}

TEST(BrownoutLadder, ShedsTiersStrictlyFromTheBottom) {
  BrownoutLadderPolicy Policy;
  Policy.Enabled = true;
  Policy.NumTiers = 4;
  Policy.Window = 4;
  BrownoutLadder Ladder(Policy);

  // Level 0 sheds nothing at all.
  for (unsigned P = 0; P != 6; ++P)
    EXPECT_FALSE(Ladder.sheds(P));

  auto Escalate = [&] {
    for (unsigned I = 0; I != 4; ++I)
      Ladder.recordOutcome(true);
  };

  // Level 1: only the bottom tier (priority >= 3, clamped) sheds.
  Escalate();
  EXPECT_EQ(Ladder.level(), 1u);
  EXPECT_FALSE(Ladder.sheds(2));
  EXPECT_TRUE(Ladder.sheds(3));
  EXPECT_TRUE(Ladder.sheds(9)); // beyond NumTiers clamps into the bottom
  // Level 2 also takes tier 2; urgent tiers still pass.
  Escalate();
  EXPECT_EQ(Ladder.level(), 2u);
  EXPECT_FALSE(Ladder.sheds(1));
  EXPECT_TRUE(Ladder.sheds(2));
  // The top of the ladder sheds everything, including priority 0 - and
  // the level is capped there.
  Escalate();
  Escalate();
  EXPECT_EQ(Ladder.level(), 4u);
  EXPECT_TRUE(Ladder.sheds(0));
  Escalate();
  EXPECT_EQ(Ladder.level(), 4u);
  EXPECT_EQ(Ladder.escalations(), 4u);
}

TEST(BrownoutLadder, HysteresisBandHoldsAndRecoveryStepsDown) {
  BrownoutLadderPolicy Policy;
  Policy.Enabled = true;
  Policy.NumTiers = 4;
  Policy.Window = 4;
  Policy.EnterMissRate = 0.75;
  Policy.ExitMissRate = 0.25;
  BrownoutLadder Ladder(Policy);

  for (unsigned I = 0; I != 4; ++I)
    Ladder.recordOutcome(true);
  EXPECT_EQ(Ladder.level(), 1u);

  // A 50% miss window sits between the thresholds: no movement, in
  // either direction, however often it repeats.
  for (unsigned I = 0; I != 12; ++I)
    Ladder.recordOutcome(I % 2 == 0);
  EXPECT_EQ(Ladder.level(), 1u);

  // Holds retain the sliding window: the alternating phase left it at
  // [miss, hit, miss, hit], so a single hit displaces the oldest miss,
  // drops the rate to 1/4 = the exit threshold, and steps the ladder
  // down without needing a whole fresh window.
  Ladder.recordOutcome(false);
  EXPECT_EQ(Ladder.level(), 0u);
  EXPECT_EQ(Ladder.escalations(), 1u);

  // The step-down *did* clear the window, so re-escalating needs a full
  // fresh window of misses - three are not enough...
  for (unsigned I = 0; I != 3; ++I)
    Ladder.recordOutcome(true);
  EXPECT_EQ(Ladder.level(), 0u);
  // ...the fourth completes it.
  Ladder.recordOutcome(true);
  EXPECT_EQ(Ladder.level(), 1u);
  EXPECT_EQ(Ladder.escalations(), 2u);
}

//===----------------------------------------------------------------------===//
// Autoscaler
//===----------------------------------------------------------------------===//

namespace {

AutoscalePolicy scalerPolicy() {
  AutoscalePolicy Policy;
  Policy.Enabled = true;
  Policy.TargetP99Ms = 10.0;
  Policy.EvalPeriod = 10 * PicosPerMilli;
  Policy.Cooldown = 50 * PicosPerMilli;
  Policy.GrowStreak = 2;
  Policy.ShrinkStreak = 4;
  Policy.WindowSize = 64;
  Policy.MinSamples = 8;
  return Policy;
}

/// Overwrites the scaler's whole latency window with \p Ms.
void fillWindow(Autoscaler &Scaler, double Ms, std::size_t Count = 64) {
  for (std::size_t I = 0; I != Count; ++I)
    Scaler.recordLatency(Ms);
}

} // namespace

TEST(Autoscaler, EmptyWindowIsNoSignalNeverShrink) {
  // The control-loop version of the SloTracker cold-start rule: below
  // MinSamples the p99 is absent, and absent means hold - NOT "p99 is
  // zero, shrink everything".
  Autoscaler Scaler(scalerPolicy());
  EXPECT_FALSE(Scaler.windowedP99().has_value());
  for (int Eval = 0; Eval != 10; ++Eval)
    EXPECT_EQ(Scaler.evaluate(Eval * 10 * PicosPerMilli, 4, 4),
              ScaleDecision::Hold);
  // A few samples, still below the floor: same answer.
  Scaler.recordLatency(0.1);
  Scaler.recordLatency(0.1);
  EXPECT_FALSE(Scaler.windowedP99().has_value());
  EXPECT_EQ(Scaler.evaluate(PicosPerSecond, 4, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.shrinkDecisions(), 0u);
}

TEST(Autoscaler, GrowsOnlyAfterTheFullBreachStreak) {
  Autoscaler Scaler(scalerPolicy());
  fillWindow(Scaler, 100.0); // far over the 10 ms target
  const Picos Tick = 10 * PicosPerMilli;
  EXPECT_EQ(Scaler.evaluate(1 * Tick, 1, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(2 * Tick, 1, 4), ScaleDecision::Grow);
  // With every stack already active the breach can't grow anything.
  Autoscaler Full(scalerPolicy());
  fillWindow(Full, 100.0);
  EXPECT_EQ(Full.evaluate(1 * Tick, 4, 4), ScaleDecision::Hold);
  EXPECT_EQ(Full.evaluate(2 * Tick, 4, 4), ScaleDecision::Hold);
  EXPECT_EQ(Full.growDecisions(), 0u);
}

TEST(Autoscaler, CooldownBlocksBackToBackActions) {
  Autoscaler Scaler(scalerPolicy());
  fillWindow(Scaler, 100.0);
  const Picos Tick = 10 * PicosPerMilli;
  EXPECT_EQ(Scaler.evaluate(1 * Tick, 1, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(2 * Tick, 1, 4), ScaleDecision::Grow);
  Scaler.actionTaken(2 * Tick);
  // Still breached, but the 50 ms cooldown swallows the next ticks.
  EXPECT_EQ(Scaler.evaluate(3 * Tick, 2, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(4 * Tick, 2, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(6 * Tick, 2, 4), ScaleDecision::Hold);
  // Past the cooldown the streak rebuilds from zero before acting
  // again: the first post-cooldown breach is only 1 of 2...
  EXPECT_EQ(Scaler.evaluate(8 * Tick, 2, 4), ScaleDecision::Hold);
  // ...and the second completes the streak.
  EXPECT_EQ(Scaler.evaluate(9 * Tick, 2, 4), ScaleDecision::Grow);
}

TEST(Autoscaler, SquareWaveLoadDoesNotFlap) {
  // Load alternating between breach-high and breach-low every evaluation
  // never completes either streak: the scaler holds forever instead of
  // thrashing grow/shrink.
  Autoscaler Scaler(scalerPolicy());
  const Picos Tick = 10 * PicosPerMilli;
  for (int Eval = 1; Eval <= 40; ++Eval) {
    fillWindow(Scaler, Eval % 2 ? 100.0 : 0.5);
    EXPECT_EQ(Scaler.evaluate(Eval * Tick, 2, 4), ScaleDecision::Hold)
        << "evaluation " << Eval;
  }
  EXPECT_EQ(Scaler.growDecisions(), 0u);
  EXPECT_EQ(Scaler.shrinkDecisions(), 0u);

  // A slower square wave (period 8 evals) lets the grow streak (2)
  // complete but not the shrink streak (4): the fleet ratchets up under
  // pressure yet refuses to give capacity back on a brief quiet phase.
  Autoscaler Slow(scalerPolicy());
  std::uint64_t Applied = 0;
  for (int Eval = 1; Eval <= 80; ++Eval) {
    fillWindow(Slow, (Eval / 4) % 2 == 0 ? 100.0 : 0.5);
    const Picos Now = Eval * Tick;
    if (Slow.evaluate(Now, 2, 4) != ScaleDecision::Hold) {
      Slow.actionTaken(Now);
      ++Applied;
    }
  }
  EXPECT_EQ(Slow.shrinkDecisions(), 0u);
  EXPECT_GT(Slow.growDecisions(), 0u);
  EXPECT_EQ(Applied, Slow.growDecisions());
}

TEST(Autoscaler, DeadBandHoldsNearTheTarget) {
  Autoscaler Scaler(scalerPolicy());
  // p99 of 7 ms: under the 10 ms target but above the 5 ms shrink line.
  fillWindow(Scaler, 7.0);
  const Picos Tick = 10 * PicosPerMilli;
  for (int Eval = 1; Eval <= 20; ++Eval)
    EXPECT_EQ(Scaler.evaluate(Eval * Tick, 3, 4), ScaleDecision::Hold);
  // Truly idle (below the shrink fraction) the streak completes.
  fillWindow(Scaler, 0.5);
  EXPECT_EQ(Scaler.evaluate(21 * Tick, 3, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(22 * Tick, 3, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(23 * Tick, 3, 4), ScaleDecision::Hold);
  EXPECT_EQ(Scaler.evaluate(24 * Tick, 3, 4), ScaleDecision::Shrink);
  // Never below the floor.
  Autoscaler Floor(scalerPolicy());
  fillWindow(Floor, 0.5);
  for (int Eval = 1; Eval <= 10; ++Eval)
    EXPECT_EQ(Floor.evaluate(Eval * Tick, 1, 4), ScaleDecision::Hold);
}

//===----------------------------------------------------------------------===//
// The fleet end to end
//===----------------------------------------------------------------------===//

TEST(FleetSimulator, RunReplaysByteIdentically) {
  FleetConfig Config = fleetConfig(4);
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 300, 200.0, 9,
                              model(), 6);
  const FleetResult A = FleetSimulator(Config, model()).run(Stream);
  const FleetResult B = FleetSimulator(Config, model()).run(Stream);

  EXPECT_EQ(A.EndTime, B.EndTime);
  EXPECT_EQ(A.LastCompletion, B.LastCompletion);
  EXPECT_EQ(A.Summary.Completed, B.Summary.Completed);
  EXPECT_EQ(A.Summary.Shed, B.Summary.Shed);
  // Doubles compare exactly: identical schedules, identical arithmetic.
  EXPECT_EQ(A.Summary.ThroughputJobsPerSec, B.Summary.ThroughputJobsPerSec);
  EXPECT_EQ(A.Summary.P50LatencyMs, B.Summary.P50LatencyMs);
  EXPECT_EQ(A.Summary.P99LatencyMs, B.Summary.P99LatencyMs);
  EXPECT_EQ(A.Cache.Hits, B.Cache.Hits);
  EXPECT_EQ(A.Cache.Misses, B.Cache.Misses);
  for (unsigned S = 0; S != 4; ++S) {
    EXPECT_EQ(A.Stacks[S].RoutedJobs, B.Stacks[S].RoutedJobs);
    EXPECT_EQ(A.Stacks[S].CompletedJobs, B.Stacks[S].CompletedJobs);
  }
  EXPECT_GT(A.Summary.Completed, 0u);
}

TEST(FleetSimulator, SharedCacheBeatsPerStackMemoizationOnRepeats) {
  // A repeat-heavy mix (two shapes, hundreds of jobs) over 4 stacks:
  // shared keying plans each shape once for the fleet, the per-stack
  // baseline re-plans per stack, cache-less re-plans per dispatch.
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 400, 150.0, 5,
                              model(), 4);

  FleetConfig Shared = fleetConfig(4);
  FleetConfig PerStack = fleetConfig(4);
  PerStack.CacheMode = PlanCacheMode::PerStack;
  FleetConfig None = fleetConfig(4);
  None.CacheBytes = 0;

  const FleetResult S = FleetSimulator(Shared, model()).run(Stream);
  const FleetResult P = FleetSimulator(PerStack, model()).run(Stream);
  const FleetResult N = FleetSimulator(None, model()).run(Stream);

  EXPECT_EQ(S.CacheModeName, "shared");
  EXPECT_EQ(P.CacheModeName, "per-stack");
  EXPECT_EQ(N.CacheModeName, "none");
  EXPECT_LT(S.Cache.Misses, P.Cache.Misses);
  EXPECT_GT(S.Cache.hitRate(), P.Cache.hitRate());
  EXPECT_EQ(N.Cache.Hits, 0u);
  EXPECT_EQ(N.Cache.Misses,
            N.Summary.Completed); // every dispatch re-planned
  // Same stream everywhere: the comparison is apples to apples.
  EXPECT_EQ(S.Summary.Offered, P.Summary.Offered);
  EXPECT_EQ(S.Summary.Offered, N.Summary.Offered);
}

TEST(FleetSimulator, OutstandingStateIsStructurallyBounded) {
  // The flat-memory contract: outstanding jobs never exceed
  // S * (QueueCapacity + 1) no matter how overloaded the fleet is.
  FleetConfig Config = fleetConfig(2);
  Config.QueueCapacity = 4;
  // Savage overload: everything funnels into two small queues.
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 500, 5000.0, 1,
                              model(), 3);
  const FleetResult R = FleetSimulator(Config, model()).run(Stream);
  EXPECT_LE(R.PeakOutstanding, 2u * (4u + 1u));
  EXPECT_GT(R.ShedQueueFull, 0u);
  EXPECT_EQ(R.Summary.Offered, 500u);
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 500u);
}

TEST(FleetSimulator, QuotaShedsAHogTenantsOverflow) {
  FleetConfig Config = fleetConfig(2);
  Config.Quota.Enabled = true;
  Config.Quota.JobsPerSec = 10.0;
  Config.Quota.Burst = 5.0;
  // One tenant fires the whole stream at 500 jobs/s: far past its quota.
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 200, 500.0, 2,
                              model(), 1);
  const FleetResult R = FleetSimulator(Config, model()).run(Stream);
  EXPECT_GT(R.ShedQuota, 0u);
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 200u);
}

TEST(FleetSimulator, AutoscaledFleetStartsAtTheFloorAndGrows) {
  FleetConfig Config = fleetConfig(4);
  Config.Autoscale.Enabled = true;
  Config.Autoscale.TargetP99Ms = 5.0;
  Config.Autoscale.MinSamples = 16;
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 400, 300.0, 3,
                              model(), 4);
  const FleetResult R = FleetSimulator(Config, model()).run(Stream);
  // Heavy load on a one-stack floor: the scaler must have grown.
  EXPECT_GT(R.ScaleUps, 0u);
  EXPECT_GT(R.FinalActiveStacks, 1u);
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 400u);
}

TEST(FleetSimulator, ExportPublishesFleetMetrics) {
  FleetConfig Config = fleetConfig(2);
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 100, 100.0, 4,
                              model(), 2);
  const FleetResult R = FleetSimulator(Config, model()).run(Stream);
  MetricsRegistry Registry;
  FleetSimulator::exportTo(R, Registry);
  const MetricLabels L{{"router", "hash"}};
  EXPECT_EQ(Registry.counter("fleet.completed", L).value(),
            R.Summary.Completed);
  EXPECT_EQ(Registry.counter("fleet.cache_hits", L).value(), R.Cache.Hits);
  EXPECT_DOUBLE_EQ(Registry.gauge("fleet.cache_hit_rate", L).value(),
                   R.Cache.hitRate());
  const MetricLabels S0{{"router", "hash"}, {"stack", "0"}};
  EXPECT_EQ(Registry.counter("fleet.stack_routed", S0).value(),
            R.Stacks[0].RoutedJobs);
}
