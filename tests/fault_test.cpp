//===- tests/fault_test.cpp - Fault spec and injector unit tests ----------===//
//
// Part of the fft3d project.
//
// Pins the fault subsystem's contract: the spec grammar (units, validation,
// line-numbered errors), the deterministic spare mapping, the injector's
// step-function timelines and stateless hash decisions, and the layout
// planner's degraded re-plan.
//
//===----------------------------------------------------------------------===//

#include "fault/ClusterFaults.h"
#include "fault/FaultInjector.h"
#include "layout/LayoutPlanner.h"
#include "mem3d/Geometry.h"
#include "mem3d/Timing.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fft3d;

namespace {

FaultSpec parsed(const std::string &Text) {
  FaultSpec Spec;
  std::string Error;
  EXPECT_TRUE(Spec.parse(Text, &Error)) << Error;
  return Spec;
}

/// Expects \p Text to fail parsing with an error naming \p LineNo.
void expectParseError(const std::string &Text, unsigned LineNo) {
  FaultSpec Spec;
  std::string Error;
  EXPECT_FALSE(Spec.parse(Text, &Error)) << Text;
  EXPECT_NE(Error.find("line " + std::to_string(LineNo)), std::string::npos)
      << Error;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesEveryDirectiveWithUnits) {
  const FaultSpec Spec = parsed("# full schedule\n"
                                "seed 99\n"
                                "vault_fail 3 at 5\n"
                                "vault_recover 3 at 12.5  # heals\n"
                                "tsv_degrade 7 at 1 factor 2\n"
                                "throttle from 2 until 10 period 100 duty 25\n"
                                "transient rate 0.01 penalty 50\n"
                                "job_fail_rate 0.05\n");
  EXPECT_EQ(Spec.seed(), 99u);
  EXPECT_FALSE(Spec.empty());
  EXPECT_EQ(Spec.maxVaultNamed(), 7);

  ASSERT_EQ(Spec.vaultEvents().size(), 2u);
  EXPECT_EQ(Spec.vaultEvents()[0].Vault, 3u);
  EXPECT_EQ(Spec.vaultEvents()[0].At, 5 * PicosPerMilli);
  EXPECT_FALSE(Spec.vaultEvents()[0].Online);
  EXPECT_EQ(Spec.vaultEvents()[1].At,
            static_cast<Picos>(12.5 * PicosPerMilli));
  EXPECT_TRUE(Spec.vaultEvents()[1].Online);

  ASSERT_EQ(Spec.tsvEvents().size(), 1u);
  EXPECT_EQ(Spec.tsvEvents()[0].Vault, 7u);
  EXPECT_DOUBLE_EQ(Spec.tsvEvents()[0].Factor, 2.0);

  ASSERT_EQ(Spec.throttleWindows().size(), 1u);
  const ThrottleWindow &W = Spec.throttleWindows()[0];
  EXPECT_EQ(W.From, 2 * PicosPerMilli);
  EXPECT_EQ(W.Until, 10 * PicosPerMilli);
  EXPECT_EQ(W.Period, 100 * PicosPerMicro);
  EXPECT_DOUBLE_EQ(W.Duty, 0.25);

  EXPECT_DOUBLE_EQ(Spec.transientReadRate(), 0.01);
  EXPECT_EQ(Spec.eccRetryPenalty(), nanosToPicos(50));
  EXPECT_DOUBLE_EQ(Spec.jobFailRate(), 0.05);
}

TEST(FaultSpec, EventsSortChronologicallyRegardlessOfLineOrder) {
  const FaultSpec Spec = parsed("vault_fail 1 at 9\n"
                                "vault_fail 0 at 3\n"
                                "vault_recover 1 at 6\n");
  ASSERT_EQ(Spec.vaultEvents().size(), 3u);
  EXPECT_EQ(Spec.vaultEvents()[0].At, 3 * PicosPerMilli);
  EXPECT_EQ(Spec.vaultEvents()[1].At, 6 * PicosPerMilli);
  EXPECT_EQ(Spec.vaultEvents()[2].At, 9 * PicosPerMilli);
}

TEST(FaultSpec, SeedOnlySpecIsTheOffPath) {
  EXPECT_TRUE(FaultSpec().empty());
  const FaultSpec Spec = parsed("seed 7\n# nothing else\n");
  EXPECT_TRUE(Spec.empty());
  EXPECT_EQ(Spec.maxVaultNamed(), -1);
}

TEST(FaultSpec, ParsesFromStream) {
  std::istringstream In("vault_fail 2 at 1\n");
  FaultSpec Spec;
  ASSERT_TRUE(Spec.parse(In));
  ASSERT_EQ(Spec.vaultEvents().size(), 1u);
  EXPECT_EQ(Spec.vaultEvents()[0].Vault, 2u);
}

TEST(FaultSpec, RejectsMalformedInputWithLineNumbers) {
  expectParseError("frobnicate 3\n", 1);
  expectParseError("seed 1\nvault_fail 0\n", 2);
  expectParseError("vault_fail 0 at -3\n", 1);
  expectParseError("seed x\n", 1);
  // Validation rules: factor >= 1, duty in [0, 100), rates in [0, 1),
  // until > from, period > 0.
  expectParseError("tsv_degrade 0 at 1 factor 0.5\n", 1);
  expectParseError("throttle from 0 until 10 period 100 duty 100\n", 1);
  expectParseError("throttle from 10 until 10 period 100 duty 25\n", 1);
  expectParseError("throttle from 0 until 10 period 0 duty 25\n", 1);
  expectParseError("transient rate 1.0 penalty 50\n", 1);
  expectParseError("transient rate 0.1 penalty -1\n", 1);
  expectParseError("seed 1\n\n# ok\njob_fail_rate 1\n", 4);
}

TEST(FaultSpec, FailedParseLeavesSpecUnchanged) {
  FaultSpec Spec = parsed("vault_fail 5 at 2\n");
  EXPECT_FALSE(Spec.parse("vault_fail 6 at nonsense\n"));
  ASSERT_EQ(Spec.vaultEvents().size(), 1u);
  EXPECT_EQ(Spec.vaultEvents()[0].Vault, 5u);
}

//===----------------------------------------------------------------------===//
// Spare mapping
//===----------------------------------------------------------------------===//

TEST(SpareVaultMap, IdentityWhenHealthyAndRoundRobinWhenNot) {
  EXPECT_EQ(spareVaultMap({true, true, true, true}),
            (std::vector<unsigned>{0, 1, 2, 3}));
  // Failed vaults take distinct spares round-robin: no hot spot.
  EXPECT_EQ(spareVaultMap({true, false, false, true}),
            (std::vector<unsigned>{0, 0, 3, 3}));
  EXPECT_EQ(spareVaultMap({false, true, true, false}),
            (std::vector<unsigned>{1, 1, 2, 2}));
  // More failures than survivors: the spares wrap around.
  EXPECT_EQ(spareVaultMap({false, false, false, true}),
            (std::vector<unsigned>{3, 3, 3, 3}));
  // No survivor: identity (the caller treats this as fatal).
  EXPECT_EQ(spareVaultMap({false, false}), (std::vector<unsigned>{0, 1}));
}

//===----------------------------------------------------------------------===//
// Injector timelines
//===----------------------------------------------------------------------===//

TEST(FaultInjector, VaultTimelineStepsThroughFailAndRecover) {
  const FaultSpec Spec = parsed("vault_fail 2 at 5\nvault_recover 2 at 9\n");
  const FaultInjector Inj(Spec, 4);
  EXPECT_FALSE(Inj.vaultOffline(2, 0));
  EXPECT_FALSE(Inj.vaultOffline(2, 5 * PicosPerMilli - 1));
  EXPECT_TRUE(Inj.vaultOffline(2, 5 * PicosPerMilli));
  EXPECT_TRUE(Inj.vaultOffline(2, 9 * PicosPerMilli - 1));
  EXPECT_FALSE(Inj.vaultOffline(2, 9 * PicosPerMilli));
  EXPECT_FALSE(Inj.vaultOffline(1, 6 * PicosPerMilli));

  EXPECT_EQ(Inj.healthyVaults(0), 4u);
  EXPECT_EQ(Inj.healthyVaults(6 * PicosPerMilli), 3u);
  const std::vector<bool> Online = Inj.onlineVaults(6 * PicosPerMilli);
  EXPECT_EQ(Online, (std::vector<bool>{true, true, false, true}));

  EXPECT_EQ(Inj.redirectVault(2, 0), 2u);
  EXPECT_EQ(Inj.redirectVault(2, 6 * PicosPerMilli), 0u);
}

TEST(FaultInjector, TsvScaleStepsAndRestores) {
  const FaultSpec Spec =
      parsed("tsv_degrade 1 at 2 factor 4\ntsv_degrade 1 at 8 factor 1\n");
  const FaultInjector Inj(Spec, 2);
  EXPECT_DOUBLE_EQ(Inj.tsvScale(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(Inj.tsvScale(1, 3 * PicosPerMilli), 4.0);
  EXPECT_DOUBLE_EQ(Inj.tsvScale(1, 8 * PicosPerMilli), 1.0);
  EXPECT_DOUBLE_EQ(Inj.tsvScale(0, 3 * PicosPerMilli), 1.0);
}

TEST(FaultInjector, ThrottleStallsOnlyInsidePauseWindows) {
  // Window [2 ms, 4 ms), 100 us period, 25% duty: the first 25 us of
  // every period is paused.
  const FaultSpec Spec =
      parsed("throttle from 2 until 4 period 100 duty 25\n");
  const FaultInjector Inj(Spec, 16);
  const Picos From = 2 * PicosPerMilli;
  const Picos Pause = 25 * PicosPerMicro;

  bool Stalled = false;
  EXPECT_EQ(Inj.throttleAdjust(From, &Stalled), From + Pause);
  EXPECT_TRUE(Stalled);
  // A command in the duty-free part of the period is untouched.
  Stalled = false;
  EXPECT_EQ(Inj.throttleAdjust(From + Pause, &Stalled), From + Pause);
  EXPECT_FALSE(Stalled);
  // Outside the window, no effect even at a pause phase.
  EXPECT_EQ(Inj.throttleAdjust(0, &Stalled), 0);
  EXPECT_EQ(Inj.throttleAdjust(5 * PicosPerMilli), 5 * PicosPerMilli);
  EXPECT_FALSE(Stalled);
}

TEST(FaultInjector, CapacityFactorCombinesVaultsAndDuty) {
  const FaultSpec Spec =
      parsed("vault_fail 0 at 0\nvault_fail 1 at 0\n"
             "throttle from 1 until 2 period 100 duty 50\n");
  const FaultInjector Inj(Spec, 16);
  EXPECT_DOUBLE_EQ(Inj.capacityFactor(0), 14.0 / 16.0);
  EXPECT_DOUBLE_EQ(Inj.capacityFactor(PicosPerMilli + 1),
                   14.0 / 16.0 * 0.5);
  EXPECT_DOUBLE_EQ(Inj.capacityFactor(2 * PicosPerMilli), 14.0 / 16.0);
}

//===----------------------------------------------------------------------===//
// Stateless hash decisions
//===----------------------------------------------------------------------===//

TEST(FaultInjector, HashDecisionsAreDeterministicAndRateShaped) {
  const FaultSpec Spec =
      parsed("seed 13\ntransient rate 0.25 penalty 40\njob_fail_rate 0.1\n");
  const FaultInjector A(Spec, 16);
  const FaultInjector B(Spec, 16);

  unsigned Retries = 0;
  const unsigned Trials = 4000;
  for (std::uint64_t Id = 0; Id != Trials; ++Id) {
    // Two injectors over the same spec agree on every single decision.
    EXPECT_EQ(A.readTakesEccRetry(3, Id), B.readTakesEccRetry(3, Id));
    EXPECT_EQ(A.jobTransientlyFails(Id, 0), B.jobTransientlyFails(Id, 0));
    Retries += A.readTakesEccRetry(3, Id) ? 1 : 0;
  }
  // The empirical rate tracks the configured 25%.
  EXPECT_NEAR(static_cast<double>(Retries) / Trials, 0.25, 0.03);

  // A different seed reshuffles which requests fail.
  const FaultSpec Other =
      parsed("seed 14\ntransient rate 0.25 penalty 40\n");
  const FaultInjector C(Other, 16);
  unsigned Differs = 0;
  for (std::uint64_t Id = 0; Id != Trials; ++Id)
    Differs += A.readTakesEccRetry(3, Id) != C.readTakesEccRetry(3, Id) ? 1 : 0;
  EXPECT_GT(Differs, 0u);
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  const FaultSpec Spec = parsed("seed 5\nvault_fail 0 at 1\n");
  const FaultInjector Inj(Spec, 16);
  for (std::uint64_t Id = 0; Id != 1000; ++Id) {
    EXPECT_FALSE(Inj.readTakesEccRetry(Id % 16, Id));
    EXPECT_FALSE(Inj.jobTransientlyFails(Id, 0));
  }
}

//===----------------------------------------------------------------------===//
// Cluster grammar
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesClusterDirectives) {
  const FaultSpec Spec = parsed("seed 21\n"
                                "stack_fail 1 at 2\n"
                                "stack_recover 1 at 6\n"
                                "link_degrade 0 at 1 factor 2 loss 0.1\n"
                                "link_degrade 5 at 3 factor 4\n"
                                "link_fail 3 at 5\n"
                                "link_partition 2 at 4\n"
                                "packet_loss rate 0.05\n");
  EXPECT_FALSE(Spec.empty());
  EXPECT_TRUE(Spec.hasClusterFaults());
  EXPECT_FALSE(Spec.hasStackScopes());
  EXPECT_EQ(Spec.maxStackNamed(), 2);
  EXPECT_EQ(Spec.maxLinkNamed(), 5);

  ASSERT_EQ(Spec.stackEvents().size(), 2u);
  EXPECT_EQ(Spec.stackEvents()[0].Stack, 1u);
  EXPECT_EQ(Spec.stackEvents()[0].At, 2 * PicosPerMilli);
  EXPECT_FALSE(Spec.stackEvents()[0].Online);
  EXPECT_TRUE(Spec.stackEvents()[1].Online);

  ASSERT_EQ(Spec.linkDegradeEvents().size(), 2u);
  EXPECT_EQ(Spec.linkDegradeEvents()[0].Link, 0u);
  EXPECT_DOUBLE_EQ(Spec.linkDegradeEvents()[0].Factor, 2.0);
  EXPECT_DOUBLE_EQ(Spec.linkDegradeEvents()[0].LossRate, 0.1);
  EXPECT_DOUBLE_EQ(Spec.linkDegradeEvents()[1].LossRate, 0.0);

  ASSERT_EQ(Spec.linkFailEvents().size(), 1u);
  EXPECT_EQ(Spec.linkFailEvents()[0].Link, 3u);
  EXPECT_EQ(Spec.linkFailEvents()[0].At, 5 * PicosPerMilli);

  ASSERT_EQ(Spec.partitionEvents().size(), 1u);
  EXPECT_EQ(Spec.partitionEvents()[0].Stack, 2u);

  EXPECT_DOUBLE_EQ(Spec.packetLossRate(), 0.05);
}

TEST(FaultSpec, ClusterDirectiveErrors) {
  expectParseError("stack_fail 0\n", 1);
  expectParseError("link_degrade 0 at 1 factor 0.5\n", 1);
  expectParseError("link_degrade 0 at 1 factor 2 loss 1.0\n", 1);
  expectParseError("packet_loss rate 1\n", 1);
  expectParseError("link_partition 0 at -2\n", 1);
  // Cluster directives are fabric-global: inside a stack section they
  // would be ambiguous, so the parser refuses them there.
  expectParseError("stack 0\nstack_fail 1 at 2\n", 2);
  expectParseError("stack 1\npacket_loss rate 0.1\n", 2);
}

TEST(FaultSpec, UnknownVerbSuggestsNearestKnown) {
  FaultSpec Spec;
  std::string Error;
  EXPECT_FALSE(Spec.parse("vault_fial 0 at 1\n", &Error));
  EXPECT_NE(Error.find("did you mean 'vault_fail'?"), std::string::npos)
      << Error;
  EXPECT_FALSE(Spec.parse("stack_recoverr 0 at 1\n", &Error));
  EXPECT_NE(Error.find("did you mean 'stack_recover'?"), std::string::npos)
      << Error;
  EXPECT_FALSE(Spec.parse("pakcet_loss rate 0.1\n", &Error));
  EXPECT_NE(Error.find("did you mean 'packet_loss'?"), std::string::npos)
      << Error;
  // Nothing plausible: no suggestion at all.
  EXPECT_FALSE(Spec.parse("abcdefghijklmno 1\n", &Error));
  EXPECT_EQ(Error.find("did you mean"), std::string::npos) << Error;
}

TEST(FaultSpec, StackScopingFiltersPerStackViews) {
  const FaultSpec Spec = parsed("seed 9\n"
                                "vault_fail 0 at 1\n"
                                "stack 1\n"
                                "vault_fail 2 at 3\n"
                                "tsv_degrade 4 at 5 factor 2\n"
                                "stack all\n"
                                "vault_recover 0 at 7\n"
                                "stack_fail 0 at 8\n");
  EXPECT_TRUE(Spec.hasStackScopes());
  EXPECT_EQ(Spec.maxStackNamed(), 1);

  // Stack 1 sees the unscoped events plus its own section.
  const FaultSpec S1 = Spec.forStack(1);
  EXPECT_EQ(S1.seed(), 9u);
  EXPECT_EQ(S1.vaultEvents().size(), 3u);
  EXPECT_EQ(S1.tsvEvents().size(), 1u);
  EXPECT_FALSE(S1.hasStackScopes());
  EXPECT_FALSE(S1.hasClusterFaults());

  // Stack 0 sees only the unscoped events.
  const FaultSpec S0 = Spec.forStack(0);
  EXPECT_EQ(S0.vaultEvents().size(), 2u);
  EXPECT_TRUE(S0.tsvEvents().empty());

  // The fleet-wide view (-1) matches stack 0 here: unscoped only.
  const FaultSpec Fleet = Spec.forStack(-1);
  EXPECT_EQ(Fleet.vaultEvents().size(), 2u);
  EXPECT_FALSE(Fleet.hasClusterFaults());

  // A spec whose every vault event is scoped elsewhere yields an empty
  // (zero-overhead) view for other stacks.
  const FaultSpec Scoped = parsed("stack 0\nvault_fail 1 at 1\n");
  EXPECT_TRUE(Scoped.forStack(3).empty());
}

//===----------------------------------------------------------------------===//
// Cluster fault injector
//===----------------------------------------------------------------------===//

TEST(ClusterFaultInjector, StackTimelinesAndPartitions) {
  const FaultSpec Spec = parsed("stack_fail 1 at 2\n"
                                "stack_recover 1 at 6\n"
                                "link_partition 2 at 4\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EXPECT_TRUE(Inj.affectsTransfers());

  EXPECT_FALSE(Inj.stackOffline(1, 2 * PicosPerMilli - 1));
  EXPECT_TRUE(Inj.stackOffline(1, 2 * PicosPerMilli));
  EXPECT_FALSE(Inj.stackOffline(1, 6 * PicosPerMilli));

  // Partitions are permanent; the stack is unreachable, not offline.
  EXPECT_FALSE(Inj.stackPartitioned(2, 4 * PicosPerMilli - 1));
  EXPECT_TRUE(Inj.stackPartitioned(2, 4 * PicosPerMilli));
  EXPECT_TRUE(Inj.stackPartitioned(2, 100 * PicosPerMilli));
  EXPECT_FALSE(Inj.stackOffline(2, 5 * PicosPerMilli));
  EXPECT_FALSE(Inj.stackReachable(2, 5 * PicosPerMilli));

  EXPECT_EQ(Inj.healthyStacks(0), 4u);
  EXPECT_EQ(Inj.healthyStacks(3 * PicosPerMilli), 3u);
  EXPECT_EQ(Inj.healthyStacks(5 * PicosPerMilli), 2u);
  EXPECT_EQ(Inj.healthyStacks(7 * PicosPerMilli), 3u);
  EXPECT_EQ(Inj.reachableStacks(5 * PicosPerMilli),
            (std::vector<bool>{true, false, false, true}));
}

TEST(ClusterFaultInjector, LinkScaleAndCombinedLoss) {
  const FaultSpec Spec = parsed("link_degrade 0 at 1 factor 2 loss 0.1\n"
                                "link_fail 3 at 5\n"
                                "packet_loss rate 0.05\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EXPECT_DOUBLE_EQ(Inj.linkScale(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Inj.linkScale(0, PicosPerMilli), 2.0);
  EXPECT_DOUBLE_EQ(Inj.linkScale(1, PicosPerMilli), 1.0);

  // Fabric-wide and per-link loss combine as independent drops.
  EXPECT_DOUBLE_EQ(Inj.linkLossRate(1, PicosPerMilli),
                   1.0 - (1.0 - 0.05) * (1.0 - 0.0));
  EXPECT_DOUBLE_EQ(Inj.linkLossRate(0, PicosPerMilli),
                   1.0 - (1.0 - 0.05) * (1.0 - 0.1));

  EXPECT_FALSE(Inj.linkDown(3, 5 * PicosPerMilli - 1));
  EXPECT_TRUE(Inj.linkDown(3, 5 * PicosPerMilli));
  EXPECT_DOUBLE_EQ(Inj.linkLossRate(3, 5 * PicosPerMilli), 1.0);
}

TEST(ClusterFaultInjector, LossResidualIsDeterministicAndRateShaped) {
  const FaultSpec Spec = parsed("seed 17\npacket_loss rate 0.3\n");
  const ClusterFaultInjector A(Spec, 4, 8);
  const ClusterFaultInjector B(Spec, 4, 8);
  unsigned Fired = 0;
  const unsigned Trials = 4000;
  for (std::uint64_t Msg = 0; Msg != Trials; ++Msg) {
    EXPECT_EQ(A.lossResidual(1, Msg, 0, 0.3), B.lossResidual(1, Msg, 0, 0.3));
    Fired += A.lossResidual(1, Msg, 0, 0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(Fired) / Trials, 0.3, 0.03);
  // Zero fraction never fires.
  for (std::uint64_t Msg = 0; Msg != 200; ++Msg)
    EXPECT_FALSE(A.lossResidual(0, Msg, 1, 0.0));
}

TEST(ClusterFaultInjector, VaultOnlySpecDoesNotAffectTransfers) {
  const FaultSpec Spec = parsed("vault_fail 0 at 1\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EXPECT_FALSE(Inj.affectsTransfers());
  EXPECT_EQ(Inj.healthyStacks(5 * PicosPerMilli), 4u);
}

//===----------------------------------------------------------------------===//
// Degraded re-planning
//===----------------------------------------------------------------------===//

TEST(LayoutPlanner, PlanDegradedMatchesHealthyPlanOfSameSize) {
  const Geometry Geo;
  const Timing Time;
  const LayoutPlanner Planner(Geo, Time, 8);

  // 4 of 16 vaults down: the degraded plan is Eq. 1 solved for 12.
  std::vector<bool> Online(Geo.NumVaults, true);
  for (unsigned V = 0; V != 4; ++V)
    Online[V] = false;
  const DegradedPlan D = Planner.planDegraded(2048, Online);
  EXPECT_EQ(D.HealthyVaults, 12u);
  const BlockPlan Direct = Planner.plan(2048, 12);
  EXPECT_EQ(D.Plan.W, Direct.W);
  EXPECT_EQ(D.Plan.H, Direct.H);
  EXPECT_EQ(D.Plan.VaultsParallel, 12u);
  EXPECT_EQ(D.VaultMap, spareVaultMap(Online));

  // VaultsParallel caps the surviving count.
  const DegradedPlan Capped = Planner.planDegraded(2048, Online, 8);
  EXPECT_EQ(Capped.HealthyVaults, 8u);
  EXPECT_EQ(Capped.Plan.VaultsParallel, 8u);
}
