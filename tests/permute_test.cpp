//===- tests/permute_test.cpp - Permutation library tests ------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/ControlUnit.h"
#include "permute/Crossbar.h"
#include "permute/Permutation.h"
#include "permute/PermutationNetwork.h"

#include <gtest/gtest.h>

#include "support/Random.h"

#include <numeric>

using namespace fft3d;

//===----------------------------------------------------------------------===//
// Permutation
//===----------------------------------------------------------------------===//

TEST(Permutation, IdentityProperties) {
  const Permutation Id = Permutation::identity(16);
  EXPECT_TRUE(Id.isValid());
  EXPECT_TRUE(Id.isIdentity());
  EXPECT_TRUE(Id.inverted().isIdentity());
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation P = Permutation::stride(24, 6);
  EXPECT_TRUE(P.after(P.inverted()).isIdentity());
  EXPECT_TRUE(P.inverted().after(P).isIdentity());
}

TEST(Permutation, DestinationInvertsSource) {
  const Permutation P = Permutation::stride(32, 4);
  for (std::uint64_t O = 0; O != 32; ++O)
    EXPECT_EQ(P.destinationOf(P.sourceOf(O)), O);
}

TEST(Permutation, StrideDefinition) {
  // L(8, 2): input q*2 + r -> output r*4 + q.
  const Permutation P = Permutation::stride(8, 2);
  const std::vector<int> In = {0, 1, 2, 3, 4, 5, 6, 7};
  // Output o = r*4 + q takes input q*2 + r: [0,2,4,6,1,3,5,7].
  EXPECT_EQ(P.apply(In), (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(Permutation, StrideInverseIsComplementaryStride) {
  // L(N,S)^-1 == L(N, N/S).
  for (std::uint64_t N : {16ull, 64ull, 256ull})
    for (std::uint64_t S : {2ull, 4ull, 8ull}) {
      const Permutation A = Permutation::stride(N, S).inverted();
      const Permutation B = Permutation::stride(N, N / S);
      for (std::uint64_t O = 0; O != N; ++O)
        EXPECT_EQ(A.sourceOf(O), B.sourceOf(O));
    }
}

TEST(Permutation, TransposeRoundTrips) {
  const Permutation T = Permutation::transpose(4, 8);
  const Permutation Back = Permutation::transpose(8, 4);
  EXPECT_TRUE(Back.after(T).isIdentity());
}

TEST(Permutation, TransposeMovesElements) {
  // 2 x 3 block: [a b c; d e f] -> [a d; b e; c f] flattened.
  const Permutation T = Permutation::transpose(2, 3);
  const std::vector<char> In = {'a', 'b', 'c', 'd', 'e', 'f'};
  EXPECT_EQ(T.apply(In), (std::vector<char>{'a', 'd', 'b', 'e', 'c', 'f'}));
}

TEST(Permutation, DigitReversalMatchesRadix) {
  const Permutation P2 = Permutation::digitReversal(16, 2);
  const Permutation P4 = Permutation::digitReversal(16, 4);
  EXPECT_EQ(P2.sourceOf(1), 8u);
  EXPECT_EQ(P4.sourceOf(1), 4u);
  // Digit reversal is an involution.
  EXPECT_TRUE(P4.after(P4).isIdentity());
}

//===----------------------------------------------------------------------===//
// Streaming cost model
//===----------------------------------------------------------------------===//

TEST(StreamingCost, IdentityNeedsOneGroup) {
  const Permutation Id = Permutation::identity(64);
  EXPECT_EQ(streamingBufferWords(Id, 8), 8u);
  EXPECT_EQ(streamingLatencyCycles(Id, 8), 8u);
}

TEST(StreamingCost, FullReversalNeedsWholeFrame) {
  std::vector<std::uint64_t> Rev(64);
  for (std::uint64_t I = 0; I != 64; ++I)
    Rev[I] = 63 - I;
  const Permutation P{Rev};
  // The first output group depends on the last arrivals.
  EXPECT_EQ(streamingBufferWords(P, 8), 64u);
  EXPECT_EQ(streamingLatencyCycles(P, 8), 15u);
}

TEST(StreamingCost, TransposeIsBetweenExtremes) {
  const Permutation T = Permutation::transpose(16, 16);
  const std::uint64_t Words = streamingBufferWords(T, 8);
  EXPECT_GT(Words, 8u);
  EXPECT_LE(Words, 256u);
}

TEST(StreamingCost, MoreLanesNeverLowersLatency) {
  const Permutation T = Permutation::transpose(16, 16);
  EXPECT_GE(streamingLatencyCycles(T, 1), streamingLatencyCycles(T, 4));
  EXPECT_GE(streamingLatencyCycles(T, 4), streamingLatencyCycles(T, 16));
}

//===----------------------------------------------------------------------===//
// Crossbar
//===----------------------------------------------------------------------===//

TEST(Crossbar, RoutesPerSetting) {
  Crossbar X(4);
  EXPECT_EQ(X.muxCount(), 4u);
  X.configure(Permutation({2, 3, 0, 1}));
  const std::vector<int> In = {10, 11, 12, 13};
  EXPECT_EQ(X.route(In), (std::vector<int>{12, 13, 10, 11}));
  EXPECT_EQ(X.reconfigurations(), 1u);
}

TEST(Crossbar, RejectsWidthMismatch) {
  Crossbar X(4);
  EXPECT_DEATH(X.configure(Permutation::identity(8)), "width");
}

//===----------------------------------------------------------------------===//
// PermutationNetwork + ControlUnit
//===----------------------------------------------------------------------===//

TEST(PermutationNetwork, PermutesBlocks) {
  PermutationNetwork Net(8, 1024);
  Net.configure(Permutation::transpose(8, 16));
  std::vector<int> Block(128);
  std::iota(Block.begin(), Block.end(), 0);
  const std::vector<int> Out = Net.permute(Block);
  // Element (r, c) of the 8 x 16 input lands at c*8 + r.
  EXPECT_EQ(Out[1], 16); // (1, 0)
  EXPECT_EQ(Out[8], 1);  // (0, 1)
  EXPECT_EQ(Net.blocksPermuted(), 1u);
  EXPECT_EQ(Net.beatsStreamed(), 16u);
}

TEST(PermutationNetwork, TracksBufferCost) {
  PermutationNetwork Net(8, 2048);
  Net.configure(Permutation::identity(1024));
  const std::uint64_t IdWords = Net.bufferWords();
  Net.configure(Permutation::transpose(32, 32));
  EXPECT_GT(Net.bufferWords(), IdWords);
  EXPECT_EQ(Net.bufferBytes(8), 2 * Net.bufferWords() * 8);
  EXPECT_EQ(Net.reconfigurations(), 2u);
}

TEST(PermutationNetwork, RejectsOversizedBlocks) {
  PermutationNetwork Net(8, 64);
  EXPECT_DEATH(Net.configure(Permutation::identity(128)), "exceeds");
}

TEST(ControlUnit, LaneParallelIsIdentity) {
  EXPECT_TRUE(
      ControlUnit::writebackPermutation(8, 128, StreamMode::LaneParallel)
          .isIdentity());
  EXPECT_TRUE(
      ControlUnit::columnFetchPermutation(8, 128, StreamMode::LaneParallel)
          .isIdentity());
}

TEST(ControlUnit, ColumnSerialPermutationsInvertEachOther) {
  // Writing column-serial then fetching column-serial restores the
  // original stream order.
  const Permutation Wb =
      ControlUnit::writebackPermutation(4, 8, StreamMode::ColumnSerial);
  const Permutation Cf =
      ControlUnit::columnFetchPermutation(4, 8, StreamMode::ColumnSerial);
  EXPECT_TRUE(Cf.after(Wb).isIdentity());
}

TEST(ControlUnit, ColumnSerialWritebackStoresRowMajor) {
  // Arrival order is column-serial: (ic, ir) pairs column by column.
  // After the writeback permutation, storage must be row-major.
  const std::uint64_t W = 4, H = 3;
  const Permutation Wb =
      ControlUnit::writebackPermutation(W, H, StreamMode::ColumnSerial);
  std::vector<std::pair<int, int>> Arrival;
  for (std::uint64_t Ic = 0; Ic != W; ++Ic)
    for (std::uint64_t Ir = 0; Ir != H; ++Ir)
      Arrival.push_back({static_cast<int>(Ir), static_cast<int>(Ic)});
  const auto Stored = Wb.apply(Arrival);
  for (std::uint64_t Ir = 0; Ir != H; ++Ir)
    for (std::uint64_t Ic = 0; Ic != W; ++Ic) {
      const auto &E = Stored[Ir * W + Ic];
      EXPECT_EQ(E.first, static_cast<int>(Ir));
      EXPECT_EQ(E.second, static_cast<int>(Ic));
    }
}

TEST(ControlUnit, ConfiguresNetworkAndCounts) {
  PermutationNetwork Net(8, 1024);
  ControlUnit Cu(Net);
  Cu.configureForWriteback(8, 128, StreamMode::LaneParallel);
  EXPECT_NE(Cu.currentConfig().find("writeback"), std::string::npos);
  Cu.configureForColumnFetch(8, 128, StreamMode::LaneParallel);
  EXPECT_NE(Cu.currentConfig().find("column-fetch"), std::string::npos);
  EXPECT_EQ(Cu.reconfigurations(), 2u);
}

//===----------------------------------------------------------------------===//
// Cycle-accurate oracle for the streaming cost model
//===----------------------------------------------------------------------===//

namespace {

struct StreamOracle {
  std::uint64_t PeakOccupancy = 0;
  std::uint64_t TotalCycles = 0;
};

/// Independent per-cycle simulation of the streaming schedule: arrivals
/// enter a buffer set Lanes per cycle; the in-order output group leaves
/// as soon as all of its sources are resident.
StreamOracle simulateStreaming(const Permutation &P, unsigned Lanes) {
  const std::uint64_t N = P.size();
  std::vector<bool> Resident(N, false);
  std::uint64_t Arrived = 0, NextOut = 0, Occupancy = 0;
  StreamOracle Result;
  std::uint64_t Cycle = 0;
  while (NextOut < N) {
    // Arrivals this cycle.
    for (unsigned L = 0; L != Lanes && Arrived < N; ++L) {
      Resident[Arrived++] = true;
      ++Occupancy;
    }
    Result.PeakOccupancy = std::max(Result.PeakOccupancy, Occupancy);
    // At most one output group departs per cycle.
    const std::uint64_t End = std::min<std::uint64_t>(NextOut + Lanes, N);
    bool Ready = true;
    for (std::uint64_t O = NextOut; O != End; ++O)
      Ready = Ready && Resident[P.sourceOf(O)];
    if (Ready) {
      for (std::uint64_t O = NextOut; O != End; ++O) {
        Resident[P.sourceOf(O)] = false;
        --Occupancy;
      }
      NextOut = End;
    }
    ++Cycle;
  }
  Result.TotalCycles = Cycle;
  return Result;
}

Permutation randomPermutation(std::uint64_t N, std::uint64_t Seed) {
  std::vector<std::uint64_t> Map(N);
  std::iota(Map.begin(), Map.end(), 0u);
  // Fisher-Yates with the project RNG.
  fft3d::Rng R(Seed);
  for (std::uint64_t I = N; I > 1; --I)
    std::swap(Map[I - 1], Map[R.nextBelow(I)]);
  return Permutation(Map);
}

} // namespace

TEST(StreamingCost, AnalyticMatchesCycleOracleOnStructured) {
  for (const unsigned Lanes : {1u, 4u, 8u}) {
    for (const auto &P :
         {Permutation::identity(64), Permutation::stride(64, 4),
          Permutation::transpose(8, 8), Permutation::digitReversal(64, 4)}) {
      const StreamOracle Oracle = simulateStreaming(P, Lanes);
      EXPECT_EQ(streamingBufferWords(P, Lanes), Oracle.PeakOccupancy)
          << "lanes " << Lanes;
      EXPECT_EQ(streamingLatencyCycles(P, Lanes), Oracle.TotalCycles)
          << "lanes " << Lanes;
    }
  }
}

TEST(StreamingCost, AnalyticMatchesCycleOracleOnRandom) {
  for (std::uint64_t Seed = 1; Seed != 12; ++Seed) {
    const Permutation P = randomPermutation(96, Seed);
    for (const unsigned Lanes : {2u, 8u}) {
      const StreamOracle Oracle = simulateStreaming(P, Lanes);
      EXPECT_EQ(streamingBufferWords(P, Lanes), Oracle.PeakOccupancy)
          << "seed " << Seed << " lanes " << Lanes;
      EXPECT_EQ(streamingLatencyCycles(P, Lanes), Oracle.TotalCycles)
          << "seed " << Seed << " lanes " << Lanes;
    }
  }
}
