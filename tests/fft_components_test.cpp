//===- tests/fft_components_test.cpp - Kernel component models ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/DppUnit.h"
#include "fft/StreamingKernel.h"
#include "fft/TfcUnit.h"
#include "fft/Twiddle.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fft3d;

//===----------------------------------------------------------------------===//
// DppUnit
//===----------------------------------------------------------------------===//

TEST(DppUnit, BufferWordsSumToSdfBound) {
  // Sum over all stages of a radix-4 pipeline = N - 1.
  const std::uint64_t N = 1024;
  std::uint64_t Total = 0;
  for (unsigned S = 0; S != 5; ++S)
    Total += DppUnit(N, 4, S, 8).bufferWords();
  EXPECT_EQ(Total, N - 1);
}

TEST(DppUnit, BufferGrowsWithStage) {
  std::uint64_t Prev = 0;
  for (unsigned S = 0; S != 5; ++S) {
    const std::uint64_t Words = DppUnit(1024, 4, S, 8).bufferWords();
    EXPECT_GT(Words, Prev);
    Prev = Words;
  }
  EXPECT_EQ(DppUnit(1024, 4, 0, 8).bufferWords(), 3u);
  EXPECT_EQ(DppUnit(1024, 4, 4, 8).bufferWords(), 3u * 256);
}

TEST(DppUnit, MuxCountMatchesPaperPerGroup) {
  // Paper Fig. 2b: a radix-4 DPP group uses eight 4-to-1 muxes. With 8
  // lanes there are two groups.
  EXPECT_EQ(DppUnit(1024, 4, 1, 8).muxCount(), 16u);
  EXPECT_EQ(DppUnit(1024, 4, 1, 4).muxCount(), 8u);
}

TEST(DppUnit, FramePermutationIsValidAndLocal) {
  const DppUnit Dpp(256, 4, 1, 8);
  const Permutation P = Dpp.framePermutation();
  EXPECT_EQ(P.size(), 256u);
  EXPECT_TRUE(P.isValid());
  // Stage 1 reorders within 4^3 = 64-element sections.
  for (std::uint64_t O = 0; O != 256; ++O)
    EXPECT_EQ(P.sourceOf(O) / 64, O / 64);
}

TEST(DppUnit, LatencyScalesInverselyWithLanes) {
  const std::uint64_t W1 = DppUnit(1024, 4, 4, 1).latencyCycles();
  const std::uint64_t W8 = DppUnit(1024, 4, 4, 8).latencyCycles();
  EXPECT_EQ(W1, 768u);
  EXPECT_EQ(W8, 96u);
}

//===----------------------------------------------------------------------===//
// TfcUnit
//===----------------------------------------------------------------------===//

TEST(TfcUnit, TableSizesGrowWithStage) {
  // "The size of each lookup table is determined by the ordinal number of
  // its present butterfly computation stage and the FFT problem size."
  EXPECT_EQ(TfcUnit(1024, 4, 0, 8).entriesPerTable(), 1u);
  EXPECT_EQ(TfcUnit(1024, 4, 1, 8).entriesPerTable(), 4u);
  EXPECT_EQ(TfcUnit(1024, 4, 4, 8).entriesPerTable(), 256u);
  EXPECT_EQ(TfcUnit(1024, 4, 4, 8).romWords(), 3u * 256);
}

TEST(TfcUnit, FactorsMatchTwiddles) {
  const unsigned Stage = 2;
  const TfcUnit Tfc(256, 4, Stage, 8);
  const std::uint64_t L = 64; // 4^(stage+1)
  for (unsigned Q = 1; Q != 4; ++Q)
    for (std::uint64_t J = 0; J != 16; ++J) {
      EXPECT_NEAR(std::abs(Tfc.factor(Q, J) - twiddle(L, Q * J)), 0.0, 1e-15);
      EXPECT_NEAR(std::abs(Tfc.factor(Q, J, /*Conjugate=*/true) -
                           std::conj(twiddle(L, Q * J))),
                  0.0, 1e-15);
    }
}

TEST(TfcUnit, MultiplierModelMatchesPaper) {
  // "Each complex number multiplier consists of four real number
  // multipliers and two real number adders/subtractors."
  const TfcUnit Tfc(1024, 4, 2, 8);
  EXPECT_EQ(Tfc.complexMultipliers(), 2u * 3); // two groups, three operands
  EXPECT_EQ(Tfc.realMultipliers(), 4u * 6);
  EXPECT_EQ(Tfc.realAddSub(), 2u * 6);
  // Stage 0 twiddles are unity: no multipliers.
  EXPECT_EQ(TfcUnit(1024, 4, 0, 8).complexMultipliers(), 0u);
}

//===----------------------------------------------------------------------===//
// StreamingKernel
//===----------------------------------------------------------------------===//

TEST(StreamingKernel, ClockAnchorsMatchPaper) {
  EXPECT_DOUBLE_EQ(StreamingKernel::achievableClockMHz(2048), 250.0);
  EXPECT_DOUBLE_EQ(StreamingKernel::achievableClockMHz(4096), 200.0);
  EXPECT_DOUBLE_EQ(StreamingKernel::achievableClockMHz(8192), 180.0);
  EXPECT_DOUBLE_EQ(StreamingKernel::achievableClockMHz(512), 250.0);
  EXPECT_LT(StreamingKernel::achievableClockMHz(16384), 180.0);
}

TEST(StreamingKernel, StreamRateMatchesTable) {
  // 8 lanes x 8 B x 250 MHz = 16 GB/s per direction at N = 2048.
  EXPECT_NEAR(StreamingKernel(2048, 8).streamGBps(), 16.0, 1e-9);
  EXPECT_NEAR(StreamingKernel(4096, 8).streamGBps(), 12.8, 1e-9);
  EXPECT_NEAR(StreamingKernel(8192, 8).streamGBps(), 11.52, 1e-9);
  EXPECT_NEAR(StreamingKernel(2048, 1).streamGBps(), 2.0, 1e-9);
}

TEST(StreamingKernel, StageCounts) {
  EXPECT_EQ(StreamingKernel(4096, 8).numStages(), 6u);
  EXPECT_EQ(StreamingKernel(2048, 8).numStages(), 6u); // 5 radix-4 + 1 radix-2
  EXPECT_EQ(StreamingKernel(8192, 8).numStages(), 7u);
}

TEST(StreamingKernel, PipelineFillIsAboutAFrame) {
  const StreamingKernel K(2048, 8);
  const std::uint64_t Fill = K.pipelineFillCycles();
  // Delay memory totals about one frame; at 8 lanes that is ~N/8 cycles.
  EXPECT_GT(Fill, 2048u / 8);
  EXPECT_LT(Fill, 2 * 2048u / 8 + 64);
  EXPECT_EQ(K.cyclesPerFrame(), 256u);
}

TEST(StreamingKernel, ResourcesScaleWithSize) {
  const KernelResources Small = StreamingKernel(1024, 8).resources();
  const KernelResources Large = StreamingKernel(4096, 8).resources();
  EXPECT_GT(Large.DelayBufferBytes, Small.DelayBufferBytes);
  EXPECT_GT(Large.TwiddleRomBytes, Small.TwiddleRomBytes);
  EXPECT_GE(Large.RealMultipliers, Small.RealMultipliers);
  EXPECT_GT(Small.RealAddSub, 0u);
  EXPECT_GT(Small.Muxes, 0u);
}

TEST(StreamingKernel, FunctionalPathIsTheFft) {
  const StreamingKernel K(64, 8);
  std::vector<CplxF> Frame(64);
  Frame[1] = CplxF(1, 0);
  K.runForward(Frame);
  for (std::uint64_t I = 0; I != 64; ++I)
    EXPECT_NEAR(std::abs(widen(Frame[I]) - twiddle(64, I)), 0.0, 1e-5);
  K.runInverse(Frame);
  EXPECT_NEAR(std::abs(widen(Frame[1]) - CplxD(1, 0)), 0.0, 1e-5);
}

TEST(StreamingKernel, PipelineFillTimeUsesClock) {
  const StreamingKernel K(2048, 8, 250.0);
  EXPECT_EQ(K.pipelineFillTime(), K.pipelineFillCycles() * periodFromMHz(250));
}

TEST(StreamingKernel, Radix2ArchitectureTradeoff) {
  const StreamingKernel R4(1024, 8, 250.0, KernelRadix::Radix4);
  const StreamingKernel R2(1024, 8, 250.0, KernelRadix::Radix2);
  // Twice the stages...
  EXPECT_EQ(R2.numStages(), 10u);
  EXPECT_EQ(R4.numStages(), 5u);
  // ...same N-1 words of delay memory...
  EXPECT_EQ(R2.resources().DelayBufferBytes, R4.resources().DelayBufferBytes);
  // ...but more multiplier stages and muxes.
  EXPECT_GT(R2.resources().RealMultipliers, R4.resources().RealMultipliers);
  EXPECT_GT(R2.resources().Muxes, R4.resources().Muxes);
  // Stream rate is set by lanes and clock, not the radix.
  EXPECT_DOUBLE_EQ(R2.streamGBps(), R4.streamGBps());
  // Numerics are the same engine.
  std::vector<CplxF> A(64), B(64);
  A[3] = B[3] = CplxF(1, 0);
  StreamingKernel(64, 8, 250.0, KernelRadix::Radix2).runForward(A);
  StreamingKernel(64, 8, 250.0, KernelRadix::Radix4).runForward(B);
  for (std::size_t I = 0; I != 64; ++I)
    EXPECT_EQ(A[I], B[I]);
}

TEST(StreamingKernel, RadixNamesStable) {
  EXPECT_STREQ(kernelRadixName(KernelRadix::Radix2), "radix-2");
  EXPECT_STREQ(kernelRadixName(KernelRadix::Radix4), "radix-4");
}
