//===- tests/core_batch_policy_test.cpp - Batch x memory-policy interplay -===//
//
// Part of the fft3d project.
//
// The overlapped stage of the frame pipeline runs four streams (two
// block streams and the chunked phase-1 writes) against the shared
// vaults, so the memory scheduling policy decides how often an open row
// survives cross-stream interleaving. These tests pin down the policy
// behaviour the serving layer's space-sharing argument relies on.
//
//===----------------------------------------------------------------------===//

#include "core/BatchProcessor.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

SystemConfig quickConfig(std::uint64_t N, SchedulePolicy Sched) {
  SystemConfig C = SystemConfig::forProblemSize(N);
  C.Mem.Sched = Sched;
  C.MaxSimBytesPerDirection = 4ull << 20;
  C.MaxSimOpsPerDirection = 20000;
  return C;
}

} // namespace

TEST(BatchPolicy, FrFcfsRowHitRateAtLeastFcfsOnOverlappedStage) {
  // FR-FCFS reorders within the request window to keep open rows
  // streaming; plain FCFS ping-pongs between the four streams' rows. The
  // reordering must never lower the overlapped-stage hit rate or raise
  // its activation count. At N = 2048 the dynamic blocks exactly fill a
  // row buffer, so every block op is one activation and both policies
  // measure a hit rate of zero - the chunked phase-1 writes that create
  // reorderable row locality only coexist with sub-row blocks (N <=
  // 1024 on the default device).
  for (const std::uint64_t N : {512ull, 1024ull, 2048ull}) {
    const BatchReport FrFcfs =
        BatchProcessor(quickConfig(N, SchedulePolicy::FrFcfs)).run(4);
    const BatchReport Fcfs =
        BatchProcessor(quickConfig(N, SchedulePolicy::Fcfs)).run(4);
    EXPECT_GE(FrFcfs.OverlapRowHitRate, Fcfs.OverlapRowHitRate) << "N=" << N;
    EXPECT_LE(FrFcfs.OverlapRowActivations, Fcfs.OverlapRowActivations)
        << "N=" << N;
    if (N <= 1024) {
      EXPECT_GT(FrFcfs.OverlapRowHitRate, 0.0) << "N=" << N;
    }
    // Hit-rate dominance must show up as throughput dominance too (small
    // tolerance for pacing noise).
    EXPECT_GE(FrFcfs.OverlapGBps, 0.98 * Fcfs.OverlapGBps) << "N=" << N;
  }
}

TEST(BatchPolicy, OverlapStatsArePopulated) {
  const BatchReport R =
      BatchProcessor(quickConfig(1024, SchedulePolicy::FrFcfs)).run(2);
  EXPECT_GT(R.OverlapRowActivations, 0u);
  EXPECT_GT(R.OverlapRowHitRate, 0.0);
  EXPECT_LE(R.OverlapRowHitRate, 1.0);
  EXPECT_GT(R.OverlapGBps, 0.0);
}
