//===- tests/cluster_fault_test.cpp - Cluster fault tolerance tests -------===//
//
// Part of the fft3d project.
//
// The cluster fault subsystem's contracts: the interconnect's retransmit
// loop matches hand-computed timeout/backoff timings (and its fault-free
// path stays byte-identical with an injector attached), partitions and
// link failures black-hole exactly the transfers they should, the
// functional stack-loss recovery paths are bit-identical to the host
// references (every element survives via the redistribution-boundary
// checkpoint), the timed runs report the checkpoint/detect/migrate
// protocol costs, retransmit metrics are pinned zero on the fault-free
// path, and faulted cluster runs replay byte-identically at any
// --sim-threads value.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"
#include "cluster/Interconnect.h"
#include "fault/ClusterFaults.h"
#include "fault/FaultSpec.h"
#include "fft/Fft2d.h"
#include "obs/Metrics.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fft3d;

namespace {

FaultSpec parsed(const std::string &Text) {
  FaultSpec Spec;
  std::string Error;
  EXPECT_TRUE(Spec.parse(Text, &Error)) << Error;
  return Spec;
}

/// The round-number fabric of cluster_test: 1 GB/s links (1 ns per
/// byte), 100 ns hop latency, 1 KiB packets, 24 B headers - and round
/// retransmit knobs: 2 us ack timeout, backoff 1 us doubling to 16 us.
ClusterConfig fabricConfig(unsigned Stacks, ClusterTopology Topology) {
  ClusterConfig Config;
  Config.Stacks = Stacks;
  Config.Topology = Topology;
  Config.LinkGBps = 1.0;
  Config.LinkLatencyPicos = 100 * PicosPerNano;
  Config.PacketBytes = 1024;
  Config.PacketHeaderBytes = 24;
  Config.RetransmitTimeoutPicos = 2 * PicosPerMicro;
  Config.RetransmitBackoffInit = PicosPerMicro;
  Config.RetransmitBackoffFactor = 2;
  Config.RetransmitBackoffMax = 16 * PicosPerMicro;
  Config.Node = SystemConfig::forProblemSize(Stacks * 64);
  return Config;
}

Matrix randomMatrix(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(N, N);
  for (auto &V : M.storage())
    V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
              static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

std::vector<CplxF> randomVolume(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<CplxF> Vol(N * N * N);
  for (auto &V : Vol)
    V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
              static_cast<float>(R.nextDouble(-1, 1)));
  return Vol;
}

/// Max-ulp 0: the recovery path must run the same transforms on the
/// same values as the reference.
void expectBitIdentical(const std::vector<CplxF> &A,
                        const std::vector<CplxF> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].real(), B[I].real()) << "at " << I;
    ASSERT_EQ(A[I].imag(), B[I].imag()) << "at " << I;
  }
}

/// A timed cluster config with \p SpecText attached as the fault spec.
ClusterConfig faultedConfig(std::uint64_t N, unsigned Stacks,
                            const std::string &SpecText) {
  ClusterConfig Config = ClusterConfig::forProblemSize(N, Stacks);
  if (!SpecText.empty())
    Config.Node.Mem.Faults =
        std::make_shared<const FaultSpec>(parsed(SpecText));
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Interconnect retransmission
//===----------------------------------------------------------------------===//

TEST(InterconnectFault, VaultOnlySpecKeepsLegacyTimingsExactly) {
  // A spec with no cluster directives must leave the wire arithmetic
  // untouched: same deliveries as a fabric with no injector at all, and
  // every retransmit counter pinned to zero.
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  const FaultSpec Spec = parsed("vault_fail 0 at 1\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);

  EventQueue PlainEvents, FaultEvents;
  Interconnect Plain(PlainEvents, Config);
  Interconnect Faulted(FaultEvents, Config);
  Faulted.setFaults(&Inj);

  for (unsigned Src = 0; Src != 4; ++Src)
    for (unsigned Dst = 0; Dst != 4; ++Dst)
      EXPECT_EQ(Plain.send(Src, Dst, 4096 + Src),
                Faulted.send(Src, Dst, 4096 + Src))
          << Src << "->" << Dst;
  EXPECT_EQ(Faulted.retransmittedPackets(), 0u);
  EXPECT_EQ(Faulted.backoffTime(), 0);
  EXPECT_EQ(Faulted.failedTransfers(), 0u);
}

TEST(InterconnectFault, LinkDegradeStretchesSerialization) {
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  const FaultSpec Spec = parsed("link_degrade 0 at 0 factor 2\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EventQueue Events;
  Interconnect Net(Events, Config);
  Net.setFaults(&Inj);

  // Egress 0 at half rate: one full packet takes 2 x (1024 + 24) ns on
  // the wire, plus the hop latency.
  EXPECT_EQ(Net.send(0, 1, 1024),
            (2 * (1024 + 24) + 100) * PicosPerNano);
  // A path that avoids the degraded resource keeps the legacy time.
  EXPECT_EQ(Net.send(2, 3, 1024), (1024 + 24 + 100) * PicosPerNano);
  EXPECT_EQ(Net.retransmittedPackets(), 0u);
}

TEST(InterconnectFault, LinkFailExhaustsBudgetWithTimeoutAndBackoff) {
  // Hand-computed escalation on a dead egress, budget 2: attempt 0 ends
  // at 1048 ns (one full packet); each retry waits timeout + backoff
  // (2 us + 1 us, then 2 us + 2 us) and resends the packet; after the
  // final attempt the sender concludes failure one ack timeout later.
  ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  Config.RetransmitBudget = 2;
  const FaultSpec Spec = parsed("link_fail 0 at 0\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EventQueue Events;
  Interconnect Net(Events, Config);
  Net.setFaults(&Inj);

  const Interconnect::SendOutcome Out = Net.transfer(0, 1, 1024);
  const Picos End0 = 1048 * PicosPerNano;
  const Picos End1 = End0 + (2000 + 1000 + 1048) * PicosPerNano;
  const Picos End2 = End1 + (2000 + 2000 + 1048) * PicosPerNano;
  EXPECT_TRUE(Out.Failed);
  EXPECT_EQ(Out.Delivery, End2 + 2000 * PicosPerNano);
  EXPECT_EQ(Out.Retransmits, 2u);
  EXPECT_EQ(Out.BackoffTime, 3 * PicosPerMicro);
  EXPECT_EQ(Net.failedTransfers(), 1u);
  // The per-resource retransmit counter lands on the whole path.
  EXPECT_EQ(Net.resourceStats(0).Retransmits, 2u);     // egress0
  EXPECT_EQ(Net.resourceStats(4 + 1).Retransmits, 2u); // ingress1

  // Other stack pairs are untouched.
  EXPECT_FALSE(Net.transfer(2, 3, 1024).Failed);
}

TEST(InterconnectFault, PartitionBlackholesBothDirections) {
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  const FaultSpec Spec = parsed("link_partition 1 at 0\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);
  EXPECT_FALSE(Inj.stackOffline(1, PicosPerMilli));
  EventQueue Events;
  Interconnect Net(Events, Config);
  Net.setFaults(&Inj);

  EXPECT_TRUE(Net.transfer(0, 1, 1024).Failed);  // into the partition
  EXPECT_TRUE(Net.transfer(1, 2, 1024).Failed);  // out of the partition
  EXPECT_FALSE(Net.transfer(0, 2, 1024).Failed); // around it
  EXPECT_FALSE(Net.transfer(2, 2, 1024).Failed); // local is always free
}

TEST(InterconnectFault, PacketLossRetransmitsDeterministically) {
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  const FaultSpec Spec = parsed("seed 23\npacket_loss rate 0.2\n");
  const ClusterFaultInjector Inj(Spec, 4, 8);

  const auto RunOnce = [&] {
    EventQueue Events;
    Interconnect Net(Events, Config);
    Net.setFaults(&Inj);
    std::vector<Picos> Deliveries;
    for (unsigned M = 0; M != 16; ++M)
      Deliveries.push_back(Net.send(M % 4, (M + 1) % 4, 64 * 1024));
    Deliveries.push_back(static_cast<Picos>(Net.retransmittedPackets()));
    Deliveries.push_back(Net.backoffTime());
    return Deliveries;
  };
  const std::vector<Picos> A = RunOnce();
  const std::vector<Picos> B = RunOnce();
  EXPECT_EQ(A, B);
  // 20% loss over 64-packet messages retransmits and backs off.
  EXPECT_GT(A[A.size() - 2], 0);
  EXPECT_GT(A[A.size() - 1], 0);
}

TEST(InterconnectFault, ExportsRetransmitMetrics) {
  ClusterConfig Config = fabricConfig(2, ClusterTopology::AllToAll);
  Config.RetransmitBudget = 1;
  const FaultSpec Spec = parsed("link_fail 0 at 0\n");
  const ClusterFaultInjector Inj(Spec, 2, 4);
  EventQueue Events;
  Interconnect Net(Events, Config);
  Net.setFaults(&Inj);
  Net.send(0, 1, 1024);

  MetricsRegistry Registry;
  Net.exportTo(Registry);
  const MetricCounter *Retrans =
      Registry.findCounter("cluster.link.retrans", {{"link", "egress0"}});
  ASSERT_NE(Retrans, nullptr);
  EXPECT_EQ(Retrans->value(), 1u);
  const MetricCounter *Failed = Registry.findCounter("cluster.xfer.failed");
  ASSERT_NE(Failed, nullptr);
  EXPECT_EQ(Failed->value(), 1u);
  const MetricCounter *Backoff =
      Registry.findCounter("cluster.xfer.backoff_ps");
  ASSERT_NE(Backoff, nullptr);
  EXPECT_EQ(Backoff->value(), static_cast<std::uint64_t>(PicosPerMicro));
}

//===----------------------------------------------------------------------===//
// Functional stack-loss recovery
//===----------------------------------------------------------------------===//

TEST(ClusterFaultFft, StackLoss2dBitIdenticalForEveryFailedStack) {
  // The acceptance property: killing any 1 of S stacks right after the
  // row phase still produces the exact host-reference transform - the
  // checkpoint preserved every element, the spare-map survivor rehomes
  // the dead slab, max-ulp 0.
  const std::uint64_t N = 64;
  const Matrix In = randomMatrix(N, 7);
  Matrix Ref = In;
  Fft2d(N, N).forward(Ref);
  for (unsigned S : {2u, 4u, 8u}) {
    ClusterConfig Config = ClusterConfig::forProblemSize(N, S);
    for (unsigned Failed = 0; Failed != S; ++Failed) {
      const Matrix Out =
          ClusterFftProcessor::compute2dWithStackLoss(In, Config, Failed);
      expectBitIdentical(Out.storage(), Ref.storage());
    }
  }
}

TEST(ClusterFaultFft, StackLoss2dSurvivesRoundRobinPlacementToo) {
  const std::uint64_t N = 64;
  const Matrix In = randomMatrix(N, 13);
  Matrix Ref = In;
  Fft2d(N, N).forward(Ref);
  ClusterConfig Config = ClusterConfig::forProblemSize(N, 4);
  Config.Placement = StackPlacement::RoundRobin;
  for (unsigned Failed : {0u, 3u}) {
    const Matrix Out =
        ClusterFftProcessor::compute2dWithStackLoss(In, Config, Failed);
    expectBitIdentical(Out.storage(), Ref.storage());
  }
}

TEST(ClusterFaultFft, StackLoss3dBitIdenticalToReference) {
  const std::uint64_t N = 16;
  const std::vector<CplxF> Vol = randomVolume(N, 11);
  const std::vector<CplxF> Ref =
      ClusterFftProcessor::compute3dReference(Vol, N);
  for (unsigned S : {2u, 4u, 8u}) {
    ClusterConfig Config = ClusterConfig::forProblemSize(N, S);
    for (unsigned Failed : {0u, S - 1}) {
      const std::vector<CplxF> Out =
          ClusterFftProcessor::compute3dWithStackLoss(Vol, N, Config,
                                                      Failed);
      expectBitIdentical(Out, Ref);
    }
  }
}

//===----------------------------------------------------------------------===//
// Timed runs: checkpoint / detect / migrate
//===----------------------------------------------------------------------===//

TEST(ClusterFaultFft, TimedRun2dSurvivesMidRunStackFail) {
  // Stack 1 dies 1 us in - before the exchange barrier - so the
  // redistribution boundary detects it, migrates its slab from the
  // checkpoint, and the three survivors finish the run.
  const ClusterReport Healthy =
      ClusterFftProcessor(faultedConfig(256, 4, "")).run2d();
  const ClusterReport Rep =
      ClusterFftProcessor(faultedConfig(256, 4, "stack_fail 1 at 0.001\n"))
          .run2d();
  EXPECT_EQ(Rep.StacksFailed, 1u);
  EXPECT_EQ(Rep.SurvivorStacks, 3u);
  EXPECT_TRUE(Rep.Replanned);
  EXPECT_GT(Rep.CheckpointTime, 0);
  EXPECT_GT(Rep.DetectionTime, 0);
  EXPECT_GT(Rep.MigrationTime, 0);
  // The protocol is accounted into the total, which exceeds healthy.
  EXPECT_EQ(Rep.TotalTime, Rep.RowPhaseTime + Rep.CheckpointTime +
                               Rep.DetectionTime + Rep.ExchangeTime +
                               Rep.MigrationTime + Rep.ColPhaseTime);
  EXPECT_GT(Rep.TotalTime, Healthy.TotalTime);
  // The detection probe exhausts the retransmit budget.
  EXPECT_GT(Rep.XferFailed, 0u);
}

TEST(ClusterFaultFft, TimedRun3dSurvivesMidRunStackFail) {
  const ClusterReport Rep =
      ClusterFftProcessor(faultedConfig(64, 4, "stack_fail 2 at 0.001\n"))
          .run3d();
  EXPECT_EQ(Rep.StacksFailed, 1u);
  EXPECT_EQ(Rep.SurvivorStacks, 3u);
  EXPECT_TRUE(Rep.Replanned);
  EXPECT_GT(Rep.CheckpointTime, 0);
  EXPECT_GT(Rep.DetectionTime, 0);
  EXPECT_GT(Rep.MigrationTime, 0);
  EXPECT_EQ(Rep.TotalTime,
            Rep.RowPhaseTime + Rep.CheckpointTime + Rep.DetectionTime +
                Rep.ExchangeTime + Rep.ColPhaseTime + Rep.Exchange2Time +
                Rep.MigrationTime + Rep.ZPhaseTime);
}

TEST(ClusterFaultFft, ScheduledFaultAfterTheRunOnlyPaysCheckpoints) {
  // A cluster spec whose events land after the run completes: the
  // boundary still checkpoints (the protocol's standing cost), but
  // nobody dies and nothing migrates.
  const ClusterReport Rep =
      ClusterFftProcessor(faultedConfig(256, 4, "stack_fail 1 at 10000\n"))
          .run2d();
  EXPECT_EQ(Rep.StacksFailed, 0u);
  EXPECT_EQ(Rep.SurvivorStacks, 4u);
  EXPECT_FALSE(Rep.Replanned);
  EXPECT_GT(Rep.CheckpointTime, 0);
  EXPECT_EQ(Rep.DetectionTime, 0);
  EXPECT_EQ(Rep.MigrationTime, 0);
  EXPECT_EQ(Rep.Retransmits, 0u);
}

TEST(ClusterFaultFft, FaultFreePathPinsRetransMetricsToZero) {
  // The acceptance pin: without cluster faults the retransmit counters
  // and protocol times are all exactly zero - the fault machinery adds
  // no overhead to the healthy path.
  for (const bool ThreeD : {false, true}) {
    ClusterFftProcessor Processor(
        faultedConfig(ThreeD ? 64 : 256, 4, "vault_fail 0 at 100\n"));
    const ClusterReport Rep =
        ThreeD ? Processor.run3d() : Processor.run2d();
    EXPECT_EQ(Rep.Retransmits, 0u) << ThreeD;
    EXPECT_EQ(Rep.BackoffTime, 0) << ThreeD;
    EXPECT_EQ(Rep.XferFailed, 0u) << ThreeD;
    EXPECT_EQ(Rep.CheckpointTime, 0) << ThreeD;
    EXPECT_EQ(Rep.DetectionTime, 0) << ThreeD;
    EXPECT_EQ(Rep.MigrationTime, 0) << ThreeD;
    EXPECT_EQ(Rep.StacksFailed, 0u) << ThreeD;
  }
}

TEST(ClusterFaultFft, LinkDegradeMakesRetransMetricsNonzero) {
  const ClusterReport Rep =
      ClusterFftProcessor(
          faultedConfig(
              256, 4,
              "seed 5\nlink_degrade 0 at 0 factor 1 loss 0.05\n"))
          .run2d();
  EXPECT_GT(Rep.Retransmits, 0u);
  EXPECT_GT(Rep.BackoffTime, 0);
  EXPECT_EQ(Rep.StacksFailed, 0u);
  EXPECT_EQ(Rep.SurvivorStacks, 4u);
}

//===----------------------------------------------------------------------===//
// Randomized determinism (sim-thread invariance under cluster faults)
//===----------------------------------------------------------------------===//

namespace {

struct FaultRunResult {
  ClusterReport Report;
  std::string Digest;
  std::string MetricsJson;
};

FaultRunResult runFaulted(ClusterConfig Config, unsigned SimThreads) {
  Config.Node.SimThreads = SimThreads;
  ClusterFftProcessor Processor(Config);
  Tracer Trace;
  MetricsRegistry Metrics;
  Processor.setObservability(&Trace, &Metrics);
  FaultRunResult Result;
  Result.Report = Processor.run2d();
  Result.Digest = traceDigest(Trace);
  std::ostringstream Json;
  Metrics.writeJson(Json);
  Result.MetricsJson = Json.str();
  return Result;
}

void expectSameFaultedReport(const ClusterReport &A, const ClusterReport &B) {
  EXPECT_EQ(A.RowPhaseTime, B.RowPhaseTime);
  EXPECT_EQ(A.ColPhaseTime, B.ColPhaseTime);
  EXPECT_EQ(A.ExchangeTime, B.ExchangeTime);
  EXPECT_EQ(A.LinkTime, B.LinkTime);
  EXPECT_EQ(A.ExchangeMemTime, B.ExchangeMemTime);
  EXPECT_EQ(A.CheckpointTime, B.CheckpointTime);
  EXPECT_EQ(A.DetectionTime, B.DetectionTime);
  EXPECT_EQ(A.MigrationTime, B.MigrationTime);
  EXPECT_EQ(A.TotalTime, B.TotalTime);
  EXPECT_EQ(A.StacksFailed, B.StacksFailed);
  EXPECT_EQ(A.SurvivorStacks, B.SurvivorStacks);
  EXPECT_EQ(A.Retransmits, B.Retransmits);
  EXPECT_EQ(A.BackoffTime, B.BackoffTime);
  EXPECT_EQ(A.XferFailed, B.XferFailed);
  EXPECT_EQ(A.XferMessages, B.XferMessages);
  EXPECT_EQ(A.XferBytes, B.XferBytes);
}

} // namespace

TEST(ClusterFaultDeterminism, RandomizedSchedulesThreadCountInvariant) {
  // Seeded random stack-kill + link-degrade schedules at S in {2, 4, 8}:
  // the faulted run must be byte-identical at --sim-threads 1 and 4 -
  // stats, metrics snapshot, and trace digest. The seed is fixed so
  // failures replay.
  Rng R(20260808);
  for (const unsigned S : {2u, 4u, 8u}) {
    const unsigned Victim = R.nextBelow(S);
    const unsigned Link = R.nextBelow(2 * S);
    std::ostringstream Spec;
    // The kill lands 0.1 us in - well before any row phase completes -
    // so every drawn schedule actually exercises the recovery path.
    Spec << "seed " << (100 + S) << "\n"
         << "stack_fail " << Victim << " at 0.0001\n"
         << "link_degrade " << Link << " at 0 factor "
         << (1 + R.nextBelow(2)) << " loss 0.0" << (1 + R.nextBelow(9))
         << "\n";
    ClusterConfig Config = faultedConfig(128, S, Spec.str());
    Config.Topology =
        R.nextBelow(2) ? ClusterTopology::Ring : ClusterTopology::AllToAll;
    const FaultRunResult One = runFaulted(Config, 1);
    const FaultRunResult Par = runFaulted(Config, 4);
    expectSameFaultedReport(One.Report, Par.Report);
    EXPECT_EQ(One.Digest, Par.Digest) << "S=" << S;
    EXPECT_EQ(One.MetricsJson, Par.MetricsJson) << "S=" << S;
    // The schedule actually bit: one stack died and was migrated.
    EXPECT_EQ(One.Report.StacksFailed, 1u) << "S=" << S;
    EXPECT_EQ(One.Report.SurvivorStacks, S - 1) << "S=" << S;
  }
}
