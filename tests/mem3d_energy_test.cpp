//===- tests/mem3d_energy_test.cpp - Energy model tests --------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Energy.h"
#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

using namespace fft3d;

TEST(EnergyParams, DefaultsValid) {
  EXPECT_TRUE(EnergyParams().isValid());
  EnergyParams Bad;
  Bad.ActivatePJ = -1.0;
  EXPECT_FALSE(Bad.isValid());
}

TEST(EnergyModel, HandComputedVault) {
  EnergyParams P;
  P.ActivatePJ = 1000.0;
  P.ReadBeatPJ = 10.0;
  P.WriteBeatPJ = 20.0;
  P.TsvBeatPJ = 5.0;
  P.StaticMilliwattsPerVault = 0.0;
  const EnergyModel Model(P);

  VaultStats S;
  S.RowActivations = 3;
  S.BytesRead = 64;    // 8 beats
  S.BytesWritten = 16; // 2 beats
  const EnergyBreakdown E = Model.compute(S, /*Elapsed=*/0);
  EXPECT_DOUBLE_EQ(E.ActivatePJ, 3000.0);
  EXPECT_DOUBLE_EQ(E.ReadPJ, 80.0);
  EXPECT_DOUBLE_EQ(E.WritePJ, 40.0);
  EXPECT_DOUBLE_EQ(E.TsvPJ, 50.0);
  EXPECT_DOUBLE_EQ(E.StaticPJ, 0.0);
  EXPECT_DOUBLE_EQ(E.totalPJ(), 3170.0);
  EXPECT_DOUBLE_EQ(E.dynamicPJ(), 3170.0);
  EXPECT_DOUBLE_EQ(E.picojoulesPerBit(80), 3170.0 / 640.0);
}

TEST(EnergyModel, StaticScalesWithTimeAndVaults) {
  EnergyParams P;
  P.StaticMilliwattsPerVault = 10.0; // 10 mW = 10e-3 J/s = 0.01 pJ/ps.
  const EnergyModel Model(P);
  MemStats Stats(4);
  const EnergyBreakdown E = Model.compute(Stats, /*Elapsed=*/1000000);
  // 4 vaults x 10 mW x 1 us = 40 nJ = 40000 pJ.
  EXPECT_DOUBLE_EQ(E.StaticPJ, 40000.0);
  EXPECT_DOUBLE_EQ(E.milliwatts(1000000), 40.0);
}

TEST(EnergyModel, StridedAccessCostsOrdersOfMagnitudeMore) {
  // One activation per 8 B vs one activation per 8 KiB.
  const EnergyModel Model{EnergyParams()};
  VaultStats Strided, Streamed;
  Strided.RowActivations = 1024;
  Strided.BytesRead = 1024 * 8;
  Streamed.RowActivations = 1;
  Streamed.BytesRead = 8192;
  const double StridedPJ =
      Model.compute(Strided, 0).picojoulesPerBit(Strided.BytesRead);
  const double StreamedPJ =
      Model.compute(Streamed, 0).picojoulesPerBit(Streamed.BytesRead);
  EXPECT_GT(StridedPJ / StreamedPJ, 30.0);
}

TEST(EnergyModel, IntegratesWithSimulatorStats) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  Picos Last = 0;
  for (unsigned I = 0; I != 16; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
    Req.Bytes = static_cast<std::uint32_t>(Config.Geo.RowBufferBytes);
    Mem.submit(Req, [&Last](const MemRequest &, Picos At) { Last = At; });
  }
  Events.run();
  const EnergyModel Model{EnergyParams()};
  const EnergyBreakdown E =
      Model.compute(Mem.stats(), Last, Config.Geo.bytesPerBeat());
  // 16 activations and 16 KiB-rows of beats must be priced.
  EXPECT_DOUBLE_EQ(E.ActivatePJ, 16 * EnergyParams().ActivatePJ);
  EXPECT_GT(E.ReadPJ, 0.0);
  EXPECT_GT(E.StaticPJ, 0.0);
  EXPECT_GT(E.totalPJ(), 0.0);
}
