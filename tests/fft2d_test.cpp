//===- tests/fft2d_test.cpp - 2D FFT and matrix tests ----------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Fft2d.h"
#include "fft/ReferenceDft.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fft3d;

namespace {

Matrix randomMatrix(std::uint64_t Rows, std::uint64_t Cols,
                    std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(Rows, Cols);
  for (std::uint64_t I = 0; I != Rows; ++I)
    for (std::uint64_t J = 0; J != Cols; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                         static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

double maxDiffToReference(const Matrix &M, const std::vector<CplxD> &Ref) {
  double Max = 0.0;
  for (std::uint64_t R = 0; R != M.rows(); ++R)
    for (std::uint64_t C = 0; C != M.cols(); ++C)
      Max = std::max(Max,
                     std::abs(widen(M.at(R, C)) - Ref[R * M.cols() + C]));
  return Max;
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(Matrix, RowColAccessors) {
  Matrix M(4, 8);
  M.at(2, 5) = CplxF(1.5f, -2.5f);
  EXPECT_EQ(M.at(2, 5), CplxF(1.5f, -2.5f));
  std::vector<CplxF> Row;
  M.copyRow(2, Row);
  ASSERT_EQ(Row.size(), 8u);
  EXPECT_EQ(Row[5], CplxF(1.5f, -2.5f));
  std::vector<CplxF> Col;
  M.copyCol(5, Col);
  ASSERT_EQ(Col.size(), 4u);
  EXPECT_EQ(Col[2], CplxF(1.5f, -2.5f));
}

TEST(Matrix, SetRowSetColRoundTrip) {
  Matrix M(4, 4);
  std::vector<CplxF> Line = {CplxF(1, 0), CplxF(2, 0), CplxF(3, 0),
                             CplxF(4, 0)};
  M.setRow(1, Line);
  std::vector<CplxF> Out;
  M.copyRow(1, Out);
  EXPECT_EQ(Out, Line);
  M.setCol(2, Line);
  M.copyCol(2, Out);
  EXPECT_EQ(Out, Line);
}

TEST(Matrix, TransposeSquare) {
  Matrix M = randomMatrix(8, 8, 1);
  Matrix T = M;
  T.transposeSquare();
  for (std::uint64_t R = 0; R != 8; ++R)
    for (std::uint64_t C = 0; C != 8; ++C)
      EXPECT_EQ(T.at(R, C), M.at(C, R));
  T.transposeSquare();
  EXPECT_DOUBLE_EQ(T.maxAbsDiff(M), 0.0);
}

//===----------------------------------------------------------------------===//
// Fft2d
//===----------------------------------------------------------------------===//

class Fft2dShapes
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(Fft2dShapes, ForwardMatchesReference2d) {
  const auto [Rows, Cols] = GetParam();
  Matrix M = randomMatrix(Rows, Cols, Rows * 100 + Cols);
  const std::vector<CplxD> Ref = referenceDft2d(M.widened(), Rows, Cols);
  const Fft2d Plan(Rows, Cols);
  Plan.forward(M);
  EXPECT_LT(maxDiffToReference(M, Ref), 2e-3);
}

TEST_P(Fft2dShapes, RoundTripRestoresInput) {
  const auto [Rows, Cols] = GetParam();
  const Matrix Original = randomMatrix(Rows, Cols, 42);
  Matrix M = Original;
  const Fft2d Plan(Rows, Cols);
  Plan.forward(M);
  Plan.inverse(M);
  EXPECT_LT(M.maxAbsDiff(Original), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Fft2dShapes,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{4, 4},
                      std::pair<std::uint64_t, std::uint64_t>{8, 8},
                      std::pair<std::uint64_t, std::uint64_t>{16, 16},
                      std::pair<std::uint64_t, std::uint64_t>{8, 32},
                      std::pair<std::uint64_t, std::uint64_t>{32, 8}));

TEST(Fft2d, RowThenColEqualsColThenRow) {
  // The row-column algorithm commutes: both orders give the 2D DFT.
  Matrix A = randomMatrix(16, 16, 5);
  Matrix B = A;
  const Fft2d Plan(16, 16);
  Plan.rowPhase(A);
  Plan.colPhase(A);
  Plan.colPhase(B);
  Plan.rowPhase(B);
  EXPECT_LT(A.maxAbsDiff(B), 1e-3);
}

TEST(Fft2d, SeparablePhasesComposeToForward) {
  Matrix A = randomMatrix(16, 16, 6);
  Matrix B = A;
  const Fft2d Plan(16, 16);
  Plan.forward(A);
  Plan.rowPhase(B);
  Plan.colPhase(B);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(B), 0.0);
}

TEST(Fft2d, Impulse2dIsFlat) {
  Matrix M(8, 8);
  M.at(0, 0) = CplxF(1, 0);
  const Fft2d Plan(8, 8);
  Plan.forward(M);
  for (std::uint64_t R = 0; R != 8; ++R)
    for (std::uint64_t C = 0; C != 8; ++C)
      EXPECT_NEAR(std::abs(widen(M.at(R, C)) - CplxD(1, 0)), 0.0, 1e-5);
}

TEST(Fft2d, ConvolutionTheoremHolds) {
  // Circular convolution via pointwise spectral product: convolving with
  // a one-pixel shift kernel must rotate the image.
  const std::uint64_t N = 8;
  Matrix Img = randomMatrix(N, N, 9);
  Matrix Kernel(N, N);
  Kernel.at(0, 1) = CplxF(1, 0); // Shift by one column.

  const Fft2d Plan(N, N);
  Matrix FImg = Img, FKer = Kernel;
  Plan.forward(FImg);
  Plan.forward(FKer);
  Matrix Prod(N, N);
  for (std::uint64_t R = 0; R != N; ++R)
    for (std::uint64_t C = 0; C != N; ++C)
      Prod.at(R, C) = FImg.at(R, C) * FKer.at(R, C);
  Plan.inverse(Prod);

  for (std::uint64_t R = 0; R != N; ++R)
    for (std::uint64_t C = 0; C != N; ++C)
      EXPECT_NEAR(std::abs(widen(Prod.at(R, C)) -
                           widen(Img.at(R, (C + N - 1) % N))),
                  0.0, 1e-4)
          << R << "," << C;
}
