//===- tests/serve_slo_test.cpp - SLO percentile/summary math -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "serve/SloTracker.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fft3d;

namespace {

JobOutcome outcome(std::uint64_t Id, Picos Arrival, Picos Dispatch,
                   Picos Complete, Picos Deadline = 0) {
  JobOutcome O;
  O.Job.Id = Id;
  O.Job.Arrival = Arrival;
  O.Job.Deadline = Deadline;
  O.DispatchTime = Dispatch;
  O.CompleteTime = Complete;
  O.Vaults = 16;
  return O;
}

} // namespace

TEST(SloPercentile, NearestRankDefinition) {
  // 10 samples: p50 is the 5th smallest, p95 and p99 the 10th.
  const std::vector<double> S = {9, 1, 8, 2, 7, 3, 6, 4, 10, 5};
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 1.00), 10.0);
  // p10 of 10 samples is the smallest.
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 0.10), 1.0);
  // Tiny fractions clamp to the first sample, not index -1.
  EXPECT_DOUBLE_EQ(SloTracker::percentile(S, 0.001), 1.0);
}

TEST(SloPercentile, SingleSampleAndEmpty) {
  EXPECT_DOUBLE_EQ(SloTracker::percentile({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(SloTracker::percentile({42.0}, 0.99), 42.0);
  EXPECT_DOUBLE_EQ(SloTracker::percentile({}, 0.5), 0.0);
}

TEST(SloTracker, OutcomeDerivedQuantities) {
  const JobOutcome O =
      outcome(1, 1 * PicosPerMilli, 3 * PicosPerMilli, 7 * PicosPerMilli,
              /*Deadline=*/6 * PicosPerMilli);
  EXPECT_EQ(O.queueingDelay(), 2 * PicosPerMilli);
  EXPECT_EQ(O.serviceTime(), 4 * PicosPerMilli);
  EXPECT_EQ(O.totalLatency(), 6 * PicosPerMilli);
  EXPECT_TRUE(O.missedDeadline());
  // Completing exactly at the deadline is a hit.
  const JobOutcome OnTime =
      outcome(2, 0, 0, 6 * PicosPerMilli, 6 * PicosPerMilli);
  EXPECT_FALSE(OnTime.missedDeadline());
}

TEST(SloTracker, SummarizeCountsThroughputAndMisses) {
  SloTracker T;
  // Three jobs arriving at 0/10/20 ms, each 10 ms of service, serial.
  T.recordCompletion(outcome(1, 0, 0, 10 * PicosPerMilli));
  T.recordCompletion(outcome(2, 10 * PicosPerMilli, 10 * PicosPerMilli,
                             20 * PicosPerMilli,
                             /*Deadline=*/15 * PicosPerMilli));
  T.recordCompletion(outcome(3, 20 * PicosPerMilli, 25 * PicosPerMilli,
                             30 * PicosPerMilli,
                             /*Deadline=*/40 * PicosPerMilli));
  const SloSummary S = T.summarize(30 * PicosPerMilli);
  EXPECT_EQ(S.Offered, 3u);
  EXPECT_EQ(S.Completed, 3u);
  EXPECT_EQ(S.Shed, 0u);
  // 3 jobs over a 30 ms makespan = 100 jobs/s.
  EXPECT_NEAR(S.ThroughputJobsPerSec, 100.0, 1e-9);
  // Latencies: 10, 10, 10 ms.
  EXPECT_NEAR(S.P50LatencyMs, 10.0, 1e-9);
  EXPECT_NEAR(S.P99LatencyMs, 10.0, 1e-9);
  // Queue delays: 0, 0, 5 -> p99 = 5 ms.
  EXPECT_NEAR(S.P99QueueMs, 5.0, 1e-9);
  EXPECT_NEAR(S.MeanServiceMs, 25.0 / 3.0, 1e-9);
  // Job 2 missed (20 > 15), job 3 hit: one of two deadlines missed.
  EXPECT_NEAR(S.DeadlineMissRate, 0.5, 1e-9);
}

TEST(SloTracker, ShedJobsCountAsDeadlineMisses) {
  SloTracker T;
  T.recordCompletion(outcome(1, 0, 0, 10 * PicosPerMilli,
                             /*Deadline=*/20 * PicosPerMilli));
  JobRequest Shed;
  Shed.Id = 2;
  Shed.Arrival = PicosPerMilli;
  Shed.Deadline = 30 * PicosPerMilli;
  T.recordShed(Shed, AdmissionDecision::ShedQueueFull);
  JobRequest ShedNoDeadline;
  ShedNoDeadline.Id = 3;
  ShedNoDeadline.Arrival = 2 * PicosPerMilli;
  T.recordShed(ShedNoDeadline, AdmissionDecision::ShedQueueFull);

  const SloSummary S = T.summarize(10 * PicosPerMilli);
  EXPECT_EQ(S.Offered, 3u);
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.Shed, 2u);
  EXPECT_NEAR(S.ShedRate, 2.0 / 3.0, 1e-9);
  // Deadlines: job 1 hit, job 2 shed (counts as miss); job 3 had none.
  EXPECT_NEAR(S.DeadlineMissRate, 0.5, 1e-9);
}

TEST(SloTracker, EmptyRunSummarizesToZeros) {
  const SloSummary S = SloTracker().summarize(0);
  EXPECT_EQ(S.Offered, 0u);
  EXPECT_DOUBLE_EQ(S.ThroughputJobsPerSec, 0.0);
  EXPECT_DOUBLE_EQ(S.P99LatencyMs, 0.0);
  EXPECT_DOUBLE_EQ(S.DeadlineMissRate, 0.0);
}

TEST(SloTracker, ColdStartReportOmitsLatencyGauges) {
  // The empty-window regression: a run with arrivals but zero
  // completions must flag its latency fields as placeholders and keep
  // them out of the exported report - "p99 = 0 ms" on a cold start is
  // not a measurement.
  SloTracker Tracker;
  JobRequest OnlyShed;
  OnlyShed.Id = 1;
  OnlyShed.Arrival = PicosPerMilli;
  Tracker.recordShed(OnlyShed, AdmissionDecision::ShedQueueFull);

  const SloSummary S = Tracker.summarize(10 * PicosPerMilli);
  EXPECT_EQ(S.Completed, 0u);
  EXPECT_FALSE(S.HasLatencyStats);
  EXPECT_DOUBLE_EQ(S.P99LatencyMs, 0.0);

  MetricsRegistry Registry;
  Tracker.exportTo(Registry, "fcfs", 10 * PicosPerMilli);
  std::ostringstream Json;
  Registry.writeJson(Json);
  const std::string Text = Json.str();
  // Count/shed counters are reported; the latency-derived gauges are
  // absent, not zero.
  EXPECT_NE(Text.find("serve.shed"), std::string::npos);
  EXPECT_EQ(Text.find("serve.p99_latency_ms"), std::string::npos);
  EXPECT_EQ(Text.find("serve.p50_latency_ms"), std::string::npos);
  EXPECT_EQ(Text.find("serve.throughput_jobs_per_sec"), std::string::npos);

  // One completion flips the flag and the gauges appear.
  JobOutcome Done;
  Done.Job.Id = 2;
  Done.Job.Arrival = 0;
  Done.DispatchTime = PicosPerMilli;
  Done.CompleteTime = 2 * PicosPerMilli;
  Tracker.recordCompletion(Done);
  EXPECT_TRUE(Tracker.summarize(10 * PicosPerMilli).HasLatencyStats);
  MetricsRegistry Warm;
  Tracker.exportTo(Warm, "fcfs", 10 * PicosPerMilli);
  std::ostringstream WarmJson;
  Warm.writeJson(WarmJson);
  EXPECT_NE(WarmJson.str().find("serve.p99_latency_ms"),
            std::string::npos);
}
