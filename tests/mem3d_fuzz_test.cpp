//===- tests/mem3d_fuzz_test.cpp - Randomized simulator invariants --------===//
//
// Part of the fft3d project.
//
// Property tests over random request streams: every request completes,
// accounting balances, per-vault data is serialized, FCFS preserves
// per-vault order, and the whole simulation is deterministic. The
// internal asserts (non-overlapping bus reservations, monotonic event
// time) act as additional oracles while these run.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"
#include "support/MathUtils.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace fft3d;

namespace {

struct Completion {
  MemRequest Req;
  Picos Done;
};

/// Random mixed read/write stream with bursts of 8..RowBuffer bytes,
/// submitted in randomized batches with idle gaps.
std::vector<Completion> runRandomStream(std::uint64_t Seed,
                                        SchedulePolicy Sched,
                                        PagePolicy Page, unsigned Count) {
  EventQueue Events;
  MemoryConfig Config;
  Config.Sched = Sched;
  Config.Page = Page;
  Memory3D Mem(Events, Config);
  const Geometry &G = Config.Geo;

  Rng R(Seed);
  std::vector<Completion> Done;
  Done.reserve(Count);
  Picos SubmitTime = 0;
  unsigned Submitted = 0;
  // Submit in bursts at increasing times via scheduled events so arrival
  // interleaves with service.
  while (Submitted < Count) {
    const unsigned Batch =
        std::min<unsigned>(1 + static_cast<unsigned>(R.nextBelow(16)),
                           Count - Submitted);
    std::vector<MemRequest> Reqs;
    for (unsigned I = 0; I != Batch; ++I) {
      MemRequest Req;
      Req.IsWrite = R.nextBelow(2) == 0;
      // Keep the burst inside one row.
      const std::uint64_t Row = R.nextBelow(G.capacityBytes() /
                                            G.RowBufferBytes);
      const std::uint64_t MaxLen = G.RowBufferBytes;
      const std::uint64_t Offset = R.nextBelow(MaxLen / 8) * 8;
      const std::uint64_t Len =
          std::min<std::uint64_t>(8 * (1 + R.nextBelow(64)),
                                  MaxLen - Offset);
      Req.Addr = Row * G.RowBufferBytes + Offset;
      Req.Bytes = static_cast<std::uint32_t>(Len);
      Reqs.push_back(Req);
    }
    Events.scheduleAt(SubmitTime, [&Mem, &Done, Reqs] {
      for (const MemRequest &Req : Reqs)
        Mem.submit(Req, [&Done](const MemRequest &R2, Picos At) {
          Done.push_back({R2, At});
        });
    });
    SubmitTime += R.nextBelow(2000) * 100; // 0..200 ns gaps
    Submitted += Batch;
  }
  Events.run();
  EXPECT_EQ(Done.size(), Count);
  EXPECT_EQ(Mem.pendingRequests(), 0u);

  // Accounting balances.
  std::uint64_t Bytes = 0;
  for (const Completion &C : Done)
    Bytes += C.Req.Bytes;
  EXPECT_EQ(Mem.stats().total().totalBytes(), Bytes);
  EXPECT_EQ(Mem.stats().total().totalAccesses(), Count);
  EXPECT_EQ(Mem.stats().total().RowHits + Mem.stats().total().RowMisses,
            Count);
  return Done;
}

} // namespace

class MemFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemFuzz, AllPoliciesCompleteAndBalance) {
  for (const SchedulePolicy Sched :
       {SchedulePolicy::Fcfs, SchedulePolicy::FrFcfs})
    for (const PagePolicy Page :
         {PagePolicy::OpenPage, PagePolicy::ClosedPage})
      runRandomStream(GetParam(), Sched, Page, 400);
}

TEST_P(MemFuzz, DeterministicAcrossRuns) {
  const auto A =
      runRandomStream(GetParam(), SchedulePolicy::FrFcfs,
                      PagePolicy::OpenPage, 300);
  const auto B =
      runRandomStream(GetParam(), SchedulePolicy::FrFcfs,
                      PagePolicy::OpenPage, 300);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Req.Addr, B[I].Req.Addr);
    EXPECT_EQ(A[I].Done, B[I].Done);
  }
}

TEST_P(MemFuzz, PerVaultDataIsSerialized) {
  const auto Done = runRandomStream(GetParam(), SchedulePolicy::FrFcfs,
                                    PagePolicy::OpenPage, 400);
  const Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  const Timing T;
  // Within one vault, data windows [Done - beats*TsvPeriod, Done) must
  // not overlap: sort completions per vault and check spacing.
  std::map<unsigned, std::vector<std::pair<Picos, Picos>>> Windows;
  for (const Completion &C : Done) {
    const unsigned Vault = Mapper.decode(C.Req.Addr).Vault;
    const std::uint64_t Beats = ceilDiv(C.Req.Bytes, G.bytesPerBeat());
    Windows[Vault].push_back({C.Done - Beats * T.TsvPeriod, C.Done});
  }
  for (auto &[Vault, W] : Windows) {
    std::sort(W.begin(), W.end());
    for (std::size_t I = 1; I < W.size(); ++I)
      EXPECT_GE(W[I].first, W[I - 1].second)
          << "vault " << Vault << " overlapping data windows";
  }
}

TEST_P(MemFuzz, FcfsPreservesPerVaultOrder) {
  EventQueue Events;
  MemoryConfig Config;
  Config.Sched = SchedulePolicy::Fcfs;
  Memory3D Mem(Events, Config);
  const Geometry &G = Config.Geo;

  Rng R(GetParam() * 77 + 1);
  std::vector<Picos> DoneTimes;
  std::vector<unsigned> Vaults;
  for (unsigned I = 0; I != 200; ++I) {
    MemRequest Req;
    const std::uint64_t Row =
        R.nextBelow(G.capacityBytes() / G.RowBufferBytes);
    Req.Addr = Row * G.RowBufferBytes;
    Req.Bytes = 8 * static_cast<std::uint32_t>(1 + R.nextBelow(32));
    const std::size_t Index = DoneTimes.size();
    DoneTimes.push_back(0);
    Vaults.push_back(Mem.mapper().decode(Req.Addr).Vault);
    Mem.submit(Req, [&DoneTimes, Index](const MemRequest &, Picos At) {
      DoneTimes[Index] = At;
    });
  }
  Events.run();
  // For each vault, completion times must be increasing in submit order.
  std::map<unsigned, Picos> LastPerVault;
  for (std::size_t I = 0; I != DoneTimes.size(); ++I) {
    auto [It, Inserted] = LastPerVault.try_emplace(Vaults[I], DoneTimes[I]);
    if (!Inserted) {
      EXPECT_GT(DoneTimes[I], It->second);
      It->second = DoneTimes[I];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemFuzz,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 17, 42));
