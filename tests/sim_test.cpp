//===- tests/sim_test.cpp - Unit tests for src/sim -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "sim/Clock.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fft3d;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue Q;
  std::vector<int> Order;
  Q.scheduleAt(30, [&] { Order.push_back(3); });
  Q.scheduleAt(10, [&] { Order.push_back(1); });
  Q.scheduleAt(20, [&] { Order.push_back(2); });
  Q.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Q.now(), 30u);
}

TEST(EventQueue, EqualTimestampsRunInInsertionOrder) {
  EventQueue Q;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    Q.scheduleAt(100, [&Order, I] { Order.push_back(I); });
  Q.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue Q;
  int Count = 0;
  std::function<void()> Chain = [&] {
    ++Count;
    if (Count < 10)
      Q.scheduleAfter(5, Chain);
  };
  Q.scheduleAt(0, Chain);
  Q.run();
  EXPECT_EQ(Count, 10);
  EXPECT_EQ(Q.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue Q;
  int Ran = 0;
  Q.scheduleAt(10, [&] { ++Ran; });
  Q.scheduleAt(20, [&] { ++Ran; });
  Q.scheduleAt(30, [&] { ++Ran; });
  EXPECT_EQ(Q.runUntil(20), 2u);
  EXPECT_EQ(Ran, 2);
  EXPECT_EQ(Q.now(), 20u);
  EXPECT_EQ(Q.size(), 1u);
  Q.run();
  EXPECT_EQ(Ran, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue Q;
  Q.runUntil(500);
  EXPECT_EQ(Q.now(), 500u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue Q;
  EXPECT_FALSE(Q.step());
}

TEST(Clock, CycleConversions) {
  const Clock C = Clock::fromMHz(625.0);
  EXPECT_EQ(C.period(), 1600u);
  EXPECT_EQ(C.cyclesToPicos(10), 16000u);
  EXPECT_EQ(C.picosToCycles(16000), 10u);
  EXPECT_NEAR(C.frequencyMHz(), 625.0, 1e-9);
}

TEST(Clock, NextEdge) {
  const Clock C(4000);
  EXPECT_EQ(C.nextEdgeAtOrAfter(0), 0u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(1), 4000u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(4000), 4000u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(4001), 8000u);
}
