//===- tests/sim_test.cpp - Unit tests for src/sim -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "sim/Clock.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

using namespace fft3d;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue Q;
  std::vector<int> Order;
  Q.scheduleAt(30, [&] { Order.push_back(3); });
  Q.scheduleAt(10, [&] { Order.push_back(1); });
  Q.scheduleAt(20, [&] { Order.push_back(2); });
  Q.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Q.now(), 30u);
}

TEST(EventQueue, EqualTimestampsRunInInsertionOrder) {
  EventQueue Q;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    Q.scheduleAt(100, [&Order, I] { Order.push_back(I); });
  Q.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue Q;
  int Count = 0;
  std::function<void()> Chain = [&] {
    ++Count;
    if (Count < 10)
      Q.scheduleAfter(5, Chain);
  };
  Q.scheduleAt(0, Chain);
  Q.run();
  EXPECT_EQ(Count, 10);
  EXPECT_EQ(Q.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue Q;
  int Ran = 0;
  Q.scheduleAt(10, [&] { ++Ran; });
  Q.scheduleAt(20, [&] { ++Ran; });
  Q.scheduleAt(30, [&] { ++Ran; });
  EXPECT_EQ(Q.runUntil(20), 2u);
  EXPECT_EQ(Ran, 2);
  EXPECT_EQ(Q.now(), 20u);
  EXPECT_EQ(Q.size(), 1u);
  Q.run();
  EXPECT_EQ(Ran, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue Q;
  Q.runUntil(500);
  EXPECT_EQ(Q.now(), 500u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue Q;
  EXPECT_FALSE(Q.step());
}

TEST(Clock, CycleConversions) {
  const Clock C = Clock::fromMHz(625.0);
  EXPECT_EQ(C.period(), 1600u);
  EXPECT_EQ(C.cyclesToPicos(10), 16000u);
  EXPECT_EQ(C.picosToCycles(16000), 10u);
  EXPECT_NEAR(C.frequencyMHz(), 625.0, 1e-9);
}

TEST(Clock, NextEdge) {
  const Clock C(4000);
  EXPECT_EQ(C.nextEdgeAtOrAfter(0), 0u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(1), 4000u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(4000), 4000u);
  EXPECT_EQ(C.nextEdgeAtOrAfter(4001), 8000u);
}

//===----------------------------------------------------------------------===//
// Ladder-queue internals: events beyond the near horizon, bucket
// migration, and ordering under adversarial schedules.
//===----------------------------------------------------------------------===//

TEST(EventQueue, FarHorizonEventsRunInOrder) {
  // Deadlines far beyond the 256-bucket near window land in the far
  // heap and must migrate back as the clock advances.
  EventQueue Q;
  std::vector<Picos> Seen;
  const std::vector<Picos> Deadlines = {5,         1 << 20,  3,
                                        10 << 20,  1 << 10,  7 << 24,
                                        (10 << 20) + 1};
  for (Picos D : Deadlines)
    Q.scheduleAt(D, [&Seen, &Q] { Seen.push_back(Q.now()); });
  Q.run();
  std::vector<Picos> Sorted = Deadlines;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Seen, Sorted);
}

TEST(EventQueue, ScheduleDuringDrainStaysOrdered) {
  // Callbacks scheduling both near and far follow-ups while the queue
  // drains: the (time, sequence) total order must hold throughout.
  EventQueue Q;
  std::vector<std::pair<Picos, int>> Log;
  int Spawned = 0;
  std::function<void(int)> Chain = [&](int Depth) {
    Log.emplace_back(Q.now(), Depth);
    if (Depth < 6) {
      ++Spawned;
      Q.scheduleAfter(1 + Depth * 1000, [&, Depth] { Chain(Depth + 1); });
      Q.scheduleAfter(1u << (10 + Depth), [&, Depth] { Chain(Depth + 1); });
      ++Spawned;
    }
  };
  Q.scheduleAt(0, [&] { Chain(0); });
  Q.run();
  for (std::size_t I = 1; I < Log.size(); ++I)
    EXPECT_LE(Log[I - 1].first, Log[I].first) << "out of order at " << I;
  EXPECT_EQ(Log.size(), std::size_t(Spawned) + 1);
}

TEST(EventQueue, RunUntilWithFarEvents) {
  EventQueue Q;
  int Ran = 0;
  Q.scheduleAt(100, [&] { ++Ran; });
  Q.scheduleAt(5 << 20, [&] { ++Ran; });   // far heap
  Q.scheduleAt(9 << 20, [&] { ++Ran; });   // far heap
  Q.runUntil(6 << 20);
  EXPECT_EQ(Ran, 2);
  EXPECT_EQ(Q.now(), Picos(6) << 20);
  EXPECT_EQ(Q.size(), 1u);
  Q.run();
  EXPECT_EQ(Ran, 3);
}

TEST(EventQueue, RandomStressMatchesReferenceOrder) {
  // Pseudo-random schedule (mixed spans, duplicate deadlines, chained
  // insertions) replayed against a sorted-reference model.
  EventQueue Q;
  std::vector<std::pair<Picos, int>> Expected, Seen;
  std::uint64_t State = 12345;
  auto Next = [&State] {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  };
  int Id = 0;
  for (int I = 0; I != 2000; ++I) {
    const Picos When = Next() % 500000;
    const int MyId = Id++;
    Expected.emplace_back(When, MyId);
    Q.scheduleAt(When, [&Seen, &Q, MyId] {
      Seen.emplace_back(Q.now(), MyId);
    });
  }
  // Stable sort mirrors the queue's (time, insertion sequence) order.
  std::stable_sort(Expected.begin(), Expected.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  Q.run();
  EXPECT_EQ(Seen, Expected);
}

TEST(EventQueue, SlotReuseAfterHeavyChurn) {
  // Repeated fill/drain cycles: the callback slab must recycle slots
  // rather than grow without bound.
  EventQueue Q;
  std::uint64_t Sum = 0;
  for (int Round = 0; Round != 50; ++Round) {
    for (int I = 0; I != 100; ++I)
      Q.scheduleAfter(1 + I, [&Sum] { ++Sum; });
    Q.run();
  }
  EXPECT_EQ(Sum, 5000u);
}
