//===- tests/cluster_determinism_test.cpp - Sharded cluster invariance ----===//
//
// Part of the fft3d project.
//
// Every stack in a cluster run drives its own vault-sharded engine, so
// the whole multi-stack simulation inherits the sharded engine's
// contract: byte-identical reports and traces at every --sim-threads
// value. A randomized seeded sweep of cluster shapes pins the invariant
// for 2-stack runs and beyond.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

struct RunResult {
  ClusterReport Report;
  std::string Digest;
};

RunResult runWith(ClusterConfig Config, unsigned SimThreads, bool ThreeD) {
  Config.Node.SimThreads = SimThreads;
  ClusterFftProcessor Processor(Config);
  Tracer Trace;
  Processor.setObservability(&Trace, nullptr);
  RunResult Result;
  Result.Report = ThreeD ? Processor.run3d() : Processor.run2d();
  Result.Digest = traceDigest(Trace);
  return Result;
}

void expectSameReport(const ClusterReport &A, const ClusterReport &B) {
  EXPECT_EQ(A.RowPhaseTime, B.RowPhaseTime);
  EXPECT_EQ(A.ColPhaseTime, B.ColPhaseTime);
  EXPECT_EQ(A.ZPhaseTime, B.ZPhaseTime);
  EXPECT_EQ(A.ExchangeTime, B.ExchangeTime);
  EXPECT_EQ(A.Exchange2Time, B.Exchange2Time);
  EXPECT_EQ(A.LinkTime, B.LinkTime);
  EXPECT_EQ(A.ExchangeMemTime, B.ExchangeMemTime);
  EXPECT_EQ(A.TotalTime, B.TotalTime);
  EXPECT_EQ(A.XferMessages, B.XferMessages);
  EXPECT_EQ(A.XferBytes, B.XferBytes);
}

} // namespace

TEST(ClusterDeterminism, TwoStackRunThreadCountInvariant) {
  const ClusterConfig Config = ClusterConfig::forProblemSize(256, 2);
  const RunResult One = runWith(Config, 1, /*ThreeD=*/false);
  for (unsigned SimThreads : {2u, 4u}) {
    const RunResult Par = runWith(Config, SimThreads, /*ThreeD=*/false);
    expectSameReport(One.Report, Par.Report);
    EXPECT_EQ(One.Digest, Par.Digest) << SimThreads;
  }
}

TEST(ClusterDeterminism, RandomizedShapesThreadCountInvariant) {
  // Seeded random draw over cluster shapes; every drawn configuration
  // must be sim-thread invariant. The seed is fixed so failures replay.
  Rng R(20260808);
  for (int Draw = 0; Draw != 4; ++Draw) {
    const unsigned S = 1u << (1 + R.nextBelow(2));       // 2 or 4
    const std::uint64_t N = 64ull << R.nextBelow(2);     // 64 or 128
    const bool ThreeD = S <= 4 && N == 64 && R.nextBelow(2) == 0;
    ClusterConfig Config = ClusterConfig::forProblemSize(N, S);
    Config.Topology =
        R.nextBelow(2) ? ClusterTopology::Ring : ClusterTopology::AllToAll;
    Config.Placement = R.nextBelow(2) ? StackPlacement::RoundRobin
                                      : StackPlacement::TwoLevel;
    Config.LinkGBps = 8.0 * static_cast<double>(1 + R.nextBelow(4));
    const RunResult One = runWith(Config, 1, ThreeD);
    const RunResult Par = runWith(Config, 4, ThreeD);
    expectSameReport(One.Report, Par.Report);
    EXPECT_EQ(One.Digest, Par.Digest)
        << "S=" << S << " N=" << N << " 3d=" << ThreeD;
  }
}
