//===- tests/layout_test.cpp - Data layout tests ---------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/BlockDynamicLayout.h"
#include "layout/LinearLayouts.h"
#include "layout/TiledLayout.h"
#include "mem3d/Address.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

using namespace fft3d;

namespace {

/// Checks the layout is a bijection onto [Base, Base + sizeBytes).
void expectBijective(const DataLayout &L) {
  std::set<PhysAddr> Seen;
  for (std::uint64_t R = 0; R != L.numRows(); ++R) {
    for (std::uint64_t C = 0; C != L.numCols(); ++C) {
      const PhysAddr A = L.addressOf(R, C);
      EXPECT_GE(A, L.base());
      EXPECT_LT(A, L.base() + L.sizeBytes());
      EXPECT_EQ(A % L.elementBytes(), 0u);
      EXPECT_TRUE(Seen.insert(A).second)
          << "duplicate address for (" << R << "," << C << ")";
    }
  }
  EXPECT_EQ(Seen.size(), L.numRows() * L.numCols());
}

enum class Family { RowMajor, ColMajor, Tiled, BlockSkewed, BlockPlain };

std::unique_ptr<DataLayout> makeLayout(Family F, std::uint64_t N,
                                       PhysAddr Base) {
  switch (F) {
  case Family::RowMajor:
    return std::make_unique<RowMajorLayout>(N, N, 8, Base);
  case Family::ColMajor:
    return std::make_unique<ColMajorLayout>(N, N, 8, Base);
  case Family::Tiled:
    return std::make_unique<TiledLayout>(N, N, 8, Base, N >= 8 ? 8 : N,
                                         N >= 4 ? 4 : N);
  case Family::BlockSkewed:
    return std::make_unique<BlockDynamicLayout>(N, N, 8, Base, 4, 8, true);
  case Family::BlockPlain:
    return std::make_unique<BlockDynamicLayout>(N, N, 8, Base, 4, 8, false);
  }
  return nullptr;
}

class LayoutBijectionTest
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

} // namespace

TEST_P(LayoutBijectionTest, IsBijective) {
  const auto [F, N] = GetParam();
  const auto L = makeLayout(F, N, /*Base=*/4096);
  ASSERT_NE(L, nullptr);
  expectBijective(*L);
}

TEST_P(LayoutBijectionTest, RunsAreContiguousAndInRange) {
  const auto [F, N] = GetParam();
  const auto L = makeLayout(F, N, 0);
  for (std::uint64_t R = 0; R < N; R += 3) {
    for (std::uint64_t C = 0; C < N; C += 3) {
      const std::uint64_t Run = L->contiguousRowRun(R, C);
      ASSERT_GE(Run, 1u);
      ASSERT_LE(Run, N - C);
      for (std::uint64_t I = 1; I < Run; ++I)
        EXPECT_EQ(L->addressOf(R, C + I), L->addressOf(R, C) + I * 8);
      const std::uint64_t ColRun = L->contiguousColRun(R, C);
      ASSERT_GE(ColRun, 1u);
      ASSERT_LE(ColRun, N - R);
      for (std::uint64_t I = 1; I < ColRun; ++I)
        EXPECT_EQ(L->addressOf(R + I, C), L->addressOf(R, C) + I * 8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, LayoutBijectionTest,
    ::testing::Combine(::testing::Values(Family::RowMajor, Family::ColMajor,
                                         Family::Tiled, Family::BlockSkewed,
                                         Family::BlockPlain),
                       ::testing::Values<std::uint64_t>(16, 32, 64)));

TEST(RowMajorLayout, MatchesFormula) {
  const RowMajorLayout L(8, 8, 8, 100);
  EXPECT_EQ(L.addressOf(0, 0), 100u);
  EXPECT_EQ(L.addressOf(0, 1), 108u);
  EXPECT_EQ(L.addressOf(1, 0), 100u + 64);
  EXPECT_EQ(L.contiguousRowRun(2, 3), 5u);
  EXPECT_EQ(L.contiguousColRun(2, 3), 1u);
}

TEST(ColMajorLayout, MatchesFormula) {
  const ColMajorLayout L(8, 8, 8, 0);
  EXPECT_EQ(L.addressOf(1, 0), 8u);
  EXPECT_EQ(L.addressOf(0, 1), 64u);
  EXPECT_EQ(L.contiguousColRun(3, 2), 5u);
  EXPECT_EQ(L.contiguousRowRun(3, 2), 1u);
}

TEST(TiledLayout, TileInteriorIsContiguous) {
  const TiledLayout L(16, 16, 8, 0, 4, 4);
  // Tile (0,0) occupies the first 16 elements.
  EXPECT_EQ(L.addressOf(0, 0), 0u);
  EXPECT_EQ(L.addressOf(0, 3), 24u);
  EXPECT_EQ(L.addressOf(1, 0), 32u);
  EXPECT_EQ(L.addressOf(3, 3), 15u * 8);
  // Next tile to the right starts right after.
  EXPECT_EQ(L.addressOf(0, 4), 16u * 8);
}

TEST(TiledLayout, ForRowBufferFillsOneRow) {
  const auto L = TiledLayout::forRowBuffer(2048, 2048, 8, 0, 8192);
  EXPECT_EQ(L.tileRows() * L.tileCols() * 8, 8192u);
}

TEST(TiledLayout, RejectsNonDividingTiles) {
  EXPECT_DEATH(TiledLayout(16, 16, 8, 0, 5, 4), "divide");
}

TEST(BlockDynamicLayout, BlockBasesAreRowBufferAligned) {
  // w=4, h=8 with 8-byte elements: 256-byte blocks.
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  EXPECT_EQ(L.blockBytes(), 256u);
  for (std::uint64_t Br = 0; Br != L.blocksPerCol(); ++Br)
    for (std::uint64_t Bc = 0; Bc != L.blocksPerRow(); ++Bc)
      EXPECT_EQ(L.blockBase(Br, Bc) % L.blockBytes(), 0u);
}

TEST(BlockDynamicLayout, InteriorIsRowMajorWithinBlock) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  const PhysAddr Base = L.blockBase(0, 0);
  EXPECT_EQ(L.addressOf(0, 0), Base);
  EXPECT_EQ(L.addressOf(0, 1), Base + 8);
  EXPECT_EQ(L.addressOf(1, 0), Base + 4 * 8);
  EXPECT_EQ(L.addressOf(7, 3), Base + (7 * 4 + 3) * 8);
}

TEST(BlockDynamicLayout, SkewRotatesBlockRows) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8); // 8 x 4 blocks, skewed.
  const std::uint64_t Bc = L.blocksPerRow();
  // Block (1, 0) is stored at slot 1*Bc + 1 (shifted by one).
  EXPECT_EQ(L.blockBase(1, 0), (Bc + 1) * L.blockBytes());
  // And the last block column of block-row 1 wraps to slot Bc + 0.
  EXPECT_EQ(L.blockBase(1, Bc - 1), Bc * L.blockBytes());
}

TEST(BlockDynamicLayout, SkewSpreadsColumnWalkOverVaults) {
  // Geometry-scale check: with row-buffer-sized blocks under the default
  // vault-interleaved mapping, walking DOWN a block column must visit
  // distinct vaults, not hammer one.
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  const std::uint64_t N = 2048;
  const std::uint64_t W = 8, H = 128; // 8 KiB blocks.
  const BlockDynamicLayout Skewed(N, N, 8, 0, W, H, true);
  const BlockDynamicLayout Plain(N, N, 8, 0, W, H, false);

  std::set<unsigned> SkewedVaults, PlainVaults;
  for (std::uint64_t Br = 0; Br != 16; ++Br) {
    SkewedVaults.insert(Mapper.decode(Skewed.blockBase(Br, 0)).Vault);
    PlainVaults.insert(Mapper.decode(Plain.blockBase(Br, 0)).Vault);
  }
  EXPECT_EQ(SkewedVaults.size(), 16u) << "skew must round-robin all vaults";
  EXPECT_EQ(PlainVaults.size(), 1u) << "unskewed layout hammers one vault";
}

TEST(BlockDynamicLayout, SkewSpreadsRowWritebackOverVaults) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  const BlockDynamicLayout Skewed(2048, 2048, 8, 0, 8, 128, true);
  std::set<unsigned> Vaults;
  for (std::uint64_t Bc = 0; Bc != 16; ++Bc)
    Vaults.insert(Mapper.decode(Skewed.blockBase(3, Bc)).Vault);
  EXPECT_EQ(Vaults.size(), 16u);
}

TEST(BlockDynamicLayout, RejectsNonDividingBlocks) {
  EXPECT_DEATH(BlockDynamicLayout(32, 32, 8, 0, 5, 8), "divide");
}
