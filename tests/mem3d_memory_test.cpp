//===- tests/mem3d_memory_test.cpp - Memory device timing tests -----------===//
//
// Part of the fft3d project.
//
// These tests pin down the timing algebra of the controller against the
// paper's four parameters using hand-computed completion times (defaults:
// activate 14 ns, access 10 ns, beat 1.6 ns, t_diff_row 40 ns,
// t_diff_bank 16 ns, t_in_vault 8 ns).
//
//===----------------------------------------------------------------------===//

#include "mem3d/Energy.h"
#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace fft3d;

namespace {

struct Harness {
  EventQueue Events;
  MemoryConfig Config;
  std::unique_ptr<Memory3D> Mem;

  explicit Harness(SchedulePolicy Sched = SchedulePolicy::FrFcfs,
                   PagePolicy Page = PagePolicy::OpenPage) {
    Config.Sched = Sched;
    Config.Page = Page;
    Mem = std::make_unique<Memory3D>(Events, Config);
  }

  /// Submits a read/write and returns its completion time after drain.
  Picos complete(PhysAddr Addr, std::uint32_t Bytes = 8,
                 bool IsWrite = false) {
    Picos Done = 0;
    MemRequest Req;
    Req.Addr = Addr;
    Req.Bytes = Bytes;
    Req.IsWrite = IsWrite;
    Mem->submit(Req, [&](const MemRequest &, Picos At) { Done = At; });
    Events.run();
    return Done;
  }

  /// Submits many requests at once; returns completion times in order.
  std::vector<Picos> completeAll(const std::vector<MemRequest> &Reqs) {
    std::vector<Picos> Done(Reqs.size(), 0);
    for (std::size_t I = 0; I != Reqs.size(); ++I)
      Mem->submit(Reqs[I], [&Done, I](const MemRequest &, Picos At) {
        Done[I] = At;
      });
    Events.run();
    return Done;
  }
};

MemRequest read8(PhysAddr Addr) {
  MemRequest Req;
  Req.Addr = Addr;
  Req.Bytes = 8;
  return Req;
}

} // namespace

TEST(Memory3D, PeakBandwidthMatchesDesign) {
  Harness H;
  // 16 vaults x 8 B per 1.6 ns beat = 80 GB/s.
  EXPECT_NEAR(H.Mem->peakBandwidthGBps(), 80.0, 1e-9);
}

TEST(Memory3D, SingleReadPaysFullRoundTrip) {
  Harness H;
  // Activate (14) + access (10) + one beat (1.6) = 25.6 ns.
  EXPECT_EQ(H.complete(0), nanosToPicos(25.6));
  const VaultStats Total = H.Mem->stats().total();
  EXPECT_EQ(Total.Reads, 1u);
  EXPECT_EQ(Total.RowActivations, 1u);
  EXPECT_EQ(Total.RowMisses, 1u);
  EXPECT_EQ(Total.BytesRead, 8u);
}

TEST(Memory3D, RowHitSkipsActivation) {
  Harness H;
  // Two back-to-back accesses to the same row, submitted together: the
  // second sees the open row (no ACT); its column command waits for the
  // bank path (15.6 ns), data follows the first burst on the bus and
  // completes one beat later, at 27.2 ns.
  const auto Done = H.completeAll({read8(0), read8(8)});
  EXPECT_EQ(Done[0], nanosToPicos(25.6));
  EXPECT_EQ(Done[1], nanosToPicos(27.2));
  EXPECT_EQ(H.Mem->stats().total().RowHits, 1u);
  EXPECT_EQ(H.Mem->stats().total().RowActivations, 1u);
}

TEST(Memory3D, SameBankRowConflictWaitsTDiffRow) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  // Same vault, same bank, next row under the default mapping.
  const PhysAddr Conflict =
      PhysAddr(G.RowBufferBytes) * G.NumVaults * G.banksPerVault();
  const auto Done = H.completeAll({read8(0), read8(Conflict)});
  EXPECT_EQ(Done[0], nanosToPicos(25.6));
  // Second ACT at t_diff_row = 40 ns; data at 40 + 24 + 1.6 = 65.6 ns.
  EXPECT_EQ(Done[1], nanosToPicos(65.6));
  EXPECT_EQ(H.Mem->stats().total().RowActivations, 2u);
}

TEST(Memory3D, CrossLayerBanksPipelineAtTInVault) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  // Same vault, bank 2 = layer 1 under the default mapping.
  const PhysAddr OtherLayer = PhysAddr(G.RowBufferBytes) * G.NumVaults * 2;
  const auto Done = H.completeAll({read8(0), read8(OtherLayer)});
  // Second ACT allowed at t_in_vault = 8 ns -> 8 + 24 + 1.6 = 33.6 ns.
  EXPECT_EQ(Done[1], nanosToPicos(33.6));
}

TEST(Memory3D, SameLayerBanksWaitTDiffBank) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  // Same vault, bank 1 = same layer 0 under the default mapping.
  const PhysAddr SameLayer = PhysAddr(G.RowBufferBytes) * G.NumVaults;
  const auto Done = H.completeAll({read8(0), read8(SameLayer)});
  // Second ACT at t_diff_bank = 16 ns -> 16 + 24 + 1.6 = 41.6 ns.
  EXPECT_EQ(Done[1], nanosToPicos(41.6));
}

TEST(Memory3D, DifferentVaultsAreIndependent) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  const auto Done = H.completeAll({read8(0), read8(G.RowBufferBytes)});
  EXPECT_EQ(Done[0], nanosToPicos(25.6));
  // Only the 1.6 ns per-vault command slot separates them - and that is
  // per vault, so the second vault issues at its own wake, 1.6 ns later
  // only because enqueue order shares the event time.
  EXPECT_LE(Done[1], nanosToPicos(27.3));
}

TEST(Memory3D, ClosedPagePolicyActivatesEveryAccess) {
  Harness H(SchedulePolicy::Fcfs, PagePolicy::ClosedPage);
  H.complete(0);
  H.complete(8); // Same row, but the page was closed.
  EXPECT_EQ(H.Mem->stats().total().RowActivations, 2u);
  EXPECT_EQ(H.Mem->stats().total().RowHits, 0u);
}

TEST(Memory3D, FrFcfsPrefersRowHits) {
  Harness Fr(SchedulePolicy::FrFcfs);
  const Geometry &G = Fr.Config.Geo;
  const PhysAddr Conflict =
      PhysAddr(G.RowBufferBytes) * G.NumVaults * G.banksPerVault();
  // Open row 0 first; then queue a conflicting row and a row-0 hit.
  Fr.complete(0);
  const auto Done = Fr.completeAll({read8(Conflict), read8(16)});
  // The hit (second submitted) must complete before the conflict.
  EXPECT_LT(Done[1], Done[0]);

  Harness Fc(SchedulePolicy::Fcfs);
  Fc.complete(0);
  const auto DoneFc = Fc.completeAll({read8(Conflict), read8(16)});
  EXPECT_GT(DoneFc[1], DoneFc[0]);
}

TEST(Memory3D, MultiBeatBurstOccupiesBusPerBeat) {
  Harness H;
  // 8 KiB burst = 1024 beats of 1.6 ns: 24 + 1024 * 1.6 = 1662.4 ns.
  const Picos Done = H.complete(0, 8192);
  EXPECT_EQ(Done, nanosToPicos(24.0 + 1024 * 1.6));
  EXPECT_EQ(H.Mem->stats().total().BytesRead, 8192u);
}

TEST(Memory3D, SubmitSpanSplitsAtRowBoundaries) {
  Harness H;
  unsigned Completions = 0;
  const unsigned Submitted = H.Mem->submitSpan(
      /*Addr=*/8192 - 16, /*Bytes=*/32, /*IsWrite=*/false,
      [&](const MemRequest &Req, Picos) {
        ++Completions;
        EXPECT_LE(Req.Bytes, 16u);
      });
  EXPECT_EQ(Submitted, 2u);
  H.Events.run();
  EXPECT_EQ(Completions, 2u);
  EXPECT_EQ(H.Mem->stats().total().BytesRead, 32u);
}

TEST(Memory3D, WritesCountedSeparately) {
  Harness H;
  H.complete(0, 8, /*IsWrite=*/true);
  const VaultStats Total = H.Mem->stats().total();
  EXPECT_EQ(Total.Writes, 1u);
  EXPECT_EQ(Total.Reads, 0u);
  EXPECT_EQ(Total.BytesWritten, 8u);
}

TEST(Memory3D, StatsResetClears) {
  Harness H;
  H.complete(0);
  H.Mem->stats().reset();
  const VaultStats Total = H.Mem->stats().total();
  EXPECT_EQ(Total.totalAccesses(), 0u);
  EXPECT_EQ(H.Mem->stats().latencyNanos().count(), 0u);
}

TEST(Memory3D, SequentialStreamApproachesVaultPeak) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  // 64 full-row reads striped across all 16 vaults.
  std::vector<MemRequest> Reqs;
  for (unsigned I = 0; I != 64; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * G.RowBufferBytes;
    Req.Bytes = static_cast<std::uint32_t>(G.RowBufferBytes);
    Reqs.push_back(Req);
  }
  const auto Done = H.completeAll(Reqs);
  const double GBps = bytesOverPicosToGBps(64 * G.RowBufferBytes,
                                           Done.back());
  // Within 10% of the 80 GB/s peak.
  EXPECT_GT(GBps, 72.0);
  EXPECT_LE(GBps, 80.0 + 1e-9);
}

TEST(Memory3D, SingleVaultStreamBoundedByVaultBandwidth) {
  Harness H;
  const Geometry &G = H.Config.Geo;
  // 32 full-row reads all in vault 0 (stride = one full vault rotation).
  std::vector<MemRequest> Reqs;
  for (unsigned I = 0; I != 32; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * G.RowBufferBytes * G.NumVaults;
    Req.Bytes = static_cast<std::uint32_t>(G.RowBufferBytes);
    Reqs.push_back(Req);
  }
  const auto Done = H.completeAll(Reqs);
  const double GBps = bytesOverPicosToGBps(32 * G.RowBufferBytes,
                                           Done.back());
  EXPECT_GT(GBps, 4.5);
  EXPECT_LT(GBps, 5.1);
}

TEST(Memory3D, TracksMaxQueueDepth) {
  Harness H;
  EXPECT_EQ(H.Mem->maxQueueDepth(), 0u);
  std::vector<MemRequest> Reqs;
  for (unsigned I = 0; I != 12; ++I)
    Reqs.push_back(read8(PhysAddr(I) * H.Config.Geo.RowBufferBytes *
                         H.Config.Geo.NumVaults)); // All to vault 0.
  H.completeAll(Reqs);
  EXPECT_EQ(H.Mem->maxQueueDepth(), 12u);
  EXPECT_EQ(H.Mem->pendingRequests(), 0u);
}

TEST(Memory3D, LatencyHistogramTracksPercentiles) {
  Harness H;
  H.Mem->stats().enableLatencyHistogram(/*BucketNanos=*/5.0,
                                        /*NumBuckets=*/40);
  // A mix: one fast different-vault pair and one slow row conflict.
  const Geometry &G = H.Config.Geo;
  std::vector<MemRequest> Reqs = {
      read8(0), read8(G.RowBufferBytes),
      read8(PhysAddr(G.RowBufferBytes) * G.NumVaults * G.banksPerVault())};
  H.completeAll(Reqs);
  const Histogram *Hist = H.Mem->stats().latencyHistogram();
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->totalCount(), 3u);
  // Median within the fast band, tail covering the 65.6 ns conflict.
  EXPECT_LE(H.Mem->stats().latencyPercentileNanos(0.5), 30.0);
  EXPECT_GE(H.Mem->stats().latencyPercentileNanos(1.0), 65.0);
  // Reset keeps the histogram enabled but empty.
  H.Mem->stats().reset();
  ASSERT_NE(H.Mem->stats().latencyHistogram(), nullptr);
  EXPECT_EQ(H.Mem->stats().latencyHistogram()->totalCount(), 0u);
}

TEST(Memory3D, HistogramDisabledByDefault) {
  Harness H;
  EXPECT_EQ(H.Mem->stats().latencyHistogram(), nullptr);
  EXPECT_DOUBLE_EQ(H.Mem->stats().latencyPercentileNanos(0.99), 0.0);
}

TEST(Memory3D, StatsPrintSummarizes) {
  Harness H;
  H.complete(0, 8192);
  std::ostringstream OS;
  H.Mem->stats().print(OS, H.Events.now());
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("bandwidth"), std::string::npos);
  EXPECT_NE(Out.find("activations"), std::string::npos);
  EXPECT_NE(Out.find("latency"), std::string::npos);
}

TEST(EnergyBreakdownPrint, Summarizes) {
  const EnergyModel Model{EnergyParams()};
  VaultStats S;
  S.RowActivations = 4;
  S.BytesRead = 8192;
  const EnergyBreakdown E = Model.compute(S, nanosToPicos(1000.0));
  std::ostringstream OS;
  E.print(OS, 8192, nanosToPicos(1000.0));
  EXPECT_NE(OS.str().find("pJ/bit"), std::string::npos);
  EXPECT_NE(OS.str().find("mW"), std::string::npos);
}

TEST(VaultStatsMerge, PropagatesEveryField) {
  // Each field gets a distinct prime so any dropped or cross-wired field
  // in merge() produces a wrong sum. A new counter added to VaultStats
  // grows the struct and trips the static_assert below until both this
  // test and merge() learn about it.
  static_assert(sizeof(VaultStats) == 13 * sizeof(std::uint64_t),
                "VaultStats gained a field: update merge(), exportTo() and "
                "this test");
  VaultStats A, B;
  A.Reads = 2;
  A.Writes = 3;
  A.BytesRead = 5;
  A.BytesWritten = 7;
  A.RowActivations = 11;
  A.RowHits = 13;
  A.RowMisses = 17;
  A.RefreshStalls = 19;
  A.BusBusy = 23;
  A.EccRetries = 29;
  A.ThrottleStalls = 31;
  A.OfflineRedirects = 37;
  A.OfflineFailed = 41;
  B.Reads = 43;
  B.Writes = 47;
  B.BytesRead = 53;
  B.BytesWritten = 59;
  B.RowActivations = 61;
  B.RowHits = 67;
  B.RowMisses = 71;
  B.RefreshStalls = 73;
  B.BusBusy = 79;
  B.EccRetries = 83;
  B.ThrottleStalls = 89;
  B.OfflineRedirects = 97;
  B.OfflineFailed = 101;

  A.merge(B);
  EXPECT_EQ(A.Reads, 2u + 43u);
  EXPECT_EQ(A.Writes, 3u + 47u);
  EXPECT_EQ(A.BytesRead, 5u + 53u);
  EXPECT_EQ(A.BytesWritten, 7u + 59u);
  EXPECT_EQ(A.RowActivations, 11u + 61u);
  EXPECT_EQ(A.RowHits, 13u + 67u);
  EXPECT_EQ(A.RowMisses, 17u + 71u);
  EXPECT_EQ(A.RefreshStalls, 19u + 73u);
  EXPECT_EQ(A.BusBusy, 23u + 79u);
  EXPECT_EQ(A.EccRetries, 29u + 83u);
  EXPECT_EQ(A.ThrottleStalls, 31u + 89u);
  EXPECT_EQ(A.OfflineRedirects, 37u + 97u);
  EXPECT_EQ(A.OfflineFailed, 41u + 101u);
}

TEST(MemStatsExport, TotalsAndPerVaultCountersLand) {
  MemStats Stats(2);
  Stats.vault(0).Reads = 2;
  Stats.vault(0).BytesRead = 128;
  Stats.vault(0).EccRetries = 3;
  Stats.vault(1).Reads = 5;
  Stats.vault(1).BytesRead = 320;
  Stats.recordLatency(nanosToPicos(10.0));

  MetricsRegistry R;
  Stats.exportTo(R);
  EXPECT_EQ(R.findCounter("mem.reads")->value(), 7u);
  EXPECT_EQ(R.findCounter("mem.bytes_read")->value(), 448u);
  EXPECT_EQ(R.findCounter("mem.ecc_retries")->value(), 3u);
  EXPECT_EQ(R.findCounter("mem.reads", {{"vault", "0"}})->value(), 2u);
  EXPECT_EQ(R.findCounter("mem.reads", {{"vault", "1"}})->value(), 5u);
  EXPECT_EQ(R.findCounter("mem.ecc_retries", {{"vault", "1"}})->value(), 0u);
  EXPECT_DOUBLE_EQ(R.findGauge("mem.latency_mean_ns")->value(), 10.0);

  // Counters accumulate across export intervals (one call per phase).
  Stats.exportTo(R);
  EXPECT_EQ(R.findCounter("mem.reads")->value(), 14u);
}

namespace {

/// Harness with a custom Timing (the compression knob lives there).
struct TimedHarness {
  EventQueue Events;
  MemoryConfig Config;
  std::unique_ptr<Memory3D> Mem;

  explicit TimedHarness(const Timing &Time) {
    Config.Time = Time;
    Mem = std::make_unique<Memory3D>(Events, Config);
  }

  Picos complete(PhysAddr Addr, std::uint32_t Bytes) {
    Picos Done = 0;
    MemRequest Req;
    Req.Addr = Addr;
    Req.Bytes = Bytes;
    Mem->submit(Req, [&](const MemRequest &, Picos At) { Done = At; });
    Events.run();
    return Done;
  }
};

} // namespace

TEST(TsvCompression, WireBeatsMath) {
  Timing T;
  // Off (ratio 1.0): identity for any beat count.
  for (std::uint64_t Beats : {0ull, 1ull, 7ull, 1024ull})
    EXPECT_EQ(T.wireBeats(Beats), Beats);
  // 2:1 halves exactly; odd counts round up.
  T.TsvCompressRatio = 2.0;
  EXPECT_EQ(T.wireBeats(8), 4u);
  EXPECT_EQ(T.wireBeats(7), 4u);
  EXPECT_EQ(T.wireBeats(1), 1u);
  EXPECT_EQ(T.wireBeats(0), 0u);
  // Fractional ratios ceil: 1024 / 1.5 = 682.67 -> 683.
  T.TsvCompressRatio = 1.5;
  EXPECT_EQ(T.wireBeats(1024), 683u);
}

TEST(TsvCompression, RatioOneIsByteIdenticalToDefault) {
  // The off path must be untouchable: explicitly setting ratio 1.0 and
  // zero codec latency produces bit-identical completion times to the
  // stock configuration on a mixed burst stream.
  Timing Off;
  Off.TsvCompressRatio = 1.0;
  Off.TsvCodecLatency = 0;
  TimedHarness A{Timing()}, B{Off};
  for (std::uint32_t Bytes : {8u, 64u, 256u, 8192u}) {
    const Picos WantA = A.complete(PhysAddr(Bytes) * 17, Bytes);
    const Picos WantB = B.complete(PhysAddr(Bytes) * 17, Bytes);
    EXPECT_EQ(WantA, WantB) << "bytes " << Bytes;
  }
}

TEST(TsvCompression, RatioShortensBurstsByHandComputedBeats) {
  // 64 B = 8 raw beats. Stock: 14 + 10 + 8 * 1.6 = 36.8 ns.
  TimedHarness Stock{Timing()};
  EXPECT_EQ(Stock.complete(0, 64), nanosToPicos(36.8));
  // 2:1 codec: 4 wire beats -> 14 + 10 + 4 * 1.6 = 30.4 ns.
  Timing Comp;
  Comp.TsvCompressRatio = 2.0;
  TimedHarness Fast{Comp};
  EXPECT_EQ(Fast.complete(0, 64), nanosToPicos(30.4));
  // Codec pipeline latency lands once, at the end of the transfer.
  Comp.TsvCodecLatency = nanosToPicos(2.0);
  TimedHarness Latent{Comp};
  EXPECT_EQ(Latent.complete(0, 64), nanosToPicos(32.4));
}

TEST(TsvCompression, ValidateRejectsExpandingRatio) {
  Timing T;
  T.TsvCompressRatio = 0.5;
  EXPECT_FALSE(T.isValid());
  EXPECT_DEATH(T.validate(), "compression ratio");
}
