//===- tests/mem3d_refresh_test.cpp - Refresh-window modelling -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

Picos completeOne(const MemoryConfig &Config, PhysAddr Addr) {
  EventQueue Events;
  Memory3D Mem(Events, Config);
  Picos Done = 0;
  MemRequest Req;
  Req.Addr = Addr;
  Req.Bytes = 8;
  Mem.submit(Req, [&Done](const MemRequest &, Picos At) { Done = At; });
  Events.run();
  return Done;
}

} // namespace

TEST(Refresh, DisabledByDefault) {
  const Timing T;
  EXPECT_EQ(T.RefreshInterval, 0u);
  EXPECT_TRUE(T.isValid());
}

TEST(Refresh, InvalidWhenDurationSwallowsInterval) {
  Timing T;
  T.RefreshInterval = nanosToPicos(100.0);
  T.RefreshDuration = nanosToPicos(100.0);
  EXPECT_FALSE(T.isValid());
  T.RefreshDuration = nanosToPicos(50.0);
  EXPECT_TRUE(T.isValid());
}

TEST(Refresh, FirstCommandWaitsOutTheWindow) {
  MemoryConfig Config;
  Config.Time.RefreshInterval = nanosToPicos(7800.0);
  Config.Time.RefreshDuration = nanosToPicos(160.0);
  // Time zero falls inside the first refresh window, so the ACT slides
  // to 160 ns and the read completes at 160 + 25.6 ns.
  EXPECT_EQ(completeOne(Config, 0), nanosToPicos(185.6));
  // Without refresh: 25.6 ns.
  MemoryConfig Plain;
  EXPECT_EQ(completeOne(Plain, 0), nanosToPicos(25.6));
}

TEST(Refresh, CountsStalls) {
  MemoryConfig Config;
  Config.Time.RefreshInterval = nanosToPicos(1000.0);
  Config.Time.RefreshDuration = nanosToPicos(160.0);
  EventQueue Events;
  Memory3D Mem(Events, Config);
  MemRequest Req;
  Req.Addr = 0;
  Req.Bytes = 8;
  Mem.submit(Req, {});
  Events.run();
  EXPECT_EQ(Mem.stats().total().RefreshStalls, 1u);
}

TEST(Refresh, SteadyStateTaxIsSmall) {
  // Stream row reads with and without refresh; the bandwidth tax must be
  // roughly RefreshDuration / RefreshInterval (~2%), not catastrophic.
  auto stream = [](bool WithRefresh) {
    MemoryConfig Config;
    if (WithRefresh) {
      Config.Time.RefreshInterval = nanosToPicos(7800.0);
      Config.Time.RefreshDuration = nanosToPicos(160.0);
    }
    EventQueue Events;
    Memory3D Mem(Events, Config);
    Picos Last = 0;
    for (unsigned I = 0; I != 512; ++I) {
      MemRequest Req;
      Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
      Req.Bytes = static_cast<std::uint32_t>(Config.Geo.RowBufferBytes);
      Mem.submit(Req, [&Last](const MemRequest &, Picos At) { Last = At; });
    }
    Events.run();
    return bytesOverPicosToGBps(512ull * Config.Geo.RowBufferBytes, Last);
  };
  const double Without = stream(false);
  const double With = stream(true);
  EXPECT_LT(With, Without);
  EXPECT_GT(With, 0.90 * Without);
}
