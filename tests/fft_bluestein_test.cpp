//===- tests/fft_bluestein_test.cpp - Arbitrary-length DFT tests ----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fft/Bluestein.h"
#include "fft/Fft1d.h"
#include "fft/ReferenceDft.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using namespace fft3d;

namespace {

std::vector<CplxD> randomSignal(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<CplxD> Signal(N);
  for (auto &V : Signal)
    V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  return Signal;
}

} // namespace

class BluesteinSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BluesteinSizes, ForwardMatchesReference) {
  const std::uint64_t N = GetParam();
  const BluesteinFft Plan(N);
  std::vector<CplxD> Data = randomSignal(N, N * 3 + 1);
  const std::vector<CplxD> Ref = referenceDft(Data);
  Plan.forward(Data);
  EXPECT_LT(maxAbsDiff(Data, Ref), 1e-8 * static_cast<double>(N));
}

TEST_P(BluesteinSizes, RoundTripRestores) {
  const std::uint64_t N = GetParam();
  const BluesteinFft Plan(N);
  const std::vector<CplxD> Original = randomSignal(N, N + 7);
  std::vector<CplxD> Data = Original;
  Plan.forward(Data);
  Plan.inverse(Data);
  EXPECT_LT(maxAbsDiff(Data, Original), 1e-9 * static_cast<double>(N));
}

// Primes, composites with odd factors, and a power of two for sanity.
INSTANTIATE_TEST_SUITE_P(AnyLength, BluesteinSizes,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 7, 12,
                                                          17, 30, 97, 100,
                                                          128, 210, 509));

TEST(BluesteinFft, MatchesPowerOfTwoEngine) {
  const std::uint64_t N = 256;
  const BluesteinFft Chirp(N);
  const Fft1d Direct(N);
  std::vector<CplxD> A = randomSignal(N, 2), B = A;
  Chirp.forward(A);
  Direct.forward(B);
  EXPECT_LT(maxAbsDiff(A, B), 1e-9);
}

TEST(BluesteinFft, ConvolutionSizeIsNextPow2Of2Nm1) {
  EXPECT_EQ(BluesteinFft(100).convolutionSize(), 256u);
  EXPECT_EQ(BluesteinFft(3).convolutionSize(), 8u);
  EXPECT_EQ(BluesteinFft(1).convolutionSize(), 2u);
}

TEST(BluesteinFft, LargePrimeSpotTone) {
  // A pure tone in a prime-length frame must land in one bin.
  const std::uint64_t N = 251;
  const BluesteinFft Plan(N);
  std::vector<CplxD> Data(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    const double Angle = 2.0 * std::numbers::pi * 13.0 *
                         static_cast<double>(I) / static_cast<double>(N);
    Data[I] = CplxD(std::cos(Angle), std::sin(Angle));
  }
  Plan.forward(Data);
  for (std::uint64_t K = 0; K != N; ++K) {
    const double Expected = K == 13 ? static_cast<double>(N) : 0.0;
    EXPECT_NEAR(std::abs(Data[K]), Expected, 1e-7) << K;
  }
}
