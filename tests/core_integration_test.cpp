//===- tests/core_integration_test.cpp - Cross-module integration ---------===//
//
// Part of the fft3d project.
//
// End-to-end invariants that span layout + permute + mem3d + core: the
// optimized phase-2 request stream really round-robins the vaults, the
// baseline stream really thrashes rows, and the functional pipeline is
// numerically correct in both kernel stream modes.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "core/PhaseEngine.h"
#include "fft/Fft2d.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace fft3d;

namespace {

Matrix randomMatrix(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(N, N);
  for (std::uint64_t I = 0; I != N; ++I)
    for (std::uint64_t J = 0; J != N; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                         static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

/// Runs a read-only phase over \p Trace and returns the vault sequence
/// observed at the memory's front door.
std::vector<unsigned> observeVaults(TraceSource &Trace, unsigned Window) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  std::vector<unsigned> Vaults;
  Mem.setRequestObserver(
      [&Vaults](const MemRequest &, const DecodedAddr &Where) {
        Vaults.push_back(Where.Vault);
      });
  PhaseEngine Engine(Mem, Events, 8ull << 20, 4000);
  Engine.run({&Trace, false, Window, 0.0, 0}, {});
  return Vaults;
}

} // namespace

TEST(Integration, OptimizedColumnStreamRoundRobinsVaults) {
  const std::uint64_t N = 2048;
  const LayoutPlanner Planner(Geometry(), Timing(), 8);
  const auto Layout = Planner.createLayout(N, 16);
  BlockTrace Reads(*Layout, BlockOrder::ColMajorBlocks);
  const std::vector<unsigned> Vaults = observeVaults(Reads, 64);
  ASSERT_GT(Vaults.size(), 64u);

  // Consecutive block fetches must hit different vaults...
  unsigned SameVault = 0;
  std::set<unsigned> Distinct;
  for (std::size_t I = 0; I != Vaults.size(); ++I) {
    Distinct.insert(Vaults[I]);
    if (I && Vaults[I] == Vaults[I - 1])
      ++SameVault;
  }
  EXPECT_EQ(SameVault, 0u);
  // ...and cover all 16 of them.
  EXPECT_EQ(Distinct.size(), 16u);
  // Every window of 16 fetches covers every vault exactly once.
  for (std::size_t Base = 0; Base + 16 <= Vaults.size(); Base += 16) {
    std::set<unsigned> Window(Vaults.begin() + Base,
                              Vaults.begin() + Base + 16);
    EXPECT_EQ(Window.size(), 16u) << "window at " << Base;
  }
}

TEST(Integration, UnskewedColumnStreamHammersOneVault) {
  const std::uint64_t N = 2048;
  const BlockDynamicLayout Layout(N, N, 8, 0, 8, 128, /*Skew=*/false);
  BlockTrace Reads(Layout, BlockOrder::ColMajorBlocks);
  const std::vector<unsigned> Vaults = observeVaults(Reads, 64);
  // The first block column (16 blocks) all land in one vault.
  for (std::size_t I = 1; I != 16; ++I)
    EXPECT_EQ(Vaults[I], Vaults[0]);
}

TEST(Integration, BaselineColumnStreamMissesRowsEverywhere) {
  const std::uint64_t N = 2048;
  const RowMajorLayout Layout(N, N, 8, 0);
  ColScanTrace Reads(Layout, 8192);

  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  PhaseEngine Engine(Mem, Events, 1ull << 20, 2000);
  const PhaseResult Res = Engine.run({&Reads, false, 1, 0.0, 0}, {});
  // A strided walk with stride 16 KiB: essentially zero row hits.
  EXPECT_EQ(Res.RowHitRate, 0.0);
  EXPECT_EQ(Res.RowActivations, Res.Ops);
}

TEST(Integration, OptimizedColumnStreamOneActivationPerRowBuffer) {
  const std::uint64_t N = 2048;
  const LayoutPlanner Planner(Geometry(), Timing(), 8);
  const auto Layout = Planner.createLayout(N, 16);
  BlockTrace Reads(*Layout, BlockOrder::ColMajorBlocks);

  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  PhaseEngine Engine(Mem, Events, 32ull << 20, 4000);
  const PhaseResult Res = Engine.run({&Reads, false, 64, 0.0, 0}, {});
  // Each 8 KiB op costs exactly one activation.
  EXPECT_EQ(Res.RowActivations, Res.Ops);
  EXPECT_EQ(Res.BytesRead, Res.Ops * Config.Geo.RowBufferBytes);
}

TEST(Integration, ColumnSerialModeComputesTheSameTransform) {
  const std::uint64_t N = 128;
  const SystemConfig Config = SystemConfig::forProblemSize(N);
  const Matrix In = randomMatrix(N, 77);
  Matrix Direct = In;
  Fft2d(N, N).forward(Direct);
  const Matrix LaneParallel = Fft2dProcessor::computeViaDynamicLayout(
      In, Config, StreamMode::LaneParallel);
  const Matrix ColumnSerial = Fft2dProcessor::computeViaDynamicLayout(
      In, Config, StreamMode::ColumnSerial);
  EXPECT_LT(LaneParallel.maxAbsDiff(Direct), 1e-2);
  EXPECT_LT(ColumnSerial.maxAbsDiff(Direct), 1e-2);
  EXPECT_DOUBLE_EQ(ColumnSerial.maxAbsDiff(LaneParallel), 0.0);
}

TEST(Integration, ObserverSeesEveryRequest) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  unsigned Seen = 0;
  Mem.setRequestObserver(
      [&Seen](const MemRequest &, const DecodedAddr &) { ++Seen; });
  for (unsigned I = 0; I != 10; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
    Req.Bytes = 8;
    Mem.submit(Req, {});
  }
  Events.run();
  EXPECT_EQ(Seen, 10u);
  Mem.setRequestObserver(nullptr); // Clearing must be safe.
  MemRequest Req;
  Req.Bytes = 8;
  Mem.submit(Req, {});
  Events.run();
  EXPECT_EQ(Seen, 10u);
}
