//===- tests/obs_metrics_test.cpp - Metrics registry unit tests -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "serve/SloTracker.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace fft3d;

TEST(MetricLabels, SuffixIsCanonical) {
  EXPECT_EQ(MetricLabels{}.suffix(), "");

  MetricLabels Unsorted;
  Unsorted.add("vault", "3");
  Unsorted.add("arch", "optimized");
  EXPECT_EQ(Unsorted.suffix(), "{arch=optimized,vault=3}");

  // Same set, different insertion order: same canonical suffix, so a
  // registry lookup with either spelling hits the same metric.
  const MetricLabels A{{"a", "1"}, {"b", "2"}};
  MetricLabels B;
  B.add("b", "2");
  B.add("a", "1");
  EXPECT_EQ(A.suffix(), B.suffix());
}

TEST(MetricsRegistry, RegistrationAndLookup) {
  MetricsRegistry R;
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.findCounter("mem.reads"), nullptr);

  MetricCounter &C = R.counter("mem.reads");
  C.add(7);
  EXPECT_EQ(R.size(), 1u);
  // Second call finds the same counter, not a fresh one.
  R.counter("mem.reads").add(2);
  EXPECT_EQ(C.value(), 9u);
  EXPECT_EQ(R.findCounter("mem.reads"), &C);

  // A labeled metric of the same base name is a distinct series.
  MetricCounter &V3 = R.counter("mem.reads", {{"vault", "3"}});
  V3.add(1);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_EQ(C.value(), 9u);
  EXPECT_EQ(V3.value(), 1u);
  EXPECT_EQ(R.findCounter("mem.reads", {{"vault", "3"}}), &V3);
  EXPECT_EQ(R.findCounter("mem.reads", {{"vault", "4"}}), nullptr);

  R.gauge("phase.throughput_gbps").set(30.25);
  EXPECT_DOUBLE_EQ(R.findGauge("phase.throughput_gbps")->value(), 30.25);
  EXPECT_EQ(R.findGauge("nope"), nullptr);

  MetricHistogram &H = R.histogram("serve.latency_ms", 1.0, 64);
  H.observe(5.5);
  EXPECT_EQ(R.findHistogram("serve.latency_ms"), &H);
  EXPECT_EQ(R.findHistogram("serve.latency_ms")->count(), 1u);
  EXPECT_EQ(R.size(), 4u);
}

TEST(MetricHistogram, BucketsOverflowAndMoments) {
  MetricHistogram H(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40)
  H.observe(0.0);
  H.observe(9.99);
  H.observe(10.0);
  H.observe(35.0);
  H.observe(1e6); // overflow
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 0u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.overflowCount(), 1u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0 + 9.99 + 10.0 + 35.0 + 1e6);
  EXPECT_DOUBLE_EQ(H.mean(), H.sum() / 5.0);
}

TEST(MetricHistogram, PercentileMatchesSloTrackerNearestRank) {
  // Integer-valued samples with bucket width 1: every sample lands on
  // its own bucket's lower edge, so the histogram's bucket-resolved
  // nearest-rank percentile must equal SloTracker's exact-sample
  // nearest-rank percentile, not just approximate it.
  std::vector<double> Samples;
  MetricHistogram H(1.0, 256);
  std::uint64_t X = 12345;
  for (int I = 0; I != 500; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    const double V = static_cast<double>((X >> 33) % 200);
    Samples.push_back(V);
    H.observe(V);
  }
  for (double F : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(H.percentile(F), SloTracker::percentile(Samples, F))
        << "fraction " << F;

  EXPECT_DOUBLE_EQ(MetricHistogram(1.0, 8).percentile(0.5), 0.0);
}

TEST(MetricsSnapshot, JsonRoundTripIsExact) {
  MetricsRegistry R;
  R.counter("mem.reads").add(12345);
  R.counter("mem.reads", {{"vault", "3"}}).add(7);
  R.gauge("phase.row_hit_rate").set(0.9921875);
  // A value that needs all 17 significant digits to survive.
  R.gauge("gauge.awkward").set(0.1 + 0.2);
  MetricHistogram &H = R.histogram("serve.latency_ms", 0.5, 16);
  H.observe(0.25);
  H.observe(7.75);
  H.observe(1e9); // overflow bucket

  const MetricsSnapshot Before = R.snapshot();
  std::ostringstream OS;
  Before.writeJson(OS);

  std::istringstream In(OS.str());
  MetricsSnapshot After;
  std::string Error;
  ASSERT_TRUE(MetricsSnapshot::parseJson(In, After, &Error)) << Error;
  EXPECT_TRUE(Before == After);

  // And the re-serialization is byte-identical - what the golden harness
  // relies on.
  std::ostringstream OS2;
  After.writeJson(OS2);
  EXPECT_EQ(OS.str(), OS2.str());
}

TEST(MetricsSnapshot, ParseRejectsMalformedInput) {
  MetricsSnapshot Out;
  std::string Error;
  std::istringstream NotJson("hello");
  EXPECT_FALSE(MetricsSnapshot::parseJson(NotJson, Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(MetricsRegistry, MergeSemantics) {
  MetricsRegistry A, B;
  A.counter("c").add(10);
  B.counter("c").add(32);
  B.counter("only_b").add(1);
  A.gauge("g").set(3.0);
  B.gauge("g").set(7.0);
  A.histogram("h", 1.0, 4).observe(1.0);
  B.histogram("h", 1.0, 4).observe(1.0);
  B.histogram("h", 1.0, 4).observe(3.0);

  A.mergeFrom(B);
  EXPECT_EQ(A.findCounter("c")->value(), 42u);      // counters add
  EXPECT_EQ(A.findCounter("only_b")->value(), 1u);  // absent ones appear
  EXPECT_DOUBLE_EQ(A.findGauge("g")->value(), 7.0); // gauges take max
  const MetricHistogram *H = A.findHistogram("h");
  ASSERT_NE(H, nullptr); // histograms add bucketwise
  EXPECT_EQ(H->bucketCount(1), 2u);
  EXPECT_EQ(H->bucketCount(3), 1u);
  EXPECT_EQ(H->count(), 3u);
}

TEST(MetricsRegistry, ShardedMergeIsThreadCountInvariant) {
  // The sweep pattern: each shard owns a registry, the caller merges them
  // in shard order afterwards. The merged snapshot must be byte-identical
  // for every thread count.
  const std::size_t NumShards = 8;
  auto RunSharded = [NumShards](unsigned Threads) {
    std::vector<std::unique_ptr<MetricsRegistry>> Shards;
    for (std::size_t I = 0; I != NumShards; ++I)
      Shards.push_back(std::make_unique<MetricsRegistry>());
    ThreadPool Pool(Threads);
    Pool.parallelFor(NumShards, [&](std::size_t I) {
      MetricsRegistry &R = *Shards[I];
      R.counter("sweep.cells").add(1);
      R.counter("sweep.ops", {{"shard", std::to_string(I)}}).add(100 + I);
      R.gauge("sweep.best_gbps").set(10.0 + static_cast<double>(I));
      MetricHistogram &H = R.histogram("sweep.latency_ms", 1.0, 64);
      for (std::uint64_t S = 0; S != 10; ++S)
        H.observe(static_cast<double>((I * 7 + S) % 64));
    });
    MetricsRegistry Merged;
    for (const auto &Shard : Shards)
      Merged.mergeFrom(*Shard);
    std::ostringstream OS;
    Merged.writeJson(OS);
    return OS.str();
  };

  const std::string Reference = RunSharded(1);
  for (unsigned Threads : {2u, 4u, 8u})
    EXPECT_EQ(RunSharded(Threads), Reference) << Threads << " threads";
}

TEST(SloTrackerExport, HistogramPercentilesAgreeWithSummary) {
  // Feed one tracker, export it, and check the serve.latency_ms
  // histogram reproduces the exact-sample percentiles to bucket
  // granularity (integer-ms latencies make the match exact).
  SloTracker Tracker;
  for (std::uint64_t I = 0; I != 100; ++I) {
    JobOutcome O;
    O.Job.Id = I;
    O.Job.Arrival = 0;
    O.DispatchTime = 0;
    O.CompleteTime = (1 + I % 50) * PicosPerMilli; // 1..50 ms, integer
    O.Vaults = 1;
    Tracker.recordCompletion(O);
  }
  const SloSummary S = Tracker.summarize(PicosPerSecond);

  MetricsRegistry R;
  Tracker.exportTo(R, "fcfs", PicosPerSecond);
  const MetricHistogram *H =
      R.findHistogram("serve.latency_ms", {{"policy", "fcfs"}});
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->count(), 100u);
  EXPECT_DOUBLE_EQ(H->percentile(0.50), S.P50LatencyMs);
  EXPECT_DOUBLE_EQ(H->percentile(0.99), S.P99LatencyMs);
  EXPECT_EQ(R.findCounter("serve.completed", {{"policy", "fcfs"}})->value(),
            100u);
}
