//===- tests/core_model_test.cpp - Analytical model vs paper numbers ------===//
//
// Part of the fft3d project.
//
// These tests lock the closed-form model to the paper's Tables 1 and 2:
// the optimized column-phase throughput/utilization cells are reproduced
// exactly; the improvement percentages to within a point.
//
//===----------------------------------------------------------------------===//

#include "core/AnalyticalModel.h"

#include <gtest/gtest.h>

using namespace fft3d;

TEST(AnalyticalModel, PeakBandwidthIs80GBps) {
  const AnalyticalModel M(SystemConfig::forProblemSize(2048));
  EXPECT_NEAR(M.peakGBps(), 80.0, 1e-9);
}

TEST(AnalyticalModel, Table1OptimizedThroughputCells) {
  // Paper Table 1, optimized: 32 / 25.6 / 23.04 GB/s.
  EXPECT_NEAR(AnalyticalModel(SystemConfig::forProblemSize(2048))
                  .optimizedColumnGBps(),
              32.0, 1e-9);
  EXPECT_NEAR(AnalyticalModel(SystemConfig::forProblemSize(4096))
                  .optimizedColumnGBps(),
              25.6, 1e-9);
  EXPECT_NEAR(AnalyticalModel(SystemConfig::forProblemSize(8192))
                  .optimizedColumnGBps(),
              23.04, 1e-9);
}

TEST(AnalyticalModel, Table1OptimizedUtilizationCells) {
  // 40.0%, 32.0%, 28.8% of peak.
  for (const auto &[N, Util] :
       std::vector<std::pair<std::uint64_t, double>>{
           {2048, 0.400}, {4096, 0.320}, {8192, 0.288}}) {
    const AnalyticalModel M(SystemConfig::forProblemSize(N));
    EXPECT_NEAR(M.optimizedColumnGBps() / M.peakGBps(), Util, 1e-9) << N;
  }
}

TEST(AnalyticalModel, BaselineColumnIsAboutOnePercentOfPeak) {
  // Paper Table 1 baseline: 1.0% / 0.5% / 0.5%. Our blocking model is
  // flat in N; assert it sits in the sub-1.5% band the paper describes.
  for (std::uint64_t N : {2048ull, 4096ull, 8192ull}) {
    const AnalyticalModel M(SystemConfig::forProblemSize(N));
    const double Util = M.baselineColumnGBps() / M.peakGBps();
    EXPECT_GT(Util, 0.003) << N;
    EXPECT_LT(Util, 0.015) << N;
  }
}

TEST(AnalyticalModel, BaselineColumnFortyTimesWorseThanOptimized) {
  // The headline: "up to 40x peak memory bandwidth utilization for
  // column-wise FFT".
  const AnalyticalModel M(SystemConfig::forProblemSize(2048));
  const double Gain = M.optimizedColumnGBps() / M.baselineColumnGBps();
  EXPECT_GT(Gain, 30.0);
  EXPECT_LT(Gain, 80.0);
}

TEST(AnalyticalModel, Table2ImprovementPercentages) {
  // Paper Table 2: 95.1 / 97.0 / 96.6 % throughput improvement. Our
  // baseline row phase differs slightly (we derive it instead of fitting
  // it), so allow a band of +/- 2 points.
  for (const auto &[N, Expected] :
       std::vector<std::pair<std::uint64_t, double>>{
           {2048, 0.951}, {4096, 0.970}, {8192, 0.966}}) {
    const AppEstimate E =
        AnalyticalModel(SystemConfig::forProblemSize(N)).estimateApp();
    EXPECT_NEAR(E.ImprovementFraction, Expected, 0.02) << N;
  }
}

TEST(AnalyticalModel, Table2OptimizedAppThroughput) {
  // The optimized app throughput equals the column-phase value (both
  // phases run at the kernel bound): 32 / 25.6 / 23.04 GB/s.
  for (const auto &[N, Expected] :
       std::vector<std::pair<std::uint64_t, double>>{
           {2048, 32.0}, {4096, 25.6}, {8192, 23.04}}) {
    const AppEstimate E =
        AnalyticalModel(SystemConfig::forProblemSize(N)).estimateApp();
    EXPECT_NEAR(E.OptimizedAppGBps, Expected, 1e-6) << N;
  }
}

TEST(AnalyticalModel, LatencyImprovesSubstantially) {
  // Paper: "latency is reduced by up to 3x".
  for (std::uint64_t N : {2048ull, 4096ull, 8192ull}) {
    const AppEstimate E =
        AnalyticalModel(SystemConfig::forProblemSize(N)).estimateApp();
    const double Ratio = static_cast<double>(E.BaselineLatency) /
                         static_cast<double>(E.OptimizedLatency);
    EXPECT_GT(Ratio, 3.0) << N;
  }
}

TEST(AnalyticalModel, HarmonicCombine) {
  EXPECT_NEAR(AnalyticalModel::harmonicCombine(32.0, 0.8), 1.5609756, 1e-6);
  EXPECT_DOUBLE_EQ(AnalyticalModel::harmonicCombine(10.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(AnalyticalModel::harmonicCombine(0.0, 10.0), 0.0);
}

TEST(AnalyticalModel, KernelStreamRates) {
  const SystemConfig C = SystemConfig::forProblemSize(2048);
  const AnalyticalModel M(C);
  EXPECT_NEAR(M.kernelStreamGBps(C.Optimized), 16.0, 1e-9);
  EXPECT_NEAR(M.kernelStreamGBps(C.Baseline), 2.0, 1e-9);
}

TEST(AnalyticalModel, BlockStreamingNearPeak) {
  const AnalyticalModel M(SystemConfig::forProblemSize(2048));
  // 8 KiB transfers dwarf the 40 ns activation spacing.
  EXPECT_GT(M.blockStreamMemoryLimitGBps(), 0.95 * M.peakGBps());
}
