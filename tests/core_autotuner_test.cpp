//===- tests/core_autotuner_test.cpp - AutoTuner + LayoutEvaluator --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/AutoTuner.h"
#include "layout/LinearLayouts.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

SystemConfig quickConfig(std::uint64_t N = 1024) {
  SystemConfig Config = SystemConfig::forProblemSize(N);
  Config.MaxSimBytesPerDirection = 1ull << 20;
  Config.MaxSimOpsPerDirection = 5000;
  return Config;
}

} // namespace

TEST(LayoutEvaluator, MatchesProcessorStyleResults) {
  const SystemConfig Config = quickConfig(2048);
  const LayoutEvaluator Evaluator(Config);
  const std::uint64_t Stride = 2048ull * 2048 * 8;
  const RowMajorLayout Mid(2048, 2048, 8, Stride);
  const RowMajorLayout Out(2048, 2048, 8, 2 * Stride);
  const LayoutMetrics M = Evaluator.evaluate(Config.Baseline, Mid, Out);
  // The row-major baseline: fast rows, crawling columns.
  EXPECT_GT(M.RowPhase.ThroughputGBps, 3.0);
  EXPECT_LT(M.ColPhase.ThroughputGBps, 1.0);
  EXPECT_LT(M.AppGBps, 2.0);
  EXPECT_GT(M.PicojoulesPerBit, 0.0);
  EXPECT_GT(M.ActivationsPerKiB, 1.0);
}

TEST(LayoutEvaluator, ReportsEnergyWhenAsked) {
  const SystemConfig Config = quickConfig();
  const LayoutEvaluator Evaluator(Config);
  const std::uint64_t Stride = 1024ull * 1024 * 8;
  const RowMajorLayout Mid(1024, 1024, 8, Stride);
  EnergyBreakdown E;
  const PhaseResult P = Evaluator.runRowPhase(Config.Optimized, Mid, &E);
  EXPECT_GT(P.ThroughputGBps, 0.0);
  EXPECT_GT(E.totalPJ(), 0.0);
  EXPECT_GT(E.ActivatePJ, 0.0);
}

TEST(AutoTuner, BlockLayoutWinsOnThroughput) {
  // N = 2048: a matrix row spans two DRAM rows, so the row-major column
  // walk shows the paper's pathology (at N = 1024 one matrix row is
  // exactly one DRAM row and bank pipelining partly hides it).
  const AutoTuner Tuner(quickConfig(2048));
  const TuneResult Result = Tuner.tune(TuneObjective::Throughput);
  ASSERT_FALSE(Result.Candidates.empty());
  EXPECT_EQ(Result.best().Kind, LayoutKind::BlockDynamic);
  // The winner must beat the row-major baseline by a wide margin.
  double RowMajorGBps = 0.0;
  for (const TuneCandidate &C : Result.Candidates)
    if (C.Kind == LayoutKind::RowMajor)
      RowMajorGBps = C.Metrics.AppGBps;
  EXPECT_GT(Result.best().Metrics.AppGBps, 2.0 * RowMajorGBps);
}

TEST(AutoTuner, ContainsEq1PickAndItIsCompetitive) {
  const AutoTuner Tuner(quickConfig());
  const TuneResult Result = Tuner.tune(TuneObjective::Throughput);
  bool Found = false;
  for (const TuneCandidate &C : Result.Candidates)
    Found = Found || C.Eq1Pick;
  EXPECT_TRUE(Found);
  EXPECT_TRUE(
      Result.eq1WithinFractionOfBest(0.10, TuneObjective::Throughput));
}

TEST(AutoTuner, CandidatesAreSortedByObjective) {
  const AutoTuner Tuner(quickConfig());
  for (const TuneObjective Objective :
       {TuneObjective::Throughput, TuneObjective::Energy,
        TuneObjective::ThroughputPerEnergy}) {
    const TuneResult Result = Tuner.tune(Objective);
    for (std::size_t I = 1; I < Result.Candidates.size(); ++I)
      EXPECT_GE(Result.Candidates[I - 1].score(Objective),
                Result.Candidates[I].score(Objective));
  }
}

TEST(AutoTuner, OptionsRestrictTheSpace) {
  TuneOptions Options;
  Options.IncludeLinear = false;
  Options.IncludeTiled = false;
  Options.SweepSkew = false;
  const AutoTuner Tuner(quickConfig(), Options);
  const TuneResult Result = Tuner.tune();
  for (const TuneCandidate &C : Result.Candidates) {
    EXPECT_EQ(C.Kind, LayoutKind::BlockDynamic);
    EXPECT_TRUE(C.Skew);
  }
}

TEST(AutoTuner, EnergyObjectivePrefersFewActivationsPerByte) {
  const AutoTuner Tuner(quickConfig());
  const TuneResult Result = Tuner.tune(TuneObjective::Energy);
  // The energy winner must not be the row-major layout (whose strided
  // phase pays an activation per element).
  EXPECT_NE(Result.best().Kind, LayoutKind::RowMajor);
  EXPECT_LT(Result.best().Metrics.PicojoulesPerBit, 5.0);
}

TEST(AutoTuner, ObjectiveNamesStable) {
  EXPECT_STREQ(tuneObjectiveName(TuneObjective::Throughput), "throughput");
  EXPECT_STREQ(tuneObjectiveName(TuneObjective::Energy), "energy");
  EXPECT_STREQ(tuneObjectiveName(TuneObjective::ThroughputPerEnergy),
               "throughput-per-energy");
}

TEST(LayoutEvaluator, WriteCombiningRescuesTallBlocks) {
  // At h = 1024 (w = 1) chunked writes collapse phase 1; write combining
  // restores the kernel-bound rate.
  SystemConfig Config = quickConfig(2048);
  const BlockDynamicLayout Mid(2048, 2048, 8, 2048ull * 2048 * 8, 1, 1024);
  const LayoutEvaluator Evaluator(Config);
  const PhaseResult Chunked =
      Evaluator.runRowPhase(Config.Optimized, Mid);
  ArchParams Combining = Config.Optimized;
  Combining.WriteCombine = true;
  const PhaseResult Combined = Evaluator.runRowPhase(Combining, Mid);
  EXPECT_GT(Combined.ThroughputGBps, Chunked.ThroughputGBps + 5.0);
  EXPECT_NEAR(Combined.ThroughputGBps, 32.0, 2.0);
}
