//===- tests/cluster_test.cpp - Multi-stack scale-out tests ---------------===//
//
// Part of the fft3d project.
//
// The cluster subsystem's contracts: the two-level planner degenerates
// byte-identically to the single-stack Eq. 1 plan at S = 1, the
// distributed 2D/3D functional paths are bit-identical to the host
// references for every stack count and placement, the interconnect's
// FCFS reservation matches hand-computed timings (including incast
// queueing, ring routing, and the element-granule header tax), and the
// timed run shows the two-level placement beating the round-robin
// comparator.
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"
#include "cluster/ClusterLayoutPlanner.h"
#include "cluster/Interconnect.h"
#include "fft/Fft2d.h"
#include "obs/Metrics.h"
#include "sim/EventQueue.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

void expectSamePlan(const BlockPlan &A, const BlockPlan &B) {
  EXPECT_EQ(A.RawH, B.RawH);
  EXPECT_EQ(A.H, B.H);
  EXPECT_EQ(A.W, B.W);
  EXPECT_EQ(A.Regime, B.Regime);
  EXPECT_EQ(A.VaultsParallel, B.VaultsParallel);
  EXPECT_EQ(A.ColumnStreams, B.ColumnStreams);
  EXPECT_EQ(A.RowBufferElems, B.RowBufferElems);
}

Matrix randomMatrix(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  Matrix M(N, N);
  for (auto &V : M.storage())
    V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
              static_cast<float>(R.nextDouble(-1, 1)));
  return M;
}

std::vector<CplxF> randomVolume(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<CplxF> Vol(N * N * N);
  for (auto &V : Vol)
    V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
              static_cast<float>(R.nextDouble(-1, 1)));
  return Vol;
}

/// Bit-exact comparison: the distributed path must run the same
/// transforms on the same values as the reference, so even the last ulp
/// agrees.
void expectBitIdentical(const std::vector<CplxF> &A,
                        const std::vector<CplxF> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].real(), B[I].real()) << "at " << I;
    ASSERT_EQ(A[I].imag(), B[I].imag()) << "at " << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Planner
//===----------------------------------------------------------------------===//

TEST(ClusterPlanner, SingleStackDegeneratesToEq1) {
  // With S = 1 the per-stack stream count m = N/S is exactly the m = N
  // default of LayoutPlanner::plan and the shaping clamps are no-ops,
  // so both placements must reproduce the single-stack plan field for
  // field.
  const Geometry G;
  const Timing T;
  const LayoutPlanner Single(G, T, /*ElementBytes=*/8);
  const ClusterLayoutPlanner Cluster(G, T, /*ElementBytes=*/8);
  for (std::uint64_t N : {1024ull, 2048ull, 4096ull}) {
    const BlockPlan Ref = Single.plan(N, 16);
    for (StackPlacement P :
         {StackPlacement::TwoLevel, StackPlacement::RoundRobin}) {
      const ClusterPlan CP = Cluster.plan(N, 1, 16, P);
      expectSamePlan(CP.Staging, Ref);
      expectSamePlan(CP.Receive, Ref);
      EXPECT_EQ(CP.RowsPerStack, N);
      EXPECT_EQ(CP.ColsPerStack, N);
    }
  }
}

TEST(ClusterPlanner, TwoLevelBlocksTileTheExchange) {
  const ClusterLayoutPlanner Planner(Geometry(), Timing(), 8);
  for (unsigned S : {2u, 4u, 8u}) {
    const std::uint64_t N = 2048;
    const ClusterPlan CP = Planner.plan(N, S, 16);
    const std::uint64_t Slab = N / S;
    // Staging blocks tile the (Slab x N) phase-1 region and each
    // (Slab x Slab) departing tile.
    EXPECT_EQ(Slab % CP.Staging.H, 0u) << S;
    EXPECT_EQ(Slab % CP.Staging.W, 0u) << S;
    // Receive blocks tile the (N x Slab) phase-2 region.
    EXPECT_EQ(N % CP.Receive.H, 0u) << S;
    EXPECT_EQ(Slab % CP.Receive.W, 0u) << S;
    // The receiver's plan is re-solved for its own slab's streams.
    EXPECT_EQ(CP.Receive.ColumnStreams, Slab) << S;
    EXPECT_EQ(CP.PairBytes, Slab * Slab * 8) << S;
    // Whole blocks leave the sender; element bursts are the comparator.
    EXPECT_EQ(CP.EgressBurstBytes, CP.Staging.W * CP.Staging.H * 8) << S;
    EXPECT_GT(CP.EgressBurstBytes, 8u) << S;
  }
}

TEST(ClusterPlanner, RoundRobinMovesElements) {
  const ClusterLayoutPlanner Planner(Geometry(), Timing(), 8);
  const ClusterPlan CP =
      Planner.plan(2048, 4, 16, StackPlacement::RoundRobin);
  EXPECT_EQ(CP.EgressBurstBytes, 8u);
  EXPECT_EQ(CP.IngressBurstBytes, 8u);
  EXPECT_EQ(CP.PairBytes, 512ull * 512ull * 8ull);
}

TEST(ClusterPlanner, SmallerSlabsRaiseBlockHeight) {
  // Per-stack column streams shrink with S, pushing Eq. 1 toward the
  // buffer-limited regime: the receive block must be at least as tall
  // at S = 8 as at S = 1 (taller once m crosses the regime boundary).
  const ClusterLayoutPlanner Planner(Geometry(), Timing(), 8);
  const ClusterPlan Whole = Planner.plan(2048, 1, 16);
  const ClusterPlan Split = Planner.plan(2048, 8, 16);
  EXPECT_GE(Split.Receive.H, Whole.Receive.H);
  EXPECT_EQ(Split.Receive.Regime, PlanRegime::BufferLimited);
}

//===----------------------------------------------------------------------===//
// Pencil grid
//===----------------------------------------------------------------------===//

TEST(ClusterFft, PencilGridShapes) {
  unsigned P1 = 0, P2 = 0;
  ClusterFftProcessor::pencilGrid(1, P1, P2);
  EXPECT_EQ(P1, 1u);
  EXPECT_EQ(P2, 1u);
  ClusterFftProcessor::pencilGrid(2, P1, P2);
  EXPECT_EQ(P1, 2u);
  EXPECT_EQ(P2, 1u);
  ClusterFftProcessor::pencilGrid(4, P1, P2);
  EXPECT_EQ(P1, 2u);
  EXPECT_EQ(P2, 2u);
  ClusterFftProcessor::pencilGrid(8, P1, P2);
  EXPECT_EQ(P1, 4u);
  EXPECT_EQ(P2, 2u);
  ClusterFftProcessor::pencilGrid(16, P1, P2);
  EXPECT_EQ(P1, 4u);
  EXPECT_EQ(P2, 4u);
}

//===----------------------------------------------------------------------===//
// Functional distributed FFTs
//===----------------------------------------------------------------------===//

TEST(ClusterFft, Distributed2dMatchesHostReference) {
  const std::uint64_t N = 64;
  const Matrix In = randomMatrix(N, 7);
  Matrix Ref = In;
  Fft2d(N, N).forward(Ref);
  for (unsigned S : {1u, 2u, 4u, 8u}) {
    for (StackPlacement P :
         {StackPlacement::TwoLevel, StackPlacement::RoundRobin}) {
      ClusterConfig Config = ClusterConfig::forProblemSize(N, S);
      Config.Placement = P;
      const Matrix Out = ClusterFftProcessor::compute2d(In, Config);
      expectBitIdentical(Out.storage(), Ref.storage());
    }
  }
}

TEST(ClusterFft, Distributed3dMatchesHostReference) {
  const std::uint64_t N = 16;
  const std::vector<CplxF> Vol = randomVolume(N, 11);
  const std::vector<CplxF> Ref =
      ClusterFftProcessor::compute3dReference(Vol, N);
  for (unsigned S : {1u, 2u, 4u, 8u}) {
    for (StackPlacement P :
         {StackPlacement::TwoLevel, StackPlacement::RoundRobin}) {
      ClusterConfig Config = ClusterConfig::forProblemSize(N, S);
      Config.Placement = P;
      const std::vector<CplxF> Out =
          ClusterFftProcessor::compute3d(Vol, N, Config);
      expectBitIdentical(Out, Ref);
    }
  }
}

//===----------------------------------------------------------------------===//
// Interconnect
//===----------------------------------------------------------------------===//

namespace {

/// A fabric with round numbers: 1 GB/s links (1 ns per byte), 100 ns
/// hop latency, 1 KiB packets, 24 B headers.
ClusterConfig fabricConfig(unsigned Stacks, ClusterTopology Topology) {
  ClusterConfig Config;
  Config.Stacks = Stacks;
  Config.Topology = Topology;
  Config.LinkGBps = 1.0;
  Config.LinkLatencyPicos = 100 * PicosPerNano;
  Config.PacketBytes = 1024;
  Config.PacketHeaderBytes = 24;
  Config.Node = SystemConfig::forProblemSize(Stacks * 64);
  return Config;
}

} // namespace

TEST(Interconnect, UncontendedSingleSend) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  Interconnect Net(Events, Config);
  // One full packet: (1024 + 24) bytes at 1 ns/B, plus the hop latency.
  const Picos Delivery = Net.send(0, 1, 1024);
  EXPECT_EQ(Delivery, (1024 + 24 + 100) * PicosPerNano);
  EXPECT_EQ(Delivery, Net.uncontendedTime(1024));
  EXPECT_EQ(Net.lastDelivery(), Delivery);
  EXPECT_EQ(Net.messages(), 1u);
  EXPECT_EQ(Net.payloadBytes(), 1024u);
}

TEST(Interconnect, LocalDeliveryIsFree) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(2, ClusterTopology::AllToAll);
  Interconnect Net(Events, Config);
  EXPECT_EQ(Net.send(1, 1, 1 << 20), 0);
  for (unsigned R = 0; R != Net.numResources(); ++R)
    EXPECT_EQ(Net.resourceStats(R).BusyTime, 0) << R;
}

TEST(Interconnect, IncastQueuesOnIngress) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::AllToAll);
  Interconnect Net(Events, Config);
  // Two senders target stack 2: the second serializes behind the first
  // on stack 2's ingress port and records the wait as queueing delay.
  const Picos Serial = (1024 + 24) * PicosPerNano;
  const Picos First = Net.send(0, 2, 1024);
  const Picos Second = Net.send(1, 2, 1024);
  EXPECT_EQ(First, Serial + 100 * PicosPerNano);
  EXPECT_EQ(Second, 2 * Serial + 100 * PicosPerNano);
  // Queueing lands on the second sender's egress resource.
  EXPECT_EQ(Net.resourceStats(1).QueueDelay, Serial);
}

TEST(Interconnect, ElementGranuleTaxesTheWire) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(2, ClusterTopology::AllToAll);
  Interconnect Net(Events, Config);
  // 1024 bytes in 8-byte granules: 128 packets of (8 + 24) bytes - a
  // 4x wire inflation against one full packet, exactly the round-robin
  // placement's penalty.
  const Picos Full = Net.uncontendedTime(1024, 1, 0);
  const Picos Scattered = Net.uncontendedTime(1024, 1, 8);
  EXPECT_EQ(Full, (1024 + 24 + 100) * PicosPerNano);
  EXPECT_EQ(Scattered, (128 * (8 + 24) + 100) * PicosPerNano);
  const Picos Delivery = Net.send(0, 1, 1024, /*GranuleBytes=*/8);
  EXPECT_EQ(Delivery, Scattered);
  EXPECT_EQ(Net.resourceStats(0).Packets, 128u);
}

TEST(Interconnect, RingRoutesTheShortWay) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::Ring);
  Interconnect Net(Events, Config);
  // 0 -> 3 is one counter-clockwise hop (segment ccw3), not three
  // clockwise ones.
  const Picos Delivery = Net.send(0, 3, 1024);
  EXPECT_EQ(Delivery, (1024 + 24 + 100) * PicosPerNano);
  EXPECT_GT(Net.resourceStats(4 + 3).BusyTime, 0); // ccw3
  for (unsigned Seg : {0u, 1u, 2u})
    EXPECT_EQ(Net.resourceStats(Seg).BusyTime, 0) << Seg;
}

TEST(Interconnect, RingPipelinesAcrossHops) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(4, ClusterTopology::Ring);
  Interconnect Net(Events, Config);
  // 0 -> 2: two clockwise hops (tie broken clockwise). Four packets
  // pipeline: the second hop starts after the first packet clears hop
  // one, so the total is Serial + TxFirst + 2 latencies.
  const Picos Tx = (1024 + 24) * PicosPerNano;
  const Picos Delivery = Net.send(0, 2, 4096);
  EXPECT_EQ(Delivery, 4 * Tx + Tx + 2 * 100 * PicosPerNano);
  EXPECT_EQ(Delivery, Net.uncontendedTime(4096, 2));
  EXPECT_GT(Net.resourceStats(0).BusyTime, 0); // cw0
  EXPECT_GT(Net.resourceStats(1).BusyTime, 0); // cw1
}

TEST(Interconnect, ExportsLinkCounters) {
  EventQueue Events;
  const ClusterConfig Config = fabricConfig(2, ClusterTopology::AllToAll);
  Interconnect Net(Events, Config);
  Net.send(0, 1, 2048);
  MetricsRegistry Registry;
  Net.exportTo(Registry);
  const MetricCounter *Bytes =
      Registry.findCounter("cluster.link.bytes", {{"link", "egress0"}});
  ASSERT_NE(Bytes, nullptr);
  EXPECT_EQ(Bytes->value(), 2048u);
  const MetricCounter *Messages =
      Registry.findCounter("cluster.xfer.messages");
  ASSERT_NE(Messages, nullptr);
  EXPECT_EQ(Messages->value(), 1u);
}

//===----------------------------------------------------------------------===//
// Timed runs
//===----------------------------------------------------------------------===//

TEST(ClusterFft, TwoLevelBeatsRoundRobin) {
  // The tentpole claim: the two-level layout's whole-block exchange
  // beats the round-robin comparator's element scatter end to end.
  ClusterConfig Config = ClusterConfig::forProblemSize(256, 4);
  const ClusterReport TwoLevel = ClusterFftProcessor(Config).run2d();
  Config.Placement = StackPlacement::RoundRobin;
  const ClusterReport RoundRobin = ClusterFftProcessor(Config).run2d();
  EXPECT_LT(TwoLevel.TotalTime, RoundRobin.TotalTime);
  EXPECT_LT(TwoLevel.ExchangeTime, RoundRobin.ExchangeTime);
  // Same payload crossed the fabric either way.
  EXPECT_EQ(TwoLevel.XferBytes, RoundRobin.XferBytes);
  EXPECT_EQ(TwoLevel.XferMessages, RoundRobin.XferMessages);
}

TEST(ClusterFft, ExchangeVanishesAtOneStack) {
  ClusterConfig Config = ClusterConfig::forProblemSize(256, 1);
  const ClusterReport Rep = ClusterFftProcessor(Config).run2d();
  EXPECT_EQ(Rep.ExchangeTime, 0);
  EXPECT_EQ(Rep.LinkTime, 0);
  EXPECT_EQ(Rep.XferMessages, 0u);
  EXPECT_EQ(Rep.TotalTime, Rep.RowPhaseTime + Rep.ColPhaseTime);
}

TEST(ClusterFft, Run3dHasTwoExchanges) {
  ClusterConfig Config = ClusterConfig::forProblemSize(64, 4);
  const ClusterReport Rep = ClusterFftProcessor(Config).run3d();
  // P1 = P2 = 2: both redistributions are real.
  EXPECT_GT(Rep.ExchangeTime, 0);
  EXPECT_GT(Rep.Exchange2Time, 0);
  EXPECT_GT(Rep.ZPhaseTime, 0);
  EXPECT_EQ(Rep.TotalTime, Rep.RowPhaseTime + Rep.ExchangeTime +
                               Rep.ColPhaseTime + Rep.Exchange2Time +
                               Rep.ZPhaseTime);
}
