//===- tests/obs_trace_test.cpp - Tracer + golden-trace regression --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
//
// Three layers of coverage:
//
//  1. Tracer mechanics: category filtering, bounded-buffer overflow (drop
//     counter set, retained prefix never reordered), zero events when
//     disabled, Chrome JSON shape.
//  2. Determinism: the digest of a 64x64 optimized run is identical when
//     the run executes inside ThreadPool shards at any thread count.
//  3. The golden file: tests/golden/trace_64x64_optimized.txt pins event
//     ordering, event timing and counter values of the small canonical
//     run. Rerun with FFT3D_UPDATE_GOLDEN=1 to rewrite it after an
//     intentional timing-model change, then review the diff.
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "obs/Metrics.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace fft3d;

namespace {

/// The canonical golden run: the full optimized 64x64 simulation with
/// every category enabled, metrics exported alongside.
std::string goldenDigest() {
  Tracer Trace;
  MetricsRegistry Metrics;
  Fft2dProcessor Processor(SystemConfig::forProblemSize(64));
  Processor.setObservability(&Trace, &Metrics, 1);
  (void)Processor.runOptimized();
  const MetricsSnapshot Snap = Metrics.snapshot();
  return traceDigest(Trace, &Snap);
}

std::string goldenPath() {
  return std::string(FFT3D_GOLDEN_DIR) + "/trace_64x64_optimized.txt";
}

} // namespace

TEST(Tracer, CategoryFilterDropsAtRecordTime) {
  Tracer T(TraceCatMem | TraceCatFault);
  EXPECT_TRUE(T.wants(TraceCatMem));
  EXPECT_TRUE(T.wants(TraceCatFault));
  EXPECT_FALSE(T.wants(TraceCatPhase));
  EXPECT_FALSE(T.wants(TraceCatServe));

  T.span(TraceCatMem, "read", 0, 0, 100, 50);
  T.span(TraceCatPhase, "row_phase", 0, 0, 0, 1000); // filtered
  T.instant(TraceCatServe, "job_arrive", 1, 0, 10);  // filtered
  T.instant(TraceCatFault, "ecc_retry", 0, 3, 200, "req", 7);
  ASSERT_EQ(T.events().size(), 2u);
  EXPECT_STREQ(T.events()[0].Name, "read");
  EXPECT_STREQ(T.events()[1].Name, "ecc_retry");
  // Filtered events are not "dropped": that counter means overflow only.
  EXPECT_EQ(T.dropped(), 0u);
}

TEST(Tracer, OverflowCountsDropsAndKeepsPrefixOrder) {
  const std::size_t Cap = 16;
  Tracer Small(TraceCatAll, Cap);
  Tracer Unbounded;
  for (std::uint64_t I = 0; I != 24; ++I) {
    // Non-monotone timestamps make any reordering of the retained
    // prefix visible.
    const Picos Ts = (I * 37) % 100;
    Small.instant(TraceCatMem, "e", 0, 0, Ts, "i", I);
    Unbounded.instant(TraceCatMem, "e", 0, 0, Ts, "i", I);
  }
  ASSERT_EQ(Small.events().size(), Cap);
  EXPECT_EQ(Small.dropped(), 24u - Cap);
  EXPECT_EQ(Unbounded.dropped(), 0u);
  // The retained events are exactly the uncapped run's first Cap events,
  // in the same order - full events, not evicted or reordered survivors.
  for (std::size_t I = 0; I != Cap; ++I) {
    EXPECT_EQ(Small.events()[I].Ts, Unbounded.events()[I].Ts) << I;
    EXPECT_EQ(Small.events()[I].Arg0, Unbounded.events()[I].Arg0) << I;
  }

  // clear() resets both the buffer and the drop counter.
  Small.clear();
  EXPECT_EQ(Small.events().size(), 0u);
  EXPECT_EQ(Small.dropped(), 0u);
}

TEST(Tracer, OverflowedTraceExportsDropCounter) {
  Tracer Small(TraceCatAll, 4);
  for (std::uint64_t I = 0; I != 10; ++I)
    Small.instant(TraceCatMem, "e", 0, 0, I);
  std::ostringstream OS;
  Small.writeChromeTrace(OS);
  EXPECT_NE(OS.str().find("fft3d_dropped_events"), std::string::npos);
  EXPECT_NE(OS.str().find("\"dropped\":6"), std::string::npos);
}

TEST(Tracer, DisabledTracingAddsNoEventsAndChangesNoResults) {
  // The untraced run and the traced run of the same simulation must
  // agree exactly: tracing is observation, never perturbation.
  Fft2dProcessor Plain(SystemConfig::forProblemSize(64));
  const AppReport Untraced = Plain.runOptimized();

  Tracer Trace;
  Fft2dProcessor Traced(SystemConfig::forProblemSize(64));
  Traced.setObservability(&Trace, nullptr);
  const AppReport WithTrace = Traced.runOptimized();

  EXPECT_GT(Trace.events().size(), 0u);
  EXPECT_EQ(Untraced.RowPhase.Elapsed, WithTrace.RowPhase.Elapsed);
  EXPECT_EQ(Untraced.ColPhase.Elapsed, WithTrace.ColPhase.Elapsed);
  EXPECT_EQ(Untraced.RowPhase.BytesRead, WithTrace.RowPhase.BytesRead);
  EXPECT_EQ(Untraced.RowPhase.BytesWritten, WithTrace.RowPhase.BytesWritten);
  EXPECT_DOUBLE_EQ(Untraced.AppThroughputGBps, WithTrace.AppThroughputGBps);

  // A tracer whose mask selects nothing records nothing - the producers'
  // wants() guard rejects every event before marshalling.
  Tracer Off(0);
  Fft2dProcessor Masked(SystemConfig::forProblemSize(64));
  Masked.setObservability(&Off, nullptr);
  const AppReport WithMask = Masked.runOptimized();
  EXPECT_EQ(Off.events().size(), 0u);
  EXPECT_EQ(Off.dropped(), 0u);
  EXPECT_EQ(Untraced.RowPhase.Elapsed, WithMask.RowPhase.Elapsed);
}

TEST(Tracer, CategoryFilterOnRealRunExcludesOtherCats) {
  Tracer MemOnly(TraceCatMem);
  Fft2dProcessor Processor(SystemConfig::forProblemSize(64));
  Processor.setObservability(&MemOnly, nullptr);
  (void)Processor.runOptimized();
  ASSERT_GT(MemOnly.events().size(), 0u);
  for (const TraceEvent &E : MemOnly.events())
    EXPECT_EQ(E.Cat, TraceCatMem) << E.Name;
}

TEST(Tracer, ChromeTraceJsonShape) {
  Tracer Trace;
  Fft2dProcessor Processor(SystemConfig::forProblemSize(64));
  Processor.setObservability(&Trace, nullptr, 1);
  (void)Processor.runOptimized();

  std::ostringstream OS;
  Trace.writeChromeTrace(OS);
  const std::string Json = OS.str();

  // Envelope Perfetto/chrome://tracing expects.
  EXPECT_EQ(Json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(Json.substr(Json.size() - 4), "\n]}\n");
  // Track-name metadata for the optimized process group and its vaults.
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("fft2d optimized"), std::string::npos);
  EXPECT_NE(Json.find("vault 0"), std::string::npos);
  // Instants carry a scope, spans carry a duration.
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);

  // Event timestamps are nondecreasing in file order (the writer sorts).
  std::istringstream Lines(Json);
  std::string Line;
  double LastTs = -1.0;
  std::size_t Seen = 0;
  while (std::getline(Lines, Line)) {
    const std::size_t Pos = Line.find("\"ts\":");
    if (Pos == std::string::npos)
      continue;
    const double Ts = std::strtod(Line.c_str() + Pos + 5, nullptr);
    EXPECT_GE(Ts, LastTs);
    LastTs = Ts;
    ++Seen;
  }
  EXPECT_EQ(Seen, Trace.events().size());
}

TEST(TraceDigest, ShardInvariantAcrossThreadCounts) {
  // Run the canonical traced simulation inside ThreadPool shards at
  // K = 1, 2, 4, 8 threads: every cell must produce the byte-identical
  // digest. This is the determinism claim the golden file rests on -
  // which OS thread hosts a simulation must be unobservable.
  const std::string Reference = goldenDigest();
  ASSERT_FALSE(Reference.empty());
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> Digests(4);
    ThreadPool Pool(Threads);
    Pool.parallelFor(Digests.size(),
                     [&](std::size_t I) { Digests[I] = goldenDigest(); });
    for (std::size_t I = 0; I != Digests.size(); ++I)
      EXPECT_EQ(Digests[I], Reference)
          << "cell " << I << " at " << Threads << " threads";
  }
}

TEST(TraceDigest, MatchesGoldenFile) {
  const std::string Digest = goldenDigest();
  const std::string Path = goldenPath();

  if (std::getenv("FFT3D_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Digest;
    GTEST_SKIP() << "updated " << Path;
  }

  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good())
      << "missing golden file " << Path
      << " - regenerate with FFT3D_UPDATE_GOLDEN=1";
  std::ostringstream Golden;
  Golden << In.rdbuf();

  // Byte-identical, and on mismatch report the first diverging line so
  // the failure is diagnosable without a local diff.
  if (Digest != Golden.str()) {
    std::istringstream A(Golden.str()), B(Digest);
    std::string LineA, LineB;
    std::size_t LineNo = 1;
    while (true) {
      const bool HasA = static_cast<bool>(std::getline(A, LineA));
      const bool HasB = static_cast<bool>(std::getline(B, LineB));
      if (!HasA && !HasB)
        break;
      if (!HasA || !HasB || LineA != LineB) {
        FAIL() << "golden mismatch at line " << LineNo << "\n  golden: "
               << (HasA ? LineA : "<eof>") << "\n  actual: "
               << (HasB ? LineB : "<eof>")
               << "\nIf the timing-model change is intentional, rerun with "
                  "FFT3D_UPDATE_GOLDEN=1 and review the diff.";
      }
      ++LineNo;
    }
    FAIL() << "digest differs from golden file in length only";
  }
  SUCCEED();
}
