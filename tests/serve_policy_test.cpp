//===- tests/serve_policy_test.cpp - Scheduler policy invariants ----------===//
//
// Part of the fft3d project.
//
// Small problem sizes (512/1024) keep the memoized service-time
// simulations fast; the scheduling logic under test is size-independent.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSimulator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace fft3d;

namespace {

/// Shared fast service model: small simulation budget, default device.
ServiceModel &model() {
  static ServiceModel Model(MemoryConfig(), /*MaxSimBytes=*/2ull << 20,
                            /*MaxSimOps=*/10000);
  return Model;
}

JobRequest job(std::uint64_t Id, Picos Arrival, std::uint64_t N,
               unsigned Priority = 1, unsigned Frames = 1) {
  JobRequest J;
  J.Id = Id;
  J.N = N;
  J.Frames = Frames;
  J.Priority = Priority;
  J.Arrival = Arrival;
  return J;
}

std::vector<std::uint64_t> dispatchOrder(const ServeResult &R) {
  std::vector<const JobOutcome *> ByDispatch;
  for (const JobOutcome &O : R.Tracker.completions())
    ByDispatch.push_back(&O);
  std::sort(ByDispatch.begin(), ByDispatch.end(),
            [](const JobOutcome *A, const JobOutcome *B) {
              if (A->DispatchTime != B->DispatchTime)
                return A->DispatchTime < B->DispatchTime;
              return A->Job.Id < B->Job.Id;
            });
  std::vector<std::uint64_t> Ids;
  for (const JobOutcome *O : ByDispatch)
    Ids.push_back(O->Job.Id);
  return Ids;
}

} // namespace

//===----------------------------------------------------------------------===//
// Direct selection invariants
//===----------------------------------------------------------------------===//

TEST(FcfsPolicy, TakesOldestAndOnlyWhenIdle) {
  JobQueue Q(8);
  Q.push(job(1, 100, 1024));
  Q.push(job(2, 200, 512));
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const auto D = Policy->selectNext(Q, 16, 16, 300, model());
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->QueueIndex, 0u);
  EXPECT_EQ(D->Vaults, 16u);
  // A busy machine (any vault in use) defers the next job.
  EXPECT_FALSE(Policy->selectNext(Q, 8, 16, 300, model()).has_value());
  EXPECT_FALSE(
      Policy->selectNext(JobQueue(1), 16, 16, 300, model()).has_value());
}

TEST(SjfPolicy, PicksShortestEstimatedJob) {
  JobQueue Q(8);
  Q.push(job(1, 0, 1024));
  Q.push(job(2, 0, 512)); // shortest
  Q.push(job(3, 0, 1024, 1, /*Frames=*/4));
  const auto Policy = createPolicy(PolicyKind::Sjf);
  const auto D = Policy->selectNext(Q, 16, 16, 0, model());
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(Q.at(D->QueueIndex).Id, 2u);
  // Ties resolve in arrival order: two identical jobs -> the earlier one.
  JobQueue Ties(8);
  Ties.push(job(7, 0, 512));
  Ties.push(job(8, 50, 512));
  const auto T = Policy->selectNext(Ties, 16, 16, 100, model());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(Ties.at(T->QueueIndex).Id, 7u);
}

TEST(PriorityAgingPolicy, UrgencyClassesFirstButWaitingAges) {
  PolicyOptions Options;
  Options.AgingQuantum = 10 * PicosPerMilli;
  const auto Policy = createPolicy(PolicyKind::PriorityAging, Options);

  // Nearly simultaneous arrivals: the priority-0 job wins outright
  // (aging credit accrues to both almost equally).
  JobQueue Fresh(8);
  Fresh.push(job(1, 0, 512, /*Priority=*/5));
  Fresh.push(job(2, 1000, 512, /*Priority=*/0));
  const auto F = Policy->selectNext(Fresh, 16, 16, 2000, model());
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(Fresh.at(F->QueueIndex).Id, 2u);

  // A background job that has already waited >5 quanta longer than a
  // newly arrived priority-0 job outranks it (5 classes of aging
  // credit): no starvation.
  JobQueue Aged(8);
  Aged.push(job(3, 0, 512, /*Priority=*/5));
  Aged.push(job(4, 60 * PicosPerMilli, 512, /*Priority=*/0));
  const auto A =
      Policy->selectNext(Aged, 16, 16, 61 * PicosPerMilli, model());
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(Aged.at(A->QueueIndex).Id, 3u);
}

TEST(VaultPartitionPolicy, GrantsEqualSharesWhileVaultsRemain) {
  JobQueue Q(8);
  Q.push(job(1, 0, 512));
  Q.push(job(2, 0, 512));
  PolicyOptions Options;
  Options.Partitions = 2;
  const auto Policy = createPolicy(PolicyKind::VaultPartition, Options);

  const auto First = Policy->selectNext(Q, 16, 16, 0, model());
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(First->QueueIndex, 0u);
  EXPECT_EQ(First->Vaults, 8u);
  // Half the machine busy: the second share is still grantable...
  const auto Second = Policy->selectNext(Q, 8, 16, 0, model());
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(Second->Vaults, 8u);
  // ...but a third is not.
  EXPECT_FALSE(Policy->selectNext(Q, 0, 16, 0, model()).has_value());
  EXPECT_FALSE(Policy->selectNext(Q, 4, 16, 0, model()).has_value());
}

//===----------------------------------------------------------------------===//
// End-to-end ordering and tail-latency behaviour
//===----------------------------------------------------------------------===//

TEST(ServeSimulator, FcfsDispatchesInArrivalOrder) {
  std::vector<JobRequest> Trace;
  for (unsigned I = 0; I != 12; ++I)
    Trace.push_back(job(I + 1, I * 100 * PicosPerNano,
                        I % 3 == 0 ? 1024 : 512));
  TraceWorkload Load(Trace);
  ServeSimulator Sim(ServeConfig{}, model());
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult R = Sim.run(Load, *Policy);
  ASSERT_EQ(R.Summary.Completed, 12u);
  const std::vector<std::uint64_t> Order = dispatchOrder(R);
  for (std::size_t I = 0; I != Order.size(); ++I)
    EXPECT_EQ(Order[I], I + 1) << "position " << I;
  EXPECT_EQ(R.PeakConcurrency, 1u);
}

TEST(ServeSimulator, SjfReordersBacklogShortestFirst) {
  // All jobs arrive in one burst; the long job arrived first but must
  // dispatch last.
  std::vector<JobRequest> Trace;
  Trace.push_back(job(1, 0, 1024, 1, /*Frames=*/4));
  Trace.push_back(job(2, 1, 512));
  Trace.push_back(job(3, 2, 1024));
  Trace.push_back(job(4, 3, 512));
  TraceWorkload Load(Trace);
  ServeSimulator Sim(ServeConfig{}, model());
  const auto Policy = createPolicy(PolicyKind::Sjf);
  const ServeResult R = Sim.run(Load, *Policy);
  ASSERT_EQ(R.Summary.Completed, 4u);
  // First dispatch is whatever is pending when the machine is free at
  // t=0 (job 1, alone); after that burst backlog is reordered.
  const std::vector<std::uint64_t> Order = dispatchOrder(R);
  EXPECT_EQ(Order[0], 1u);
  EXPECT_EQ(Order[1], 2u);
  EXPECT_EQ(Order[2], 4u);
  EXPECT_EQ(Order[3], 3u);
}

TEST(ServeSimulator, VaultPartitionRunsJobsConcurrently) {
  std::vector<JobRequest> Trace;
  for (unsigned I = 0; I != 8; ++I)
    Trace.push_back(job(I + 1, I, 1024));
  TraceWorkload Load(Trace);
  ServeSimulator Sim(ServeConfig{}, model());
  PolicyOptions Options;
  Options.Partitions = 2;
  const auto Policy = createPolicy(PolicyKind::VaultPartition, Options);
  const ServeResult R = Sim.run(Load, *Policy);
  ASSERT_EQ(R.Summary.Completed, 8u);
  EXPECT_EQ(R.PeakConcurrency, 2u);
  for (const JobOutcome &O : R.Tracker.completions())
    EXPECT_EQ(O.Vaults, 8u);
}

TEST(ServeSimulator, VaultPartitionBeatsFcfsTailOnMixedLoad) {
  // Mixed small/large open-loop stream near saturation: FCFS queues
  // small jobs behind multi-frame batches; the 2-way partition drains
  // them alongside. The kernel-bound service rate makes a half-machine
  // share nearly as fast as the whole device, so the tail collapses.
  const std::vector<JobTemplate> Mix = {
      {512, 1, JobPrecision::Fp32, 0, 3.0, 0.0},
      {1024, 4, JobPrecision::Fp32, 2, 1.0, 0.0},
  };
  TraceWorkload Load(
      generatePoissonTrace(Mix, 80, /*RatePerSec=*/1000.0, 11, model()));
  ServeSimulator Sim(ServeConfig{}, model());

  const ServeResult Fcfs = Sim.run(Load, *createPolicy(PolicyKind::Fcfs));
  PolicyOptions Options;
  Options.Partitions = 2;
  const ServeResult Vault =
      Sim.run(Load, *createPolicy(PolicyKind::VaultPartition, Options));

  ASSERT_EQ(Fcfs.Summary.Completed, Vault.Summary.Completed);
  EXPECT_LT(Vault.Summary.P99LatencyMs, Fcfs.Summary.P99LatencyMs);
  EXPECT_LT(Vault.Summary.P50LatencyMs, Fcfs.Summary.P50LatencyMs);
}

TEST(ServeSimulator, SameSeedReplaysByteIdentically) {
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  // Small sizes via explicit templates to stay fast.
  const std::vector<JobTemplate> Fast = {
      {512, 1, JobPrecision::Fp32, 0, 2.0, 4.0},
      {1024, 1, JobPrecision::Fp16, 1, 1.0, 4.0},
  };
  (void)Mix;
  TraceWorkload Load(
      generatePoissonTrace(Fast, 40, /*RatePerSec=*/800.0, 123, model()));
  ServeSimulator Sim(ServeConfig{}, model());
  const ServeResult A = Sim.run(Load, *createPolicy(PolicyKind::Sjf));
  const ServeResult B = Sim.run(Load, *createPolicy(PolicyKind::Sjf));
  EXPECT_EQ(A.EndTime, B.EndTime);
  EXPECT_EQ(A.Summary.Completed, B.Summary.Completed);
  EXPECT_EQ(A.Summary.P99LatencyMs, B.Summary.P99LatencyMs);
  EXPECT_EQ(A.Summary.P50QueueMs, B.Summary.P50QueueMs);
  EXPECT_EQ(A.Summary.ThroughputJobsPerSec, B.Summary.ThroughputJobsPerSec);
}

TEST(ServeSimulator, ClosedLoopSelfThrottlesAndCompletes) {
  const std::vector<JobTemplate> Fast = {
      {512, 1, JobPrecision::Fp32, 0, 1.0, 0.0}};
  ClosedLoopWorkload Load(Fast, /*NumClients=*/3, /*JobsPerClient=*/5,
                          /*MeanThinkTime=*/PicosPerMilli, /*Seed=*/5,
                          model());
  ServeSimulator Sim(ServeConfig{}, model());
  const ServeResult R = Sim.run(Load, *createPolicy(PolicyKind::Fcfs));
  // Every issued job is answered; a closed loop can never overrun the
  // bounded queue (population <= clients).
  EXPECT_EQ(R.Summary.Completed, Load.totalJobs());
  EXPECT_EQ(R.Summary.Shed, 0u);
}

TEST(ServeSimulator, BoundedQueueShedsOverload) {
  // 30 near-simultaneous arrivals into a 8-deep queue on a serial
  // machine: the burst beyond queue + in-flight capacity is shed.
  std::vector<JobRequest> Trace;
  for (unsigned I = 0; I != 30; ++I)
    Trace.push_back(job(I + 1, I + 1, 1024));
  TraceWorkload Load(Trace);
  ServeConfig Config;
  Config.QueueCapacity = 8;
  ServeSimulator Sim(Config, model());
  const ServeResult R = Sim.run(Load, *createPolicy(PolicyKind::Fcfs));
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 30u);
  EXPECT_EQ(R.ShedQueueFull, R.Summary.Shed);
  EXPECT_GT(R.Summary.Shed, 0u);
  // The first arrival dispatches immediately; 8 queue up; most of the
  // rest shed before the first completion frees the machine.
  EXPECT_GE(R.Summary.Shed, 20u);
}
