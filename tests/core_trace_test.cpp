//===- tests/core_trace_test.cpp - Access-trace generator tests -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "core/AccessTrace.h"
#include "layout/LinearLayouts.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace fft3d;

namespace {

std::vector<TraceOp> drain(TraceSource &T) {
  std::vector<TraceOp> Ops;
  while (auto Op = T.next())
    Ops.push_back(*Op);
  return Ops;
}

std::uint64_t sumBytes(const std::vector<TraceOp> &Ops) {
  std::uint64_t Sum = 0;
  for (const TraceOp &Op : Ops)
    Sum += Op.Bytes;
  return Sum;
}

/// Each byte of the layout's footprint must be covered exactly once.
void expectExactCover(const DataLayout &L, const std::vector<TraceOp> &Ops) {
  std::set<PhysAddr> Seen;
  for (const TraceOp &Op : Ops)
    for (std::uint64_t B = 0; B != Op.Bytes; B += L.elementBytes())
      EXPECT_TRUE(Seen.insert(Op.Addr + B).second) << Op.Addr + B;
  EXPECT_EQ(Seen.size(), L.numRows() * L.numCols());
}

} // namespace

TEST(RowScanTrace, CoalescesRowMajorIntoMaxBursts) {
  const RowMajorLayout L(16, 16, 8, 0);
  RowScanTrace T(L, /*MaxBurstBytes=*/64);
  const auto Ops = drain(T);
  // 16 rows x 128 B per row / 64 B bursts = 32 ops.
  EXPECT_EQ(Ops.size(), 32u);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 64u);
  EXPECT_EQ(sumBytes(Ops), L.sizeBytes());
  expectExactCover(L, Ops);
}

TEST(RowScanTrace, ResetRestarts) {
  const RowMajorLayout L(4, 4, 8, 0);
  RowScanTrace T(L, 8192);
  const auto First = drain(T);
  T.reset();
  const auto Second = drain(T);
  ASSERT_EQ(First.size(), Second.size());
  for (std::size_t I = 0; I != First.size(); ++I)
    EXPECT_EQ(First[I].Addr, Second[I].Addr);
}

TEST(ColScanTrace, RowMajorColumnsDegradeToElementOps) {
  const RowMajorLayout L(16, 16, 8, 0);
  ColScanTrace T(L, 8192);
  const auto Ops = drain(T);
  // The pathological stream: one element per op.
  EXPECT_EQ(Ops.size(), 256u);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 8u);
  // Stride between consecutive ops within a column is N * 8.
  EXPECT_EQ(Ops[1].Addr - Ops[0].Addr, 16u * 8);
  expectExactCover(L, Ops);
}

TEST(ColScanTrace, ColMajorColumnsCoalesce) {
  const ColMajorLayout L(16, 16, 8, 0);
  ColScanTrace T(L, /*MaxBurstBytes=*/128);
  const auto Ops = drain(T);
  EXPECT_EQ(Ops.size(), 16u);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 128u);
  expectExactCover(L, Ops);
}

TEST(BlockTrace, EmitsOneOpPerBlock) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8); // 256 B blocks, 8x4 grid.
  BlockTrace T(L, BlockOrder::ColMajorBlocks);
  const auto Ops = drain(T);
  EXPECT_EQ(Ops.size(), 32u);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 256u);
  EXPECT_EQ(sumBytes(Ops), L.sizeBytes());
  expectExactCover(L, Ops);
}

TEST(BlockTrace, ColumnOrderWalksDownBlockColumns) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  BlockTrace T(L, BlockOrder::ColMajorBlocks);
  const auto Ops = drain(T);
  // First blocksPerCol() ops are block column 0, rows 0..: base matches.
  for (std::uint64_t Br = 0; Br != L.blocksPerCol(); ++Br)
    EXPECT_EQ(Ops[Br].Addr, L.blockBase(Br, 0));
}

TEST(BlockTrace, RowOrderWalksAcrossBlockRows) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  BlockTrace T(L, BlockOrder::RowMajorBlocks);
  const auto Ops = drain(T);
  for (std::uint64_t Bc = 0; Bc != L.blocksPerRow(); ++Bc)
    EXPECT_EQ(Ops[Bc].Addr, L.blockBase(0, Bc));
}

TEST(ChunkedBlockWriteTrace, OneChunkPerRowPerBlockColumn) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  ChunkedBlockWriteTrace T(L);
  const auto Ops = drain(T);
  // 32 rows x 8 block columns.
  EXPECT_EQ(Ops.size(), 32u * 8);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 4u * 8); // w elements.
  EXPECT_EQ(sumBytes(Ops), L.sizeBytes());
  expectExactCover(L, Ops);
}

TEST(ChunkedBlockWriteTrace, ChunksLandAtRowOffsetWithinBlock) {
  const BlockDynamicLayout L(32, 32, 8, 0, 4, 8);
  ChunkedBlockWriteTrace T(L);
  // Row 0 chunks land at offset 0 of each block of block-row 0.
  for (std::uint64_t Bc = 0; Bc != 8; ++Bc) {
    const auto Op = T.next();
    ASSERT_TRUE(Op.has_value());
    EXPECT_EQ(Op->Addr, L.blockBase(0, Bc));
  }
  // Row 1's first chunk lands one in-block row further.
  const auto Op = T.next();
  ASSERT_TRUE(Op.has_value());
  EXPECT_EQ(Op->Addr, L.blockBase(0, 0) + 4 * 8);
}

TEST(Traces, TotalBytesMatchFootprint) {
  const BlockDynamicLayout L(64, 64, 8, 0, 8, 8);
  EXPECT_EQ(BlockTrace(L, BlockOrder::ColMajorBlocks).totalBytes(),
            L.sizeBytes());
  EXPECT_EQ(ChunkedBlockWriteTrace(L).totalBytes(), L.sizeBytes());
  const RowMajorLayout R(64, 64, 8, 0);
  EXPECT_EQ(RowScanTrace(R, 8192).totalBytes(), R.sizeBytes());
  EXPECT_EQ(ColScanTrace(R, 8192).totalBytes(), R.sizeBytes());
}

TEST(TileScanTrace, CoversFootprintInTileChunks) {
  const RowMajorLayout L(32, 32, 8, 0);
  TileScanTrace T(L, 8, 8);
  const auto Ops = drain(T);
  // 16 tiles x 8 chunk rows.
  EXPECT_EQ(Ops.size(), 128u);
  for (const TraceOp &Op : Ops)
    EXPECT_EQ(Op.Bytes, 8u * 8);
  EXPECT_EQ(sumBytes(Ops), L.sizeBytes());
  expectExactCover(L, Ops);
}

TEST(TileScanTrace, ChunksWithinATileStrideByMatrixWidth) {
  const RowMajorLayout L(32, 32, 8, 0);
  TileScanTrace T(L, 8, 8);
  const auto First = T.next();
  const auto Second = T.next();
  ASSERT_TRUE(First && Second);
  EXPECT_EQ(First->Addr, 0u);
  EXPECT_EQ(Second->Addr, 32u * 8); // Next matrix row, same tile.
  T.reset();
  EXPECT_EQ(T.next()->Addr, 0u);
}
