//===- tests/mem3d_address_test.cpp - Geometry and address mapping --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Address.h"
#include "mem3d/Geometry.h"
#include "mem3d/Timing.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace fft3d;

TEST(Geometry, DefaultsAreValidAndSized) {
  Geometry G;
  EXPECT_TRUE(G.isValid());
  EXPECT_EQ(G.banksPerVault(), 8u);
  EXPECT_EQ(G.totalBanks(), 128u);
  EXPECT_EQ(G.bytesPerBeat(), 8u);
  EXPECT_EQ(G.bankBytes(), 16384ull * 8192);
  // 16 vaults x 8 banks x 16384 rows x 8 KiB = 16 GiB.
  EXPECT_EQ(G.capacityBytes(), 16ull << 30);
}

TEST(Geometry, RejectsNonPowerOfTwo) {
  Geometry G;
  G.NumVaults = 12;
  EXPECT_FALSE(G.isValid());
  G = Geometry();
  G.RowBufferBytes = 3000;
  EXPECT_FALSE(G.isValid());
  G = Geometry();
  G.NumTsvsPerVault = 12; // not a multiple of 8
  EXPECT_FALSE(G.isValid());
}

TEST(Geometry, LayerOfBank) {
  Geometry G; // 4 layers x 2 banks per layer.
  EXPECT_EQ(G.layerOfBank(0), 0u);
  EXPECT_EQ(G.layerOfBank(1), 0u);
  EXPECT_EQ(G.layerOfBank(2), 1u);
  EXPECT_EQ(G.layerOfBank(7), 3u);
}

TEST(Timing, DefaultsValidAndOrdered) {
  Timing T;
  EXPECT_TRUE(T.isValid());
  EXPECT_LE(T.TInRow, T.TInVault);
  EXPECT_LE(T.TInVault, T.TDiffBank);
  EXPECT_LE(T.TDiffBank, T.TDiffRow);
  EXPECT_TRUE(conservativeTiming().isValid());
  EXPECT_TRUE(aggressiveTiming().isValid());
}

TEST(Timing, RejectsInvertedOrdering) {
  Timing T;
  T.TInVault = T.TDiffRow * 2;
  EXPECT_FALSE(T.isValid());
}

namespace {

class AddressMapperParamTest
    : public ::testing::TestWithParam<std::tuple<AddressMapKind, bool>> {};

} // namespace

TEST_P(AddressMapperParamTest, DecodeEncodeRoundTripsRandomAddresses) {
  const auto [Kind, Hash] = GetParam();
  Geometry G;
  const AddressMapper Mapper(G, Kind, Hash);
  Rng R(123);
  for (int I = 0; I != 5000; ++I) {
    const PhysAddr Addr = R.nextBelow(G.capacityBytes());
    const DecodedAddr D = Mapper.decode(Addr);
    EXPECT_LT(D.Vault, G.NumVaults);
    EXPECT_LT(D.Bank, G.banksPerVault());
    EXPECT_LT(D.Row, G.RowsPerBank);
    EXPECT_LT(D.Column, G.RowBufferBytes);
    EXPECT_EQ(Mapper.encode(D), Addr);
  }
}

TEST_P(AddressMapperParamTest, SameRowStaysTogether) {
  const auto [Kind, Hash] = GetParam();
  Geometry G;
  const AddressMapper Mapper(G, Kind, Hash);
  // Addresses within one row-buffer-aligned span share vault/bank/row.
  const PhysAddr Base = 42 * G.RowBufferBytes;
  const DecodedAddr First = Mapper.decode(Base);
  for (std::uint64_t Off = 0; Off != G.RowBufferBytes; Off += 512) {
    const DecodedAddr D = Mapper.decode(Base + Off);
    EXPECT_EQ(D.Vault, First.Vault);
    EXPECT_EQ(D.Bank, First.Bank);
    EXPECT_EQ(D.Row, First.Row);
    EXPECT_EQ(D.Column, Off);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AddressMapperParamTest,
    ::testing::Combine(::testing::Values(AddressMapKind::ColVaultBankRow,
                                         AddressMapKind::ColBankVaultRow,
                                         AddressMapKind::ColVaultRowBank,
                                         AddressMapKind::ColRowBankVault),
                       ::testing::Bool()));

TEST(AddressMapper, DefaultKindInterleavesVaultsAtRowGranularity) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  for (unsigned I = 0; I != 2 * G.NumVaults; ++I) {
    const DecodedAddr D = Mapper.decode(PhysAddr(I) * G.RowBufferBytes);
    EXPECT_EQ(D.Vault, I % G.NumVaults);
  }
}

TEST(AddressMapper, PathologicalKindKeepsBankContiguous) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColRowBankVault);
  // The whole first bank's capacity maps to vault 0, bank 0.
  const DecodedAddr Lo = Mapper.decode(0);
  const DecodedAddr Hi = Mapper.decode(G.bankBytes() - 1);
  EXPECT_EQ(Lo.Vault, Hi.Vault);
  EXPECT_EQ(Lo.Bank, Hi.Bank);
  const DecodedAddr Next = Mapper.decode(G.bankBytes());
  EXPECT_TRUE(Next.Bank != Lo.Bank || Next.Vault != Lo.Vault);
}

TEST(AddressMapper, DescribeMentionsFieldWidths) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  const std::string Desc = Mapper.describe();
  EXPECT_NE(Desc.find("[col:13]"), std::string::npos);
  EXPECT_NE(Desc.find("[vault:4]"), std::string::npos);
  const AddressMapper Hashed(G, AddressMapKind::ColVaultBankRow, true);
  EXPECT_NE(Hashed.describe().find("xor-hashed"), std::string::npos);
}

TEST(AddressMapper, XorHashSpreadsPathologicalStride) {
  Geometry G;
  // Under the pathological mapping, a stride of one row lands in the same
  // bank every time; the XOR hash must spread it.
  const AddressMapper Plain(G, AddressMapKind::ColRowBankVault, false);
  const AddressMapper Hashed(G, AddressMapKind::ColRowBankVault, true);
  unsigned PlainSame = 0, HashedSame = 0;
  DecodedAddr PrevPlain = Plain.decode(0), PrevHashed = Hashed.decode(0);
  for (unsigned I = 1; I != 64; ++I) {
    const PhysAddr Addr = PhysAddr(I) * G.RowBufferBytes;
    const DecodedAddr DP = Plain.decode(Addr);
    const DecodedAddr DH = Hashed.decode(Addr);
    PlainSame += DP.Bank == PrevPlain.Bank && DP.Vault == PrevPlain.Vault;
    HashedSame += DH.Bank == PrevHashed.Bank && DH.Vault == PrevHashed.Vault;
    PrevPlain = DP;
    PrevHashed = DH;
  }
  EXPECT_EQ(PlainSame, 63u);
  EXPECT_LT(HashedSame, 8u);
}
