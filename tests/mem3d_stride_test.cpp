//===- tests/mem3d_stride_test.cpp - Stride analysis vs simulation --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Memory3D.h"
#include "mem3d/StrideAnalysis.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

using namespace fft3d;

namespace {

/// Simulated sustained rate of a strided 8 B read stream (accesses/ns)
/// with \p Window outstanding requests.
double simulateStridedRate(const MemoryConfig &Config,
                           std::uint64_t StrideBytes, unsigned Window,
                           unsigned Count = 4000) {
  EventQueue Events;
  Memory3D Mem(Events, Config);
  const std::uint64_t Capacity = Config.Geo.capacityBytes();
  Picos Last = 0;
  unsigned Issued = 0, Completed = 0;
  std::function<void()> IssueMore = [&] {
    while (Issued < Count && Issued - Completed < Window) {
      MemRequest Req;
      Req.Addr = (PhysAddr(Issued) * StrideBytes) % Capacity;
      Req.Bytes = 8;
      ++Issued;
      Mem.submit(Req, [&](const MemRequest &, Picos At) {
        ++Completed;
        Last = std::max(Last, At);
        IssueMore();
      });
    }
  };
  IssueMore();
  Events.run();
  return static_cast<double>(Count) / picosToNanos(Last);
}

} // namespace

TEST(StrideAnalysis, SequentialWalkTouchesEverything) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  // Row-buffer stride: round-robin all vaults.
  const StrideProfile P =
      analyzeStride(Mapper, 0, G.RowBufferBytes, 4096);
  EXPECT_EQ(P.DistinctVaults, 16u);
  EXPECT_EQ(P.DistinctBanks, 128u);
  // Revisit gap is the full bank rotation.
  EXPECT_NEAR(P.MeanSameBankGap, 128.0, 1.0);
  // Every revisit is a new row.
  EXPECT_GT(P.RowMissFraction, 0.9);
}

TEST(StrideAnalysis, PathologicalMappingSerializesOnOneBank) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColRowBankVault);
  const StrideProfile P =
      analyzeStride(Mapper, 0, G.RowBufferBytes, 1024);
  EXPECT_EQ(P.DistinctVaults, 1u);
  EXPECT_EQ(P.DistinctBanks, 1u);
  EXPECT_NEAR(P.MeanSameBankGap, 1.0, 1e-9);
  EXPECT_GT(P.RowMissFraction, 0.99);
}

TEST(StrideAnalysis, XorHashSpreadsThePathologicalWalk) {
  Geometry G;
  const AddressMapper Hashed(G, AddressMapKind::ColRowBankVault, true);
  const StrideProfile P =
      analyzeStride(Hashed, 0, G.RowBufferBytes, 1024);
  EXPECT_GT(P.DistinctBanks, 8u);
  EXPECT_GT(P.MeanSameBankGap, 4.0);
}

TEST(StrideAnalysis, MatrixColumnStrideProfile) {
  Geometry G;
  const AddressMapper Mapper(G, AddressMapKind::ColVaultBankRow);
  // N = 2048 column walk: stride 16 KiB -> every other vault.
  const StrideProfile P = analyzeStride(Mapper, 0, 2048 * 8, 4096);
  EXPECT_EQ(P.DistinctVaults, 8u);
  EXPECT_GT(P.RowMissFraction, 0.9);
}

TEST(StrideAnalysis, PredictionTracksSimulationAcrossWindows) {
  const MemoryConfig Config;
  const AddressMapper Mapper(Config.Geo, Config.MapKind);
  const std::uint64_t Stride = 2048 * 8;
  const StrideProfile P = analyzeStride(Mapper, 0, Stride, 4096);
  for (const unsigned Window : {1u, 4u, 16u}) {
    const double Predicted =
        predictStridedAccessRate(P, Config.Time, Window);
    const double Simulated = simulateStridedRate(Config, Stride, Window);
    // Structural model, not cycle-exact: within a factor of 2.
    EXPECT_GT(Simulated, 0.4 * Predicted)
        << "window " << Window;
    EXPECT_LT(Simulated, 2.5 * Predicted) << "window " << Window;
  }
}

TEST(StrideAnalysis, PredictionCapturesMappingPathology) {
  MemoryConfig Bad;
  Bad.MapKind = AddressMapKind::ColRowBankVault;
  const MemoryConfig Good;
  const std::uint64_t Stride = Good.Geo.RowBufferBytes;

  const StrideProfile PBad =
      analyzeStride(AddressMapper(Bad.Geo, Bad.MapKind), 0, Stride, 1024);
  const StrideProfile PGood =
      analyzeStride(AddressMapper(Good.Geo, Good.MapKind), 0, Stride, 1024);
  const double RateBad = predictStridedAccessRate(PBad, Bad.Time, 16);
  const double RateGood = predictStridedAccessRate(PGood, Good.Time, 16);
  // The pathological mapping is t_diff_row bound: 1/40ns = 0.025/ns.
  EXPECT_NEAR(RateBad, 0.025, 1e-6);
  EXPECT_GT(RateGood, 5.0 * RateBad);

  // And the simulator agrees about the ordering.
  const double SimBad = simulateStridedRate(Bad, Stride, 16, 1000);
  const double SimGood = simulateStridedRate(Good, Stride, 16, 1000);
  EXPECT_GT(SimGood, 3.0 * SimBad);
}

TEST(StrideAnalysis, WindowOneIsRoundTripBound) {
  const MemoryConfig Config;
  const AddressMapper Mapper(Config.Geo, Config.MapKind);
  const StrideProfile P =
      analyzeStride(Mapper, 0, 4096 * 8, 2048);
  const double Rate = predictStridedAccessRate(P, Config.Time, 1);
  // 1 / (14 + 10 + 1.6) ns.
  EXPECT_NEAR(Rate, 1.0 / 25.6, 1e-6);
}

TEST(StrideAnalysis, RefinedModelMatchesSimulatorAtSaturation) {
  // With the same-layer transition mix folded in, the vault-bound
  // prediction agrees with the simulator to ~1% at deep windows.
  const MemoryConfig Config;
  const AddressMapper Mapper(Config.Geo, Config.MapKind);
  for (const std::uint64_t StrideElems : {1024ull, 2048ull, 4096ull}) {
    const std::uint64_t Stride = StrideElems * 8;
    const StrideProfile P = analyzeStride(Mapper, 0, Stride, 4096);
    const double Model = predictStridedAccessRate(P, Config.Time, 64);
    const double Sim = simulateStridedRate(Config, Stride, 64);
    EXPECT_NEAR(Sim / Model, 1.0, 0.03) << "stride " << Stride;
  }
}

TEST(StrideAnalysis, SameLayerFractionForBankRotations) {
  const MemoryConfig Config;
  const AddressMapper Mapper(Config.Geo, Config.MapKind);
  // Row-buffer stride rotates banks 0,1,2,..: with 2 banks per layer,
  // half the per-vault transitions stay on a layer.
  const StrideProfile P =
      analyzeStride(Mapper, 0, Config.Geo.RowBufferBytes, 4096);
  EXPECT_NEAR(P.SameLayerTransitionFraction, 0.5, 0.05);
}
