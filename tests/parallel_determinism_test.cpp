//===- tests/parallel_determinism_test.cpp - Threaded == sequential -------===//
//
// Part of the fft3d project.
//
// The sweep executor's core guarantee: running independent simulations
// on N threads produces byte-identical results to running them on one.
// Each cell owns its EventQueue and simulator, workloads regenerate
// from fixed seeds, and the shared ServiceModel memo is populated with
// per-key deterministic values - so nothing observable may depend on
// the thread count or interleaving.
//
//===----------------------------------------------------------------------===//

#include "core/AutoTuner.h"
#include "core/Fft2dProcessor.h"
#include "fault/FaultSpec.h"
#include "obs/Metrics.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "serve/Scheduler.h"
#include "serve/ServeSimulator.h"
#include "serve/ServiceModel.h"
#include "serve/Workload.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

using namespace fft3d;

namespace {

TuneResult tuneWith(unsigned Threads) {
  const SystemConfig Config = SystemConfig::forProblemSize(1024);
  TuneOptions Options;
  Options.SweepBlockShapes = true;
  Options.SweepSkew = true;
  Options.Threads = Threads;
  const AutoTuner Tuner(Config, Options);
  return Tuner.tune();
}

TEST(ParallelDeterminism, AutoTunerThreadCountInvariant) {
  const TuneResult Seq = tuneWith(1);
  const TuneResult Par = tuneWith(4);
  ASSERT_EQ(Seq.Candidates.size(), Par.Candidates.size());
  ASSERT_FALSE(Seq.Candidates.empty());
  for (std::size_t I = 0; I != Seq.Candidates.size(); ++I) {
    const TuneCandidate &A = Seq.Candidates[I];
    const TuneCandidate &B = Par.Candidates[I];
    EXPECT_EQ(A.Name, B.Name) << "rank " << I;
    EXPECT_EQ(A.W, B.W);
    EXPECT_EQ(A.H, B.H);
    EXPECT_EQ(A.Skew, B.Skew);
    // Bitwise-equal metrics, not approximately equal: the cells are
    // independent simulations, so parallelism must not perturb them.
    EXPECT_EQ(A.Metrics.AppGBps, B.Metrics.AppGBps);
    EXPECT_EQ(A.Metrics.PicojoulesPerBit, B.Metrics.PicojoulesPerBit);
  }
}

std::vector<ServeResult> serveWith(unsigned Threads) {
  const MemoryConfig Mem;
  const ServiceModel Model(Mem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::vector<PolicyKind> Kinds = {
      PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::PriorityAging,
      PolicyKind::VaultPartition};
  std::vector<ServeResult> Results(Kinds.size());
  ThreadPool Pool(Threads);
  Pool.parallelFor(Kinds.size(), [&](std::size_t I) {
    const ServeConfig Config;
    TraceWorkload Load(
        generatePoissonTrace(Mix, 60, 300.0, /*Seed=*/7, Model));
    const auto Policy = createPolicy(Kinds[I]);
    ServeSimulator Sim(Config, Model);
    Results[I] = Sim.run(Load, *Policy);
  });
  return Results;
}

TEST(ParallelDeterminism, ServePoliciesThreadCountInvariant) {
  const std::vector<ServeResult> Seq = serveWith(1);
  const std::vector<ServeResult> Par = serveWith(4);
  ASSERT_EQ(Seq.size(), Par.size());
  for (std::size_t I = 0; I != Seq.size(); ++I) {
    const SloSummary &A = Seq[I].Summary;
    const SloSummary &B = Par[I].Summary;
    SCOPED_TRACE(Seq[I].PolicyName);
    EXPECT_EQ(Seq[I].PolicyName, Par[I].PolicyName);
    EXPECT_EQ(Seq[I].EndTime, Par[I].EndTime);
    EXPECT_EQ(A.Offered, B.Offered);
    EXPECT_EQ(A.Completed, B.Completed);
    EXPECT_EQ(A.Shed, B.Shed);
    EXPECT_EQ(A.ThroughputJobsPerSec, B.ThroughputJobsPerSec);
    EXPECT_EQ(A.P50LatencyMs, B.P50LatencyMs);
    EXPECT_EQ(A.P95LatencyMs, B.P95LatencyMs);
    EXPECT_EQ(A.P99LatencyMs, B.P99LatencyMs);
    EXPECT_EQ(A.DeadlineMissRate, B.DeadlineMissRate);
    EXPECT_EQ(A.MeanServiceMs, B.MeanServiceMs);
  }
}

struct FaultedRun {
  AppReport Report;
  std::string Digest;
};

/// The hardest determinism case: a full 512x512 optimized run on the
/// vault-sharded engine with vault failures mid-flight, so spare
/// redirects, failed completions and the fault Rng all ride on the
/// parallel schedule.
FaultedRun faultedFftWith(unsigned SimThreads,
                          InputDomain Input = InputDomain::Complex) {
  SystemConfig Config = SystemConfig::forProblemSize(512);
  auto Faults = std::make_shared<FaultSpec>();
  std::string Error;
  EXPECT_TRUE(Faults->parse("seed 7\n"
                            "vault_fail 3 at 0\n"
                            "vault_fail 9 at 0.01\n",
                            &Error))
      << Error;
  Config.Mem.Faults = std::move(Faults);
  Config.SimThreads = SimThreads;
  Config.Input = Input;
  Fft2dProcessor Processor(Config);
  Tracer Trace;
  MetricsRegistry Metrics;
  Processor.setObservability(&Trace, &Metrics, 1);
  FaultedRun Run;
  Run.Report = Processor.runOptimized();
  const MetricsSnapshot Snap = Metrics.snapshot();
  Run.Digest = traceDigest(Trace, &Snap);
  return Run;
}

TEST(ParallelDeterminism, FaultedFftSimThreadCountInvariant) {
  const FaultedRun Base = faultedFftWith(1);
  // The schedule must actually bite, or the comparisons prove nothing:
  // vault 3 is offline from t=0, so its traffic redirects to the spare.
  EXPECT_GT(Base.Report.RowPhase.OfflineRedirects, 0u);
  EXPECT_LT(Base.Report.HealthyVaultsEnd, 16u);

  for (unsigned K : {2u, 4u, 8u}) {
    SCOPED_TRACE("sim threads " + std::to_string(K));
    const FaultedRun Other = faultedFftWith(K);
    const AppReport &A = Base.Report;
    const AppReport &B = Other.Report;
    // Bitwise equality throughout - doubles included. The sharded engine
    // folds per-vault float accumulators in vault order, so even the
    // summation order must match the sequential run.
    for (const auto &[P, Q] : {std::make_pair(&A.RowPhase, &B.RowPhase),
                               std::make_pair(&A.ColPhase, &B.ColPhase)}) {
      EXPECT_EQ(P->Elapsed, Q->Elapsed);
      EXPECT_EQ(P->BytesRead, Q->BytesRead);
      EXPECT_EQ(P->BytesWritten, Q->BytesWritten);
      EXPECT_EQ(P->RowActivations, Q->RowActivations);
      EXPECT_EQ(P->ThroughputGBps, Q->ThroughputGBps);
      EXPECT_EQ(P->RowHitRate, Q->RowHitRate);
      EXPECT_EQ(P->MeanReqLatencyNanos, Q->MeanReqLatencyNanos);
      EXPECT_EQ(P->MaxReqLatencyNanos, Q->MaxReqLatencyNanos);
      EXPECT_EQ(P->EccRetries, Q->EccRetries);
      EXPECT_EQ(P->ThrottleStalls, Q->ThrottleStalls);
      EXPECT_EQ(P->OfflineRedirects, Q->OfflineRedirects);
      EXPECT_EQ(P->OfflineFailed, Q->OfflineFailed);
      EXPECT_EQ(P->SimEvents, Q->SimEvents);
    }
    EXPECT_EQ(A.AppThroughputGBps, B.AppThroughputGBps);
    EXPECT_EQ(A.AppLatency, B.AppLatency);
    EXPECT_EQ(A.EstimatedTotalTime, B.EstimatedTotalTime);
    EXPECT_EQ(A.HealthyVaultsStart, B.HealthyVaultsStart);
    EXPECT_EQ(A.HealthyVaultsEnd, B.HealthyVaultsEnd);
    EXPECT_EQ(A.Replanned, B.Replanned);
    EXPECT_EQ(A.MigrationTime, B.MigrationTime);
    // The trace digest pins event order, timing and metric values; a
    // single reordered completion anywhere shows up here.
    EXPECT_EQ(Base.Digest, Other.Digest);
  }
}

/// Same invariance for the packed half-spectrum pipeline: the real-input
/// run moves an N x (N/2) intermediate over the same sharded engine and
/// faults, and must stay byte-identical at every sim-thread count.
TEST(ParallelDeterminism, FaultedRealInputSimThreadCountInvariant) {
  const FaultedRun Base = faultedFftWith(1, InputDomain::Real);
  EXPECT_EQ(Base.Report.Input, InputDomain::Real);
  EXPECT_GT(Base.Report.RowPhase.OfflineRedirects, 0u);
  // The wedge really is half-size: phase 2 moves half the complex run's
  // bytes on the identical device and faults.
  const FaultedRun Complex = faultedFftWith(1);
  EXPECT_EQ(Base.Report.ColPhase.TotalPhaseBytes * 2,
            Complex.Report.ColPhase.TotalPhaseBytes);

  for (unsigned K : {2u, 4u}) {
    SCOPED_TRACE("sim threads " + std::to_string(K));
    const FaultedRun Other = faultedFftWith(K, InputDomain::Real);
    const AppReport &A = Base.Report;
    const AppReport &B = Other.Report;
    for (const auto &[P, Q] : {std::make_pair(&A.RowPhase, &B.RowPhase),
                               std::make_pair(&A.ColPhase, &B.ColPhase)}) {
      EXPECT_EQ(P->Elapsed, Q->Elapsed);
      EXPECT_EQ(P->BytesRead, Q->BytesRead);
      EXPECT_EQ(P->BytesWritten, Q->BytesWritten);
      EXPECT_EQ(P->RowActivations, Q->RowActivations);
      EXPECT_EQ(P->ThroughputGBps, Q->ThroughputGBps);
      EXPECT_EQ(P->MeanReqLatencyNanos, Q->MeanReqLatencyNanos);
      EXPECT_EQ(P->OfflineRedirects, Q->OfflineRedirects);
      EXPECT_EQ(P->SimEvents, Q->SimEvents);
    }
    EXPECT_EQ(A.AppThroughputGBps, B.AppThroughputGBps);
    EXPECT_EQ(A.EstimatedTotalTime, B.EstimatedTotalTime);
    EXPECT_EQ(A.Replanned, B.Replanned);
    EXPECT_EQ(Base.Digest, Other.Digest);
  }
}

TEST(ParallelDeterminism, ServiceModelPrewarmMatchesSequential) {
  const MemoryConfig Mem;
  // Sequential fills.
  const ServiceModel SeqModel(Mem);
  std::vector<std::pair<std::uint64_t, unsigned>> Keys;
  for (std::uint64_t N : {256ull, 512ull, 1024ull})
    for (unsigned V : {4u, 8u, 16u})
      Keys.emplace_back(N, V);
  std::vector<ServiceEstimate> Expected;
  for (const auto &[N, V] : Keys)
    Expected.push_back(SeqModel.estimate(N, V));

  // Concurrent prewarm on a fresh model, then lock-free lookups.
  const ServiceModel ParModel(Mem);
  ThreadPool Pool(4);
  ParModel.prewarm(Keys, Pool);
  for (std::size_t I = 0; I != Keys.size(); ++I) {
    const ServiceEstimate &Got =
        ParModel.estimate(Keys[I].first, Keys[I].second);
    EXPECT_EQ(Got.PhaseTime, Expected[I].PhaseTime);
    EXPECT_EQ(Got.OverlapTime, Expected[I].OverlapTime);
    EXPECT_EQ(Got.Plan.W, Expected[I].Plan.W);
    EXPECT_EQ(Got.Plan.H, Expected[I].Plan.H);
  }
}

} // namespace
