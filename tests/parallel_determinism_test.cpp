//===- tests/parallel_determinism_test.cpp - Threaded == sequential -------===//
//
// Part of the fft3d project.
//
// The sweep executor's core guarantee: running independent simulations
// on N threads produces byte-identical results to running them on one.
// Each cell owns its EventQueue and simulator, workloads regenerate
// from fixed seeds, and the shared ServiceModel memo is populated with
// per-key deterministic values - so nothing observable may depend on
// the thread count or interleaving.
//
//===----------------------------------------------------------------------===//

#include "core/AutoTuner.h"
#include "serve/Scheduler.h"
#include "serve/ServeSimulator.h"
#include "serve/ServiceModel.h"
#include "serve/Workload.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <vector>

using namespace fft3d;

namespace {

TuneResult tuneWith(unsigned Threads) {
  const SystemConfig Config = SystemConfig::forProblemSize(1024);
  TuneOptions Options;
  Options.SweepBlockShapes = true;
  Options.SweepSkew = true;
  Options.Threads = Threads;
  const AutoTuner Tuner(Config, Options);
  return Tuner.tune();
}

TEST(ParallelDeterminism, AutoTunerThreadCountInvariant) {
  const TuneResult Seq = tuneWith(1);
  const TuneResult Par = tuneWith(4);
  ASSERT_EQ(Seq.Candidates.size(), Par.Candidates.size());
  ASSERT_FALSE(Seq.Candidates.empty());
  for (std::size_t I = 0; I != Seq.Candidates.size(); ++I) {
    const TuneCandidate &A = Seq.Candidates[I];
    const TuneCandidate &B = Par.Candidates[I];
    EXPECT_EQ(A.Name, B.Name) << "rank " << I;
    EXPECT_EQ(A.W, B.W);
    EXPECT_EQ(A.H, B.H);
    EXPECT_EQ(A.Skew, B.Skew);
    // Bitwise-equal metrics, not approximately equal: the cells are
    // independent simulations, so parallelism must not perturb them.
    EXPECT_EQ(A.Metrics.AppGBps, B.Metrics.AppGBps);
    EXPECT_EQ(A.Metrics.PicojoulesPerBit, B.Metrics.PicojoulesPerBit);
  }
}

std::vector<ServeResult> serveWith(unsigned Threads) {
  const MemoryConfig Mem;
  const ServiceModel Model(Mem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::vector<PolicyKind> Kinds = {
      PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::PriorityAging,
      PolicyKind::VaultPartition};
  std::vector<ServeResult> Results(Kinds.size());
  ThreadPool Pool(Threads);
  Pool.parallelFor(Kinds.size(), [&](std::size_t I) {
    const ServeConfig Config;
    TraceWorkload Load(
        generatePoissonTrace(Mix, 60, 300.0, /*Seed=*/7, Model));
    const auto Policy = createPolicy(Kinds[I]);
    ServeSimulator Sim(Config, Model);
    Results[I] = Sim.run(Load, *Policy);
  });
  return Results;
}

TEST(ParallelDeterminism, ServePoliciesThreadCountInvariant) {
  const std::vector<ServeResult> Seq = serveWith(1);
  const std::vector<ServeResult> Par = serveWith(4);
  ASSERT_EQ(Seq.size(), Par.size());
  for (std::size_t I = 0; I != Seq.size(); ++I) {
    const SloSummary &A = Seq[I].Summary;
    const SloSummary &B = Par[I].Summary;
    SCOPED_TRACE(Seq[I].PolicyName);
    EXPECT_EQ(Seq[I].PolicyName, Par[I].PolicyName);
    EXPECT_EQ(Seq[I].EndTime, Par[I].EndTime);
    EXPECT_EQ(A.Offered, B.Offered);
    EXPECT_EQ(A.Completed, B.Completed);
    EXPECT_EQ(A.Shed, B.Shed);
    EXPECT_EQ(A.ThroughputJobsPerSec, B.ThroughputJobsPerSec);
    EXPECT_EQ(A.P50LatencyMs, B.P50LatencyMs);
    EXPECT_EQ(A.P95LatencyMs, B.P95LatencyMs);
    EXPECT_EQ(A.P99LatencyMs, B.P99LatencyMs);
    EXPECT_EQ(A.DeadlineMissRate, B.DeadlineMissRate);
    EXPECT_EQ(A.MeanServiceMs, B.MeanServiceMs);
  }
}

TEST(ParallelDeterminism, ServiceModelPrewarmMatchesSequential) {
  const MemoryConfig Mem;
  // Sequential fills.
  const ServiceModel SeqModel(Mem);
  std::vector<std::pair<std::uint64_t, unsigned>> Keys;
  for (std::uint64_t N : {256ull, 512ull, 1024ull})
    for (unsigned V : {4u, 8u, 16u})
      Keys.emplace_back(N, V);
  std::vector<ServiceEstimate> Expected;
  for (const auto &[N, V] : Keys)
    Expected.push_back(SeqModel.estimate(N, V));

  // Concurrent prewarm on a fresh model, then lock-free lookups.
  const ServiceModel ParModel(Mem);
  ThreadPool Pool(4);
  ParModel.prewarm(Keys, Pool);
  for (std::size_t I = 0; I != Keys.size(); ++I) {
    const ServiceEstimate &Got =
        ParModel.estimate(Keys[I].first, Keys[I].second);
    EXPECT_EQ(Got.PhaseTime, Expected[I].PhaseTime);
    EXPECT_EQ(Got.OverlapTime, Expected[I].OverlapTime);
    EXPECT_EQ(Got.Plan.W, Expected[I].Plan.W);
    EXPECT_EQ(Got.Plan.H, Expected[I].Plan.H);
  }
}

} // namespace
