//===- tests/mem3d_trace_file_test.cpp - Trace capture/replay tests -------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/TraceFile.h"
#include "sim/EventQueue.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fft3d;

namespace {

std::vector<TraceRecord> sampleRecords() {
  return {
      {0, false, 0x0, 8},
      {1600, false, 0x2000, 8192},
      {5000, true, 0x40000, 64},
  };
}

} // namespace

TEST(TraceFile, WriteReadRoundTrip) {
  const std::vector<TraceRecord> Records = sampleRecords();
  std::stringstream SS;
  writeTrace(SS, Records);
  std::vector<TraceRecord> Back;
  EXPECT_TRUE(readTrace(SS, Back));
  EXPECT_EQ(Back, Records);
}

TEST(TraceFile, SkipsCommentsAndBlankLines) {
  std::stringstream SS("# header\n\n100 R 0x10 8\n# tail\n");
  std::vector<TraceRecord> Records;
  EXPECT_TRUE(readTrace(SS, Records));
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Addr, 0x10u);
  EXPECT_EQ(Records[0].Time, 100u);
}

TEST(TraceFile, ReportsMalformedLine) {
  std::stringstream SS("100 R 0x10 8\nbogus line here x\n");
  std::vector<TraceRecord> Records;
  std::uint64_t ErrorLine = 0;
  EXPECT_FALSE(readTrace(SS, Records, &ErrorLine));
  EXPECT_EQ(ErrorLine, 2u);
  EXPECT_EQ(Records.size(), 1u);
}

TEST(TraceFile, RejectsBadDirectionAndZeroBytes) {
  std::stringstream A("100 X 0x10 8\n");
  std::vector<TraceRecord> Records;
  EXPECT_FALSE(readTrace(A, Records));
  std::stringstream B("100 R 0x10 0\n");
  Records.clear();
  EXPECT_FALSE(readTrace(B, Records));
}

TEST(TraceFile, CaptureSeesSubmittedRequests) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  TraceCapture Capture(Mem, Events);
  for (unsigned I = 0; I != 5; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
    Req.Bytes = 128;
    Req.IsWrite = I % 2 == 1;
    Mem.submit(Req, {});
  }
  Events.run();
  ASSERT_EQ(Capture.records().size(), 5u);
  EXPECT_FALSE(Capture.records()[0].IsWrite);
  EXPECT_TRUE(Capture.records()[1].IsWrite);
  Capture.detach();
  MemRequest Req;
  Req.Bytes = 8;
  Mem.submit(Req, {});
  Events.run();
  EXPECT_EQ(Capture.records().size(), 5u);
}

TEST(TraceFile, CaptureThenReplayReproducesTraffic) {
  // Capture a short run, replay it into a fresh device, compare stats.
  std::vector<TraceRecord> Records;
  {
    EventQueue Events;
    const MemoryConfig Config;
    Memory3D Mem(Events, Config);
    TraceCapture Capture(Mem, Events);
    for (unsigned I = 0; I != 32; ++I) {
      MemRequest Req;
      Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
      Req.Bytes = static_cast<std::uint32_t>(Config.Geo.RowBufferBytes);
      Mem.submit(Req, {});
    }
    Events.run();
    Records = Capture.records();
  }
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  const ReplayResult R = replayTrace(Mem, Events, Records);
  EXPECT_EQ(R.Requests, 32u);
  EXPECT_EQ(R.Bytes, 32u * Config.Geo.RowBufferBytes);
  EXPECT_EQ(Mem.stats().total().totalBytes(), R.Bytes);
  EXPECT_GT(R.AchievedGBps, 60.0);
}

TEST(TraceFile, WindowedReplayMeasuresRate) {
  std::vector<TraceRecord> Records;
  for (unsigned I = 0; I != 64; ++I)
    Records.push_back({0, false, PhysAddr(I) * 8192, 8192});
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  const ReplayResult R =
      replayTrace(Mem, Events, Records, /*HonorTimestamps=*/false, 32);
  EXPECT_EQ(R.Requests, 64u);
  EXPECT_GT(R.AchievedGBps, 60.0);
}
