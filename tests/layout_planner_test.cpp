//===- tests/layout_planner_test.cpp - Eq. 1 planner tests -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/LayoutPlanner.h"

#include "layout/BlockDynamicLayout.h"
#include "mem3d/Address.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace fft3d;

namespace {

LayoutPlanner defaultPlanner() {
  return LayoutPlanner(Geometry(), Timing(), /*ElementBytes=*/8);
}

} // namespace

TEST(LayoutPlanner, RegimeBoundaryMatchesHand) {
  // s = 1024 elements, b = 8 banks, t_in_row/t_diff_row = 1.6/40.
  // m* = 1024 * 8 * 1.6 / 40 = 327.68.
  EXPECT_NEAR(defaultPlanner().bufferRegimeBoundary(), 327.68, 1e-6);
}

TEST(LayoutPlanner, BankLimitedRegimeForPaperSizes) {
  const LayoutPlanner P = defaultPlanner();
  // m defaults to N; 2048 and 4096 sit between m* and s*b = 8192.
  for (std::uint64_t N : {2048ull, 4096ull}) {
    const BlockPlan Plan = P.plan(N, 16);
    EXPECT_EQ(Plan.Regime, PlanRegime::BankLimited) << N;
    // Raw h = n_v * t_diff_bank / t_in_row = 16 * 16 / 1.6 = 160.
    EXPECT_NEAR(Plan.RawH, 160.0, 1e-9);
    EXPECT_EQ(Plan.H, 128u);
    EXPECT_EQ(Plan.W, 8u);
  }
}

TEST(LayoutPlanner, RowConflictRegimeAtLargeM) {
  const LayoutPlanner P = defaultPlanner();
  const BlockPlan Plan = P.plan(8192, 16); // m = 8192 = s*b.
  EXPECT_EQ(Plan.Regime, PlanRegime::RowConflictLimited);
  // Raw h = 16 * 40 / 1.6 = 400 -> 256.
  EXPECT_NEAR(Plan.RawH, 400.0, 1e-9);
  EXPECT_EQ(Plan.H, 256u);
  EXPECT_EQ(Plan.W, 4u);
}

TEST(LayoutPlanner, BufferLimitedRegimeAtSmallM) {
  const LayoutPlanner P = defaultPlanner();
  const BlockPlan Plan = P.plan(2048, 16, /*ColumnStreams=*/64);
  EXPECT_EQ(Plan.Regime, PlanRegime::BufferLimited);
  // Raw h = 16 * 1024 * 8 / 64 = 2048; clamped to s = 1024 -> w = 1.
  EXPECT_NEAR(Plan.RawH, 2048.0, 1e-9);
  EXPECT_EQ(Plan.H, 1024u);
  EXPECT_EQ(Plan.W, 1u);
}

TEST(LayoutPlanner, BlockAlwaysFillsRowBuffer) {
  const LayoutPlanner P = defaultPlanner();
  for (std::uint64_t N : {256ull, 512ull, 1024ull, 2048ull, 4096ull, 8192ull})
    for (unsigned Nv : {1u, 2u, 4u, 8u, 16u}) {
      const BlockPlan Plan = P.plan(N, Nv);
      EXPECT_EQ(Plan.H * Plan.W, 1024u) << "N=" << N << " nv=" << Nv;
      EXPECT_LE(Plan.H, N);
    }
}

TEST(LayoutPlanner, HGrowsWithVaultParallelism) {
  const LayoutPlanner P = defaultPlanner();
  std::uint64_t PrevH = 0;
  for (unsigned Nv : {1u, 2u, 4u, 8u, 16u}) {
    const BlockPlan Plan = P.plan(2048, Nv);
    EXPECT_GE(Plan.H, PrevH);
    PrevH = Plan.H;
  }
}

TEST(LayoutPlanner, HGrowsWithRowConflictCost) {
  Timing Slow;
  Slow.TDiffRow = nanosToPicos(80.0);
  const LayoutPlanner Fast(Geometry(), Timing(), 8);
  const LayoutPlanner SlowP(Geometry(), Slow, 8);
  // At m >= s*b the raw h scales with t_diff_row.
  EXPECT_GT(SlowP.plan(8192, 16).RawH, Fast.plan(8192, 16).RawH);
}

TEST(LayoutPlanner, CreateLayoutHonorsPlan) {
  const LayoutPlanner P = defaultPlanner();
  const BlockPlan Plan = P.plan(2048, 16);
  const auto Layout = P.createLayout(2048, 16, /*Base=*/8192);
  ASSERT_NE(Layout, nullptr);
  EXPECT_EQ(Layout->blockWidth(), Plan.W);
  EXPECT_EQ(Layout->blockHeight(), Plan.H);
  EXPECT_EQ(Layout->base(), 8192u);
  EXPECT_EQ(Layout->blockBytes(), Geometry().RowBufferBytes);
}

TEST(LayoutPlanner, RegimeNamesAreStable) {
  EXPECT_STREQ(planRegimeName(PlanRegime::BufferLimited), "buffer-limited");
  EXPECT_STREQ(planRegimeName(PlanRegime::BankLimited), "bank-limited");
  EXPECT_STREQ(planRegimeName(PlanRegime::RowConflictLimited),
               "row-conflict-limited");
}

TEST(LayoutPlanner, RejectsMatricesSmallerThanOneRowBuffer) {
  // 16 x 16 x 8 B = 2 KiB < 8 KiB row buffer: no valid block shape.
  EXPECT_DEATH(defaultPlanner().plan(16, 16), "row buffer");
}

TEST(LayoutPlanner, NarrowMatrixClampsWidthIntoRange) {
  // N = 32: the matrix is exactly one row buffer; h is forced up so that
  // w = s/h fits the 32-wide matrix.
  const BlockPlan Plan = defaultPlanner().plan(32, 16);
  EXPECT_LE(Plan.W, 32u);
  EXPECT_LE(Plan.H, 32u);
  EXPECT_EQ(Plan.W * Plan.H, 1024u);
}

TEST(LayoutPlanner, PackedPlanSolvesTheWedgeRectangle) {
  const LayoutPlanner P = defaultPlanner();
  for (std::uint64_t N : {256ull, 1024ull, 2048ull, 4096ull, 8192ull})
    for (unsigned Nv : {1u, 4u, 16u}) {
      const BlockPlan Packed = P.planPacked(N, Nv);
      // planPacked is exactly Eq. 1 over the N x (N/2) wedge with the
      // column-stream count following the narrower intermediate.
      const BlockPlan Rect = P.planRect(N, N / 2, Nv);
      EXPECT_EQ(Packed.H, Rect.H) << "N=" << N << " nv=" << Nv;
      EXPECT_EQ(Packed.W, Rect.W);
      EXPECT_EQ(Packed.Regime, Rect.Regime);
      // The blocks still fill one row buffer and fit the wedge.
      EXPECT_EQ(Packed.H * Packed.W, 1024u);
      EXPECT_LE(Packed.H, N);
      EXPECT_LE(Packed.W, N / 2);
      EXPECT_EQ(N % Packed.H, 0u);
      EXPECT_EQ((N / 2) % Packed.W, 0u);
    }
}

TEST(LayoutPlanner, PackedPlanBalancesVaults) {
  // Property: materialize the packed wedge's layout and decode every
  // block base address - the cyclic skew must spread blocks uniformly
  // across all vaults (exact balance, since block counts here are
  // multiples of the vault count).
  const Geometry Geo;
  const LayoutPlanner P = defaultPlanner();
  const AddressMapper Mapper(Geo, AddressMapKind::ColVaultBankRow);
  for (std::uint64_t N : {1024ull, 2048ull}) {
    const BlockPlan Plan = P.planPacked(N, Geo.NumVaults);
    const BlockDynamicLayout Layout(N, N / 2, /*ElementBytes=*/8,
                                    /*Base=*/0, Plan.W, Plan.H);
    std::vector<std::uint64_t> PerVault(Geo.NumVaults, 0);
    for (std::uint64_t BR = 0; BR != Layout.blocksPerCol(); ++BR)
      for (std::uint64_t BC = 0; BC != Layout.blocksPerRow(); ++BC)
        ++PerVault[Mapper.decode(Layout.blockBase(BR, BC)).Vault];
    const std::uint64_t Total = Layout.blocksPerCol() * Layout.blocksPerRow();
    const auto [MinIt, MaxIt] =
        std::minmax_element(PerVault.begin(), PerVault.end());
    EXPECT_EQ(*MinIt, *MaxIt) << "N=" << N;
    EXPECT_EQ(*MinIt, Total / Geo.NumVaults);
  }
}

TEST(LayoutPlanner, PackedDegradedReplansForSurvivors) {
  const LayoutPlanner P = defaultPlanner();
  std::vector<bool> Online(16, true);
  Online[3] = Online[9] = false;
  const DegradedPlan D = P.planPackedDegraded(2048, Online);
  EXPECT_EQ(D.HealthyVaults, 14u);
  // The degraded plan is the packed wedge's Eq. 1 at n_v' = 14.
  const BlockPlan Want = P.planPacked(2048, 14);
  EXPECT_EQ(D.Plan.H, Want.H);
  EXPECT_EQ(D.Plan.W, Want.W);
  ASSERT_EQ(D.VaultMap.size(), 16u);
  // Healthy vaults map to themselves; failed ones to a healthy spare.
  for (unsigned V = 0; V != 16; ++V) {
    if (Online[V])
      EXPECT_EQ(D.VaultMap[V], V);
    else {
      EXPECT_NE(D.VaultMap[V], V);
      EXPECT_TRUE(Online[D.VaultMap[V]]);
    }
  }
}
