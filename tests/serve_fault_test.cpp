//===- tests/serve_fault_test.cpp - Serving layer under fault injection ---===//
//
// Part of the fft3d project.
//
// The serving loop's graceful-degradation machinery: the health monitor,
// capped-exponential retry of transient job failures, brownout shedding
// with hysteresis, degraded-completion accounting, and byte-identical
// replay of a faulted serving run.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSimulator.h"
#include "serve/fleet/FleetSimulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace fft3d;

namespace {

/// Shared fast service model: small simulation budget, default device.
ServiceModel &model() {
  static ServiceModel Model(MemoryConfig(), /*MaxSimBytes=*/2ull << 20,
                            /*MaxSimOps=*/10000);
  return Model;
}

std::shared_ptr<const FaultSpec> spec(const std::string &Text) {
  auto Spec = std::make_shared<FaultSpec>();
  std::string Error;
  EXPECT_TRUE(Spec->parse(Text, &Error)) << Error;
  return Spec;
}

JobRequest job(std::uint64_t Id, Picos Arrival, std::uint64_t N,
               unsigned Priority = 1, Picos Deadline = 0) {
  JobRequest J;
  J.Id = Id;
  J.N = N;
  J.Priority = Priority;
  J.Arrival = Arrival;
  J.Deadline = Deadline;
  return J;
}

/// An open-loop trace of \p Count N=512 jobs spaced \p Gap apart.
std::vector<JobRequest> steadyTrace(unsigned Count, Picos Gap) {
  std::vector<JobRequest> Trace;
  for (unsigned I = 0; I != Count; ++I)
    Trace.push_back(job(I + 1, static_cast<Picos>(I) * Gap, 512));
  return Trace;
}

ServeConfig faultyConfig(const std::string &SpecText) {
  ServeConfig Config;
  Config.Health =
      std::make_shared<HealthMonitor>(spec(SpecText), model().totalVaults());
  return Config;
}

void expectSummariesIdentical(const SloSummary &A, const SloSummary &B) {
  EXPECT_EQ(A.Offered, B.Offered);
  EXPECT_EQ(A.Completed, B.Completed);
  EXPECT_EQ(A.Shed, B.Shed);
  EXPECT_EQ(A.Retries, B.Retries);
  EXPECT_EQ(A.FailedDropped, B.FailedDropped);
  EXPECT_EQ(A.BrownoutSheds, B.BrownoutSheds);
  EXPECT_EQ(A.DegradedCompletions, B.DegradedCompletions);
  // Doubles compare exactly: identical event schedules, identical sums.
  EXPECT_EQ(A.ThroughputJobsPerSec, B.ThroughputJobsPerSec);
  EXPECT_EQ(A.P50LatencyMs, B.P50LatencyMs);
  EXPECT_EQ(A.P95LatencyMs, B.P95LatencyMs);
  EXPECT_EQ(A.P99LatencyMs, B.P99LatencyMs);
  EXPECT_EQ(A.MeanServiceMs, B.MeanServiceMs);
  EXPECT_EQ(A.DeadlineMissRate, B.DeadlineMissRate);
  EXPECT_EQ(A.ShedRate, B.ShedRate);
}

} // namespace

//===----------------------------------------------------------------------===//
// Policies and the monitor
//===----------------------------------------------------------------------===//

TEST(RetryPolicy, BackoffIsCappedExponential) {
  const RetryPolicy Retry;
  EXPECT_EQ(Retry.backoffFor(1), PicosPerMilli);
  EXPECT_EQ(Retry.backoffFor(2), 2 * PicosPerMilli);
  EXPECT_EQ(Retry.backoffFor(3), 4 * PicosPerMilli);
  EXPECT_EQ(Retry.backoffFor(5), 16 * PicosPerMilli);
  // Far past the cap: saturates instead of overflowing.
  EXPECT_EQ(Retry.backoffFor(200), 16 * PicosPerMilli);
}

TEST(HealthMonitor, InertWithoutAFaultSpec) {
  const HealthMonitor Null(nullptr, 16);
  const HealthMonitor SeedOnly(spec("seed 5\n"), 16);
  for (const HealthMonitor *M : {&Null, &SeedOnly}) {
    EXPECT_FALSE(M->active());
    EXPECT_EQ(M->healthyVaults(0), 16u);
    EXPECT_DOUBLE_EQ(M->throttleSlowdown(0), 1.0);
    EXPECT_DOUBLE_EQ(M->capacityFactor(0), 1.0);
    EXPECT_FALSE(M->jobTransientlyFails(1, 0));
  }
}

TEST(HealthMonitor, ReportsDegradationFromTheSpec) {
  const HealthMonitor M(
      spec("vault_fail 0 at 0\nvault_fail 1 at 0\n"
           "throttle from 1 until 2 period 100 duty 50\n"),
      16);
  EXPECT_TRUE(M.active());
  EXPECT_EQ(M.healthyVaults(0), 14u);
  // Outside the throttle window only the vault loss remains.
  EXPECT_DOUBLE_EQ(M.throttleSlowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(M.capacityFactor(0), 14.0 / 16.0);
  // Inside it, service stretches by 1/(1 - duty); the vault term is not
  // double-counted.
  EXPECT_DOUBLE_EQ(M.throttleSlowdown(PicosPerMilli + 1), 2.0);
  EXPECT_DOUBLE_EQ(M.capacityFactor(PicosPerMilli + 1), 14.0 / 16.0 * 0.5);
}

//===----------------------------------------------------------------------===//
// Retry and drop
//===----------------------------------------------------------------------===//

TEST(ServeFaults, TransientFailuresRetryAndEventuallyComplete) {
  // A moderate transient rate: some dispatches fail and re-enter with
  // backoff, but every job completes within its four attempts.
  ServeConfig Config = faultyConfig("seed 11\njob_fail_rate 0.3\n");
  ServeSimulator Sim(Config, model());
  TraceWorkload Load(steadyTrace(40, 50 * PicosPerMilli));
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult R = Sim.run(Load, *Policy);

  EXPECT_EQ(R.Summary.Offered, 40u);
  EXPECT_GT(R.Summary.Retries, 0u);
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 40u);
  EXPECT_EQ(R.Summary.FailedDropped, R.Summary.Shed);
  // At rate 0.3 the chance of four straight failures is ~0.8%; the bulk
  // of the load must land.
  EXPECT_GT(R.Summary.Completed, 30u);
}

TEST(ServeFaults, ExhaustedRetriesDropTheJob) {
  // At a 0.99 failure rate nearly every job burns all four attempts and
  // is dropped as shed-failed; the run still drains cleanly.
  ServeConfig Config = faultyConfig("seed 11\njob_fail_rate 0.99\n");
  ServeSimulator Sim(Config, model());
  TraceWorkload Load(steadyTrace(20, 50 * PicosPerMilli));
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult R = Sim.run(Load, *Policy);

  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 20u);
  EXPECT_GT(R.Summary.FailedDropped, 0u);
  // Every dropped job paid MaxAttempts - 1 retries first.
  const RetryPolicy Retry;
  EXPECT_GE(R.Summary.Retries,
            R.Summary.FailedDropped * (Retry.MaxAttempts - 1));
}

//===----------------------------------------------------------------------===//
// Degraded capacity
//===----------------------------------------------------------------------===//

TEST(ServeFaults, VaultLossMarksEveryCompletionDegraded) {
  // Half the device is gone at t=0: grants shrink to the survivors and
  // every completion is flagged degraded.
  std::string Text;
  for (unsigned V = 0; V != 8; ++V)
    Text += "vault_fail " + std::to_string(V) + " at 0\n";
  ServeConfig Faulty = faultyConfig(Text);
  ServeConfig Healthy;

  TraceWorkload Load(steadyTrace(10, PicosPerMilli));
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult Degraded =
      ServeSimulator(Faulty, model()).run(Load, *Policy);
  const ServeResult Clean =
      ServeSimulator(Healthy, model()).run(Load, *Policy);

  EXPECT_EQ(Degraded.Summary.Completed, 10u);
  EXPECT_EQ(Degraded.Summary.DegradedCompletions, 10u);
  EXPECT_EQ(Clean.Summary.DegradedCompletions, 0u);
}

TEST(ServeFaults, ThrottlingStretchesServiceAndTheMakespan) {
  // A run-long 50% duty cycle doubles every service time: the same trace
  // takes measurably longer end to end than on the healthy machine.
  ServeConfig Throttled = faultyConfig(
      "throttle from 0 until 1000000 period 100 duty 50\n");
  ServeConfig Healthy;

  // Everything arrives at t=0 so the makespan is pure serialized service.
  TraceWorkload Load(steadyTrace(10, 0));
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult Slow =
      ServeSimulator(Throttled, model()).run(Load, *Policy);
  const ServeResult Clean =
      ServeSimulator(Healthy, model()).run(Load, *Policy);

  EXPECT_EQ(Slow.Summary.Completed, 10u);
  EXPECT_EQ(Slow.Summary.DegradedCompletions, 10u);
  // FCFS serializes the trace, so the makespan scales with the service
  // stretch: close to 2x, and certainly well past the healthy run.
  EXPECT_GT(Slow.EndTime, static_cast<Picos>(1.8 *
                                             static_cast<double>(Clean.EndTime)));
}

//===----------------------------------------------------------------------===//
// Brownout
//===----------------------------------------------------------------------===//

TEST(ServeFaults, BrownoutShedsBackgroundThenRecovers) {
  // Deadline misses drive the window over the entry threshold; while the
  // brownout lasts, background (priority >= 2) arrivals are shed; on-time
  // completions then drain the window and the mode exits.
  ServeConfig Config;
  Config.Brownout.Enabled = true;
  Config.Brownout.Window = 4;
  ServeSimulator Sim(Config, model());

  const Picos Gap = 100 * PicosPerMilli;
  std::vector<JobRequest> Trace;
  std::uint64_t Id = 0;
  auto Push = [&](unsigned Priority, Picos DeadlineAfterArrival) {
    ++Id;
    const Picos Arrival = static_cast<Picos>(Id) * Gap;
    Trace.push_back(job(Id, Arrival, 512, Priority,
                        DeadlineAfterArrival == 0
                            ? 0
                            : (DeadlineAfterArrival == 1
                                   ? 1
                                   : Arrival + DeadlineAfterArrival)));
  };
  // Phase A: six urgent jobs whose deadlines already passed - all miss.
  for (unsigned I = 0; I != 6; ++I)
    Push(0, /*DeadlineAfterArrival=*/1);
  // Phase B: background jobs arriving mid-brownout.
  for (unsigned I = 0; I != 2; ++I)
    Push(3, 0);
  // Phase C: urgent jobs with generous deadlines - all hit, window drains.
  for (unsigned I = 0; I != 6; ++I)
    Push(0, PicosPerSecond);
  // Phase D: background again, after recovery.
  for (unsigned I = 0; I != 2; ++I)
    Push(3, 0);

  TraceWorkload Load(Trace);
  const auto Policy = createPolicy(PolicyKind::Fcfs);
  const ServeResult R = Sim.run(Load, *Policy);

  EXPECT_EQ(R.BrownoutEpisodes, 1u);
  EXPECT_EQ(R.ShedBrownout, 2u);
  EXPECT_EQ(R.Summary.BrownoutSheds, 2u);
  // Phase D's background jobs were admitted again: 6 + 6 + 2 completions.
  EXPECT_EQ(R.Summary.Completed, 14u);

  // The same trace with brownout disabled sheds nothing.
  ServeConfig Plain;
  ServeSimulator PlainSim(Plain, model());
  const ServeResult P = PlainSim.run(Load, *Policy);
  EXPECT_EQ(P.Summary.BrownoutSheds, 0u);
  EXPECT_EQ(P.Summary.Completed, 16u);
  EXPECT_EQ(P.BrownoutEpisodes, 0u);
}

//===----------------------------------------------------------------------===//
// Deterministic replay
//===----------------------------------------------------------------------===//

TEST(ServeFaults, FaultedRunReplaysByteIdentically) {
  // Identical spec + seed + workload: the whole SloSummary matches byte
  // for byte across two independent simulator instances.
  const std::string Text = "seed 21\n"
                           "vault_fail 4 at 10\nvault_recover 4 at 200\n"
                           "throttle from 0 until 500 period 100 duty 25\n"
                           "job_fail_rate 0.2\n";
  TraceWorkload Load(steadyTrace(30, 20 * PicosPerMilli));
  const auto Policy = createPolicy(PolicyKind::VaultPartition);

  ServeConfig ConfigA = faultyConfig(Text);
  ConfigA.Brownout.Enabled = true;
  ServeConfig ConfigB = faultyConfig(Text);
  ConfigB.Brownout.Enabled = true;

  const ServeResult A = ServeSimulator(ConfigA, model()).run(Load, *Policy);
  const ServeResult B = ServeSimulator(ConfigB, model()).run(Load, *Policy);

  EXPECT_EQ(A.EndTime, B.EndTime);
  EXPECT_EQ(A.ShedBrownout, B.ShedBrownout);
  EXPECT_EQ(A.BrownoutEpisodes, B.BrownoutEpisodes);
  expectSummariesIdentical(A.Summary, B.Summary);
  // The faults actually fired: this is not a vacuous comparison.
  EXPECT_GT(A.Summary.Retries + A.Summary.DegradedCompletions, 0u);
}

//===----------------------------------------------------------------------===//
// Fleet front-end under cluster faults
//===----------------------------------------------------------------------===//

TEST(FleetFaults, StackFailDrainsToSurvivorsAndInvalidatesItsPlans) {
  // Stack 1 dies mid-run and recovers later. The fleet must (a) pull its
  // queued jobs over to the survivors, (b) drop its stack-keyed plan
  // entries, and (c) key its post-recovery plans by the new health epoch
  // so the stale entries are never hit again.
  const std::string Text = "stack_fail 1 at 50\nstack_recover 1 at 400\n";
  FleetConfig Config;
  Config.NumStacks = 3;
  Config.QueueCapacity = 32;
  Config.CacheMode = PlanCacheMode::PerStack; // stack-keyed entries exist
  Config.Health = std::make_shared<HealthMonitor>(
      spec(Text), model().totalVaults(), /*NumStacks=*/3);

  // A burst well past the three stacks' instantaneous capacity, so stack
  // 1 has a queue to drain when it dies at t = 50 ms.
  PoissonArrivalStream Stream(mixedWorkloadTemplates(), 250, 2000.0, 13,
                              model(), 6);
  const FleetResult R = FleetSimulator(Config, model()).run(Stream);

  // Nothing is lost: every offered job completes or is counted shed.
  EXPECT_EQ(R.Summary.Offered, 250u);
  EXPECT_EQ(R.Summary.Completed + R.Summary.Shed, 250u);
  // The dead stack's queue moved to the survivors...
  EXPECT_GT(R.Drained, 0u);
  EXPECT_GT(R.Stacks[1].DrainedJobs, 0u);
  // ...and its plan entries were dropped on the health edge.
  EXPECT_GT(R.Cache.Invalidations, 0u);
  // The health epoch advanced (fail + recover = two transitions).
  EXPECT_EQ(R.Stacks[1].HealthEpoch, 2u);
  EXPECT_GT(R.Summary.Completed, 0u);
}

TEST(FleetFaults, FaultedFleetRunIsIdenticalAcrossSimThreads) {
  // The acceptance property behind the CI smoke: the whole faulted fleet
  // result - schedules, drains, cache traffic, latencies - is
  // bit-identical whether the service model measured with 1, 2 or 4
  // vault-shard threads.
  const std::string Text = "stack_fail 2 at 30\nstack_recover 2 at 200\n"
                           "throttle from 0 until 100 period 10 duty 25\n";
  std::vector<FleetResult> Results;
  for (const unsigned SimThreads : {1u, 2u, 4u}) {
    ServiceModel Model(MemoryConfig(), /*MaxSimBytes=*/2ull << 20,
                       /*MaxSimOps=*/10000, SimThreads);
    FleetConfig Config;
    Config.NumStacks = 4;
    Config.QueueCapacity = 16;
    Config.Health = std::make_shared<HealthMonitor>(
        spec(Text), Model.totalVaults(), /*NumStacks=*/4);
    Config.Brownout.Enabled = true;
    PoissonArrivalStream Stream(mixedWorkloadTemplates(), 200, 1000.0, 29,
                                Model, 5);
    Results.push_back(FleetSimulator(Config, Model).run(Stream));
  }
  const FleetResult &Base = Results[0];
  EXPECT_GT(Base.Drained + Base.Summary.Shed, 0u);
  for (std::size_t I = 1; I != Results.size(); ++I) {
    const FleetResult &R = Results[I];
    EXPECT_EQ(R.EndTime, Base.EndTime);
    EXPECT_EQ(R.LastCompletion, Base.LastCompletion);
    EXPECT_EQ(R.Summary.Completed, Base.Summary.Completed);
    EXPECT_EQ(R.Summary.Shed, Base.Summary.Shed);
    EXPECT_EQ(R.Drained, Base.Drained);
    EXPECT_EQ(R.Cache.Hits, Base.Cache.Hits);
    EXPECT_EQ(R.Cache.Misses, Base.Cache.Misses);
    EXPECT_EQ(R.Cache.Invalidations, Base.Cache.Invalidations);
    // Doubles compare exactly: identical schedules, identical sums.
    EXPECT_EQ(R.Summary.ThroughputJobsPerSec,
              Base.Summary.ThroughputJobsPerSec);
    EXPECT_EQ(R.Summary.P50LatencyMs, Base.Summary.P50LatencyMs);
    EXPECT_EQ(R.Summary.P99LatencyMs, Base.Summary.P99LatencyMs);
    EXPECT_EQ(R.Summary.DeadlineMissRate, Base.Summary.DeadlineMissRate);
    for (unsigned S = 0; S != 4; ++S) {
      EXPECT_EQ(R.Stacks[S].RoutedJobs, Base.Stacks[S].RoutedJobs);
      EXPECT_EQ(R.Stacks[S].CompletedJobs, Base.Stacks[S].CompletedJobs);
      EXPECT_EQ(R.Stacks[S].DrainedJobs, Base.Stacks[S].DrainedJobs);
    }
  }
}
