//===- tools/fft3d_trace_gen.cpp - Canonical trace generator --------------===//
//
// Part of the fft3d project.
//
// Emits the canonical access patterns of the 2D FFT as replayable trace
// files (see docs/UsingTheSimulator.md). Timestamps are synthesized at a
// fixed issue rate so --replay reproduces a paced stream; --replay-asap
// ignores them.
//
//   fft3d_trace_gen --pattern=rowscan|colscan|blocks|chunks|tiles
//                   [--n=2048] [--ops=4096] [--gbps=16] > out.trace
//
//===----------------------------------------------------------------------===//

#include "core/AccessTrace.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "mem3d/TraceFile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

using namespace fft3d;

namespace {

[[noreturn]] void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --pattern=rowscan|colscan|blocks|chunks|tiles\n"
               "  [--n=SIZE] [--ops=COUNT] [--gbps=RATE] [--write]\n",
               Prog);
  std::exit(2);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Pattern;
  std::uint64_t N = 2048;
  std::uint64_t MaxOps = 4096;
  double GBps = 16.0;
  bool IsWrite = false;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--pattern=", 0) == 0)
      Pattern = Arg.substr(10);
    else if (Arg.rfind("--n=", 0) == 0)
      N = std::strtoull(Arg.c_str() + 4, nullptr, 10);
    else if (Arg.rfind("--ops=", 0) == 0)
      MaxOps = std::strtoull(Arg.c_str() + 6, nullptr, 10);
    else if (Arg.rfind("--gbps=", 0) == 0)
      GBps = std::strtod(Arg.c_str() + 7, nullptr);
    else if (Arg == "--write")
      IsWrite = true;
    else
      usage(Argv[0]);
  }
  if (Pattern.empty() || GBps <= 0.0)
    usage(Argv[0]);

  const Geometry Geo;
  const Timing Time;
  const RowMajorLayout RowMajor(N, N, 8, 0);
  std::unique_ptr<BlockDynamicLayout> Blocks;
  std::unique_ptr<TraceSource> Source;
  if (Pattern == "rowscan") {
    Source = std::make_unique<RowScanTrace>(
        RowMajor, static_cast<std::uint32_t>(Geo.RowBufferBytes));
  } else if (Pattern == "colscan") {
    Source = std::make_unique<ColScanTrace>(
        RowMajor, static_cast<std::uint32_t>(Geo.RowBufferBytes));
  } else if (Pattern == "tiles") {
    Source = std::make_unique<TileScanTrace>(RowMajor, 32, 32);
  } else if (Pattern == "blocks" || Pattern == "chunks") {
    const LayoutPlanner Planner(Geo, Time, 8);
    const BlockPlan Plan = Planner.plan(N, Geo.NumVaults);
    Blocks = std::make_unique<BlockDynamicLayout>(N, N, 8, 0, Plan.W,
                                                  Plan.H);
    if (Pattern == "blocks")
      Source = std::make_unique<BlockTrace>(*Blocks,
                                            BlockOrder::ColMajorBlocks);
    else
      Source = std::make_unique<ChunkedBlockWriteTrace>(*Blocks);
  } else {
    usage(Argv[0]);
  }

  std::vector<TraceRecord> Records;
  std::uint64_t Bytes = 0;
  while (Records.size() < MaxOps) {
    const auto Op = Source->next();
    if (!Op)
      break;
    TraceRecord R;
    // Issue time paced at the requested rate (GB/s == bytes/ns).
    R.Time = static_cast<Picos>(static_cast<double>(Bytes) / GBps *
                                static_cast<double>(PicosPerNano));
    R.IsWrite = IsWrite;
    R.Addr = Op->Addr;
    R.Bytes = Op->Bytes;
    Records.push_back(R);
    Bytes += Op->Bytes;
  }
  writeTrace(std::cout, Records);
  std::fprintf(stderr, "wrote %zu records (%s) paced at %.1f GB/s\n",
               Records.size(), formatBytes(Bytes).c_str(), GBps);
  return 0;
}
