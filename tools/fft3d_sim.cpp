//===- tools/fft3d_sim.cpp - Command-line simulator driver ----------------===//
//
// Part of the fft3d project.
//
// One-stop driver around the library: configure the device and the
// architecture from flags, simulate either or both architectures, and
// optionally run the auto-tuner or print energy figures.
//
//   fft3d_sim [--n=2048] [--arch=both|baseline|optimized]
//             [--sched=frfcfs|fcfs] [--page=open|closed]
//             [--map=cvbr|cbvr|cvrb|crbv] [--xor-hash]
//             [--t-diff-row=40] [--t-diff-bank=16] [--t-in-vault=8]
//             [--t-in-row=1.6] [--refresh]
//             [--lanes=8] [--clock=<MHz>] [--window=64]
//             [--vaults=16] [--energy] [--tune[=throughput|energy]]
//
// Examples:
//   fft3d_sim --n=4096 --energy
//   fft3d_sim --n=2048 --t-diff-row=80 --tune
//   fft3d_sim --n=1024 --page=closed --arch=optimized
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterFftProcessor.h"
#include "core/AutoTuner.h"
#include "core/Fft2dProcessor.h"
#include "core/LayoutEvaluator.h"
#include "fault/FaultSpec.h"
#include "mem3d/TraceFile.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/CliOptions.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

using namespace fft3d;

namespace {

struct Cli {
  std::uint64_t N = 2048;
  std::string Arch = "both";
  /// --workload: "fft" here; "conv2d" is recognized but redirected to
  /// fft3d_serve, where convolution is a job type.
  std::string Workload = "fft";
  bool Energy = false;
  bool Tune = false;
  TuneObjective Objective = TuneObjective::Throughput;
  std::string ReplayFile;
  bool ReplayAsap = false;
  /// Shared flags (seed, threads, fault/obs paths, cluster shape);
  /// parsed by support/CliOptions so the tools cannot drift.
  CommonCliOptions Common;
  std::uint32_t TraceCats = TraceCatAll;
  /// Cluster-mode workload: "2d" (slab transpose) or "3d" (pencils).
  std::string ClusterFft = "2d";
  SystemConfig Config;
  bool Ok = true;
};

[[noreturn]] void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--n=SIZE] [--arch=both|baseline|optimized]\n"
               "  [--sched=frfcfs|fcfs] [--page=open|closed]\n"
               "  [--map=cvbr|cbvr|cvrb|crbv] [--xor-hash] [--refresh]\n"
               "  [--t-diff-row=NS] [--t-diff-bank=NS] [--t-in-vault=NS]\n"
               "  [--t-in-row=NS] [--lanes=K] [--clock=MHZ] [--window=K]\n"
               "  [--vaults=K] [--energy] [--tune[=throughput|energy]]\n"
               "  [--input=complex|real] [--workload=fft|conv2d]\n"
               "  [--replay=FILE [--replay-asap]] [--fft=2d|3d]\n"
               "  and the shared flags:\n"
               "%s%s",
               Prog, commonCliUsage(), clusterCliUsage());
  std::exit(2);
}

bool consume(const char *Arg, const char *Key, const char **Value) {
  const std::size_t Len = std::strlen(Key);
  if (std::strncmp(Arg, Key, Len) != 0)
    return false;
  if (Arg[Len] == '\0') {
    *Value = nullptr;
    return true;
  }
  if (Arg[Len] == '=') {
    *Value = Arg + Len + 1;
    return true;
  }
  return false;
}

Cli parse(int Argc, char **Argv) {
  Cli C;
  C.Config = SystemConfig::forProblemSize(C.N);
  Timing &T = C.Config.Mem.Time;
  FleetCliOptions FleetFlags;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    const char *Value = nullptr;
    std::string CommonError;
    if (parseCommonCliOption(Argc, Argv, I, C.Common, CommonError)) {
      if (!CommonError.empty()) {
        std::fprintf(stderr, "error: %s\n", CommonError.c_str());
        usage(Argv[0]);
      }
    } else if (parseFleetCliOption(Argc, Argv, I, FleetFlags,
                                   CommonError)) {
      // Recognize the fleet flags so the diagnostic names the right
      // tool instead of a generic usage dump.
      std::fprintf(stderr,
                   "error: '%s' is a serving-fleet flag; the fleet "
                   "front-end lives in fft3d_serve (fft3d_serve --fleet "
                   "--stacks 4 ...)\n",
                   Arg);
      std::exit(2);
    } else if (consume(Arg, "--n", &Value) && Value) {
      C.N = std::strtoull(Value, nullptr, 10);
    } else if (consume(Arg, "--arch", &Value) && Value) {
      C.Arch = Value;
    } else if (consume(Arg, "--sched", &Value) && Value) {
      C.Config.Mem.Sched = std::string(Value) == "fcfs"
                               ? SchedulePolicy::Fcfs
                               : SchedulePolicy::FrFcfs;
    } else if (consume(Arg, "--page", &Value) && Value) {
      C.Config.Mem.Page = std::string(Value) == "closed"
                              ? PagePolicy::ClosedPage
                              : PagePolicy::OpenPage;
    } else if (consume(Arg, "--map", &Value) && Value) {
      const std::string M = Value;
      if (M == "cvbr")
        C.Config.Mem.MapKind = AddressMapKind::ColVaultBankRow;
      else if (M == "cbvr")
        C.Config.Mem.MapKind = AddressMapKind::ColBankVaultRow;
      else if (M == "cvrb")
        C.Config.Mem.MapKind = AddressMapKind::ColVaultRowBank;
      else if (M == "crbv")
        C.Config.Mem.MapKind = AddressMapKind::ColRowBankVault;
      else
        usage(Argv[0]);
    } else if (consume(Arg, "--xor-hash", &Value)) {
      C.Config.Mem.XorHash = true;
    } else if (consume(Arg, "--refresh", &Value)) {
      T.RefreshInterval = nanosToPicos(7800.0);
      T.RefreshDuration = nanosToPicos(160.0);
    } else if (consume(Arg, "--t-diff-row", &Value) && Value) {
      T.TDiffRow = nanosToPicos(std::strtod(Value, nullptr));
    } else if (consume(Arg, "--t-diff-bank", &Value) && Value) {
      T.TDiffBank = nanosToPicos(std::strtod(Value, nullptr));
    } else if (consume(Arg, "--t-in-vault", &Value) && Value) {
      T.TInVault = nanosToPicos(std::strtod(Value, nullptr));
    } else if (consume(Arg, "--t-in-row", &Value) && Value) {
      T.TInRow = nanosToPicos(std::strtod(Value, nullptr));
    } else if (consume(Arg, "--lanes", &Value) && Value) {
      C.Config.Optimized.Lanes =
          static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    } else if (consume(Arg, "--clock", &Value) && Value) {
      C.Config.Optimized.ClockMHz = std::strtod(Value, nullptr);
      C.Config.Baseline.ClockMHz = C.Config.Optimized.ClockMHz;
    } else if (consume(Arg, "--window", &Value) && Value) {
      const auto W = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
      C.Config.Optimized.ReadWindow = C.Config.Optimized.WriteWindow = W;
    } else if (consume(Arg, "--vaults", &Value) && Value) {
      const auto V = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
      C.Config.Mem.Geo.NumVaults = V;
      C.Config.Optimized.VaultsParallel = V;
    } else if (consume(Arg, "--input", &Value) && Value) {
      const std::string In = Value;
      if (In == "real")
        C.Config.Input = InputDomain::Real;
      else if (In == "complex")
        C.Config.Input = InputDomain::Complex;
      else {
        std::fprintf(stderr,
                     "error: --input must be 'complex' or 'real', got "
                     "'%s'\n",
                     Value);
        std::exit(2);
      }
    } else if (consume(Arg, "--workload", &Value) && Value) {
      C.Workload = Value;
    } else if (consume(Arg, "--fft", &Value) && Value) {
      C.ClusterFft = Value;
      if (C.ClusterFft != "2d" && C.ClusterFft != "3d")
        usage(Argv[0]);
    } else if (consume(Arg, "--replay", &Value) && Value) {
      C.ReplayFile = Value;
    } else if (consume(Arg, "--replay-asap", &Value)) {
      C.ReplayAsap = true;
    } else if (consume(Arg, "--energy", &Value)) {
      C.Energy = true;
    } else if (consume(Arg, "--tune", &Value)) {
      C.Tune = true;
      if (Value && std::string(Value) == "energy")
        C.Objective = TuneObjective::Energy;
    } else {
      usage(Argv[0]);
    }
  }
  C.Config.N = C.N;
  C.Config.SimThreads = C.Common.SimThreads;
  if (!C.Common.TraceCats.empty()) {
    std::string Error;
    if (!parseTraceCategories(C.Common.TraceCats.c_str(), C.TraceCats,
                              &Error)) {
      std::fprintf(stderr, "error: --trace-cats: %s\n", Error.c_str());
      std::exit(2);
    }
  }
  if (C.Workload == "conv2d") {
    std::fprintf(stderr,
                 "error: conv2d is a serving job type, not a standalone "
                 "simulation; run it through fft3d_serve (fft3d_serve "
                 "--workload conv2d ...)\n");
    std::exit(2);
  }
  if (C.Workload != "fft") {
    std::fprintf(stderr,
                 "error: --workload must be 'fft' or 'conv2d', got '%s'\n",
                 C.Workload.c_str());
    std::exit(2);
  }
  if (C.Config.Input == InputDomain::Real && C.Common.Stacks > 1) {
    std::fprintf(stderr,
                 "error: the cluster slab path has no real-input (packed "
                 "half-spectrum) decomposition yet; drop --stacks or use "
                 "--input complex\n");
    std::exit(2);
  }
  if (C.Common.Stacks > 1 && C.N % C.Common.Stacks != 0) {
    std::fprintf(stderr, "error: --stacks must divide N\n");
    std::exit(2);
  }
  // Keep three matrices resident if the device was shrunk.
  while (3 * C.N * C.N * ElementBytes > C.Config.Mem.Geo.capacityBytes())
    C.Config.Mem.Geo.RowsPerBank *= 2;
  if (!C.Config.Mem.Time.isValid()) {
    std::fprintf(stderr, "error: timing parameters violate the ordering "
                         "t_in_row <= t_in_vault <= t_diff_bank <= "
                         "t_diff_row\n");
    std::exit(2);
  }
  if (!C.Common.FaultsFile.empty()) {
    std::ifstream In(C.Common.FaultsFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open fault spec '%s'\n",
                   C.Common.FaultsFile.c_str());
      std::exit(2);
    }
    FaultSpec Spec;
    std::string Error;
    if (!Spec.parse(In, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", C.Common.FaultsFile.c_str(),
                   Error.c_str());
      std::exit(2);
    }
    // Cluster-level directives only make sense against a cluster: refuse
    // them at --stacks 1 instead of silently ignoring the schedule, and
    // refuse names beyond the fabric the flags actually build.
    if (C.Common.Stacks <= 1 &&
        (Spec.hasClusterFaults() || Spec.maxStackNamed() >= 0)) {
      std::fprintf(stderr,
                   "error: fault spec '%s' uses cluster faults or stack "
                   "scoping; pass --stacks > 1\n",
                   C.Common.FaultsFile.c_str());
      std::exit(2);
    }
    if (C.Common.Stacks > 1) {
      if (Spec.maxStackNamed() >= static_cast<int>(C.Common.Stacks)) {
        std::fprintf(stderr,
                     "error: fault spec '%s' names stack %d but --stacks "
                     "is %u\n",
                     C.Common.FaultsFile.c_str(), Spec.maxStackNamed(),
                     C.Common.Stacks);
        std::exit(2);
      }
      if (Spec.maxLinkNamed() >= static_cast<int>(2 * C.Common.Stacks)) {
        std::fprintf(stderr,
                     "error: fault spec '%s' names link %d but a %u-stack "
                     "fabric has %u directed link resources\n",
                     C.Common.FaultsFile.c_str(), Spec.maxLinkNamed(),
                     C.Common.Stacks, 2 * C.Common.Stacks);
        std::exit(2);
      }
    }
    C.Config.Mem.Faults = std::make_shared<const FaultSpec>(std::move(Spec));
  }
  return C;
}

void printReport(const char *Name, const AppReport &R) {
  std::printf("%s architecture:\n", Name);
  std::printf("  row phase    %8.2f GB/s   (%llu activations, hit rate "
              "%.1f%%)\n",
              R.RowPhase.ThroughputGBps,
              static_cast<unsigned long long>(R.RowPhase.RowActivations),
              100.0 * R.RowPhase.RowHitRate);
  std::printf("  column phase %8.2f GB/s   (%llu activations, hit rate "
              "%.1f%%)\n",
              R.ColPhase.ThroughputGBps,
              static_cast<unsigned long long>(R.ColPhase.RowActivations),
              100.0 * R.ColPhase.RowHitRate);
  std::printf("  application  %8.2f GB/s = %.1f%% of peak\n",
              R.AppThroughputGBps, 100.0 * R.PeakUtilization);
  std::printf("  latency      %s, est. total %s\n",
              formatDuration(R.AppLatency).c_str(),
              formatDuration(R.EstimatedTotalTime).c_str());
  if (R.Optimized)
    std::printf("  block plan   w=%llu h=%llu (%s), permute SRAM %s\n",
                static_cast<unsigned long long>(R.Plan.W),
                static_cast<unsigned long long>(R.Plan.H),
                planRegimeName(R.Plan.Regime),
                formatBytes(R.PermuteBufferBytes).c_str());
  // Fault-injection outcomes; silent on a healthy run so fault-free
  // output is unchanged.
  if (R.HealthyVaultsEnd < R.HealthyVaultsStart)
    std::printf("  vault health %u -> %u during the run\n",
                R.HealthyVaultsStart, R.HealthyVaultsEnd);
  if (R.Replanned)
    std::printf("  fault recovery: re-planned w=%llu h=%llu on %u healthy "
                "vaults, migration %s\n",
                static_cast<unsigned long long>(R.ReplannedPlan.W),
                static_cast<unsigned long long>(R.ReplannedPlan.H),
                R.ReplannedPlan.VaultsParallel,
                formatDuration(R.MigrationTime).c_str());
  // Per-phase fault counters, surfaced from the PhaseResult so the
  // engine's per-phase stats reset cannot discard them.
  const auto FaultEvents = [](const PhaseResult &P) {
    return P.EccRetries + P.ThrottleStalls + P.OfflineRedirects +
           P.OfflineFailed;
  };
  if (FaultEvents(R.RowPhase) + FaultEvents(R.ColPhase) != 0)
    std::printf("  fault events row/col: ECC %llu/%llu, throttle "
                "%llu/%llu, redirects %llu/%llu, failed %llu/%llu\n",
                static_cast<unsigned long long>(R.RowPhase.EccRetries),
                static_cast<unsigned long long>(R.ColPhase.EccRetries),
                static_cast<unsigned long long>(R.RowPhase.ThrottleStalls),
                static_cast<unsigned long long>(R.ColPhase.ThrottleStalls),
                static_cast<unsigned long long>(R.RowPhase.OfflineRedirects),
                static_cast<unsigned long long>(R.ColPhase.OfflineRedirects),
                static_cast<unsigned long long>(R.RowPhase.OfflineFailed),
                static_cast<unsigned long long>(R.ColPhase.OfflineFailed));
  std::printf("\n");
}

void printClusterReport(const Cli &C, const ClusterReport &R,
                        bool ThreeD) {
  const ClusterPlan &P = R.Plan;
  std::printf("cluster %s FFT: %u stacks, %s topology, %s placement, "
              "link %.1f GB/s\n",
              ThreeD ? "3D" : "2D", R.Stacks,
              clusterTopologyName(R.Topology),
              stackPlacementName(P.Placement), C.Common.LinkGBps);
  if (ThreeD) {
    unsigned P1 = 1, P2 = 1;
    ClusterFftProcessor::pencilGrid(R.Stacks, P1, P2);
    std::printf("  pencil grid  %u x %u, %llu pencils/stack\n", P1, P2,
                static_cast<unsigned long long>(R.N * R.N / R.Stacks));
  }
  std::printf("  plan         staging w=%llu h=%llu, receive w=%llu "
              "h=%llu (%s), burst out/in %s / %s\n",
              static_cast<unsigned long long>(P.Staging.W),
              static_cast<unsigned long long>(P.Staging.H),
              static_cast<unsigned long long>(P.Receive.W),
              static_cast<unsigned long long>(P.Receive.H),
              planRegimeName(P.Receive.Regime),
              formatBytes(P.EgressBurstBytes).c_str(),
              formatBytes(P.IngressBurstBytes).c_str());
  std::printf("  %-12s %s   (%.2f GB/s, hit rate %.1f%%)\n",
              ThreeD ? "x phase" : "row phase",
              formatDuration(R.RowPhaseTime).c_str(),
              R.RowPhase.ThroughputGBps, 100.0 * R.RowPhase.RowHitRate);
  std::printf("  exchange     %s   (link %s, memory %s)\n",
              formatDuration(R.ExchangeTime + R.Exchange2Time).c_str(),
              formatDuration(R.LinkTime).c_str(),
              formatDuration(R.ExchangeMemTime).c_str());
  std::printf("  %-12s %s   (%.2f GB/s, hit rate %.1f%%)\n",
              ThreeD ? "y phase" : "column phase",
              formatDuration(R.ColPhaseTime).c_str(),
              R.ColPhase.ThroughputGBps, 100.0 * R.ColPhase.RowHitRate);
  if (ThreeD)
    std::printf("  z phase      %s\n",
                formatDuration(R.ZPhaseTime).c_str());
  // Cluster fault outcomes; silent on a fault-free run so the healthy
  // output is unchanged.
  if (R.StacksFailed != 0) {
    std::printf("  fault recovery: %u stack%s failed, %u survivors, "
                "migration %s%s\n",
                R.StacksFailed, R.StacksFailed == 1 ? "" : "s",
                R.SurvivorStacks, formatDuration(R.MigrationTime).c_str(),
                R.Replanned ? ", layouts re-planned" : "");
    std::printf("  protocol     checkpoint %s, detection %s\n",
                formatDuration(R.CheckpointTime).c_str(),
                formatDuration(R.DetectionTime).c_str());
  }
  if (R.Retransmits != 0 || R.XferFailed != 0)
    std::printf("  link loss    %llu retransmitted packets, backoff %s, "
                "%llu transfers abandoned\n",
                static_cast<unsigned long long>(R.Retransmits),
                formatDuration(R.BackoffTime).c_str(),
                static_cast<unsigned long long>(R.XferFailed));
  std::printf("  total        %s, %8.2f GB/s aggregate, %llu transfers "
              "(%s)\n\n",
              formatDuration(R.TotalTime).c_str(), R.AppThroughputGBps,
              static_cast<unsigned long long>(R.XferMessages),
              formatBytes(R.XferBytes).c_str());
}

/// Simulates the distributed run; replaces the single-stack report when
/// --stacks > 1 (the single-stack path is untouched by cluster flags).
int runCluster(const Cli &C, Tracer *Trace, MetricsRegistry *Metrics) {
  ClusterConfig Config;
  Config.Stacks = C.Common.Stacks;
  Config.Topology = C.Common.Topology == "ring" ? ClusterTopology::Ring
                                                : ClusterTopology::AllToAll;
  Config.Placement = C.Common.Placement == "round-robin"
                         ? StackPlacement::RoundRobin
                         : StackPlacement::TwoLevel;
  Config.LinkGBps = C.Common.LinkGBps;
  Config.Node = C.Config;
  ClusterFftProcessor Processor(Config);
  Processor.setObservability(Trace, Metrics, /*TracePid=*/0);
  const bool ThreeD = C.ClusterFft == "3d";
  const ClusterReport R = ThreeD ? Processor.run3d() : Processor.run2d();
  printClusterReport(C, R, ThreeD);
  return 0;
}

/// Writes the collected trace / metrics artifacts; exits on I/O failure.
void writeObsOutputs(const Cli &C, const Tracer *Trace,
                     const MetricsRegistry *Metrics) {
  if (Trace) {
    std::ofstream Out(C.Common.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   C.Common.TraceFile.c_str());
      std::exit(1);
    }
    Trace->writeChromeTrace(Out);
    std::printf("wrote %zu trace events to %s (%llu dropped)\n",
                Trace->events().size(), C.Common.TraceFile.c_str(),
                static_cast<unsigned long long>(Trace->dropped()));
  }
  if (Metrics) {
    std::ofstream Out(C.Common.MetricsFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   C.Common.MetricsFile.c_str());
      std::exit(1);
    }
    Metrics->writeJson(Out);
    std::printf("wrote %zu metrics to %s\n", Metrics->size(),
                C.Common.MetricsFile.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const Cli C = parse(Argc, Argv);
  std::unique_ptr<Tracer> Trace;
  if (!C.Common.TraceFile.empty())
    Trace = std::make_unique<Tracer>(C.TraceCats);
  std::unique_ptr<MetricsRegistry> Metrics;
  if (!C.Common.MetricsFile.empty())
    Metrics = std::make_unique<MetricsRegistry>();
  const AnalyticalModel Model(C.Config);
  std::string SeedNote;
  if (C.Common.SeedSet)
    SeedNote = ", seed " + std::to_string(C.Common.Seed);
  if (!C.Common.FaultsFile.empty())
    SeedNote += ", faults " + C.Common.FaultsFile;
  std::printf("fft3d_sim: N=%llu, %u vaults, peak %.1f GB/s, %s/%s, map "
              "%s%s%s%s%s\n\n",
              static_cast<unsigned long long>(C.N),
              C.Config.Mem.Geo.NumVaults, Model.peakGBps(),
              schedulePolicyName(C.Config.Mem.Sched),
              pagePolicyName(C.Config.Mem.Page),
              addressMapKindName(C.Config.Mem.MapKind),
              C.Config.Mem.XorHash ? ", xor-hash" : "",
              C.Config.Mem.Time.RefreshInterval ? ", refresh on" : "",
              C.Config.Input == InputDomain::Real
                  ? ", real input (packed half-spectrum)"
                  : "",
              SeedNote.c_str());

  if (!C.ReplayFile.empty()) {
    std::ifstream In(C.ReplayFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open trace '%s'\n",
                   C.ReplayFile.c_str());
      return 1;
    }
    std::vector<TraceRecord> Records;
    std::uint64_t ErrorLine = 0;
    if (!readTrace(In, Records, &ErrorLine)) {
      std::fprintf(stderr, "error: malformed trace at line %llu\n",
                   static_cast<unsigned long long>(ErrorLine));
      return 1;
    }
    EventQueue Events;
    Memory3D Mem(Events, C.Config.Mem);
    Mem.setTracer(Trace.get());
    if (Trace)
      Trace->setProcessName(0, "replay");
    const ReplayResult R = replayTrace(Mem, Events, Records,
                                       /*HonorTimestamps=*/!C.ReplayAsap);
    if (Metrics)
      Mem.stats().exportTo(*Metrics);
    std::printf("replayed %llu requests (%s) in %s -> %.2f GB/s, "
                "%llu activations, hit rate %.1f%%\n",
                static_cast<unsigned long long>(R.Requests),
                formatBytes(R.Bytes).c_str(),
                formatDuration(R.Elapsed).c_str(), R.AchievedGBps,
                static_cast<unsigned long long>(
                    Mem.stats().total().RowActivations),
                100.0 * Mem.stats().total().hitRate());
    writeObsOutputs(C, Trace.get(), Metrics.get());
    return 0;
  }

  if (C.Common.Stacks > 1) {
    const int Rc = runCluster(C, Trace.get(), Metrics.get());
    writeObsOutputs(C, Trace.get(), Metrics.get());
    return Rc;
  }

  Fft2dProcessor Processor(C.Config);
  // Distinct pids keep the two architectures on separate track groups
  // in the exported timeline.
  if (C.Arch == "baseline" || C.Arch == "both") {
    Processor.setObservability(Trace.get(), Metrics.get(), /*TracePid=*/0);
    printReport("baseline", Processor.runBaseline());
  }
  if (C.Arch == "optimized" || C.Arch == "both") {
    Processor.setObservability(Trace.get(), Metrics.get(), /*TracePid=*/1);
    printReport("optimized", Processor.runOptimized());
  }
  writeObsOutputs(C, Trace.get(), Metrics.get());

  if (C.Energy) {
    const AutoTuner Tuner(C.Config,
                          TuneOptions{true, true, false, false, C.Common.Threads});
    const TuneResult Result = Tuner.tune(TuneObjective::Energy);
    std::printf("energy (both phases, simulated volume):\n");
    for (const TuneCandidate &Cand : Result.Candidates)
      std::printf("  %-28s %7.2f pJ/bit  %8.3f activations/KiB\n",
                  Cand.Name.c_str(), Cand.Metrics.PicojoulesPerBit,
                  Cand.Metrics.ActivationsPerKiB);
    std::printf("\n");
  }

  if (C.Tune) {
    TuneOptions Options;
    Options.Threads = C.Common.Threads;
    const AutoTuner Tuner(C.Config, Options);
    const TuneResult Result = Tuner.tune(C.Objective);
    std::printf("auto-tuning (%s objective):\n",
                tuneObjectiveName(C.Objective));
    unsigned Rank = 1;
    for (const TuneCandidate &Cand : Result.Candidates) {
      if (Rank > 8)
        break;
      std::printf("  #%u %-28s %7.2f GB/s  %6.2f pJ/bit%s\n", Rank,
                  Cand.Name.c_str(), Cand.Metrics.AppGBps,
                  Cand.Metrics.PicojoulesPerBit,
                  Cand.Eq1Pick ? "   <== Eq. 1" : "");
      ++Rank;
    }
  }
  return 0;
}
