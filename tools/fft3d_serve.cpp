//===- tools/fft3d_serve.cpp - Multi-tenant serving driver ----------------===//
//
// Part of the fft3d project.
//
// Runs a stream of heterogeneous 2D-FFT requests through the serving
// layer under one or all scheduling policies and prints a per-policy
// SLO table. The same seed always reproduces the same arrival trace and
// therefore byte-identical output.
//
//   fft3d_serve [--jobs N] [--policy fcfs|sjf|prio|vault|all] [--seed S]
//               [--rate JOBS_PER_SEC] [--queue-cap N] [--partitions P]
//               [--aging-ms MS] [--mix mixed|small|large]
//               [--workload fft|conv2d] [--input complex|real]
//               [--closed-loop CLIENTS] [--think-ms MS]
//               [--shed-infeasible] [--vaults V]
//
// Fleet mode (--fleet, with --stacks >= 2) routes the arrival stream
// across S whole stacks through the front-end tier instead: pluggable
// routing (--router), per-tenant quotas (--tenants), the shared plan
// cache (--cache-mb / --cache-mode) and p99-driven autoscaling
// (--autoscale-p99-us).
//
// Flags accept both "--key value" and "--key=value".
//
// Examples:
//   fft3d_serve --jobs 200 --policy all --seed 42
//   fft3d_serve --jobs 500 --rate 120 --policy vault --partitions 4
//   fft3d_serve --closed-loop 8 --jobs 160 --policy all
//   fft3d_serve --fleet --stacks 4 --jobs 5000 --router hash
//
//===----------------------------------------------------------------------===//

#include "fault/FaultSpec.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "serve/ServeSimulator.h"
#include "serve/fleet/FleetSimulator.h"
#include "support/CliOptions.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace fft3d;

namespace {

struct Cli {
  unsigned Jobs = 200;
  std::string Policy = "all";
  double RatePerSec = 80.0;
  std::size_t QueueCap = 64;
  unsigned Partitions = 2;
  double AgingMs = 10.0;
  std::string Mix = "mixed";
  /// --workload: "fft" keeps the plain 2D-FFT mixes; "conv2d" swaps in
  /// the convolution serving mix (real-input conv2d frames with their
  /// own SLO class).
  std::string Workload = "fft";
  /// --input: "real" switches every job in the mix to the packed
  /// half-spectrum path (half the bytes per phase, priced at half).
  std::string Input = "complex";
  unsigned ClosedLoopClients = 0;
  double ThinkMs = 20.0;
  bool ShedInfeasible = false;
  unsigned Vaults = 16;
  /// Shared flags (seed, threads, fault/obs paths, cluster shape);
  /// parsed by support/CliOptions so the tools cannot drift. This
  /// tool defaults the seed to 42 when --seed is absent.
  CommonCliOptions Common;
  /// Fleet front-end flags (--fleet, --router, --tenants, --cache-mb,
  /// --cache-mode, --autoscale-p99-us), shared with fft3d_sim's parser.
  FleetCliOptions Fleet;
  std::uint32_t TraceCats = TraceCatAll;
};

[[noreturn]] void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--policy fcfs|sjf|prio|vault|all]\n"
               "  [--rate JOBS_PER_SEC] [--queue-cap N] [--partitions P]\n"
               "  [--aging-ms MS] [--mix mixed|small|large]\n"
               "  [--workload fft|conv2d] [--input complex|real]\n"
               "  [--closed-loop CLIENTS] [--think-ms MS]\n"
               "  [--shed-infeasible] [--vaults V]\n"
               "  and the shared flags (seed defaults to 42 here):\n"
               "%s%s%s",
               Prog, commonCliUsage(), clusterCliUsage(), fleetCliUsage());
  std::exit(2);
}

Cli parse(int Argc, char **Argv) {
  Cli C;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    std::string CommonError;
    if (parseCommonCliOption(Argc, Argv, I, C.Common, CommonError) ||
        parseFleetCliOption(Argc, Argv, I, C.Fleet, CommonError)) {
      if (!CommonError.empty()) {
        std::fprintf(stderr, "error: %s\n", CommonError.c_str());
        usage(Argv[0]);
      }
    } else if (consumeCliValue(Argc, Argv, I, "--jobs", &Value))
      C.Jobs = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeCliValue(Argc, Argv, I, "--policy", &Value))
      C.Policy = Value;
    else if (consumeCliValue(Argc, Argv, I, "--rate", &Value))
      C.RatePerSec = std::strtod(Value, nullptr);
    else if (consumeCliValue(Argc, Argv, I, "--queue-cap", &Value))
      C.QueueCap = std::strtoul(Value, nullptr, 10);
    else if (consumeCliValue(Argc, Argv, I, "--partitions", &Value))
      C.Partitions = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeCliValue(Argc, Argv, I, "--aging-ms", &Value))
      C.AgingMs = std::strtod(Value, nullptr);
    else if (consumeCliValue(Argc, Argv, I, "--mix", &Value))
      C.Mix = Value;
    else if (consumeCliValue(Argc, Argv, I, "--workload", &Value))
      C.Workload = Value;
    else if (consumeCliValue(Argc, Argv, I, "--input", &Value))
      C.Input = Value;
    else if (consumeCliValue(Argc, Argv, I, "--closed-loop", &Value))
      C.ClosedLoopClients =
          static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeCliValue(Argc, Argv, I, "--think-ms", &Value))
      C.ThinkMs = std::strtod(Value, nullptr);
    else if (consumeCliValue(Argc, Argv, I, "--vaults", &Value))
      C.Vaults = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeCliFlag(Argv, I, "--shed-infeasible"))
      C.ShedInfeasible = true;
    else
      usage(Argv[0]);
  }
  if (!C.Common.SeedSet)
    C.Common.Seed = 42;
  if (!C.Common.TraceCats.empty()) {
    std::string Error;
    if (!parseTraceCategories(C.Common.TraceCats.c_str(), C.TraceCats,
                              &Error)) {
      std::fprintf(stderr, "error: --trace-cats: %s\n", Error.c_str());
      std::exit(2);
    }
  }
  if (C.Jobs == 0 || C.QueueCap == 0 || C.Partitions == 0 ||
      C.RatePerSec <= 0.0)
    usage(Argv[0]);
  // An unknown policy is a usage error: catch it here, before any
  // simulation work starts.
  if (C.Policy != "fcfs" && C.Policy != "sjf" && C.Policy != "prio" &&
      C.Policy != "vault" && C.Policy != "all") {
    std::fprintf(stderr, "error: unknown policy '%s'\n", C.Policy.c_str());
    usage(Argv[0]);
  }
  if (C.Mix != "mixed" && C.Mix != "small" && C.Mix != "large") {
    std::fprintf(stderr, "error: unknown mix '%s'\n", C.Mix.c_str());
    usage(Argv[0]);
  }
  if (C.Workload != "fft" && C.Workload != "conv2d") {
    std::fprintf(stderr,
                 "error: --workload must be 'fft' or 'conv2d', got '%s'\n",
                 C.Workload.c_str());
    usage(Argv[0]);
  }
  if (C.Input != "complex" && C.Input != "real") {
    std::fprintf(stderr,
                 "error: --input must be 'complex' or 'real', got '%s'\n",
                 C.Input.c_str());
    usage(Argv[0]);
  }
  if (C.Fleet.Fleet) {
    if (C.Common.Stacks < 2) {
      std::fprintf(stderr, "error: --fleet routes across stacks; pass "
                           "--stacks 2 or more\n");
      usage(Argv[0]);
    }
    if (C.ClosedLoopClients != 0) {
      std::fprintf(stderr, "error: --fleet is open-loop only (drop "
                           "--closed-loop)\n");
      usage(Argv[0]);
    }
  }
  return C;
}

std::vector<JobTemplate> mixFor(const std::string &Name) {
  if (Name == "mixed")
    return mixedWorkloadTemplates();
  if (Name == "small")
    return {{2048, 1, JobPrecision::Fp32, 0, 1.0, 8.0}};
  if (Name == "large")
    return {{4096, 1, JobPrecision::Fp32, 1, 1.0, 6.0}};
  std::fprintf(stderr, "error: unknown mix '%s'\n", Name.c_str());
  std::exit(2);
}

/// Resolves --mix / --workload / --input into the final template set:
/// --workload conv2d replaces the mix with the convolution templates
/// (which carry their own priorities and deadline slacks), and --input
/// real switches every template onto the packed half-spectrum path.
std::vector<JobTemplate> buildMix(const Cli &C) {
  std::vector<JobTemplate> Mix =
      C.Workload == "conv2d" ? convWorkloadTemplates() : mixFor(C.Mix);
  if (C.Input == "real")
    for (JobTemplate &T : Mix)
      T.Input = JobInput::Real;
  return Mix;
}

/// True when any template draws conv2d jobs (the conv SLO columns are
/// only printed for workloads that can produce them).
bool mixHasConv(const std::vector<JobTemplate> &Mix) {
  for (const JobTemplate &T : Mix)
    if (T.Kind == JobKind::Conv2d)
      return true;
  return false;
}

std::vector<PolicyKind> policiesFor(const std::string &Name) {
  if (Name == "fcfs")
    return {PolicyKind::Fcfs};
  if (Name == "sjf")
    return {PolicyKind::Sjf};
  if (Name == "prio")
    return {PolicyKind::PriorityAging};
  if (Name == "vault")
    return {PolicyKind::VaultPartition};
  if (Name == "all")
    return {PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::PriorityAging,
            PolicyKind::VaultPartition};
  std::fprintf(stderr, "error: unknown policy '%s'\n", Name.c_str());
  std::exit(2);
}

std::shared_ptr<const FaultSpec> loadFaultSpec(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open fault spec '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  FaultSpec Spec;
  std::string Error;
  if (!Spec.parse(In, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    std::exit(2);
  }
  return std::make_shared<const FaultSpec>(std::move(Spec));
}

/// The --fleet path: one routed multi-stack run. Each stack serves
/// whole jobs at its single-stack estimate, so the model is built with
/// Stacks = 1 regardless of the fleet size. Nothing in the report
/// depends on --sim-threads or --threads (estimates are bit-identical
/// at any thread count), which the CI determinism smoke pins with cmp.
int runFleet(const Cli &C) {
  MemoryConfig Mem;
  Mem.Geo.NumVaults = C.Vaults;
  ServiceModel Model(Mem, 8ull << 20, 50000, C.Common.SimThreads,
                     /*Stacks=*/1, C.Common.LinkGBps);

  FleetConfig Config;
  Config.NumStacks = C.Common.Stacks;
  Config.QueueCapacity = C.QueueCap;
  std::string Error;
  if (!parseRoutePolicy(C.Fleet.Router, Config.Router, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  Config.CacheMode = C.Fleet.CacheMode == "per-stack"
                         ? PlanCacheMode::PerStack
                         : PlanCacheMode::Shared;
  Config.CacheBytes =
      static_cast<std::uint64_t>(C.Fleet.CacheMb * 1024.0 * 1024.0);
  Config.RingSeed = C.Common.Seed;
  if (C.Fleet.Tenants > 0) {
    // Generous default quota: each tenant may sustain the full offered
    // rate, so quotas only bind when one tenant hogs the stream.
    Config.Quota.Enabled = true;
    Config.Quota.JobsPerSec = C.RatePerSec;
    Config.Quota.Burst = 20.0;
  }
  if (C.Fleet.AutoscaleP99Us > 0.0) {
    Config.Autoscale.Enabled = true;
    Config.Autoscale.TargetP99Ms = C.Fleet.AutoscaleP99Us / 1000.0;
  }
  const bool WithFaults = !C.Common.FaultsFile.empty();
  if (WithFaults) {
    const std::shared_ptr<const FaultSpec> Faults =
        loadFaultSpec(C.Common.FaultsFile);
    Config.Health =
        std::make_shared<HealthMonitor>(Faults, C.Vaults, C.Common.Stacks);
    Config.Brownout.Enabled = true;
  }

  std::printf("fft3d_serve fleet: %u jobs over %u stacks, router %s, "
              "%s %s, seed %llu, %u vaults, queue cap %zu%s\n",
              C.Jobs, C.Common.Stacks, C.Fleet.Router.c_str(),
              C.Workload == "conv2d" ? "workload" : "mix",
              C.Workload == "conv2d" ? "conv2d" : C.Mix.c_str(),
              static_cast<unsigned long long>(C.Common.Seed), C.Vaults,
              C.QueueCap, C.Input == "real" ? ", real input" : "");
  std::printf("open loop: Poisson arrivals at %.1f jobs/s, %u tenants, "
              "plan cache %s %.1f MiB%s\n\n",
              C.RatePerSec, C.Fleet.Tenants,
              Config.CacheBytes == 0 ? "off"
                                     : planCacheModeName(Config.CacheMode),
              C.Fleet.CacheMb,
              Config.Autoscale.Enabled ? ", autoscaling" : "");

  const std::vector<JobTemplate> Mix = buildMix(C);
  {
    ThreadPool Pool(ThreadPool::resolveThreads(C.Common.Threads));
    std::vector<std::pair<std::uint64_t, unsigned>> Keys;
    for (const JobTemplate &T : Mix)
      Keys.emplace_back(T.N, C.Vaults);
    Model.prewarm(Keys, Pool);
  }
  PoissonArrivalStream Arrivals(Mix, C.Jobs, C.RatePerSec, C.Common.Seed,
                                Model, C.Fleet.Tenants);

  std::unique_ptr<Tracer> Trace;
  if (!C.Common.TraceFile.empty())
    Trace = std::make_unique<Tracer>(C.TraceCats);
  Config.Trace = Trace.get();

  FleetSimulator Sim(Config, Model);
  const FleetResult R = Sim.run(Arrivals);
  const SloSummary &S = R.Summary;

  TableWriter Table({"router", "done", "shed", "jobs/s", "p50 ms",
                     "p95 ms", "p99 ms", "queue p99", "miss %", "cache %",
                     "drain", "scale", "peak"});
  Table.addRow({R.RouterName, TableWriter::num(S.Completed),
                TableWriter::num(S.Shed),
                TableWriter::num(S.ThroughputJobsPerSec, 1),
                TableWriter::num(S.P50LatencyMs, 2),
                TableWriter::num(S.P95LatencyMs, 2),
                TableWriter::num(S.P99LatencyMs, 2),
                TableWriter::num(S.P99QueueMs, 2),
                TableWriter::percent(S.DeadlineMissRate),
                TableWriter::percent(R.Cache.hitRate()),
                TableWriter::num(R.Drained),
                "+" + std::to_string(R.ScaleUps) + "/-" +
                    std::to_string(R.ScaleDowns),
                TableWriter::num(R.PeakOutstanding)});
  Table.print(std::cout);
  if (S.ConvOffered != 0)
    std::printf("conv2d class: %llu offered, %llu completed, p99 %.2f ms, "
                "deadline miss %.1f%%\n",
                static_cast<unsigned long long>(S.ConvOffered),
                static_cast<unsigned long long>(S.ConvCompleted),
                S.ConvP99LatencyMs, S.ConvDeadlineMissRate * 100.0);

  std::printf("\nPer-stack routing:\n");
  for (const StackEndpoint &E : R.Stacks)
    std::printf("  stack %u: routed %llu, completed %llu, drained %llu%s\n",
                E.Stack, static_cast<unsigned long long>(E.RoutedJobs),
                static_cast<unsigned long long>(E.CompletedJobs),
                static_cast<unsigned long long>(E.DrainedJobs),
                E.Active ? "" : " (scaled out)");
  std::printf("plan cache: %llu hits, %llu misses, %llu evictions, "
              "%llu invalidations, peak %.2f MiB\n",
              static_cast<unsigned long long>(R.Cache.Hits),
              static_cast<unsigned long long>(R.Cache.Misses),
              static_cast<unsigned long long>(R.Cache.Evictions),
              static_cast<unsigned long long>(R.Cache.Invalidations),
              static_cast<double>(R.Cache.PeakBytes) / (1024.0 * 1024.0));
  if (R.ShedQuota + R.ShedBrownout + R.ShedQueueFull + R.ShedNoStack != 0)
    std::printf("sheds: %llu quota, %llu brownout, %llu queue-full, "
                "%llu no-stack\n",
                static_cast<unsigned long long>(R.ShedQuota),
                static_cast<unsigned long long>(R.ShedBrownout),
                static_cast<unsigned long long>(R.ShedQueueFull),
                static_cast<unsigned long long>(R.ShedNoStack));

  if (Trace) {
    std::ofstream Out(C.Common.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   C.Common.TraceFile.c_str());
      return 1;
    }
    Trace->writeChromeTrace(Out);
    std::printf("\nwrote %zu trace events to %s (%llu dropped)\n",
                Trace->events().size(), C.Common.TraceFile.c_str(),
                static_cast<unsigned long long>(Trace->dropped()));
  }
  if (!C.Common.MetricsFile.empty()) {
    MetricsRegistry Metrics;
    FleetSimulator::exportTo(R, Metrics);
    if (Config.Health)
      Config.Health->exportTo(Metrics, R.EndTime);
    std::ofstream Out(C.Common.MetricsFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   C.Common.MetricsFile.c_str());
      return 1;
    }
    Metrics.writeJson(Out);
    std::printf("wrote %zu metrics to %s\n", Metrics.size(),
                C.Common.MetricsFile.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const Cli C = parse(Argc, Argv);
  if (C.Fleet.Fleet)
    return runFleet(C);

  MemoryConfig Mem;
  Mem.Geo.NumVaults = C.Vaults;
  ServiceModel Model(Mem, 8ull << 20, 50000, C.Common.SimThreads,
                     C.Common.Stacks, C.Common.LinkGBps);

  std::string StackNote;
  if (C.Common.Stacks > 1)
    StackNote = ", " + std::to_string(C.Common.Stacks) + " stacks";
  if (C.Input == "real")
    StackNote += ", real input";
  std::printf("fft3d_serve: %u jobs, %s %s, seed %llu, %u vaults%s, "
              "queue cap %zu%s\n",
              C.Jobs, C.Workload == "conv2d" ? "workload" : "mix",
              C.Workload == "conv2d" ? "conv2d" : C.Mix.c_str(),
              static_cast<unsigned long long>(C.Common.Seed), C.Vaults,
              StackNote.c_str(), C.QueueCap,
              C.ShedInfeasible ? ", shed-infeasible" : "");

  const std::vector<JobTemplate> Mix = buildMix(C);
  const bool HasConv = mixHasConv(Mix);
  // Each concurrent policy run gets its own Workload: generation is
  // seed-deterministic, so per-run copies reproduce the shared-instance
  // arrival trace exactly.
  const auto MakeLoad = [&]() -> std::unique_ptr<Workload> {
    if (C.ClosedLoopClients != 0) {
      const unsigned PerClient =
          (C.Jobs + C.ClosedLoopClients - 1) / C.ClosedLoopClients;
      return std::make_unique<ClosedLoopWorkload>(
          Mix, C.ClosedLoopClients, PerClient,
          static_cast<Picos>(C.ThinkMs * static_cast<double>(PicosPerMilli)),
          C.Common.Seed, Model);
    }
    return std::make_unique<TraceWorkload>(
        generatePoissonTrace(Mix, C.Jobs, C.RatePerSec, C.Common.Seed, Model));
  };
  if (C.ClosedLoopClients != 0) {
    const unsigned PerClient =
        (C.Jobs + C.ClosedLoopClients - 1) / C.ClosedLoopClients;
    std::printf("closed loop: %u clients x %u jobs, mean think %.1f ms\n\n",
                C.ClosedLoopClients, PerClient, C.ThinkMs);
  } else {
    std::printf("open loop: Poisson arrivals at %.1f jobs/s\n\n",
                C.RatePerSec);
  }

  PolicyOptions Options;
  Options.Partitions = C.Partitions;
  Options.AgingQuantum =
      static_cast<Picos>(C.AgingMs * static_cast<double>(PicosPerMilli));

  ServeConfig Config;
  Config.QueueCapacity = C.QueueCap;
  Config.ShedInfeasible = C.ShedInfeasible;
  const bool WithFaults = !C.Common.FaultsFile.empty();
  if (WithFaults) {
    const std::shared_ptr<const FaultSpec> Faults =
        loadFaultSpec(C.Common.FaultsFile);
    Config.Health =
        std::make_shared<HealthMonitor>(Faults, C.Vaults, C.Common.Stacks);
    Config.Brownout.Enabled = true;
    std::string ClusterNote;
    if (C.Common.Stacks > 1 && Faults->hasClusterFaults())
      ClusterNote = ", " +
                    std::to_string(Faults->stackEvents().size() +
                                   Faults->partitionEvents().size()) +
                    " stack events over " +
                    std::to_string(C.Common.Stacks) + " stacks";
    std::printf("fault spec %s: %zu vault events, %zu TSV events, "
                "%zu throttle windows, transient job-fail rate %.3f%s\n\n",
                C.Common.FaultsFile.c_str(), Faults->vaultEvents().size(),
                Faults->tsvEvents().size(), Faults->throttleWindows().size(),
                Faults->jobFailRate(), ClusterNote.c_str());
  }
  std::vector<std::string> Headers = {"policy",  "done",   "shed",
                                      "jobs/s",  "p50 ms", "p95 ms",
                                      "p99 ms",  "queue p99", "miss %",
                                      "conc"};
  if (HasConv) {
    Headers.push_back("conv done");
    Headers.push_back("conv p99");
    Headers.push_back("conv miss");
  }
  if (WithFaults) {
    Headers.push_back("retry");
    Headers.push_back("drop");
    Headers.push_back("brown");
    Headers.push_back("degr");
  }
  TableWriter Table(Headers);
  const std::vector<PolicyKind> Kinds = policiesFor(C.Policy);
  std::vector<ServeResult> Results(Kinds.size());
  std::unique_ptr<Tracer> Trace;
  if (!C.Common.TraceFile.empty())
    Trace = std::make_unique<Tracer>(C.TraceCats);
  std::unique_ptr<MetricsRegistry> Metrics;
  if (!C.Common.MetricsFile.empty())
    Metrics = std::make_unique<MetricsRegistry>();
  // The tracer is single-threaded by contract: tracing forces the
  // policy runs sequential (results are identical either way).
  const unsigned Threads =
      Trace ? 1u : ThreadPool::resolveThreads(C.Common.Threads);
  ThreadPool Pool(Threads);
  // Fill the service-time memo once up front so concurrent policy runs
  // hit a warm cache instead of racing to duplicate the same simulations.
  {
    std::vector<std::pair<std::uint64_t, unsigned>> Keys;
    const unsigned Share = std::max(1u, C.Vaults / C.Partitions);
    for (const JobTemplate &T : Mix) {
      Keys.emplace_back(T.N, C.Vaults);
      if (Share != C.Vaults)
        Keys.emplace_back(T.N, Share);
    }
    Model.prewarm(Keys, Pool);
  }
  Pool.parallelFor(Kinds.size(), [&](std::size_t I) {
    const auto Policy = createPolicy(Kinds[I], Options);
    const std::unique_ptr<Workload> Load = MakeLoad();
    // Each policy run gets its own process track in the timeline.
    ServeConfig RunConfig = Config;
    RunConfig.Trace = Trace.get();
    RunConfig.TracePid = static_cast<std::uint32_t>(I);
    ServeSimulator Sim(RunConfig, Model);
    Results[I] = Sim.run(*Load, *Policy);
  });
  if (Metrics) {
    for (const ServeResult &R : Results)
      R.Tracker.exportTo(*Metrics, R.PolicyName, R.EndTime);
    if (Config.Health) {
      Picos LastEnd = 0;
      for (const ServeResult &R : Results)
        LastEnd = std::max(LastEnd, R.EndTime);
      Config.Health->exportTo(*Metrics, LastEnd);
    }
  }
  for (const ServeResult &R : Results) {
    const SloSummary &S = R.Summary;
    std::vector<std::string> Row = {
        R.PolicyName, TableWriter::num(S.Completed),
        TableWriter::num(S.Shed),
        TableWriter::num(S.ThroughputJobsPerSec, 1),
        TableWriter::num(S.P50LatencyMs, 2),
        TableWriter::num(S.P95LatencyMs, 2),
        TableWriter::num(S.P99LatencyMs, 2),
        TableWriter::num(S.P99QueueMs, 2),
        TableWriter::percent(S.DeadlineMissRate),
        TableWriter::num(std::uint64_t(R.PeakConcurrency))};
    if (HasConv) {
      Row.push_back(TableWriter::num(S.ConvCompleted));
      Row.push_back(TableWriter::num(S.ConvP99LatencyMs, 2));
      Row.push_back(TableWriter::percent(S.ConvDeadlineMissRate));
    }
    if (WithFaults) {
      Row.push_back(TableWriter::num(S.Retries));
      Row.push_back(TableWriter::num(S.FailedDropped));
      Row.push_back(TableWriter::num(S.BrownoutSheds));
      Row.push_back(TableWriter::num(S.DegradedCompletions));
    }
    Table.addRow(Row);
  }
  Table.print(std::cout);

  std::printf("\nService estimates (full machine vs one partition "
              "share):\n");
  for (const JobTemplate &T : Mix) {
    JobRequest Probe;
    Probe.N = T.N;
    Probe.Frames = T.Frames;
    Probe.Precision = T.Precision;
    Probe.Kind = T.Kind;
    Probe.Input = T.Input;
    const unsigned Share = std::max(1u, C.Vaults / C.Partitions);
    std::string OpNote;
    if (T.Kind == JobKind::Conv2d)
      OpNote += " conv2d";
    if (T.Input == JobInput::Real)
      OpNote += " real";
    std::printf("  %llux%llu x%u %s%s: %s on %u vaults, %s on %u vaults "
                "(block %llux%llu)\n",
                static_cast<unsigned long long>(T.N),
                static_cast<unsigned long long>(T.N), T.Frames,
                jobPrecisionName(T.Precision), OpNote.c_str(),
                formatDuration(Model.serviceTime(Probe, C.Vaults)).c_str(),
                C.Vaults,
                formatDuration(Model.serviceTime(Probe, Share)).c_str(),
                Share,
                static_cast<unsigned long long>(
                    Model.estimate(T.N, Share).Plan.W),
                static_cast<unsigned long long>(
                    Model.estimate(T.N, Share).Plan.H));
  }

  if (Trace) {
    std::ofstream Out(C.Common.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   C.Common.TraceFile.c_str());
      return 1;
    }
    Trace->writeChromeTrace(Out);
    std::printf("\nwrote %zu trace events to %s (%llu dropped)\n",
                Trace->events().size(), C.Common.TraceFile.c_str(),
                static_cast<unsigned long long>(Trace->dropped()));
  }
  if (Metrics) {
    std::ofstream Out(C.Common.MetricsFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   C.Common.MetricsFile.c_str());
      return 1;
    }
    Metrics->writeJson(Out);
    std::printf("wrote %zu metrics to %s\n", Metrics->size(),
                C.Common.MetricsFile.c_str());
  }
  return 0;
}
