//===- tools/fft3d_serve.cpp - Multi-tenant serving driver ----------------===//
//
// Part of the fft3d project.
//
// Runs a stream of heterogeneous 2D-FFT requests through the serving
// layer under one or all scheduling policies and prints a per-policy
// SLO table. The same seed always reproduces the same arrival trace and
// therefore byte-identical output.
//
//   fft3d_serve [--jobs N] [--policy fcfs|sjf|prio|vault|all] [--seed S]
//               [--rate JOBS_PER_SEC] [--queue-cap N] [--partitions P]
//               [--aging-ms MS] [--mix mixed|small|large]
//               [--closed-loop CLIENTS] [--think-ms MS]
//               [--shed-infeasible] [--vaults V]
//
// Flags accept both "--key value" and "--key=value".
//
// Examples:
//   fft3d_serve --jobs 200 --policy all --seed 42
//   fft3d_serve --jobs 500 --rate 120 --policy vault --partitions 4
//   fft3d_serve --closed-loop 8 --jobs 160 --policy all
//
//===----------------------------------------------------------------------===//

#include "fault/FaultSpec.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "serve/ServeSimulator.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace fft3d;

namespace {

struct Cli {
  unsigned Jobs = 200;
  std::string Policy = "all";
  std::uint64_t Seed = 42;
  double RatePerSec = 80.0;
  std::size_t QueueCap = 64;
  unsigned Partitions = 2;
  double AgingMs = 10.0;
  std::string Mix = "mixed";
  unsigned ClosedLoopClients = 0;
  double ThinkMs = 20.0;
  bool ShedInfeasible = false;
  unsigned Vaults = 16;
  std::string FaultsFile;
  /// Chrome trace_event JSON output path; empty disables tracing.
  std::string TraceFile;
  std::uint32_t TraceCats = TraceCatAll;
  /// Metrics snapshot JSON output path; empty disables the registry.
  std::string MetricsFile;
  /// Worker threads for running the per-policy simulations concurrently.
  /// Each policy gets its own workload and simulator, so the table is
  /// identical for any value.
  unsigned Threads = 1;
  /// Vault-shard threads inside each service-model simulation.
  unsigned SimThreads = 1;
};

[[noreturn]] void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--policy fcfs|sjf|prio|vault|all]\n"
               "  [--seed S] [--rate JOBS_PER_SEC] [--queue-cap N]\n"
               "  [--partitions P] [--aging-ms MS] [--mix mixed|small|large]\n"
               "  [--closed-loop CLIENTS] [--think-ms MS]\n"
               "  [--shed-infeasible] [--vaults V] [--faults SPECFILE]\n"
               "  [--threads K] [--sim-threads K] [--trace FILE]\n"
               "  [--trace-cats mem,phase,serve,fault|all] [--metrics FILE]\n"
               "\n"
               "  --threads K      run the per-policy simulations K at a\n"
               "                   time (K >= 1)\n"
               "  --sim-threads K  vault-shard parallelism inside each\n"
               "                   service-model simulation (K >= 1);\n"
               "                   results are bit-identical for any K\n",
               Prog);
  std::exit(2);
}

/// Matches "--key=value" or "--key value"; advances \p I for the latter.
bool consumeValue(int Argc, char **Argv, int &I, const char *Key,
                  const char **Value) {
  const char *Arg = Argv[I];
  const std::size_t Len = std::strlen(Key);
  if (std::strncmp(Arg, Key, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    *Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] == '\0' && I + 1 < Argc) {
    *Value = Argv[++I];
    return true;
  }
  return false;
}

/// Matches a valueless "--key" flag exactly.
bool consumeFlag(char **Argv, int I, const char *Key) {
  return std::strcmp(Argv[I], Key) == 0;
}

Cli parse(int Argc, char **Argv) {
  Cli C;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    if (consumeValue(Argc, Argv, I, "--jobs", &Value))
      C.Jobs = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeValue(Argc, Argv, I, "--policy", &Value))
      C.Policy = Value;
    else if (consumeValue(Argc, Argv, I, "--seed", &Value))
      C.Seed = std::strtoull(Value, nullptr, 10);
    else if (consumeValue(Argc, Argv, I, "--rate", &Value))
      C.RatePerSec = std::strtod(Value, nullptr);
    else if (consumeValue(Argc, Argv, I, "--queue-cap", &Value))
      C.QueueCap = std::strtoul(Value, nullptr, 10);
    else if (consumeValue(Argc, Argv, I, "--partitions", &Value))
      C.Partitions = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeValue(Argc, Argv, I, "--aging-ms", &Value))
      C.AgingMs = std::strtod(Value, nullptr);
    else if (consumeValue(Argc, Argv, I, "--mix", &Value))
      C.Mix = Value;
    else if (consumeValue(Argc, Argv, I, "--closed-loop", &Value))
      C.ClosedLoopClients =
          static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeValue(Argc, Argv, I, "--think-ms", &Value))
      C.ThinkMs = std::strtod(Value, nullptr);
    else if (consumeValue(Argc, Argv, I, "--vaults", &Value))
      C.Vaults = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    else if (consumeValue(Argc, Argv, I, "--faults", &Value))
      C.FaultsFile = Value;
    else if (consumeValue(Argc, Argv, I, "--threads", &Value)) {
      C.Threads = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
      if (C.Threads == 0) {
        std::fprintf(stderr, "error: --threads must be >= 1 (it is the "
                             "policy-sweep parallelism, not a sim knob)\n");
        usage(Argv[0]);
      }
    } else if (consumeValue(Argc, Argv, I, "--sim-threads", &Value)) {
      C.SimThreads = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
      if (C.SimThreads == 0) {
        std::fprintf(stderr, "error: --sim-threads must be >= 1\n");
        usage(Argv[0]);
      }
    } else if (consumeValue(Argc, Argv, I, "--trace-cats", &Value)) {
      std::string Error;
      if (!parseTraceCategories(Value, C.TraceCats, &Error)) {
        std::fprintf(stderr, "error: --trace-cats: %s\n", Error.c_str());
        std::exit(2);
      }
    } else if (consumeValue(Argc, Argv, I, "--trace", &Value))
      C.TraceFile = Value;
    else if (consumeValue(Argc, Argv, I, "--metrics", &Value))
      C.MetricsFile = Value;
    else if (consumeFlag(Argv, I, "--shed-infeasible"))
      C.ShedInfeasible = true;
    else
      usage(Argv[0]);
  }
  if (C.Jobs == 0 || C.QueueCap == 0 || C.Partitions == 0 ||
      C.RatePerSec <= 0.0)
    usage(Argv[0]);
  // An unknown policy is a usage error: catch it here, before any
  // simulation work starts.
  if (C.Policy != "fcfs" && C.Policy != "sjf" && C.Policy != "prio" &&
      C.Policy != "vault" && C.Policy != "all") {
    std::fprintf(stderr, "error: unknown policy '%s'\n", C.Policy.c_str());
    usage(Argv[0]);
  }
  if (C.Mix != "mixed" && C.Mix != "small" && C.Mix != "large") {
    std::fprintf(stderr, "error: unknown mix '%s'\n", C.Mix.c_str());
    usage(Argv[0]);
  }
  return C;
}

std::vector<JobTemplate> mixFor(const std::string &Name) {
  if (Name == "mixed")
    return mixedWorkloadTemplates();
  if (Name == "small")
    return {{2048, 1, JobPrecision::Fp32, 0, 1.0, 8.0}};
  if (Name == "large")
    return {{4096, 1, JobPrecision::Fp32, 1, 1.0, 6.0}};
  std::fprintf(stderr, "error: unknown mix '%s'\n", Name.c_str());
  std::exit(2);
}

std::vector<PolicyKind> policiesFor(const std::string &Name) {
  if (Name == "fcfs")
    return {PolicyKind::Fcfs};
  if (Name == "sjf")
    return {PolicyKind::Sjf};
  if (Name == "prio")
    return {PolicyKind::PriorityAging};
  if (Name == "vault")
    return {PolicyKind::VaultPartition};
  if (Name == "all")
    return {PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::PriorityAging,
            PolicyKind::VaultPartition};
  std::fprintf(stderr, "error: unknown policy '%s'\n", Name.c_str());
  std::exit(2);
}

std::shared_ptr<const FaultSpec> loadFaultSpec(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open fault spec '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  FaultSpec Spec;
  std::string Error;
  if (!Spec.parse(In, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    std::exit(2);
  }
  return std::make_shared<const FaultSpec>(std::move(Spec));
}

} // namespace

int main(int Argc, char **Argv) {
  const Cli C = parse(Argc, Argv);

  MemoryConfig Mem;
  Mem.Geo.NumVaults = C.Vaults;
  ServiceModel Model(Mem, 8ull << 20, 50000, C.SimThreads);

  std::printf("fft3d_serve: %u jobs, mix %s, seed %llu, %u vaults, "
              "queue cap %zu%s\n",
              C.Jobs, C.Mix.c_str(),
              static_cast<unsigned long long>(C.Seed), C.Vaults, C.QueueCap,
              C.ShedInfeasible ? ", shed-infeasible" : "");

  const std::vector<JobTemplate> Mix = mixFor(C.Mix);
  // Each concurrent policy run gets its own Workload: generation is
  // seed-deterministic, so per-run copies reproduce the shared-instance
  // arrival trace exactly.
  const auto MakeLoad = [&]() -> std::unique_ptr<Workload> {
    if (C.ClosedLoopClients != 0) {
      const unsigned PerClient =
          (C.Jobs + C.ClosedLoopClients - 1) / C.ClosedLoopClients;
      return std::make_unique<ClosedLoopWorkload>(
          Mix, C.ClosedLoopClients, PerClient,
          static_cast<Picos>(C.ThinkMs * static_cast<double>(PicosPerMilli)),
          C.Seed, Model);
    }
    return std::make_unique<TraceWorkload>(
        generatePoissonTrace(Mix, C.Jobs, C.RatePerSec, C.Seed, Model));
  };
  if (C.ClosedLoopClients != 0) {
    const unsigned PerClient =
        (C.Jobs + C.ClosedLoopClients - 1) / C.ClosedLoopClients;
    std::printf("closed loop: %u clients x %u jobs, mean think %.1f ms\n\n",
                C.ClosedLoopClients, PerClient, C.ThinkMs);
  } else {
    std::printf("open loop: Poisson arrivals at %.1f jobs/s\n\n",
                C.RatePerSec);
  }

  PolicyOptions Options;
  Options.Partitions = C.Partitions;
  Options.AgingQuantum =
      static_cast<Picos>(C.AgingMs * static_cast<double>(PicosPerMilli));

  ServeConfig Config;
  Config.QueueCapacity = C.QueueCap;
  Config.ShedInfeasible = C.ShedInfeasible;
  const bool WithFaults = !C.FaultsFile.empty();
  if (WithFaults) {
    const std::shared_ptr<const FaultSpec> Faults =
        loadFaultSpec(C.FaultsFile);
    Config.Health = std::make_shared<HealthMonitor>(Faults, C.Vaults);
    Config.Brownout.Enabled = true;
    std::printf("fault spec %s: %zu vault events, %zu TSV events, "
                "%zu throttle windows, transient job-fail rate %.3f\n\n",
                C.FaultsFile.c_str(), Faults->vaultEvents().size(),
                Faults->tsvEvents().size(), Faults->throttleWindows().size(),
                Faults->jobFailRate());
  }
  std::vector<std::string> Headers = {"policy",  "done",   "shed",
                                      "jobs/s",  "p50 ms", "p95 ms",
                                      "p99 ms",  "queue p99", "miss %",
                                      "conc"};
  if (WithFaults) {
    Headers.push_back("retry");
    Headers.push_back("drop");
    Headers.push_back("brown");
    Headers.push_back("degr");
  }
  TableWriter Table(Headers);
  const std::vector<PolicyKind> Kinds = policiesFor(C.Policy);
  std::vector<ServeResult> Results(Kinds.size());
  std::unique_ptr<Tracer> Trace;
  if (!C.TraceFile.empty())
    Trace = std::make_unique<Tracer>(C.TraceCats);
  std::unique_ptr<MetricsRegistry> Metrics;
  if (!C.MetricsFile.empty())
    Metrics = std::make_unique<MetricsRegistry>();
  // The tracer is single-threaded by contract: tracing forces the
  // policy runs sequential (results are identical either way).
  const unsigned Threads =
      Trace ? 1u : ThreadPool::resolveThreads(C.Threads);
  ThreadPool Pool(Threads);
  // Fill the service-time memo once up front so concurrent policy runs
  // hit a warm cache instead of racing to duplicate the same simulations.
  {
    std::vector<std::pair<std::uint64_t, unsigned>> Keys;
    const unsigned Share = std::max(1u, C.Vaults / C.Partitions);
    for (const JobTemplate &T : Mix) {
      Keys.emplace_back(T.N, C.Vaults);
      if (Share != C.Vaults)
        Keys.emplace_back(T.N, Share);
    }
    Model.prewarm(Keys, Pool);
  }
  Pool.parallelFor(Kinds.size(), [&](std::size_t I) {
    const auto Policy = createPolicy(Kinds[I], Options);
    const std::unique_ptr<Workload> Load = MakeLoad();
    // Each policy run gets its own process track in the timeline.
    ServeConfig RunConfig = Config;
    RunConfig.Trace = Trace.get();
    RunConfig.TracePid = static_cast<std::uint32_t>(I);
    ServeSimulator Sim(RunConfig, Model);
    Results[I] = Sim.run(*Load, *Policy);
  });
  if (Metrics) {
    for (const ServeResult &R : Results)
      R.Tracker.exportTo(*Metrics, R.PolicyName, R.EndTime);
    if (Config.Health) {
      Picos LastEnd = 0;
      for (const ServeResult &R : Results)
        LastEnd = std::max(LastEnd, R.EndTime);
      Config.Health->exportTo(*Metrics, LastEnd);
    }
  }
  for (const ServeResult &R : Results) {
    const SloSummary &S = R.Summary;
    std::vector<std::string> Row = {
        R.PolicyName, TableWriter::num(S.Completed),
        TableWriter::num(S.Shed),
        TableWriter::num(S.ThroughputJobsPerSec, 1),
        TableWriter::num(S.P50LatencyMs, 2),
        TableWriter::num(S.P95LatencyMs, 2),
        TableWriter::num(S.P99LatencyMs, 2),
        TableWriter::num(S.P99QueueMs, 2),
        TableWriter::percent(S.DeadlineMissRate),
        TableWriter::num(std::uint64_t(R.PeakConcurrency))};
    if (WithFaults) {
      Row.push_back(TableWriter::num(S.Retries));
      Row.push_back(TableWriter::num(S.FailedDropped));
      Row.push_back(TableWriter::num(S.BrownoutSheds));
      Row.push_back(TableWriter::num(S.DegradedCompletions));
    }
    Table.addRow(Row);
  }
  Table.print(std::cout);

  std::printf("\nService estimates (full machine vs one partition "
              "share):\n");
  for (const JobTemplate &T : Mix) {
    JobRequest Probe;
    Probe.N = T.N;
    Probe.Frames = T.Frames;
    Probe.Precision = T.Precision;
    const unsigned Share = std::max(1u, C.Vaults / C.Partitions);
    std::printf("  %llux%llu x%u %s: %s on %u vaults, %s on %u vaults "
                "(block %llux%llu)\n",
                static_cast<unsigned long long>(T.N),
                static_cast<unsigned long long>(T.N), T.Frames,
                jobPrecisionName(T.Precision),
                formatDuration(Model.serviceTime(Probe, C.Vaults)).c_str(),
                C.Vaults,
                formatDuration(Model.serviceTime(Probe, Share)).c_str(),
                Share,
                static_cast<unsigned long long>(
                    Model.estimate(T.N, Share).Plan.W),
                static_cast<unsigned long long>(
                    Model.estimate(T.N, Share).Plan.H));
  }

  if (Trace) {
    std::ofstream Out(C.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   C.TraceFile.c_str());
      return 1;
    }
    Trace->writeChromeTrace(Out);
    std::printf("\nwrote %zu trace events to %s (%llu dropped)\n",
                Trace->events().size(), C.TraceFile.c_str(),
                static_cast<unsigned long long>(Trace->dropped()));
  }
  if (Metrics) {
    std::ofstream Out(C.MetricsFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   C.MetricsFile.c_str());
      return 1;
    }
    Metrics->writeJson(Out);
    std::printf("wrote %zu metrics to %s\n", Metrics->size(),
                C.MetricsFile.c_str());
  }
  return 0;
}
