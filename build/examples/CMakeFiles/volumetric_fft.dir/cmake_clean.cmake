file(REMOVE_RECURSE
  "CMakeFiles/volumetric_fft.dir/volumetric_fft.cpp.o"
  "CMakeFiles/volumetric_fft.dir/volumetric_fft.cpp.o.d"
  "volumetric_fft"
  "volumetric_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volumetric_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
