# Empty dependencies file for volumetric_fft.
# This may be replaced when dependencies are built.
