# Empty dependencies file for spectrum_analyzer.
# This may be replaced when dependencies are built.
