file(REMOVE_RECURSE
  "CMakeFiles/spectrum_analyzer.dir/spectrum_analyzer.cpp.o"
  "CMakeFiles/spectrum_analyzer.dir/spectrum_analyzer.cpp.o.d"
  "spectrum_analyzer"
  "spectrum_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
