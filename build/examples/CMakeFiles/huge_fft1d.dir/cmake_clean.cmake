file(REMOVE_RECURSE
  "CMakeFiles/huge_fft1d.dir/huge_fft1d.cpp.o"
  "CMakeFiles/huge_fft1d.dir/huge_fft1d.cpp.o.d"
  "huge_fft1d"
  "huge_fft1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_fft1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
