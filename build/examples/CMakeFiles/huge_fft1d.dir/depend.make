# Empty dependencies file for huge_fft1d.
# This may be replaced when dependencies are built.
