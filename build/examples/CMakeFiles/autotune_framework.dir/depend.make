# Empty dependencies file for autotune_framework.
# This may be replaced when dependencies are built.
