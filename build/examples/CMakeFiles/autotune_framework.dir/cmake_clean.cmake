file(REMOVE_RECURSE
  "CMakeFiles/autotune_framework.dir/autotune_framework.cpp.o"
  "CMakeFiles/autotune_framework.dir/autotune_framework.cpp.o.d"
  "autotune_framework"
  "autotune_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
