file(REMOVE_RECURSE
  "CMakeFiles/radar_doppler.dir/radar_doppler.cpp.o"
  "CMakeFiles/radar_doppler.dir/radar_doppler.cpp.o.d"
  "radar_doppler"
  "radar_doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
