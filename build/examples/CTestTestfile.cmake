# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_filter "/root/repo/build/examples/image_filter")
set_tests_properties(example_image_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_radar_doppler "/root/repo/build/examples/radar_doppler")
set_tests_properties(example_radar_doppler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layout_explorer "/root/repo/build/examples/layout_explorer")
set_tests_properties(example_layout_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_framework "/root/repo/build/examples/autotune_framework")
set_tests_properties(example_autotune_framework PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_volumetric_fft "/root/repo/build/examples/volumetric_fft")
set_tests_properties(example_volumetric_fft PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_analyzer "/root/repo/build/examples/spectrum_analyzer")
set_tests_properties(example_spectrum_analyzer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_huge_fft1d "/root/repo/build/examples/huge_fft1d")
set_tests_properties(example_huge_fft1d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
