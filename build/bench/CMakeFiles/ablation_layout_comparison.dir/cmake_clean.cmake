file(REMOVE_RECURSE
  "CMakeFiles/ablation_layout_comparison.dir/ablation_layout_comparison.cpp.o"
  "CMakeFiles/ablation_layout_comparison.dir/ablation_layout_comparison.cpp.o.d"
  "ablation_layout_comparison"
  "ablation_layout_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layout_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
