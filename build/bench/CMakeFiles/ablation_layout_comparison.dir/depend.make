# Empty dependencies file for ablation_layout_comparison.
# This may be replaced when dependencies are built.
