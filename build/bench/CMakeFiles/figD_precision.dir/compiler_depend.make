# Empty compiler generated dependencies file for figD_precision.
# This may be replaced when dependencies are built.
