file(REMOVE_RECURSE
  "CMakeFiles/figD_precision.dir/figD_precision.cpp.o"
  "CMakeFiles/figD_precision.dir/figD_precision.cpp.o.d"
  "figD_precision"
  "figD_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figD_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
