file(REMOVE_RECURSE
  "CMakeFiles/ablation_timing_sensitivity.dir/ablation_timing_sensitivity.cpp.o"
  "CMakeFiles/ablation_timing_sensitivity.dir/ablation_timing_sensitivity.cpp.o.d"
  "ablation_timing_sensitivity"
  "ablation_timing_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timing_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
