# Empty compiler generated dependencies file for ablation_timing_sensitivity.
# This may be replaced when dependencies are built.
