# Empty dependencies file for ablation_vault_parallelism.
# This may be replaced when dependencies are built.
