file(REMOVE_RECURSE
  "CMakeFiles/ablation_vault_parallelism.dir/ablation_vault_parallelism.cpp.o"
  "CMakeFiles/ablation_vault_parallelism.dir/ablation_vault_parallelism.cpp.o.d"
  "ablation_vault_parallelism"
  "ablation_vault_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vault_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
