file(REMOVE_RECURSE
  "CMakeFiles/figC_permutation_network.dir/figC_permutation_network.cpp.o"
  "CMakeFiles/figC_permutation_network.dir/figC_permutation_network.cpp.o.d"
  "figC_permutation_network"
  "figC_permutation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figC_permutation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
