# Empty compiler generated dependencies file for figC_permutation_network.
# This may be replaced when dependencies are built.
