file(REMOVE_RECURSE
  "CMakeFiles/table1_column_fft.dir/table1_column_fft.cpp.o"
  "CMakeFiles/table1_column_fft.dir/table1_column_fft.cpp.o.d"
  "table1_column_fft"
  "table1_column_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_column_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
