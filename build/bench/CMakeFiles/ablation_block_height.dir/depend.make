# Empty dependencies file for ablation_block_height.
# This may be replaced when dependencies are built.
