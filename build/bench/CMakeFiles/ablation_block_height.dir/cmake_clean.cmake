file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_height.dir/ablation_block_height.cpp.o"
  "CMakeFiles/ablation_block_height.dir/ablation_block_height.cpp.o.d"
  "ablation_block_height"
  "ablation_block_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
