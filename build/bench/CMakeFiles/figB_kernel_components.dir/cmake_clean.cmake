file(REMOVE_RECURSE
  "CMakeFiles/figB_kernel_components.dir/figB_kernel_components.cpp.o"
  "CMakeFiles/figB_kernel_components.dir/figB_kernel_components.cpp.o.d"
  "figB_kernel_components"
  "figB_kernel_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figB_kernel_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
