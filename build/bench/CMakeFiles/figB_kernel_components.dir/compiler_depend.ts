# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figB_kernel_components.
