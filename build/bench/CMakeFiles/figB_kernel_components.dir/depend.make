# Empty dependencies file for figB_kernel_components.
# This may be replaced when dependencies are built.
