file(REMOVE_RECURSE
  "CMakeFiles/table2_full_2dfft.dir/table2_full_2dfft.cpp.o"
  "CMakeFiles/table2_full_2dfft.dir/table2_full_2dfft.cpp.o.d"
  "table2_full_2dfft"
  "table2_full_2dfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_full_2dfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
