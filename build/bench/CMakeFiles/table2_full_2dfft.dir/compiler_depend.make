# Empty compiler generated dependencies file for table2_full_2dfft.
# This may be replaced when dependencies are built.
