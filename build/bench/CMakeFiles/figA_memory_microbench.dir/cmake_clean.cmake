file(REMOVE_RECURSE
  "CMakeFiles/figA_memory_microbench.dir/figA_memory_microbench.cpp.o"
  "CMakeFiles/figA_memory_microbench.dir/figA_memory_microbench.cpp.o.d"
  "figA_memory_microbench"
  "figA_memory_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA_memory_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
