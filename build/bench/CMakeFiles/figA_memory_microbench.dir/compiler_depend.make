# Empty compiler generated dependencies file for figA_memory_microbench.
# This may be replaced when dependencies are built.
