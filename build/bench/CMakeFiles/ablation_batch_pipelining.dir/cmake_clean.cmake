file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_pipelining.dir/ablation_batch_pipelining.cpp.o"
  "CMakeFiles/ablation_batch_pipelining.dir/ablation_batch_pipelining.cpp.o.d"
  "ablation_batch_pipelining"
  "ablation_batch_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
