# Empty compiler generated dependencies file for ablation_batch_pipelining.
# This may be replaced when dependencies are built.
