file(REMOVE_RECURSE
  "CMakeFiles/fft3d_benchutil.dir/BenchUtils.cpp.o"
  "CMakeFiles/fft3d_benchutil.dir/BenchUtils.cpp.o.d"
  "libfft3d_benchutil.a"
  "libfft3d_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
