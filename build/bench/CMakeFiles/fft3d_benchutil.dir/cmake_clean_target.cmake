file(REMOVE_RECURSE
  "libfft3d_benchutil.a"
)
