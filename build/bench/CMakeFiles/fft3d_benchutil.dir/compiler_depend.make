# Empty compiler generated dependencies file for fft3d_benchutil.
# This may be replaced when dependencies are built.
