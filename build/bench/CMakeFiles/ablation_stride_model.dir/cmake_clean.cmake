file(REMOVE_RECURSE
  "CMakeFiles/ablation_stride_model.dir/ablation_stride_model.cpp.o"
  "CMakeFiles/ablation_stride_model.dir/ablation_stride_model.cpp.o.d"
  "ablation_stride_model"
  "ablation_stride_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stride_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
