# Empty compiler generated dependencies file for ablation_stride_model.
# This may be replaced when dependencies are built.
