
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/Bluestein.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Bluestein.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Bluestein.cpp.o.d"
  "/root/repo/src/fft/Convolution.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Convolution.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Convolution.cpp.o.d"
  "/root/repo/src/fft/DppUnit.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/DppUnit.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/DppUnit.cpp.o.d"
  "/root/repo/src/fft/Fft1d.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Fft1d.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Fft1d.cpp.o.d"
  "/root/repo/src/fft/Fft2d.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Fft2d.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Fft2d.cpp.o.d"
  "/root/repo/src/fft/FourStep.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/FourStep.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/FourStep.cpp.o.d"
  "/root/repo/src/fft/Matrix.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Matrix.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Matrix.cpp.o.d"
  "/root/repo/src/fft/RadixBlock.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/RadixBlock.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/RadixBlock.cpp.o.d"
  "/root/repo/src/fft/RealFft1d.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/RealFft1d.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/RealFft1d.cpp.o.d"
  "/root/repo/src/fft/RealFft2d.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/RealFft2d.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/RealFft2d.cpp.o.d"
  "/root/repo/src/fft/ReferenceDft.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/ReferenceDft.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/ReferenceDft.cpp.o.d"
  "/root/repo/src/fft/StreamingKernel.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/StreamingKernel.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/StreamingKernel.cpp.o.d"
  "/root/repo/src/fft/TfcUnit.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/TfcUnit.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/TfcUnit.cpp.o.d"
  "/root/repo/src/fft/Twiddle.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Twiddle.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Twiddle.cpp.o.d"
  "/root/repo/src/fft/Window.cpp" "src/fft/CMakeFiles/fft3d_fft.dir/Window.cpp.o" "gcc" "src/fft/CMakeFiles/fft3d_fft.dir/Window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fft3d_support.dir/DependInfo.cmake"
  "/root/repo/build/src/permute/CMakeFiles/fft3d_permute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
