file(REMOVE_RECURSE
  "libfft3d_fft.a"
)
