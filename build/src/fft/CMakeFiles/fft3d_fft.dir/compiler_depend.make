# Empty compiler generated dependencies file for fft3d_fft.
# This may be replaced when dependencies are built.
