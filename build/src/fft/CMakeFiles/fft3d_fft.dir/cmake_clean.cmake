file(REMOVE_RECURSE
  "CMakeFiles/fft3d_fft.dir/Bluestein.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Bluestein.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Convolution.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Convolution.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/DppUnit.cpp.o"
  "CMakeFiles/fft3d_fft.dir/DppUnit.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Fft1d.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Fft1d.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Fft2d.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Fft2d.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/FourStep.cpp.o"
  "CMakeFiles/fft3d_fft.dir/FourStep.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Matrix.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Matrix.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/RadixBlock.cpp.o"
  "CMakeFiles/fft3d_fft.dir/RadixBlock.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/RealFft1d.cpp.o"
  "CMakeFiles/fft3d_fft.dir/RealFft1d.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/RealFft2d.cpp.o"
  "CMakeFiles/fft3d_fft.dir/RealFft2d.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/ReferenceDft.cpp.o"
  "CMakeFiles/fft3d_fft.dir/ReferenceDft.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/StreamingKernel.cpp.o"
  "CMakeFiles/fft3d_fft.dir/StreamingKernel.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/TfcUnit.cpp.o"
  "CMakeFiles/fft3d_fft.dir/TfcUnit.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Twiddle.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Twiddle.cpp.o.d"
  "CMakeFiles/fft3d_fft.dir/Window.cpp.o"
  "CMakeFiles/fft3d_fft.dir/Window.cpp.o.d"
  "libfft3d_fft.a"
  "libfft3d_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
