file(REMOVE_RECURSE
  "CMakeFiles/fft3d_permute.dir/BitonicNetwork.cpp.o"
  "CMakeFiles/fft3d_permute.dir/BitonicNetwork.cpp.o.d"
  "CMakeFiles/fft3d_permute.dir/ControlUnit.cpp.o"
  "CMakeFiles/fft3d_permute.dir/ControlUnit.cpp.o.d"
  "CMakeFiles/fft3d_permute.dir/Crossbar.cpp.o"
  "CMakeFiles/fft3d_permute.dir/Crossbar.cpp.o.d"
  "CMakeFiles/fft3d_permute.dir/Permutation.cpp.o"
  "CMakeFiles/fft3d_permute.dir/Permutation.cpp.o.d"
  "CMakeFiles/fft3d_permute.dir/PermutationNetwork.cpp.o"
  "CMakeFiles/fft3d_permute.dir/PermutationNetwork.cpp.o.d"
  "libfft3d_permute.a"
  "libfft3d_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
