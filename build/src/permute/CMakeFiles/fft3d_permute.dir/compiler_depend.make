# Empty compiler generated dependencies file for fft3d_permute.
# This may be replaced when dependencies are built.
