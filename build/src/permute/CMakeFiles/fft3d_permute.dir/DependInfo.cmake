
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/permute/BitonicNetwork.cpp" "src/permute/CMakeFiles/fft3d_permute.dir/BitonicNetwork.cpp.o" "gcc" "src/permute/CMakeFiles/fft3d_permute.dir/BitonicNetwork.cpp.o.d"
  "/root/repo/src/permute/ControlUnit.cpp" "src/permute/CMakeFiles/fft3d_permute.dir/ControlUnit.cpp.o" "gcc" "src/permute/CMakeFiles/fft3d_permute.dir/ControlUnit.cpp.o.d"
  "/root/repo/src/permute/Crossbar.cpp" "src/permute/CMakeFiles/fft3d_permute.dir/Crossbar.cpp.o" "gcc" "src/permute/CMakeFiles/fft3d_permute.dir/Crossbar.cpp.o.d"
  "/root/repo/src/permute/Permutation.cpp" "src/permute/CMakeFiles/fft3d_permute.dir/Permutation.cpp.o" "gcc" "src/permute/CMakeFiles/fft3d_permute.dir/Permutation.cpp.o.d"
  "/root/repo/src/permute/PermutationNetwork.cpp" "src/permute/CMakeFiles/fft3d_permute.dir/PermutationNetwork.cpp.o" "gcc" "src/permute/CMakeFiles/fft3d_permute.dir/PermutationNetwork.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fft3d_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
