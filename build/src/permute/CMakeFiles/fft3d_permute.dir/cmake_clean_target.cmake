file(REMOVE_RECURSE
  "libfft3d_permute.a"
)
