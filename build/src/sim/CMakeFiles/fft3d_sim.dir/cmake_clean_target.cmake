file(REMOVE_RECURSE
  "libfft3d_sim.a"
)
