file(REMOVE_RECURSE
  "CMakeFiles/fft3d_sim.dir/Clock.cpp.o"
  "CMakeFiles/fft3d_sim.dir/Clock.cpp.o.d"
  "CMakeFiles/fft3d_sim.dir/EventQueue.cpp.o"
  "CMakeFiles/fft3d_sim.dir/EventQueue.cpp.o.d"
  "libfft3d_sim.a"
  "libfft3d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
