# Empty dependencies file for fft3d_sim.
# This may be replaced when dependencies are built.
