file(REMOVE_RECURSE
  "CMakeFiles/fft3d_layout.dir/BlockDynamicLayout.cpp.o"
  "CMakeFiles/fft3d_layout.dir/BlockDynamicLayout.cpp.o.d"
  "CMakeFiles/fft3d_layout.dir/DataLayout.cpp.o"
  "CMakeFiles/fft3d_layout.dir/DataLayout.cpp.o.d"
  "CMakeFiles/fft3d_layout.dir/LayoutPlanner.cpp.o"
  "CMakeFiles/fft3d_layout.dir/LayoutPlanner.cpp.o.d"
  "CMakeFiles/fft3d_layout.dir/LinearLayouts.cpp.o"
  "CMakeFiles/fft3d_layout.dir/LinearLayouts.cpp.o.d"
  "CMakeFiles/fft3d_layout.dir/TiledLayout.cpp.o"
  "CMakeFiles/fft3d_layout.dir/TiledLayout.cpp.o.d"
  "libfft3d_layout.a"
  "libfft3d_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
