
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/BlockDynamicLayout.cpp" "src/layout/CMakeFiles/fft3d_layout.dir/BlockDynamicLayout.cpp.o" "gcc" "src/layout/CMakeFiles/fft3d_layout.dir/BlockDynamicLayout.cpp.o.d"
  "/root/repo/src/layout/DataLayout.cpp" "src/layout/CMakeFiles/fft3d_layout.dir/DataLayout.cpp.o" "gcc" "src/layout/CMakeFiles/fft3d_layout.dir/DataLayout.cpp.o.d"
  "/root/repo/src/layout/LayoutPlanner.cpp" "src/layout/CMakeFiles/fft3d_layout.dir/LayoutPlanner.cpp.o" "gcc" "src/layout/CMakeFiles/fft3d_layout.dir/LayoutPlanner.cpp.o.d"
  "/root/repo/src/layout/LinearLayouts.cpp" "src/layout/CMakeFiles/fft3d_layout.dir/LinearLayouts.cpp.o" "gcc" "src/layout/CMakeFiles/fft3d_layout.dir/LinearLayouts.cpp.o.d"
  "/root/repo/src/layout/TiledLayout.cpp" "src/layout/CMakeFiles/fft3d_layout.dir/TiledLayout.cpp.o" "gcc" "src/layout/CMakeFiles/fft3d_layout.dir/TiledLayout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem3d/CMakeFiles/fft3d_mem3d.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fft3d_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fft3d_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
