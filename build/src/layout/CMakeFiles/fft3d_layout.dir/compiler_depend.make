# Empty compiler generated dependencies file for fft3d_layout.
# This may be replaced when dependencies are built.
