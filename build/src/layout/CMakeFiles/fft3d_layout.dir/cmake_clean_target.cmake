file(REMOVE_RECURSE
  "libfft3d_layout.a"
)
