# CMake generated Testfile for 
# Source directory: /root/repo/src/mem3d
# Build directory: /root/repo/build/src/mem3d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
