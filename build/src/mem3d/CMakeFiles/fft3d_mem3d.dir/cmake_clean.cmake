file(REMOVE_RECURSE
  "CMakeFiles/fft3d_mem3d.dir/Address.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Address.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/Energy.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Energy.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/Geometry.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Geometry.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/MemStats.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/MemStats.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/Memory3D.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Memory3D.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/MemoryController.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/MemoryController.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/StrideAnalysis.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/StrideAnalysis.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/Timing.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Timing.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/TraceFile.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/TraceFile.cpp.o.d"
  "CMakeFiles/fft3d_mem3d.dir/Vault.cpp.o"
  "CMakeFiles/fft3d_mem3d.dir/Vault.cpp.o.d"
  "libfft3d_mem3d.a"
  "libfft3d_mem3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_mem3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
