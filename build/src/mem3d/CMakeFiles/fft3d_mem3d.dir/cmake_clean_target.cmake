file(REMOVE_RECURSE
  "libfft3d_mem3d.a"
)
