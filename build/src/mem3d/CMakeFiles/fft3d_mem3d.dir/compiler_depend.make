# Empty compiler generated dependencies file for fft3d_mem3d.
# This may be replaced when dependencies are built.
