
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem3d/Address.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Address.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Address.cpp.o.d"
  "/root/repo/src/mem3d/Energy.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Energy.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Energy.cpp.o.d"
  "/root/repo/src/mem3d/Geometry.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Geometry.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Geometry.cpp.o.d"
  "/root/repo/src/mem3d/MemStats.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/MemStats.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/MemStats.cpp.o.d"
  "/root/repo/src/mem3d/Memory3D.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Memory3D.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Memory3D.cpp.o.d"
  "/root/repo/src/mem3d/MemoryController.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/MemoryController.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/MemoryController.cpp.o.d"
  "/root/repo/src/mem3d/StrideAnalysis.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/StrideAnalysis.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/StrideAnalysis.cpp.o.d"
  "/root/repo/src/mem3d/Timing.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Timing.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Timing.cpp.o.d"
  "/root/repo/src/mem3d/TraceFile.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/TraceFile.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/TraceFile.cpp.o.d"
  "/root/repo/src/mem3d/Vault.cpp" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Vault.cpp.o" "gcc" "src/mem3d/CMakeFiles/fft3d_mem3d.dir/Vault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fft3d_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fft3d_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
