# Empty compiler generated dependencies file for fft3d_support.
# This may be replaced when dependencies are built.
