file(REMOVE_RECURSE
  "CMakeFiles/fft3d_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/fft3d_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/fft3d_support.dir/MathUtils.cpp.o"
  "CMakeFiles/fft3d_support.dir/MathUtils.cpp.o.d"
  "CMakeFiles/fft3d_support.dir/Random.cpp.o"
  "CMakeFiles/fft3d_support.dir/Random.cpp.o.d"
  "CMakeFiles/fft3d_support.dir/Stats.cpp.o"
  "CMakeFiles/fft3d_support.dir/Stats.cpp.o.d"
  "CMakeFiles/fft3d_support.dir/TableWriter.cpp.o"
  "CMakeFiles/fft3d_support.dir/TableWriter.cpp.o.d"
  "CMakeFiles/fft3d_support.dir/Units.cpp.o"
  "CMakeFiles/fft3d_support.dir/Units.cpp.o.d"
  "libfft3d_support.a"
  "libfft3d_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
