
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/ErrorHandling.cpp" "src/support/CMakeFiles/fft3d_support.dir/ErrorHandling.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/ErrorHandling.cpp.o.d"
  "/root/repo/src/support/MathUtils.cpp" "src/support/CMakeFiles/fft3d_support.dir/MathUtils.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/MathUtils.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/support/CMakeFiles/fft3d_support.dir/Random.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/Random.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/support/CMakeFiles/fft3d_support.dir/Stats.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/Stats.cpp.o.d"
  "/root/repo/src/support/TableWriter.cpp" "src/support/CMakeFiles/fft3d_support.dir/TableWriter.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/TableWriter.cpp.o.d"
  "/root/repo/src/support/Units.cpp" "src/support/CMakeFiles/fft3d_support.dir/Units.cpp.o" "gcc" "src/support/CMakeFiles/fft3d_support.dir/Units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
