file(REMOVE_RECURSE
  "libfft3d_support.a"
)
