file(REMOVE_RECURSE
  "libfft3d_core.a"
)
