file(REMOVE_RECURSE
  "CMakeFiles/fft3d_core.dir/AccessTrace.cpp.o"
  "CMakeFiles/fft3d_core.dir/AccessTrace.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/AnalyticalModel.cpp.o"
  "CMakeFiles/fft3d_core.dir/AnalyticalModel.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/AutoTuner.cpp.o"
  "CMakeFiles/fft3d_core.dir/AutoTuner.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/BatchProcessor.cpp.o"
  "CMakeFiles/fft3d_core.dir/BatchProcessor.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/Fft2dProcessor.cpp.o"
  "CMakeFiles/fft3d_core.dir/Fft2dProcessor.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/LayoutEvaluator.cpp.o"
  "CMakeFiles/fft3d_core.dir/LayoutEvaluator.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/PhaseEngine.cpp.o"
  "CMakeFiles/fft3d_core.dir/PhaseEngine.cpp.o.d"
  "CMakeFiles/fft3d_core.dir/SystemConfig.cpp.o"
  "CMakeFiles/fft3d_core.dir/SystemConfig.cpp.o.d"
  "libfft3d_core.a"
  "libfft3d_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
