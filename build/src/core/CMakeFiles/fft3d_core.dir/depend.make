# Empty dependencies file for fft3d_core.
# This may be replaced when dependencies are built.
