# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_optimized "/root/repo/build/tools/fft3d_sim" "--n=1024" "--arch=optimized")
set_tests_properties(cli_smoke_optimized PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_tune "/root/repo/build/tools/fft3d_sim" "--n=1024" "--tune" "--arch=optimized")
set_tests_properties(cli_smoke_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_refresh_closed "/root/repo/build/tools/fft3d_sim" "--n=1024" "--page=closed" "--refresh" "--arch=baseline")
set_tests_properties(cli_smoke_refresh_closed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "sh" "-c" "/root/repo/build/tools/fft3d_trace_gen --pattern=colscan --n=1024 --ops=500 > /root/repo/build/tools/t.trace && /root/repo/build/tools/fft3d_sim --replay=/root/repo/build/tools/t.trace")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
