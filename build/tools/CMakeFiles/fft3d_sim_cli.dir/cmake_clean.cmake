file(REMOVE_RECURSE
  "CMakeFiles/fft3d_sim_cli.dir/fft3d_sim.cpp.o"
  "CMakeFiles/fft3d_sim_cli.dir/fft3d_sim.cpp.o.d"
  "fft3d_sim"
  "fft3d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
