# Empty compiler generated dependencies file for fft3d_sim_cli.
# This may be replaced when dependencies are built.
