# Empty compiler generated dependencies file for fft3d_trace_gen.
# This may be replaced when dependencies are built.
