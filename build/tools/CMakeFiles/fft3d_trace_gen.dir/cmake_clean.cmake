file(REMOVE_RECURSE
  "CMakeFiles/fft3d_trace_gen.dir/fft3d_trace_gen.cpp.o"
  "CMakeFiles/fft3d_trace_gen.dir/fft3d_trace_gen.cpp.o.d"
  "fft3d_trace_gen"
  "fft3d_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
