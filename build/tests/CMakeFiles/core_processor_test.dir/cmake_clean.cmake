file(REMOVE_RECURSE
  "CMakeFiles/core_processor_test.dir/core_processor_test.cpp.o"
  "CMakeFiles/core_processor_test.dir/core_processor_test.cpp.o.d"
  "core_processor_test"
  "core_processor_test.pdb"
  "core_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
