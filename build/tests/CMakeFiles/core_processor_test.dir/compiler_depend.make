# Empty compiler generated dependencies file for core_processor_test.
# This may be replaced when dependencies are built.
