# Empty dependencies file for mem3d_trace_file_test.
# This may be replaced when dependencies are built.
