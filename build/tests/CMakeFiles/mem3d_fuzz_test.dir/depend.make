# Empty dependencies file for mem3d_fuzz_test.
# This may be replaced when dependencies are built.
