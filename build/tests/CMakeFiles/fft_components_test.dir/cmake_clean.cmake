file(REMOVE_RECURSE
  "CMakeFiles/fft_components_test.dir/fft_components_test.cpp.o"
  "CMakeFiles/fft_components_test.dir/fft_components_test.cpp.o.d"
  "fft_components_test"
  "fft_components_test.pdb"
  "fft_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
