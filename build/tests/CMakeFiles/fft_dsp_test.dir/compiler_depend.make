# Empty compiler generated dependencies file for fft_dsp_test.
# This may be replaced when dependencies are built.
