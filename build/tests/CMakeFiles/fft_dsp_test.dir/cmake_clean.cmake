file(REMOVE_RECURSE
  "CMakeFiles/fft_dsp_test.dir/fft_dsp_test.cpp.o"
  "CMakeFiles/fft_dsp_test.dir/fft_dsp_test.cpp.o.d"
  "fft_dsp_test"
  "fft_dsp_test.pdb"
  "fft_dsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_dsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
