file(REMOVE_RECURSE
  "CMakeFiles/layout_planner_test.dir/layout_planner_test.cpp.o"
  "CMakeFiles/layout_planner_test.dir/layout_planner_test.cpp.o.d"
  "layout_planner_test"
  "layout_planner_test.pdb"
  "layout_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
