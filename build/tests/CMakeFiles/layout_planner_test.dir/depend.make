# Empty dependencies file for layout_planner_test.
# This may be replaced when dependencies are built.
