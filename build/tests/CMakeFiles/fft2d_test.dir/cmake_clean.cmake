file(REMOVE_RECURSE
  "CMakeFiles/fft2d_test.dir/fft2d_test.cpp.o"
  "CMakeFiles/fft2d_test.dir/fft2d_test.cpp.o.d"
  "fft2d_test"
  "fft2d_test.pdb"
  "fft2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
