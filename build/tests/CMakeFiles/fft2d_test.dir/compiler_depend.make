# Empty compiler generated dependencies file for fft2d_test.
# This may be replaced when dependencies are built.
