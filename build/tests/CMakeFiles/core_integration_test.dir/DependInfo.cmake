
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_integration_test.cpp" "tests/CMakeFiles/core_integration_test.dir/core_integration_test.cpp.o" "gcc" "tests/CMakeFiles/core_integration_test.dir/core_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fft3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fft3d_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/fft3d_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/mem3d/CMakeFiles/fft3d_mem3d.dir/DependInfo.cmake"
  "/root/repo/build/src/permute/CMakeFiles/fft3d_permute.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fft3d_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fft3d_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
