# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mem3d_geometry_sweep_test.
