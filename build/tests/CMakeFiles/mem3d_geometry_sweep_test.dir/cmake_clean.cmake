file(REMOVE_RECURSE
  "CMakeFiles/mem3d_geometry_sweep_test.dir/mem3d_geometry_sweep_test.cpp.o"
  "CMakeFiles/mem3d_geometry_sweep_test.dir/mem3d_geometry_sweep_test.cpp.o.d"
  "mem3d_geometry_sweep_test"
  "mem3d_geometry_sweep_test.pdb"
  "mem3d_geometry_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem3d_geometry_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
