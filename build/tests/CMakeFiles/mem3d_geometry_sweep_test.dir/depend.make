# Empty dependencies file for mem3d_geometry_sweep_test.
# This may be replaced when dependencies are built.
