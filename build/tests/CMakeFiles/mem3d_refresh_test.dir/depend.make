# Empty dependencies file for mem3d_refresh_test.
# This may be replaced when dependencies are built.
