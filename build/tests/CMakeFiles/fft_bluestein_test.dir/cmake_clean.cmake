file(REMOVE_RECURSE
  "CMakeFiles/fft_bluestein_test.dir/fft_bluestein_test.cpp.o"
  "CMakeFiles/fft_bluestein_test.dir/fft_bluestein_test.cpp.o.d"
  "fft_bluestein_test"
  "fft_bluestein_test.pdb"
  "fft_bluestein_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_bluestein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
