# Empty dependencies file for fft_bluestein_test.
# This may be replaced when dependencies are built.
