# Empty compiler generated dependencies file for mem3d_memory_test.
# This may be replaced when dependencies are built.
