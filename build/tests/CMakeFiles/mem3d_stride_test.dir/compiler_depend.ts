# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mem3d_stride_test.
