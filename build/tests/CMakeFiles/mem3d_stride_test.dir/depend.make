# Empty dependencies file for mem3d_stride_test.
# This may be replaced when dependencies are built.
