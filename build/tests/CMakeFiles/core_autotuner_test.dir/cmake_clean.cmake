file(REMOVE_RECURSE
  "CMakeFiles/core_autotuner_test.dir/core_autotuner_test.cpp.o"
  "CMakeFiles/core_autotuner_test.dir/core_autotuner_test.cpp.o.d"
  "core_autotuner_test"
  "core_autotuner_test.pdb"
  "core_autotuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_autotuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
