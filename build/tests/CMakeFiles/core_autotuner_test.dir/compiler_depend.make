# Empty compiler generated dependencies file for core_autotuner_test.
# This may be replaced when dependencies are built.
