# Empty compiler generated dependencies file for mem3d_energy_test.
# This may be replaced when dependencies are built.
