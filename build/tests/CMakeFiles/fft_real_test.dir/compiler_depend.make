# Empty compiler generated dependencies file for fft_real_test.
# This may be replaced when dependencies are built.
