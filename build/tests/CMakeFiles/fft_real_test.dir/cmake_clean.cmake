file(REMOVE_RECURSE
  "CMakeFiles/fft_real_test.dir/fft_real_test.cpp.o"
  "CMakeFiles/fft_real_test.dir/fft_real_test.cpp.o.d"
  "fft_real_test"
  "fft_real_test.pdb"
  "fft_real_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_real_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
