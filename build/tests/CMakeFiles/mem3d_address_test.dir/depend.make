# Empty dependencies file for mem3d_address_test.
# This may be replaced when dependencies are built.
