# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_address_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_memory_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_energy_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_refresh_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_stride_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_geometry_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/mem3d_trace_file_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/layout_planner_test[1]_include.cmake")
include("/root/repo/build/tests/permute_test[1]_include.cmake")
include("/root/repo/build/tests/fft1d_test[1]_include.cmake")
include("/root/repo/build/tests/fft_real_test[1]_include.cmake")
include("/root/repo/build/tests/fft_dsp_test[1]_include.cmake")
include("/root/repo/build/tests/fft_bluestein_test[1]_include.cmake")
include("/root/repo/build/tests/fft2d_test[1]_include.cmake")
include("/root/repo/build/tests/fft_components_test[1]_include.cmake")
include("/root/repo/build/tests/core_trace_test[1]_include.cmake")
include("/root/repo/build/tests/core_phase_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_processor_test[1]_include.cmake")
include("/root/repo/build/tests/core_autotuner_test[1]_include.cmake")
include("/root/repo/build/tests/core_integration_test[1]_include.cmake")
