//===- bench/BenchUtils.h - Shared benchmark plumbing -----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: single-phase
/// simulation wrappers (Table 1 and the ablations need the column phase
/// in isolation) and uniform printing.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_BENCH_BENCHUTILS_H
#define FFT3D_BENCH_BENCHUTILS_H

#include "core/AnalyticalModel.h"
#include "core/Fft2dProcessor.h"
#include "core/PhaseEngine.h"
#include "core/SystemConfig.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <functional>
#include <string>

namespace fft3d {
namespace bench {

/// Simulates only the column-wise phase (phase 2) of the 2D FFT for one
/// architecture, with the intermediate matrix already resident in the
/// architecture's layout. Returns the measured phase metrics.
PhaseResult simulateColumnPhase(const SystemConfig &Config,
                                const ArchParams &Arch, bool Optimized);

/// Simulates only the row-wise phase (phase 1).
PhaseResult simulateRowPhase(const SystemConfig &Config,
                             const ArchParams &Arch, bool Optimized);

/// Simulates the column phase over an arbitrary intermediate layout
/// (used by the layout-comparison ablation). Block layouts stream whole
/// blocks; linear/tiled layouts stream per-element column scans.
PhaseResult simulateColumnPhaseOver(const SystemConfig &Config,
                                    const ArchParams &Arch,
                                    const DataLayout &Mid,
                                    const DataLayout &Out);

/// Simulates the row phase over an arbitrary intermediate layout.
PhaseResult simulateRowPhaseOver(const SystemConfig &Config,
                                 const ArchParams &Arch,
                                 const DataLayout &Mid);

/// Prints the standard bench header with the modelled device summary.
void printHeader(const std::string &Title, const SystemConfig &Config);

/// Parses a "--threads K" / "--threads=K" flag from a bench binary's
/// argv (0 resolves to the hardware concurrency); defaults to 1 when the
/// flag is absent so existing invocations stay sequential.
unsigned threadsFromArgs(int Argc, char **Argv);

/// Runs Body(I) for I in [0, N) on \p Threads threads. Sweep cells own
/// their simulators, so any thread count produces identical tables; rows
/// are printed by the caller afterwards, in index order.
void forEachIndex(std::size_t N, unsigned Threads,
                  const std::function<void(std::size_t)> &Body);

} // namespace bench
} // namespace fft3d

#endif // FFT3D_BENCH_BENCHUTILS_H
