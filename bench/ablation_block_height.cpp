//===- bench/ablation_block_height.cpp - Eq. 1 optimality sweep -----------===//
//
// Part of the fft3d project.
//
// Ablation A: the paper asserts the block height h from Eq. 1 is
// optimal. Every block fills one row buffer regardless of h (w = s/h),
// so phase-2 block reads are insensitive to h; the tradeoff lives in
// phase 1 (writeback chunks are w elements: taller blocks mean smaller,
// more numerous chunk writes) and in the on-chip permutation cost. This
// sweep makes that tradeoff visible and marks Eq. 1's pick.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "layout/LayoutPlanner.h"
#include "permute/ControlUnit.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 2048;
  SystemConfig Config = SystemConfig::forProblemSize(N);
  printHeader("Ablation A: block height h sweep (Eq. 1 optimality)",
              Config);

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Eq1 = Planner.plan(N, Config.Optimized.VaultsParallel);
  const std::uint64_t S = Eq1.RowBufferElems;
  std::cout << "Eq. 1 picks h = " << Eq1.H << " (raw " << Eq1.RawH << ", "
            << planRegimeName(Eq1.Regime) << ")\n\n";

  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  const PhysAddr MidBase = MatrixBytes;
  const PhysAddr OutBase = 2 * MatrixBytes;

  ArchParams Combining = Config.Optimized;
  Combining.WriteCombine = true;

  TableWriter Table({"h", "w", "phase1 (GB/s)", "p1+combine (GB/s)",
                     "combine SRAM", "phase2 (GB/s)", "p2 activations",
                     "column-serial SRAM", "Eq.1"});
  std::vector<std::uint64_t> Heights;
  for (std::uint64_t H = 8; H <= S; H *= 2) {
    if (S / H > N || H > N)
      continue;
    Heights.push_back(H);
  }
  struct Cell {
    PhaseResult P1, P1C, P2;
  };
  std::vector<Cell> Cells(Heights.size());
  forEachIndex(Heights.size(), Threads, [&](std::size_t I) {
    const std::uint64_t H = Heights[I];
    const std::uint64_t W = S / H;
    const BlockDynamicLayout Mid(N, N, ElementBytes, MidBase, W, H);
    const BlockDynamicLayout Out(N, N, ElementBytes, OutBase, W, H);
    Cells[I].P1 = simulateRowPhaseOver(Config, Config.Optimized, Mid);
    Cells[I].P1C = simulateRowPhaseOver(Config, Combining, Mid);
    Cells[I].P2 =
        simulateColumnPhaseOver(Config, Config.Optimized, Mid, Out);
  });
  for (std::size_t I = 0; I != Heights.size(); ++I) {
    const std::uint64_t H = Heights[I];
    const std::uint64_t W = S / H;
    const std::uint64_t Sram =
        2 * ElementBytes *
        streamingBufferWords(
            ControlUnit::columnFetchPermutation(W, H,
                                                StreamMode::ColumnSerial),
            Config.Optimized.Lanes);
    Table.addRow({TableWriter::num(H), TableWriter::num(W),
                  TableWriter::num(Cells[I].P1.ThroughputGBps, 2),
                  TableWriter::num(Cells[I].P1C.ThroughputGBps, 2),
                  formatBytes(H * N * ElementBytes),
                  TableWriter::num(Cells[I].P2.ThroughputGBps, 2),
                  TableWriter::num(Cells[I].P2.RowActivations),
                  formatBytes(Sram), H == Eq1.H ? "<== Eq. 1" : ""});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: phase 2 is flat (any h with w*h = s\n"
               "amortizes one activation per row buffer); phase 1 holds\n"
               "until the chunk size w*8B becomes too small to cover the\n"
               "per-vault activation spacing, i.e. Eq. 1's bank-limited\n"
               "bound. Write combining (buffering h full rows, SRAM cost\n"
               "in the 'combine SRAM' column) removes that collapse at\n"
               "the price of h*N elements of on-chip memory - the\n"
               "latency/buffer tradeoff the paper's Eq. 1 negotiates.\n"
               "The last SRAM column is the per-block reorganization a\n"
               "column-serial kernel would pay.\n";
  return 0;
}
