//===- bench/figB_kernel_components.cpp - Fig. 2 component models ---------===//
//
// Part of the fft3d project.
//
// Paper Fig. 2 shows the kernel's building blocks: the radix-4 block,
// the DPP unit (muxes + data buffers) and the TFC unit (twiddle ROMs +
// complex multipliers). This bench prints the per-stage sizing the
// paper describes qualitatively ("the size of each data buffer/lookup
// table depends on the ordinal number of its stage and the FFT problem
// size") and the whole-kernel resource/throughput model, with a numeric
// correctness spot check per size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "fft/DppUnit.h"
#include "fft/ReferenceDft.h"
#include "fft/StreamingKernel.h"
#include "fft/TfcUnit.h"
#include "support/Random.h"

#include <cmath>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

double spotCheckError(const StreamingKernel &Kernel) {
  const std::uint64_t N = Kernel.fftSize();
  Rng R(N);
  std::vector<CplxD> Wide(N);
  std::vector<CplxF> Frame(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    Wide[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Frame[I] = narrow(Wide[I]);
  }
  const std::vector<CplxD> Ref = referenceDft(Wide);
  Kernel.runForward(Frame);
  double Max = 0.0, Scale = 0.0;
  for (std::uint64_t I = 0; I != N; ++I) {
    Max = std::max(Max, std::abs(widen(Frame[I]) - Ref[I]));
    Scale = std::max(Scale, std::abs(Ref[I]));
  }
  return Max / Scale;
}

} // namespace

int main() {
  printHeader("Figure 2 companion: streaming kernel component sizing",
              SystemConfig::forProblemSize(2048));

  // Per-stage breakdown at the paper's headline size.
  {
    const std::uint64_t N = 2048;
    const std::uint64_t Radix4Size = N / 2; // one radix-2 stage on top
    std::cout << "per-stage breakdown, N = " << N
              << " (radix-4 over " << Radix4Size
              << "-point halves + 1 radix-2 combine), 8 lanes:\n";
    TableWriter Stages({"stage", "DPP buffer", "DPP muxes", "TFC ROM",
                        "complex mults", "fill cycles"});
    for (unsigned S = 0; S != 5; ++S) {
      const DppUnit Dpp(Radix4Size, 4, S, 8);
      const TfcUnit Tfc(Radix4Size, 4, S, 8);
      Stages.addRow({"radix-4 #" + std::to_string(S),
                     formatBytes(Dpp.bufferBytes()),
                     TableWriter::num(std::uint64_t(Dpp.muxCount())),
                     formatBytes(Tfc.romBytes()),
                     TableWriter::num(std::uint64_t(Tfc.complexMultipliers())),
                     TableWriter::num(Dpp.latencyCycles())});
    }
    Stages.addRow({"radix-2 combine", formatBytes(N / 2 * ElementBytes), "16",
                   formatBytes(N / 2 * ElementBytes), "4",
                   TableWriter::num(std::uint64_t(N / 2 / 8))});
    Stages.print(std::cout);
  }

  std::cout << "\nwhole-kernel model across problem sizes (8 lanes):\n";
  TableWriter Table({"N", "stages", "clock (MHz)", "stream (GB/s)",
                     "delay buffers", "twiddle ROMs", "DSP mults",
                     "fill", "rel. error vs DFT"});
  for (std::uint64_t N : {64ull, 256ull, 1024ull, 2048ull, 4096ull,
                          8192ull}) {
    const StreamingKernel Kernel(N, 8);
    const KernelResources Res = Kernel.resources();
    Table.addRow({TableWriter::num(N),
                  TableWriter::num(std::uint64_t(Kernel.numStages())),
                  TableWriter::num(Kernel.clockMHz(), 0),
                  TableWriter::num(Kernel.streamGBps(), 2),
                  formatBytes(Res.DelayBufferBytes),
                  formatBytes(Res.TwiddleRomBytes),
                  TableWriter::num(std::uint64_t(Res.RealMultipliers)),
                  formatDuration(Kernel.pipelineFillTime()),
                  N <= 2048
                      ? TableWriter::num(spotCheckError(Kernel) * 1e6, 2) +
                            "e-6"
                      : std::string("(skipped: O(N^2) oracle)")});
  }
  Table.print(std::cout);

  std::cout << "\nradix-2 vs radix-4 architecture at N = 2048, 8 lanes:\n";
  TableWriter RadixTable({"radix", "stages", "delay buffers", "ROMs",
                          "DSP mults", "muxes", "fill"});
  for (const KernelRadix R : {KernelRadix::Radix4, KernelRadix::Radix2}) {
    const StreamingKernel K(2048, 8, 0.0, R);
    const KernelResources Res = K.resources();
    RadixTable.addRow({kernelRadixName(R),
                       TableWriter::num(std::uint64_t(K.numStages())),
                       formatBytes(Res.DelayBufferBytes),
                       formatBytes(Res.TwiddleRomBytes),
                       TableWriter::num(std::uint64_t(Res.RealMultipliers)),
                       TableWriter::num(std::uint64_t(Res.Muxes)),
                       formatDuration(K.pipelineFillTime())});
  }
  RadixTable.print(std::cout);

  std::cout << "\nThe delay-buffer totals follow the N-1 SDF bound; ROMs\n"
               "grow with stage ordinal exactly as Fig. 2c describes.\n"
               "The radix comparison shows why the paper builds radix-4:\n"
               "identical delay memory, roughly half the multiplier\n"
               "stages.\n";
  return 0;
}
