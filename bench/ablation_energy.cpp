//===- bench/ablation_energy.cpp - Row-activation energy study ------------===//
//
// Part of the fft3d project.
//
// Ablation E: the energy side of the dynamic layout. The paper's
// companion work (reference [6]) frames strided access as a row-
// activation *energy* problem: activating an 8 KiB page to read 8 bytes
// wastes three orders of magnitude of sensing energy. This bench prices
// both phases of the 2D FFT under each layout with the HMC-class energy
// model and reports pJ/bit, activations per KiB, and average power.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/LayoutEvaluator.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "layout/TiledLayout.h"
#include "support/MathUtils.h"

#include <iostream>
#include <memory>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 2048;
  SystemConfig Config = SystemConfig::forProblemSize(N);
  printHeader("Ablation E: energy per bit by intermediate layout", Config);

  const EnergyParams Params;
  std::cout << "energy model: " << Params.ActivatePJ
            << " pJ/activation, " << Params.ReadBeatPJ << "/"
            << Params.WriteBeatPJ << " pJ per 8 B read/write beat, "
            << Params.TsvBeatPJ << " pJ per TSV beat, "
            << Params.StaticMilliwattsPerVault << " mW/vault static\n\n";

  const std::uint64_t Stride =
      roundUp(N * N * ElementBytes, Config.Mem.Geo.RowBufferBytes);
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Config.Optimized.VaultsParallel);

  struct Entry {
    const char *Name;
    std::unique_ptr<DataLayout> Mid;
    std::unique_ptr<DataLayout> Out;
    /// The baseline runs the blocking single-lane front end.
    bool BaselineFrontEnd;
  };
  std::vector<Entry> Entries;
  Entries.push_back({"row-major + blocking front end (paper baseline)",
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      Stride),
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      2 * Stride),
                     true});
  Entries.push_back({"row-major + optimized front end",
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      Stride),
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      2 * Stride),
                     false});
  Entries.push_back(
      {"tiled (Akin et al.)",
       std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
           N, N, ElementBytes, Stride, Config.Mem.Geo.RowBufferBytes)),
       std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
           N, N, ElementBytes, 2 * Stride, Config.Mem.Geo.RowBufferBytes)),
       false});
  Entries.push_back({"block-dynamic, skewed (this paper)",
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, Stride, Plan.W, Plan.H, true),
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, 2 * Stride, Plan.W, Plan.H,
                         true),
                     false});

  const LayoutEvaluator Evaluator(Config, Params);
  struct Cell {
    LayoutMetrics M;
    EnergyBreakdown ColEnergy;
    PhaseResult Col;
  };
  std::vector<Cell> Cells(Entries.size());
  forEachIndex(Entries.size(), Threads, [&](std::size_t I) {
    const Entry &E = Entries[I];
    const ArchParams &Arch =
        E.BaselineFrontEnd ? Config.Baseline : Config.Optimized;
    Cells[I].M = Evaluator.evaluate(Arch, *E.Mid, *E.Out);
    Cells[I].Col = Evaluator.runColumnPhase(Arch, *E.Mid, *E.Out,
                                            &Cells[I].ColEnergy);
  });

  TableWriter Table({"configuration", "app (GB/s)", "pJ/bit",
                     "activations/KiB", "col-phase power (mW)"});
  double BaselinePJ = 0.0, OptPJ = 0.0;
  for (std::size_t I = 0; I != Entries.size(); ++I) {
    const Entry &E = Entries[I];
    const LayoutMetrics &M = Cells[I].M;
    Table.addRow({E.Name, TableWriter::num(M.AppGBps, 2),
                  TableWriter::num(M.PicojoulesPerBit, 2),
                  TableWriter::num(M.ActivationsPerKiB, 3),
                  TableWriter::num(
                      Cells[I].ColEnergy.milliwatts(Cells[I].Col.Elapsed),
                      0)});
    if (E.BaselineFrontEnd)
      BaselinePJ = M.PicojoulesPerBit;
    if (std::string(E.Name).find("skewed") != std::string::npos)
      OptPJ = M.PicojoulesPerBit;
  }
  Table.print(std::cout);

  if (OptPJ > 0.0)
    std::cout << "\nenergy-per-bit improvement, baseline -> dynamic layout: "
              << TableWriter::num(BaselinePJ / OptPJ, 1) << "x\n";
  std::cout << "\nExpected shape: the baseline pays one ~0.9 nJ activation\n"
               "per 8-byte element in phase 2 plus minutes of static\n"
               "energy at 1 GB/s; the block layout amortizes one\n"
               "activation over 8 KiB and finishes ~30x sooner, so both\n"
               "the dynamic and the static pJ/bit collapse.\n";
  return 0;
}
