//===- bench/ablation_mapping.cpp - Address-mapping design space ----------===//
//
// Part of the fft3d project.
//
// Ablation H: where the vault/bank bits sit in the physical address.
// The paper assumes (without spelling out) a vault-interleaved mapping;
// this sweep shows why: with the vault bits high (contiguous banks) even
// the row phase serializes, and no mapping - not even the XOR hash real
// controllers use - rescues the stride-N column phase the way the
// dynamic layout does. The optimized architecture's numbers are shown
// alongside to prove they survive every mapping (blocks address whole
// row buffers, so the mapping only permutes which vault serves which
// block).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 2048;
  printHeader("Ablation H: address-mapping design space",
              SystemConfig::forProblemSize(N));

  const std::vector<AddressMapKind> Kinds = {
      AddressMapKind::ColVaultBankRow, AddressMapKind::ColBankVaultRow,
      AddressMapKind::ColVaultRowBank, AddressMapKind::ColRowBankVault};
  struct Cell {
    PhaseResult BaseRow, BaseCol, OptRow, OptCol;
  };
  std::vector<Cell> Cells(Kinds.size() * 2);
  forEachIndex(Cells.size(), Threads, [&](std::size_t I) {
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Config.Mem.MapKind = Kinds[I / 2];
    Config.Mem.XorHash = I % 2 != 0;
    Cells[I].BaseRow = simulateRowPhase(Config, Config.Baseline, false);
    Cells[I].BaseCol = simulateColumnPhase(Config, Config.Baseline, false);
    Cells[I].OptRow = simulateRowPhase(Config, Config.Optimized, true);
    Cells[I].OptCol = simulateColumnPhase(Config, Config.Optimized, true);
  });

  TableWriter Table({"mapping", "xor", "base row (GB/s)", "base col (GB/s)",
                     "opt row (GB/s)", "opt col (GB/s)"});
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    Table.addRow({addressMapKindName(Kinds[I / 2]),
                  I % 2 != 0 ? "yes" : "no",
                  TableWriter::num(C.BaseRow.ThroughputGBps, 2),
                  TableWriter::num(C.BaseCol.ThroughputGBps, 2),
                  TableWriter::num(C.OptRow.ThroughputGBps, 2),
                  TableWriter::num(C.OptCol.ThroughputGBps, 2)});
    if (I % 2 != 0)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout
      << "\nMeasured shape: the baseline column phase is ~0.6 GB/s under\n"
         "every open-row mapping (a blocking front end cannot be saved\n"
         "by bit placement) and 0.2 GB/s under the fully contiguous one\n"
         "(t_diff_row-gated). The baseline row phase is kernel-bound at\n"
         "4 GB/s regardless: its 8 KiB blocking bursts dwarf any latency\n"
         "difference. The interesting column is the OPTIMIZED one: the\n"
         "skew's vault round-robin presumes vault bits directly above\n"
         "the row-offset bits. With bank bits below the vault bits the\n"
         "rotation lands on banks first (21-31 GB/s), and with the\n"
         "contiguous mapping it collapses to one vault (5 GB/s). The\n"
         "dynamic layout and the address mapping are co-designed - which\n"
         "is precisely why the planner and mapper live in one framework\n"
         "(and what `AutoTuner` would flag on a foreign device).\n";
  return 0;
}
