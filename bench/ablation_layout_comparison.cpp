//===- bench/ablation_layout_comparison.cpp - Layout shoot-out ------------===//
//
// Part of the fft3d project.
//
// Ablation D: the intermediate-layout design space. Row-major (the
// paper's baseline), column-major (its mirror image: fixes phase 2,
// breaks phase 1), the tiled mapping of Akin et al. [2], and the
// paper's block-dynamic layout with and without the vault skew. All are
// driven through the same optimized front end (8 lanes, deep windows) so
// the comparison isolates the layout itself.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/AccessTrace.h"

#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "layout/TiledLayout.h"
#include "permute/ControlUnit.h"
#include "support/MathUtils.h"

#include <iostream>
#include <memory>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 2048;
  SystemConfig Config = SystemConfig::forProblemSize(N);
  printHeader("Ablation D: intermediate data layout comparison", Config);

  const std::uint64_t MatrixBytes = N * N * ElementBytes;
  const PhysAddr MidBase = roundUp(MatrixBytes, Config.Mem.Geo.RowBufferBytes);
  const PhysAddr OutBase = 2 * MidBase;

  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Config.Optimized.VaultsParallel);

  struct Entry {
    const char *Name;
    std::unique_ptr<DataLayout> Mid;
    std::unique_ptr<DataLayout> Out;
  };
  std::vector<Entry> Entries;
  Entries.push_back({"row-major (paper baseline)",
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      MidBase),
                     std::make_unique<RowMajorLayout>(N, N, ElementBytes,
                                                      OutBase)});
  Entries.push_back({"col-major (mirror image)",
                     std::make_unique<ColMajorLayout>(N, N, ElementBytes,
                                                      MidBase),
                     std::make_unique<ColMajorLayout>(N, N, ElementBytes,
                                                      OutBase)});
  Entries.push_back(
      {"tiled, row-buffer tiles (Akin et al.)",
       std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
           N, N, ElementBytes, MidBase, Config.Mem.Geo.RowBufferBytes)),
       std::make_unique<TiledLayout>(TiledLayout::forRowBuffer(
           N, N, ElementBytes, OutBase, Config.Mem.Geo.RowBufferBytes))});
  Entries.push_back({"block-dynamic, no skew",
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, MidBase, Plan.W, Plan.H, false),
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, OutBase, Plan.W, Plan.H,
                         false)});
  Entries.push_back({"block-dynamic, skewed (this paper)",
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, MidBase, Plan.W, Plan.H, true),
                     std::make_unique<BlockDynamicLayout>(
                         N, N, ElementBytes, OutBase, Plan.W, Plan.H,
                         true)});

  TableWriter Table({"intermediate layout", "phase1 (GB/s)",
                     "phase2 (GB/s)", "app (GB/s)", "p2 row acts",
                     "p2 hit rate"});
  struct Cell {
    PhaseResult P1, P2;
  };
  std::vector<Cell> Cells(Entries.size());
  forEachIndex(Entries.size(), Threads, [&](std::size_t I) {
    Cells[I].P1 =
        simulateRowPhaseOver(Config, Config.Optimized, *Entries[I].Mid);
    Cells[I].P2 = simulateColumnPhaseOver(Config, Config.Optimized,
                                          *Entries[I].Mid, *Entries[I].Out);
  });
  for (std::size_t I = 0; I != Entries.size(); ++I) {
    const PhaseResult &P1 = Cells[I].P1;
    const PhaseResult &P2 = Cells[I].P2;
    const double App = AnalyticalModel::harmonicCombine(P1.ThroughputGBps,
                                                        P2.ThroughputGBps);
    Table.addRow({Entries[I].Name, TableWriter::num(P1.ThroughputGBps, 2),
                  TableWriter::num(P2.ThroughputGBps, 2),
                  TableWriter::num(App, 2),
                  TableWriter::num(P2.RowActivations),
                  TableWriter::percent(P2.RowHitRate, 1)});
  }

  // Three-pass alternative (related work [11]): row FFTs into row-major,
  // an explicit tiled transpose pass, then the "column" FFTs run as
  // sequential row scans of the transposed matrix. The transpose pass
  // reads and writes 32 x 32 tiles in 256 B strided chunks.
  {
    const RowMajorLayout MidRm(N, N, ElementBytes, MidBase);
    const RowMajorLayout OutRm(N, N, ElementBytes, OutBase);
    const PhaseResult P1 =
        simulateRowPhaseOver(Config, Config.Optimized, MidRm);
    // Transpose pass: tile-chunk reads of Mid, tile-chunk writes of Out.
    EventQueue Events;
    Memory3D Mem(Events, Config.Mem);
    PhaseEngine Engine(Mem, Events, Config.MaxSimBytesPerDirection,
                       Config.MaxSimOpsPerDirection);
    TileScanTrace TRead(MidRm, 32, 32);
    TileScanTrace TWrite(OutRm, 32, 32);
    const PhaseResult Tp = Engine.run(
        {&TRead, false, Config.Optimized.ReadWindow, 16.0, 0},
        {&TWrite, true, Config.Optimized.WriteWindow, 16.0, 0});
    // After transposing, the second FFT pass is row-sequential.
    const PhaseResult P2 =
        simulateRowPhaseOver(Config, Config.Optimized, OutRm);
    // Same useful work as two passes, so charge the extra traffic as
    // time: equivalent app rate = 4 matrix volumes / total time.
    const double TotalNs =
        picosToNanos(P1.EstimatedPhaseTime) +
        picosToNanos(Tp.EstimatedPhaseTime) +
        picosToNanos(P2.EstimatedPhaseTime);
    const double App = 4.0 * static_cast<double>(N * N * ElementBytes) /
                       TotalNs;
    Table.addSeparator();
    Table.addRow({"row-major + transpose pass [11] (3 passes)",
                  TableWriter::num(P1.ThroughputGBps, 2),
                  TableWriter::num(Tp.ThroughputGBps, 2) + " (transpose)",
                  TableWriter::num(App, 2),
                  TableWriter::num(Tp.RowActivations),
                  TableWriter::percent(Tp.RowHitRate, 1)});
  }
  Table.print(std::cout);

  std::cout
      << "\nExpected shape: the linear layouts each sacrifice one phase.\n"
         "The tiled layout repairs the row-buffer hit rate (~97%) but its\n"
         "column-of-tiles walk keeps a constant tile-index residue, so on\n"
         "a vault-interleaved 3D memory it serializes onto one vault -\n"
         "and it still pays the on-chip transposition the paper\n"
         "criticizes. The paper's skew is exactly what fixes this: the\n"
         "skewed block-dynamic layout sustains both phases, while the\n"
         "unskewed variant shows the same single-vault column pathology\n"
         "partially hidden by deep queuing. The explicit transpose\n"
         "strategy [11] keeps every pass fast but pays a whole extra\n"
         "round trip through memory, landing at ~2/3 of the dynamic\n"
         "layout's effective rate.\n";
  return 0;
}
