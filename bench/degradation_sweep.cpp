//===- bench/degradation_sweep.cpp - Throughput under injected faults -----===//
//
// Part of the fft3d project.
//
// Sweeps the two degradation axes of the fault model - vaults failed at
// start {0, 1, 2, 4, 8, 12} and thermal-throttle duty {0%, 25%, 50%} -
// and reports, per cell:
//
//  - the optimized 2D-FFT application throughput (Eq. 1 re-planned for
//    the surviving vaults, the failed vaults' traffic spread round-robin
//    across them), and
//  - the serving layer's job throughput and p99 latency on the mixed
//    tenant workload with retry + brownout enabled.
//
// The shape to expect: the optimized design needs only ~32 of the
// device's 80 GB/s, so the balanced spare mapping absorbs vault failures
// with almost no FFT throughput loss until the survivors' aggregate
// bandwidth drops below the kernel demand (the failed=12 rows sit past
// that cliff). Throttle duty cuts into the kernel window directly and is
// felt at every failure count. The serving layer converts the same
// capacity loss into queueing delay and deadline misses long before the
// FFT itself slows down - the brownout column shows it shedding
// background work to protect the latency of what remains.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "fault/FaultSpec.h"
#include "serve/ServeSimulator.h"

#include <iostream>
#include <string>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

/// Builds the spec text for \p FailedVaults vaults dead at t=0 and a
/// run-long throttle window of \p DutyPct percent.
std::string specFor(unsigned FailedVaults, unsigned DutyPct) {
  std::string Text = "seed 1\n";
  for (unsigned V = 0; V != FailedVaults; ++V)
    Text += "vault_fail " + std::to_string(V) + " at 0\n";
  if (DutyPct != 0)
    Text += "throttle from 0 until 60000 period 100 duty " +
            std::to_string(DutyPct) + "\n";
  return Text;
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  SystemConfig Base = SystemConfig::forProblemSize(1024);
  printHeader("Degradation sweep: vault failures x thermal throttling",
              Base);

  const MemoryConfig HealthyMem = Base.Mem;
  ServiceModel Model(HealthyMem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::uint64_t Seed = 42;
  const unsigned Jobs = 150;
  const double RatePerSec = 90.0;

  const std::vector<unsigned> FailedAxis = {0u, 1u, 2u, 4u, 8u, 12u};
  const std::vector<unsigned> DutyAxis = {0u, 25u, 50u};

  struct Cell {
    AppReport App;
    SloSummary Slo;
    std::string Error;
  };
  std::vector<Cell> Cells(FailedAxis.size() * DutyAxis.size());
  // Every cell builds its own fault spec, processor, workload and serve
  // simulator; only the (thread-safe, memoized) service model is shared.
  forEachIndex(Cells.size(), Threads, [&](std::size_t I) {
    const unsigned Failed = FailedAxis[I / DutyAxis.size()];
    const unsigned Duty = DutyAxis[I % DutyAxis.size()];
    const std::string Text = specFor(Failed, Duty);
    auto Spec = std::make_shared<FaultSpec>();
    std::string Error;
    if (!Spec->parse(Text, &Error)) {
      Cells[I].Error = Error;
      return;
    }

    // Application throughput: the full optimized 2D FFT on the degraded
    // device.
    SystemConfig Config = Base;
    Config.Mem.Faults = Spec;
    Fft2dProcessor Processor(Config);
    Cells[I].App = Processor.runOptimized();

    // Serving behaviour on the same degraded device.
    ServeConfig Serve;
    Serve.QueueCapacity = 64;
    Serve.Health = std::make_shared<HealthMonitor>(
        Spec, HealthyMem.Geo.NumVaults);
    Serve.Brownout.Enabled = true;
    ServeSimulator Sim(Serve, Model);
    TraceWorkload Load(
        generatePoissonTrace(Mix, Jobs, RatePerSec, Seed, Model));
    const auto Policy = createPolicy(PolicyKind::VaultPartition);
    Cells[I].Slo = Sim.run(Load, *Policy).Summary;
  });

  // "ecc" and "redir" come from the per-phase fault counters carried on
  // PhaseResult (summed over both FFT phases); without them the stats
  // reset between phases would hide the fault activity entirely.
  TableWriter Table({"failed", "duty %", "healthy", "fft GB/s", "ecc",
                     "redir", "jobs/s", "p99 ms", "miss %", "brownout"});
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    if (!Cells[I].Error.empty()) {
      std::cerr << "internal spec error: " << Cells[I].Error << "\n";
      return 1;
    }
    const AppReport &App = Cells[I].App;
    const SloSummary &S = Cells[I].Slo;
    Table.addRow(
        {TableWriter::num(std::uint64_t(FailedAxis[I / DutyAxis.size()])),
         TableWriter::num(std::uint64_t(DutyAxis[I % DutyAxis.size()])),
         TableWriter::num(std::uint64_t(App.HealthyVaultsEnd)),
         TableWriter::num(App.AppThroughputGBps, 2),
         TableWriter::num(App.RowPhase.EccRetries + App.ColPhase.EccRetries),
         TableWriter::num(App.RowPhase.OfflineRedirects +
                          App.ColPhase.OfflineRedirects),
         TableWriter::num(S.ThroughputJobsPerSec, 1),
         TableWriter::num(S.P99LatencyMs, 2),
         TableWriter::percent(S.DeadlineMissRate),
         TableWriter::num(S.BrownoutSheds)});
    if (I % DutyAxis.size() == DutyAxis.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nThe design's bandwidth headroom (80 GB/s peak vs ~32 "
               "GB/s kernel demand)\nabsorbs vault failures until the "
               "survivors' aggregate bandwidth falls below\nthe kernel "
               "rate; throttle duty is felt everywhere. The serving "
               "columns show\nthe same capacity loss as queueing delay, "
               "deadline misses and, past the\nbrownout threshold, shed "
               "background jobs.\n";
  return 0;
}
