//===- bench/degradation_sweep.cpp - Throughput under injected faults -----===//
//
// Part of the fft3d project.
//
// Sweeps the two degradation axes of the fault model - vaults failed at
// start {0, 1, 2, 4, 8, 12} and thermal-throttle duty {0%, 25%, 50%} -
// and reports, per cell:
//
//  - the optimized 2D-FFT application throughput (Eq. 1 re-planned for
//    the surviving vaults, the failed vaults' traffic spread round-robin
//    across them), and
//  - the serving layer's job throughput and p99 latency on the mixed
//    tenant workload with retry + brownout enabled.
//
// The shape to expect: the optimized design needs only ~32 of the
// device's 80 GB/s, so the balanced spare mapping absorbs vault failures
// with almost no FFT throughput loss until the survivors' aggregate
// bandwidth drops below the kernel demand (the failed=12 rows sit past
// that cliff). Throttle duty cuts into the kernel window directly and is
// felt at every failure count. The serving layer converts the same
// capacity loss into queueing delay and deadline misses long before the
// FFT itself slows down - the brownout column shows it shedding
// background work to protect the latency of what remains.
//
// A second grid lifts the same story to the cluster: stacks x
// {healthy, stack kill, lossy link}, timed through the fleet's
// checkpoint/detect/migrate protocol and the interconnect's retransmit
// loop. With --json PATH the grid merges a "cluster_faults" row array
// into the perf JSON next to cluster_sweep's key.
//
// Usage: degradation_sweep [--threads K] [--json PATH] [--quick]
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "cluster/ClusterFftProcessor.h"
#include "fault/FaultSpec.h"
#include "serve/ServeSimulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

/// Builds the spec text for \p FailedVaults vaults dead at t=0 and a
/// run-long throttle window of \p DutyPct percent.
std::string specFor(unsigned FailedVaults, unsigned DutyPct) {
  std::string Text = "seed 1\n";
  for (unsigned V = 0; V != FailedVaults; ++V)
    Text += "vault_fail " + std::to_string(V) + " at 0\n";
  if (DutyPct != 0)
    Text += "throttle from 0 until 60000 period 100 duty " +
            std::to_string(DutyPct) + "\n";
  return Text;
}

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

double picosToMicros(Picos T) { return static_cast<double>(T) / 1e6; }

/// Rewrites \p Path with \p Row as the object's last "cluster_faults"
/// entry, same splice discipline as cluster_sweep's mergeIntoJson:
/// perf_baseline owns the file, every other bench re-merges its key.
void mergeIntoJson(const std::string &Path, const std::string &Row) {
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("\"cluster_faults\":") == std::string::npos)
        Lines.push_back(Line);
  }
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.back() != "}")
    Lines = {"{", "}"};
  Lines.pop_back();
  if (!Lines.empty() && Lines.back() != "{") {
    std::string &Prev = Lines.back();
    if (Prev.empty() || Prev.back() != ',')
      Prev += ',';
  }
  Lines.push_back("  \"cluster_faults\": " + Row);
  Lines.push_back("}");
  std::ofstream Out(Path);
  for (const std::string &Line : Lines)
    Out << Line << "\n";
}

/// One cell of the cluster fault grid: a stack count x a fault
/// scenario's spec text ("" = healthy).
struct ClusterCell {
  unsigned Stacks = 1;
  const char *Scenario = "healthy";
  std::string SpecText;
  ClusterReport Report;
  std::string Error;
};

/// Runs the S x {healthy, stack kill, link degrade} grid of timed
/// distributed 2D FFTs, prints the table, and returns the cells for the
/// JSON merge. The shape to expect: the stack-kill column pays the
/// checkpoint + detection + migration protocol and then the survivors'
/// larger share, roughly S/(S-1) on the phases; the lossy-link column
/// pays retransmits and backoff on the exchange only.
std::vector<ClusterCell> runClusterFaultGrid(std::uint64_t N,
                                             unsigned Threads) {
  const std::vector<unsigned> StackAxis = {1u, 2u, 4u};
  std::vector<ClusterCell> Cells;
  for (unsigned S : StackAxis) {
    Cells.push_back({S, "healthy", "", {}, {}});
    if (S < 2)
      continue; // cluster faults need somebody to fail over to
    Cells.push_back(
        {S, "stack_fail", "stack_fail " + std::to_string(S / 2) +
                              " at 0.0001\n", {}, {}});
    Cells.push_back(
        {S, "link_degrade",
         "seed 9\nlink_degrade 0 at 0 factor 2 loss 0.05\n", {}, {}});
  }

  forEachIndex(Cells.size(), Threads, [&](std::size_t I) {
    ClusterCell &Cell = Cells[I];
    ClusterConfig Config = ClusterConfig::forProblemSize(N, Cell.Stacks);
    if (!Cell.SpecText.empty()) {
      auto Spec = std::make_shared<FaultSpec>();
      std::string Error;
      if (!Spec->parse(Cell.SpecText, &Error)) {
        Cell.Error = Error;
        return;
      }
      Config.Node.Mem.Faults = Spec;
    }
    Cell.Report = ClusterFftProcessor(Config).run2d();
  });

  std::cout << "\nCluster fault grid: distributed " << N << "x" << N
            << " 2D FFT, stacks x fault scenario\n\n";
  TableWriter Table({"stacks", "scenario", "total (us)", "ckpt (us)",
                     "detect (us)", "migrate (us)", "retrans",
                     "survivors"});
  for (const ClusterCell &Cell : Cells) {
    const ClusterReport &R = Cell.Report;
    Table.addRow(
        {TableWriter::num(std::uint64_t(Cell.Stacks)), Cell.Scenario,
         TableWriter::num(picosToMicros(R.TotalTime), 2),
         TableWriter::num(picosToMicros(R.CheckpointTime), 2),
         TableWriter::num(picosToMicros(R.DetectionTime), 2),
         TableWriter::num(picosToMicros(R.MigrationTime), 2),
         TableWriter::num(R.Retransmits),
         TableWriter::num(std::uint64_t(
             R.SurvivorStacks ? R.SurvivorStacks : Cell.Stacks))});
  }
  Table.print(std::cout);
  return Cells;
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath;
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }
  SystemConfig Base = SystemConfig::forProblemSize(1024);
  printHeader("Degradation sweep: vault failures x thermal throttling",
              Base);

  const MemoryConfig HealthyMem = Base.Mem;
  ServiceModel Model(HealthyMem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::uint64_t Seed = 42;
  const unsigned Jobs = Quick ? 60 : 150;
  const double RatePerSec = 90.0;

  const std::vector<unsigned> FailedAxis =
      Quick ? std::vector<unsigned>{0u, 4u, 12u}
            : std::vector<unsigned>{0u, 1u, 2u, 4u, 8u, 12u};
  const std::vector<unsigned> DutyAxis =
      Quick ? std::vector<unsigned>{0u, 50u}
            : std::vector<unsigned>{0u, 25u, 50u};

  struct Cell {
    AppReport App;
    SloSummary Slo;
    std::string Error;
  };
  std::vector<Cell> Cells(FailedAxis.size() * DutyAxis.size());
  // Every cell builds its own fault spec, processor, workload and serve
  // simulator; only the (thread-safe, memoized) service model is shared.
  forEachIndex(Cells.size(), Threads, [&](std::size_t I) {
    const unsigned Failed = FailedAxis[I / DutyAxis.size()];
    const unsigned Duty = DutyAxis[I % DutyAxis.size()];
    const std::string Text = specFor(Failed, Duty);
    auto Spec = std::make_shared<FaultSpec>();
    std::string Error;
    if (!Spec->parse(Text, &Error)) {
      Cells[I].Error = Error;
      return;
    }

    // Application throughput: the full optimized 2D FFT on the degraded
    // device.
    SystemConfig Config = Base;
    Config.Mem.Faults = Spec;
    Fft2dProcessor Processor(Config);
    Cells[I].App = Processor.runOptimized();

    // Serving behaviour on the same degraded device.
    ServeConfig Serve;
    Serve.QueueCapacity = 64;
    Serve.Health = std::make_shared<HealthMonitor>(
        Spec, HealthyMem.Geo.NumVaults);
    Serve.Brownout.Enabled = true;
    ServeSimulator Sim(Serve, Model);
    TraceWorkload Load(
        generatePoissonTrace(Mix, Jobs, RatePerSec, Seed, Model));
    const auto Policy = createPolicy(PolicyKind::VaultPartition);
    Cells[I].Slo = Sim.run(Load, *Policy).Summary;
  });

  // "ecc" and "redir" come from the per-phase fault counters carried on
  // PhaseResult (summed over both FFT phases); without them the stats
  // reset between phases would hide the fault activity entirely.
  TableWriter Table({"failed", "duty %", "healthy", "fft GB/s", "ecc",
                     "redir", "jobs/s", "p99 ms", "miss %", "brownout"});
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    if (!Cells[I].Error.empty()) {
      std::cerr << "internal spec error: " << Cells[I].Error << "\n";
      return 1;
    }
    const AppReport &App = Cells[I].App;
    const SloSummary &S = Cells[I].Slo;
    Table.addRow(
        {TableWriter::num(std::uint64_t(FailedAxis[I / DutyAxis.size()])),
         TableWriter::num(std::uint64_t(DutyAxis[I % DutyAxis.size()])),
         TableWriter::num(std::uint64_t(App.HealthyVaultsEnd)),
         TableWriter::num(App.AppThroughputGBps, 2),
         TableWriter::num(App.RowPhase.EccRetries + App.ColPhase.EccRetries),
         TableWriter::num(App.RowPhase.OfflineRedirects +
                          App.ColPhase.OfflineRedirects),
         TableWriter::num(S.ThroughputJobsPerSec, 1),
         TableWriter::num(S.P99LatencyMs, 2),
         TableWriter::percent(S.DeadlineMissRate),
         TableWriter::num(S.BrownoutSheds)});
    if (I % DutyAxis.size() == DutyAxis.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nThe design's bandwidth headroom (80 GB/s peak vs ~32 "
               "GB/s kernel demand)\nabsorbs vault failures until the "
               "survivors' aggregate bandwidth falls below\nthe kernel "
               "rate; throttle duty is felt everywhere. The serving "
               "columns show\nthe same capacity loss as queueing delay, "
               "deadline misses and, past the\nbrownout threshold, shed "
               "background jobs.\n";

  // The cluster-level grid: the same degradation story one level up -
  // whole stacks dying and links going lossy under the fleet's fault
  // protocol.
  const std::uint64_t ClusterN = Quick ? 512 : 1024;
  const std::vector<ClusterCell> Grid =
      runClusterFaultGrid(ClusterN, Threads);
  for (const ClusterCell &Cell : Grid)
    if (!Cell.Error.empty()) {
      std::cerr << "internal cluster spec error: " << Cell.Error << "\n";
      return 1;
    }

  if (!JsonPath.empty()) {
    std::ostringstream Row;
    Row << "[";
    for (std::size_t I = 0; I != Grid.size(); ++I) {
      const ClusterCell &Cell = Grid[I];
      const ClusterReport &R = Cell.Report;
      if (I)
        Row << ", ";
      Row << "{\"n\": " << ClusterN << ", \"stacks\": " << Cell.Stacks
          << ", \"scenario\": \"" << Cell.Scenario << "\", \"total_us\": "
          << jsonNum(picosToMicros(R.TotalTime)) << ", \"checkpoint_us\": "
          << jsonNum(picosToMicros(R.CheckpointTime))
          << ", \"detection_us\": "
          << jsonNum(picosToMicros(R.DetectionTime))
          << ", \"migration_us\": "
          << jsonNum(picosToMicros(R.MigrationTime))
          << ", \"retrans\": " << R.Retransmits << ", \"survivors\": "
          << (R.SurvivorStacks ? R.SurvivorStacks : Cell.Stacks) << "}";
    }
    Row << "]";
    mergeIntoJson(JsonPath, Row.str());
    std::cout << "\nmerged cluster_faults (" << Grid.size()
              << " cells) into " << JsonPath << "\n";
  }

  std::cout << "\nThe cluster grid shows the fleet-level version: a dead "
               "stack costs the\ncheckpoint/detect/migrate protocol plus "
               "the survivors' S/(S-1) share, a\nlossy link costs "
               "retransmits and backoff on the exchange alone.\n";
  return 0;
}
