//===- bench/figD_precision.cpp - Numerical precision of the kernel -------===//
//
// Part of the fft3d project.
//
// Figure companion D: the paper streams 64-bit complex elements (two
// 32-bit floats). This bench quantifies what that storage precision
// costs across problem sizes and round trips - the error budget a user
// of the accelerator inherits. Reference: the double-precision engine
// (itself checked against the O(N^2) DFT in the test suite).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "fft/Fft1d.h"
#include "fft/Fft2d.h"
#include "support/Random.h"

#include <cmath>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

/// Max relative error of the single-precision path for one N-point frame.
double singlePrecisionError(std::uint64_t N) {
  Rng R(N * 17 + 5);
  const Fft1d Plan(N);
  std::vector<CplxD> Wide(N);
  std::vector<CplxF> NarrowData(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    Wide[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    NarrowData[I] = narrow(Wide[I]);
  }
  Plan.forward(Wide);
  Plan.forward(NarrowData);
  double MaxErr = 0.0, Scale = 0.0;
  for (std::uint64_t I = 0; I != N; ++I) {
    MaxErr = std::max(MaxErr, std::abs(widen(NarrowData[I]) - Wide[I]));
    Scale = std::max(Scale, std::abs(Wide[I]));
  }
  return MaxErr / Scale;
}

/// Max element error after a forward+inverse round trip in storage
/// precision (what a full through-the-accelerator pass costs).
double roundTripError(std::uint64_t N) {
  Rng R(N * 3 + 11);
  const Fft2d Plan(N, N);
  Matrix M(N, N);
  for (std::uint64_t I = 0; I != N; ++I)
    for (std::uint64_t J = 0; J != N; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                         static_cast<float>(R.nextDouble(-1, 1)));
  const Matrix Original = M;
  Plan.forward(M);
  Plan.inverse(M);
  return M.maxAbsDiff(Original);
}

} // namespace

int main() {
  printHeader("Figure companion D: storage-precision error budget",
              SystemConfig::forProblemSize(2048));

  std::cout << "1D forward transform, 64-bit complex storage vs "
               "double-precision engine:\n";
  TableWriter Table({"N", "max relative error", "bits of accuracy"});
  for (const std::uint64_t N : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    const double Err = singlePrecisionError(N);
    Table.addRow({TableWriter::num(N),
                  TableWriter::num(Err * 1e7, 2) + "e-7",
                  TableWriter::num(-std::log2(Err), 1)});
  }
  Table.print(std::cout);

  std::cout << "\n2D forward+inverse round trip in storage precision:\n";
  TableWriter Rt({"N x N", "max element error"});
  for (const std::uint64_t N : {64ull, 256ull, 1024ull}) {
    Rt.addRow({TableWriter::num(N) + " x " + TableWriter::num(N),
               TableWriter::num(roundTripError(N) * 1e6, 2) + "e-6"});
  }
  Rt.print(std::cout);

  std::cout << "\nReading: the kernel computes with guard precision (our\n"
               "engine uses doubles; an FPGA datapath would carry guard\n"
               "bits), so the error is dominated by the 64-bit storage\n"
               "quantization at the 2^-24 floor and stays FLAT in N -\n"
               "~24 bits of accuracy, far beyond the ~60 dB dynamic range\n"
               "of the imaging and radar workloads the paper targets. An\n"
               "all-float datapath would instead grow ~sqrt(log N).\n";
  return 0;
}
