//===- bench/ablation_batch_pipelining.cpp - Multi-frame overlap ----------===//
//
// Part of the fft3d project.
//
// Ablation F: the paper's streaming argument taken to its conclusion.
// For frame-after-frame workloads, frame i's column phase can overlap
// frame i+1's row phase (double-buffered regions, two kernel
// instances). The combined demand is 64 GB/s against the 80 GB/s
// device - this bench measures whether the vaults absorb it and what
// the steady frame rate becomes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/BatchProcessor.h"

#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

int main() {
  printHeader("Ablation F: pipelined multi-frame batches",
              SystemConfig::forProblemSize(2048));

  TableWriter Table({"N", "frames", "phase time", "overlap stage",
                     "fully overlapped?", "overlap GB/s", "total",
                     "frames/s"});
  for (const std::uint64_t N : {1024ull, 2048ull, 4096ull}) {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    const BatchProcessor Batch(Config);
    for (const unsigned Frames : {1u, 4u, 16u}) {
      const BatchReport R = Batch.run(Frames);
      Table.addRow({TableWriter::num(N),
                    TableWriter::num(std::uint64_t(Frames)),
                    formatDuration(R.PhaseTime),
                    formatDuration(R.OverlapTime),
                    R.FullyOverlapped ? "yes" : "no",
                    TableWriter::num(R.OverlapGBps, 1),
                    formatDuration(R.TotalTime),
                    TableWriter::num(R.FramesPerSecond, 1)});
    }
    Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout
      << "\nExpected shape: at N = 1024 the overlapped demand (64 GB/s)\n"
         "fits the 80 GB/s device and frames/s approaches 2x sequential.\n"
         "At larger N cross-phase contention (chunked phase-1 writes\n"
         "stealing vault activations from the block streams) caps the\n"
         "overlap at ~46-54 GB/s, still a 1.6-1.7x steady-state gain.\n"
         "Larger batches amortize the pipeline's fill/drain stages.\n";
  return 0;
}
