//===- bench/ablation_batch_pipelining.cpp - Multi-frame overlap ----------===//
//
// Part of the fft3d project.
//
// Ablation F: the paper's streaming argument taken to its conclusion.
// For frame-after-frame workloads, frame i's column phase can overlap
// frame i+1's row phase (double-buffered regions, two kernel
// instances). The combined demand is 64 GB/s against the 80 GB/s
// device - this bench measures whether the vaults absorb it and what
// the steady frame rate becomes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/BatchProcessor.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  printHeader("Ablation F: pipelined multi-frame batches",
              SystemConfig::forProblemSize(2048));

  const std::vector<std::uint64_t> Sizes = {1024, 2048, 4096};
  const std::vector<unsigned> FrameCounts = {1u, 4u, 16u};
  std::vector<BatchReport> Reports(Sizes.size() * FrameCounts.size());
  forEachIndex(Reports.size(), Threads, [&](std::size_t I) {
    const SystemConfig Config =
        SystemConfig::forProblemSize(Sizes[I / FrameCounts.size()]);
    Reports[I] =
        BatchProcessor(Config).run(FrameCounts[I % FrameCounts.size()]);
  });

  TableWriter Table({"N", "frames", "phase time", "overlap stage",
                     "fully overlapped?", "overlap GB/s", "total",
                     "frames/s"});
  for (std::size_t I = 0; I != Reports.size(); ++I) {
    const BatchReport &R = Reports[I];
    Table.addRow({TableWriter::num(Sizes[I / FrameCounts.size()]),
                  TableWriter::num(
                      std::uint64_t(FrameCounts[I % FrameCounts.size()])),
                  formatDuration(R.PhaseTime),
                  formatDuration(R.OverlapTime),
                  R.FullyOverlapped ? "yes" : "no",
                  TableWriter::num(R.OverlapGBps, 1),
                  formatDuration(R.TotalTime),
                  TableWriter::num(R.FramesPerSecond, 1)});
    if (I % FrameCounts.size() == FrameCounts.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout
      << "\nExpected shape: at N = 1024 the overlapped demand (64 GB/s)\n"
         "fits the 80 GB/s device and frames/s approaches 2x sequential.\n"
         "At larger N cross-phase contention (chunked phase-1 writes\n"
         "stealing vault activations from the block streams) caps the\n"
         "overlap at ~46-54 GB/s, still a 1.6-1.7x steady-state gain.\n"
         "Larger batches amortize the pipeline's fill/drain stages.\n";
  return 0;
}
