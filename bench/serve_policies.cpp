//===- bench/serve_policies.cpp - Scheduler policies under load -----------===//
//
// Part of the fft3d project.
//
// Sweeps the offered load on the mixed 2048^2/4096^2 workload and
// compares every scheduling policy's tail latency and SLO behaviour on
// the identical arrival trace. The shape to expect: at low load all
// policies look alike; as load approaches saturation FCFS's p99 blows up
// on head-of-line blocking behind 4096^2 batches, SJF rescues the median
// but not the tail, and vault-partitioned space-sharing - possible
// because a kernel-bound job cannot use all 16 vaults' bandwidth -
// holds the tail down until the device itself saturates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "serve/ServeSimulator.h"

#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  printHeader("Serving: scheduler policies under mixed tenant load",
              SystemConfig::forProblemSize(2048));

  const MemoryConfig Mem;
  ServiceModel Model(Mem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::uint64_t Seed = 42;
  const unsigned Jobs = 400;

  ServeConfig Config;
  Config.QueueCapacity = 64;

  const std::vector<double> Rates = {40.0, 80.0, 120.0, 160.0};
  const std::vector<PolicyKind> Kinds = {
      PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::PriorityAging,
      PolicyKind::VaultPartition};

  // Warm the service-time memo, then run the (rate, policy) grid
  // concurrently; each cell regenerates the seed-deterministic trace, so
  // the table matches the sequential sweep cell for cell.
  ThreadPool Pool(Threads);
  {
    std::vector<std::pair<std::uint64_t, unsigned>> Keys;
    for (const JobTemplate &T : Mix) {
      Keys.emplace_back(T.N, Model.totalVaults());
      Keys.emplace_back(T.N, Model.totalVaults() / 2);
    }
    Model.prewarm(Keys, Pool);
  }
  std::vector<ServeResult> Results(Rates.size() * Kinds.size());
  Pool.parallelFor(Results.size(), [&](std::size_t I) {
    const double Rate = Rates[I / Kinds.size()];
    const auto Policy = createPolicy(Kinds[I % Kinds.size()]);
    TraceWorkload Load(generatePoissonTrace(Mix, Jobs, Rate, Seed, Model));
    ServeSimulator Sim(Config, Model);
    Results[I] = Sim.run(Load, *Policy);
  });

  TableWriter Table({"rate", "policy", "done", "shed", "jobs/s", "p50 ms",
                     "p95 ms", "p99 ms", "miss %"});
  for (std::size_t I = 0; I != Results.size(); ++I) {
    const ServeResult &R = Results[I];
    const SloSummary &S = R.Summary;
    Table.addRow({TableWriter::num(Rates[I / Kinds.size()], 0), R.PolicyName,
                  TableWriter::num(S.Completed), TableWriter::num(S.Shed),
                  TableWriter::num(S.ThroughputJobsPerSec, 1),
                  TableWriter::num(S.P50LatencyMs, 2),
                  TableWriter::num(S.P95LatencyMs, 2),
                  TableWriter::num(S.P99LatencyMs, 2),
                  TableWriter::percent(S.DeadlineMissRate)});
    if (I % Kinds.size() == Kinds.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: below ~80 jobs/s every policy completes\n"
               "everything and the table differs only in tail latency. At\n"
               "120+ jobs/s the single-job policies saturate (the mixed\n"
               "mean service is ~10 ms) and shed load at the bounded\n"
               "queue, while the 2-way vault partition keeps absorbing\n"
               "the offered stream: a kernel-bound job leaves half the\n"
               "device's bandwidth idle, so two jobs space-share it at\n"
               "nearly full speed.\n";
  return 0;
}
