//===- bench/perf_baseline.cpp - Simulator self-performance baseline ------===//
//
// Part of the fft3d project.
//
// Measures the library's own speed (not the modelled hardware): event
// core throughput, full table2-style simulation wall time per problem
// size, the vault-sharded engine's single-run scaling over --sim-threads
// (with a built-in 1-vs-4 digest equality check - the binary exits
// nonzero if the parallel engine ever diverges), FFT kernel MFLOPS at
// each SIMD level, and the parallel sweep executor's 1-vs-N scaling.
// Emits machine-readable JSON (default BENCH_perf.json) so CI can
// archive a perf history, plus a short human-readable summary.
//
// Usage: perf_baseline [--threads K] [--json PATH] [--quick]
//        [--trace PATH]   (also emit a sample Chrome trace of one
//                          optimized 1024^2 run, for the CI artifact)
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/AutoTuner.h"
#include "fft/Fft1d.h"
#include "fft/SimdKernels.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"
#include "support/Random.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Median of repeated timings; the container CPUs are noisy, single
/// samples are not trustworthy.
double medianOf(unsigned Repeats, const std::function<double()> &Sample) {
  std::vector<double> Times(Repeats);
  for (double &T : Times)
    T = Sample();
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// Event-core throughput: the memory controller's event shape (small
/// [capture] lambdas, near-future deadlines, steady churn).
double eventsPerSecond(unsigned Repeats) {
  constexpr int Batch = 1 << 15;
  const double Elapsed = medianOf(Repeats, [] {
    EventQueue Q;
    std::uint64_t Sink = 0;
    const auto Start = Clock::now();
    for (int I = 0; I != Batch; ++I)
      Q.scheduleAfter(static_cast<Picos>(1 + I * 13 % 4096),
                      [&Sink] { ++Sink; });
    while (!Q.empty())
      Q.step();
    return secondsSince(Start);
  });
  return static_cast<double>(Batch) / Elapsed;
}

/// Wall time of the full optimized-architecture simulation at size N -
/// the Table 2 workload, the sweeps' unit of work.
double simWallSeconds(std::uint64_t N, unsigned Repeats) {
  return medianOf(Repeats, [N] {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    Fft2dProcessor Processor(Config);
    const auto Start = Clock::now();
    const AppReport Opt = Processor.runOptimized();
    (void)Opt;
    return secondsSince(Start);
  });
}

/// One row of the sharded-engine scaling table: wall time and simulator
/// event throughput of a full optimized run at \p N with \p SimThreads
/// vault-shard workers.
struct ShardedSimRow {
  std::uint64_t N = 0;
  unsigned SimThreads = 0;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
};

ShardedSimRow shardedSimRow(std::uint64_t N, unsigned SimThreads,
                            unsigned Repeats) {
  ShardedSimRow Row;
  Row.N = N;
  Row.SimThreads = SimThreads;
  std::uint64_t Events = 0;
  Row.Seconds = medianOf(Repeats, [N, SimThreads, &Events] {
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Config.SimThreads = SimThreads;
    Fft2dProcessor Processor(Config);
    const auto Start = Clock::now();
    const AppReport Opt = Processor.runOptimized();
    Events = Opt.RowPhase.SimEvents + Opt.ColPhase.SimEvents;
    return secondsSince(Start);
  });
  Row.EventsPerSec = static_cast<double>(Events) / Row.Seconds;
  return Row;
}

/// Digest of a traced optimized run at \p SimThreads workers. The
/// sharded engine's contract is byte-identical behaviour at every
/// thread count; comparing two digests here makes the benchmark binary
/// itself a regression check, so CI catches divergence even in the
/// Release (assertion-free) build the sanitizer jobs never cover.
std::string shardedRunDigest(std::uint64_t N, unsigned SimThreads) {
  SystemConfig Config = SystemConfig::forProblemSize(N);
  Config.SimThreads = SimThreads;
  Fft2dProcessor Processor(Config);
  Tracer Trace;
  Processor.setObservability(&Trace, nullptr);
  (void)Processor.runOptimized();
  return traceDigest(Trace);
}

/// FFT throughput in MFLOPS at a given dispatch level (5 N log2 N flops
/// per complex transform).
double fftMflops(SimdLevel Level, unsigned Repeats) {
  setSimdLevel(Level);
  constexpr std::uint64_t N = 4096;
  const Fft1d Plan(N);
  Rng R(N);
  std::vector<CplxD> Frame(N);
  for (auto &V : Frame)
    V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  constexpr int Iters = 64;
  const double Flops = 5.0 * double(N) * std::log2(double(N)) * Iters;
  const double Elapsed = medianOf(Repeats, [&] {
    std::vector<CplxD> Data = Frame;
    const auto Start = Clock::now();
    for (int I = 0; I != Iters; ++I)
      Plan.forward(Data);
    return secondsSince(Start);
  });
  return Flops / Elapsed / 1e6;
}

/// Multi-point ablation-style sweep (the AutoTuner's full candidate
/// grid) at a given thread count.
double sweepSeconds(std::uint64_t N, unsigned Threads, unsigned Repeats) {
  return medianOf(Repeats, [N, Threads] {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    TuneOptions Options;
    Options.SweepBlockShapes = true;
    Options.SweepSkew = true;
    Options.Threads = Threads;
    const AutoTuner Tuner(Config, Options);
    const auto Start = Clock::now();
    const TuneResult Result = Tuner.tune();
    (void)Result;
    return secondsSince(Start);
  });
}

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath = "BENCH_perf.json";
  std::string TracePath;
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      TracePath = Argv[I] + 8;
    else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc)
      TracePath = Argv[++I];
  }
  if (Threads == 1)
    Threads = ThreadPool::resolveThreads(0);

  const unsigned Repeats = Quick ? 1 : 3;
  const std::vector<std::uint64_t> SimSizes =
      Quick ? std::vector<std::uint64_t>{1024}
            : std::vector<std::uint64_t>{1024, 2048, 4096};

  std::cout << "perf_baseline: simd=" << simdLevelName(detectSimdLevel())
            << " threads=" << Threads << " repeats=" << Repeats << "\n\n";

  // 1. Event core.
  const double EventsPerSec = eventsPerSecond(Repeats);
  std::cout << "event core: " << jsonNum(EventsPerSec / 1e6)
            << " M events/s\n";

  // 2. Simulation wall time per size.
  std::vector<std::pair<std::uint64_t, double>> SimTimes;
  for (std::uint64_t N : SimSizes) {
    SimTimes.emplace_back(N, simWallSeconds(N, Repeats));
    std::cout << "sim " << N << "x" << N << " optimized: "
              << jsonNum(SimTimes.back().second) << " s\n";
  }

  // 3. Sharded-engine scaling: the same single-run workload with the
  // vault shards spread over --sim-threads workers. Byte-identical
  // results are a hard invariant (checked below); the wall time shows
  // what the parallel engine buys on this machine.
  const std::vector<std::uint64_t> ShardSizes =
      Quick ? std::vector<std::uint64_t>{1024}
            : std::vector<std::uint64_t>{2048, 4096};
  const std::vector<unsigned> ShardThreads =
      Quick ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<ShardedSimRow> ShardRows;
  for (std::uint64_t N : ShardSizes) {
    double Base = 0.0;
    for (unsigned K : ShardThreads) {
      ShardRows.push_back(shardedSimRow(N, K, Repeats));
      const ShardedSimRow &Row = ShardRows.back();
      if (K == 1)
        Base = Row.Seconds;
      std::cout << "sim " << N << "x" << N << " sim-threads " << K << ": "
                << jsonNum(Row.Seconds) << " s, "
                << jsonNum(Row.EventsPerSec / 1e6) << " M events/s ("
                << jsonNum(Base / Row.Seconds) << "x)\n";
    }
  }

  // Determinism self-check: the parallel engine must reproduce the
  // sequential trace byte for byte. A mismatch is a correctness bug, not
  // a perf regression - fail the whole binary.
  const std::string Digest1 = shardedRunDigest(512, 1);
  const std::string Digest4 = shardedRunDigest(512, 4);
  const bool DigestsMatch = Digest1 == Digest4;
  std::cout << "sim-threads determinism (512x512, 1 vs 4): "
            << (DigestsMatch ? "identical" : "MISMATCH") << "\n";
  if (!DigestsMatch) {
    std::cerr << "perf_baseline: sharded engine diverged from sequential\n";
    return 1;
  }

  // 4. FFT MFLOPS, scalar and best level.
  const SimdLevel Best = detectSimdLevel();
  const double ScalarMflops = fftMflops(SimdLevel::Scalar, Repeats);
  const double BestMflops =
      Best == SimdLevel::Scalar ? ScalarMflops : fftMflops(Best, Repeats);
  setSimdLevel(Best);
  std::cout << "fft 4096-pt: " << jsonNum(ScalarMflops) << " MFLOPS scalar, "
            << jsonNum(BestMflops) << " MFLOPS " << simdLevelName(Best)
            << "\n";

  // 5. Sweep executor scaling: the autotuner's full grid, 1 vs N threads.
  const std::uint64_t SweepN = Quick ? 1024 : 2048;
  const double Sweep1 = sweepSeconds(SweepN, 1, Repeats);
  const double SweepN_ = sweepSeconds(SweepN, Threads, Repeats);
  std::cout << "tune sweep (N=" << SweepN << "): " << jsonNum(Sweep1)
            << " s at 1 thread, " << jsonNum(SweepN_) << " s at " << Threads
            << " threads (" << jsonNum(Sweep1 / SweepN_) << "x)\n";

  // JSON report.
  std::ofstream Out(JsonPath);
  Out << "{\n";
  Out << "  \"simd_level\": \"" << simdLevelName(Best) << "\",\n";
  Out << "  \"threads\": " << Threads << ",\n";
  Out << "  \"repeats\": " << Repeats << ",\n";
  Out << "  \"event_core\": {\"events_per_sec\": " << jsonNum(EventsPerSec)
      << "},\n";
  Out << "  \"sim_wall_time_s\": [";
  for (std::size_t I = 0; I != SimTimes.size(); ++I)
    Out << (I ? ", " : "") << "{\"n\": " << SimTimes[I].first
        << ", \"optimized_s\": " << jsonNum(SimTimes[I].second) << "}";
  Out << "],\n";
  Out << "  \"sim_threads\": [";
  for (std::size_t I = 0; I != ShardRows.size(); ++I)
    Out << (I ? ", " : "") << "{\"n\": " << ShardRows[I].N
        << ", \"sim_threads\": " << ShardRows[I].SimThreads
        << ", \"optimized_s\": " << jsonNum(ShardRows[I].Seconds)
        << ", \"events_per_sec\": " << jsonNum(ShardRows[I].EventsPerSec)
        << "}";
  Out << "],\n";
  Out << "  \"sim_digest_match\": " << (DigestsMatch ? "true" : "false")
      << ",\n";
  Out << "  \"fft_mflops\": {\"scalar\": " << jsonNum(ScalarMflops) << ", \""
      << simdLevelName(Best) << "\": " << jsonNum(BestMflops) << "},\n";
  Out << "  \"sweep\": {\"n\": " << SweepN << ", \"threads1_s\": "
      << jsonNum(Sweep1) << ", \"threadsN_s\": " << jsonNum(SweepN_)
      << ", \"speedup\": " << jsonNum(Sweep1 / SweepN_) << "}\n";
  Out << "}\n";
  std::cout << "\nwrote " << JsonPath << "\n";

  // Sample timeline artifact: one traced optimized run, small enough to
  // load into Perfetto straight from the CI artifact listing.
  if (!TracePath.empty()) {
    Tracer Trace;
    const SystemConfig Config = SystemConfig::forProblemSize(1024);
    Fft2dProcessor Processor(Config);
    Processor.setObservability(&Trace, nullptr);
    (void)Processor.runOptimized();
    std::ofstream TraceOut(TracePath);
    Trace.writeChromeTrace(TraceOut);
    std::cout << "wrote " << Trace.events().size() << " trace events to "
              << TracePath << "\n";
  }
  return 0;
}
