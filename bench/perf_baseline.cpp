//===- bench/perf_baseline.cpp - Simulator self-performance baseline ------===//
//
// Part of the fft3d project.
//
// Measures the library's own speed (not the modelled hardware): event
// core throughput, full table2-style simulation wall time per problem
// size, the vault-sharded engine's single-run scaling over --sim-threads
// (with a built-in 1-vs-4 digest equality check - the binary exits
// nonzero if the parallel engine ever diverges), FFT kernel MFLOPS at
// each SIMD level, and the parallel sweep executor's 1-vs-N scaling.
// Emits machine-readable JSON (default BENCH_perf.json) so CI can
// archive a perf history, plus a short human-readable summary.
//
// Usage: perf_baseline [--threads K] [--json PATH] [--quick]
//        [--trace PATH]   (also emit a sample Chrome trace of one
//                          optimized 1024^2 run, for the CI artifact)
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/AutoTuner.h"
#include "fft/Fft1d.h"
#include "fft/SimdKernels.h"
#include "obs/TraceDigest.h"
#include "obs/Tracer.h"
#include "sim/EventQueue.h"
#include "support/Random.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Median of repeated timings; the container CPUs are noisy, single
/// samples are not trustworthy.
double medianOf(unsigned Repeats, const std::function<double()> &Sample) {
  std::vector<double> Times(Repeats);
  for (double &T : Times)
    T = Sample();
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// Event-core throughput: the memory controller's event shape (small
/// [capture] lambdas, near-future deadlines, steady churn).
double eventsPerSecond(unsigned Repeats) {
  constexpr int Batch = 1 << 15;
  const double Elapsed = medianOf(Repeats, [] {
    EventQueue Q;
    std::uint64_t Sink = 0;
    const auto Start = Clock::now();
    for (int I = 0; I != Batch; ++I)
      Q.scheduleAfter(static_cast<Picos>(1 + I * 13 % 4096),
                      [&Sink] { ++Sink; });
    while (!Q.empty())
      Q.step();
    return secondsSince(Start);
  });
  return static_cast<double>(Batch) / Elapsed;
}

/// Wall time of the full optimized-architecture simulation at size N -
/// the Table 2 workload, the sweeps' unit of work.
double simWallSeconds(std::uint64_t N, unsigned Repeats) {
  return medianOf(Repeats, [N] {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    Fft2dProcessor Processor(Config);
    const auto Start = Clock::now();
    const AppReport Opt = Processor.runOptimized();
    (void)Opt;
    return secondsSince(Start);
  });
}

/// One row of the sharded-engine scaling table: wall time and simulator
/// event throughput of a full optimized run at \p N with \p SimThreads
/// vault-shard workers, plus the engine's window accounting (identical
/// for every SimThreads value - windows are placed from simulation state
/// alone).
struct ShardedSimRow {
  std::uint64_t N = 0;
  unsigned SimThreads = 0;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
  std::uint64_t Windows = 0;
  std::uint64_t StreamWindows = 0;
  std::uint64_t Barriers = 0;
  bool Oversubscribed = false;
};

ShardedSimRow shardedSimRow(std::uint64_t N, unsigned SimThreads,
                            unsigned Repeats) {
  ShardedSimRow Row;
  Row.N = N;
  Row.SimThreads = SimThreads;
  std::uint64_t Events = 0;
  Row.Seconds = medianOf(Repeats, [N, SimThreads, &Events, &Row] {
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Config.SimThreads = SimThreads;
    Fft2dProcessor Processor(Config);
    const auto Start = Clock::now();
    const AppReport Opt = Processor.runOptimized();
    Events = Opt.RowPhase.SimEvents + Opt.ColPhase.SimEvents;
    Row.Windows = Opt.SimWindows;
    Row.StreamWindows = Opt.SimStreamWindows;
    Row.Barriers = Opt.SimBarriers;
    return secondsSince(Start);
  });
  Row.EventsPerSec = static_cast<double>(Events) / Row.Seconds;
  return Row;
}

/// Digest of a traced optimized run at \p SimThreads workers. The
/// sharded engine's contract is byte-identical behaviour at every
/// thread count; comparing two digests here makes the benchmark binary
/// itself a regression check, so CI catches divergence even in the
/// Release (assertion-free) build the sanitizer jobs never cover.
std::string shardedRunDigest(std::uint64_t N, unsigned SimThreads) {
  SystemConfig Config = SystemConfig::forProblemSize(N);
  Config.SimThreads = SimThreads;
  Fft2dProcessor Processor(Config);
  Tracer Trace;
  Processor.setObservability(&Trace, nullptr);
  (void)Processor.runOptimized();
  return traceDigest(Trace);
}

/// FFT throughput in MFLOPS at a given dispatch level (5 N log2 N flops
/// per complex transform).
double fftMflops(SimdLevel Level, unsigned Repeats) {
  setSimdLevel(Level);
  constexpr std::uint64_t N = 4096;
  const Fft1d Plan(N);
  Rng R(N);
  std::vector<CplxD> Frame(N);
  for (auto &V : Frame)
    V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  constexpr int Iters = 64;
  const double Flops = 5.0 * double(N) * std::log2(double(N)) * Iters;
  const double Elapsed = medianOf(Repeats, [&] {
    std::vector<CplxD> Data = Frame;
    const auto Start = Clock::now();
    for (int I = 0; I != Iters; ++I)
      Plan.forward(Data);
    return secondsSince(Start);
  });
  return Flops / Elapsed / 1e6;
}

/// Multi-point ablation-style sweep (the AutoTuner's full candidate
/// grid) at a given thread count, with per-executor utilization from the
/// final repeat: busy time inside candidate simulations over sweep wall
/// time, so a flat speedup is attributable (idle slots = imbalance, all
/// slots busy with no wall win = oversubscription).
struct SweepMeasurement {
  double Seconds = 0.0;
  std::size_t Candidates = 0;
  std::vector<ThreadPool::WorkerStats> Workers;
};

SweepMeasurement sweepMeasurement(std::uint64_t N, unsigned Threads,
                                  unsigned Repeats) {
  SweepMeasurement M;
  M.Seconds = medianOf(Repeats, [N, Threads, &M] {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    TuneOptions Options;
    Options.SweepBlockShapes = true;
    Options.SweepSkew = true;
    Options.Threads = Threads;
    const AutoTuner Tuner(Config, Options);
    const auto Start = Clock::now();
    TuneResult Result = Tuner.tune();
    M.Candidates = Result.Candidates.size();
    M.Workers = std::move(Result.PoolStats);
    return secondsSince(Start);
  });
  return M;
}

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Extracts the numeric value following "Key": inside \p Obj; negative
/// when absent. Enough JSON for the bench's own flat row objects.
double jsonField(const std::string &Obj, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\":";
  const std::size_t At = Obj.find(Needle);
  if (At == std::string::npos)
    return -1.0;
  return std::strtod(Obj.c_str() + At + Needle.size(), nullptr);
}

/// Regression gate (--check): re-measures single-worker events/s for
/// every sim-threads-1 row of the committed JSON and fails on a >25%
/// drop. Sim-threads 1 is the honest number - it cannot hide behind the
/// bench box's core count - and the windowing protocol runs identically
/// there, so a protocol regression shows up on any machine. The 1-vs-4
/// digest equality check runs too: a determinism break is worse than any
/// slowdown.
int runCheck(const std::string &JsonPath) {
  std::ifstream In(JsonPath);
  if (!In) {
    std::cerr << "perf_baseline --check: cannot open " << JsonPath << "\n";
    return 2;
  }
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  const std::size_t ArrayAt = Json.find("\"sim_threads\": [");
  const std::size_t ArrayEnd =
      ArrayAt == std::string::npos ? std::string::npos
                                   : Json.find(']', ArrayAt);
  if (ArrayEnd == std::string::npos) {
    std::cerr << "perf_baseline --check: no sim_threads rows in "
              << JsonPath << "\n";
    return 2;
  }
  bool Checked = false;
  bool Failed = false;
  std::size_t Cursor = ArrayAt;
  while (true) {
    const std::size_t ObjAt = Json.find('{', Cursor);
    if (ObjAt == std::string::npos || ObjAt > ArrayEnd)
      break;
    const std::size_t ObjEnd = Json.find('}', ObjAt);
    const std::string Obj = Json.substr(ObjAt, ObjEnd - ObjAt);
    Cursor = ObjEnd + 1;
    if (jsonField(Obj, "sim_threads") != 1.0)
      continue;
    const double N = jsonField(Obj, "n");
    const double Committed = jsonField(Obj, "events_per_sec");
    if (N <= 0.0 || Committed <= 0.0)
      continue;
    double Measured =
        shardedSimRow(static_cast<std::uint64_t>(N), 1, /*Repeats=*/3)
            .EventsPerSec;
    // A loaded machine can depress one whole measurement set past the
    // band; a real code regression depresses all of them. Re-measure
    // before failing and keep the best observation - the gate asks
    // whether the code can still reach the committed speed.
    for (int Retry = 0; Retry != 2 && Measured / Committed < 0.75; ++Retry)
      Measured = std::max(
          Measured,
          shardedSimRow(static_cast<std::uint64_t>(N), 1, /*Repeats=*/3)
              .EventsPerSec);
    const double Ratio = Measured / Committed;
    std::cout << "check " << static_cast<std::uint64_t>(N)
              << "x" << static_cast<std::uint64_t>(N)
              << " sim-threads 1: " << jsonNum(Measured / 1e6)
              << " M events/s vs committed " << jsonNum(Committed / 1e6)
              << " (" << jsonNum(Ratio) << "x)\n";
    Checked = true;
    if (Ratio < 0.75) {
      std::cerr << "perf_baseline --check: events/s regressed >25% at "
                << "sim-threads 1, n=" << static_cast<std::uint64_t>(N)
                << "\n";
      Failed = true;
    }
  }
  if (!Checked) {
    std::cerr << "perf_baseline --check: no usable sim-threads-1 rows in "
              << JsonPath << "\n";
    return 2;
  }
  const bool DigestsMatch =
      shardedRunDigest(512, 1) == shardedRunDigest(512, 4);
  std::cout << "check determinism (512x512, 1 vs 4): "
            << (DigestsMatch ? "identical" : "MISMATCH") << "\n";
  if (!DigestsMatch) {
    std::cerr << "perf_baseline --check: sharded engine diverged\n";
    return 1;
  }
  return Failed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath = "BENCH_perf.json";
  std::string TracePath;
  bool Quick = false;
  bool Check = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--check") == 0)
      Check = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      TracePath = Argv[I] + 8;
    else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc)
      TracePath = Argv[++I];
  }
  if (Check)
    return runCheck(JsonPath);
  const unsigned HardwareConcurrency = ThreadPool::resolveThreads(0);
  const unsigned PhysicalCores = ThreadPool::physicalCoresEstimate();
  // Default to the physical core count, not the SMT thread count: the
  // sweep's unit of work is a whole simulation, which gains nothing from
  // sharing a core's execution ports.
  if (Threads == 1)
    Threads = PhysicalCores;

  const unsigned Repeats = Quick ? 1 : 3;
  const std::vector<std::uint64_t> SimSizes =
      Quick ? std::vector<std::uint64_t>{1024}
            : std::vector<std::uint64_t>{1024, 2048, 4096};

  std::cout << "perf_baseline: simd=" << simdLevelName(detectSimdLevel())
            << " threads=" << Threads << " repeats=" << Repeats << "\n\n";

  // 1. Event core.
  const double EventsPerSec = eventsPerSecond(Repeats);
  std::cout << "event core: " << jsonNum(EventsPerSec / 1e6)
            << " M events/s\n";

  // 2. Simulation wall time per size.
  std::vector<std::pair<std::uint64_t, double>> SimTimes;
  for (std::uint64_t N : SimSizes) {
    SimTimes.emplace_back(N, simWallSeconds(N, Repeats));
    std::cout << "sim " << N << "x" << N << " optimized: "
              << jsonNum(SimTimes.back().second) << " s\n";
  }

  // 3. Sharded-engine scaling: the same single-run workload with the
  // vault shards spread over --sim-threads workers. Byte-identical
  // results are a hard invariant (checked below); the wall time shows
  // what the parallel engine buys on this machine. All four worker
  // counts are always measured so baselines stay comparable across
  // machines; rows beyond the physical core count are tagged
  // oversubscribed instead of dropped, since SMT siblings sharing a
  // core do not help a spin-barrier protocol and the reader should not
  // mistake scheduler thrash for an engine regression.
  const std::vector<std::uint64_t> ShardSizes =
      Quick ? std::vector<std::uint64_t>{1024}
            : std::vector<std::uint64_t>{2048, 4096};
  const std::vector<unsigned> ShardThreads = {1, 2, 4, 8};
  std::vector<ShardedSimRow> ShardRows;
  for (std::uint64_t N : ShardSizes) {
    double Base = 0.0;
    for (unsigned K : ShardThreads) {
      ShardRows.push_back(shardedSimRow(N, K, Repeats));
      ShardedSimRow &Row = ShardRows.back();
      Row.Oversubscribed = K > PhysicalCores;
      if (K == 1)
        Base = Row.Seconds;
      std::cout << "sim " << N << "x" << N << " sim-threads " << K << ": "
                << jsonNum(Row.Seconds) << " s, "
                << jsonNum(Row.EventsPerSec / 1e6) << " M events/s ("
                << jsonNum(Base / Row.Seconds) << "x), "
                << Row.Windows << " windows ("
                << Row.StreamWindows << " streaming)"
                << (Row.Oversubscribed ? " [oversubscribed]" : "") << "\n";
    }
  }

  // Determinism self-check: the parallel engine must reproduce the
  // sequential trace byte for byte. A mismatch is a correctness bug, not
  // a perf regression - fail the whole binary.
  const std::string Digest1 = shardedRunDigest(512, 1);
  const std::string Digest4 = shardedRunDigest(512, 4);
  const bool DigestsMatch = Digest1 == Digest4;
  std::cout << "sim-threads determinism (512x512, 1 vs 4): "
            << (DigestsMatch ? "identical" : "MISMATCH") << "\n";
  if (!DigestsMatch) {
    std::cerr << "perf_baseline: sharded engine diverged from sequential\n";
    return 1;
  }

  // 4. FFT MFLOPS, scalar and best level.
  const SimdLevel Best = detectSimdLevel();
  const double ScalarMflops = fftMflops(SimdLevel::Scalar, Repeats);
  const double BestMflops =
      Best == SimdLevel::Scalar ? ScalarMflops : fftMflops(Best, Repeats);
  setSimdLevel(Best);
  std::cout << "fft 4096-pt: " << jsonNum(ScalarMflops) << " MFLOPS scalar, "
            << jsonNum(BestMflops) << " MFLOPS " << simdLevelName(Best)
            << "\n";

  // 5. Sweep executor scaling: the autotuner's full grid, 1 vs N threads.
  const std::uint64_t SweepN = Quick ? 1024 : 2048;
  const SweepMeasurement Sweep1 = sweepMeasurement(SweepN, 1, Repeats);
  const SweepMeasurement SweepK = sweepMeasurement(SweepN, Threads, Repeats);
  std::cout << "tune sweep (N=" << SweepN << ", " << SweepK.Candidates
            << " candidates): " << jsonNum(Sweep1.Seconds)
            << " s at 1 thread, " << jsonNum(SweepK.Seconds) << " s at "
            << Threads << " threads ("
            << jsonNum(Sweep1.Seconds / SweepK.Seconds) << "x)\n";
  for (std::size_t W = 0; W != SweepK.Workers.size(); ++W)
    std::cout << "  sweep worker " << W << ": " << SweepK.Workers[W].Tasks
              << " candidates, "
              << jsonNum(SweepK.Seconds > 0.0
                             ? SweepK.Workers[W].BusySeconds / SweepK.Seconds
                             : 0.0)
              << " utilization\n";

  // JSON report.
  std::ofstream Out(JsonPath);
  Out << "{\n";
  Out << "  \"simd_level\": \"" << simdLevelName(Best) << "\",\n";
  Out << "  \"threads\": " << Threads << ",\n";
  Out << "  \"hardware_concurrency\": " << HardwareConcurrency << ",\n";
  Out << "  \"physical_cores_estimate\": " << PhysicalCores << ",\n";
  Out << "  \"repeats\": " << Repeats << ",\n";
  Out << "  \"event_core\": {\"events_per_sec\": " << jsonNum(EventsPerSec)
      << "},\n";
  Out << "  \"sim_wall_time_s\": [";
  for (std::size_t I = 0; I != SimTimes.size(); ++I)
    Out << (I ? ", " : "") << "{\"n\": " << SimTimes[I].first
        << ", \"optimized_s\": " << jsonNum(SimTimes[I].second) << "}";
  Out << "],\n";
  Out << "  \"sim_threads\": [";
  for (std::size_t I = 0; I != ShardRows.size(); ++I) {
    Out << (I ? ", " : "") << "{\"n\": " << ShardRows[I].N
        << ", \"sim_threads\": " << ShardRows[I].SimThreads
        << ", \"optimized_s\": " << jsonNum(ShardRows[I].Seconds)
        << ", \"events_per_sec\": " << jsonNum(ShardRows[I].EventsPerSec)
        << ", \"windows\": " << ShardRows[I].Windows
        << ", \"stream_windows\": " << ShardRows[I].StreamWindows
        << ", \"barriers\": " << ShardRows[I].Barriers;
    if (ShardRows[I].Oversubscribed)
      Out << ", \"oversubscribed\": true";
    Out << "}";
  }
  Out << "],\n";
  Out << "  \"sim_digest_match\": " << (DigestsMatch ? "true" : "false")
      << ",\n";
  Out << "  \"fft_mflops\": {\"scalar\": " << jsonNum(ScalarMflops) << ", \""
      << simdLevelName(Best) << "\": " << jsonNum(BestMflops) << "},\n";
  Out << "  \"sweep\": {\"n\": " << SweepN
      << ", \"candidates\": " << SweepK.Candidates
      << ", \"threads1_s\": " << jsonNum(Sweep1.Seconds)
      << ", \"threadsN_s\": " << jsonNum(SweepK.Seconds)
      << ", \"speedup\": " << jsonNum(Sweep1.Seconds / SweepK.Seconds)
      << ", \"utilization\": [";
  for (std::size_t W = 0; W != SweepK.Workers.size(); ++W)
    Out << (W ? ", " : "")
        << jsonNum(SweepK.Seconds > 0.0
                       ? SweepK.Workers[W].BusySeconds / SweepK.Seconds
                       : 0.0);
  Out << "]}\n";
  Out << "}\n";
  std::cout << "\nwrote " << JsonPath << "\n";

  // Sample timeline artifact: one traced optimized run, small enough to
  // load into Perfetto straight from the CI artifact listing.
  if (!TracePath.empty()) {
    Tracer Trace;
    const SystemConfig Config = SystemConfig::forProblemSize(1024);
    Fft2dProcessor Processor(Config);
    Processor.setObservability(&Trace, nullptr);
    (void)Processor.runOptimized();
    std::ofstream TraceOut(TracePath);
    Trace.writeChromeTrace(TraceOut);
    std::cout << "wrote " << Trace.events().size() << " trace events to "
              << TracePath << "\n";
  }
  return 0;
}
