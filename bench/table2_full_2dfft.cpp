//===- bench/table2_full_2dfft.cpp - Reproduces paper Table 2 -------------===//
//
// Part of the fft3d project.
//
// Table 2 of the paper: "Performance Comparison: Entire 2D FFT
// application" - throughput, latency and data parallelism for the
// baseline and optimized architectures, plus the throughput improvement
// percentage. Paper vs analytical vs simulated for every legible cell.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

struct PaperRow {
  std::uint64_t N;
  double OptimizedGBps;
  double ImprovementPct;
};

// Paper Table 2's legible cells (the baseline-throughput and latency
// columns are garbled in the available text; the improvement percentage
// implies baseline = optimized * (1 - improvement)).
const PaperRow PaperTable[] = {
    {2048, 32.0, 95.1},
    {4096, 25.6, 97.0},
    {8192, 23.0, 96.6},
};

} // namespace

int main() {
  printHeader("Table 2: Performance Comparison, Entire 2D FFT application",
              SystemConfig::forProblemSize(2048));

  TableWriter Table({"FFT size", "metric", "paper", "analytical",
                     "simulated"});

  for (const PaperRow &Row : PaperTable) {
    const SystemConfig Config = SystemConfig::forProblemSize(Row.N);
    const AnalyticalModel Model(Config);
    const AppEstimate E = Model.estimateApp();

    Fft2dProcessor Processor(Config);
    const AppReport Base = Processor.runBaseline();
    const AppReport Opt = Processor.runOptimized();

    const double SimImprovement =
        (Opt.AppThroughputGBps - Base.AppThroughputGBps) /
        Opt.AppThroughputGBps;
    const double PaperBaseline =
        Row.OptimizedGBps * (1.0 - Row.ImprovementPct / 100.0);

    char Size[32];
    std::snprintf(Size, sizeof(Size), "%llux%llu",
                  static_cast<unsigned long long>(Row.N),
                  static_cast<unsigned long long>(Row.N));

    Table.addRow({Size, "baseline throughput (GB/s)",
                  TableWriter::num(PaperBaseline, 2) + " (implied)",
                  TableWriter::num(E.BaselineAppGBps, 2),
                  TableWriter::num(Base.AppThroughputGBps, 2)});
    Table.addRow({"", "optimized throughput (GB/s)",
                  TableWriter::num(Row.OptimizedGBps, 1),
                  TableWriter::num(E.OptimizedAppGBps, 2),
                  TableWriter::num(Opt.AppThroughputGBps, 2)});
    Table.addRow({"", "throughput improvement",
                  TableWriter::percent(Row.ImprovementPct / 100.0, 1),
                  TableWriter::percent(E.ImprovementFraction, 1),
                  TableWriter::percent(SimImprovement, 1)});
    Table.addRow({"", "baseline latency", "(garbled in source)",
                  formatDuration(E.BaselineLatency),
                  formatDuration(Base.AppLatency)});
    Table.addRow({"", "optimized latency", "(garbled in source)",
                  formatDuration(E.OptimizedLatency),
                  formatDuration(Opt.AppLatency)});
    Table.addRow({"", "latency reduction", ">= 3x (claim)",
                  TableWriter::num(static_cast<double>(E.BaselineLatency) /
                                       static_cast<double>(
                                           E.OptimizedLatency),
                                   1) +
                      "x",
                  TableWriter::num(static_cast<double>(Base.AppLatency) /
                                       static_cast<double>(Opt.AppLatency),
                                   1) +
                      "x"});
    Table.addRow({"", "data parallelism (elements)", "1 / 8 (base/opt)",
                  TableWriter::num(std::uint64_t(E.BaselineParallelism)) +
                      " / " +
                      TableWriter::num(std::uint64_t(E.OptimizedParallelism)),
                  TableWriter::num(std::uint64_t(Base.DataParallelism)) +
                      " / " +
                      TableWriter::num(std::uint64_t(Opt.DataParallelism))});
    Table.addRow(
        {"", "optimized block plan (w x h)", "-",
         TableWriter::num(Opt.Plan.W) + " x " + TableWriter::num(Opt.Plan.H),
         std::string(planRegimeName(Opt.Plan.Regime))});
    Table.addRow({"", "est. end-to-end time", "-",
                  "-",
                  formatDuration(Opt.EstimatedTotalTime) + " (opt) / " +
                      formatDuration(Base.EstimatedTotalTime) + " (base)"});
    Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nnotes:\n"
            << "  - the paper's improvement convention is (opt-base)/opt;\n"
            << "    full-app throughput combines the two equal-volume phases\n"
            << "    harmonically.\n"
            << "  - simulated phases are volume-capped and extrapolated from\n"
            << "    steady state (see DESIGN.md).\n";
  return 0;
}
