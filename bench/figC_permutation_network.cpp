//===- bench/figC_permutation_network.cpp - Fig. 3 network costs ----------===//
//
// Part of the fft3d project.
//
// Paper Fig. 3 shows the 2D FFT processor: 16 vaults feeding an 8-wide
// permutation network under a controlling unit. This bench quantifies
// the dynamic-layout machinery: the Eq. 1 plan per problem size, the
// permutation network's buffer cost and latency in both stream modes,
// and a functional round-trip check (writeback then fetch restores the
// stream).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "layout/LayoutPlanner.h"
#include "permute/BitonicNetwork.h"
#include "permute/ControlUnit.h"

#include <iostream>
#include <numeric>

using namespace fft3d;
using namespace fft3d::bench;

int main() {
  const SystemConfig Head = SystemConfig::forProblemSize(2048);
  printHeader("Figure 3 companion: permutation network + controlling unit",
              Head);

  TableWriter Table({"N", "plan (w x h)", "regime", "mode", "perm",
                     "SRAM (dbl-buf)", "block latency", "reconfig/app"});
  for (std::uint64_t N : {2048ull, 4096ull, 8192ull}) {
    const SystemConfig Config = SystemConfig::forProblemSize(N);
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    const BlockPlan Plan = Planner.plan(N, Config.Optimized.VaultsParallel);
    for (const StreamMode Mode :
         {StreamMode::LaneParallel, StreamMode::ColumnSerial}) {
      PermutationNetwork Net(Config.Optimized.Lanes, Plan.W * Plan.H);
      ControlUnit Cu(Net);
      Cu.configureForWriteback(Plan.W, Plan.H, Mode);
      const std::uint64_t WbBytes = Net.bufferBytes(ElementBytes);
      const std::uint64_t WbLat = Net.blockLatencyCycles();
      Cu.configureForColumnFetch(Plan.W, Plan.H, Mode);
      const std::uint64_t Bytes =
          std::max(WbBytes, Net.bufferBytes(ElementBytes));
      const std::uint64_t Lat = std::max(WbLat, Net.blockLatencyCycles());
      Table.addRow(
          {TableWriter::num(N),
           TableWriter::num(Plan.W) + " x " + TableWriter::num(Plan.H),
           planRegimeName(Plan.Regime), streamModeName(Mode),
           Cu.currentConfig(), formatBytes(Bytes),
           TableWriter::num(Lat) + " cyc",
           TableWriter::num(Cu.reconfigurations())});
    }
    Table.addSeparator();
  }
  Table.print(std::cout);

  // Functional round trip: writeback then column fetch must restore the
  // arrival stream for both modes.
  std::cout << "\nround-trip check (writeback o fetch == identity): ";
  bool AllGood = true;
  for (const StreamMode Mode :
       {StreamMode::LaneParallel, StreamMode::ColumnSerial}) {
    const std::uint64_t W = 8, H = 128;
    const Permutation Wb = ControlUnit::writebackPermutation(W, H, Mode);
    const Permutation Cf = ControlUnit::columnFetchPermutation(W, H, Mode);
    std::vector<std::uint32_t> Stream(W * H);
    std::iota(Stream.begin(), Stream.end(), 0u);
    const auto Restored = Cf.apply(Wb.apply(Stream));
    AllGood = AllGood && Restored == Stream;
  }
  std::cout << (AllGood ? "PASS" : "FAIL") << "\n";

  // The lane-level switch realization (paper reference [7]): a bitonic
  // compare-exchange network of the kernel's width.
  {
    const BitonicNetwork Net(8);
    std::cout << "\nlane switch realization (bitonic, ref. [7]): width 8, "
              << Net.stageCount() << " stages, " << Net.comparatorCount()
              << " comparators";
    std::vector<std::uint32_t> Lanes(8);
    std::iota(Lanes.begin(), Lanes.end(), 0u);
    const Permutation Rotate({1, 2, 3, 4, 5, 6, 7, 0});
    std::cout << (Net.route(Lanes, Rotate) == Rotate.apply(Lanes)
                      ? " (routing check PASS)\n"
                      : " (routing check FAIL)\n");
  }

  std::cout << "\nLane-parallel mode (w = kernel lanes) degenerates to the\n"
               "identity: the dynamic layout was chosen so the expensive\n"
               "reordering disappears. Column-serial mode shows the cost a\n"
               "naive single-lane kernel would pay.\n";
  return AllGood ? 0 : 1;
}
