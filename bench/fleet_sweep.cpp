//===- bench/fleet_sweep.cpp - Fleet front-end at a million jobs ----------===//
//
// Part of the fft3d project.
//
// Drives the fleet front-end with an open-loop Poisson stream of 10^6
// jobs (the mixed 2048^2/4096^2 tenant workload) and compares the three
// plan-cache configurations on the identical trace:
//
//  - shared:    one fleet-wide LRU; the first stack to plan an (N,
//               layout) pays the miss, every stack reuses it.
//  - per-stack: the pre-fleet memoization baseline - each stack plans
//               its own copy, so misses scale with the stack count.
//  - none:      CacheBytes = 0; every dispatch pays the plan latency.
//
// The repeat-heavy trace (a handful of distinct problem shapes repeated
// ~10^6 times) is exactly the shape the shared cache is built for: its
// hit rate should sit within noise of 100%, per-stack should pay S times
// the cold misses, and cache-less should convert the plan latency into a
// visible p50/p99 tax at every load level.
//
// Memory stays flat in the run length - arrivals stream one at a time,
// queues are bounded, stats are histograms - which is what makes the
// 10^6-job sweep practical in a CI job.
//
// Usage: fleet_sweep [--threads K] [--json PATH] [--quick]
//
// With --json PATH the grid merges a "fleet_serve" row array into the
// perf JSON (perf_baseline owns the file; this bench re-merges its key).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "serve/fleet/FleetSimulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Rewrites \p Path with \p Row as the object's last "fleet_serve"
/// entry, same splice discipline as cluster_sweep's mergeIntoJson:
/// perf_baseline owns the file, every other bench re-merges its key.
void mergeIntoJson(const std::string &Path, const std::string &Row) {
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("\"fleet_serve\":") == std::string::npos)
        Lines.push_back(Line);
  }
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.back() != "}")
    Lines = {"{", "}"};
  Lines.pop_back();
  if (!Lines.empty() && Lines.back() != "{") {
    std::string &Prev = Lines.back();
    if (Prev.empty() || Prev.back() != ',')
      Prev += ',';
  }
  Lines.push_back("  \"fleet_serve\": " + Row);
  Lines.push_back("}");
  std::ofstream Out(Path);
  for (const std::string &Line : Lines)
    Out << Line << "\n";
}

struct CacheAxis {
  const char *Name;
  PlanCacheMode Mode;
  std::uint64_t Bytes;
};

struct Cell {
  RoutePolicy Router = RoutePolicy::Hash;
  CacheAxis Cache = {};
  FleetResult Result;
};

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath;
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }
  printHeader("Fleet serving: routed stacks x plan-cache mode",
              SystemConfig::forProblemSize(2048));

  // Each fleet stack is a whole single-stack device; the (thread-safe,
  // memoized) service model is the only state shared between cells.
  const MemoryConfig Mem;
  ServiceModel Model(Mem);
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  const std::uint64_t Seed = 42;
  const unsigned Stacks = 4;
  const unsigned Tenants = 32;
  // The mixed mean service is ~10 ms, so one stack saturates near 100
  // jobs/s; 240 jobs/s keeps four stacks busy without drowning them.
  const double RatePerSec = 240.0;
  const std::uint64_t Jobs = Quick ? 20000 : 1000000;

  {
    std::vector<std::pair<std::uint64_t, unsigned>> Keys;
    for (const JobTemplate &T : Mix)
      Keys.emplace_back(T.N, Model.totalVaults());
    ThreadPool Pool(Threads);
    Model.prewarm(Keys, Pool);
  }

  const std::vector<RoutePolicy> Routers =
      Quick ? std::vector<RoutePolicy>{RoutePolicy::Hash}
            : std::vector<RoutePolicy>{RoutePolicy::Hash,
                                       RoutePolicy::LeastLoaded,
                                       RoutePolicy::Affinity};
  const std::vector<CacheAxis> Caches = {
      {"shared", PlanCacheMode::Shared, 8ull << 20},
      {"per-stack", PlanCacheMode::PerStack, 8ull << 20},
      {"none", PlanCacheMode::Shared, 0}};

  std::vector<Cell> Cells(Routers.size() * Caches.size());
  forEachIndex(Cells.size(), Threads, [&](std::size_t I) {
    Cell &C = Cells[I];
    C.Router = Routers[I / Caches.size()];
    C.Cache = Caches[I % Caches.size()];

    FleetConfig Config;
    Config.NumStacks = Stacks;
    Config.QueueCapacity = 64;
    Config.Router = C.Router;
    Config.CacheMode = C.Cache.Mode;
    Config.CacheBytes = C.Cache.Bytes;
    Config.RingSeed = Seed;

    PoissonArrivalStream Stream(Mix, Jobs, RatePerSec, Seed, Model,
                                Tenants);
    FleetSimulator Sim(Config, Model);
    C.Result = Sim.run(Stream);
  });

  TableWriter Table({"router", "cache", "done", "shed", "jobs/s",
                     "p50 ms", "p99 ms", "hit %", "misses", "peak out"});
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    const SloSummary &S = C.Result.Summary;
    Table.addRow({C.Result.RouterName, C.Cache.Name,
                  TableWriter::num(S.Completed), TableWriter::num(S.Shed),
                  TableWriter::num(S.ThroughputJobsPerSec, 1),
                  TableWriter::num(S.P50LatencyMs, 2),
                  TableWriter::num(S.P99LatencyMs, 2),
                  TableWriter::percent(C.Result.Cache.hitRate()),
                  TableWriter::num(C.Result.Cache.Misses),
                  TableWriter::num(C.Result.PeakOutstanding)});
    if (I % Caches.size() == Caches.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: the trace repeats a handful of problem\n"
               "shapes a million times, so the shared cache's hit rate is\n"
               "within noise of 100% and its misses stay at the distinct\n"
               "shape count; per-stack pays that cold cost once per stack;\n"
               "cache-less pays the plan latency on every single dispatch\n"
               "and shows it in the latency columns. The affinity router\n"
               "pins each shape to the stack that planned it - fewest\n"
               "per-stack misses, but on a low-diversity trace it\n"
               "concentrates the load onto fewer stacks than exist and\n"
               "sheds what they cannot absorb; hash spreads by tenant and\n"
               "least-loaded by backlog. Peak outstanding is structurally\n"
               "capped at stacks * (queue + 1) regardless of the run\n"
               "length - that is what keeps this sweep flat in memory at\n"
               "10^6 jobs.\n";

  if (!JsonPath.empty()) {
    std::ostringstream Row;
    Row << "[";
    for (std::size_t I = 0; I != Cells.size(); ++I) {
      const Cell &C = Cells[I];
      const SloSummary &S = C.Result.Summary;
      if (I)
        Row << ", ";
      Row << "{\"router\": \"" << C.Result.RouterName << "\", \"cache\": \""
          << C.Cache.Name << "\", \"stacks\": " << Stacks
          << ", \"jobs\": " << Jobs << ", \"rate_per_sec\": "
          << jsonNum(RatePerSec) << ", \"completed\": " << S.Completed
          << ", \"shed\": " << S.Shed << ", \"jobs_per_sec\": "
          << jsonNum(S.ThroughputJobsPerSec) << ", \"p50_ms\": "
          << jsonNum(S.P50LatencyMs) << ", \"p99_ms\": "
          << jsonNum(S.P99LatencyMs) << ", \"hit_rate\": "
          << jsonNum(C.Result.Cache.hitRate()) << ", \"misses\": "
          << C.Result.Cache.Misses << ", \"peak_outstanding\": "
          << C.Result.PeakOutstanding << "}";
    }
    Row << "]";
    mergeIntoJson(JsonPath, Row.str());
    std::cout << "\nmerged fleet_serve (" << Cells.size()
              << " cells) into " << JsonPath << "\n";
  }
  return 0;
}
