//===- bench/micro_kernels.cpp - google-benchmark microbenchmarks ---------===//
//
// Part of the fft3d project.
//
// Host-side microbenchmarks of the library itself (not the modelled
// hardware): FFT kernels, permutations, the event queue and the memory
// simulator. Useful to keep the simulator fast enough for the sweeps.
//
//===----------------------------------------------------------------------===//

#include "core/PhaseEngine.h"
#include "fft/Fft1d.h"
#include "fft/Fft2d.h"
#include "fft/SimdKernels.h"
#include "fft/Twiddle.h"
#include "layout/BlockDynamicLayout.h"
#include "layout/LinearLayouts.h"
#include "permute/PermutationNetwork.h"
#include "sim/EventQueue.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace fft3d;

namespace {

std::vector<CplxF> randomFrame(std::uint64_t N) {
  Rng R(N);
  std::vector<CplxF> Frame(N);
  for (auto &V : Frame)
    V = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
              static_cast<float>(R.nextDouble(-1, 1)));
  return Frame;
}

void BM_Fft1dForward(benchmark::State &State) {
  const std::uint64_t N = static_cast<std::uint64_t>(State.range(0));
  const Fft1d Plan(N);
  std::vector<CplxF> Frame = randomFrame(N);
  for (auto _ : State) {
    Plan.forward(Frame);
    benchmark::DoNotOptimize(Frame.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_Fft1dForward)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_Fft2dForward(benchmark::State &State) {
  const std::uint64_t N = static_cast<std::uint64_t>(State.range(0));
  const Fft2d Plan(N, N);
  Matrix M(N, N);
  Rng R(N);
  for (std::uint64_t I = 0; I != N; ++I)
    for (std::uint64_t J = 0; J != N; ++J)
      M.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)), 0.0f);
  for (auto _ : State) {
    Plan.forward(M);
    benchmark::DoNotOptimize(M.storage().data());
  }
  State.SetItemsProcessed(State.iterations() * N * N);
}
BENCHMARK(BM_Fft2dForward)->Arg(64)->Arg(128)->Arg(256);

void BM_PermutationNetworkBlock(benchmark::State &State) {
  PermutationNetwork Net(8, 1024);
  Net.configure(Permutation::transpose(8, 128));
  std::vector<CplxF> Block = randomFrame(1024);
  for (auto _ : State) {
    Block = Net.permute(Block);
    benchmark::DoNotOptimize(Block.data());
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_PermutationNetworkBlock);

void BM_EventQueueChurn(benchmark::State &State) {
  for (auto _ : State) {
    EventQueue Q;
    int Sink = 0;
    for (int I = 0; I != 1000; ++I)
      Q.scheduleAt(static_cast<Picos>(I * 7 % 997), [&Sink] { ++Sink; });
    Q.run();
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_EventQueueScheduleAfter(benchmark::State &State) {
  // Steady-state self-rescheduling wakeups: the dominant event shape in
  // the memory controller (one [this] capture, near-future deadline).
  EventQueue Q;
  int Sink = 0;
  for (auto _ : State) {
    for (int I = 0; I != 64; ++I)
      Q.scheduleAfter(static_cast<Picos>(1 + I % 7), [&Sink] { ++Sink; });
    for (int I = 0; I != 64; ++I)
      Q.step();
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAfter);

void BM_EventQueueStep(benchmark::State &State) {
  // Drain cost alone: refill a deep queue outside the timed region's
  // inner accounting (refill and drain both counted, half each).
  EventQueue Q;
  std::uint64_t Sink = 0;
  for (auto _ : State) {
    for (int I = 0; I != 512; ++I)
      Q.scheduleAfter(static_cast<Picos>(I * 13 % 4096), [&Sink] { ++Sink; });
    while (!Q.empty())
      Q.step();
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(State.iterations() * 512);
}
BENCHMARK(BM_EventQueueStep);

void BM_MemorySimSequentialStream(benchmark::State &State) {
  for (auto _ : State) {
    EventQueue Events;
    const MemoryConfig Config;
    Memory3D Mem(Events, Config);
    Picos Last = 0;
    for (unsigned I = 0; I != 512; ++I) {
      MemRequest Req;
      Req.Addr = PhysAddr(I) * Config.Geo.RowBufferBytes;
      Req.Bytes = static_cast<std::uint32_t>(Config.Geo.RowBufferBytes);
      Mem.submit(Req, [&Last](const MemRequest &, Picos At) { Last = At; });
    }
    Events.run();
    benchmark::DoNotOptimize(Last);
  }
  State.SetItemsProcessed(State.iterations() * 512);
}
BENCHMARK(BM_MemorySimSequentialStream);

void BM_PhaseEngineStridedScan(benchmark::State &State) {
  for (auto _ : State) {
    EventQueue Events;
    const MemoryConfig Config;
    Memory3D Mem(Events, Config);
    PhaseEngine Engine(Mem, Events, 1ull << 20, 10000);
    const RowMajorLayout L(1024, 1024, 8, 0);
    ColScanTrace Reads(L, 8192);
    const PhaseResult Res = Engine.run({&Reads, false, 8, 0.0, 0}, {});
    benchmark::DoNotOptimize(Res.ThroughputGBps);
  }
}
BENCHMARK(BM_PhaseEngineStridedScan);

/// One full radix-4 stage (the FFT's hot loop) at a chosen dispatch
/// level; Arg is the SimdLevel enum value. Levels the CPU lacks are
/// skipped rather than silently falling back.
void BM_Radix4Stage(benchmark::State &State) {
  const SimdLevel Requested = static_cast<SimdLevel>(State.range(0));
  if (!simdLevelSupported(Requested)) {
    State.SkipWithError("level unsupported on this CPU");
    return;
  }
  const FftKernels &Kernels = kernelsFor(Requested);
  constexpr std::uint64_t N = 4096;
  const TwiddleRom Rom(N);
  Rng R(N);
  std::vector<CplxD> Data(N);
  for (auto &V : Data)
    V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  // Mid-size stage: M = 64, span 256, the shape most stages take.
  const std::uint64_t M = 64, L = 4 * M;
  for (auto _ : State) {
    Kernels.Radix4Stage(Data.data(), N, M, Rom.data(), Rom.size() / L,
                        false);
    benchmark::DoNotOptimize(Data.data());
  }
  State.SetLabel(simdLevelName(Requested));
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_Radix4Stage)
    ->Arg(static_cast<int>(SimdLevel::Scalar))
    ->Arg(static_cast<int>(SimdLevel::Sse2))
    ->Arg(static_cast<int>(SimdLevel::Avx2))
    ->Arg(static_cast<int>(SimdLevel::Neon));

/// The convolution theorem's pointwise spectral product at a chosen
/// dispatch level; Arg is the SimdLevel enum value, as in BM_Radix4Stage.
void BM_PointwiseMul(benchmark::State &State) {
  const SimdLevel Requested = static_cast<SimdLevel>(State.range(0));
  if (!simdLevelSupported(Requested)) {
    State.SkipWithError("level unsupported on this CPU");
    return;
  }
  const FftKernels &Kernels = kernelsFor(Requested);
  constexpr std::uint64_t N = 4096;
  Rng R(N);
  std::vector<CplxD> Acc(N), Other(N);
  for (std::uint64_t I = 0; I != N; ++I) {
    Acc[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Other[I] = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
  }
  for (auto _ : State) {
    Kernels.PointwiseMul(Acc.data(), Other.data(), N);
    benchmark::DoNotOptimize(Acc.data());
  }
  State.SetLabel(simdLevelName(Requested));
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PointwiseMul)
    ->Arg(static_cast<int>(SimdLevel::Scalar))
    ->Arg(static_cast<int>(SimdLevel::Sse2))
    ->Arg(static_cast<int>(SimdLevel::Avx2))
    ->Arg(static_cast<int>(SimdLevel::Neon));

void BM_LayoutAddressOf(benchmark::State &State) {
  const BlockDynamicLayout L(8192, 8192, 8, 0, 8, 128);
  std::uint64_t I = 0;
  for (auto _ : State) {
    const PhysAddr A = L.addressOf((I * 2654435761u) % 8192, I % 8192);
    benchmark::DoNotOptimize(A);
    ++I;
  }
}
BENCHMARK(BM_LayoutAddressOf);

} // namespace
