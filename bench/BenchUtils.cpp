//===- bench/BenchUtils.cpp - Shared benchmark plumbing -------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/LayoutEvaluator.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "support/MathUtils.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

struct Regions {
  PhysAddr Input = 0;
  PhysAddr Mid = 0;
  PhysAddr Out = 0;
};

Regions regionsFor(const SystemConfig &Config) {
  const std::uint64_t MatrixBytes = Config.N * Config.N * ElementBytes;
  const std::uint64_t Stride =
      roundUp(MatrixBytes, Config.Mem.Geo.RowBufferBytes);
  return Regions{0, Stride, 2 * Stride};
}

} // namespace

PhaseResult bench::simulateColumnPhase(const SystemConfig &Config,
                                       const ArchParams &Arch,
                                       bool Optimized) {
  const Regions R = regionsFor(Config);
  const std::uint64_t N = Config.N;
  const LayoutEvaluator Evaluator(Config);
  if (!Optimized) {
    const RowMajorLayout Mid(N, N, ElementBytes, R.Mid);
    const RowMajorLayout Out(N, N, ElementBytes, R.Out);
    return Evaluator.runColumnPhase(Arch, Mid, Out);
  }
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Arch.VaultsParallel);
  const BlockDynamicLayout Mid(N, N, ElementBytes, R.Mid, Plan.W, Plan.H);
  const BlockDynamicLayout Out(N, N, ElementBytes, R.Out, Plan.W, Plan.H);
  return Evaluator.runColumnPhase(Arch, Mid, Out);
}

PhaseResult bench::simulateRowPhase(const SystemConfig &Config,
                                    const ArchParams &Arch, bool Optimized) {
  const Regions R = regionsFor(Config);
  const std::uint64_t N = Config.N;
  const LayoutEvaluator Evaluator(Config);
  if (!Optimized) {
    const RowMajorLayout Mid(N, N, ElementBytes, R.Mid);
    return Evaluator.runRowPhase(Arch, Mid);
  }
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, Arch.VaultsParallel);
  const BlockDynamicLayout Mid(N, N, ElementBytes, R.Mid, Plan.W, Plan.H);
  return Evaluator.runRowPhase(Arch, Mid);
}

PhaseResult bench::simulateColumnPhaseOver(const SystemConfig &Config,
                                           const ArchParams &Arch,
                                           const DataLayout &Mid,
                                           const DataLayout &Out) {
  return LayoutEvaluator(Config).runColumnPhase(Arch, Mid, Out);
}

PhaseResult bench::simulateRowPhaseOver(const SystemConfig &Config,
                                        const ArchParams &Arch,
                                        const DataLayout &Mid) {
  return LayoutEvaluator(Config).runRowPhase(Arch, Mid);
}

void bench::printHeader(const std::string &Title,
                        const SystemConfig &Config) {
  const Geometry &G = Config.Mem.Geo;
  const Timing &T = Config.Mem.Time;
  const AnalyticalModel Model(Config);
  std::cout << "=== " << Title << " ===\n"
            << "device: " << G.NumVaults << " vaults x " << G.LayersPerVault
            << " layers x " << G.BanksPerLayer << " banks/layer, "
            << formatBytes(G.RowBufferBytes) << " rows, "
            << G.NumTsvsPerVault << " TSVs/vault -> peak "
            << Model.peakGBps() << " GB/s\n"
            << "timing: t_in_row=" << picosToNanos(T.TInRow)
            << "ns t_in_vault=" << picosToNanos(T.TInVault)
            << "ns t_diff_bank=" << picosToNanos(T.TDiffBank)
            << "ns t_diff_row=" << picosToNanos(T.TDiffRow) << "ns\n\n";
}

unsigned bench::threadsFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--threads", 9) != 0)
      continue;
    const char *Value = nullptr;
    if (Arg[9] == '=')
      Value = Arg + 10;
    else if (Arg[9] == '\0' && I + 1 < Argc)
      Value = Argv[I + 1];
    if (Value)
      return ThreadPool::resolveThreads(
          static_cast<unsigned>(std::strtoul(Value, nullptr, 10)));
  }
  return 1;
}

void bench::forEachIndex(std::size_t N, unsigned Threads,
                         const std::function<void(std::size_t)> &Body) {
  ThreadPool Pool(Threads == 0 ? ThreadPool::resolveThreads(0) : Threads);
  Pool.parallelFor(N, Body);
}
