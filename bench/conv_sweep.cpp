//===- bench/conv_sweep.cpp - FFT convolution and the real-input payoff ---===//
//
// Part of the fft3d project.
//
// Two related questions around the FFT-based 2D convolution path:
//
//  1. Host crossover: at what problem size does the three-transform FFT
//     convolution (forward, pointwise multiply, inverse) overtake the
//     O(N^4) direct circular convolution? Wall-clock timing of the two
//     library routines on identical random fields.
//
//  2. Simulated payoff: how much phase-2 traffic and end-to-end time
//     does the packed half-spectrum (real-input) pipeline save over the
//     complex pipeline on the modelled memory, per transform? The real
//     intermediate is N x (N/2), so the expected byte ratio is 50%
//     exactly; the acceptance gate fails the bench (nonzero exit) if
//     real input stops winning - more than 55% of the complex phase-2
//     bytes, or no longer faster in simulated time - at n = 2048.
//
// The n = 2048 real-vs-complex cells always run, --quick only trims the
// other grid sizes and the largest crossover point.
//
// Usage: conv_sweep [--threads K] [--json PATH] [--quick]
//
// With --json PATH the results merge a "conv_real" entry into the perf
// JSON (perf_baseline owns the file; this bench re-merges its key).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "fft/Convolution.h"
#include "support/Random.h"
#include "support/Units.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Rewrites \p Path with \p Row as the object's last "conv_real" entry,
/// same splice discipline as fleet_sweep's mergeIntoJson: perf_baseline
/// owns the file, every other bench re-merges its key.
void mergeIntoJson(const std::string &Path, const std::string &Row) {
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("\"conv_real\":") == std::string::npos)
        Lines.push_back(Line);
  }
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.back() != "}")
    Lines = {"{", "}"};
  Lines.pop_back();
  if (!Lines.empty() && Lines.back() != "{") {
    std::string &Prev = Lines.back();
    if (Prev.empty() || Prev.back() != ',')
      Prev += ',';
  }
  Lines.push_back("  \"conv_real\": " + Row);
  Lines.push_back("}");
  std::ofstream Out(Path);
  for (const std::string &Line : Lines)
    Out << Line << "\n";
}

std::vector<double> randomField(std::uint64_t N, std::uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Field(N * N);
  for (double &V : Field)
    V = R.nextDouble(-1, 1);
  return Field;
}

double secondsOf(const std::function<void()> &Body) {
  const auto Start = std::chrono::steady_clock::now();
  Body();
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

struct CrossoverCell {
  std::uint64_t N = 0;
  double FftSec = 0.0;
  double DirectSec = 0.0;
};

struct GridCell {
  std::uint64_t N = 0;
  InputDomain Input = InputDomain::Complex;
  std::uint64_t Phase2Bytes = 0;
  Picos TotalTime = 0;
  double ThroughputGBps = 0.0;
};

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath;
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }
  printHeader("FFT convolution: direct crossover x real-input payoff",
              SystemConfig::forProblemSize(2048));

  // --- 1. Host-side FFT-vs-direct crossover ------------------------------
  // Direct circular convolution with a full-size kernel is O(N^4), so the
  // points are small; the FFT path is O(N^2 log N) and wins early.
  std::vector<std::uint64_t> Sizes = {8, 16, 32, 64};
  if (!Quick)
    Sizes.push_back(128);
  std::vector<CrossoverCell> Crossover(Sizes.size());
  forEachIndex(Crossover.size(), Threads, [&](std::size_t I) {
    CrossoverCell &C = Crossover[I];
    C.N = Sizes[I];
    const std::vector<double> Image = randomField(C.N, C.N);
    const std::vector<double> Kernel = randomField(C.N, C.N + 1);
    std::vector<double> Out;
    C.FftSec = secondsOf(
        [&] { Out = circularConvolve2dReal(Image, Kernel, C.N, C.N); });
    C.DirectSec = secondsOf([&] {
      Out = circularConvolve2dRealDirect(Image, Kernel, C.N, C.N);
    });
  });

  std::uint64_t CrossoverN = 0;
  TableWriter HostTable({"n", "fft us", "direct us", "speedup"});
  for (const CrossoverCell &C : Crossover) {
    if (CrossoverN == 0 && C.FftSec < C.DirectSec)
      CrossoverN = C.N;
    HostTable.addRow({TableWriter::num(C.N),
                      TableWriter::num(C.FftSec * 1e6, 1),
                      TableWriter::num(C.DirectSec * 1e6, 1),
                      TableWriter::num(C.DirectSec / C.FftSec, 2) + "x"});
  }
  std::printf("Host crossover (full-size kernel, wall clock):\n");
  HostTable.print(std::cout);
  if (CrossoverN != 0)
    std::printf("FFT path first wins at n = %llu\n\n",
                static_cast<unsigned long long>(CrossoverN));
  else
    std::printf("FFT path never won on the measured sizes\n\n");

  // --- 2. Simulated real-vs-complex payoff -------------------------------
  // One optimized-architecture run per (n, domain) cell. The n = 2048
  // pair is the acceptance gate and always runs.
  std::vector<std::uint64_t> GridSizes =
      Quick ? std::vector<std::uint64_t>{2048}
            : std::vector<std::uint64_t>{1024, 2048, 4096};
  std::vector<GridCell> Grid(GridSizes.size() * 2);
  forEachIndex(Grid.size(), Threads, [&](std::size_t I) {
    GridCell &C = Grid[I];
    C.N = GridSizes[I / 2];
    C.Input = I % 2 ? InputDomain::Real : InputDomain::Complex;
    SystemConfig Config = SystemConfig::forProblemSize(C.N);
    Config.Input = C.Input;
    Fft2dProcessor Proc(Config);
    const AppReport R = Proc.runOptimized();
    C.Phase2Bytes = R.ColPhase.TotalPhaseBytes;
    C.TotalTime = R.EstimatedTotalTime;
    C.ThroughputGBps = R.AppThroughputGBps;
  });

  TableWriter SimTable({"n", "input", "phase-2 MiB", "bytes vs cplx",
                        "total time", "speedup"});
  bool GateFailed = false;
  for (std::size_t I = 0; I != Grid.size(); I += 2) {
    const GridCell &Cplx = Grid[I], &Real = Grid[I + 1];
    const double ByteRatio = static_cast<double>(Real.Phase2Bytes) /
                             static_cast<double>(Cplx.Phase2Bytes);
    const double Speedup = static_cast<double>(Cplx.TotalTime) /
                           static_cast<double>(Real.TotalTime);
    SimTable.addRow({TableWriter::num(Cplx.N), "complex",
                     TableWriter::num(static_cast<double>(Cplx.Phase2Bytes) /
                                          (1024.0 * 1024.0),
                                      1),
                     "100.0%", formatDuration(Cplx.TotalTime), "1.00x"});
    SimTable.addRow({TableWriter::num(Real.N), "real",
                     TableWriter::num(static_cast<double>(Real.Phase2Bytes) /
                                          (1024.0 * 1024.0),
                                      1),
                     TableWriter::percent(ByteRatio),
                     formatDuration(Real.TotalTime),
                     TableWriter::num(Speedup, 2) + "x"});
    if (Cplx.N == 2048 && (ByteRatio > 0.55 || Speedup <= 1.0))
      GateFailed = true;
  }
  std::printf("Simulated optimized pipeline, per transform:\n");
  SimTable.print(std::cout);

  std::cout << "\nExpected shape: the packed intermediate is n x (n/2), so\n"
               "the real phase-2 volume is exactly half the complex one at\n"
               "every size, and the saved traffic shows up as end-to-end\n"
               "speedup (phase 1 reads half the input bytes too - real\n"
               "samples, not complex pairs). The gate fails this bench if\n"
               "the n = 2048 real run moves more than 55% of the complex\n"
               "phase-2 bytes or stops being faster in simulated time.\n";

  if (!JsonPath.empty()) {
    std::ostringstream Row;
    Row << "{\"crossover_n\": " << CrossoverN << ", \"grid\": [";
    for (std::size_t I = 0; I != Grid.size(); I += 2) {
      const GridCell &Cplx = Grid[I], &Real = Grid[I + 1];
      if (I)
        Row << ", ";
      Row << "{\"n\": " << Cplx.N
          << ", \"complex_phase2_bytes\": " << Cplx.Phase2Bytes
          << ", \"real_phase2_bytes\": " << Real.Phase2Bytes
          << ", \"bytes_ratio\": "
          << jsonNum(static_cast<double>(Real.Phase2Bytes) /
                     static_cast<double>(Cplx.Phase2Bytes))
          << ", \"complex_time_ms\": "
          << jsonNum(static_cast<double>(Cplx.TotalTime) /
                     static_cast<double>(PicosPerMilli))
          << ", \"real_time_ms\": "
          << jsonNum(static_cast<double>(Real.TotalTime) /
                     static_cast<double>(PicosPerMilli))
          << ", \"real_speedup\": "
          << jsonNum(static_cast<double>(Cplx.TotalTime) /
                     static_cast<double>(Real.TotalTime))
          << "}";
    }
    Row << "]}";
    mergeIntoJson(JsonPath, Row.str());
    std::cout << "\nmerged conv_real (" << Grid.size() / 2
              << " sizes) into " << JsonPath << "\n";
  }

  if (GateFailed) {
    std::fprintf(stderr, "error: real input stopped winning at n = 2048 "
                         "(see table above)\n");
    return 1;
  }
  return 0;
}
