//===- bench/ablation_timing_sensitivity.cpp - Activation-cost sweep ------===//
//
// Part of the fft3d project.
//
// Ablation C: the whole point of the dynamic layout is to make the
// application insensitive to the row-activation penalty. We scale the
// activation path as a whole - t_diff_row (tRC-like) together with the
// activate latency (tRCD-like), which track each other in real DRAM -
// from 0.5x to 4x and show the baseline column phase degrading while
// the optimized one holds. Eq. 1 reacts by growing h with t_diff_row in
// the row-conflict regime.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "layout/LayoutPlanner.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 4096;
  printHeader("Ablation C: sensitivity to the row-activation cost",
              SystemConfig::forProblemSize(N));

  const std::vector<double> Scales = {0.5, 1.0, 2.0, 4.0};
  struct Cell {
    PhaseResult Base, Opt;
    BlockPlan Plan;
  };
  std::vector<Cell> Cells(Scales.size());
  forEachIndex(Scales.size(), Threads, [&](std::size_t I) {
    const double Scale = Scales[I];
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Timing &T = Config.Mem.Time;
    T.TDiffRow = nanosToPicos(40.0 * Scale);
    T.ActivateLatency = nanosToPicos(14.0 * Scale);
    // Preserve the validity ordering at the aggressive end.
    if (T.TDiffBank > T.TDiffRow)
      T.TDiffBank = T.TDiffRow;
    if (T.TInVault > T.TDiffBank)
      T.TInVault = T.TDiffBank;

    Cells[I].Base =
        simulateColumnPhase(Config, Config.Baseline, /*Optimized=*/false);
    Cells[I].Opt =
        simulateColumnPhase(Config, Config.Optimized, /*Optimized=*/true);
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    Cells[I].Plan = Planner.plan(N, 16, /*ColumnStreams=*/8192);
  });

  TableWriter Table({"scale", "t_diff_row (ns)", "activate (ns)",
                     "baseline col (GB/s)", "optimized col (GB/s)",
                     "base util", "opt util", "Eq.1 h (m=s*b)"});
  for (std::size_t I = 0; I != Scales.size(); ++I) {
    const double Scale = Scales[I];
    const Cell &C = Cells[I];
    Table.addRow({TableWriter::num(Scale, 1) + "x",
                  TableWriter::num(40.0 * Scale, 0),
                  TableWriter::num(14.0 * Scale, 0),
                  TableWriter::num(C.Base.ThroughputGBps, 3),
                  TableWriter::num(C.Opt.ThroughputGBps, 2),
                  TableWriter::percent(C.Base.PeakUtilization, 2),
                  TableWriter::percent(C.Opt.PeakUtilization, 1),
                  TableWriter::num(C.Plan.H)});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: the optimized column is flat (one\n"
               "activation per 8 KiB transfer is invisible even at 4x)\n"
               "while the baseline's per-element blocking round trip is\n"
               "dominated by the activation path and degrades with it.\n"
               "Eq. 1's h scales with t_diff_row in the row-conflict\n"
               "regime.\n";
  return 0;
}
