//===- bench/ablation_vault_parallelism.cpp - n_v sweep --------------------===//
//
// Part of the fft3d project.
//
// Ablation B: "with parallelism employed in the third dimension of the
// memory, data parallelism can be increased to further improve the
// performance." We sweep the number of vaults the dynamic layout spreads
// over by shrinking the device to n_v vaults (per-vault bandwidth is
// fixed at 5 GB/s) and report whether the column phase can still feed
// the 32 GB/s kernel demand.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "layout/LayoutPlanner.h"
#include "support/MathUtils.h"

#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

int main() {
  const std::uint64_t N = 2048;
  printHeader("Ablation B: vault parallelism (n_v) sweep",
              SystemConfig::forProblemSize(N));

  TableWriter Table({"n_v", "device peak (GB/s)", "Eq.1 h", "regime",
                     "col phase (GB/s)", "kernel demand", "kernel-bound?"});
  for (unsigned Nv : {1u, 2u, 4u, 8u, 16u}) {
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Config.Mem.Geo.NumVaults = Nv;
    // Keep three matrix regions resident in the shrunken device.
    while (3 * N * N * ElementBytes > Config.Mem.Geo.capacityBytes())
      Config.Mem.Geo.RowsPerBank *= 2;
    Config.Optimized.VaultsParallel = Nv;
    Config.Baseline.VaultsParallel = 1;

    const AnalyticalModel Model(Config);
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    const BlockPlan Plan = Planner.plan(N, Nv);
    const PhaseResult Col =
        simulateColumnPhase(Config, Config.Optimized, /*Optimized=*/true);
    const double Demand = 2.0 * 16.0; // 2 streams x 8 lanes x 8 B x 250 MHz
    Table.addRow({TableWriter::num(std::uint64_t(Nv)),
                  TableWriter::num(Model.peakGBps(), 1),
                  TableWriter::num(Plan.H), planRegimeName(Plan.Regime),
                  TableWriter::num(Col.ThroughputGBps, 2),
                  TableWriter::num(Demand, 1),
                  Col.ThroughputGBps > 0.95 * Demand ? "yes" : "no"});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: throughput scales ~5 GB/s per vault until\n"
               "the kernel demand (32 GB/s) is met at n_v >= 7-8; beyond\n"
               "that the extra vault parallelism buys headroom, not\n"
               "throughput - exactly the paper's argument for exploiting\n"
               "the third dimension.\n";
  return 0;
}
