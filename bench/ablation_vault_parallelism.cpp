//===- bench/ablation_vault_parallelism.cpp - n_v sweep --------------------===//
//
// Part of the fft3d project.
//
// Ablation B: "with parallelism employed in the third dimension of the
// memory, data parallelism can be increased to further improve the
// performance." We sweep the number of vaults the dynamic layout spreads
// over by shrinking the device to n_v vaults (per-vault bandwidth is
// fixed at 5 GB/s) and report whether the column phase can still feed
// the 32 GB/s kernel demand.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "layout/LayoutPlanner.h"
#include "support/MathUtils.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const std::uint64_t N = 2048;
  printHeader("Ablation B: vault parallelism (n_v) sweep",
              SystemConfig::forProblemSize(N));

  const std::vector<unsigned> Vaults = {1u, 2u, 4u, 8u, 16u};
  struct Cell {
    double PeakGBps = 0.0;
    BlockPlan Plan;
    PhaseResult Col;
  };
  std::vector<Cell> Cells(Vaults.size());
  forEachIndex(Vaults.size(), Threads, [&](std::size_t I) {
    const unsigned Nv = Vaults[I];
    SystemConfig Config = SystemConfig::forProblemSize(N);
    Config.Mem.Geo.NumVaults = Nv;
    // Keep three matrix regions resident in the shrunken device.
    while (3 * N * N * ElementBytes > Config.Mem.Geo.capacityBytes())
      Config.Mem.Geo.RowsPerBank *= 2;
    Config.Optimized.VaultsParallel = Nv;
    Config.Baseline.VaultsParallel = 1;

    const AnalyticalModel Model(Config);
    const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time,
                                ElementBytes);
    Cells[I].PeakGBps = Model.peakGBps();
    Cells[I].Plan = Planner.plan(N, Nv);
    Cells[I].Col =
        simulateColumnPhase(Config, Config.Optimized, /*Optimized=*/true);
  });

  TableWriter Table({"n_v", "device peak (GB/s)", "Eq.1 h", "regime",
                     "col phase (GB/s)", "kernel demand", "kernel-bound?"});
  const double Demand = 2.0 * 16.0; // 2 streams x 8 lanes x 8 B x 250 MHz
  for (std::size_t I = 0; I != Vaults.size(); ++I) {
    const Cell &C = Cells[I];
    Table.addRow({TableWriter::num(std::uint64_t(Vaults[I])),
                  TableWriter::num(C.PeakGBps, 1),
                  TableWriter::num(C.Plan.H), planRegimeName(C.Plan.Regime),
                  TableWriter::num(C.Col.ThroughputGBps, 2),
                  TableWriter::num(Demand, 1),
                  C.Col.ThroughputGBps > 0.95 * Demand ? "yes" : "no"});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: throughput scales ~5 GB/s per vault until\n"
               "the kernel demand (32 GB/s) is met at n_v >= 7-8; beyond\n"
               "that the extra vault parallelism buys headroom, not\n"
               "throughput - exactly the paper's argument for exploiting\n"
               "the third dimension.\n";
  return 0;
}
