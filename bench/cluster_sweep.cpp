//===- bench/cluster_sweep.cpp - Multi-stack placement shoot-out ----------===//
//
// Part of the fft3d project.
//
// The scale-out headline: the distributed 2D FFT swept over stack count
// and inter-stack link bandwidth, two-level placement (per-stack Eq. 1
// re-solve, whole-block exchange) against the naive round-robin
// comparator (element-granular exchange). Prints the table and merges a
// "cluster_sweep" row array into the perf JSON (default BENCH_perf.json)
// next to perf_baseline's keys, so CI archives the scale-out history
// alongside the simulator's own perf.
//
// Usage: cluster_sweep [--threads K] [--json PATH] [--quick]
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "cluster/ClusterFftProcessor.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

struct SweepPoint {
  unsigned Stacks = 1;
  double LinkGBps = 0.0;
  ClusterReport TwoLevel;
  ClusterReport RoundRobin;
};

double picosToMicros(Picos T) { return static_cast<double>(T) / 1e6; }

/// Rewrites \p Path with \p Row as the object's last "cluster_sweep"
/// entry: drops any previous single-line cluster_sweep key, then splices
/// the new one in before the closing brace. perf_baseline rewrites the
/// whole file from scratch, so this key must re-merge rather than own
/// the file.
void mergeIntoJson(const std::string &Path, const std::string &Row) {
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("\"cluster_sweep\":") == std::string::npos)
        Lines.push_back(Line);
  }
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.back() != "}")
    Lines = {"{", "}"};
  Lines.pop_back();
  // The preceding key needs a separating comma (unless we are the only
  // key left).
  if (!Lines.empty() && Lines.back() != "{") {
    std::string &Prev = Lines.back();
    if (Prev.empty() || Prev.back() != ',')
      Prev += ',';
  }
  Lines.push_back("  \"cluster_sweep\": " + Row);
  Lines.push_back("}");
  std::ofstream Out(Path);
  for (const std::string &Line : Lines)
    Out << Line << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  std::string JsonPath = "BENCH_perf.json";
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  const std::uint64_t N = Quick ? 512 : 1024;
  const std::vector<unsigned> StackCounts =
      Quick ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  const std::vector<double> LinkRates =
      Quick ? std::vector<double>{8.0, 32.0}
            : std::vector<double>{8.0, 16.0, 32.0, 64.0};

  const SystemConfig Header = SystemConfig::forProblemSize(N);
  printHeader("Cluster sweep: two-level vs round-robin placement", Header);
  std::cout << "distributed " << N << "x" << N
            << " 2D FFT, all-to-all fabric, stacks x link rate\n\n";

  std::vector<SweepPoint> Points;
  for (unsigned S : StackCounts)
    for (double Link : LinkRates) {
      // One link rate is enough at S = 1: no exchange happens.
      if (S == 1 && Link != LinkRates.front())
        continue;
      SweepPoint P;
      P.Stacks = S;
      P.LinkGBps = Link;
      Points.push_back(P);
    }

  forEachIndex(Points.size(), Threads, [&](std::size_t I) {
    SweepPoint &P = Points[I];
    ClusterConfig Config = ClusterConfig::forProblemSize(N, P.Stacks);
    Config.LinkGBps = P.LinkGBps;
    P.TwoLevel = ClusterFftProcessor(Config).run2d();
    Config.Placement = StackPlacement::RoundRobin;
    P.RoundRobin = ClusterFftProcessor(Config).run2d();
  });

  TableWriter Table({"stacks", "link (GB/s)", "two-level (us)",
                     "exch tl (us)", "round-robin (us)", "exch rr (us)",
                     "speedup"});
  unsigned TwoLevelWins = 0;
  for (const SweepPoint &P : Points) {
    const double Tl = picosToMicros(P.TwoLevel.TotalTime);
    const double Rr = picosToMicros(P.RoundRobin.TotalTime);
    if (P.TwoLevel.TotalTime < P.RoundRobin.TotalTime)
      ++TwoLevelWins;
    Table.addRow({TableWriter::num(static_cast<std::uint64_t>(P.Stacks)),
                  TableWriter::num(P.LinkGBps, 1), TableWriter::num(Tl, 2),
                  TableWriter::num(picosToMicros(P.TwoLevel.ExchangeTime), 2),
                  TableWriter::num(Rr, 2),
                  TableWriter::num(picosToMicros(P.RoundRobin.ExchangeTime),
                                   2),
                  TableWriter::num(Rr / Tl, 2) + "x"});
  }
  Table.print(std::cout);

  std::ostringstream Row;
  Row << "[";
  for (std::size_t I = 0; I != Points.size(); ++I) {
    const SweepPoint &P = Points[I];
    Row << (I ? ", " : "") << "{\"n\": " << N
        << ", \"stacks\": " << P.Stacks
        << ", \"link_gbps\": " << jsonNum(P.LinkGBps)
        << ", \"two_level_us\": "
        << jsonNum(picosToMicros(P.TwoLevel.TotalTime))
        << ", \"round_robin_us\": "
        << jsonNum(picosToMicros(P.RoundRobin.TotalTime)) << ", \"speedup\": "
        << jsonNum(static_cast<double>(P.RoundRobin.TotalTime) /
                   static_cast<double>(P.TwoLevel.TotalTime))
        << "}";
  }
  Row << "]";
  mergeIntoJson(JsonPath, Row.str());
  std::cout << "\nmerged cluster_sweep (" << Points.size() << " points) into "
            << JsonPath << "\n";

  std::cout << "\nExpected shape: identical totals at one stack (the\n"
               "placements only differ across the exchange), then the\n"
               "two-level layout pulls ahead everywhere the transpose\n"
               "matters - its whole-block exchange fills link packets,\n"
               "while round-robin ships one element per packet header and\n"
               "its advantage widens as links get slower.\n";

  // The acceptance gate: the two-level layout must win somewhere.
  if (Points.size() > StackCounts.size() && TwoLevelWins == 0) {
    std::cerr << "cluster_sweep: two-level never beat round-robin\n";
    return 1;
  }
  return 0;
}
