//===- bench/ablation_stride_model.cpp - Stride model validation ----------===//
//
// Part of the fft3d project.
//
// Ablation G: the structural stride model (mem3d/StrideAnalysis) against
// the event-driven simulator, across the strides the 2D FFT generates
// and the front-end windows of both architectures. This is the
// reproduction's internal consistency check: the same four timing
// parameters must explain both the closed form and the simulation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "mem3d/StrideAnalysis.h"
#include "sim/EventQueue.h"

#include <functional>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

double simulateRate(const MemoryConfig &Config, std::uint64_t StrideBytes,
                    unsigned Window, unsigned Count = 4000) {
  EventQueue Events;
  Memory3D Mem(Events, Config);
  const std::uint64_t Capacity = Config.Geo.capacityBytes();
  Picos Last = 0;
  unsigned Issued = 0, Completed = 0;
  std::function<void()> IssueMore = [&] {
    while (Issued < Count && Issued - Completed < Window) {
      MemRequest Req;
      Req.Addr = (PhysAddr(Issued) * StrideBytes) % Capacity;
      Req.Bytes = 8;
      ++Issued;
      Mem.submit(Req, [&](const MemRequest &, Picos At) {
        ++Completed;
        Last = std::max(Last, At);
        IssueMore();
      });
    }
  };
  IssueMore();
  Events.run();
  return static_cast<double>(Count) / picosToNanos(Last);
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Threads = threadsFromArgs(Argc, Argv);
  const SystemConfig Head = SystemConfig::forProblemSize(2048);
  printHeader("Ablation G: structural stride model vs simulation", Head);

  const MemoryConfig Config;
  const AddressMapper Mapper(Config.Geo, Config.MapKind);

  const std::vector<std::uint64_t> StrideAxis = {1024, 2048, 4096, 8192};
  const std::vector<unsigned> WindowAxis = {1u, 8u, 64u};
  std::vector<double> Sims(StrideAxis.size() * WindowAxis.size());
  forEachIndex(Sims.size(), Threads, [&](std::size_t I) {
    const std::uint64_t Stride = StrideAxis[I / WindowAxis.size()] * 8;
    Sims[I] = simulateRate(Config, Stride, WindowAxis[I % WindowAxis.size()]);
  });

  TableWriter Table({"stride", "vaults", "banks", "bank gap",
                     "window", "model (acc/ns)", "simulated", "ratio"});
  for (std::size_t I = 0; I != Sims.size(); ++I) {
    const std::uint64_t Stride = StrideAxis[I / WindowAxis.size()] * 8;
    const unsigned Window = WindowAxis[I % WindowAxis.size()];
    const StrideProfile P = analyzeStride(Mapper, 0, Stride, 4096);
    const double Model = predictStridedAccessRate(P, Config.Time, Window);
    Table.addRow({formatBytes(Stride),
                  TableWriter::num(std::uint64_t(P.DistinctVaults)),
                  TableWriter::num(std::uint64_t(P.DistinctBanks)),
                  TableWriter::num(P.MeanSameBankGap, 1),
                  TableWriter::num(std::uint64_t(Window)),
                  TableWriter::num(Model, 4), TableWriter::num(Sims[I], 4),
                  TableWriter::num(Sims[I] / Model, 2)});
    if (I % WindowAxis.size() == WindowAxis.size() - 1)
      Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout << "\nReading: at window 1 both agree on the blocking round\n"
               "trip (0.039 accesses/ns = 25.6 ns each, the paper's\n"
               "baseline). Wider windows expose the structural bounds -\n"
               "how many vaults the stride touches, how often it revisits\n"
               "a bank, and the same-layer/cross-layer mix of each\n"
               "vault's ACT sequence. With those three quantities the\n"
               "closed form reproduces the simulator to within ~1%\n"
               "everywhere - the strided half of the evaluation needs no\n"
               "fitted constants.\n";
  return 0;
}
