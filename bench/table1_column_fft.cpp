//===- bench/table1_column_fft.cpp - Reproduces paper Table 1 -------------===//
//
// Part of the fft3d project.
//
// Table 1 of the paper: "Throughput Comparison: Column-wise FFT" for
// 2048^2, 4096^2 and 8192^2 problems - baseline vs optimized column-wise
// 1D FFT throughput and peak-bandwidth utilization. Prints, for every
// cell, the paper's value, our closed-form analytical value, and the
// event-driven simulation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>
#include <iostream>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

struct PaperRow {
  std::uint64_t N;
  double BaselineGbitps; // Gb/s (the unit the paper uses for baseline).
  double BaselineUtil;
  double OptimizedGBps;
  double OptimizedUtil;
};

// Paper Table 1, verbatim.
const PaperRow PaperTable[] = {
    {2048, 6.4, 0.0100, 32.00, 0.400},
    {4096, 3.2, 0.0050, 25.60, 0.320},
    {8192, 3.2, 0.0050, 23.04, 0.288},
};

} // namespace

int main() {
  printHeader("Table 1: Throughput Comparison, Column-wise FFT",
              SystemConfig::forProblemSize(2048));

  TableWriter Table({"2D FFT size", "metric", "paper", "analytical",
                     "simulated"});

  for (const PaperRow &Row : PaperTable) {
    const SystemConfig Config = SystemConfig::forProblemSize(Row.N);
    const AnalyticalModel Model(Config);
    const double Peak = Model.peakGBps();

    const PhaseResult Base =
        simulateColumnPhase(Config, Config.Baseline, /*Optimized=*/false);
    const PhaseResult Opt =
        simulateColumnPhase(Config, Config.Optimized, /*Optimized=*/true);

    char Size[32];
    std::snprintf(Size, sizeof(Size), "%llux%llu",
                  static_cast<unsigned long long>(Row.N),
                  static_cast<unsigned long long>(Row.N));

    Table.addRow({Size, "baseline throughput (Gb/s)",
                  TableWriter::num(Row.BaselineGbitps, 1),
                  TableWriter::num(gbpsToGbitps(Model.baselineColumnGBps()),
                                   2),
                  TableWriter::num(gbpsToGbitps(Base.ThroughputGBps), 2)});
    Table.addRow({"", "baseline peak BW utilization",
                  TableWriter::percent(Row.BaselineUtil, 2),
                  TableWriter::percent(Model.baselineColumnGBps() / Peak, 2),
                  TableWriter::percent(Base.PeakUtilization, 2)});
    Table.addRow({"", "optimized throughput (GB/s)",
                  TableWriter::num(Row.OptimizedGBps, 2),
                  TableWriter::num(Model.optimizedColumnGBps(), 2),
                  TableWriter::num(Opt.ThroughputGBps, 2)});
    Table.addRow({"", "optimized peak BW utilization",
                  TableWriter::percent(Row.OptimizedUtil, 1),
                  TableWriter::percent(Model.optimizedColumnGBps() / Peak, 1),
                  TableWriter::percent(Opt.PeakUtilization, 1)});
    Table.addSeparator();
  }
  Table.print(std::cout);

  std::cout
      << "\nnotes:\n"
      << "  - optimized cells are kernel-bound (2 streams x 8 lanes x 8 B x\n"
      << "    f_fpga); the analytical column reproduces the paper exactly.\n"
      << "  - the paper's baseline halves from 2048 to 4096 due to an\n"
      << "    unstated bank-conflict assumption; our blocking model is flat\n"
      << "    in N at ~1% of peak (see EXPERIMENTS.md).\n";
  return 0;
}
