//===- bench/figA_memory_microbench.cpp - Validates the Fig. 1 device -----===//
//
// Part of the fft3d project.
//
// Paper Fig. 1 is the 3D MI-FPGA architecture diagram. This bench
// validates the modelled device against the diagram's structural claims:
// per-vault bandwidth through the shared TSV bundle, vault independence,
// the latency ladder of the four timing parameters, and the aggregate
// peak when all vaults stream.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "mem3d/Memory3D.h"
#include "sim/EventQueue.h"

#include <iostream>
#include <vector>

using namespace fft3d;
using namespace fft3d::bench;

namespace {

/// Streams Count row-buffer reads at the given vault stride and returns
/// achieved GB/s.
double streamRows(unsigned Count, unsigned VaultStride) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  const Geometry &G = Config.Geo;
  Picos Last = 0;
  for (unsigned I = 0; I != Count; ++I) {
    MemRequest Req;
    Req.Addr = PhysAddr(I) * G.RowBufferBytes * VaultStride;
    Req.Bytes = static_cast<std::uint32_t>(G.RowBufferBytes);
    Mem.submit(Req, [&Last](const MemRequest &, Picos At) { Last = At; });
  }
  Events.run();
  return bytesOverPicosToGBps(std::uint64_t(Count) * G.RowBufferBytes, Last);
}

/// Completion time of the second of two 8 B reads at the given addresses.
Picos pairLatency(PhysAddr First, PhysAddr Second) {
  EventQueue Events;
  const MemoryConfig Config;
  Memory3D Mem(Events, Config);
  Picos Done = 0;
  MemRequest A, B;
  A.Addr = First;
  B.Addr = Second;
  A.Bytes = B.Bytes = 8;
  Mem.submit(A, {});
  Mem.submit(B, [&Done](const MemRequest &, Picos At) { Done = At; });
  Events.run();
  return Done;
}

} // namespace

int main() {
  const SystemConfig Config = SystemConfig::forProblemSize(2048);
  printHeader("Figure 1 companion: 3D MI-FPGA device microbenchmarks",
              Config);
  const Geometry &G = Config.Mem.Geo;
  std::cout << "address map: "
            << AddressMapper(G, Config.Mem.MapKind).describe() << "\n\n";

  TableWriter Bw({"stream", "claimed", "measured (GB/s)"});
  Bw.addRow({"one vault (row-sized bursts)", "5 GB/s",
             TableWriter::num(streamRows(64, G.NumVaults), 2)});
  Bw.addRow({"all 16 vaults round-robin", "80 GB/s",
             TableWriter::num(streamRows(256, 1), 2)});
  Bw.addRow({"two vaults interleaved", "10 GB/s",
             TableWriter::num(streamRows(64, G.NumVaults / 2), 2)});
  Bw.print(std::cout);

  std::cout << "\nlatency ladder (second access after an access to "
               "vault 0, bank 0, row 0):\n";
  TableWriter Lat({"second access target", "constraint",
                   "completion (ns)"});
  const PhysAddr RowBuf = G.RowBufferBytes;
  Lat.addRow({"same row, same bank", "t_in_row",
              TableWriter::num(picosToNanos(pairLatency(0, 8)), 1)});
  Lat.addRow({"different vault", "independent",
              TableWriter::num(picosToNanos(pairLatency(0, RowBuf)), 1)});
  Lat.addRow({"other layer, same vault", "t_in_vault",
              TableWriter::num(
                  picosToNanos(pairLatency(0, RowBuf * G.NumVaults * 2)),
                  1)});
  Lat.addRow({"same layer, other bank", "t_diff_bank",
              TableWriter::num(
                  picosToNanos(pairLatency(0, RowBuf * G.NumVaults)), 1)});
  Lat.addRow(
      {"same bank, other row", "t_diff_row",
       TableWriter::num(picosToNanos(pairLatency(
                            0, RowBuf * G.NumVaults * G.banksPerVault())),
                        1)});
  Lat.print(std::cout);

  std::cout << "\nThe ladder must be monotonically increasing: vault\n"
               "independence first, then pipelined cross-layer ACTs, then\n"
               "same-layer bank spacing, then same-bank row conflicts.\n";
  return 0;
}
