//===- examples/huge_fft1d.cpp - Out-of-core 1D FFT on the device ---------===//
//
// Part of the fft3d project.
//
// Big 1D FFTs (2^24 points and beyond) do not fit on chip, so they are
// computed with the four-step method: view the signal as an N1 x N2
// matrix, column FFTs, twiddle, row FFTs, transpose. The column pass is
// *exactly* the 2D FFT's phase-2 access pattern - so the paper's dynamic
// layout applies verbatim to huge 1D transforms too. This example
// verifies four-step numerically at a small size, then prices a 2^24-
// point transform on the modelled device with and without the dynamic
// layout for the column pass.
//
//   $ ./build/examples/huge_fft1d
//
//===----------------------------------------------------------------------===//

#include "core/LayoutEvaluator.h"
#include "fft/Fft1d.h"
#include "fft/FourStep.h"
#include "fft/ReferenceDft.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "support/Random.h"

#include <cstdio>

using namespace fft3d;

int main() {
  // ---------------------------------------------------------------- 1 --
  // Numerics: four-step equals the direct FFT.
  {
    const std::uint64_t N = 4096;
    Rng R(12);
    std::vector<CplxD> Data(N), Ref;
    for (auto &V : Data)
      V = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Ref = Data;
    Fft1d(N).forward(Ref);
    fftFourStep(Data, 64, 64);
    std::printf("four-step vs direct FFT (4096 pts): max err %.3g -> %s\n\n",
                maxAbsDiff(Data, Ref),
                maxAbsDiff(Data, Ref) < 1e-8 ? "OK" : "MISMATCH");
  }

  // ---------------------------------------------------------------- 2 --
  // Pricing a 2^24-point transform as a 4096 x 4096 matrix.
  const std::uint64_t N1 = 4096, N2 = 4096;
  SystemConfig Config = SystemConfig::forProblemSize(N1);
  const LayoutEvaluator Evaluator(Config);
  const std::uint64_t Stride = N1 * N2 * ElementBytes;

  const RowMajorLayout RowMajor(N1, N2, ElementBytes, Stride);
  const RowMajorLayout RowMajorOut(N1, N2, ElementBytes, 2 * Stride);
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N1, 16);
  const BlockDynamicLayout Blocks(N1, N2, ElementBytes, Stride, Plan.W,
                                  Plan.H);
  const BlockDynamicLayout BlocksOut(N1, N2, ElementBytes, 2 * Stride,
                                     Plan.W, Plan.H);

  // Column pass (the strided one), both ways.
  const PhaseResult ColNaive =
      Evaluator.runColumnPhase(Config.Optimized, RowMajor, RowMajorOut);
  const PhaseResult ColDynamic =
      Evaluator.runColumnPhase(Config.Optimized, Blocks, BlocksOut);
  // Twiddle pass and row pass are sequential sweeps.
  const PhaseResult Sequential =
      Evaluator.runRowPhase(Config.Optimized, RowMajorOut);

  auto passTime = [](const PhaseResult &R) {
    return static_cast<double>(R.EstimatedPhaseTime) /
           static_cast<double>(PicosPerMilli);
  };
  // Four passes total: columns, twiddle, rows, transpose-equivalent
  // (the dynamic layout absorbs the transpose; the naive path pays it as
  // a second strided pass).
  const double NaiveMs = passTime(ColNaive) * 2 + passTime(Sequential) * 2;
  const double DynamicMs = passTime(ColDynamic) + passTime(Sequential) * 2;

  std::printf("2^24-point 1D FFT as %llu x %llu four-step on the device:\n",
              static_cast<unsigned long long>(N1),
              static_cast<unsigned long long>(N2));
  std::printf("  column pass, row-major layout : %6.2f GB/s\n",
              ColNaive.ThroughputGBps);
  std::printf("  column pass, dynamic layout   : %6.2f GB/s\n",
              ColDynamic.ThroughputGBps);
  std::printf("  sequential pass (twiddle/row) : %6.2f GB/s\n",
              Sequential.ThroughputGBps);
  std::printf("\nestimated end-to-end: %.1f ms naive vs %.1f ms with the\n"
              "dynamic layout (%.1fx)\n",
              NaiveMs, DynamicMs, NaiveMs / DynamicMs);
  const bool Ok = ColDynamic.ThroughputGBps > 3.0 * ColNaive.ThroughputGBps;
  std::printf("%s\n", Ok ? "dynamic layout verified on the 1D workload"
                         : "UNEXPECTED: dynamic layout did not win");
  return Ok ? 0 : 1;
}
