//===- examples/serve_demo.cpp - Serving-layer quickstart -----------------===//
//
// Part of the fft3d project.
//
// Minimal tour of src/serve/: generate a Poisson stream of mixed-size
// FFT requests, run it through FCFS and vault-partitioned scheduling on
// the same simulated device, and compare the tails. Self-verifies (like
// every example) so ctest can run it end to end.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSimulator.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <iostream>

using namespace fft3d;

int main() {
  // 1. The device: the calibrated 16-vault, 80 GB/s part. The service
  //    model memoizes one pipeline measurement per (size, vault share).
  const MemoryConfig Mem;
  ServiceModel Model(Mem);

  // 2. The tenants: urgent 2048^2 singles mixed with heavyweight 4096^2
  //    batches, Poisson arrivals at 80 jobs/s, all derived from one seed.
  const std::vector<JobTemplate> Mix = mixedWorkloadTemplates();
  TraceWorkload Load(
      generatePoissonTrace(Mix, /*NumJobs=*/120, /*RatePerSec=*/80.0,
                           /*Seed=*/2026, Model));

  // 3. The serving loop: bounded queue, two policies on the same trace.
  ServeSimulator Sim(ServeConfig{}, Model);
  const ServeResult Fcfs = Sim.run(Load, *createPolicy(PolicyKind::Fcfs));
  const ServeResult Vault =
      Sim.run(Load, *createPolicy(PolicyKind::VaultPartition));

  TableWriter Table({"policy", "done", "p50 ms", "p99 ms", "miss %"});
  for (const ServeResult *R : {&Fcfs, &Vault})
    Table.addRow({R->PolicyName, TableWriter::num(R->Summary.Completed),
                  TableWriter::num(R->Summary.P50LatencyMs, 2),
                  TableWriter::num(R->Summary.P99LatencyMs, 2),
                  TableWriter::percent(R->Summary.DeadlineMissRate)});
  Table.print(std::cout);

  // Self-verification: every request is answered, both runs replay the
  // identical trace, and space-sharing must not worsen the tail - the
  // serving layer's core claim.
  bool Ok = true;
  if (Fcfs.Summary.Offered != 120 || Vault.Summary.Offered != 120) {
    std::printf("FAIL: requests lost (%llu vs %llu offered)\n",
                static_cast<unsigned long long>(Fcfs.Summary.Offered),
                static_cast<unsigned long long>(Vault.Summary.Offered));
    Ok = false;
  }
  if (Vault.Summary.P99LatencyMs > Fcfs.Summary.P99LatencyMs) {
    std::printf("FAIL: vault partitioning worsened p99 (%.2f > %.2f ms)\n",
                Vault.Summary.P99LatencyMs, Fcfs.Summary.P99LatencyMs);
    Ok = false;
  }
  if (Vault.PeakConcurrency < 2) {
    std::printf("FAIL: partitions never ran concurrently\n");
    Ok = false;
  }
  std::printf("%s\n", Ok ? "serve_demo: OK" : "serve_demo: FAILED");
  return Ok ? 0 : 1;
}
