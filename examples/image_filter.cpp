//===- examples/image_filter.cpp - FFT-based 2D image filtering -----------===//
//
// Part of the fft3d project.
//
// The workload the paper's introduction motivates ("Image Processing"):
// Gaussian blur of a synthetic image by pointwise multiplication in the
// frequency domain - two 2D FFTs and one inverse. Verifies the spectral
// filter against direct spatial convolution, then prices the three
// transforms on the modelled 3D-memory FPGA, baseline vs optimized.
//
//   $ ./build/examples/image_filter
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "fft/Fft2d.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>

using namespace fft3d;

namespace {

/// Synthetic test card: a bright grid plus a few rectangles and noise.
Matrix makeTestImage(std::uint64_t N) {
  Rng R(7);
  Matrix Img(N, N);
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X) {
      float V = 0.1f;
      if (X % 32 == 0 || Y % 32 == 0)
        V = 1.0f; // grid lines
      if (X > N / 4 && X < N / 2 && Y > N / 4 && Y < N / 2)
        V += 0.5f; // a block
      V += 0.05f * static_cast<float>(R.nextGaussian());
      Img.at(Y, X) = CplxF(V, 0.0f);
    }
  return Img;
}

/// Centered Gaussian kernel, circularly wrapped and normalized.
Matrix makeGaussianKernel(std::uint64_t N, double Sigma) {
  Matrix K(N, N);
  double Sum = 0.0;
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X) {
      // Wrap distances so the kernel is centered at (0, 0).
      const double Dy = std::min<double>(Y, N - Y);
      const double Dx = std::min<double>(X, N - X);
      const double V = std::exp(-(Dx * Dx + Dy * Dy) / (2 * Sigma * Sigma));
      K.at(Y, X) = CplxF(static_cast<float>(V), 0.0f);
      Sum += V;
    }
  for (auto &V : K.storage())
    V /= static_cast<float>(Sum);
  return K;
}

/// Direct circular convolution of one output pixel (oracle).
CplxD convolvePixel(const Matrix &Img, const Matrix &Ker, std::uint64_t Y,
                    std::uint64_t X) {
  const std::uint64_t N = Img.rows();
  CplxD Sum = 0.0;
  for (std::uint64_t Ky = 0; Ky != N; ++Ky)
    for (std::uint64_t Kx = 0; Kx != N; ++Kx) {
      if (std::abs(Ker.at(Ky, Kx)) < 1e-9f)
        continue;
      Sum += widen(Img.at((Y + N - Ky) % N, (X + N - Kx) % N)) *
             widen(Ker.at(Ky, Kx));
    }
  return Sum;
}

} // namespace

int main() {
  const std::uint64_t N = 256;
  std::printf("FFT-based Gaussian blur, %llu x %llu image\n\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(N));

  Matrix Img = makeTestImage(N);
  const Matrix Kernel = makeGaussianKernel(N, 2.0);
  const Matrix Original = Img;

  // Convolution theorem: blur = IFFT(FFT(img) .* FFT(kernel)).
  const Fft2d Plan(N, N);
  Matrix FKernel = Kernel;
  Plan.forward(Img);
  Plan.forward(FKernel);
  for (std::uint64_t Y = 0; Y != N; ++Y)
    for (std::uint64_t X = 0; X != N; ++X)
      Img.at(Y, X) *= FKernel.at(Y, X);
  Plan.inverse(Img);

  // Spot-check nine pixels against direct circular convolution.
  double MaxErr = 0.0;
  for (std::uint64_t Y = 10; Y < N; Y += 100)
    for (std::uint64_t X = 10; X < N; X += 100) {
      const CplxD Ref = convolvePixel(Original, Kernel, Y, X);
      MaxErr = std::max(MaxErr, std::abs(widen(Img.at(Y, X)) - Ref));
    }
  std::printf("spectral blur vs direct convolution (9 pixels): max err "
              "%.3g -> %s\n",
              MaxErr, MaxErr < 1e-3 ? "OK" : "MISMATCH");

  // Blur really blurred: variance must drop.
  auto variance = [N](const Matrix &M) {
    double Mean = 0.0, Var = 0.0;
    for (const auto &V : M.storage())
      Mean += V.real();
    Mean /= static_cast<double>(N * N);
    for (const auto &V : M.storage())
      Var += (V.real() - Mean) * (V.real() - Mean);
    return Var / static_cast<double>(N * N);
  };
  std::printf("image variance: %.4f -> %.4f (smoothing reduces it)\n\n",
              variance(Original), variance(Img));

  // Performance on the 3D-memory FPGA: a blur costs three transforms.
  const std::uint64_t PerfN = 2048;
  const SystemConfig Config = SystemConfig::forProblemSize(PerfN);
  Fft2dProcessor Processor(Config);
  const AppReport Base = Processor.runBaseline();
  const AppReport Opt = Processor.runOptimized();
  const Picos BaseBlur = 3 * Base.EstimatedTotalTime;
  const Picos OptBlur = 3 * Opt.EstimatedTotalTime;
  std::printf("cost of one %llu^2 blur (3 transforms) on the modelled "
              "device:\n",
              static_cast<unsigned long long>(PerfN));
  std::printf("  baseline row-major layout : %s\n",
              formatDuration(BaseBlur).c_str());
  std::printf("  dynamic block layout      : %s  (%.0fx faster)\n",
              formatDuration(OptBlur).c_str(),
              static_cast<double>(BaseBlur) / static_cast<double>(OptBlur));
  return MaxErr < 1e-3 ? 0 : 1;
}
