//===- examples/quickstart.cpp - Five-minute tour of fft3d ----------------===//
//
// Part of the fft3d project.
//
// Quickstart: compute a 2D FFT through the dynamic-layout pipeline,
// verify it numerically, then ask the performance model what the same
// computation costs on the 3D-memory-integrated FPGA with and without
// the paper's optimization.
//
//   $ ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AnalyticalModel.h"
#include "core/Fft2dProcessor.h"
#include "fft/Fft2d.h"
#include "support/Random.h"

#include <cstdio>

using namespace fft3d;

int main() {
  // ---------------------------------------------------------------- 1 --
  // Numerics: a 256 x 256 transform routed exactly the way the optimized
  // hardware routes it (row FFTs -> permutation network -> block-dynamic
  // layout -> block fetch -> column FFTs), checked against the plain
  // row-column algorithm.
  const std::uint64_t SmallN = 256;
  SystemConfig Small = SystemConfig::forProblemSize(SmallN);

  Rng R(2026);
  Matrix In(SmallN, SmallN);
  for (std::uint64_t I = 0; I != SmallN; ++I)
    for (std::uint64_t J = 0; J != SmallN; ++J)
      In.at(I, J) = CplxF(static_cast<float>(R.nextDouble(-1, 1)),
                          static_cast<float>(R.nextDouble(-1, 1)));

  Matrix Direct = In;
  Fft2d(SmallN, SmallN).forward(Direct);
  const Matrix Routed = Fft2dProcessor::computeViaDynamicLayout(In, Small);
  std::printf("numeric check (%llu^2): max |dynamic-layout - direct| = "
              "%.3g  -> %s\n\n",
              static_cast<unsigned long long>(SmallN),
              Routed.maxAbsDiff(Direct),
              Routed.maxAbsDiff(Direct) < 1e-2 ? "OK" : "MISMATCH");

  // ---------------------------------------------------------------- 2 --
  // Performance: the paper's headline configuration, 2048 x 2048 on the
  // 16-vault, 80 GB/s device.
  const SystemConfig Config = SystemConfig::forProblemSize(2048);
  const AnalyticalModel Model(Config);
  std::printf("device: %u vaults, peak %.0f GB/s; kernel: %u lanes @ "
              "%.0f MHz\n",
              Config.Mem.Geo.NumVaults, Model.peakGBps(),
              Config.Optimized.Lanes, 250.0);

  Fft2dProcessor Processor(Config);
  const AppReport Base = Processor.runBaseline();
  const AppReport Opt = Processor.runOptimized();

  std::printf("\n                      baseline      optimized\n");
  std::printf("row phase (GB/s)      %8.2f      %8.2f\n",
              Base.RowPhase.ThroughputGBps, Opt.RowPhase.ThroughputGBps);
  std::printf("column phase (GB/s)   %8.2f      %8.2f\n",
              Base.ColPhase.ThroughputGBps, Opt.ColPhase.ThroughputGBps);
  std::printf("application (GB/s)    %8.2f      %8.2f\n",
              Base.AppThroughputGBps, Opt.AppThroughputGBps);
  std::printf("latency               %8s      %8s\n",
              formatDuration(Base.AppLatency).c_str(),
              formatDuration(Opt.AppLatency).c_str());
  std::printf("est. total time       %8s      %8s\n",
              formatDuration(Base.EstimatedTotalTime).c_str(),
              formatDuration(Opt.EstimatedTotalTime).c_str());
  std::printf("\nimprovement: %.1f%% of the optimized throughput "
              "(paper reports 95.1%%)\n",
              100.0 * (Opt.AppThroughputGBps - Base.AppThroughputGBps) /
                  Opt.AppThroughputGBps);
  std::printf("block plan: w=%llu h=%llu (%s), permute SRAM %s, "
              "%llu reconfigurations\n",
              static_cast<unsigned long long>(Opt.Plan.W),
              static_cast<unsigned long long>(Opt.Plan.H),
              planRegimeName(Opt.Plan.Regime),
              formatBytes(Opt.PermuteBufferBytes).c_str(),
              static_cast<unsigned long long>(Opt.Reconfigurations));
  return 0;
}
