//===- examples/volumetric_fft.cpp - 3D FFT: the next strided phase -------===//
//
// Part of the fft3d project.
//
// The row-column idea extends to volumes: a 3D FFT over an N x N x N
// grid is three passes of 1D FFTs (x, then y, then z). The x pass is
// unit-stride, the y pass strides by N, and the z pass strides by N*N -
// so a static layout now has TWO hostile phases instead of one. This
// example computes a 3D FFT numerically (verified against the direct
// DFT on a small grid and by round trip on the full one), then uses the
// memory simulator to show what each pass costs with a static layout vs
// a per-pass dynamic block layout - the paper's idea applied once more.
//
//   $ ./build/examples/volumetric_fft
//
//===----------------------------------------------------------------------===//

#include "core/LayoutEvaluator.h"
#include "fft/Fft1d.h"
#include "fft/ReferenceDft.h"
#include "layout/LayoutPlanner.h"
#include "layout/LinearLayouts.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

using namespace fft3d;

namespace {

/// Dense N^3 volume, x fastest (index = (z*N + y)*N + x).
struct Volume {
  std::uint64_t N;
  std::vector<CplxD> Data;

  explicit Volume(std::uint64_t N) : N(N), Data(N * N * N) {}

  CplxD &at(std::uint64_t X, std::uint64_t Y, std::uint64_t Z) {
    return Data[(Z * N + Y) * N + X];
  }
};

/// 3D FFT by three passes of 1D FFTs along each axis.
void fft3dInPlace(Volume &V, bool Inverse = false) {
  const Fft1d Plan(V.N);
  std::vector<CplxD> Line(V.N);
  auto runPass = [&](auto Index) {
    for (std::uint64_t A = 0; A != V.N; ++A)
      for (std::uint64_t B = 0; B != V.N; ++B) {
        for (std::uint64_t I = 0; I != V.N; ++I)
          Line[I] = V.Data[Index(A, B, I)];
        if (Inverse)
          Plan.inverse(Line);
        else
          Plan.forward(Line);
        for (std::uint64_t I = 0; I != V.N; ++I)
          V.Data[Index(A, B, I)] = Line[I];
      }
  };
  const std::uint64_t N = V.N;
  // x pass: unit stride.
  runPass([N](std::uint64_t Z, std::uint64_t Y, std::uint64_t X) {
    return (Z * N + Y) * N + X;
  });
  // y pass: stride N.
  runPass([N](std::uint64_t Z, std::uint64_t X, std::uint64_t Y) {
    return (Z * N + Y) * N + X;
  });
  // z pass: stride N*N.
  runPass([N](std::uint64_t Y, std::uint64_t X, std::uint64_t Z) {
    return (Z * N + Y) * N + X;
  });
}

/// Direct 3D DFT for tiny grids (the oracle).
Volume referenceDft3d(Volume &In) {
  const std::uint64_t N = In.N;
  Volume Out(N);
  for (std::uint64_t KZ = 0; KZ != N; ++KZ)
    for (std::uint64_t KY = 0; KY != N; ++KY)
      for (std::uint64_t KX = 0; KX != N; ++KX) {
        CplxD Sum = 0.0;
        for (std::uint64_t Z = 0; Z != N; ++Z)
          for (std::uint64_t Y = 0; Y != N; ++Y)
            for (std::uint64_t X = 0; X != N; ++X) {
              const double Angle =
                  -2.0 * std::numbers::pi *
                  (static_cast<double>(KX * X + KY * Y + KZ * Z)) /
                  static_cast<double>(N);
              Sum += In.at(X, Y, Z) *
                     CplxD(std::cos(Angle), std::sin(Angle));
            }
        Out.at(KX, KY, KZ) = Sum;
      }
  return Out;
}

} // namespace

int main() {
  // ---------------------------------------------------------------- 1 --
  // Correctness, small grid against the direct DFT.
  {
    const std::uint64_t N = 8;
    Volume V(N);
    Rng R(3);
    for (auto &Value : V.Data)
      Value = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Volume Ref = referenceDft3d(V);
    Volume Fast = V;
    fft3dInPlace(Fast);
    double Max = 0.0;
    for (std::size_t I = 0; I != V.Data.size(); ++I)
      Max = std::max(Max, std::abs(Fast.Data[I] - Ref.Data[I]));
    std::printf("3D FFT vs direct DFT (8^3): max err %.3g -> %s\n", Max,
                Max < 1e-9 ? "OK" : "MISMATCH");
  }

  // ---------------------------------------------------------------- 2 --
  // Round trip on a bigger grid.
  {
    const std::uint64_t N = 32;
    Volume V(N);
    Rng R(4);
    for (auto &Value : V.Data)
      Value = CplxD(R.nextDouble(-1, 1), R.nextDouble(-1, 1));
    Volume Copy = V;
    fft3dInPlace(Copy);
    fft3dInPlace(Copy, /*Inverse=*/true);
    double Max = 0.0;
    for (std::size_t I = 0; I != V.Data.size(); ++I)
      Max = std::max(Max, std::abs(Copy.Data[I] - V.Data[I]));
    std::printf("3D FFT round trip (32^3):   max err %.3g -> %s\n\n", Max,
                Max < 1e-9 ? "OK" : "MISMATCH");
  }

  // ---------------------------------------------------------------- 3 --
  // Memory behaviour per pass. Each pass of the 3D transform is a batch
  // of 2D problems; the y pass of an N^3 volume has exactly the access
  // pattern of the 2D column phase on an N x N matrix (stride N), and
  // the z pass strides by N*N - even worse. We price an N = 2048 slice
  // per pass under a static layout vs a per-pass block layout.
  const std::uint64_t N = 2048;
  const SystemConfig Config = SystemConfig::forProblemSize(N);
  const LayoutEvaluator Evaluator(Config);
  const std::uint64_t Stride = N * N * ElementBytes;
  const RowMajorLayout Static(N, N, ElementBytes, Stride);
  const RowMajorLayout StaticOut(N, N, ElementBytes, 2 * Stride);
  const LayoutPlanner Planner(Config.Mem.Geo, Config.Mem.Time, ElementBytes);
  const BlockPlan Plan = Planner.plan(N, 16);
  const BlockDynamicLayout Dynamic(N, N, ElementBytes, Stride, Plan.W,
                                   Plan.H);
  const BlockDynamicLayout DynamicOut(N, N, ElementBytes, 2 * Stride,
                                      Plan.W, Plan.H);

  const PhaseResult XPass =
      Evaluator.runRowPhase(Config.Optimized, Static);
  const PhaseResult YStatic =
      Evaluator.runColumnPhase(Config.Optimized, Static, StaticOut);
  const PhaseResult YDynamic =
      Evaluator.runColumnPhase(Config.Optimized, Dynamic, DynamicOut);

  std::printf("per-pass memory rate for one 2048^2 slice "
              "(optimized front end):\n");
  std::printf("  x pass (unit stride)            : %6.2f GB/s\n",
              XPass.ThroughputGBps);
  std::printf("  y/z pass, static row-major      : %6.2f GB/s\n",
              YStatic.ThroughputGBps);
  std::printf("  y/z pass, dynamic block layout  : %6.2f GB/s\n",
              YDynamic.ThroughputGBps);
  std::printf("\nA 3D pipeline needs the dynamic re-layout TWICE (before\n"
              "the y pass and before the z pass); the permutation network\n"
              "and Eq. 1 apply unchanged because each pass is just a batch\n"
              "of the 2D problem's column phase.\n");
  return 0;
}
