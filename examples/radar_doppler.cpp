//===- examples/radar_doppler.cpp - Pulse-Doppler range-velocity map ------===//
//
// Part of the fft3d project.
//
// The workload the paper's introduction motivates ("Signal Processing"):
// a pulse-Doppler radar builds a range-Doppler map from a matrix of K
// pulses x M range gates. The Doppler dimension is a *column-wise* FFT
// over the slow-time samples of each range gate - exactly the strided
// phase the paper's dynamic data layout exists to fix.
//
// We synthesize echoes from three moving targets, form the map, detect
// the peaks, check them against the injected ground truth, and price the
// column-heavy transform on the modelled 3D-memory FPGA.
//
//   $ ./build/examples/radar_doppler
//
//===----------------------------------------------------------------------===//

#include "core/Fft2dProcessor.h"
#include "fft/Fft1d.h"
#include "fft/Matrix.h"
#include "fft/Window.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

using namespace fft3d;

namespace {

struct Target {
  std::uint64_t RangeGate;
  double DopplerCyclesPerPulse; // normalized Doppler in (-0.5, 0.5)
  double Amplitude;
};

/// One echo matrix: row = pulse (slow time), column = range gate.
Matrix synthesizeEchoes(std::uint64_t Pulses, std::uint64_t Gates,
                        const std::vector<Target> &Targets,
                        double NoiseSigma) {
  Rng R(13);
  Matrix M(Pulses, Gates);
  for (std::uint64_t P = 0; P != Pulses; ++P)
    for (std::uint64_t G = 0; G != Gates; ++G) {
      CplxD Sample(NoiseSigma * R.nextGaussian(),
                   NoiseSigma * R.nextGaussian());
      for (const Target &T : Targets) {
        if (T.RangeGate != G)
          continue;
        const double Phase =
            2.0 * std::numbers::pi * T.DopplerCyclesPerPulse *
            static_cast<double>(P);
        Sample += T.Amplitude * CplxD(std::cos(Phase), std::sin(Phase));
      }
      M.at(P, G) = narrow(Sample);
    }
  return M;
}

/// Doppler bin an injected normalized frequency lands in after a
/// Pulses-point FFT.
std::uint64_t expectedBin(double Doppler, std::uint64_t Pulses) {
  double F = Doppler;
  if (F < 0)
    F += 1.0;
  return static_cast<std::uint64_t>(std::llround(F * Pulses)) % Pulses;
}

} // namespace

int main() {
  const std::uint64_t Pulses = 256; // slow-time samples (Doppler FFT size)
  const std::uint64_t Gates = 512;  // range gates

  const std::vector<Target> Truth = {
      {100, 0.125, 6.0},  // approaching
      {350, -0.25, 4.0},  // receding, faster
      {350, 0.05, 3.0},   // same gate, slow mover
  };

  Matrix Echoes = synthesizeEchoes(Pulses, Gates, Truth, 0.3);

  // Doppler processing: window the slow-time samples (Hann keeps strong
  // targets' sidelobes from burying the weak slow mover sharing gate
  // 350), then a Pulses-point FFT down every range-gate column.
  const Window Taper(WindowKind::Hann, Pulses);
  const Fft1d Doppler(Pulses);
  std::vector<CplxF> Column;
  for (std::uint64_t G = 0; G != Gates; ++G) {
    Echoes.copyCol(G, Column);
    Taper.apply(Column);
    Doppler.forward(Column);
    Echoes.setCol(G, Column);
  }

  // CFAR-ish detection: everything 8x over the median power.
  std::vector<double> Powers;
  Powers.reserve(Pulses * Gates);
  for (const auto &V : Echoes.storage())
    Powers.push_back(std::norm(widen(V)));
  std::vector<double> Sorted = Powers;
  std::nth_element(Sorted.begin(), Sorted.begin() + Sorted.size() / 2,
                   Sorted.end());
  const double Threshold = 64.0 * Sorted[Sorted.size() / 2];

  std::printf("range-Doppler map %llu pulses x %llu gates, threshold %.2f\n",
              static_cast<unsigned long long>(Pulses),
              static_cast<unsigned long long>(Gates), Threshold);

  unsigned Hits = 0, Detections = 0;
  for (std::uint64_t Bin = 0; Bin != Pulses; ++Bin)
    for (std::uint64_t G = 0; G != Gates; ++G) {
      if (Powers[Bin * Gates + G] < Threshold)
        continue;
      ++Detections;
      for (const Target &T : Truth)
        if (T.RangeGate == G && expectedBin(T.DopplerCyclesPerPulse,
                                            Pulses) == Bin) {
          ++Hits;
          std::printf("  detection: gate %4llu, Doppler bin %3llu "
                      "(injected %+.3f cyc/pulse, amp %.1f)\n",
                      static_cast<unsigned long long>(G),
                      static_cast<unsigned long long>(Bin),
                      T.DopplerCyclesPerPulse, T.Amplitude);
        }
    }
  std::printf("detected %u/%zu injected targets (%u cells above "
              "threshold)\n\n",
              Hits, Truth.size(), Detections);

  // Performance: Doppler processing is pure column-wise FFT - the phase
  // the dynamic layout accelerates by ~40x.
  const SystemConfig Config = SystemConfig::forProblemSize(2048);
  Fft2dProcessor Processor(Config);
  const AppReport Base = Processor.runBaseline();
  const AppReport Opt = Processor.runOptimized();
  std::printf("column-phase rate on the modelled device (2048^2 frame):\n");
  std::printf("  row-major layout    : %6.2f GB/s\n",
              Base.ColPhase.ThroughputGBps);
  std::printf("  dynamic block layout: %6.2f GB/s  (%.0fx)\n",
              Opt.ColPhase.ThroughputGBps,
              Opt.ColPhase.ThroughputGBps / Base.ColPhase.ThroughputGBps);
  const bool Ok = Hits == Truth.size();
  std::printf("\n%s\n", Ok ? "all targets found" : "MISSED TARGETS");
  return Ok ? 0 : 1;
}
