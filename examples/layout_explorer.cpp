//===- examples/layout_explorer.cpp - Interactive Eq. 1 explorer ----------===//
//
// Part of the fft3d project.
//
// A small CLI around LayoutPlanner: give it a problem size and (optional)
// device parameters and it prints the Eq. 1 plan - the block shape, the
// regime, and how the plan moves across regimes as the number of
// buffered column streams (m) varies.
//
//   $ ./build/examples/layout_explorer [N] [n_v] [t_diff_row_ns]
//   $ ./build/examples/layout_explorer 4096 8 60
//
//===----------------------------------------------------------------------===//

#include "layout/LayoutPlanner.h"
#include "support/TableWriter.h"
#include "support/Units.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace fft3d;

int main(int Argc, char **Argv) {
  std::uint64_t N = 2048;
  unsigned Nv = 16;
  double TDiffRowNs = 40.0;
  if (Argc > 1)
    N = std::strtoull(Argv[1], nullptr, 10);
  if (Argc > 2)
    Nv = static_cast<unsigned>(std::strtoul(Argv[2], nullptr, 10));
  if (Argc > 3)
    TDiffRowNs = std::strtod(Argv[3], nullptr);

  Geometry Geo;
  Timing Time;
  Time.TDiffRow = nanosToPicos(TDiffRowNs);
  if (Time.TDiffBank > Time.TDiffRow)
    Time.TDiffBank = Time.TDiffRow;
  if (Time.TInVault > Time.TDiffBank)
    Time.TInVault = Time.TDiffBank;

  const LayoutPlanner Planner(Geo, Time, /*ElementBytes=*/8);

  std::printf("Eq. 1 layout plan for N=%llu, n_v=%u, t_diff_row=%.0f ns\n",
              static_cast<unsigned long long>(N), Nv, TDiffRowNs);
  std::printf("row buffer s = %llu elements, b = %u banks/vault, regime "
              "boundary m* = %.1f streams\n\n",
              static_cast<unsigned long long>(Geo.RowBufferBytes / 8),
              Geo.banksPerVault(), Planner.bufferRegimeBoundary());

  const BlockPlan Default = Planner.plan(N, Nv);
  std::printf("default plan (m = N): w = %llu, h = %llu  [raw h = %.1f, "
              "%s]\n\n",
              static_cast<unsigned long long>(Default.W),
              static_cast<unsigned long long>(Default.H), Default.RawH,
              planRegimeName(Default.Regime));

  TableWriter Table({"m (buffered column streams)", "raw h", "h", "w",
                     "regime"});
  for (std::uint64_t M = 16; M <= 2 * Geo.banksPerVault() *
                                      (Geo.RowBufferBytes / 8);
       M *= 4) {
    const BlockPlan Plan = Planner.plan(N, Nv, M);
    Table.addRow({TableWriter::num(M), TableWriter::num(Plan.RawH, 1),
                  TableWriter::num(Plan.H), TableWriter::num(Plan.W),
                  planRegimeName(Plan.Regime)});
  }
  Table.print(std::cout);

  std::cout << "\nReading the table: with few streams buffered the plan is\n"
               "buffer-limited (h shrinks as m grows); past m* it snaps to\n"
               "the bank-limited value n_v*t_diff_bank/t_in_row; at\n"
               "m >= s*b it pays full row conflicts and h grows to\n"
               "n_v*t_diff_row/t_in_row.\n";
  return 0;
}
