//===- examples/autotune_framework.cpp - The future-work framework --------===//
//
// Part of the fft3d project.
//
// The paper closes with: "In the future, we plan to build a design
// framework targeted at throughput-oriented signal processing kernels,
// which enables automatic data layout optimizations addressing new 3D
// memory technologies." This example is that framework, demonstrated on
// three different memory technologies: the calibrated HMC-like device,
// a conservative (slower-activation) stack, and an aggressive
// projection. For each, the AutoTuner searches the layout space with
// the event-driven simulator and reports the winner next to Eq. 1's
// analytical pick.
//
//   $ ./build/examples/autotune_framework
//
//===----------------------------------------------------------------------===//

#include "core/AutoTuner.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <iostream>

using namespace fft3d;

namespace {

void tuneOne(const char *TechName, const Timing &Time,
             TuneObjective Objective) {
  SystemConfig Config = SystemConfig::forProblemSize(1024);
  Config.Mem.Time = Time;
  // Keep the search fast: small per-candidate simulation budget.
  Config.MaxSimBytesPerDirection = 2ull << 20;
  Config.MaxSimOpsPerDirection = 8000;

  const AutoTuner Tuner(Config);
  const TuneResult Result = Tuner.tune(Objective);

  std::printf("--- %s, objective: %s ---\n", TechName,
              tuneObjectiveName(Objective));
  TableWriter Table({"rank", "layout", "app (GB/s)", "pJ/bit",
                     "acts/KiB", ""});
  unsigned Rank = 1;
  for (const TuneCandidate &C : Result.Candidates) {
    if (Rank > 6)
      break; // top six is plenty for the report
    Table.addRow({TableWriter::num(std::uint64_t(Rank)), C.Name,
                  TableWriter::num(C.Metrics.AppGBps, 2),
                  TableWriter::num(C.Metrics.PicojoulesPerBit, 2),
                  TableWriter::num(C.Metrics.ActivationsPerKiB, 3),
                  C.Eq1Pick ? "<== Eq. 1 pick" : ""});
    ++Rank;
  }
  Table.print(std::cout);
  std::printf("Eq. 1's shape within 5%% of the tuned optimum: %s\n\n",
              Result.eq1WithinFractionOfBest(0.05, Objective) ? "yes"
                                                              : "no");
}

} // namespace

int main() {
  std::printf("automatic data layout optimization across 3D memory "
              "technologies (N = 1024)\n\n");

  tuneOne("HMC-like (calibrated default)", defaultHmcTiming(),
          TuneObjective::Throughput);
  tuneOne("conservative stack (slow activations)", conservativeTiming(),
          TuneObjective::Throughput);
  tuneOne("aggressive projection (fast activations)", aggressiveTiming(),
          TuneObjective::Throughput);
  tuneOne("HMC-like, minimizing energy", defaultHmcTiming(),
          TuneObjective::Energy);

  std::printf("The tuner and Eq. 1 should agree on the shape family\n"
              "(skewed blocks) everywhere; the exact h may differ by one\n"
              "power of two at the plateau - the measured scores show how\n"
              "flat that plateau is.\n");
  return 0;
}
