//===- examples/spectrum_analyzer.cpp - STFT waterfall --------------------===//
//
// Part of the fft3d project.
//
// A short-time Fourier transform over a synthetic signal: a linear chirp
// sweeping up the band, a fixed carrier, and noise. Each analysis frame
// is windowed (Hann) and transformed with the real-input FFT; the
// example tracks the chirp's peak bin frame by frame and checks it moves
// at the designed sweep rate - a self-verifying waterfall. An STFT
// waterfall is a matrix whose columns are later processed across frames
// (exactly the strided phase-2 pattern), so it is one more consumer of
// the paper's layout.
//
//   $ ./build/examples/spectrum_analyzer
//
//===----------------------------------------------------------------------===//

#include "fft/RealFft1d.h"
#include "fft/Window.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

using namespace fft3d;

int main() {
  const std::uint64_t FrameLen = 512;
  const std::uint64_t Frames = 48;
  const std::uint64_t Hop = FrameLen; // Non-overlapping for simplicity.
  const std::uint64_t TotalSamples = Frames * Hop;

  // Chirp from 0.05 to 0.35 cycles/sample over the capture, plus a fixed
  // carrier at 0.42 and Gaussian noise.
  const double F0 = 0.05, F1 = 0.35, Carrier = 0.42;
  Rng R(99);
  std::vector<double> Signal(TotalSamples);
  double Phase = 0.0;
  for (std::uint64_t I = 0; I != TotalSamples; ++I) {
    const double T = static_cast<double>(I) / TotalSamples;
    const double Freq = F0 + (F1 - F0) * T;
    Phase += 2.0 * std::numbers::pi * Freq;
    Signal[I] = std::sin(Phase) +
                0.6 * std::sin(2.0 * std::numbers::pi * Carrier * I) +
                0.2 * R.nextGaussian();
  }

  const RealFft1d Fft(FrameLen);
  const Window Taper(WindowKind::Hann, FrameLen);

  std::printf("STFT waterfall: %llu frames x %llu bins (frame %llu "
              "samples, Hann)\n\n",
              static_cast<unsigned long long>(Frames),
              static_cast<unsigned long long>(Fft.bins()),
              static_cast<unsigned long long>(FrameLen));

  unsigned GoodTracks = 0;
  std::vector<double> Frame(FrameLen);
  const std::uint64_t CarrierBin =
      static_cast<std::uint64_t>(std::llround(Carrier * FrameLen));
  for (std::uint64_t F = 0; F != Frames; ++F) {
    std::copy(Signal.begin() + static_cast<std::ptrdiff_t>(F * Hop),
              Signal.begin() + static_cast<std::ptrdiff_t>(F * Hop +
                                                           FrameLen),
              Frame.begin());
    Taper.apply(Frame);
    const std::vector<CplxD> Spectrum = Fft.forward(Frame);

    // Peak away from the fixed carrier = the chirp.
    std::uint64_t Peak = 1;
    for (std::uint64_t B = 1; B + 1 < Spectrum.size(); ++B) {
      if (B + 2 > CarrierBin && B < CarrierBin + 2)
        continue;
      if (std::abs(Spectrum[B]) > std::abs(Spectrum[Peak]))
        Peak = B;
    }
    // Expected chirp bin at the frame center.
    const double T = (static_cast<double>(F) + 0.5) /
                     static_cast<double>(Frames);
    const double Expected = (F0 + (F1 - F0) * T) * FrameLen;
    const bool Good = std::abs(static_cast<double>(Peak) - Expected) <= 2.0;
    GoodTracks += Good;
    if (F % 8 == 0)
      std::printf("  frame %2llu: chirp peak bin %3llu (expected %6.1f) %s\n",
                  static_cast<unsigned long long>(F),
                  static_cast<unsigned long long>(Peak), Expected,
                  Good ? "ok" : "STRAY");
  }

  std::printf("\nchirp tracked in %u/%llu frames; carrier pinned at bin "
              "%llu\n",
              GoodTracks, static_cast<unsigned long long>(Frames),
              static_cast<unsigned long long>(CarrierBin));
  const bool Ok = GoodTracks >= Frames - 2;
  std::printf("%s\n", Ok ? "waterfall verified" : "TRACKING FAILED");
  return Ok ? 0 : 1;
}
