//===- permute/Crossbar.h - P x P crossbar switch ---------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A P-port crossbar switch: any one-to-one port assignment per cycle
/// (the "front/back crossbar switches" of the paper's permutation
/// network, Fig. 2b/3). Functional routing plus a mux-count resource
/// model.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_PERMUTE_CROSSBAR_H
#define FFT3D_PERMUTE_CROSSBAR_H

#include "permute/Permutation.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// P x P single-cycle crossbar.
class Crossbar {
public:
  explicit Crossbar(unsigned Ports);

  unsigned ports() const { return Ports; }

  /// Sets the port mapping for subsequent route() calls. \p Setting must
  /// be a permutation of exactly Ports elements. Counts a reconfiguration.
  void configure(const Permutation &Setting);

  const Permutation &setting() const { return Setting; }
  std::uint64_t reconfigurations() const { return Reconfigs; }

  /// Routes one beat: Out[o] = In[setting.sourceOf(o)].
  template <typename T>
  std::vector<T> route(const std::vector<T> &In) const {
    return Setting.apply(In);
  }

  /// Resource model: P muxes, each P-to-1.
  unsigned muxCount() const { return Ports; }
  unsigned muxFanIn() const { return Ports; }

private:
  unsigned Ports;
  Permutation Setting;
  std::uint64_t Reconfigs = 0;
};

} // namespace fft3d

#endif // FFT3D_PERMUTE_CROSSBAR_H
