//===- permute/BitonicNetwork.h - Compare-exchange permuter -----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Batcher bitonic compare-exchange network. The paper's permutation
/// network "is developed based on our work in [7]" (Chen & Prasanna,
/// "Energy and Memory Efficient Bitonic Sorting on FPGA"): a sorting
/// network routes *any* permutation by sorting destination tags, with
/// wiring that is oblivious to the permutation - only the comparator
/// decisions depend on data, which is what makes it cheap to reconfigure
/// per block. This class models that realization: the fixed
/// compare-exchange schedule, the comparator/stage resource counts, and
/// functional routing.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_PERMUTE_BITONICNETWORK_H
#define FFT3D_PERMUTE_BITONICNETWORK_H

#include "permute/Permutation.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace fft3d {

/// Width-W bitonic network (W a power of two).
class BitonicNetwork {
public:
  explicit BitonicNetwork(unsigned Width);

  unsigned width() const { return Width; }

  /// Compare-exchange elements in the fixed schedule.
  std::uint64_t comparatorCount() const { return Schedule.size(); }

  /// Pipeline stages: log2(W) * (log2(W) + 1) / 2.
  unsigned stageCount() const { return Stages; }

  /// Routes \p In through the network so that In[Dest.destinationOf(i)]
  /// arrives at... concretely: output[o] = In[Dest.sourceOf(o)], i.e.
  /// the network realizes exactly Permutation::apply, by sorting
  /// destination tags.
  template <typename T>
  std::vector<T> route(const std::vector<T> &In,
                       const Permutation &Dest) const {
    std::vector<std::pair<std::uint64_t, T>> Tagged(In.size());
    for (std::uint64_t I = 0; I != In.size(); ++I)
      Tagged[I] = {Dest.destinationOf(I), In[I]};
    sortTagged(Tagged);
    std::vector<T> Out(In.size());
    for (std::uint64_t O = 0; O != In.size(); ++O)
      Out[O] = Tagged[O].second;
    return Out;
  }

  /// The schedule as (lane A, lane B, ascending) triples, stage-major.
  struct CompareExchange {
    unsigned LaneA;
    unsigned LaneB;
    bool Ascending;
  };
  const std::vector<CompareExchange> &schedule() const { return Schedule; }

private:
  template <typename T>
  void sortTagged(std::vector<std::pair<std::uint64_t, T>> &Data) const {
    for (const CompareExchange &Cx : Schedule) {
      auto &A = Data[Cx.LaneA];
      auto &B = Data[Cx.LaneB];
      const bool OutOfOrder = Cx.Ascending ? B.first < A.first
                                           : A.first < B.first;
      if (OutOfOrder)
        std::swap(A, B);
    }
  }

  unsigned Width;
  unsigned Stages;
  std::vector<CompareExchange> Schedule;
};

} // namespace fft3d

#endif // FFT3D_PERMUTE_BITONICNETWORK_H
