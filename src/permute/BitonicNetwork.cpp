//===- permute/BitonicNetwork.cpp - Compare-exchange permuter -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/BitonicNetwork.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

using namespace fft3d;

BitonicNetwork::BitonicNetwork(unsigned Width) : Width(Width), Stages(0) {
  if (!isPowerOf2(Width) || Width < 2)
    reportFatalError("bitonic network width must be a power of two >= 2");
  // Standard iterative Batcher schedule: merge spans K = 2,4,..,W; within
  // each span, exchange distances J = K/2, K/4, .., 1.
  for (unsigned K = 2; K <= Width; K <<= 1) {
    for (unsigned J = K >> 1; J != 0; J >>= 1) {
      ++Stages;
      for (unsigned I = 0; I != Width; ++I) {
        const unsigned L = I ^ J;
        if (L > I)
          Schedule.push_back(CompareExchange{I, L, (I & K) == 0});
      }
    }
  }
}
