//===- permute/PermutationNetwork.cpp - Streaming permuter -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/PermutationNetwork.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

PermutationNetwork::PermutationNetwork(unsigned Lanes,
                                       std::uint64_t MaxBlockElements)
    : Lanes(Lanes), MaxBlock(MaxBlockElements), Front(Lanes), Back(Lanes),
      Block(Permutation::identity(0)) {
  if (Lanes == 0 || MaxBlockElements == 0)
    reportFatalError("permutation network needs lanes and buffer capacity");
}

void PermutationNetwork::configure(Permutation BlockPerm) {
  if (BlockPerm.size() > MaxBlock)
    reportFatalError("block permutation exceeds the network's buffers");
  Block = std::move(BlockPerm);
  // The lane-level crossbar settings are derived from the block
  // permutation's residues mod Lanes; reconfiguring both switches models
  // the controlling unit pushing new control words (paper Fig. 3).
  std::vector<std::uint64_t> FrontMap(Lanes), BackMap(Lanes);
  for (unsigned L = 0; L != Lanes; ++L) {
    FrontMap[L] = Block.size() == 0
                      ? L
                      : static_cast<unsigned>(Block.sourceOf(L % Block.size()) %
                                              Lanes);
    BackMap[L] = L;
  }
  // FrontMap built from residues may collide; fall back to identity wiring
  // in that case (the buffers absorb the reordering).
  Permutation Candidate = Permutation::identity(Lanes);
  {
    std::vector<bool> Seen(Lanes, false);
    bool Bijective = true;
    for (std::uint64_t V : FrontMap) {
      if (V >= Lanes || Seen[V]) {
        Bijective = false;
        break;
      }
      Seen[V] = true;
    }
    if (Bijective)
      Candidate = Permutation(std::move(FrontMap));
  }
  Front.configure(Candidate);
  Back.configure(Permutation(std::move(BackMap)));
}

std::uint64_t PermutationNetwork::bufferWords() const {
  if (Block.size() == 0)
    return 0;
  return streamingBufferWords(Block, Lanes);
}

std::uint64_t PermutationNetwork::bufferBytes(unsigned ElementBytes) const {
  // Double buffering: one block drains while the next fills.
  return 2 * bufferWords() * ElementBytes;
}

std::uint64_t PermutationNetwork::blockLatencyCycles() const {
  if (Block.size() == 0)
    return 0;
  return streamingLatencyCycles(Block, Lanes);
}
