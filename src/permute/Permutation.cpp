//===- permute/Permutation.cpp - Index permutations ------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/Permutation.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

Permutation::Permutation(std::vector<std::uint64_t> SourceOfOutput)
    : Source(std::move(SourceOfOutput)) {
  assert(isValid() && "not a bijection");
}

std::uint64_t Permutation::destinationOf(std::uint64_t I) const {
  assert(I < Source.size() && "index out of range");
  if (Dest.size() != Source.size()) {
    Dest.assign(Source.size(), 0);
    for (std::uint64_t O = 0; O != Source.size(); ++O)
      Dest[Source[O]] = O;
  }
  return Dest[I];
}

bool Permutation::isValid() const {
  std::vector<bool> Seen(Source.size(), false);
  for (std::uint64_t Value : Source) {
    if (Value >= Source.size() || Seen[Value])
      return false;
    Seen[Value] = true;
  }
  return true;
}

bool Permutation::isIdentity() const {
  for (std::uint64_t O = 0; O != Source.size(); ++O)
    if (Source[O] != O)
      return false;
  return true;
}

Permutation Permutation::inverted() const {
  std::vector<std::uint64_t> Inv(Source.size());
  for (std::uint64_t O = 0; O != Source.size(); ++O)
    Inv[Source[O]] = O;
  return Permutation(std::move(Inv));
}

Permutation Permutation::after(const Permutation &First) const {
  assert(size() == First.size() && "size mismatch in composition");
  // Output O of the composite takes this's source, then First's source.
  std::vector<std::uint64_t> Composed(Source.size());
  for (std::uint64_t O = 0; O != Source.size(); ++O)
    Composed[O] = First.Source[Source[O]];
  return Permutation(std::move(Composed));
}

Permutation Permutation::identity(std::uint64_t N) {
  std::vector<std::uint64_t> Map(N);
  for (std::uint64_t I = 0; I != N; ++I)
    Map[I] = I;
  return Permutation(std::move(Map));
}

Permutation Permutation::stride(std::uint64_t N, std::uint64_t S) {
  if (S == 0 || N % S != 0)
    reportFatalError("stride permutation requires S | N");
  // Input i = q*S + r goes to output r*(N/S) + q, so the source of output
  // o = r*(N/S) + q is q*S + r.
  const std::uint64_t Q = N / S;
  std::vector<std::uint64_t> Map(N);
  for (std::uint64_t R = 0; R != S; ++R)
    for (std::uint64_t QI = 0; QI != Q; ++QI)
      Map[R * Q + QI] = QI * S + R;
  return Permutation(std::move(Map));
}

Permutation Permutation::digitReversal(std::uint64_t N, unsigned Radix) {
  if (!isPowerOf(N, Radix))
    reportFatalError("digit reversal requires N to be a power of the radix");
  const unsigned Digits = digitCount(N, Radix);
  std::vector<std::uint64_t> Map(N);
  for (std::uint64_t I = 0; I != N; ++I)
    Map[I] = digitReverse(I, Radix, Digits);
  return Permutation(std::move(Map));
}

Permutation Permutation::transpose(std::uint64_t Rows, std::uint64_t Cols) {
  // transpose(R, C) == stride(R*C, C): element r*C + c -> c*R + r.
  return stride(Rows * Cols, Cols);
}

std::uint64_t fft3d::streamingBufferWords(const Permutation &Perm,
                                          unsigned Lanes) {
  assert(Lanes != 0 && "zero-lane stream");
  const std::uint64_t N = Perm.size();
  if (N == 0)
    return 0;
  // Inputs arrive Lanes per cycle in index order and cannot stall.
  // Output group g may depart once every source in it has arrived and the
  // previous group has left.
  std::uint64_t Peak = 0;
  std::uint64_t PrevDepart = 0;
  const std::uint64_t Groups = ceilDiv(N, Lanes);
  for (std::uint64_t G = 0; G != Groups; ++G) {
    std::uint64_t Ready = 0;
    const std::uint64_t Begin = G * Lanes;
    const std::uint64_t End = std::min<std::uint64_t>(Begin + Lanes, N);
    for (std::uint64_t O = Begin; O != End; ++O)
      Ready = std::max(Ready, Perm.sourceOf(O) / Lanes);
    const std::uint64_t Depart = G == 0 ? Ready : std::max(PrevDepart + 1,
                                                           Ready);
    const std::uint64_t Arrived = std::min<std::uint64_t>((Depart + 1) * Lanes,
                                                          N);
    Peak = std::max(Peak, Arrived - Begin);
    PrevDepart = Depart;
  }
  return Peak;
}

std::uint64_t fft3d::streamingLatencyCycles(const Permutation &Perm,
                                            unsigned Lanes) {
  assert(Lanes != 0 && "zero-lane stream");
  const std::uint64_t N = Perm.size();
  if (N == 0)
    return 0;
  std::uint64_t PrevDepart = 0;
  const std::uint64_t Groups = ceilDiv(N, Lanes);
  for (std::uint64_t G = 0; G != Groups; ++G) {
    std::uint64_t Ready = 0;
    const std::uint64_t Begin = G * Lanes;
    const std::uint64_t End = std::min<std::uint64_t>(Begin + Lanes, N);
    for (std::uint64_t O = Begin; O != End; ++O)
      Ready = std::max(Ready, Perm.sourceOf(O) / Lanes);
    PrevDepart = G == 0 ? Ready : std::max(PrevDepart + 1, Ready);
  }
  return PrevDepart + 1;
}
