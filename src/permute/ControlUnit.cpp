//===- permute/ControlUnit.cpp - Layout controlling unit --------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/ControlUnit.h"

#include "support/ErrorHandling.h"

#include <cstdio>

using namespace fft3d;

const char *fft3d::streamModeName(StreamMode Mode) {
  switch (Mode) {
  case StreamMode::LaneParallel:
    return "lane-parallel";
  case StreamMode::ColumnSerial:
    return "column-serial";
  }
  fft3d_unreachable("unknown StreamMode");
}

ControlUnit::ControlUnit(PermutationNetwork &Network) : Network(Network) {}

Permutation ControlUnit::writebackPermutation(std::uint64_t W, std::uint64_t H,
                                              StreamMode Mode) {
  // Storage order within a block is row-major: offset = ir*W + ic.
  switch (Mode) {
  case StreamMode::LaneParallel:
    // Arrival order equals storage order: the kernel emits W consecutive
    // columns' elements per beat, row by row.
    return Permutation::identity(W * H);
  case StreamMode::ColumnSerial:
    // Arrival index ic*H + ir must land at storage ir*W + ic.
    return Permutation::transpose(W, H);
  }
  fft3d_unreachable("unknown StreamMode");
}

Permutation ControlUnit::columnFetchPermutation(std::uint64_t W,
                                                std::uint64_t H,
                                                StreamMode Mode) {
  switch (Mode) {
  case StreamMode::LaneParallel:
    return Permutation::identity(W * H);
  case StreamMode::ColumnSerial:
    // Consumption index ic*H + ir is fed from storage ir*W + ic.
    return Permutation::transpose(H, W);
  }
  fft3d_unreachable("unknown StreamMode");
}

void ControlUnit::configureForWriteback(std::uint64_t W, std::uint64_t H,
                                        StreamMode Mode) {
  Network.configure(writebackPermutation(W, H, Mode));
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer), "writeback w=%llu h=%llu (%s)",
                static_cast<unsigned long long>(W),
                static_cast<unsigned long long>(H), streamModeName(Mode));
  Config = Buffer;
}

void ControlUnit::configureForColumnFetch(std::uint64_t W, std::uint64_t H,
                                          StreamMode Mode) {
  Network.configure(columnFetchPermutation(W, H, Mode));
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer), "column-fetch w=%llu h=%llu (%s)",
                static_cast<unsigned long long>(W),
                static_cast<unsigned long long>(H), streamModeName(Mode));
  Config = Buffer;
}
