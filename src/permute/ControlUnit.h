//===- permute/ControlUnit.h - Layout controlling unit ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controlling unit (CU) of the optimized architecture (paper Fig. 3):
/// "the CU is responsible for reconfiguring the permutation network to
/// achieve the dynamic data layout". It derives the local w x h block
/// permutations for each phase and pushes them into the network.
///
/// Two stream disciplines are supported:
///  - LaneParallel: the kernel processes w columns side by side, one
///    element of each per beat; blocks then stream in storage order and
///    the permutation degenerates to the identity (the cheap case the
///    layout is designed for, with w = kernel data parallelism).
///  - ColumnSerial: a single-lane kernel consumes/produces one full
///    column at a time; the CU programs a w x h transpose.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_PERMUTE_CONTROLUNIT_H
#define FFT3D_PERMUTE_CONTROLUNIT_H

#include "permute/PermutationNetwork.h"

#include <cstdint>
#include <string>

namespace fft3d {

/// How the FFT kernel's stream interleaves the block's columns.
enum class StreamMode {
  LaneParallel,
  ColumnSerial,
};

const char *streamModeName(StreamMode Mode);

/// Derives and installs block permutations for the dynamic data layout.
class ControlUnit {
public:
  explicit ControlUnit(PermutationNetwork &Network);

  /// Permutation from the row-FFT output stream onto block storage order
  /// for w x h blocks.
  static Permutation writebackPermutation(std::uint64_t W, std::uint64_t H,
                                          StreamMode Mode);

  /// Permutation from block storage order onto the column-FFT input
  /// stream.
  static Permutation columnFetchPermutation(std::uint64_t W, std::uint64_t H,
                                            StreamMode Mode);

  /// Reconfigures the network for phase-1 block writeback.
  void configureForWriteback(std::uint64_t W, std::uint64_t H,
                             StreamMode Mode);

  /// Reconfigures the network for phase-2 block fetch.
  void configureForColumnFetch(std::uint64_t W, std::uint64_t H,
                               StreamMode Mode);

  /// Human-readable description of the last configuration.
  const std::string &currentConfig() const { return Config; }

  std::uint64_t reconfigurations() const {
    return Network.reconfigurations();
  }

private:
  PermutationNetwork &Network;
  std::string Config = "unconfigured";
};

} // namespace fft3d

#endif // FFT3D_PERMUTE_CONTROLUNIT_H
