//===- permute/Crossbar.cpp - P x P crossbar switch -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "permute/Crossbar.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

Crossbar::Crossbar(unsigned Ports)
    : Ports(Ports), Setting(Permutation::identity(Ports)) {
  if (Ports == 0)
    reportFatalError("crossbar needs at least one port");
}

void Crossbar::configure(const Permutation &NewSetting) {
  if (NewSetting.size() != Ports)
    reportFatalError("crossbar setting width does not match port count");
  Setting = NewSetting;
  ++Reconfigs;
}
