//===- permute/Permutation.h - Index permutations ---------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Index permutations and their streaming cost. A Permutation maps input
/// position to output position; the factory functions build the families
/// the FFT architecture needs (stride permutations, digit reversals,
/// block transposes). streamingBufferWords() computes the minimum on-chip
/// buffer needed to realize a permutation on a P-lane stream - this is
/// the paper's "data reorganization overhead ... on-chip SRAM buffer
/// consumption" made concrete.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_PERMUTE_PERMUTATION_H
#define FFT3D_PERMUTE_PERMUTATION_H

#include <cstdint>
#include <vector>

namespace fft3d {

/// A permutation of [0, size()). Out[I] receives In[Map[I]]... see apply().
class Permutation {
public:
  Permutation() = default;

  /// \p SourceOfOutput[O] is the input index routed to output slot O.
  explicit Permutation(std::vector<std::uint64_t> SourceOfOutput);

  std::uint64_t size() const { return Source.size(); }

  /// Input index feeding output slot \p O.
  std::uint64_t sourceOf(std::uint64_t O) const { return Source[O]; }

  /// Output slot receiving input index \p I (inverse lookup, O(1) after
  /// first use).
  std::uint64_t destinationOf(std::uint64_t I) const;

  /// True if this is a bijection on [0, size()).
  bool isValid() const;

  /// Identity test.
  bool isIdentity() const;

  /// Returns the inverse permutation.
  Permutation inverted() const;

  /// Composition: applying *this after \p First. (this o First)(x).
  Permutation after(const Permutation &First) const;

  /// Applies to a buffer: Out[O] = In[sourceOf(O)].
  template <typename T>
  std::vector<T> apply(const std::vector<T> &In) const {
    std::vector<T> Out(In.size());
    for (std::uint64_t O = 0; O != Source.size(); ++O)
      Out[O] = In[Source[O]];
    return Out;
  }

  /// Identity permutation of \p N elements.
  static Permutation identity(std::uint64_t N);

  /// Stride permutation L(N, S): input index i = q*S + r (r < S) moves to
  /// output r*(N/S) + q. S must divide N. L(N, S) followed by L(N, N/S)
  /// is the identity.
  static Permutation stride(std::uint64_t N, std::uint64_t S);

  /// Base-\p Radix digit reversal of \p N indices (Radix a power of two,
  /// N a power of Radix).
  static Permutation digitReversal(std::uint64_t N, unsigned Radix);

  /// Transpose of a Rows x Cols row-major block: element (r, c) at index
  /// r*Cols + c moves to c*Rows + r.
  static Permutation transpose(std::uint64_t Rows, std::uint64_t Cols);

private:
  std::vector<std::uint64_t> Source;
  mutable std::vector<std::uint64_t> Dest; ///< Lazy inverse cache.
};

/// Minimum buffer words to realize \p Perm on a \p Lanes -wide stream:
/// inputs arrive in index order, Lanes per cycle; outputs must depart in
/// index order, Lanes per cycle, each no earlier than its source arrives.
/// The result is the peak number of elements resident on chip under the
/// earliest-feasible schedule.
std::uint64_t streamingBufferWords(const Permutation &Perm, unsigned Lanes);

/// Cycles from first input to last output for the same schedule.
std::uint64_t streamingLatencyCycles(const Permutation &Perm, unsigned Lanes);

} // namespace fft3d

#endif // FFT3D_PERMUTE_PERMUTATION_H
