//===- permute/PermutationNetwork.h - Streaming permuter --------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-chip permutation network of the optimized architecture (paper
/// Fig. 2b / Fig. 3): front crossbar switches, a bank of data buffers,
/// and back crossbar switches, P lanes wide. The controlling unit
/// reconfigures it per block so the dynamic data layout's local w x h
/// reorderings happen on chip at stream rate.
///
/// Functionally it applies an arbitrary block permutation; its cost model
/// (buffer words, fill latency, reconfiguration count) is derived from
/// the streaming schedule in Permutation.h.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_PERMUTE_PERMUTATIONNETWORK_H
#define FFT3D_PERMUTE_PERMUTATIONNETWORK_H

#include "permute/Crossbar.h"
#include "permute/Permutation.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// P-lane streaming permutation engine with double-buffered SRAM.
class PermutationNetwork {
public:
  /// \p Lanes is the stream width (the paper's 8-element data path);
  /// \p MaxBlockElements bounds the block size the buffers can hold.
  PermutationNetwork(unsigned Lanes, std::uint64_t MaxBlockElements);

  unsigned lanes() const { return Lanes; }
  std::uint64_t maxBlockElements() const { return MaxBlock; }

  /// Loads a block permutation (size <= MaxBlockElements). Counts as one
  /// reconfiguration of both crossbars.
  void configure(Permutation BlockPerm);

  const Permutation &current() const { return Block; }
  std::uint64_t reconfigurations() const { return Front.reconfigurations(); }

  /// Applies the configured permutation to \p Data (Data.size() must equal
  /// the permutation size). Tracks cycle/beat statistics.
  template <typename T>
  std::vector<T> permute(const std::vector<T> &Data) {
    BeatsStreamed += (Data.size() + Lanes - 1) / Lanes;
    ++BlocksPermuted;
    return Block.apply(Data);
  }

  /// Peak SRAM occupancy (elements) of the configured permutation on this
  /// lane width; double buffering doubles it.
  std::uint64_t bufferWords() const;

  /// SRAM bytes at \p ElementBytes per word, double-buffered.
  std::uint64_t bufferBytes(unsigned ElementBytes) const;

  /// First-in to last-out cycles for one block.
  std::uint64_t blockLatencyCycles() const;

  /// Cycles to stream \p Elements elements through the network at full
  /// rate (it is a streaming pipeline: one group of Lanes per cycle).
  std::uint64_t cyclesFor(std::uint64_t Elements) const {
    return (Elements + Lanes - 1) / Lanes;
  }

  std::uint64_t blocksPermuted() const { return BlocksPermuted; }
  std::uint64_t beatsStreamed() const { return BeatsStreamed; }

private:
  unsigned Lanes;
  std::uint64_t MaxBlock;
  Crossbar Front;
  Crossbar Back;
  Permutation Block;
  std::uint64_t BlocksPermuted = 0;
  std::uint64_t BeatsStreamed = 0;
};

} // namespace fft3d

#endif // FFT3D_PERMUTE_PERMUTATIONNETWORK_H
