//===- fault/FaultHash.h - Stateless fault-decision hashing -----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The splitmix64 finalizer and the hash-below-rate predicate behind
/// every probabilistic fault decision (ECC retries, job failures, packet
/// loss). Stateless by construction: a decision is a pure function of
/// (seed, coordinates), never of how many decisions were drawn before
/// it, which is what makes faulted runs replay byte-identically at any
/// thread count.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FAULT_FAULTHASH_H
#define FFT3D_FAULT_FAULTHASH_H

#include <cstdint>

namespace fft3d {
namespace fault_hash {

/// splitmix64 finalizer: full-avalanche, so consecutive ids decorrelate.
inline std::uint64_t mix64(std::uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// True with probability \p Rate for the hash stream (Seed, A, B).
inline bool hashBelow(std::uint64_t Seed, std::uint64_t A, std::uint64_t B,
                      double Rate) {
  if (Rate <= 0.0)
    return false;
  const std::uint64_t H = mix64(mix64(Seed ^ (A * 0xA24BAED4963EE407ULL)) ^
                                (B * 0x9FB21C651E98DF25ULL));
  // Compare in double space: exact enough for fault rates and avoids
  // overflow pitfalls near Rate ~ 1.
  return static_cast<double>(H) <
         Rate * 18446744073709551616.0 /* 2^64 */;
}

} // namespace fault_hash
} // namespace fft3d

#endif // FFT3D_FAULT_FAULTHASH_H
