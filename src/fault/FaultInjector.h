//===- fault/FaultInjector.h - Runtime fault oracle -------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers the memory model's and the serving layer's fault questions at
/// simulation time: is vault V online at time T, how slow are its TSV
/// lanes, must a command stall for a thermal-throttle window, does this
/// read take an ECC retry, does this job dispatch transiently fail.
///
/// Every answer is a pure function of (FaultSpec, coordinates): vault
/// timelines are precomputed sorted step functions and the probabilistic
/// decisions hash the spec seed with the request/job identity (splitmix64)
/// instead of consuming a shared RNG stream. Replaying the same spec
/// therefore yields byte-identical schedules no matter how callers
/// interleave, which the determinism tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FAULT_FAULTINJECTOR_H
#define FFT3D_FAULT_FAULTINJECTOR_H

#include "fault/FaultSpec.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Immutable runtime view of a FaultSpec for an \p NumVaults-vault device.
class FaultInjector {
public:
  /// Aborts if the spec names a vault outside [0, NumVaults).
  FaultInjector(const FaultSpec &Spec, unsigned NumVaults);

  const FaultSpec &spec() const { return Spec; }
  unsigned numVaults() const { return NumVaults; }

  /// True when \p Vault is hard-failed at \p Now.
  bool vaultOffline(unsigned Vault, Picos Now) const;

  /// Number of online vaults at \p Now (>= 1 is not guaranteed; a spec
  /// may fail everything).
  unsigned healthyVaults(Picos Now) const;

  /// Online flags for every vault at \p Now.
  std::vector<bool> onlineVaults(Picos Now) const;

  /// Where \p Vault's traffic goes at \p Now: itself when online, else
  /// its round-robin-assigned spare (spareVaultMap), so concurrent
  /// failures spread across distinct survivors. Returns \p Vault itself
  /// when every vault is offline.
  unsigned redirectVault(unsigned Vault, Picos Now) const;

  /// TSV beat-interval multiplier for \p Vault at \p Now (>= 1).
  double tsvScale(unsigned Vault, Picos Now) const;

  /// Earliest time >= \p T at which a command may issue given the
  /// thermal-throttle windows; sets \p Stalled when it moved.
  Picos throttleAdjust(Picos T, bool *Stalled = nullptr) const;

  /// True when the read with device-assigned id \p RequestId to \p Vault
  /// takes an ECC retry (pay eccRetryPenalty() extra latency).
  bool readTakesEccRetry(unsigned Vault, std::uint64_t RequestId) const;

  Picos eccRetryPenalty() const { return Spec.eccRetryPenalty(); }

  /// True when attempt \p Attempt of job \p JobId transiently fails
  /// (serving layer; retried with backoff by the HealthMonitor policy).
  bool jobTransientlyFails(std::uint64_t JobId, unsigned Attempt) const;

  /// Mean available-bandwidth fraction at \p Now: (healthy/total) x
  /// (1 - throttle duty of the window containing \p Now). The serving
  /// layer uses it to re-estimate capacity under degradation.
  double capacityFactor(Picos Now) const;

private:
  struct Step {
    Picos At;
    double Value;
  };

  /// Value of a sorted step function at \p Now, else \p Initial.
  static double stepValueAt(const std::vector<Step> &Steps, Picos Now,
                            double Initial);

  FaultSpec Spec;
  unsigned NumVaults;
  /// Per-vault availability timeline (Value: 1 online, 0 offline).
  std::vector<std::vector<Step>> AvailTimeline;
  /// Per-vault TSV scale timeline.
  std::vector<std::vector<Step>> TsvTimeline;
};

} // namespace fft3d

#endif // FFT3D_FAULT_FAULTINJECTOR_H
