//===- fault/ClusterFaults.h - Cluster-level fault oracle -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers the cluster layer's fault questions at simulation time: is
/// stack s online (or partitioned off the fabric) at time T, how slow is
/// directed link resource r, what fraction of its packets drop, does the
/// residual of an expected-loss rounding fire for this (link, message,
/// round).
///
/// The same design rules as FaultInjector: stack and link timelines are
/// precomputed sorted step functions, probabilistic decisions hash the
/// spec seed with the transfer identity (splitmix64), and every answer
/// is a pure function of (spec, coordinates) - so a faulted cluster run
/// replays byte-identically at any --sim-threads, which the cluster
/// fault determinism tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FAULT_CLUSTERFAULTS_H
#define FFT3D_FAULT_CLUSTERFAULTS_H

#include "fault/FaultSpec.h"

#include <cstdint>
#include <vector>

namespace fft3d {

/// Immutable runtime view of a FaultSpec's cluster directives for an
/// \p Stacks-stack fabric with \p Links directed link resources.
class ClusterFaultInjector {
public:
  /// Aborts if the spec names a stack >= \p Stacks or a link >= \p
  /// Links. A fabric over S stacks has 2*S directed resources (egress/
  /// ingress ports in all-to-all, cw/ccw segment directions in a ring).
  ClusterFaultInjector(const FaultSpec &Spec, unsigned Stacks,
                       unsigned Links);

  const FaultSpec &spec() const { return Spec; }
  unsigned numStacks() const { return Stacks; }
  unsigned numLinks() const { return Links; }

  /// True when \p Stack is hard-failed (stack_fail) at \p Now.
  bool stackOffline(unsigned Stack, Picos Now) const;

  /// True when \p Stack is cut off the fabric (link_partition) at \p
  /// Now. Partitions are permanent.
  bool stackPartitioned(unsigned Stack, Picos Now) const;

  /// A stack the exchange can still involve: online and not partitioned.
  bool stackReachable(unsigned Stack, Picos Now) const {
    return !stackOffline(Stack, Now) && !stackPartitioned(Stack, Now);
  }

  /// Number of reachable stacks at \p Now.
  unsigned healthyStacks(Picos Now) const;

  /// Monotone per-stack health-change counter: the number of
  /// availability transitions (stack_fail / stack_recover steps, plus a
  /// partition cutoff) that have taken effect for \p Stack by \p Now.
  /// Starts at 0 and only grows, so it is usable as a cache-epoch: any
  /// state derived from the stack's health (plans, placement, service
  /// estimates) keyed by this value is automatically invalidated by the
  /// next transition. The serving tier's shared plan cache keys on it.
  std::uint64_t stackHealthEpoch(unsigned Stack, Picos Now) const;

  /// Reachability flags for every stack at \p Now (the input to
  /// spareVaultMap for the slab migration).
  std::vector<bool> reachableStacks(Picos Now) const;

  /// Serialization stretch factor (>= 1) of link resource \p Link at
  /// \p Now (link_degrade factor).
  double linkScale(unsigned Link, Picos Now) const;

  /// Per-packet drop probability of \p Link at \p Now: the fabric-wide
  /// packet_loss rate combined with the link's own degrade loss,
  /// 1 - (1-p_fabric)(1-p_link). Returns 1 when the link is hard-failed.
  double linkLossRate(unsigned Link, Picos Now) const;

  /// True when \p Link is hard-failed (link_fail) at \p Now. Permanent.
  bool linkDown(unsigned Link, Picos Now) const;

  /// True when any directive can perturb a transfer: link events, packet
  /// loss, or stack outages/partitions (which black-hole transfers).
  /// The interconnect's zero-overhead fault-free path keys off this.
  bool affectsTransfers() const { return Affecting; }

  /// The residual draw of an expected-loss rounding: when round \p Round
  /// of message \p Message on \p Link expects a fractional packet loss
  /// \p Fraction, this fires with that probability - deterministically
  /// in (seed, link, message, round).
  bool lossResidual(unsigned Link, std::uint64_t Message, unsigned Round,
                    double Fraction) const;

private:
  struct Step {
    Picos At;
    double Value;
  };
  struct DegradeStep {
    Picos At;
    double Factor;
    double LossRate;
  };

  static double stepValueAt(const std::vector<Step> &Steps, Picos Now,
                            double Initial);

  FaultSpec Spec;
  unsigned Stacks;
  unsigned Links;
  bool Affecting = false;
  /// Per-stack availability timeline (1 online, 0 offline).
  std::vector<std::vector<Step>> StackTimeline;
  /// Per-stack partition time (never = no partition).
  std::vector<Picos> PartitionAt;
  /// Per-link degrade timeline (factor + loss step together).
  std::vector<std::vector<DegradeStep>> LinkTimeline;
  /// Per-link hard-fail time (never = healthy).
  std::vector<Picos> LinkFailAt;
};

} // namespace fft3d

#endif // FFT3D_FAULT_CLUSTERFAULTS_H
