//===- fault/ClusterFaults.cpp - Cluster-level fault oracle ---------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fault/ClusterFaults.h"

#include "fault/FaultHash.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <limits>

using namespace fft3d;

namespace {
constexpr Picos Never = std::numeric_limits<Picos>::max();
// Salt for the packet-loss residual draws; distinct from the ECC and job
// salts so the streams never alias.
constexpr std::uint64_t LossSalt = 0xFA11EDULL;
} // namespace

ClusterFaultInjector::ClusterFaultInjector(const FaultSpec &Spec,
                                           unsigned Stacks, unsigned Links)
    : Spec(Spec), Stacks(Stacks), Links(Links), StackTimeline(Stacks),
      PartitionAt(Stacks, Never), LinkTimeline(Links),
      LinkFailAt(Links, Never) {
  if (Spec.maxStackNamed() >= static_cast<int>(Stacks))
    reportFatalError("fault spec names a stack beyond the cluster size");
  if (Spec.maxLinkNamed() >= static_cast<int>(Links))
    reportFatalError("fault spec names a link beyond the fabric resources");
  for (const StackAvailEvent &E : Spec.stackEvents())
    StackTimeline[E.Stack].push_back({E.At, E.Online ? 1.0 : 0.0});
  for (const StackPartitionEvent &E : Spec.partitionEvents())
    PartitionAt[E.Stack] = std::min(PartitionAt[E.Stack], E.At);
  for (const LinkDegradeEvent &E : Spec.linkDegradeEvents())
    LinkTimeline[E.Link].push_back({E.At, E.Factor, E.LossRate});
  for (const LinkFailEvent &E : Spec.linkFailEvents())
    LinkFailAt[E.Link] = std::min(LinkFailAt[E.Link], E.At);
  Affecting = !Spec.linkDegradeEvents().empty() ||
              !Spec.linkFailEvents().empty() ||
              !Spec.partitionEvents().empty() ||
              !Spec.stackEvents().empty() || Spec.packetLossRate() > 0.0;
}

double ClusterFaultInjector::stepValueAt(const std::vector<Step> &Steps,
                                         Picos Now, double Initial) {
  double Value = Initial;
  for (const Step &S : Steps) {
    if (S.At > Now)
      break;
    Value = S.Value;
  }
  return Value;
}

bool ClusterFaultInjector::stackOffline(unsigned Stack, Picos Now) const {
  return stepValueAt(StackTimeline[Stack], Now, 1.0) == 0.0;
}

bool ClusterFaultInjector::stackPartitioned(unsigned Stack, Picos Now) const {
  return Now >= PartitionAt[Stack];
}

std::uint64_t ClusterFaultInjector::stackHealthEpoch(unsigned Stack,
                                                     Picos Now) const {
  std::uint64_t Epoch = 0;
  for (const Step &S : StackTimeline[Stack]) {
    if (S.At > Now)
      break;
    ++Epoch;
  }
  if (Now >= PartitionAt[Stack])
    ++Epoch;
  return Epoch;
}

unsigned ClusterFaultInjector::healthyStacks(Picos Now) const {
  unsigned Healthy = 0;
  for (unsigned S = 0; S != Stacks; ++S)
    Healthy += stackReachable(S, Now) ? 1 : 0;
  return Healthy;
}

std::vector<bool> ClusterFaultInjector::reachableStacks(Picos Now) const {
  std::vector<bool> Reachable(Stacks);
  for (unsigned S = 0; S != Stacks; ++S)
    Reachable[S] = stackReachable(S, Now);
  return Reachable;
}

double ClusterFaultInjector::linkScale(unsigned Link, Picos Now) const {
  double Factor = 1.0;
  for (const DegradeStep &S : LinkTimeline[Link]) {
    if (S.At > Now)
      break;
    Factor = S.Factor;
  }
  return Factor;
}

double ClusterFaultInjector::linkLossRate(unsigned Link, Picos Now) const {
  if (linkDown(Link, Now))
    return 1.0;
  double LinkLoss = 0.0;
  for (const DegradeStep &S : LinkTimeline[Link]) {
    if (S.At > Now)
      break;
    LinkLoss = S.LossRate;
  }
  // Independent drop processes compose multiplicatively on survival.
  return 1.0 - (1.0 - Spec.packetLossRate()) * (1.0 - LinkLoss);
}

bool ClusterFaultInjector::linkDown(unsigned Link, Picos Now) const {
  return Now >= LinkFailAt[Link];
}

bool ClusterFaultInjector::lossResidual(unsigned Link, std::uint64_t Message,
                                        unsigned Round,
                                        double Fraction) const {
  return fault_hash::hashBelow(Spec.seed() ^ LossSalt,
                               Message * (Links + 1) + Link, Round, Fraction);
}
