//===- fault/FaultSpec.h - Declarative fault schedule -----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic schedule of fault events for the 3D memory and
/// the serving layer: vault hard failures (and recoveries), per-vault TSV
/// lane degradation, thermal-throttle duty-cycle windows, transient read
/// errors with an ECC retry penalty, and job-level transient failures.
///
/// The schedule is parsed from a small line-oriented text spec
/// (docs/FaultModel.md documents the grammar) and is pure data: all
/// runtime decisions live in FaultInjector, and every decision is a pure
/// function of (spec, seed, coordinates), so a replay with the same spec
/// is byte-identical.
///
/// Grammar (one directive per line, '#' starts a comment; times in ms
/// unless suffixed otherwise):
///
///   seed <u64>
///   vault_fail <vault> at <ms>
///   vault_recover <vault> at <ms>
///   tsv_degrade <vault> at <ms> factor <f>      # f >= 1; 1 restores
///   throttle from <ms> until <ms> period <us> duty <pct>
///   transient rate <p> penalty <ns>             # per-read ECC retry
///   job_fail_rate <p>                           # per-dispatch job failure
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FAULT_FAULTSPEC_H
#define FFT3D_FAULT_FAULTSPEC_H

#include "support/Units.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fft3d {

/// A step change in one vault's availability.
struct VaultAvailEvent {
  unsigned Vault = 0;
  Picos At = 0;
  /// false = vault_fail, true = vault_recover.
  bool Online = false;
};

/// A step change in one vault's TSV lane health. Factor multiplies the
/// vault's beat interval (t_in_row and the TSV data period): factor 2
/// models half the lanes surviving.
struct TsvDegradeEvent {
  unsigned Vault = 0;
  Picos At = 0;
  double Factor = 1.0;
};

/// A thermal-throttle window: within [From, Until), the first Duty
/// fraction of every Period the memory may not issue commands (the
/// controller stalls exactly like it does for refresh).
struct ThrottleWindow {
  Picos From = 0;
  Picos Until = 0;
  Picos Period = 0;
  /// Fraction of each period spent paused, in [0, 1).
  double Duty = 0.0;
};

/// The full parsed schedule.
class FaultSpec {
public:
  /// Parses \p Text. Returns false and sets \p Error (with a line number)
  /// on malformed input; the spec is unchanged on failure.
  bool parse(const std::string &Text, std::string *Error = nullptr);

  /// Parses the contents of \p Stream (e.g. an open spec file).
  bool parse(std::istream &Stream, std::string *Error = nullptr);

  /// True when no directive was given: the zero-overhead off path.
  bool empty() const;

  /// Largest vault index any directive names, or -1 when none do; lets a
  /// device validate the spec against its geometry.
  int maxVaultNamed() const;

  std::uint64_t seed() const { return Seed; }
  const std::vector<VaultAvailEvent> &vaultEvents() const {
    return VaultEvents;
  }
  const std::vector<TsvDegradeEvent> &tsvEvents() const { return TsvEvents; }
  const std::vector<ThrottleWindow> &throttleWindows() const {
    return Throttles;
  }
  /// Per-read probability of a transient error (ECC retry), in [0, 1).
  double transientReadRate() const { return TransientRate; }
  /// Latency added to a read that takes an ECC retry.
  Picos eccRetryPenalty() const { return EccPenalty; }
  /// Per-dispatch probability that a job transiently fails (serving
  /// layer), in [0, 1).
  double jobFailRate() const { return JobFailRate; }

private:
  std::uint64_t Seed = 0;
  std::vector<VaultAvailEvent> VaultEvents;
  std::vector<TsvDegradeEvent> TsvEvents;
  std::vector<ThrottleWindow> Throttles;
  double TransientRate = 0.0;
  Picos EccPenalty = 0;
  double JobFailRate = 0.0;
};

/// The deterministic spare mapping shared by the memory's runtime
/// redirect and the layout planner's block remap: the i-th offline vault
/// (in vault order) moves to the i-th online vault, round-robin, so the
/// redirected load spreads evenly across the survivors instead of piling
/// onto one hot spare. \p Online has one entry per vault; returns the
/// identity for online vaults. When no vault is online every entry maps
/// to itself.
std::vector<unsigned> spareVaultMap(const std::vector<bool> &Online);

} // namespace fft3d

#endif // FFT3D_FAULT_FAULTSPEC_H
