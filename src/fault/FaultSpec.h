//===- fault/FaultSpec.h - Declarative fault schedule -----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic schedule of fault events for the 3D memory,
/// the serving layer, and the multi-stack cluster: vault hard failures
/// (and recoveries), per-vault TSV lane degradation, thermal-throttle
/// duty-cycle windows, transient read errors with an ECC retry penalty,
/// job-level transient failures, whole-stack failures, and link
/// degradation / failure / partition with probabilistic packet loss.
///
/// The schedule is parsed from a small line-oriented text spec
/// (docs/FaultModel.md documents the grammar) and is pure data: all
/// runtime decisions live in FaultInjector / ClusterFaultInjector, and
/// every decision is a pure function of (spec, seed, coordinates), so a
/// replay with the same spec is byte-identical.
///
/// Grammar (one directive per line, '#' starts a comment; times in ms
/// unless suffixed otherwise):
///
///   seed <u64>
///   vault_fail <vault> at <ms>
///   vault_recover <vault> at <ms>
///   tsv_degrade <vault> at <ms> factor <f>      # f >= 1; 1 restores
///   throttle from <ms> until <ms> period <us> duty <pct>
///   transient rate <p> penalty <ns>             # per-read ECC retry
///   job_fail_rate <p>                           # per-dispatch job failure
///
/// Cluster directives (multi-stack runs; <link> names a directed fabric
/// resource: all-to-all egress i = i / ingress i = S+i, ring cw i = i /
/// ccw i = S+i):
///
///   stack_fail <stack> at <ms>
///   stack_recover <stack> at <ms>
///   link_degrade <link> at <ms> factor <f> [loss <p>]  # f >= 1 stretches
///   link_fail <link> at <ms>                           # drops everything
///   link_partition <stack> at <ms>       # every link touching the stack
///   packet_loss rate <p>                 # fabric-wide background loss
///
/// Per-stack scoping: a bare `stack <i>` line opens a section; the
/// vault-level directives (vault_fail, vault_recover, tsv_degrade) that
/// follow apply only to stack i until the next `stack` line. `stack all`
/// returns to the default scope, in which vault-level directives apply
/// to every stack. Cluster directives and the global knobs must appear
/// outside any section.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_FAULT_FAULTSPEC_H
#define FFT3D_FAULT_FAULTSPEC_H

#include "support/Units.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fft3d {

/// A step change in one vault's availability. \p Stack scopes the event
/// to one stack of a cluster (-1 = every stack).
struct VaultAvailEvent {
  unsigned Vault = 0;
  Picos At = 0;
  /// false = vault_fail, true = vault_recover.
  bool Online = false;
  int Stack = -1;
};

/// A step change in one vault's TSV lane health. Factor multiplies the
/// vault's beat interval (t_in_row and the TSV data period): factor 2
/// models half the lanes surviving. \p Stack scopes as in
/// VaultAvailEvent.
struct TsvDegradeEvent {
  unsigned Vault = 0;
  Picos At = 0;
  double Factor = 1.0;
  int Stack = -1;
};

/// A thermal-throttle window: within [From, Until), the first Duty
/// fraction of every Period the memory may not issue commands (the
/// controller stalls exactly like it does for refresh).
struct ThrottleWindow {
  Picos From = 0;
  Picos Until = 0;
  Picos Period = 0;
  /// Fraction of each period spent paused, in [0, 1).
  double Duty = 0.0;
};

/// A step change in one stack's availability (cluster level).
struct StackAvailEvent {
  unsigned Stack = 0;
  Picos At = 0;
  /// false = stack_fail, true = stack_recover.
  bool Online = false;
};

/// A step change in one directed link resource's health: Factor >= 1
/// stretches serialization (lanes lost), LossRate is the per-packet drop
/// probability on the resource. factor 1 loss 0 restores.
struct LinkDegradeEvent {
  unsigned Link = 0;
  Picos At = 0;
  double Factor = 1.0;
  double LossRate = 0.0;
};

/// A hard link failure (link_fail <link>): the resource drops every
/// packet from At on. Permanent - there is no link_recover.
struct LinkFailEvent {
  unsigned Link = 0;
  Picos At = 0;
};

/// A stack partition (link_partition <stack>): every link touching the
/// stack drops everything from At on, isolating the (otherwise healthy)
/// stack. Permanent.
struct StackPartitionEvent {
  unsigned Stack = 0;
  Picos At = 0;
};

/// The full parsed schedule.
class FaultSpec {
public:
  /// Parses \p Text. Returns false and sets \p Error (with a line number)
  /// on malformed input; the spec is unchanged on failure. Unknown verbs
  /// get a nearest-known-verb suggestion when one is plausible.
  bool parse(const std::string &Text, std::string *Error = nullptr);

  /// Parses the contents of \p Stream (e.g. an open spec file).
  bool parse(std::istream &Stream, std::string *Error = nullptr);

  /// True when no directive was given: the zero-overhead off path.
  bool empty() const;

  /// Largest vault index any directive names, or -1 when none do; lets a
  /// device validate the spec against its geometry.
  int maxVaultNamed() const;

  /// Largest stack index named by a cluster directive or a `stack <i>`
  /// scope, or -1. Lets the cluster validate the spec against S.
  int maxStackNamed() const;

  /// Largest link resource index named, or -1 (a fabric over S stacks
  /// has 2*S directed resources).
  int maxLinkNamed() const;

  /// True when any cluster-level directive is present (stack_fail /
  /// stack_recover / link_* / packet_loss). A spec without them runs the
  /// single-stack fault path unchanged.
  bool hasClusterFaults() const;

  /// True when any vault-level directive is scoped to a single stack.
  bool hasStackScopes() const;

  /// The single-stack view of this spec for stack \p Stack: vault-level
  /// directives scoped to \p Stack or unscoped, the global knobs
  /// (throttle, transient, job_fail_rate, seed), and no cluster
  /// directives - exactly what one StackBackend's device should inject.
  /// \p Stack == -1 keeps only the unscoped directives (the fleet-wide
  /// view the serving layer prices capacity with).
  FaultSpec forStack(int Stack) const;

  std::uint64_t seed() const { return Seed; }
  const std::vector<VaultAvailEvent> &vaultEvents() const {
    return VaultEvents;
  }
  const std::vector<TsvDegradeEvent> &tsvEvents() const { return TsvEvents; }
  const std::vector<ThrottleWindow> &throttleWindows() const {
    return Throttles;
  }
  const std::vector<StackAvailEvent> &stackEvents() const {
    return StackEvents;
  }
  const std::vector<LinkDegradeEvent> &linkDegradeEvents() const {
    return LinkDegrades;
  }
  const std::vector<LinkFailEvent> &linkFailEvents() const {
    return LinkFails;
  }
  const std::vector<StackPartitionEvent> &partitionEvents() const {
    return Partitions;
  }
  /// Per-read probability of a transient error (ECC retry), in [0, 1).
  double transientReadRate() const { return TransientRate; }
  /// Latency added to a read that takes an ECC retry.
  Picos eccRetryPenalty() const { return EccPenalty; }
  /// Per-dispatch probability that a job transiently fails (serving
  /// layer), in [0, 1).
  double jobFailRate() const { return JobFailRate; }
  /// Fabric-wide per-packet background loss probability, in [0, 1).
  double packetLossRate() const { return PacketLoss; }

private:
  std::uint64_t Seed = 0;
  std::vector<VaultAvailEvent> VaultEvents;
  std::vector<TsvDegradeEvent> TsvEvents;
  std::vector<ThrottleWindow> Throttles;
  std::vector<StackAvailEvent> StackEvents;
  std::vector<LinkDegradeEvent> LinkDegrades;
  std::vector<LinkFailEvent> LinkFails;
  std::vector<StackPartitionEvent> Partitions;
  double TransientRate = 0.0;
  Picos EccPenalty = 0;
  double JobFailRate = 0.0;
  double PacketLoss = 0.0;
};

/// The deterministic spare mapping shared by the memory's runtime
/// redirect, the layout planner's block remap, and the cluster's slab
/// migration: the i-th offline entry (in index order) moves to the i-th
/// online entry, round-robin, so the redirected load spreads evenly
/// across the survivors instead of piling onto one hot spare. \p Online
/// has one entry per vault (or stack); returns the identity for online
/// entries. When nothing is online every entry maps to itself.
std::vector<unsigned> spareVaultMap(const std::vector<bool> &Online);

} // namespace fft3d

#endif // FFT3D_FAULT_FAULTSPEC_H
