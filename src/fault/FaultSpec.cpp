//===- fault/FaultSpec.cpp - Declarative fault schedule -------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultSpec.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <sstream>

using namespace fft3d;

namespace {

/// One tokenized directive line.
struct Line {
  std::uint64_t Number = 0;
  std::vector<std::string> Tokens;
};

bool parseDouble(const std::string &Token, double &Out) {
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Token.c_str(), &End);
  return errno == 0 && End && *End == '\0' && End != Token.c_str();
}

bool parseU64(const std::string &Token, std::uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Token.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0' && End != Token.c_str();
}

bool parseMillis(const std::string &Token, Picos &Out) {
  double Ms = 0.0;
  if (!parseDouble(Token, Ms) || Ms < 0.0)
    return false;
  Out = static_cast<Picos>(Ms * static_cast<double>(PicosPerMilli) + 0.5);
  return true;
}

/// Expects \p Keyword at \p Index and a value token right after it.
bool keyed(const Line &L, std::size_t Index, const char *Keyword,
           std::string &Value) {
  if (Index + 1 >= L.Tokens.size() || L.Tokens[Index] != Keyword)
    return false;
  Value = L.Tokens[Index + 1];
  return true;
}

bool fail(std::string *Error, std::uint64_t LineNo, const std::string &Msg) {
  if (Error)
    *Error = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

/// Levenshtein distance, for the unknown-verb suggestion. Verbs are
/// short, so the O(|A|*|B|) two-row form is plenty.
std::size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<std::size_t> Prev(B.size() + 1), Cur(B.size() + 1);
  for (std::size_t J = 0; J <= B.size(); ++J)
    Prev[J] = J;
  for (std::size_t I = 1; I <= A.size(); ++I) {
    Cur[0] = I;
    for (std::size_t J = 1; J <= B.size(); ++J)
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1,
                         Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1)});
    std::swap(Prev, Cur);
  }
  return Prev[B.size()];
}

/// Nearest known verb to \p Kind, or "" when nothing is close enough to
/// be a plausible typo (distance > half the verb's length).
std::string suggestVerb(const std::string &Kind) {
  static const char *const Known[] = {
      "seed",         "vault_fail", "vault_recover",  "tsv_degrade",
      "throttle",     "transient",  "job_fail_rate",  "stack",
      "stack_fail",   "stack_recover", "link_degrade", "link_fail",
      "link_partition", "packet_loss"};
  std::string Best;
  std::size_t BestDist = Kind.size();
  for (const char *Verb : Known) {
    const std::size_t Dist = editDistance(Kind, Verb);
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = Verb;
    }
  }
  if (Best.empty() || BestDist * 2 > std::max<std::size_t>(Best.size(), 1))
    return "";
  return Best;
}

} // namespace

bool FaultSpec::parse(std::istream &Stream, std::string *Error) {
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return parse(Buffer.str(), Error);
}

bool FaultSpec::parse(const std::string &Text, std::string *Error) {
  FaultSpec Parsed;
  std::istringstream Input(Text);
  std::string Raw;
  std::uint64_t LineNo = 0;
  // Current `stack <i>` section, -1 outside any (the default scope).
  int Scope = -1;
  while (std::getline(Input, Raw)) {
    ++LineNo;
    const std::size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.erase(Hash);
    Line L;
    L.Number = LineNo;
    std::istringstream Words(Raw);
    std::string Word;
    while (Words >> Word)
      L.Tokens.push_back(Word);
    if (L.Tokens.empty())
      continue;

    const std::string &Kind = L.Tokens[0];
    // Everything but the three vault-level directives ignores sections;
    // requiring them outside keeps "which stack does this apply to"
    // unambiguous.
    const bool VaultLevel = Kind == "vault_fail" || Kind == "vault_recover" ||
                            Kind == "tsv_degrade";
    if (Scope >= 0 && !VaultLevel && Kind != "stack")
      return fail(Error, LineNo,
                  "directive '" + Kind +
                      "' must appear outside a stack section");
    std::string V1, V2, V3, V4;
    if (Kind == "seed") {
      if (L.Tokens.size() != 2 || !parseU64(L.Tokens[1], Parsed.Seed))
        return fail(Error, LineNo, "expected: seed <u64>");
    } else if (Kind == "stack") {
      std::uint64_t Stack = 0;
      if (L.Tokens.size() != 2 ||
          (L.Tokens[1] != "all" && !parseU64(L.Tokens[1], Stack)))
        return fail(Error, LineNo, "expected: stack <i>|all");
      Scope = L.Tokens[1] == "all" ? -1 : static_cast<int>(Stack);
    } else if (Kind == "vault_fail" || Kind == "vault_recover") {
      VaultAvailEvent E;
      E.Online = Kind == "vault_recover";
      E.Stack = Scope;
      std::uint64_t Vault = 0;
      if (L.Tokens.size() != 4 || !parseU64(L.Tokens[1], Vault) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At))
        return fail(Error, LineNo,
                    "expected: " + Kind + " <vault> at <ms>");
      E.Vault = static_cast<unsigned>(Vault);
      Parsed.VaultEvents.push_back(E);
    } else if (Kind == "tsv_degrade") {
      TsvDegradeEvent E;
      E.Stack = Scope;
      std::uint64_t Vault = 0;
      if (L.Tokens.size() != 6 || !parseU64(L.Tokens[1], Vault) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At) ||
          !keyed(L, 4, "factor", V2) || !parseDouble(V2, E.Factor) ||
          E.Factor < 1.0)
        return fail(Error, LineNo,
                    "expected: tsv_degrade <vault> at <ms> factor <f>=1>");
      E.Vault = static_cast<unsigned>(Vault);
      Parsed.TsvEvents.push_back(E);
    } else if (Kind == "throttle") {
      ThrottleWindow W;
      double PeriodUs = 0.0, DutyPct = 0.0;
      if (L.Tokens.size() != 9 || !keyed(L, 1, "from", V1) ||
          !parseMillis(V1, W.From) || !keyed(L, 3, "until", V2) ||
          !parseMillis(V2, W.Until) || !keyed(L, 5, "period", V3) ||
          !parseDouble(V3, PeriodUs) || PeriodUs <= 0.0 ||
          !keyed(L, 7, "duty", V4) || !parseDouble(V4, DutyPct) ||
          DutyPct < 0.0 || DutyPct >= 100.0 || W.Until <= W.From)
        return fail(Error, LineNo,
                    "expected: throttle from <ms> until <ms> period <us> "
                    "duty <pct in [0,100)>");
      W.Period = static_cast<Picos>(
          PeriodUs * static_cast<double>(PicosPerMicro) + 0.5);
      W.Duty = DutyPct / 100.0;
      if (W.Duty > 0.0)
        Parsed.Throttles.push_back(W);
    } else if (Kind == "transient") {
      double PenaltyNs = 0.0;
      if (L.Tokens.size() != 5 || !keyed(L, 1, "rate", V1) ||
          !parseDouble(V1, Parsed.TransientRate) ||
          Parsed.TransientRate < 0.0 || Parsed.TransientRate >= 1.0 ||
          !keyed(L, 3, "penalty", V2) || !parseDouble(V2, PenaltyNs) ||
          PenaltyNs < 0.0)
        return fail(Error, LineNo,
                    "expected: transient rate <p in [0,1)> penalty <ns>");
      Parsed.EccPenalty = nanosToPicos(PenaltyNs);
    } else if (Kind == "job_fail_rate") {
      if (L.Tokens.size() != 2 || !parseDouble(L.Tokens[1], Parsed.JobFailRate) ||
          Parsed.JobFailRate < 0.0 || Parsed.JobFailRate >= 1.0)
        return fail(Error, LineNo, "expected: job_fail_rate <p in [0,1)>");
    } else if (Kind == "stack_fail" || Kind == "stack_recover") {
      StackAvailEvent E;
      E.Online = Kind == "stack_recover";
      std::uint64_t Stack = 0;
      if (L.Tokens.size() != 4 || !parseU64(L.Tokens[1], Stack) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At))
        return fail(Error, LineNo,
                    "expected: " + Kind + " <stack> at <ms>");
      E.Stack = static_cast<unsigned>(Stack);
      Parsed.StackEvents.push_back(E);
    } else if (Kind == "link_degrade") {
      LinkDegradeEvent E;
      std::uint64_t Link = 0;
      const bool HasLoss = L.Tokens.size() == 8;
      if ((L.Tokens.size() != 6 && L.Tokens.size() != 8) ||
          !parseU64(L.Tokens[1], Link) || !keyed(L, 2, "at", V1) ||
          !parseMillis(V1, E.At) || !keyed(L, 4, "factor", V2) ||
          !parseDouble(V2, E.Factor) || E.Factor < 1.0 ||
          (HasLoss &&
           (!keyed(L, 6, "loss", V3) || !parseDouble(V3, E.LossRate) ||
            E.LossRate < 0.0 || E.LossRate >= 1.0)))
        return fail(Error, LineNo,
                    "expected: link_degrade <link> at <ms> factor <f>=1> "
                    "[loss <p in [0,1)>]");
      E.Link = static_cast<unsigned>(Link);
      Parsed.LinkDegrades.push_back(E);
    } else if (Kind == "link_fail") {
      LinkFailEvent E;
      std::uint64_t Link = 0;
      if (L.Tokens.size() != 4 || !parseU64(L.Tokens[1], Link) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At))
        return fail(Error, LineNo, "expected: link_fail <link> at <ms>");
      E.Link = static_cast<unsigned>(Link);
      Parsed.LinkFails.push_back(E);
    } else if (Kind == "link_partition") {
      StackPartitionEvent E;
      std::uint64_t Stack = 0;
      if (L.Tokens.size() != 4 || !parseU64(L.Tokens[1], Stack) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At))
        return fail(Error, LineNo,
                    "expected: link_partition <stack> at <ms>");
      E.Stack = static_cast<unsigned>(Stack);
      Parsed.Partitions.push_back(E);
    } else if (Kind == "packet_loss") {
      if (L.Tokens.size() != 3 || !keyed(L, 1, "rate", V1) ||
          !parseDouble(V1, Parsed.PacketLoss) || Parsed.PacketLoss < 0.0 ||
          Parsed.PacketLoss >= 1.0)
        return fail(Error, LineNo,
                    "expected: packet_loss rate <p in [0,1)>");
    } else {
      std::string Msg = "unknown directive '" + Kind + "'";
      const std::string Hint = suggestVerb(Kind);
      if (!Hint.empty())
        Msg += "; did you mean '" + Hint + "'?";
      return fail(Error, LineNo, Msg);
    }
  }

  // Stable chronological order so injector timelines are well defined
  // regardless of spec line order.
  std::stable_sort(Parsed.VaultEvents.begin(), Parsed.VaultEvents.end(),
                   [](const VaultAvailEvent &A, const VaultAvailEvent &B) {
                     return A.At < B.At;
                   });
  std::stable_sort(Parsed.TsvEvents.begin(), Parsed.TsvEvents.end(),
                   [](const TsvDegradeEvent &A, const TsvDegradeEvent &B) {
                     return A.At < B.At;
                   });
  std::stable_sort(Parsed.StackEvents.begin(), Parsed.StackEvents.end(),
                   [](const StackAvailEvent &A, const StackAvailEvent &B) {
                     return A.At < B.At;
                   });
  std::stable_sort(Parsed.LinkDegrades.begin(), Parsed.LinkDegrades.end(),
                   [](const LinkDegradeEvent &A, const LinkDegradeEvent &B) {
                     return A.At < B.At;
                   });
  *this = std::move(Parsed);
  return true;
}

bool FaultSpec::empty() const {
  return VaultEvents.empty() && TsvEvents.empty() && Throttles.empty() &&
         TransientRate == 0.0 && JobFailRate == 0.0 && !hasClusterFaults();
}

bool FaultSpec::hasClusterFaults() const {
  return !StackEvents.empty() || !LinkDegrades.empty() ||
         !LinkFails.empty() || !Partitions.empty() || PacketLoss != 0.0;
}

bool FaultSpec::hasStackScopes() const {
  for (const VaultAvailEvent &E : VaultEvents)
    if (E.Stack >= 0)
      return true;
  for (const TsvDegradeEvent &E : TsvEvents)
    if (E.Stack >= 0)
      return true;
  return false;
}

int FaultSpec::maxVaultNamed() const {
  int Max = -1;
  for (const VaultAvailEvent &E : VaultEvents)
    Max = std::max(Max, static_cast<int>(E.Vault));
  for (const TsvDegradeEvent &E : TsvEvents)
    Max = std::max(Max, static_cast<int>(E.Vault));
  return Max;
}

int FaultSpec::maxStackNamed() const {
  int Max = -1;
  for (const VaultAvailEvent &E : VaultEvents)
    Max = std::max(Max, E.Stack);
  for (const TsvDegradeEvent &E : TsvEvents)
    Max = std::max(Max, E.Stack);
  for (const StackAvailEvent &E : StackEvents)
    Max = std::max(Max, static_cast<int>(E.Stack));
  for (const StackPartitionEvent &E : Partitions)
    Max = std::max(Max, static_cast<int>(E.Stack));
  return Max;
}

int FaultSpec::maxLinkNamed() const {
  int Max = -1;
  for (const LinkDegradeEvent &E : LinkDegrades)
    Max = std::max(Max, static_cast<int>(E.Link));
  for (const LinkFailEvent &E : LinkFails)
    Max = std::max(Max, static_cast<int>(E.Link));
  return Max;
}

FaultSpec FaultSpec::forStack(int Stack) const {
  FaultSpec View;
  View.Seed = Seed;
  for (const VaultAvailEvent &E : VaultEvents)
    if (E.Stack < 0 || E.Stack == Stack) {
      View.VaultEvents.push_back(E);
      View.VaultEvents.back().Stack = -1;
    }
  for (const TsvDegradeEvent &E : TsvEvents)
    if (E.Stack < 0 || E.Stack == Stack) {
      View.TsvEvents.push_back(E);
      View.TsvEvents.back().Stack = -1;
    }
  View.Throttles = Throttles;
  View.TransientRate = TransientRate;
  View.EccPenalty = EccPenalty;
  View.JobFailRate = JobFailRate;
  return View;
}

std::vector<unsigned> fft3d::spareVaultMap(const std::vector<bool> &Online) {
  const unsigned NumVaults = static_cast<unsigned>(Online.size());
  std::vector<unsigned> Map(NumVaults);
  std::vector<unsigned> Survivors;
  for (unsigned V = 0; V != NumVaults; ++V) {
    Map[V] = V;
    if (Online[V])
      Survivors.push_back(V);
  }
  if (Survivors.empty())
    return Map;
  unsigned NextSpare = 0;
  for (unsigned V = 0; V != NumVaults; ++V) {
    if (Online[V])
      continue;
    Map[V] = Survivors[NextSpare % Survivors.size()];
    ++NextSpare;
  }
  return Map;
}
