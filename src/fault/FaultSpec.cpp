//===- fault/FaultSpec.cpp - Declarative fault schedule -------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultSpec.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <sstream>

using namespace fft3d;

namespace {

/// One tokenized directive line.
struct Line {
  std::uint64_t Number = 0;
  std::vector<std::string> Tokens;
};

bool parseDouble(const std::string &Token, double &Out) {
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Token.c_str(), &End);
  return errno == 0 && End && *End == '\0' && End != Token.c_str();
}

bool parseU64(const std::string &Token, std::uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Token.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0' && End != Token.c_str();
}

bool parseMillis(const std::string &Token, Picos &Out) {
  double Ms = 0.0;
  if (!parseDouble(Token, Ms) || Ms < 0.0)
    return false;
  Out = static_cast<Picos>(Ms * static_cast<double>(PicosPerMilli) + 0.5);
  return true;
}

/// Expects \p Keyword at \p Index and a value token right after it.
bool keyed(const Line &L, std::size_t Index, const char *Keyword,
           std::string &Value) {
  if (Index + 1 >= L.Tokens.size() || L.Tokens[Index] != Keyword)
    return false;
  Value = L.Tokens[Index + 1];
  return true;
}

bool fail(std::string *Error, std::uint64_t LineNo, const std::string &Msg) {
  if (Error)
    *Error = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

} // namespace

bool FaultSpec::parse(std::istream &Stream, std::string *Error) {
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return parse(Buffer.str(), Error);
}

bool FaultSpec::parse(const std::string &Text, std::string *Error) {
  FaultSpec Parsed;
  std::istringstream Input(Text);
  std::string Raw;
  std::uint64_t LineNo = 0;
  while (std::getline(Input, Raw)) {
    ++LineNo;
    const std::size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.erase(Hash);
    Line L;
    L.Number = LineNo;
    std::istringstream Words(Raw);
    std::string Word;
    while (Words >> Word)
      L.Tokens.push_back(Word);
    if (L.Tokens.empty())
      continue;

    const std::string &Kind = L.Tokens[0];
    std::string V1, V2, V3, V4;
    if (Kind == "seed") {
      if (L.Tokens.size() != 2 || !parseU64(L.Tokens[1], Parsed.Seed))
        return fail(Error, LineNo, "expected: seed <u64>");
    } else if (Kind == "vault_fail" || Kind == "vault_recover") {
      VaultAvailEvent E;
      E.Online = Kind == "vault_recover";
      std::uint64_t Vault = 0;
      if (L.Tokens.size() != 4 || !parseU64(L.Tokens[1], Vault) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At))
        return fail(Error, LineNo,
                    "expected: " + Kind + " <vault> at <ms>");
      E.Vault = static_cast<unsigned>(Vault);
      Parsed.VaultEvents.push_back(E);
    } else if (Kind == "tsv_degrade") {
      TsvDegradeEvent E;
      std::uint64_t Vault = 0;
      if (L.Tokens.size() != 6 || !parseU64(L.Tokens[1], Vault) ||
          !keyed(L, 2, "at", V1) || !parseMillis(V1, E.At) ||
          !keyed(L, 4, "factor", V2) || !parseDouble(V2, E.Factor) ||
          E.Factor < 1.0)
        return fail(Error, LineNo,
                    "expected: tsv_degrade <vault> at <ms> factor <f>=1>");
      E.Vault = static_cast<unsigned>(Vault);
      Parsed.TsvEvents.push_back(E);
    } else if (Kind == "throttle") {
      ThrottleWindow W;
      double PeriodUs = 0.0, DutyPct = 0.0;
      if (L.Tokens.size() != 9 || !keyed(L, 1, "from", V1) ||
          !parseMillis(V1, W.From) || !keyed(L, 3, "until", V2) ||
          !parseMillis(V2, W.Until) || !keyed(L, 5, "period", V3) ||
          !parseDouble(V3, PeriodUs) || PeriodUs <= 0.0 ||
          !keyed(L, 7, "duty", V4) || !parseDouble(V4, DutyPct) ||
          DutyPct < 0.0 || DutyPct >= 100.0 || W.Until <= W.From)
        return fail(Error, LineNo,
                    "expected: throttle from <ms> until <ms> period <us> "
                    "duty <pct in [0,100)>");
      W.Period = static_cast<Picos>(
          PeriodUs * static_cast<double>(PicosPerMicro) + 0.5);
      W.Duty = DutyPct / 100.0;
      if (W.Duty > 0.0)
        Parsed.Throttles.push_back(W);
    } else if (Kind == "transient") {
      double PenaltyNs = 0.0;
      if (L.Tokens.size() != 5 || !keyed(L, 1, "rate", V1) ||
          !parseDouble(V1, Parsed.TransientRate) ||
          Parsed.TransientRate < 0.0 || Parsed.TransientRate >= 1.0 ||
          !keyed(L, 3, "penalty", V2) || !parseDouble(V2, PenaltyNs) ||
          PenaltyNs < 0.0)
        return fail(Error, LineNo,
                    "expected: transient rate <p in [0,1)> penalty <ns>");
      Parsed.EccPenalty = nanosToPicos(PenaltyNs);
    } else if (Kind == "job_fail_rate") {
      if (L.Tokens.size() != 2 || !parseDouble(L.Tokens[1], Parsed.JobFailRate) ||
          Parsed.JobFailRate < 0.0 || Parsed.JobFailRate >= 1.0)
        return fail(Error, LineNo, "expected: job_fail_rate <p in [0,1)>");
    } else {
      return fail(Error, LineNo, "unknown directive '" + Kind + "'");
    }
  }

  // Stable chronological order so injector timelines are well defined
  // regardless of spec line order.
  std::stable_sort(Parsed.VaultEvents.begin(), Parsed.VaultEvents.end(),
                   [](const VaultAvailEvent &A, const VaultAvailEvent &B) {
                     return A.At < B.At;
                   });
  std::stable_sort(Parsed.TsvEvents.begin(), Parsed.TsvEvents.end(),
                   [](const TsvDegradeEvent &A, const TsvDegradeEvent &B) {
                     return A.At < B.At;
                   });
  *this = std::move(Parsed);
  return true;
}

bool FaultSpec::empty() const {
  return VaultEvents.empty() && TsvEvents.empty() && Throttles.empty() &&
         TransientRate == 0.0 && JobFailRate == 0.0;
}

int FaultSpec::maxVaultNamed() const {
  int Max = -1;
  for (const VaultAvailEvent &E : VaultEvents)
    Max = std::max(Max, static_cast<int>(E.Vault));
  for (const TsvDegradeEvent &E : TsvEvents)
    Max = std::max(Max, static_cast<int>(E.Vault));
  return Max;
}

std::vector<unsigned> fft3d::spareVaultMap(const std::vector<bool> &Online) {
  const unsigned NumVaults = static_cast<unsigned>(Online.size());
  std::vector<unsigned> Map(NumVaults);
  std::vector<unsigned> Survivors;
  for (unsigned V = 0; V != NumVaults; ++V) {
    Map[V] = V;
    if (Online[V])
      Survivors.push_back(V);
  }
  if (Survivors.empty())
    return Map;
  unsigned NextSpare = 0;
  for (unsigned V = 0; V != NumVaults; ++V) {
    if (Online[V])
      continue;
    Map[V] = Survivors[NextSpare % Survivors.size()];
    ++NextSpare;
  }
  return Map;
}
