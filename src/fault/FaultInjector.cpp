//===- fault/FaultInjector.cpp - Runtime fault oracle ---------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultInjector.h"

#include "fault/FaultHash.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace fft3d;
using fault_hash::hashBelow;

FaultInjector::FaultInjector(const FaultSpec &Spec, unsigned NumVaults)
    : Spec(Spec), NumVaults(NumVaults), AvailTimeline(NumVaults),
      TsvTimeline(NumVaults) {
  if (Spec.maxVaultNamed() >= static_cast<int>(NumVaults))
    reportFatalError("fault spec names a vault beyond the device geometry");
  for (const VaultAvailEvent &E : Spec.vaultEvents())
    AvailTimeline[E.Vault].push_back({E.At, E.Online ? 1.0 : 0.0});
  for (const TsvDegradeEvent &E : Spec.tsvEvents())
    TsvTimeline[E.Vault].push_back({E.At, E.Factor});
}

double FaultInjector::stepValueAt(const std::vector<Step> &Steps, Picos Now,
                                  double Initial) {
  double Value = Initial;
  for (const Step &S : Steps) {
    if (S.At > Now)
      break;
    Value = S.Value;
  }
  return Value;
}

bool FaultInjector::vaultOffline(unsigned Vault, Picos Now) const {
  return stepValueAt(AvailTimeline[Vault], Now, 1.0) == 0.0;
}

unsigned FaultInjector::healthyVaults(Picos Now) const {
  unsigned Healthy = 0;
  for (unsigned V = 0; V != NumVaults; ++V)
    Healthy += vaultOffline(V, Now) ? 0 : 1;
  return Healthy;
}

std::vector<bool> FaultInjector::onlineVaults(Picos Now) const {
  std::vector<bool> Online(NumVaults);
  for (unsigned V = 0; V != NumVaults; ++V)
    Online[V] = !vaultOffline(V, Now);
  return Online;
}

unsigned FaultInjector::redirectVault(unsigned Vault, Picos Now) const {
  if (!vaultOffline(Vault, Now))
    return Vault;
  return spareVaultMap(onlineVaults(Now))[Vault];
}

double FaultInjector::tsvScale(unsigned Vault, Picos Now) const {
  return stepValueAt(TsvTimeline[Vault], Now, 1.0);
}

Picos FaultInjector::throttleAdjust(Picos T, bool *Stalled) const {
  for (const ThrottleWindow &W : Spec.throttleWindows()) {
    if (T < W.From || T >= W.Until)
      continue;
    const Picos Pause =
        static_cast<Picos>(W.Duty * static_cast<double>(W.Period) + 0.5);
    const Picos Phase = (T - W.From) % W.Period;
    if (Phase < Pause) {
      if (Stalled)
        *Stalled = true;
      T += Pause - Phase;
    }
  }
  return T;
}

bool FaultInjector::readTakesEccRetry(unsigned Vault,
                                      std::uint64_t RequestId) const {
  return hashBelow(Spec.seed() ^ 0x45CC0B8E1ULL, Vault, RequestId,
                   Spec.transientReadRate());
}

bool FaultInjector::jobTransientlyFails(std::uint64_t JobId,
                                        unsigned Attempt) const {
  return hashBelow(Spec.seed() ^ 0x10B5A11ULL, JobId, Attempt,
                   Spec.jobFailRate());
}

double FaultInjector::capacityFactor(Picos Now) const {
  double Factor = static_cast<double>(healthyVaults(Now)) /
                  static_cast<double>(NumVaults);
  for (const ThrottleWindow &W : Spec.throttleWindows())
    if (Now >= W.From && Now < W.Until)
      Factor *= 1.0 - W.Duty;
  return Factor;
}
