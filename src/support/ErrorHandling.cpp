//===- support/ErrorHandling.cpp - Fatal errors and unreachables ----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace fft3d;

void fft3d::reportFatalError(const char *Reason, const char *File,
                             unsigned Line) {
  if (File)
    std::fprintf(stderr, "fft3d fatal error at %s:%u: %s\n", File, Line,
                 Reason);
  else
    std::fprintf(stderr, "fft3d fatal error: %s\n", Reason);
  std::abort();
}
