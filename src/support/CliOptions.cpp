//===- support/CliOptions.cpp - Shared command-line flags -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/CliOptions.h"

#include <cstdlib>
#include <cstring>

using namespace fft3d;

bool fft3d::consumeCliValue(int Argc, char **Argv, int &I, const char *Key,
                            const char **Value) {
  const char *Arg = Argv[I];
  const std::size_t Len = std::strlen(Key);
  if (std::strncmp(Arg, Key, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    *Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] == '\0' && I + 1 < Argc) {
    *Value = Argv[++I];
    return true;
  }
  return false;
}

bool fft3d::consumeCliFlag(char **Argv, int I, const char *Key) {
  return std::strcmp(Argv[I], Key) == 0;
}

bool fft3d::parseCommonCliOption(int Argc, char **Argv, int &I,
                                 CommonCliOptions &Options,
                                 std::string &Error) {
  const char *Value = nullptr;
  if (consumeCliValue(Argc, Argv, I, "--seed", &Value)) {
    Options.Seed = std::strtoull(Value, nullptr, 10);
    Options.SeedSet = true;
  } else if (consumeCliValue(Argc, Argv, I, "--threads", &Value)) {
    Options.Threads =
        static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    if (Options.Threads == 0)
      Error = "--threads must be >= 1 (it is the sweep-parallelism "
              "degree, not a sim knob)";
  } else if (consumeCliValue(Argc, Argv, I, "--sim-threads", &Value)) {
    Options.SimThreads =
        static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    if (Options.SimThreads == 0)
      Error = "--sim-threads must be >= 1";
  } else if (consumeCliValue(Argc, Argv, I, "--faults", &Value)) {
    Options.FaultsFile = Value;
  } else if (consumeCliValue(Argc, Argv, I, "--trace-cats", &Value)) {
    Options.TraceCats = Value;
  } else if (consumeCliValue(Argc, Argv, I, "--trace", &Value)) {
    Options.TraceFile = Value;
  } else if (consumeCliValue(Argc, Argv, I, "--metrics", &Value)) {
    Options.MetricsFile = Value;
  } else if (consumeCliValue(Argc, Argv, I, "--stacks", &Value)) {
    Options.Stacks =
        static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    if (Options.Stacks == 0)
      Error = "--stacks must be >= 1";
  } else if (consumeCliValue(Argc, Argv, I, "--link-gbps", &Value)) {
    Options.LinkGBps = std::strtod(Value, nullptr);
    if (!(Options.LinkGBps > 0.0))
      Error = "--link-gbps must be positive";
  } else if (consumeCliValue(Argc, Argv, I, "--topology", &Value)) {
    Options.Topology = Value;
    if (Options.Topology != "all-to-all" && Options.Topology != "ring")
      Error = "--topology must be all-to-all or ring";
  } else if (consumeCliValue(Argc, Argv, I, "--placement", &Value)) {
    Options.Placement = Value;
    if (Options.Placement != "two-level" &&
        Options.Placement != "round-robin")
      Error = "--placement must be two-level or round-robin";
  } else {
    return false;
  }
  return true;
}

bool fft3d::parseFleetCliOption(int Argc, char **Argv, int &I,
                                FleetCliOptions &Options,
                                std::string &Error) {
  const char *Value = nullptr;
  if (consumeCliFlag(Argv, I, "--fleet")) {
    Options.Fleet = true;
  } else if (consumeCliValue(Argc, Argv, I, "--router", &Value)) {
    Options.Router = Value;
    if (Options.Router != "hash" && Options.Router != "least-loaded" &&
        Options.Router != "affinity")
      Error = "--router must be hash, least-loaded or affinity";
  } else if (consumeCliValue(Argc, Argv, I, "--tenants", &Value)) {
    Options.Tenants =
        static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
  } else if (consumeCliValue(Argc, Argv, I, "--cache-mb", &Value)) {
    Options.CacheMb = std::strtod(Value, nullptr);
    if (Options.CacheMb < 0.0)
      Error = "--cache-mb must be >= 0 (0 disables the plan cache)";
  } else if (consumeCliValue(Argc, Argv, I, "--cache-mode", &Value)) {
    Options.CacheMode = Value;
    if (Options.CacheMode != "shared" && Options.CacheMode != "per-stack")
      Error = "--cache-mode must be shared or per-stack";
  } else if (consumeCliValue(Argc, Argv, I, "--autoscale-p99-us",
                             &Value)) {
    Options.AutoscaleP99Us = std::strtod(Value, nullptr);
    if (Options.AutoscaleP99Us < 0.0)
      Error = "--autoscale-p99-us must be >= 0 (0 disables autoscaling)";
  } else {
    return false;
  }
  return true;
}

const char *fft3d::commonCliUsage() {
  return "  --seed N          echoed into the report header; simulations\n"
         "                    are deterministic with or without it\n"
         "  --threads K       sweep parallelism: K concurrent independent\n"
         "                    simulations (K >= 1)\n"
         "  --sim-threads K   vault-shard parallelism inside each single\n"
         "                    simulation (K >= 1); results are\n"
         "                    bit-identical for any K of either flag\n"
         "  --faults FILE     fault-injection spec\n"
         "  --trace FILE      Chrome trace_event JSON output\n"
         "  --trace-cats L    categories:\n"
         "                    mem,phase,serve,fault,xfer,fleet|all\n"
         "  --metrics FILE    metrics snapshot JSON output\n";
}

const char *fft3d::clusterCliUsage() {
  return "  --stacks S        memory stacks in the modeled cluster\n"
         "                    (S must divide N; 1 = single-stack run)\n"
         "  --link-gbps G     per-link interconnect bandwidth\n"
         "  --topology T      all-to-all | ring\n"
         "  --placement P     two-level | round-robin\n";
}

const char *fft3d::fleetCliUsage() {
  return "  --fleet           run the routed multi-stack front-end\n"
         "                    (requires --stacks >= 2)\n"
         "  --router R        hash | least-loaded | affinity\n"
         "  --tenants T       tenant population (0 = untenanted jobs)\n"
         "  --cache-mb M      shared plan-cache capacity in MiB\n"
         "                    (0 disables: every dispatch re-plans)\n"
         "  --cache-mode C    shared | per-stack (memoization baseline)\n"
         "  --autoscale-p99-us U\n"
         "                    autoscaler p99 target in us (0 = off)\n";
}
