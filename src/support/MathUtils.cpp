//===- support/MathUtils.cpp - Power-of-two and index utilities -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

using namespace fft3d;

std::uint64_t fft3d::bitReverse(std::uint64_t Value, unsigned NumBits) {
  assert(NumBits <= 64 && "at most 64 bits can be reversed");
  std::uint64_t Result = 0;
  for (unsigned I = 0; I != NumBits; ++I) {
    Result = (Result << 1) | (Value & 1);
    Value >>= 1;
  }
  return Result;
}

std::uint64_t fft3d::digitReverse(std::uint64_t Value, unsigned Radix,
                                  unsigned NumDigits) {
  assert(isPowerOf2(Radix) && Radix >= 2 && "radix must be a power of two");
  const unsigned DigitBits = log2Exact(Radix);
  const std::uint64_t DigitMask = Radix - 1;
  std::uint64_t Result = 0;
  for (unsigned I = 0; I != NumDigits; ++I) {
    Result = (Result << DigitBits) | (Value & DigitMask);
    Value >>= DigitBits;
  }
  return Result;
}

unsigned fft3d::digitCount(std::uint64_t Size, unsigned Radix) {
  assert(isPowerOf(Size, Radix) && "size must be a power of the radix");
  unsigned Count = 0;
  while (Size > 1) {
    Size /= Radix;
    ++Count;
  }
  return Count;
}

bool fft3d::isPowerOf(std::uint64_t Size, unsigned Radix) {
  if (Radix < 2 || Size == 0)
    return false;
  while (Size % Radix == 0)
    Size /= Radix;
  return Size == 1;
}
