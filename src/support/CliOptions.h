//===- support/CliOptions.h - Shared command-line flags ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags every driver shares - determinism knobs (--seed, --threads,
/// --sim-threads), fault injection (--faults), observability (--trace,
/// --trace-cats, --metrics) and the multi-stack cluster flags (--stacks,
/// --link-gbps, --topology, --placement) - parsed in one place so the
/// tools cannot drift apart in spelling, value handling or help text.
/// Every flag accepts both "--key=value" and "--key value".
///
/// The parser is string/number-only by design: it captures file paths
/// and the raw --trace-cats list, and the tool resolves them with the
/// fault/obs libraries it already links. That keeps this helper in the
/// dependency-free support layer.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_CLIOPTIONS_H
#define FFT3D_SUPPORT_CLIOPTIONS_H

#include <cstdint>
#include <string>

namespace fft3d {

/// Values of the shared flags, at their documented defaults.
struct CommonCliOptions {
  /// --seed: echoed into report headers; simulations are deterministic.
  std::uint64_t Seed = 0;
  bool SeedSet = false;
  /// --threads: sweep parallelism (concurrent independent simulations).
  unsigned Threads = 1;
  /// --sim-threads: vault-shard parallelism inside one simulation;
  /// results are bit-identical for any value of either flag.
  unsigned SimThreads = 1;
  /// --faults: fault-spec path, loaded by the tool.
  std::string FaultsFile;
  /// --trace: Chrome trace_event JSON output path; empty disables.
  std::string TraceFile;
  /// --trace-cats: raw category list, parsed by the tool against the
  /// obs layer's category table.
  std::string TraceCats;
  /// --metrics: metrics snapshot JSON output path; empty disables.
  std::string MetricsFile;
  /// --stacks: memory stacks in the modeled cluster; 1 = the classic
  /// single-stack run, byte-identical to builds without the flag.
  unsigned Stacks = 1;
  /// --link-gbps: per-link interconnect bandwidth.
  double LinkGBps = 32.0;
  /// --topology: "all-to-all" or "ring".
  std::string Topology = "all-to-all";
  /// --placement: "two-level" (planned) or "round-robin" (naive).
  std::string Placement = "two-level";
};

/// Values of the fleet serving flags (the multi-stack front-end of
/// fft3d_serve), at their documented defaults.
struct FleetCliOptions {
  /// --fleet: run the routed multi-stack front-end instead of the
  /// single-device policy comparison.
  bool Fleet = false;
  /// --router: "hash", "least-loaded" or "affinity".
  std::string Router = "hash";
  /// --tenants: tenant population for workload generation and quota
  /// accounting; 0 leaves jobs untenanted.
  unsigned Tenants = 8;
  /// --cache-mb: shared plan-cache capacity in MiB; 0 disables caching.
  double CacheMb = 8.0;
  /// --cache-mode: "shared" (fleet-wide entries) or "per-stack" (the
  /// memoization baseline).
  std::string CacheMode = "shared";
  /// --autoscale-p99-us: p99 target in microseconds the autoscaler
  /// holds; 0 disables autoscaling.
  double AutoscaleP99Us = 0.0;
};

/// Matches "--key=value" or "--key value" at Argv[\p I]; advances \p I
/// for the two-token form. \p Value points into Argv on success.
bool consumeCliValue(int Argc, char **Argv, int &I, const char *Key,
                     const char **Value);

/// Matches a valueless "--key" flag exactly.
bool consumeCliFlag(char **Argv, int I, const char *Key);

/// Tries Argv[\p I] against every shared flag. Returns true when the
/// argument was one of them (consumed); on a malformed value it still
/// returns true and sets \p Error non-empty so the tool can print its
/// usage and exit.
bool parseCommonCliOption(int Argc, char **Argv, int &I,
                          CommonCliOptions &Options, std::string &Error);

/// Indented usage lines for the shared flags, one block for the
/// determinism/fault/observability flags...
const char *commonCliUsage();

/// ...and one for the cluster flags.
const char *clusterCliUsage();

/// Tries Argv[\p I] against the fleet serving flags, with the same
/// contract as parseCommonCliOption.
bool parseFleetCliOption(int Argc, char **Argv, int &I,
                         FleetCliOptions &Options, std::string &Error);

/// Indented usage lines for the fleet flags.
const char *fleetCliUsage();

} // namespace fft3d

#endif // FFT3D_SUPPORT_CLIOPTIONS_H
