//===- support/Units.h - Time and bandwidth unit helpers -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical units used across the project, and formatting helpers.
///
/// Simulation time is kept in integer picoseconds (Picos) so event ordering
/// is exact; bandwidth is reported in GB/s (10^9 bytes per second, the unit
/// the paper uses) and occasionally in Gb/s for Table 1's baseline rows.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_UNITS_H
#define FFT3D_SUPPORT_UNITS_H

#include <cstdint>
#include <string>

namespace fft3d {

/// Simulation timestamp / duration in picoseconds.
using Picos = std::uint64_t;

constexpr Picos PicosPerNano = 1000;
constexpr Picos PicosPerMicro = 1000 * PicosPerNano;
constexpr Picos PicosPerMilli = 1000 * PicosPerMicro;
constexpr Picos PicosPerSecond = 1000 * PicosPerMilli;

/// Converts a duration in nanoseconds to picoseconds.
constexpr Picos nanosToPicos(double Nanos) {
  return static_cast<Picos>(Nanos * static_cast<double>(PicosPerNano) + 0.5);
}

/// Converts picoseconds to (double) nanoseconds.
constexpr double picosToNanos(Picos Ps) {
  return static_cast<double>(Ps) / static_cast<double>(PicosPerNano);
}

/// Returns the period of a clock with frequency \p MHz, in picoseconds.
constexpr Picos periodFromMHz(double MHz) {
  return static_cast<Picos>(1e6 / MHz + 0.5);
}

/// Bytes-per-second rate over a duration, in GB/s (10^9 B/s). Returns 0 for
/// a zero duration.
double bytesOverPicosToGBps(std::uint64_t Bytes, Picos Duration);

/// Converts GB/s to Gb/s (the unit Table 1 uses for its baseline rows).
constexpr double gbpsToGbitps(double GBps) { return GBps * 8.0; }

/// Formats a duration with an adaptive unit: "123.4 ns", "56.78 us",
/// "9.01 ms". Used by the benchmark tables.
std::string formatDuration(Picos Duration);

/// Formats a byte count with an adaptive binary unit: "512 B", "8.0 KiB",
/// "2.0 MiB".
std::string formatBytes(std::uint64_t Bytes);

} // namespace fft3d

#endif // FFT3D_SUPPORT_UNITS_H
