//===- support/ErrorHandling.h - Fatal errors and unreachables --*- C++ -*-===//
//
// Part of the fft3d project: a reproduction of "Optimal Dynamic Data
// Layouts for 2D FFT on 3D Memory Integrated FPGA" (PACT 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error reporting used across the fft3d libraries.
///
/// Library code never throws; invariant violations abort with a message via
/// reportFatalError() or fft3d_unreachable(). Recoverable conditions are
/// returned through std::optional or boolean results at the API boundary.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_ERRORHANDLING_H
#define FFT3D_SUPPORT_ERRORHANDLING_H

namespace fft3d {

/// Prints \p Reason (with file/line context when provided) to stderr and
/// aborts. Used for invariant violations that must be diagnosed even in
/// builds with assertions disabled.
[[noreturn]] void reportFatalError(const char *Reason,
                                   const char *File = nullptr,
                                   unsigned Line = 0);

} // namespace fft3d

/// Marks a point in control flow that must never execute. Aborts with the
/// given message and source location when reached.
#define fft3d_unreachable(MSG)                                                 \
  ::fft3d::reportFatalError(MSG, __FILE__, __LINE__)

#endif // FFT3D_SUPPORT_ERRORHANDLING_H
