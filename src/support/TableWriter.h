//===- support/TableWriter.h - ASCII table formatting ----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats aligned ASCII tables for the benchmark harness. Every paper
/// table/figure reproduction prints through this class so the output of
/// `bench/table1_column_fft` etc. is uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_TABLEWRITER_H
#define FFT3D_SUPPORT_TABLEWRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace fft3d {

/// Collects rows of string cells and prints them with aligned columns.
class TableWriter {
public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> Headers);

  /// Appends a data row; it may have fewer cells than there are columns
  /// (missing cells print empty) but not more.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table to \p OS.
  void print(std::ostream &OS) const;

  /// Convenience: formats a double with \p Precision fraction digits.
  static std::string num(double Value, int Precision = 2);

  /// Convenience: formats an integer.
  static std::string num(std::uint64_t Value);

  /// Convenience: formats a ratio as a percentage, e.g. 0.40 -> "40.0%".
  static std::string percent(double Fraction, int Precision = 1);

private:
  struct Row {
    bool IsSeparator = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Headers;
  std::vector<Row> Rows;
};

} // namespace fft3d

#endif // FFT3D_SUPPORT_TABLEWRITER_H
