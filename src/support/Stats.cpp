//===- support/Stats.cpp - Counters and running statistics ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

void RunningStat::addSample(double Value) {
  ++Count;
  Sum += Value;
  Min = std::min(Min, Value);
  Max = std::max(Max, Value);
}

void RunningStat::merge(const RunningStat &Other) {
  if (Other.Count == 0)
    return;
  Count += Other.Count;
  Sum += Other.Sum;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

void RunningStat::reset() { *this = RunningStat(); }

Histogram::Histogram(double BucketWidth, unsigned NumBuckets)
    : Width(BucketWidth), Buckets(NumBuckets, 0) {
  assert(BucketWidth > 0 && NumBuckets > 0 && "degenerate histogram");
}

void Histogram::addSample(double Value) {
  ++Total;
  if (Value < 0) {
    // Negative samples indicate a modelling bug upstream; clamp to bucket 0
    // so the histogram still tells a coherent story in release builds.
    assert(false && "negative histogram sample");
    ++Buckets.front();
    return;
  }
  const auto Bucket = static_cast<std::uint64_t>(Value / Width);
  if (Bucket >= Buckets.size())
    ++Overflow;
  else
    ++Buckets[static_cast<unsigned>(Bucket)];
}

std::uint64_t Histogram::bucketCount(unsigned Bucket) const {
  assert(Bucket < Buckets.size() && "bucket index out of range");
  return Buckets[Bucket];
}

double Histogram::percentile(double Fraction) const {
  assert(Fraction >= 0.0 && Fraction <= 1.0 && "fraction out of range");
  if (Total == 0)
    return 0.0;
  const auto Target =
      static_cast<std::uint64_t>(Fraction * static_cast<double>(Total));
  std::uint64_t Seen = 0;
  for (unsigned I = 0; I != Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Target)
      return (I + 1) * Width;
  }
  return Buckets.size() * Width;
}

void Histogram::merge(const Histogram &Other) {
  assert(Width == Other.Width && Buckets.size() == Other.Buckets.size() &&
         "histogram layouts must match to merge");
  for (std::size_t I = 0; I != Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Overflow += Other.Overflow;
  Total += Other.Total;
}
