//===- support/MathUtils.h - Power-of-two and index utilities ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer utilities used throughout the memory model and the FFT
/// library: power-of-two predicates, exact logs, bit and digit reversal,
/// and ceiling division.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_MATHUTILS_H
#define FFT3D_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>

namespace fft3d {

/// Returns true if \p Value is a power of two. Zero is not a power of two.
constexpr bool isPowerOf2(std::uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Returns floor(log2(Value)). \p Value must be non-zero.
constexpr unsigned log2Floor(std::uint64_t Value) {
  assert(Value != 0 && "log2Floor of zero");
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

/// Returns log2(Value) for an exact power of two.
constexpr unsigned log2Exact(std::uint64_t Value) {
  assert(isPowerOf2(Value) && "log2Exact requires a power of two");
  return log2Floor(Value);
}

/// Returns ceil(log2(Value)). \p Value must be non-zero.
constexpr unsigned log2Ceil(std::uint64_t Value) {
  assert(Value != 0 && "log2Ceil of zero");
  return Value == 1 ? 0 : log2Floor(Value - 1) + 1;
}

/// Returns ceil(Num / Den). \p Den must be non-zero.
constexpr std::uint64_t ceilDiv(std::uint64_t Num, std::uint64_t Den) {
  assert(Den != 0 && "division by zero");
  return (Num + Den - 1) / Den;
}

/// Rounds \p Value up to the next multiple of \p Multiple (non-zero).
constexpr std::uint64_t roundUp(std::uint64_t Value, std::uint64_t Multiple) {
  return ceilDiv(Value, Multiple) * Multiple;
}

/// Reverses the low \p NumBits bits of \p Value; higher bits are dropped.
/// bitReverse(0b0110, 4) == 0b0110 reversed == 0b0110 -> 0b0110? No:
/// the result is 0b0110 read back-to-front, i.e. 0b0110 -> 0b0110 only for
/// palindromes; e.g. bitReverse(0b0001, 4) == 0b1000.
std::uint64_t bitReverse(std::uint64_t Value, unsigned NumBits);

/// Reverses the base-\p Radix digits of \p Value, where \p Value is treated
/// as a \p NumDigits -digit number. Radix must be a power of two. This is
/// the index permutation applied by an in-order radix-R FFT.
std::uint64_t digitReverse(std::uint64_t Value, unsigned Radix,
                           unsigned NumDigits);

/// Returns the number of base-\p Radix digits needed for indices in
/// [0, Size), where \p Size is an exact power of \p Radix.
unsigned digitCount(std::uint64_t Size, unsigned Radix);

/// Returns true if \p Size is an exact power of \p Radix (both >= 2).
bool isPowerOf(std::uint64_t Size, unsigned Radix);

} // namespace fft3d

#endif // FFT3D_SUPPORT_MATHUTILS_H
