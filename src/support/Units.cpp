//===- support/Units.cpp - Time and bandwidth unit helpers ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/Units.h"

#include <cstdio>

using namespace fft3d;

double fft3d::bytesOverPicosToGBps(std::uint64_t Bytes, Picos Duration) {
  if (Duration == 0)
    return 0.0;
  // GB/s == bytes per nanosecond.
  return static_cast<double>(Bytes) /
         (static_cast<double>(Duration) / static_cast<double>(PicosPerNano));
}

std::string fft3d::formatDuration(Picos Duration) {
  char Buffer[64];
  const auto Value = static_cast<double>(Duration);
  if (Duration < PicosPerNano)
    std::snprintf(Buffer, sizeof(Buffer), "%llu ps",
                  static_cast<unsigned long long>(Duration));
  else if (Duration < PicosPerMicro)
    std::snprintf(Buffer, sizeof(Buffer), "%.2f ns",
                  Value / static_cast<double>(PicosPerNano));
  else if (Duration < PicosPerMilli)
    std::snprintf(Buffer, sizeof(Buffer), "%.2f us",
                  Value / static_cast<double>(PicosPerMicro));
  else if (Duration < PicosPerSecond)
    std::snprintf(Buffer, sizeof(Buffer), "%.2f ms",
                  Value / static_cast<double>(PicosPerMilli));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.3f s",
                  Value / static_cast<double>(PicosPerSecond));
  return Buffer;
}

std::string fft3d::formatBytes(std::uint64_t Bytes) {
  char Buffer[64];
  if (Bytes < 1024)
    std::snprintf(Buffer, sizeof(Buffer), "%llu B",
                  static_cast<unsigned long long>(Bytes));
  else if (Bytes < 1024 * 1024)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f KiB",
                  static_cast<double>(Bytes) / 1024.0);
  else if (Bytes < 1024ULL * 1024 * 1024)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f MiB",
                  static_cast<double>(Bytes) / (1024.0 * 1024.0));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.2f GiB",
                  static_cast<double>(Bytes) / (1024.0 * 1024.0 * 1024.0));
  return Buffer;
}
