//===- support/Random.h - Deterministic random number source ---*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, reproducible PRNG (xoshiro256** variant) used to build
/// synthetic workloads for tests, examples and benchmarks. Determinism per
/// seed matters more here than statistical perfection: every experiment in
/// EXPERIMENTS.md must be re-runnable bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_RANDOM_H
#define FFT3D_SUPPORT_RANDOM_H

#include <cstdint>

namespace fft3d {

/// Deterministic 64-bit pseudo-random generator.
class Rng {
public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(std::uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64-bit value.
  std::uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound > 0.
  std::uint64_t nextBelow(std::uint64_t Bound);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double nextDouble(double Lo, double Hi);

  /// Returns an approximately standard-normal sample (sum of uniforms).
  double nextGaussian();

private:
  std::uint64_t State[4];
};

} // namespace fft3d

#endif // FFT3D_SUPPORT_RANDOM_H
