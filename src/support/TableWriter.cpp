//===- support/TableWriter.cpp - ASCII table formatting -------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace fft3d;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "row has more cells than columns");
  Rows.push_back({/*IsSeparator=*/false, std::move(Cells)});
}

void TableWriter::addSeparator() { Rows.push_back({/*IsSeparator=*/true, {}}); }

void TableWriter::print(std::ostream &OS) const {
  std::vector<std::size_t> Widths(Headers.size(), 0);
  for (std::size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const Row &R : Rows)
    for (std::size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto printLine = [&](const std::vector<std::string> &Cells) {
    OS << "|";
    for (std::size_t I = 0; I != Headers.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << " " << Cell << std::string(Widths[I] - Cell.size(), ' ') << " |";
    }
    OS << "\n";
  };
  auto printRule = [&] {
    OS << "+";
    for (std::size_t Width : Widths)
      OS << std::string(Width + 2, '-') << "+";
    OS << "\n";
  };

  printRule();
  printLine(Headers);
  printRule();
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      printRule();
    else
      printLine(R.Cells);
  }
  printRule();
}

std::string TableWriter::num(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string TableWriter::num(std::uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%llu",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string TableWriter::percent(double Fraction, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f%%", Precision, Fraction * 100.0);
  return Buffer;
}
