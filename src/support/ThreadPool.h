//===- support/ThreadPool.h - Work-stealing sweep executor ------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for running independent simulations
/// concurrently. Design-space sweeps (AutoTuner candidates, serving-policy
/// comparisons, ablation grids) are embarrassingly parallel: every point
/// builds its own EventQueue/Memory3D, so simulations never share mutable
/// state and determinism is free - the pool only decides *which thread*
/// runs a point, never the order of events inside one.
///
/// parallelFor(N, Body) shards the index space across workers; each worker
/// pops from the back of its own shard and steals from the front of
/// others, so imbalanced sweeps (e.g. large problem sizes clustered at one
/// end of a grid) still finish together. The calling thread participates
/// as a worker, so ThreadPool(1) runs everything inline with zero
/// synchronization - callers never need a special single-threaded path.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_THREADPOOL_H
#define FFT3D_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fft3d {

/// Fixed-size pool of worker threads executing index-space loops.
class ThreadPool {
public:
  /// Creates a pool that runs loops on \p Threads threads (including the
  /// caller). \p Threads == 1 executes inline and spawns nothing;
  /// \p Threads == 0 is promoted to 1.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that execute loop bodies (>= 1).
  unsigned threadCount() const { return NumThreads; }

  /// What one executor (caller or worker) did during the last
  /// parallelFor: how many iterations it ran and how long it spent inside
  /// loop bodies. Sweep benchmarks report these to show whether a flat
  /// speedup is an imbalance problem (one busy slot) or an oversubscribed
  /// machine (all slots busy, no wall-time win).
  struct WorkerStats {
    std::uint64_t Tasks = 0;
    double BusySeconds = 0.0;
  };

  /// Per-executor stats for the most recent parallelFor (index 0 is the
  /// calling thread). Valid once parallelFor returns; reset by the next
  /// loop.
  const std::vector<WorkerStats> &lastRunStats() const { return RunStats; }

  /// Runs Body(I) for every I in [0, N), distributing indices across the
  /// pool. Blocks until all iterations finish. If any iteration throws,
  /// the first exception is rethrown here after the loop drains; the
  /// remaining iterations still run. Not reentrant: Body must not call
  /// parallelFor on the same pool.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Body);

  /// Picks a thread count for "--threads N" style flags: N itself if
  /// nonzero, else the hardware concurrency (minimum 1).
  static unsigned resolveThreads(unsigned Requested);

  /// Best-effort count of physical cores (not SMT threads): unique
  /// (physical id, core id) pairs from /proc/cpuinfo, falling back to
  /// hardware_concurrency when the file is absent or unparseable.
  /// Benchmarks use this to mark scaling rows that oversubscribe the
  /// machine, where a flat speedup is expected rather than a regression.
  static unsigned physicalCoresEstimate();

private:
  /// One worker's share of the current loop's indices. Owners pop from
  /// the back; thieves steal from the front.
  struct Shard {
    std::mutex M;
    std::deque<std::size_t> Indices;
  };

  void workerLoop(unsigned Me);
  void runShard(unsigned Me);
  void runInline(std::size_t N, const std::function<void(std::size_t)> &Body);
  bool popOwn(unsigned Me, std::size_t &Index);
  bool stealOther(unsigned Me, std::size_t &Index);
  void recordException();

  unsigned NumThreads;
  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// One slot per executor; each slot is written only by its owner while
  /// a loop runs and read only after parallelFor returns.
  std::vector<WorkerStats> RunStats;

  // Loop state. Generation increments per parallelFor; workers sleep on
  // WakeCv until the generation they last served changes.
  std::mutex WakeMutex;
  std::condition_variable WakeCv;
  std::uint64_t Generation = 0;
  bool ShuttingDown = false;
  const std::function<void(std::size_t)> *Body = nullptr;

  // Completion tracking for the loop in flight.
  std::mutex WaitMutex;
  std::condition_variable DoneCv;
  std::size_t Remaining = 0;
  std::size_t IdleWorkers = 0;
  std::exception_ptr FirstError;
};

} // namespace fft3d

#endif // FFT3D_SUPPORT_THREADPOOL_H
