//===- support/Stats.h - Counters and running statistics -------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics helpers shared by the memory simulator and the
/// benchmark harness: named counters, a running mean/min/max accumulator,
/// and a fixed-bucket histogram for latency distributions.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SUPPORT_STATS_H
#define FFT3D_SUPPORT_STATS_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fft3d {

/// Accumulates count/sum/min/max/mean of a stream of samples.
class RunningStat {
public:
  void addSample(double Value);

  std::uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }

  /// Merges another accumulator into this one.
  void merge(const RunningStat &Other);

  void reset();

private:
  std::uint64_t Count = 0;
  double Sum = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bucket histogram over [0, BucketWidth * NumBuckets); samples
/// beyond the last bucket accumulate in an overflow bucket.
class Histogram {
public:
  Histogram(double BucketWidth, unsigned NumBuckets);

  void addSample(double Value);

  std::uint64_t bucketCount(unsigned Bucket) const;
  std::uint64_t overflowCount() const { return Overflow; }
  std::uint64_t totalCount() const { return Total; }
  unsigned numBuckets() const { return static_cast<unsigned>(Buckets.size()); }
  double bucketWidth() const { return Width; }

  /// Returns the smallest value V such that at least \p Fraction of samples
  /// are <= V, resolved to bucket granularity. \p Fraction in [0, 1].
  double percentile(double Fraction) const;

  /// Folds \p Other into this histogram bucket-wise. Both histograms must
  /// share the same width and bucket count.
  void merge(const Histogram &Other);

private:
  double Width;
  std::vector<std::uint64_t> Buckets;
  std::uint64_t Overflow = 0;
  std::uint64_t Total = 0;
};

/// A named monotonically increasing counter, collected in registration
/// order so statistic dumps are deterministic.
struct Counter {
  std::string Name;
  std::uint64_t Value = 0;

  Counter &operator+=(std::uint64_t Delta) {
    Value += Delta;
    return *this;
  }
  Counter &operator++() {
    ++Value;
    return *this;
  }
};

} // namespace fft3d

#endif // FFT3D_SUPPORT_STATS_H
