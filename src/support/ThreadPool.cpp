//===- support/ThreadPool.cpp - Work-stealing sweep executor --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

unsigned ThreadPool::resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads)
    : NumThreads(std::max(1u, Threads)) {
  if (NumThreads == 1)
    return;
  Shards.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(NumThreads - 1);
  // The caller participates as shard 0; workers take shards 1..N-1.
  for (unsigned I = 1; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(WakeMutex);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &TheBody) {
  if (N == 0)
    return;
  if (NumThreads == 1 || N == 1) {
    for (std::size_t I = 0; I != N; ++I)
      TheBody(I);
    return;
  }

  {
    std::lock_guard<std::mutex> L(WaitMutex);
    Remaining = N;
    IdleWorkers = 0;
    FirstError = nullptr;
  }
  // Contiguous blocks per shard: neighbouring sweep points usually share
  // problem size, so owners keep similar-cost work and thieves rebalance
  // the rest.
  for (unsigned S = 0; S != NumThreads; ++S) {
    const std::size_t Lo = N * S / NumThreads;
    const std::size_t Hi = N * (S + 1) / NumThreads;
    std::lock_guard<std::mutex> L(Shards[S]->M);
    for (std::size_t I = Lo; I != Hi; ++I)
      Shards[S]->Indices.push_back(I);
  }
  {
    std::lock_guard<std::mutex> L(WakeMutex);
    Body = &TheBody;
    ++Generation;
  }
  WakeCv.notify_all();

  runShard(0);

  {
    // Wait for every iteration to finish *and* every worker to leave
    // runShard, so no worker still reads Body or the shards when this
    // frame (and TheBody) goes away.
    std::unique_lock<std::mutex> L(WaitMutex);
    DoneCv.wait(L, [this] {
      return Remaining == 0 && IdleWorkers == Workers.size();
    });
    if (FirstError)
      std::rethrow_exception(FirstError);
  }
}

void ThreadPool::workerLoop(unsigned Me) {
  std::uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(WakeMutex);
      WakeCv.wait(L, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    runShard(Me);
    {
      std::lock_guard<std::mutex> L(WaitMutex);
      ++IdleWorkers;
      if (Remaining == 0 && IdleWorkers == Workers.size())
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::runShard(unsigned Me) {
  std::size_t Index;
  while (popOwn(Me, Index) || stealOther(Me, Index)) {
    try {
      (*Body)(Index);
    } catch (...) {
      recordException();
    }
    std::lock_guard<std::mutex> L(WaitMutex);
    if (--Remaining == 0)
      DoneCv.notify_all();
  }
}

bool ThreadPool::popOwn(unsigned Me, std::size_t &Index) {
  Shard &S = *Shards[Me];
  std::lock_guard<std::mutex> L(S.M);
  if (S.Indices.empty())
    return false;
  Index = S.Indices.back();
  S.Indices.pop_back();
  return true;
}

bool ThreadPool::stealOther(unsigned Me, std::size_t &Index) {
  for (unsigned Step = 1; Step != NumThreads; ++Step) {
    Shard &S = *Shards[(Me + Step) % NumThreads];
    std::lock_guard<std::mutex> L(S.M);
    if (!S.Indices.empty()) {
      Index = S.Indices.front();
      S.Indices.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::recordException() {
  std::lock_guard<std::mutex> L(WaitMutex);
  if (!FirstError)
    FirstError = std::current_exception();
}
