//===- support/ThreadPool.cpp - Work-stealing sweep executor --------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace fft3d;

unsigned ThreadPool::resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ThreadPool::physicalCoresEstimate() {
  std::ifstream In("/proc/cpuinfo");
  if (In) {
    // Each processor stanza names the package ("physical id") and the
    // core within it ("core id"); SMT siblings share both, so distinct
    // pairs count physical cores.
    std::set<std::pair<long, long>> Cores;
    long PhysicalId = -1;
    std::string Line;
    const auto FieldValue = [](const std::string &S) -> long {
      const std::size_t Colon = S.find(':');
      if (Colon == std::string::npos)
        return -1;
      try {
        return std::stol(S.substr(Colon + 1));
      } catch (...) {
        return -1;
      }
    };
    while (std::getline(In, Line)) {
      if (Line.compare(0, 11, "physical id") == 0)
        PhysicalId = FieldValue(Line);
      else if (Line.compare(0, 7, "core id") == 0)
        Cores.emplace(PhysicalId, FieldValue(Line));
    }
    if (!Cores.empty())
      return static_cast<unsigned>(Cores.size());
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads)
    : NumThreads(std::max(1u, Threads)) {
  if (NumThreads == 1)
    return;
  Shards.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(NumThreads - 1);
  // The caller participates as shard 0; workers take shards 1..N-1.
  for (unsigned I = 1; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(WakeMutex);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &TheBody) {
  if (N == 0)
    return;
  RunStats.assign(NumThreads, WorkerStats{});
  if (NumThreads == 1 || N == 1) {
    runInline(N, TheBody);
    return;
  }

  {
    std::lock_guard<std::mutex> L(WaitMutex);
    Remaining = N;
    IdleWorkers = 0;
    FirstError = nullptr;
  }
  // Contiguous blocks per shard: neighbouring sweep points usually share
  // problem size, so owners keep similar-cost work and thieves rebalance
  // the rest.
  for (unsigned S = 0; S != NumThreads; ++S) {
    const std::size_t Lo = N * S / NumThreads;
    const std::size_t Hi = N * (S + 1) / NumThreads;
    std::lock_guard<std::mutex> L(Shards[S]->M);
    for (std::size_t I = Lo; I != Hi; ++I)
      Shards[S]->Indices.push_back(I);
  }
  {
    std::lock_guard<std::mutex> L(WakeMutex);
    Body = &TheBody;
    ++Generation;
  }
  WakeCv.notify_all();

  runShard(0);

  {
    // Wait for every iteration to finish *and* every worker to leave
    // runShard, so no worker still reads Body or the shards when this
    // frame (and TheBody) goes away.
    std::unique_lock<std::mutex> L(WaitMutex);
    DoneCv.wait(L, [this] {
      return Remaining == 0 && IdleWorkers == Workers.size();
    });
    if (FirstError)
      std::rethrow_exception(FirstError);
  }
}

void ThreadPool::workerLoop(unsigned Me) {
  std::uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(WakeMutex);
      WakeCv.wait(L, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    runShard(Me);
    {
      std::lock_guard<std::mutex> L(WaitMutex);
      ++IdleWorkers;
      if (Remaining == 0 && IdleWorkers == Workers.size())
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::runInline(std::size_t N,
                           const std::function<void(std::size_t)> &TheBody) {
  WorkerStats &Mine = RunStats[0];
  const auto Start = std::chrono::steady_clock::now();
  for (std::size_t I = 0; I != N; ++I)
    TheBody(I);
  Mine.Tasks = N;
  Mine.BusySeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
}

void ThreadPool::runShard(unsigned Me) {
  WorkerStats &Mine = RunStats[Me];
  std::size_t Index;
  while (popOwn(Me, Index) || stealOther(Me, Index)) {
    const auto Start = std::chrono::steady_clock::now();
    try {
      (*Body)(Index);
    } catch (...) {
      recordException();
    }
    // Iterations are whole simulations; a clock pair per task is noise.
    ++Mine.Tasks;
    Mine.BusySeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
    std::lock_guard<std::mutex> L(WaitMutex);
    if (--Remaining == 0)
      DoneCv.notify_all();
  }
}

bool ThreadPool::popOwn(unsigned Me, std::size_t &Index) {
  Shard &S = *Shards[Me];
  std::lock_guard<std::mutex> L(S.M);
  if (S.Indices.empty())
    return false;
  Index = S.Indices.back();
  S.Indices.pop_back();
  return true;
}

bool ThreadPool::stealOther(unsigned Me, std::size_t &Index) {
  for (unsigned Step = 1; Step != NumThreads; ++Step) {
    Shard &S = *Shards[(Me + Step) % NumThreads];
    std::lock_guard<std::mutex> L(S.M);
    if (!S.Indices.empty()) {
      Index = S.Indices.front();
      S.Indices.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::recordException() {
  std::lock_guard<std::mutex> L(WaitMutex);
  if (!FirstError)
    FirstError = std::current_exception();
}
