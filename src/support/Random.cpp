//===- support/Random.cpp - Deterministic random number source ------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace fft3d;

static std::uint64_t rotl(std::uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

/// SplitMix64 step, used only to expand the user seed into full state.
static std::uint64_t splitMix64(std::uint64_t &State) {
  State += 0x9E3779B97F4A7C15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

Rng::Rng(std::uint64_t Seed) {
  std::uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

std::uint64_t Rng::next() {
  const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const std::uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

std::uint64_t Rng::nextBelow(std::uint64_t Bound) {
  assert(Bound != 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t Threshold = -Bound % Bound;
  for (;;) {
    const std::uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

double Rng::nextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double Lo, double Hi) {
  return Lo + (Hi - Lo) * nextDouble();
}

double Rng::nextGaussian() {
  // Irwin-Hall approximation: sum of 12 uniforms has variance 1, mean 6.
  double Sum = 0.0;
  for (int I = 0; I != 12; ++I)
    Sum += nextDouble();
  return Sum - 6.0;
}
