//===- sim/ShardedEventQueue.h - Vault-sharded conservative PDES -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative parallel discrete-event engine specialised for the 3D
/// memory's topology: V independent vault shards plus one host shard (the
/// phase engine, fault redirects, request numbering), coupled only through
/// the crossbar/TSV access path. Each shard owns a private ladder
/// EventQueue; shards advance together through bounded time windows
///
///     [T, T + W)   with W = the cross-shard lookahead,
///
/// where W is the minimum latency of any vault -> host interaction (the
/// device's fixed TSV + crossbar access latency, see
/// conservativeLookahead() in mem3d/Timing.h). Within a window every
/// shard can run independently: the only cross-shard edges are
///
///   host -> vault   request injection, same-timestamp. Handled by
///                   ordering sub-phases inside the window: the host shard
///                   runs first, its mail is drained before vault shards
///                   run the same window.
///   vault -> host   completions, always >= W in the future. Posted into
///                   per-vault outboxes and merged at the window boundary;
///                   they cannot land inside the current window, so vault
///                   shards never have to see each other's progress.
///
/// There are no vault -> vault edges (vaults only constrain themselves).
///
/// Determinism is structural, not incidental: outboxes are merged in
/// (When, vault, per-vault sequence) order via a stable sort, so the host
/// observes completions in a canonical total order that is independent of
/// thread count and OS scheduling. The same code path runs at
/// SimThreads = 1 (one worker walking all shards), so the single-threaded
/// engine is not a separate implementation that could drift.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_SHARDEDEVENTQUEUE_H
#define FFT3D_SIM_SHARDEDEVENTQUEUE_H

#include "sim/EventQueue.h"
#include "support/Units.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace fft3d {

class ThreadPool;

/// Windowed conservative PDES over one host shard + N vault shards.
class ShardedEventQueue {
public:
  /// \p NumShards vault shards, cross-shard lookahead \p Lookahead (must
  /// be > 0: a zero lookahead admits no window and the conservative
  /// protocol cannot make progress), \p SimThreads worker threads (0 is
  /// treated as 1; clamped to NumShards). \p MailboxSoftCap is the
  /// per-shard inbox occupancy beyond which postToShard counts overflow
  /// events (delivery still happens; the counter makes backpressure
  /// observable to tests and tuning).
  ShardedEventQueue(unsigned NumShards, Picos Lookahead, unsigned SimThreads,
                    std::size_t MailboxSoftCap = 4096);
  ~ShardedEventQueue();

  ShardedEventQueue(const ShardedEventQueue &) = delete;
  ShardedEventQueue &operator=(const ShardedEventQueue &) = delete;

  /// The host shard's queue: phase-engine wakeups, submissions, merged
  /// completions. Safe to schedule into between run() calls and from host
  /// events during a run.
  EventQueue &host() { return Host; }
  const EventQueue &host() const { return Host; }

  /// Shard \p S's private queue. Only that shard's worker may touch it
  /// while run() is in flight.
  EventQueue &shard(unsigned S);

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  unsigned threadCount() const { return ThreadCount; }
  Picos lookahead() const { return Lookahead; }
  /// Host-shard clock; the canonical "simulation time" for callers.
  Picos now() const { return Host.now(); }

  /// Sends \p A to shard \p S at time \p When. Host-side only (from host
  /// events or between windows); timestamps per inbox must be
  /// nondecreasing, which the host guarantees by executing in time order.
  void postToShard(unsigned S, Picos When, EventQueue::Action A);

  /// Sends \p A to the host at time \p When, from shard \p S's executing
  /// events only. \p When must be at least one full lookahead ahead of
  /// the current window start - asserted, because this is exactly the
  /// conservative-correctness condition.
  void postToHost(unsigned S, Picos When, EventQueue::Action A);

  /// Hook run by worker 0 at every window boundary, before outbox merge,
  /// while all other workers are parked at the barrier. The observability
  /// layer uses it to absorb per-vault tracer shadows in vault order
  /// without the sim layer depending on obs.
  void setBarrierHook(std::function<void()> Hook) {
    BarrierHook = std::move(Hook);
  }

  /// Runs until every shard queue and mailbox drains. Returns the number
  /// of events executed across all shards (host included). Callable
  /// repeatedly; the clocks persist across calls like EventQueue::run.
  std::uint64_t run();

  /// Number of windows the engine has stepped through (diagnostics).
  std::uint64_t windows() const { return Windows; }
  /// postToShard calls that found the inbox above the soft cap.
  std::uint64_t mailboxOverflows() const { return MailboxOverflows; }

private:
  struct Mail {
    Picos When;
    EventQueue::Action A;
  };

  /// One vault shard, padded so adjacent shards never share a cache line
  /// while their workers run concurrently.
  struct alignas(64) Shard {
    EventQueue Q;
    /// Host -> shard mail, appended host-side, drained by the shard's
    /// worker at the start of its window sub-phase.
    std::vector<Mail> Inbox;
    /// Shard -> host mail in per-vault (When, seq) order, merged by
    /// worker 0 at the window boundary.
    std::vector<Mail> Outbox;
    std::uint64_t EventsRun = 0;
  };

  /// Sense-reversing spin barrier; acquire/release so every write before
  /// arrival is visible after release. Spinning (with yields) beats a
  /// futex here: windows are microseconds wide and wakeup latency would
  /// dominate.
  class SpinBarrier {
  public:
    explicit SpinBarrier(unsigned Parties);
    void arriveAndWait();

  private:
    const unsigned Parties;
    /// Spins before the first yield: generous when every party can hold
    /// a core, minimal when the machine is oversubscribed (spinning then
    /// only delays the thread whose turn it is).
    const unsigned SpinLimit;
    std::atomic<unsigned> Arrived{0};
    std::atomic<unsigned> Phase{0};
  };

  void workerLoop(unsigned Worker);
  /// Worker 0 only: merge all outboxes into the host queue in
  /// (When, vault, seq) order, then pick the next window. Sets Done when
  /// nothing is pending anywhere.
  void planWindow();

  const Picos Lookahead;
  const std::size_t MailboxSoftCap;
  unsigned ThreadCount;

  EventQueue Host;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Internal pool sized exactly to ThreadCount so parallelFor(ThreadCount)
  /// gives every worker one index; nullptr when ThreadCount == 1.
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<SpinBarrier> Barrier;
  std::function<void()> BarrierHook;

  /// Scratch for the boundary merge (worker 0 only).
  struct MergeKey {
    Picos When;
    std::uint32_t Vault;
    std::uint32_t Index;
  };
  std::vector<MergeKey> MergeScratch;

  Picos WindowEnd = 0;
  bool Done = false;
  std::uint64_t Windows = 0;
  std::uint64_t MailboxOverflows = 0;
  std::uint64_t HostEventsRun = 0;
};

} // namespace fft3d

#endif // FFT3D_SIM_SHARDEDEVENTQUEUE_H
