//===- sim/ShardedEventQueue.h - Vault-sharded conservative PDES -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative parallel discrete-event engine specialised for the 3D
/// memory's topology: V independent vault shards plus one host shard (the
/// phase engine, fault redirects, request numbering), coupled only through
/// the crossbar/TSV access path. Each shard owns a private ladder
/// EventQueue; shards advance together through bounded time windows
///
///     [T, T + W)
///
/// whose width W is no longer the single worst-case constant of the first
/// engine revision (the device's fixed TSV + crossbar access latency).
/// Three mechanisms stretch it:
///
///  - **Per-shard distance-based lookahead.** Every shard may export a
///    bound callback (setShardBound) returning a lower bound on the
///    earliest time the shard could post mail to the host, given its
///    current queue state. The memory controllers derive a queue-aware
///    bound (wake time, bus reservations, minimum burst length - see
///    mem3d/Timing.h), so a vault with a deep pipeline or an idle queue
///    admits a much wider window than the static AccessLatency.
///  - **Adaptive host-capped widening.** The host sub-phase runs against a
///    *dynamic* cap: it starts at the minimum shard bound and only
///    shrinks when the host actually posts mail, by that mail's declared
///    effect bound (postToShard's EffectBound, >= When + lookahead).
///    Host events that submit nothing - pacing wakeups, bookkeeping -
///    never narrow the window, so deep-pipeline stretches amortize one
///    barrier round over many events.
///  - **Barrier-free streaming.** When the host declares itself quiescent
///    (setHostQuiescentUntil: its events will not post to shards before
///    the given time), vault shards free-run to that horizon in a single
///    window with no host participation, then rendezvous once; the
///    deferred completions merge in canonical order and the host drains
///    them in the next window.
///
/// The only cross-shard edges are
///
///   host -> vault   request injection, same-timestamp. Handled by
///                   ordering sub-phases inside the window: the host runs
///                   first, its mail is drained before vault shards run
///                   the same window.
///   vault -> host   completions, posted into per-vault outboxes and
///                   merged at the window boundary. In bounded windows
///                   they land at or beyond the window end by the
///                   lookahead argument above; in streaming windows they
///                   may land anywhere beyond the host's executed
///                   horizon, which is exactly what the quiescence
///                   declaration makes safe.
///
/// There are no vault -> vault edges (vaults only constrain themselves).
///
/// Determinism is structural, not incidental: outboxes are merged in
/// (When, vault, per-vault sequence) order via a stable sort, so the host
/// observes completions in a canonical total order that is independent of
/// thread count and OS scheduling. Window placement depends only on
/// simulation state (bounds are pure functions of shard state read while
/// every worker is parked), so the window sequence - and therefore every
/// merge batch - is identical for every SimThreads value. The same code
/// path runs at SimThreads = 1, so the single-threaded engine is not a
/// separate implementation that could drift.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_SHARDEDEVENTQUEUE_H
#define FFT3D_SIM_SHARDEDEVENTQUEUE_H

#include "sim/EventQueue.h"
#include "support/Units.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

namespace fft3d {

class ThreadPool;

/// Windowed conservative PDES over one host shard + N vault shards.
class ShardedEventQueue {
public:
  /// "No bound": the shard cannot affect the host from its current state.
  static constexpr Picos NoBound = std::numeric_limits<Picos>::max();

  /// Lower bound on the earliest time a shard could post mail to the
  /// host, given \p QueueNext = the timestamp of its earliest pending
  /// queue event (NoBound when the queue is empty). Must be
  /// >= QueueNext + lookahead; pending inbox mail is accounted for by
  /// the engine separately, per mail.
  using ShardBound = std::function<Picos(Picos QueueNext)>;

  /// Aggregate window/barrier accounting for one engine (monotonic over
  /// the engine's lifetime; diff snapshots around a run for per-phase
  /// numbers).
  struct WindowStats {
    /// Number of WidthBuckets cells; bucket I counts bounded windows
    /// whose width fell in [I, I+1) lookaheads, the last bucket holding
    /// everything wider.
    static constexpr unsigned NumWidthBuckets = 64;

    std::uint64_t Windows = 0;
    /// Barrier rounds workers synchronized through (2 per window).
    std::uint64_t Barriers = 0;
    /// Windows run in barrier-free streaming mode (host quiescent).
    std::uint64_t StreamWindows = 0;
    std::uint64_t MailboxOverflows = 0;
    /// postToHost calls that violated the lookahead contract (always a
    /// bug; fatal in debug, counted here so release tests can gate on 0).
    std::uint64_t LookaheadViolations = 0;
    /// Sum/max of bounded-window widths in picoseconds (streaming
    /// windows are unbounded and excluded).
    Picos WidthSumPs = 0;
    Picos WidthMaxPs = 0;
    std::array<std::uint64_t, NumWidthBuckets> WidthBuckets{};
  };

  /// \p NumShards vault shards, static cross-shard lookahead floor
  /// \p Lookahead (must be > 0: a zero lookahead admits no window and
  /// the conservative protocol cannot make progress), \p SimThreads
  /// worker threads (0 is treated as 1; clamped to NumShards).
  /// \p MailboxSoftCap is the per-shard inbox occupancy beyond which
  /// postToShard counts overflow events (delivery still happens; the
  /// counter makes backpressure observable to tests and tuning).
  ShardedEventQueue(unsigned NumShards, Picos Lookahead, unsigned SimThreads,
                    std::size_t MailboxSoftCap = 4096);
  ~ShardedEventQueue();

  ShardedEventQueue(const ShardedEventQueue &) = delete;
  ShardedEventQueue &operator=(const ShardedEventQueue &) = delete;

  /// The host shard's queue: phase-engine wakeups, submissions, merged
  /// completions. Safe to schedule into between run() calls and from host
  /// events during a run.
  EventQueue &host() { return Host; }
  const EventQueue &host() const { return Host; }

  /// Shard \p S's private queue. Only that shard's worker may touch it
  /// while run() is in flight.
  EventQueue &shard(unsigned S);

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  unsigned threadCount() const { return ThreadCount; }
  Picos lookahead() const { return Lookahead; }
  /// Host-shard clock; the canonical "simulation time" for callers.
  Picos now() const { return Host.now(); }

  /// Sends \p A to shard \p S at time \p When. Host-side only (from host
  /// events or between windows); timestamps per inbox must be
  /// nondecreasing, which the host guarantees by executing in time order.
  /// \p EffectBound is a lower bound on the earliest host-visible effect
  /// of this mail (the completion time of the request it carries); 0
  /// means "unknown", which the engine treats as the conservative
  /// When + lookahead. Posting inside a declared quiescent stretch is a
  /// contract violation (fatal).
  void postToShard(unsigned S, Picos When, EventQueue::Action A,
                   Picos EffectBound = 0);

  /// Sends \p A to the host at time \p When, from shard \p S's executing
  /// events only. \p When must be at least the window end (bounded
  /// windows) or beyond the host's executed horizon (streaming windows) -
  /// exactly the conservative-correctness condition. Violations are fatal
  /// in debug builds and counted in WindowStats::LookaheadViolations.
  void postToHost(unsigned S, Picos When, EventQueue::Action A);

  /// Registers \p Fn as shard \p S's distance-based lookahead oracle
  /// (null restores the static default). Called by worker 0 at window
  /// planning time, while every other worker is parked - the callback
  /// may read shard-owned simulation state but must be a pure function
  /// of it.
  void setShardBound(unsigned S, ShardBound Fn);

  /// Declares the host quiescent: host events executing before \p Until
  /// promise not to call postToShard. Vault shards may then free-run to
  /// \p Until without any barrier. 0 clears the declaration (run() also
  /// clears it on return). Callable from host events mid-run.
  void setHostQuiescentUntil(Picos Until) { HostQuiescentUntil = Until; }

  /// Hook run by worker 0 at every window boundary, before outbox merge,
  /// while all other workers are parked at the barrier. The observability
  /// layer uses it to absorb per-vault tracer shadows in vault order
  /// without the sim layer depending on obs.
  void setBarrierHook(std::function<void()> Hook) {
    BarrierHook = std::move(Hook);
  }

  /// Runs until every shard queue and mailbox drains. Returns the number
  /// of events executed across all shards (host included). Callable
  /// repeatedly; the clocks persist across calls like EventQueue::run.
  std::uint64_t run();

  /// Window/barrier accounting (monotonic across run() calls).
  const WindowStats &windowStats() const { return Stats; }
  /// Number of windows the engine has stepped through (diagnostics).
  std::uint64_t windows() const { return Stats.Windows; }
  /// postToShard calls that found the inbox above the soft cap.
  std::uint64_t mailboxOverflows() const { return Stats.MailboxOverflows; }

private:
  struct Mail {
    Picos When;
    /// Lower bound on the mail's earliest host-visible effect.
    Picos EffectBound;
    EventQueue::Action A;
  };

  /// One vault shard, padded so adjacent shards never share a cache line
  /// while their workers run concurrently.
  struct alignas(64) Shard {
    EventQueue Q;
    /// Host -> shard mail, appended host-side, consumed from Head by the
    /// shard's worker at the start of its window sub-phase (index-based
    /// so a partial drain never slides the vector).
    std::vector<Mail> Inbox;
    std::size_t InboxHead = 0;
    /// Shard -> host mail in per-vault (When, seq) order, merged by
    /// worker 0 at the window boundary.
    std::vector<Mail> Outbox;
    ShardBound Bound;
    std::uint64_t EventsRun = 0;
    /// Lookahead-contract violations raised by this shard's worker;
    /// aggregated into WindowStats at the next boundary (single-writer,
    /// read only while the worker is parked).
    std::uint64_t Violations = 0;

    std::size_t inboxPending() const { return Inbox.size() - InboxHead; }
  };

  /// Sense-reversing spin barrier; acquire/release so every write before
  /// arrival is visible after release. Spinning (with yields) beats a
  /// futex here: windows are microseconds wide and wakeup latency would
  /// dominate.
  class SpinBarrier {
  public:
    explicit SpinBarrier(unsigned Parties);
    void arriveAndWait();

  private:
    const unsigned Parties;
    /// Spins before the first yield: generous when every party can hold
    /// a core, minimal when the machine is oversubscribed (spinning then
    /// only delays the thread whose turn it is).
    const unsigned SpinLimit;
    std::atomic<unsigned> Arrived{0};
    std::atomic<unsigned> Phase{0};
  };

  void workerLoop(unsigned Worker);
  /// Worker 0 only, between the two window barriers: run the boundary
  /// hook, merge all outboxes into the host queue in (When, vault, seq)
  /// order, pick the next window, and - unless the window streams - run
  /// the host sub-phase against the dynamic cap. Sets Done when nothing
  /// is pending anywhere.
  void planAndRunHost();
  /// Earliest host-visible effect shard \p S admits from its current
  /// state (queue bound via the shard's oracle, pending inbox mail via
  /// the per-mail effect bounds).
  Picos shardEffectBound(const Shard &S) const;
  void recordWindowWidth(Picos T, Picos End);

  const Picos Lookahead;
  const std::size_t MailboxSoftCap;
  unsigned ThreadCount;

  EventQueue Host;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Internal pool sized exactly to ThreadCount so parallelFor(ThreadCount)
  /// gives every worker one index; nullptr when ThreadCount == 1.
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<SpinBarrier> Barrier;
  std::function<void()> BarrierHook;

  /// Scratch for the boundary merge (worker 0 only).
  struct MergeKey {
    Picos When;
    std::uint32_t Vault;
    std::uint32_t Index;
  };
  std::vector<MergeKey> MergeScratch;

  Picos WindowEnd = 0;
  /// Dynamic host cap while the host sub-phase runs; becomes WindowEnd.
  Picos HostCap = 0;
  /// Time through which host events have already executed; the floor any
  /// streamed completion must clear.
  Picos HostHorizon = 0;
  /// Nonzero while the host promises not to post to shards before this.
  Picos HostQuiescentUntil = 0;
  /// True while the current window free-runs vault shards (host parked).
  bool Streaming = false;
  bool Done = false;
  WindowStats Stats;
  std::uint64_t HostEventsRun = 0;
};

} // namespace fft3d

#endif // FFT3D_SIM_SHARDEDEVENTQUEUE_H
