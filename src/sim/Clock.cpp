//===- sim/Clock.cpp - Clock-domain helpers -------------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "sim/Clock.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

Clock::Clock(Picos Period) : Period(Period) {
  assert(Period != 0 && "zero clock period");
}

Clock Clock::fromMHz(double MHz) { return Clock(periodFromMHz(MHz)); }

double Clock::frequencyMHz() const {
  return 1e6 / static_cast<double>(Period);
}

Picos Clock::nextEdgeAtOrAfter(Picos T) const {
  return roundUp(T, Period);
}
