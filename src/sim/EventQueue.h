//===- sim/EventQueue.h - Discrete-event simulation core --------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal discrete-event simulation kernel. The 3D-memory model and the
/// FFT-processor phase engine schedule callbacks at absolute picosecond
/// timestamps; the queue runs them in (time, insertion-order) order, which
/// makes simulations fully deterministic.
///
/// Internally the queue is a two-level calendar ("ladder") keyed on
/// picosecond buckets rather than one big binary heap:
///
///  - a *near* ring of 256 buckets, each 2048 ps wide (a ~524 ns horizon
///    that comfortably covers the device's command/beat timing), holding
///    small per-bucket min-heaps of 24-byte {When, Seq, slot} keys with a
///    bitmask of occupied buckets, and
///  - a *far* min-heap for events beyond the horizon (refresh periods,
///    serving-layer arrivals), migrated into the ring as the clock
///    advances.
///
/// Callbacks live in a pooled slab indexed by the key's slot, so the
/// ordering structures only ever move small PODs, and the callback type
/// (InlineFunction) keeps captures inline - steady-state scheduling does
/// not allocate. The (time, insertion-order) total order is preserved
/// exactly, so results are byte-identical to the previous binary-heap
/// implementation.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_EVENTQUEUE_H
#define FFT3D_SIM_EVENTQUEUE_H

#include "sim/InlineFunction.h"
#include "support/Units.h"

#include <array>
#include <cstdint>
#include <vector>

namespace fft3d {

/// Priority queue of timed callbacks with a monotonically advancing clock.
class EventQueue {
public:
  /// The inline capacity fits the hottest capture in the simulator (a
  /// completion callback + MemRequest + timestamp); larger captures fall
  /// back to the heap transparently.
  using Action = InlineFunction<void(), 88>;

  /// Current simulation time. Starts at zero.
  Picos now() const { return Now; }

  /// Schedules \p A at absolute time \p When. \p When must not be in the
  /// past. Events at equal timestamps run in insertion order.
  void scheduleAt(Picos When, Action A);

  /// Schedules \p A \p Delay picoseconds from now.
  void scheduleAfter(Picos Delay, Action A);

  /// Returns true if no events remain.
  bool empty() const { return Count == 0; }

  /// Number of pending events.
  std::size_t size() const { return Count; }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains. Returns the number of events run.
  /// \p MaxEvents guards against runaway simulations (0 = unlimited).
  std::uint64_t run(std::uint64_t MaxEvents = 0);

  /// Runs events with timestamps <= \p Until (inclusive); the clock ends at
  /// max(now, Until). Returns the number of events run.
  std::uint64_t runUntil(Picos Until);

  /// Runs events with timestamps strictly before \p Before, including any
  /// scheduled while running. Unlike runUntil, the clock is left at the
  /// last executed event, not advanced to the window edge - the sharded
  /// engine needs now() to stay meaningful across empty windows. Returns
  /// the number of events run.
  std::uint64_t runWhile(Picos Before);

  /// Timestamp of the earliest pending event; the queue must be non-empty.
  Picos nextEventTime() const { return nextWhen(); }

private:
  static constexpr unsigned NumBuckets = 256;
  static constexpr unsigned BucketMask = NumBuckets - 1;
  /// log2 of the bucket width in picoseconds (2048 ps; a bit over one TSV
  /// period, so back-to-back command events land in neighbouring buckets).
  static constexpr unsigned DivShift = 11;
  static constexpr unsigned WordsInMask = NumBuckets / 64;

  /// Ordering key; the callback itself stays in the slab at Slot.
  struct Key {
    Picos When;
    std::uint64_t Seq;
    std::uint32_t Slot;
  };
  /// Heap comparator: "A runs after B" (std:: heap algorithms build
  /// max-heaps, so this yields the earliest event at the front).
  struct KeyAfter {
    bool operator()(const Key &A, const Key &B) const {
      if (A.When != B.When)
        return A.When > B.When;
      return A.Seq > B.Seq;
    }
  };

  std::uint32_t allocSlot(Action &&A);
  void insertKey(const Key &K);
  /// Advances the ring origin to \p Division, migrating far events that
  /// the wider horizon now covers.
  void advanceTo(std::uint64_t Division);
  /// First occupied bucket at or (cyclically) after \p Start; near events
  /// must exist.
  unsigned firstBucketFrom(unsigned Start) const;
  /// Removes and returns the earliest pending key.
  Key popEarliest();
  /// Timestamp of the earliest pending event.
  Picos nextWhen() const;

  Picos Now = 0;
  std::uint64_t NextSequence = 0;
  std::size_t Count = 0;
  /// Division (When >> DivShift) the near ring starts at; the ring covers
  /// [CurDiv, CurDiv + NumBuckets).
  std::uint64_t CurDiv = 0;
  std::size_t NearCount = 0;
  std::array<std::vector<Key>, NumBuckets> Near;
  std::array<std::uint64_t, WordsInMask> Occupied{};
  std::vector<Key> Far;
  /// Callback slab + free list; slots are recycled, so steady state never
  /// allocates.
  std::vector<Action> Pool;
  std::vector<std::uint32_t> FreeSlots;
};

} // namespace fft3d

#endif // FFT3D_SIM_EVENTQUEUE_H
