//===- sim/EventQueue.h - Discrete-event simulation core --------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal discrete-event simulation kernel. The 3D-memory model and the
/// FFT-processor phase engine schedule callbacks at absolute picosecond
/// timestamps; the queue runs them in (time, insertion-order) order, which
/// makes simulations fully deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_EVENTQUEUE_H
#define FFT3D_SIM_EVENTQUEUE_H

#include "support/Units.h"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fft3d {

/// Priority queue of timed callbacks with a monotonically advancing clock.
class EventQueue {
public:
  using Action = std::function<void()>;

  /// Current simulation time. Starts at zero.
  Picos now() const { return Now; }

  /// Schedules \p A at absolute time \p When. \p When must not be in the
  /// past. Events at equal timestamps run in insertion order.
  void scheduleAt(Picos When, Action A);

  /// Schedules \p A \p Delay picoseconds from now.
  void scheduleAfter(Picos Delay, Action A);

  /// Returns true if no events remain.
  bool empty() const { return Heap.empty(); }

  /// Number of pending events.
  std::size_t size() const { return Heap.size(); }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains. Returns the number of events run.
  /// \p MaxEvents guards against runaway simulations (0 = unlimited).
  std::uint64_t run(std::uint64_t MaxEvents = 0);

  /// Runs events with timestamps <= \p Until (inclusive); the clock ends at
  /// max(now, Until). Returns the number of events run.
  std::uint64_t runUntil(Picos Until);

private:
  struct Entry {
    Picos When;
    std::uint64_t Sequence;
    Action Act;
  };
  struct Later {
    bool operator()(const Entry &A, const Entry &B) const {
      if (A.When != B.When)
        return A.When > B.When;
      return A.Sequence > B.Sequence;
    }
  };

  Picos Now = 0;
  std::uint64_t NextSequence = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> Heap;
};

} // namespace fft3d

#endif // FFT3D_SIM_EVENTQUEUE_H
