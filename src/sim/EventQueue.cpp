//===- sim/EventQueue.cpp - Discrete-event simulation core ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace fft3d;

std::uint32_t EventQueue::allocSlot(Action &&A) {
  if (!FreeSlots.empty()) {
    const std::uint32_t Slot = FreeSlots.back();
    FreeSlots.pop_back();
    Pool[Slot] = std::move(A);
    return Slot;
  }
  Pool.push_back(std::move(A));
  return static_cast<std::uint32_t>(Pool.size() - 1);
}

void EventQueue::insertKey(const Key &K) {
  const std::uint64_t Division = K.When >> DivShift;
  if (Division >= CurDiv + NumBuckets) {
    Far.push_back(K);
    std::push_heap(Far.begin(), Far.end(), KeyAfter());
    return;
  }
  // Pending events never predate the clock, so Division >= CurDiv and each
  // ring bucket holds exactly one division's events.
  const unsigned Bucket = static_cast<unsigned>(Division) & BucketMask;
  std::vector<Key> &B = Near[Bucket];
  B.push_back(K);
  std::push_heap(B.begin(), B.end(), KeyAfter());
  Occupied[Bucket / 64] |= std::uint64_t(1) << (Bucket % 64);
  ++NearCount;
}

void EventQueue::scheduleAt(Picos When, Action A) {
  assert(When >= Now && "scheduling an event in the past");
  const Key K{When, NextSequence++, allocSlot(std::move(A))};
  insertKey(K);
  ++Count;
}

void EventQueue::scheduleAfter(Picos Delay, Action A) {
  scheduleAt(Now + Delay, std::move(A));
}

void EventQueue::advanceTo(std::uint64_t Division) {
  if (Division <= CurDiv)
    return;
  CurDiv = Division;
  while (!Far.empty() &&
         (Far.front().When >> DivShift) < CurDiv + NumBuckets) {
    const Key K = Far.front();
    std::pop_heap(Far.begin(), Far.end(), KeyAfter());
    Far.pop_back();
    insertKey(K);
  }
}

unsigned EventQueue::firstBucketFrom(unsigned Start) const {
  unsigned Word = Start / 64;
  std::uint64_t Bits =
      Occupied[Word] & (~std::uint64_t(0) << (Start % 64));
  // The start word is revisited once with its low bits unmasked, so a
  // full cyclic scan takes at most WordsInMask + 1 probes.
  for (unsigned Probes = 0;; ++Probes) {
    if (Bits != 0)
      return Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
    assert(Probes <= WordsInMask && "no occupied near bucket");
    Word = (Word + 1) % WordsInMask;
    Bits = Occupied[Word];
  }
}

EventQueue::Key EventQueue::popEarliest() {
  assert(Count != 0 && "popping from an empty queue");
  if (NearCount == 0) {
    // Everything pending is beyond the horizon; slide the ring to the
    // earliest far event.
    assert(!Far.empty());
    advanceTo(Far.front().When >> DivShift);
    assert(NearCount != 0 && "migration left the near ring empty");
  }
  const unsigned Bucket =
      firstBucketFrom(static_cast<unsigned>(CurDiv) & BucketMask);
  std::vector<Key> &B = Near[Bucket];
  std::pop_heap(B.begin(), B.end(), KeyAfter());
  const Key K = B.back();
  B.pop_back();
  if (B.empty())
    Occupied[Bucket / 64] &= ~(std::uint64_t(1) << (Bucket % 64));
  --NearCount;
  --Count;
  return K;
}

Picos EventQueue::nextWhen() const {
  assert(Count != 0 && "peeking into an empty queue");
  // Far events all lie beyond the near horizon, so any near event wins.
  if (NearCount == 0)
    return Far.front().When;
  const unsigned Bucket =
      firstBucketFrom(static_cast<unsigned>(CurDiv) & BucketMask);
  return Near[Bucket].front().When;
}

bool EventQueue::step() {
  if (Count == 0)
    return false;
  const Key K = popEarliest();
  assert(K.When >= Now && "event queue went backwards");
  Now = K.When;
  advanceTo(K.When >> DivShift);
  // Move the action out and recycle the slot before running: the action
  // may schedule new events, which can grow the slab.
  Action Act = std::move(Pool[K.Slot]);
  FreeSlots.push_back(K.Slot);
  Act();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t MaxEvents) {
  std::uint64_t Ran = 0;
  while (step()) {
    ++Ran;
    if (MaxEvents != 0 && Ran >= MaxEvents) {
      if (Count != 0)
        reportFatalError("event budget exhausted with events still pending");
      break;
    }
  }
  return Ran;
}

std::uint64_t EventQueue::runUntil(Picos Until) {
  std::uint64_t Ran = 0;
  while (Count != 0 && nextWhen() <= Until) {
    step();
    ++Ran;
  }
  if (Now < Until) {
    Now = Until;
    advanceTo(Until >> DivShift);
  }
  return Ran;
}

std::uint64_t EventQueue::runWhile(Picos Before) {
  std::uint64_t Ran = 0;
  while (Count != 0 && nextWhen() < Before) {
    step();
    ++Ran;
  }
  return Ran;
}
