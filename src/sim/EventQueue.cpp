//===- sim/EventQueue.cpp - Discrete-event simulation core ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace fft3d;

void EventQueue::scheduleAt(Picos When, Action A) {
  assert(When >= Now && "scheduling an event in the past");
  Heap.push(Entry{When, NextSequence++, std::move(A)});
}

void EventQueue::scheduleAfter(Picos Delay, Action A) {
  scheduleAt(Now + Delay, std::move(A));
}

bool EventQueue::step() {
  if (Heap.empty())
    return false;
  // The action may schedule new events, so pop before running it.
  Entry Next = Heap.top();
  Heap.pop();
  assert(Next.When >= Now && "event queue went backwards");
  Now = Next.When;
  Next.Act();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t MaxEvents) {
  std::uint64_t Ran = 0;
  while (step()) {
    ++Ran;
    if (MaxEvents != 0 && Ran >= MaxEvents) {
      if (!Heap.empty())
        reportFatalError("event budget exhausted with events still pending");
      break;
    }
  }
  return Ran;
}

std::uint64_t EventQueue::runUntil(Picos Until) {
  std::uint64_t Ran = 0;
  while (!Heap.empty() && Heap.top().When <= Until) {
    step();
    ++Ran;
  }
  if (Now < Until)
    Now = Until;
  return Ran;
}
