//===- sim/InlineFunction.h - Small-buffer callable wrapper -----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only replacement for std::function with a caller-chosen inline
/// capture buffer. The event queue schedules millions of short-lived
/// callbacks per simulation; std::function's 16-byte small-buffer limit
/// forces a heap allocation for every completion lambda (callback +
/// request + timestamp is ~70 bytes), which dominates the simulator's
/// profile. Sizing the buffer to the largest hot capture makes event
/// scheduling allocation-free.
///
/// Callables larger than the buffer (or over-aligned, or with throwing
/// moves) still work - they fall back to a heap allocation, exactly like
/// std::function - so correctness never depends on the buffer size.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_INLINEFUNCTION_H
#define FFT3D_SIM_INLINEFUNCTION_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace fft3d {

template <typename Signature, std::size_t InlineBytes = 88>
class InlineFunction;

template <typename Ret, typename... Args, std::size_t InlineBytes>
class InlineFunction<Ret(Args...), InlineBytes> {
public:
  InlineFunction() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, InlineFunction>>>
  InlineFunction(Fn &&F) {
    using Stored = std::decay_t<Fn>;
    if constexpr (sizeof(Stored) <= InlineBytes &&
                  alignof(Stored) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Stored> &&
                  std::is_trivially_destructible_v<Stored>) {
      // Trivially relocatable captures ([this]-style wakeups - most of the
      // simulator's events) need no manager at all: moves are raw buffer
      // copies and destruction is a no-op.
      new (Buf) Stored(std::forward<Fn>(F));
      Invoke = [](void *B, Args &&...As) -> Ret {
        return (*static_cast<Stored *>(B))(std::forward<Args>(As)...);
      };
      Manage = nullptr;
    } else if constexpr (sizeof(Stored) <= InlineBytes &&
                         alignof(Stored) <= alignof(std::max_align_t) &&
                         std::is_nothrow_move_constructible_v<Stored>) {
      new (Buf) Stored(std::forward<Fn>(F));
      Invoke = [](void *B, Args &&...As) -> Ret {
        return (*static_cast<Stored *>(B))(std::forward<Args>(As)...);
      };
      Manage = [](Op O, void *B, void *Dst) {
        Stored *Self = static_cast<Stored *>(B);
        if (O == Op::Relocate)
          new (Dst) Stored(std::move(*Self));
        Self->~Stored();
      };
    } else {
      *reinterpret_cast<Stored **>(Buf) = new Stored(std::forward<Fn>(F));
      Invoke = [](void *B, Args &&...As) -> Ret {
        return (**static_cast<Stored **>(B))(std::forward<Args>(As)...);
      };
      Manage = [](Op O, void *B, void *Dst) {
        Stored **Slot = static_cast<Stored **>(B);
        if (O == Op::Relocate)
          *reinterpret_cast<Stored **>(Dst) = *Slot;
        else
          delete *Slot;
      };
    }
  }

  InlineFunction(InlineFunction &&Other) noexcept
      : Invoke(Other.Invoke), Manage(Other.Manage) {
    if (Manage)
      Manage(Op::Relocate, Other.Buf, Buf);
    else if (Invoke)
      std::memcpy(Buf, Other.Buf, InlineBytes);
    Other.Invoke = nullptr;
    Other.Manage = nullptr;
  }

  InlineFunction &operator=(InlineFunction &&Other) noexcept {
    if (this == &Other)
      return *this;
    reset();
    Invoke = Other.Invoke;
    Manage = Other.Manage;
    if (Manage)
      Manage(Op::Relocate, Other.Buf, Buf);
    else if (Invoke)
      std::memcpy(Buf, Other.Buf, InlineBytes);
    Other.Invoke = nullptr;
    Other.Manage = nullptr;
    return *this;
  }

  InlineFunction(const InlineFunction &) = delete;
  InlineFunction &operator=(const InlineFunction &) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return Invoke != nullptr; }

  Ret operator()(Args... As) {
    assert(Invoke && "invoking an empty InlineFunction");
    return Invoke(Buf, std::forward<Args>(As)...);
  }

private:
  enum class Op { Destroy, Relocate };

  void reset() {
    if (Manage)
      Manage(Op::Destroy, Buf, nullptr);
    Invoke = nullptr;
    Manage = nullptr;
  }

  Ret (*Invoke)(void *, Args &&...) = nullptr;
  void (*Manage)(Op, void *, void *) = nullptr;
  alignas(std::max_align_t) unsigned char Buf[InlineBytes];
};

} // namespace fft3d

#endif // FFT3D_SIM_INLINEFUNCTION_H
