//===- sim/ShardedEventQueue.cpp - Vault-sharded conservative PDES --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
//
// The window protocol. One parallelFor spans the whole run; workers march
// through windows together, separated by three barriers:
//
//   plan    worker 0: barrier hook, merge outboxes in (When, vault, seq)
//           order into the host queue, pick T = earliest pending event
//           anywhere, WindowEnd = T + W. Done when nothing is pending.
//   ----------------------------- barrier -----------------------------
//   host    worker 0: run host events with When < WindowEnd. Submissions
//           these events make (postToShard at the current host time) land
//           in vault inboxes; host -> vault has zero latency, which is
//           why vaults must not run until the host sub-phase is over.
//   ----------------------------- barrier -----------------------------
//   vaults  every worker: for each owned shard, drain the inbox prefix
//           with When < WindowEnd into the shard queue, then run the
//           shard while events remain below WindowEnd. Completions go to
//           the outbox with When >= T + W - the lookahead guarantee -
//           so nothing a vault does this window can affect this window.
//   ----------------------------- barrier -----------------------------
//
// Progress invariant: after window [T, T+W) every queue and inbox holds
// only events with When >= T + W (runWhile exhausts stragglers, including
// events scheduled while running), so successive windows strictly advance
// and scheduleAt never sees the past.
//
// Determinism: per-shard execution is the sequential ladder-queue order;
// the only cross-shard nondeterminism - which outbox fills first - is
// erased by the boundary merge, which orders mail by (When, vault,
// per-vault sequence) regardless of which OS thread produced it when.
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedEventQueue.h"

#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace fft3d;

ShardedEventQueue::SpinBarrier::SpinBarrier(unsigned Parties)
    : Parties(Parties),
      SpinLimit(Parties <= std::thread::hardware_concurrency() ? 1024 : 1) {}

void ShardedEventQueue::SpinBarrier::arriveAndWait() {
  if (Parties == 1)
    return;
  const unsigned MyPhase = Phase.load(std::memory_order_relaxed);
  // acq_rel on the counter chains every arriver's prior writes into the
  // last arriver; the Phase release/acquire pair hands them to waiters.
  if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Parties) {
    Arrived.store(0, std::memory_order_relaxed);
    Phase.store(MyPhase + 1, std::memory_order_release);
    return;
  }
  unsigned Spins = 0;
  while (Phase.load(std::memory_order_acquire) == MyPhase) {
    // Windows are microseconds apart, so spin - but yield once the limit
    // is hit, so oversubscribed CI machines make progress.
    if (++Spins >= SpinLimit) {
      std::this_thread::yield();
      Spins = 0;
    }
  }
}

ShardedEventQueue::ShardedEventQueue(unsigned NumShards, Picos Lookahead,
                                     unsigned SimThreads,
                                     std::size_t MailboxSoftCap)
    : Lookahead(Lookahead), MailboxSoftCap(MailboxSoftCap) {
  if (NumShards == 0)
    reportFatalError("ShardedEventQueue: need at least one shard");
  if (Lookahead <= 0)
    reportFatalError("ShardedEventQueue: lookahead must be positive - a "
                     "zero-width window cannot make conservative progress");
  ThreadCount = SimThreads == 0 ? 1u : SimThreads;
  if (ThreadCount > NumShards)
    ThreadCount = NumShards;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Barrier = std::make_unique<SpinBarrier>(ThreadCount);
  // Sized exactly to ThreadCount: parallelFor(ThreadCount) then hands
  // each executor (caller + ThreadCount-1 workers) exactly one index, so
  // a worker blocked at the window barrier never strands a second index.
  if (ThreadCount > 1)
    Pool = std::make_unique<ThreadPool>(ThreadCount);
}

ShardedEventQueue::~ShardedEventQueue() = default;

EventQueue &ShardedEventQueue::shard(unsigned S) {
  assert(S < Shards.size() && "shard index out of range");
  return Shards[S]->Q;
}

void ShardedEventQueue::postToShard(unsigned S, Picos When,
                                    EventQueue::Action A) {
  assert(S < Shards.size() && "shard index out of range");
  Shard &Dest = *Shards[S];
  // The host executes in time order and posts at its current time, so
  // per-inbox timestamps are nondecreasing; the drain relies on it.
  assert((Dest.Inbox.empty() || When >= Dest.Inbox.back().When) &&
         "inbox timestamps must be nondecreasing");
  if (Dest.Inbox.size() >= MailboxSoftCap)
    ++MailboxOverflows;
  Dest.Inbox.push_back(Mail{When, std::move(A)});
}

void ShardedEventQueue::postToHost(unsigned S, Picos When,
                                   EventQueue::Action A) {
  assert(S < Shards.size() && "shard index out of range");
  // The conservative-correctness condition: a vault may not touch the
  // host inside the window the host already ran.
  assert(When >= WindowEnd &&
         "cross-shard completion inside the current window violates the "
         "lookahead contract");
  Shard &Src = *Shards[S];
  assert((Src.Outbox.empty() || When >= Src.Outbox.back().When) &&
         "outbox timestamps must be nondecreasing");
  Src.Outbox.push_back(Mail{When, std::move(A)});
}

void ShardedEventQueue::planWindow() {
  if (BarrierHook)
    BarrierHook();

  // Merge outboxes. Vault-major concatenation is already (vault, seq)
  // ordered; a stable sort by When alone therefore yields the canonical
  // (When, vault, seq) total order.
  MergeScratch.clear();
  for (std::uint32_t V = 0; V != Shards.size(); ++V) {
    const std::vector<Mail> &Out = Shards[V]->Outbox;
    for (std::uint32_t I = 0; I != Out.size(); ++I)
      MergeScratch.push_back(MergeKey{Out[I].When, V, I});
  }
  std::stable_sort(MergeScratch.begin(), MergeScratch.end(),
                   [](const MergeKey &A, const MergeKey &B) {
                     return A.When < B.When;
                   });
  for (const MergeKey &K : MergeScratch) {
    Mail &M = Shards[K.Vault]->Outbox[K.Index];
    Host.scheduleAt(M.When, std::move(M.A));
  }
  for (auto &S : Shards)
    S->Outbox.clear();

  // Next window starts at the earliest pending event anywhere.
  bool Any = false;
  Picos T = 0;
  const auto Consider = [&](Picos When) {
    if (!Any || When < T) {
      T = When;
      Any = true;
    }
  };
  if (!Host.empty())
    Consider(Host.nextEventTime());
  for (const auto &S : Shards) {
    if (!S->Q.empty())
      Consider(S->Q.nextEventTime());
    if (!S->Inbox.empty())
      Consider(S->Inbox.front().When);
  }
  if (!Any) {
    Done = true;
    return;
  }
  WindowEnd = T + Lookahead;
  ++Windows;
}

void ShardedEventQueue::workerLoop(unsigned Worker) {
  const unsigned N = numShards();
  const unsigned Lo = static_cast<unsigned>(
      static_cast<std::uint64_t>(N) * Worker / ThreadCount);
  const unsigned Hi = static_cast<unsigned>(
      static_cast<std::uint64_t>(N) * (Worker + 1) / ThreadCount);
  for (;;) {
    if (Worker == 0)
      planWindow();
    Barrier->arriveAndWait();
    if (Done)
      break;
    if (Worker == 0)
      HostEventsRun += Host.runWhile(WindowEnd);
    Barrier->arriveAndWait();
    for (unsigned V = Lo; V != Hi; ++V) {
      Shard &S = *Shards[V];
      if (!S.Inbox.empty()) {
        std::size_t K = 0;
        while (K != S.Inbox.size() && S.Inbox[K].When < WindowEnd) {
          S.Q.scheduleAt(S.Inbox[K].When, std::move(S.Inbox[K].A));
          ++K;
        }
        S.Inbox.erase(S.Inbox.begin(),
                      S.Inbox.begin() + static_cast<std::ptrdiff_t>(K));
      }
      S.EventsRun += S.Q.runWhile(WindowEnd);
    }
    Barrier->arriveAndWait();
  }
}

std::uint64_t ShardedEventQueue::run() {
  const auto Total = [this] {
    std::uint64_t Sum = HostEventsRun;
    for (const auto &S : Shards)
      Sum += S->EventsRun;
    return Sum;
  };
  const std::uint64_t Before = Total();
  Done = false;
  if (ThreadCount == 1)
    workerLoop(0);
  else
    Pool->parallelFor(ThreadCount,
                      [this](std::size_t W) {
                        workerLoop(static_cast<unsigned>(W));
                      });
  return Total() - Before;
}
