//===- sim/ShardedEventQueue.cpp - Vault-sharded conservative PDES --------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
//
// The window protocol. One parallelFor spans the whole run; workers march
// through windows together, separated by two barriers:
//
//   ------------------------- barrier (rendezvous) -----------------------
//   plan +  worker 0: barrier hook, merge outboxes in (When, vault, seq)
//   host    order into the host queue, pick T = earliest pending event
//           anywhere (Done when nothing is pending). Then either
//            - streaming window: the host has declared itself quiescent
//              and vault work is pending, so skip the host sub-phase and
//              set WindowEnd to the quiescence horizon, or
//            - bounded window: seed the dynamic cap with the minimum
//              shard effect bound (per-shard oracle + pending mail
//              bounds) and run host events against it. Submissions
//              shrink the cap to their declared effect bound; events
//              that submit nothing never narrow the window. The final
//              cap becomes WindowEnd.
//   -------------------------- barrier (release) --------------------------
//   vaults  every worker: for each owned shard, drain the inbox prefix
//           with When < WindowEnd into the shard queue, then run the
//           shard while events remain below WindowEnd. Completions go
//           to the outbox with When >= WindowEnd (bounded windows: by
//           construction of the effect bounds) or anywhere beyond the
//           host's executed horizon (streaming windows).
//
// Compared to the first engine revision this drops one barrier per
// window (plan and host fuse into worker 0's stretch between the two
// barriers - legal because the other workers have nothing to do until
// WindowEnd is known) and, far more importantly, replaces the static
// W = AccessLatency window with state-derived widths that routinely span
// many host pacing ticks.
//
// Progress invariant: every effect bound is at least its source's
// timestamp plus the static lookahead (enforced by clamping registered
// oracles and mail bounds against that floor), so WindowEnd > T and the
// event that defined T is consumed each window; successive windows
// strictly advance and scheduleAt never sees the past.
//
// Determinism: per-shard execution is the sequential ladder-queue order;
// the only cross-shard nondeterminism - which outbox fills first - is
// erased by the boundary merge, which orders mail by (When, vault,
// per-vault sequence) regardless of which OS thread produced it when.
// Window placement depends only on simulation state read while every
// worker is parked, so the window sequence (and with it every merge
// batch) is identical for every SimThreads value.
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedEventQueue.h"

#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace fft3d;

namespace {
/// Saturating add on picosecond timestamps; NoBound acts as +infinity.
Picos satAdd(Picos A, Picos B) {
  const Picos Max = std::numeric_limits<Picos>::max();
  return A > Max - B ? Max : A + B;
}
} // namespace

ShardedEventQueue::SpinBarrier::SpinBarrier(unsigned Parties)
    : Parties(Parties),
      SpinLimit(Parties <= std::thread::hardware_concurrency() ? 1024 : 1) {}

void ShardedEventQueue::SpinBarrier::arriveAndWait() {
  if (Parties == 1)
    return;
  const unsigned MyPhase = Phase.load(std::memory_order_relaxed);
  // acq_rel on the counter chains every arriver's prior writes into the
  // last arriver; the Phase release/acquire pair hands them to waiters.
  if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Parties) {
    Arrived.store(0, std::memory_order_relaxed);
    Phase.store(MyPhase + 1, std::memory_order_release);
    return;
  }
  unsigned Spins = 0;
  while (Phase.load(std::memory_order_acquire) == MyPhase) {
    // Windows are microseconds apart, so spin - but yield once the limit
    // is hit, so oversubscribed CI machines make progress.
    if (++Spins >= SpinLimit) {
      std::this_thread::yield();
      Spins = 0;
    }
  }
}

ShardedEventQueue::ShardedEventQueue(unsigned NumShards, Picos Lookahead,
                                     unsigned SimThreads,
                                     std::size_t MailboxSoftCap)
    : Lookahead(Lookahead), MailboxSoftCap(MailboxSoftCap) {
  if (NumShards == 0)
    reportFatalError("ShardedEventQueue: need at least one shard");
  if (Lookahead <= 0)
    reportFatalError("ShardedEventQueue: lookahead must be positive - a "
                     "zero-width window cannot make conservative progress");
  ThreadCount = SimThreads == 0 ? 1u : SimThreads;
  if (ThreadCount > NumShards)
    ThreadCount = NumShards;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Barrier = std::make_unique<SpinBarrier>(ThreadCount);
  // Sized exactly to ThreadCount: parallelFor(ThreadCount) then hands
  // each executor (caller + ThreadCount-1 workers) exactly one index, so
  // a worker blocked at the window barrier never strands a second index.
  if (ThreadCount > 1)
    Pool = std::make_unique<ThreadPool>(ThreadCount);
}

ShardedEventQueue::~ShardedEventQueue() = default;

EventQueue &ShardedEventQueue::shard(unsigned S) {
  assert(S < Shards.size() && "shard index out of range");
  return Shards[S]->Q;
}

void ShardedEventQueue::setShardBound(unsigned S, ShardBound Fn) {
  assert(S < Shards.size() && "shard index out of range");
  Shards[S]->Bound = std::move(Fn);
}

void ShardedEventQueue::postToShard(unsigned S, Picos When,
                                    EventQueue::Action A, Picos EffectBound) {
  assert(S < Shards.size() && "shard index out of range");
  // A quiescence declaration is a promise that exactly this call will not
  // happen; vault shards may already be free-running past When, so the
  // simulation would silently corrupt. Fail loudly instead.
  if (When < HostQuiescentUntil)
    reportFatalError("ShardedEventQueue: postToShard during a declared "
                     "host-quiescent stretch violates the streaming "
                     "contract");
  Shard &Dest = *Shards[S];
  // The host executes in time order and posts at its current time, so
  // per-inbox timestamps are nondecreasing; the drain relies on it.
  assert((Dest.inboxPending() == 0 || When >= Dest.Inbox.back().When) &&
         "inbox timestamps must be nondecreasing");
  // Every host->vault->host round trip pays the static lookahead, so the
  // floor is always sound; a caller-declared bound can only widen it.
  const Picos Floor = satAdd(When, Lookahead);
  assert((EffectBound == 0 || EffectBound >= Floor) &&
         "a mail effect bound below When + lookahead is unsound");
  const Picos Bound = std::max(EffectBound, Floor);
  if (Dest.inboxPending() >= MailboxSoftCap)
    ++Stats.MailboxOverflows;
  Dest.Inbox.push_back(Mail{When, Bound, std::move(A)});
  // Mid-window submission: the running host sub-phase must not outrun the
  // earliest effect this mail can have.
  if (Bound < HostCap)
    HostCap = Bound;
}

void ShardedEventQueue::postToHost(unsigned S, Picos When,
                                   EventQueue::Action A) {
  assert(S < Shards.size() && "shard index out of range");
  // The conservative-correctness condition: in a bounded window a vault
  // may not touch the host inside the window the host already ran; in a
  // streaming window completions may land anywhere the host has not yet
  // executed through.
  const Picos Floor = Streaming ? HostHorizon : WindowEnd;
  assert(When >= Floor &&
         "cross-shard completion inside the current window violates the "
         "lookahead contract");
  Shard &Src = *Shards[S];
  if (When < Floor)
    ++Src.Violations;
  assert((Src.Outbox.empty() || When >= Src.Outbox.back().When) &&
         "outbox timestamps must be nondecreasing");
  Src.Outbox.push_back(Mail{When, 0, std::move(A)});
}

Picos ShardedEventQueue::shardEffectBound(const Shard &S) const {
  Picos Bound = NoBound;
  if (!S.Q.empty()) {
    const Picos QueueNext = S.Q.nextEventTime();
    // The static floor is always sound (any completion pays the
    // cross-shard lookahead); the oracle can only push the bound out.
    // Clamping, rather than trusting, keeps a buggy oracle from
    // corrupting the window - the debug assert still names it.
    const Picos Floor = satAdd(QueueNext, Lookahead);
    if (S.Bound) {
      const Picos FromOracle = S.Bound(QueueNext);
      assert(FromOracle >= Floor &&
             "shard bound oracle returned less than the static lookahead");
      Bound = std::max(FromOracle, Floor);
    } else {
      Bound = Floor;
    }
  }
  // Pending mail carries its own effect bound (undelivered requests are
  // invisible to the oracle's queue state).
  for (std::size_t I = S.InboxHead; I != S.Inbox.size(); ++I)
    Bound = std::min(Bound, S.Inbox[I].EffectBound);
  return Bound;
}

void ShardedEventQueue::recordWindowWidth(Picos T, Picos End) {
  // Unbounded drain-everything windows have no meaningful width.
  if (End == NoBound)
    return;
  const Picos Width = End - T;
  Stats.WidthSumPs += Width;
  Stats.WidthMaxPs = std::max(Stats.WidthMaxPs, Width);
  const Picos Bucket = Width / Lookahead;
  const auto Index =
      Bucket < WindowStats::NumWidthBuckets
          ? static_cast<std::size_t>(Bucket)
          : static_cast<std::size_t>(WindowStats::NumWidthBuckets - 1);
  ++Stats.WidthBuckets[Index];
}

void ShardedEventQueue::planAndRunHost() {
  if (BarrierHook)
    BarrierHook();
  // Every pass through here costs both barriers of the loop iteration.
  Stats.Barriers += 2;

  // Fold the per-shard violation counters (their workers are parked).
  std::uint64_t Violations = 0;
  for (const auto &S : Shards)
    Violations += S->Violations;
  Stats.LookaheadViolations = Violations;

  // Merge outboxes. Vault-major concatenation is already (vault, seq)
  // ordered; a stable sort by When alone therefore yields the canonical
  // (When, vault, seq) total order.
  MergeScratch.clear();
  for (std::uint32_t V = 0; V != Shards.size(); ++V) {
    const std::vector<Mail> &Out = Shards[V]->Outbox;
    for (std::uint32_t I = 0; I != Out.size(); ++I)
      MergeScratch.push_back(MergeKey{Out[I].When, V, I});
  }
  std::stable_sort(MergeScratch.begin(), MergeScratch.end(),
                   [](const MergeKey &A, const MergeKey &B) {
                     return A.When < B.When;
                   });
  for (const MergeKey &K : MergeScratch) {
    Mail &M = Shards[K.Vault]->Outbox[K.Index];
    Host.scheduleAt(M.When, std::move(M.A));
  }
  for (auto &S : Shards)
    S->Outbox.clear();

  // Next window starts at the earliest pending event anywhere; the
  // earliest vault-side item decides whether streaming has work to do.
  bool Any = false;
  Picos T = 0;
  Picos VaultNext = NoBound;
  const auto Consider = [&](Picos When) {
    if (!Any || When < T) {
      T = When;
      Any = true;
    }
  };
  if (!Host.empty())
    Consider(Host.nextEventTime());
  for (const auto &S : Shards) {
    if (!S->Q.empty()) {
      Consider(S->Q.nextEventTime());
      VaultNext = std::min(VaultNext, S->Q.nextEventTime());
    }
    if (S->inboxPending() != 0) {
      Consider(S->Inbox[S->InboxHead].When);
      VaultNext = std::min(VaultNext, S->Inbox[S->InboxHead].When);
    }
  }
  if (!Any) {
    Done = true;
    return;
  }

  // Streaming window: the host has promised not to post before the
  // horizon, so pending vault work free-runs to it without any host
  // participation; merged completions wait for the next (bounded) window.
  if (HostQuiescentUntil > T && VaultNext < HostQuiescentUntil) {
    Streaming = true;
    WindowEnd = HostQuiescentUntil;
    ++Stats.Windows;
    ++Stats.StreamWindows;
    return;
  }
  Streaming = false;

  // Bounded window. Seed the dynamic cap with what the shards admit from
  // their current state, then run the host against it; postToShard pulls
  // the cap down to each submission's declared effect bound.
  HostCap = NoBound;
  for (const auto &S : Shards)
    HostCap = std::min(HostCap, shardEffectBound(*S));
  while (!Host.empty() && Host.nextEventTime() < HostCap) {
    Host.step();
    ++HostEventsRun;
  }
  WindowEnd = HostCap;
  // Streamed completions must clear the time the host has actually
  // executed through, which the host clock tracks exactly.
  HostHorizon = Host.now();
  ++Stats.Windows;
  recordWindowWidth(T, WindowEnd);
}

void ShardedEventQueue::workerLoop(unsigned Worker) {
  const unsigned N = numShards();
  const unsigned Lo = static_cast<unsigned>(
      static_cast<std::uint64_t>(N) * Worker / ThreadCount);
  const unsigned Hi = static_cast<unsigned>(
      static_cast<std::uint64_t>(N) * (Worker + 1) / ThreadCount);
  for (;;) {
    // Rendezvous: every shard has finished the previous window, so
    // worker 0 may read any shard state while the rest park here.
    Barrier->arriveAndWait();
    if (Worker == 0)
      planAndRunHost();
    // Release: WindowEnd / Streaming / Done are published.
    Barrier->arriveAndWait();
    if (Done)
      break;
    for (unsigned V = Lo; V != Hi; ++V) {
      Shard &S = *Shards[V];
      while (S.InboxHead != S.Inbox.size() &&
             S.Inbox[S.InboxHead].When < WindowEnd) {
        S.Q.scheduleAt(S.Inbox[S.InboxHead].When,
                       std::move(S.Inbox[S.InboxHead].A));
        ++S.InboxHead;
      }
      // Consuming by index keeps delivered slots in place; reset once the
      // inbox fully drains so the vector's capacity is reused, never grown
      // by leftovers.
      if (S.InboxHead == S.Inbox.size()) {
        S.Inbox.clear();
        S.InboxHead = 0;
      }
      S.EventsRun += S.Q.runWhile(WindowEnd);
    }
  }
}

std::uint64_t ShardedEventQueue::run() {
  const auto Total = [this] {
    std::uint64_t Sum = HostEventsRun;
    for (const auto &S : Shards)
      Sum += S->EventsRun;
    return Sum;
  };
  const std::uint64_t Before = Total();
  Done = false;
  Streaming = false;
  if (ThreadCount == 1)
    workerLoop(0);
  else
    Pool->parallelFor(ThreadCount,
                      [this](std::size_t W) {
                        workerLoop(static_cast<unsigned>(W));
                      });
  // A quiescence declaration is scoped to the run that made it.
  HostQuiescentUntil = 0;
  return Total() - Before;
}
