//===- sim/Clock.h - Clock-domain helpers -----------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A clock domain converts between cycle counts and picosecond timestamps.
/// The system has two domains: the memory/TSV clock (625 MHz by default)
/// and the FPGA kernel clock (problem-size dependent, 180-250 MHz).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_SIM_CLOCK_H
#define FFT3D_SIM_CLOCK_H

#include "support/Units.h"

#include <cstdint>

namespace fft3d {

/// A fixed-frequency clock domain.
class Clock {
public:
  /// Creates a clock with the given period. \p Period must be non-zero.
  explicit Clock(Picos Period);

  /// Creates a clock from a frequency in MHz.
  static Clock fromMHz(double MHz);

  Picos period() const { return Period; }
  double frequencyMHz() const;

  /// Duration of \p Cycles cycles.
  Picos cyclesToPicos(std::uint64_t Cycles) const { return Cycles * Period; }

  /// Number of complete cycles in \p Duration.
  std::uint64_t picosToCycles(Picos Duration) const {
    return Duration / Period;
  }

  /// Smallest cycle-aligned timestamp >= \p T.
  Picos nextEdgeAtOrAfter(Picos T) const;

private:
  Picos Period;
};

} // namespace fft3d

#endif // FFT3D_SIM_CLOCK_H
