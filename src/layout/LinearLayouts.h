//===- layout/LinearLayouts.h - Row- and column-major layouts --*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two linear layouts. Row-major is the paper's baseline: perfect for
/// the row-wise FFT phase, catastrophic for the column-wise phase (every
/// access lands in a different DRAM row). Column-major is its mirror
/// image, included so ablations can show the conflict is symmetric - no
/// static linear layout can serve both phases.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_LAYOUT_LINEARLAYOUTS_H
#define FFT3D_LAYOUT_LINEARLAYOUTS_H

#include "layout/DataLayout.h"

namespace fft3d {

/// addr(r, c) = Base + (r * NumCols + c) * ElementBytes.
class RowMajorLayout : public DataLayout {
public:
  using DataLayout::DataLayout;

  PhysAddr addressOf(std::uint64_t Row, std::uint64_t Col) const override;
  LayoutKind kind() const override { return LayoutKind::RowMajor; }
  std::string describe() const override;
  std::uint64_t contiguousRowRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
  std::uint64_t contiguousColRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
};

/// addr(r, c) = Base + (c * NumRows + r) * ElementBytes.
class ColMajorLayout : public DataLayout {
public:
  using DataLayout::DataLayout;

  PhysAddr addressOf(std::uint64_t Row, std::uint64_t Col) const override;
  LayoutKind kind() const override { return LayoutKind::ColMajor; }
  std::string describe() const override;
  std::uint64_t contiguousRowRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
  std::uint64_t contiguousColRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
};

} // namespace fft3d

#endif // FFT3D_LAYOUT_LINEARLAYOUTS_H
