//===- layout/BlockDynamicLayout.cpp - The paper's dynamic layout ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/BlockDynamicLayout.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstdio>

using namespace fft3d;

BlockDynamicLayout::BlockDynamicLayout(std::uint64_t NumRows,
                                       std::uint64_t NumCols,
                                       unsigned ElementBytes, PhysAddr Base,
                                       std::uint64_t BlockWidth,
                                       std::uint64_t BlockHeight, bool Skew)
    : DataLayout(NumRows, NumCols, ElementBytes, Base), BlockWidth(BlockWidth),
      BlockHeight(BlockHeight), Skew(Skew) {
  if (BlockWidth == 0 || BlockHeight == 0 || NumCols % BlockWidth != 0 ||
      NumRows % BlockHeight != 0)
    reportFatalError("block dimensions must be non-zero and divide the "
                     "matrix dimensions");
}

BlockCoord BlockDynamicLayout::blockOf(std::uint64_t Row,
                                       std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return BlockCoord{Row / BlockHeight, Col / BlockWidth, Row % BlockHeight,
                    Col % BlockWidth};
}

PhysAddr BlockDynamicLayout::blockBase(std::uint64_t BlockRow,
                                       std::uint64_t BlockCol) const {
  assert(BlockRow < blocksPerCol() && BlockCol < blocksPerRow() &&
         "block out of range");
  const std::uint64_t Bc = blocksPerRow();
  const std::uint64_t SkewedCol = Skew ? (BlockCol + BlockRow) % Bc : BlockCol;
  const std::uint64_t Slot = BlockRow * Bc + SkewedCol;
  return Base + Slot * blockBytes();
}

PhysAddr BlockDynamicLayout::addressOf(std::uint64_t Row,
                                       std::uint64_t Col) const {
  const BlockCoord BC = blockOf(Row, Col);
  const std::uint64_t InOffset = BC.InRow * BlockWidth + BC.InCol;
  return blockBase(BC.BlockRow, BC.BlockCol) + InOffset * ElementBytes;
}

std::string BlockDynamicLayout::describe() const {
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer), "block-dynamic w=%llu h=%llu%s",
                static_cast<unsigned long long>(BlockWidth),
                static_cast<unsigned long long>(BlockHeight),
                Skew ? " (skewed)" : "");
  return Buffer;
}

std::uint64_t BlockDynamicLayout::contiguousRowRun(std::uint64_t Row,
                                                   std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return BlockWidth - Col % BlockWidth;
}

std::uint64_t BlockDynamicLayout::contiguousColRun(std::uint64_t Row,
                                                   std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  if (BlockWidth == 1)
    return BlockHeight - Row % BlockHeight;
  return 1;
}
