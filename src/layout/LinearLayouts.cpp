//===- layout/LinearLayouts.cpp - Row- and column-major layouts -----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/LinearLayouts.h"

#include <cassert>

using namespace fft3d;

PhysAddr RowMajorLayout::addressOf(std::uint64_t Row, std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return Base + (Row * NumCols + Col) * ElementBytes;
}

std::string RowMajorLayout::describe() const { return "row-major"; }

std::uint64_t RowMajorLayout::contiguousRowRun(std::uint64_t Row,
                                               std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return NumCols - Col;
}

std::uint64_t RowMajorLayout::contiguousColRun(std::uint64_t Row,
                                               std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return 1;
}

PhysAddr ColMajorLayout::addressOf(std::uint64_t Row, std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return Base + (Col * NumRows + Row) * ElementBytes;
}

std::string ColMajorLayout::describe() const { return "col-major"; }

std::uint64_t ColMajorLayout::contiguousRowRun(std::uint64_t Row,
                                               std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return 1;
}

std::uint64_t ColMajorLayout::contiguousColRun(std::uint64_t Row,
                                               std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return NumRows - Row;
}
