//===- layout/LayoutPlanner.h - Eq. 1: choosing the block shape -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Eq. 1 of the paper: the optimal block height h for the
/// dynamic data layout, as a function of the 3D-memory timing parameters.
/// With s = row-buffer capacity in elements, b = banks per vault,
/// n_v = vaults accessed in parallel, and m = the number of column-FFT
/// input streams buffered concurrently on chip:
///
///   h = n_v * s * b / m            if 0 < m <  s*b * t_in_row/t_diff_row
///   h = n_v * t_diff_bank/t_in_row if  ...  <= m < s*b
///   h = n_v * t_diff_row /t_in_row if           m >= s*b
///
/// and w = s / h (a block always fills one row buffer). Intuition: h rows
/// of a column stream are fetched from one open row per vault; h must be
/// large enough that streaming h*w elements hides the next activation
/// (t_diff_bank when the next block sits in another bank of the vault,
/// t_diff_row when it reuses the same bank), scaled by the n_v-way vault
/// parallelism. When only a few streams are buffered (small m), h is
/// instead limited by what the on-chip buffers can turn around.
///
/// The raw h is then shaped to hardware: rounded down to a power of two,
/// clamped so h divides the matrix dimension and w = s/h >= 1.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_LAYOUT_LAYOUTPLANNER_H
#define FFT3D_LAYOUT_LAYOUTPLANNER_H

#include "layout/BlockDynamicLayout.h"
#include "mem3d/Geometry.h"
#include "mem3d/Timing.h"

#include <memory>
#include <vector>

namespace fft3d {

/// Which branch of Eq. 1 produced the plan.
enum class PlanRegime {
  /// m < s*b*t_in_row/t_diff_row: buffer-limited, h = n_v*s*b/m.
  BufferLimited,
  /// m < s*b: activation spacing limited by t_diff_bank.
  BankLimited,
  /// m >= s*b: activation spacing limited by t_diff_row.
  RowConflictLimited,
};

const char *planRegimeName(PlanRegime Regime);

/// Result of planning: the raw Eq. 1 value and the hardware-shaped block.
struct BlockPlan {
  /// Eq. 1's h before rounding/clamping.
  double RawH = 0.0;
  /// Final block height/width (elements), h * w = s.
  std::uint64_t H = 0;
  std::uint64_t W = 0;
  PlanRegime Regime = PlanRegime::RowConflictLimited;
  /// Inputs echoed for reporting.
  unsigned VaultsParallel = 0;
  std::uint64_t ColumnStreams = 0;
  std::uint64_t RowBufferElems = 0;
};

/// A plan re-solved for a degraded device: Eq. 1 with the surviving
/// vault count n_v', plus the deterministic spare mapping that moves
/// each failed vault's blocks onto a healthy vault.
struct DegradedPlan {
  BlockPlan Plan;
  /// Surviving vaults n_v' the plan was solved for.
  unsigned HealthyVaults = 0;
  /// Per-vault remap (identity for healthy vaults; spareVaultMap for
  /// failed ones).
  std::vector<unsigned> VaultMap;
};

/// Computes block shapes per Eq. 1 for a given device.
class LayoutPlanner {
public:
  LayoutPlanner(const Geometry &G, const Timing &T, unsigned ElementBytes);

  /// Plans the block shape for an \p N x \p N problem using \p
  /// VaultsParallel vaults and \p ColumnStreams concurrently buffered
  /// column streams (m). \p ColumnStreams == 0 means "use the default":
  /// m = N, i.e. a whole matrix row of column streams in flight.
  BlockPlan plan(std::uint64_t N, unsigned VaultsParallel,
                 std::uint64_t ColumnStreams = 0) const;

  /// Rectangular generalization of plan() for a \p Rows x \p Cols matrix
  /// (both powers of two): identical Eq. 1 regimes, with the block shaped
  /// so h | Rows and w = s/h | Cols. \p ColumnStreams == 0 defaults
  /// m = Cols - one stream per stored column.
  BlockPlan planRect(std::uint64_t Rows, std::uint64_t Cols,
                     unsigned VaultsParallel,
                     std::uint64_t ColumnStreams = 0) const;

  /// Plans the packed half-spectrum wedge of a real-input \p N x \p N
  /// problem: the irredundant spectrum is stored as an N x (N/2) complex
  /// matrix (each row's real Nyquist bin folded into the imaginary slot
  /// of its real DC bin), so Eq. 1 is re-solved for the N x (N/2)
  /// rectangle with m = N/2 column streams. Blocks still fill one row
  /// buffer; only the wedge's aspect ratio changes the shaping clamps.
  BlockPlan planPacked(std::uint64_t N, unsigned VaultsParallel,
                       std::uint64_t ColumnStreams = 0) const;

  /// planDegraded() for the packed wedge: Eq. 1 over the N x (N/2)
  /// rectangle with the surviving vault count, plus the same spare map.
  DegradedPlan planPackedDegraded(std::uint64_t N,
                                  const std::vector<bool> &VaultOnline,
                                  unsigned VaultsParallel = 0,
                                  std::uint64_t ColumnStreams = 0) const;

  /// Convenience: plans and constructs the layout in one step.
  std::unique_ptr<BlockDynamicLayout>
  createLayout(std::uint64_t N, unsigned VaultsParallel, PhysAddr Base = 0,
               std::uint64_t ColumnStreams = 0) const;

  /// Re-solves Eq. 1 for a partially failed device: n_v' = the number of
  /// true entries in \p VaultOnline (capped by \p VaultsParallel when
  /// non-zero), and the block remap that sends failed vaults' traffic to
  /// their spares. Aborts when no vault survives.
  DegradedPlan planDegraded(std::uint64_t N,
                            const std::vector<bool> &VaultOnline,
                            unsigned VaultsParallel = 0,
                            std::uint64_t ColumnStreams = 0) const;

  /// Regime boundary m* = s*b*t_in_row/t_diff_row (elements).
  double bufferRegimeBoundary() const;

private:
  Geometry Geo;
  Timing Time;
  unsigned ElementBytes;
};

} // namespace fft3d

#endif // FFT3D_LAYOUT_LAYOUTPLANNER_H
