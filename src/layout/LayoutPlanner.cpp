//===- layout/LayoutPlanner.cpp - Eq. 1: choosing the block shape ---------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/LayoutPlanner.h"

#include "fault/FaultSpec.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

const char *fft3d::planRegimeName(PlanRegime Regime) {
  switch (Regime) {
  case PlanRegime::BufferLimited:
    return "buffer-limited";
  case PlanRegime::BankLimited:
    return "bank-limited";
  case PlanRegime::RowConflictLimited:
    return "row-conflict-limited";
  }
  fft3d_unreachable("unknown PlanRegime");
}

LayoutPlanner::LayoutPlanner(const Geometry &G, const Timing &T,
                             unsigned ElementBytes)
    : Geo(G), Time(T), ElementBytes(ElementBytes) {
  Geo.validate();
  Time.validate();
  if (ElementBytes == 0 || Geo.RowBufferBytes % ElementBytes != 0)
    reportFatalError("element size must divide the row buffer size");
}

double LayoutPlanner::bufferRegimeBoundary() const {
  const double S =
      static_cast<double>(Geo.RowBufferBytes / ElementBytes);
  const double B = Geo.banksPerVault();
  return S * B * static_cast<double>(Time.TInRow) /
         static_cast<double>(Time.TDiffRow);
}

BlockPlan LayoutPlanner::plan(std::uint64_t N, unsigned VaultsParallel,
                              std::uint64_t ColumnStreams) const {
  return planRect(N, N, VaultsParallel, ColumnStreams);
}

BlockPlan LayoutPlanner::planRect(std::uint64_t Rows, std::uint64_t Cols,
                                  unsigned VaultsParallel,
                                  std::uint64_t ColumnStreams) const {
  assert(isPowerOf2(Rows) && isPowerOf2(Cols) &&
         "matrix dimensions must be powers of two");
  assert(VaultsParallel != 0 && VaultsParallel <= Geo.NumVaults &&
         "invalid vault parallelism");
  const std::uint64_t S = Geo.RowBufferBytes / ElementBytes;
  if (Rows * Cols < S)
    reportFatalError("matrix smaller than one row buffer: no block shape "
                     "with w*h = s fits");
  const std::uint64_t B = Geo.banksPerVault();
  const std::uint64_t M = ColumnStreams == 0 ? Cols : ColumnStreams;

  BlockPlan Plan;
  Plan.VaultsParallel = VaultsParallel;
  Plan.ColumnStreams = M;
  Plan.RowBufferElems = S;

  const double Nv = VaultsParallel;
  const double InRow = static_cast<double>(Time.TInRow);
  if (static_cast<double>(M) < bufferRegimeBoundary()) {
    Plan.Regime = PlanRegime::BufferLimited;
    Plan.RawH = Nv * static_cast<double>(S) * static_cast<double>(B) /
                static_cast<double>(M);
  } else if (M < S * B) {
    Plan.Regime = PlanRegime::BankLimited;
    Plan.RawH = Nv * static_cast<double>(Time.TDiffBank) / InRow;
  } else {
    Plan.Regime = PlanRegime::RowConflictLimited;
    Plan.RawH = Nv * static_cast<double>(Time.TDiffRow) / InRow;
  }

  // Shape to hardware: h a power of two, h | Rows, w = s/h >= 1 and
  // w | Cols. The lower clamp keeps w <= Cols when the matrix is narrow
  // relative to the row buffer.
  std::uint64_t H = 1;
  while (H * 2 <= static_cast<std::uint64_t>(Plan.RawH))
    H *= 2;
  H = std::min({H, S, Rows});
  Plan.H = std::max<std::uint64_t>(H, ceilDiv(S, Cols));
  Plan.W = S / Plan.H;
  assert(Plan.H * Plan.W == S && "block must fill the row buffer exactly");
  assert(Plan.H <= Rows && Plan.W <= Cols && "block exceeds the matrix");
  return Plan;
}

BlockPlan LayoutPlanner::planPacked(std::uint64_t N, unsigned VaultsParallel,
                                    std::uint64_t ColumnStreams) const {
  assert(N >= 4 && "packed wedge needs at least two spectrum columns");
  return planRect(N, N / 2, VaultsParallel, ColumnStreams);
}

DegradedPlan
LayoutPlanner::planPackedDegraded(std::uint64_t N,
                                  const std::vector<bool> &VaultOnline,
                                  unsigned VaultsParallel,
                                  std::uint64_t ColumnStreams) const {
  if (VaultOnline.size() != Geo.NumVaults)
    reportFatalError("online-vault vector does not match the geometry");
  unsigned Healthy = 0;
  for (const bool Online : VaultOnline)
    Healthy += Online ? 1 : 0;
  if (Healthy == 0)
    reportFatalError("cannot plan a layout with every vault offline");

  DegradedPlan Result;
  Result.HealthyVaults = Healthy;
  if (VaultsParallel != 0)
    Result.HealthyVaults = std::min(Result.HealthyVaults, VaultsParallel);
  Result.Plan = planPacked(N, Result.HealthyVaults, ColumnStreams);
  Result.VaultMap = spareVaultMap(VaultOnline);
  return Result;
}

DegradedPlan LayoutPlanner::planDegraded(std::uint64_t N,
                                         const std::vector<bool> &VaultOnline,
                                         unsigned VaultsParallel,
                                         std::uint64_t ColumnStreams) const {
  if (VaultOnline.size() != Geo.NumVaults)
    reportFatalError("online-vault vector does not match the geometry");
  unsigned Healthy = 0;
  for (const bool Online : VaultOnline)
    Healthy += Online ? 1 : 0;
  if (Healthy == 0)
    reportFatalError("cannot plan a layout with every vault offline");

  DegradedPlan Result;
  Result.HealthyVaults = Healthy;
  if (VaultsParallel != 0)
    Result.HealthyVaults = std::min(Result.HealthyVaults, VaultsParallel);
  Result.Plan = plan(N, Result.HealthyVaults, ColumnStreams);
  Result.VaultMap = spareVaultMap(VaultOnline);
  return Result;
}

std::unique_ptr<BlockDynamicLayout>
LayoutPlanner::createLayout(std::uint64_t N, unsigned VaultsParallel,
                            PhysAddr Base,
                            std::uint64_t ColumnStreams) const {
  const BlockPlan Plan = plan(N, VaultsParallel, ColumnStreams);
  return std::make_unique<BlockDynamicLayout>(N, N, ElementBytes, Base,
                                              Plan.W, Plan.H);
}
