//===- layout/DataLayout.h - Matrix-to-memory layout interface --*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DataLayout decides where element (row, col) of the N x N working
/// matrix lives in the 3D memory's physical address space. Layouts must be
/// bijections from matrix coordinates onto a contiguous address range so
/// each layout can be swapped in without changing anything else; the
/// property tests enforce this.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_LAYOUT_DATALAYOUT_H
#define FFT3D_LAYOUT_DATALAYOUT_H

#include "mem3d/Address.h"

#include <cstdint>
#include <string>

namespace fft3d {

/// Identifies the layout family; used by configuration and reporting.
enum class LayoutKind {
  /// Elements of a matrix row are contiguous (the paper's baseline).
  RowMajor,
  /// Elements of a matrix column are contiguous (ideal for phase 2 alone,
  /// pathological for phase 1; used in ablations).
  ColMajor,
  /// Tile-based mapping of Akin et al. [2]: row-buffer-sized tiles stored
  /// contiguously (the related-work baseline).
  Tiled,
  /// The paper's contribution: w x h blocks, h from Eq. 1, blocks skewed
  /// across vaults.
  BlockDynamic,
};

const char *layoutKindName(LayoutKind Kind);

/// Abstract mapping from matrix coordinates to physical byte addresses.
class DataLayout {
public:
  /// \p NumRows x \p NumCols matrix of \p ElementBytes -byte elements laid
  /// out starting at physical address \p Base.
  DataLayout(std::uint64_t NumRows, std::uint64_t NumCols,
             unsigned ElementBytes, PhysAddr Base);
  virtual ~DataLayout();

  std::uint64_t numRows() const { return NumRows; }
  std::uint64_t numCols() const { return NumCols; }
  unsigned elementBytes() const { return ElementBytes; }
  PhysAddr base() const { return Base; }

  /// Total footprint in bytes.
  std::uint64_t sizeBytes() const {
    return NumRows * NumCols * ElementBytes;
  }

  /// Physical address of element (\p Row, \p Col).
  virtual PhysAddr addressOf(std::uint64_t Row, std::uint64_t Col) const = 0;

  virtual LayoutKind kind() const = 0;
  virtual std::string describe() const = 0;

  /// Length in elements of the longest contiguous run that starts at
  /// (\p Row, \p Col) and continues along the matrix row. Trace generators
  /// use this to coalesce accesses into bursts.
  virtual std::uint64_t contiguousRowRun(std::uint64_t Row,
                                         std::uint64_t Col) const;

  /// Same, along the matrix column.
  virtual std::uint64_t contiguousColRun(std::uint64_t Row,
                                         std::uint64_t Col) const;

protected:
  std::uint64_t NumRows;
  std::uint64_t NumCols;
  unsigned ElementBytes;
  PhysAddr Base;
};

} // namespace fft3d

#endif // FFT3D_LAYOUT_DATALAYOUT_H
