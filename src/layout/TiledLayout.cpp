//===- layout/TiledLayout.cpp - Akin et al. tiled mapping -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/TiledLayout.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace fft3d;

TiledLayout::TiledLayout(std::uint64_t NumRows, std::uint64_t NumCols,
                         unsigned ElementBytes, PhysAddr Base,
                         std::uint64_t TileRows, std::uint64_t TileCols)
    : DataLayout(NumRows, NumCols, ElementBytes, Base), TileRows(TileRows),
      TileCols(TileCols) {
  if (TileRows == 0 || TileCols == 0 || NumRows % TileRows != 0 ||
      NumCols % TileCols != 0)
    reportFatalError("tile dimensions must be non-zero and divide the "
                     "matrix dimensions");
}

PhysAddr TiledLayout::addressOf(std::uint64_t Row, std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  const std::uint64_t TileR = Row / TileRows;
  const std::uint64_t TileC = Col / TileCols;
  const std::uint64_t InR = Row % TileRows;
  const std::uint64_t InC = Col % TileCols;
  const std::uint64_t TilesPerRow = NumCols / TileCols;
  const std::uint64_t TileIndex = TileR * TilesPerRow + TileC;
  const std::uint64_t TileElems = TileRows * TileCols;
  const std::uint64_t Offset = TileIndex * TileElems + InR * TileCols + InC;
  return Base + Offset * ElementBytes;
}

std::string TiledLayout::describe() const {
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer), "tiled %llux%llu (row-major tiles)",
                static_cast<unsigned long long>(TileRows),
                static_cast<unsigned long long>(TileCols));
  return Buffer;
}

std::uint64_t TiledLayout::contiguousRowRun(std::uint64_t Row,
                                            std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  return TileCols - Col % TileCols;
}

std::uint64_t TiledLayout::contiguousColRun(std::uint64_t Row,
                                            std::uint64_t Col) const {
  assert(Row < NumRows && Col < NumCols && "element out of range");
  // Column-adjacent elements within a tile are TileCols apart, never
  // contiguous unless the tile is a single column wide.
  if (TileCols == 1)
    return TileRows - Row % TileRows;
  return 1;
}

TiledLayout TiledLayout::forRowBuffer(std::uint64_t NumRows,
                                      std::uint64_t NumCols,
                                      unsigned ElementBytes, PhysAddr Base,
                                      std::uint64_t RowBufferBytes) {
  const std::uint64_t TileElems = RowBufferBytes / ElementBytes;
  assert(isPowerOf2(TileElems) && "row buffer must hold 2^k elements");
  // Split the tile as evenly as possible: rows get the larger half so the
  // column phase sees the longer same-row run.
  const unsigned Bits = log2Exact(TileElems);
  std::uint64_t TileRows = 1ULL << ((Bits + 1) / 2);
  std::uint64_t TileCols = TileElems / TileRows;
  TileRows = std::min<std::uint64_t>(TileRows, NumRows);
  TileCols = std::min<std::uint64_t>(TileElems / TileRows, NumCols);
  return TiledLayout(NumRows, NumCols, ElementBytes, Base, TileRows, TileCols);
}
