//===- layout/TiledLayout.h - Akin et al. tiled mapping ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The related-work baseline (Akin, Milder, Franchetti, Hoe, FCCM 2012,
/// reference [2] of the paper): the N x N array is divided into
/// TileRows x TileCols tiles whose elements are stored contiguously, with
/// tiles themselves in row-major order. Bandwidth utilization is maximized
/// when one tile fills exactly one DRAM row buffer; the cost the paper
/// criticizes is the on-chip transposition needed at tile granularity.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_LAYOUT_TILEDLAYOUT_H
#define FFT3D_LAYOUT_TILEDLAYOUT_H

#include "layout/DataLayout.h"

namespace fft3d {

/// Tile-contiguous layout; tiles are row-major within and across.
class TiledLayout : public DataLayout {
public:
  /// Tile dimensions must divide the matrix dimensions.
  TiledLayout(std::uint64_t NumRows, std::uint64_t NumCols,
              unsigned ElementBytes, PhysAddr Base, std::uint64_t TileRows,
              std::uint64_t TileCols);

  std::uint64_t tileRows() const { return TileRows; }
  std::uint64_t tileCols() const { return TileCols; }

  PhysAddr addressOf(std::uint64_t Row, std::uint64_t Col) const override;
  LayoutKind kind() const override { return LayoutKind::Tiled; }
  std::string describe() const override;
  std::uint64_t contiguousRowRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
  std::uint64_t contiguousColRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;

  /// Builds the square-ish tile shape Akin et al. recommend: a tile holds
  /// exactly \p RowBufferBytes of data, split as evenly as possible.
  static TiledLayout forRowBuffer(std::uint64_t NumRows, std::uint64_t NumCols,
                                  unsigned ElementBytes, PhysAddr Base,
                                  std::uint64_t RowBufferBytes);

private:
  std::uint64_t TileRows;
  std::uint64_t TileCols;
};

} // namespace fft3d

#endif // FFT3D_LAYOUT_TILEDLAYOUT_H
