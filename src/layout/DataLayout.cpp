//===- layout/DataLayout.cpp - Matrix-to-memory layout interface ----------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "layout/DataLayout.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace fft3d;

const char *fft3d::layoutKindName(LayoutKind Kind) {
  switch (Kind) {
  case LayoutKind::RowMajor:
    return "row-major";
  case LayoutKind::ColMajor:
    return "col-major";
  case LayoutKind::Tiled:
    return "tiled";
  case LayoutKind::BlockDynamic:
    return "block-dynamic";
  }
  fft3d_unreachable("unknown LayoutKind");
}

DataLayout::DataLayout(std::uint64_t NumRows, std::uint64_t NumCols,
                       unsigned ElementBytes, PhysAddr Base)
    : NumRows(NumRows), NumCols(NumCols), ElementBytes(ElementBytes),
      Base(Base) {
  assert(NumRows != 0 && NumCols != 0 && "degenerate matrix");
  assert(isPowerOf2(ElementBytes) && "element size must be a power of two");
}

DataLayout::~DataLayout() = default;

std::uint64_t DataLayout::contiguousRowRun(std::uint64_t Row,
                                           std::uint64_t Col) const {
  // Generic (slow) fallback: walk until the addresses stop being adjacent.
  std::uint64_t Run = 1;
  PhysAddr Prev = addressOf(Row, Col);
  while (Col + Run < NumCols) {
    const PhysAddr Next = addressOf(Row, Col + Run);
    if (Next != Prev + ElementBytes)
      break;
    Prev = Next;
    ++Run;
  }
  return Run;
}

std::uint64_t DataLayout::contiguousColRun(std::uint64_t Row,
                                           std::uint64_t Col) const {
  std::uint64_t Run = 1;
  PhysAddr Prev = addressOf(Row, Col);
  while (Row + Run < NumRows) {
    const PhysAddr Next = addressOf(Row + Run, Col);
    if (Next != Prev + ElementBytes)
      break;
    Prev = Next;
    ++Run;
  }
  return Run;
}
