//===- layout/BlockDynamicLayout.h - The paper's dynamic layout -*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution (§4.4): the matrix is organized into w x h
/// blocks (w columns by h rows) with w * h elements filling exactly one
/// DRAM row buffer, so fetching a block costs a single row activation.
///
/// Two properties make the layout "dynamic" and vault-friendly:
///  - w and h are chosen at run time from the memory timing parameters by
///    LayoutPlanner (Eq. 1), not fixed at design time;
///  - block-rows are cyclically skewed (block (br, bc) is stored at
///    block-slot br * Bc + ((bc + br) mod Bc)), so both the phase-1 block
///    writes (sweeping bc at fixed br) and the phase-2 block reads
///    (sweeping br at fixed bc) visit consecutive block slots modulo the
///    vault count - i.e. they round-robin all n_v vaults instead of
///    hammering one. The skew is a bijection per block-row, so the whole
///    layout remains a bijection.
///
/// The on-chip permutation network (src/permute) performs the local w x h
/// reordering between the streaming FFT kernel and the blocks.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_LAYOUT_BLOCKDYNAMICLAYOUT_H
#define FFT3D_LAYOUT_BLOCKDYNAMICLAYOUT_H

#include "layout/DataLayout.h"

namespace fft3d {

/// Block coordinates of an element under a BlockDynamicLayout.
struct BlockCoord {
  std::uint64_t BlockRow = 0;
  std::uint64_t BlockCol = 0;
  std::uint64_t InRow = 0;
  std::uint64_t InCol = 0;
};

/// w x h block layout with cyclic block-row skew.
class BlockDynamicLayout : public DataLayout {
public:
  /// \p BlockWidth (w) and \p BlockHeight (h) must divide NumCols and
  /// NumRows respectively. \p Skew enables the cyclic vault skew
  /// (disabled only in ablations).
  BlockDynamicLayout(std::uint64_t NumRows, std::uint64_t NumCols,
                     unsigned ElementBytes, PhysAddr Base,
                     std::uint64_t BlockWidth, std::uint64_t BlockHeight,
                     bool Skew = true);

  std::uint64_t blockWidth() const { return BlockWidth; }
  std::uint64_t blockHeight() const { return BlockHeight; }
  bool skewEnabled() const { return Skew; }

  /// Bytes in one block (= w * h * ElementBytes).
  std::uint64_t blockBytes() const {
    return BlockWidth * BlockHeight * ElementBytes;
  }

  /// Blocks per matrix block-row / block-column.
  std::uint64_t blocksPerRow() const { return NumCols / BlockWidth; }
  std::uint64_t blocksPerCol() const { return NumRows / BlockHeight; }

  /// Block decomposition of element (\p Row, \p Col).
  BlockCoord blockOf(std::uint64_t Row, std::uint64_t Col) const;

  /// Physical address of the first byte of block (\p BlockRow, \p BlockCol)
  /// after skew.
  PhysAddr blockBase(std::uint64_t BlockRow, std::uint64_t BlockCol) const;

  PhysAddr addressOf(std::uint64_t Row, std::uint64_t Col) const override;
  LayoutKind kind() const override { return LayoutKind::BlockDynamic; }
  std::string describe() const override;
  std::uint64_t contiguousRowRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;
  std::uint64_t contiguousColRun(std::uint64_t Row,
                                 std::uint64_t Col) const override;

private:
  std::uint64_t BlockWidth;
  std::uint64_t BlockHeight;
  bool Skew;
};

} // namespace fft3d

#endif // FFT3D_LAYOUT_BLOCKDYNAMICLAYOUT_H
