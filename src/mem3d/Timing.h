//===- mem3d/Timing.h - 3D-memory timing parameters -------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model of the 3D memory, built around the four parameters the
/// paper defines in §3.1:
///
///   t_diff_row  - minimum time between ACTIVATEs to different rows of the
///                 same bank (the classic tRC; the worst case).
///   t_diff_bank - minimum time between ACTIVATEs to different banks on the
///                 same layer of a vault (they share layer-local circuitry).
///   t_in_row    - minimum time between successive column accesses to the
///                 same open row of a bank (one TSV data beat interval).
///   t_in_vault  - minimum time between ACTIVATEs to banks on *different
///                 layers* of the same vault; the layers pipeline through
///                 the shared TSVs, so t_in_vault < t_diff_bank.
///
/// Different vaults never constrain each other ("accessing data from
/// different vaults causes zero latency" - there is no t_diff_vault).
/// Two conventional latencies complete the model: ActivateLatency (row to
/// sense amps, tRCD-like) and AccessLatency (column access + TSV hop,
/// CAS-like).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_TIMING_H
#define FFT3D_MEM3D_TIMING_H

#include "support/Units.h"

namespace fft3d {

/// Timing parameter set for the 3D memory (all durations in picoseconds).
struct Timing {
  /// TSV clock period; one beat moves Geometry::bytesPerBeat() bytes per
  /// vault. 1.6 ns = 625 MHz so a 64-TSV vault moves 8 B per beat = 5 GB/s.
  Picos TsvPeriod = nanosToPicos(1.6);

  /// ACT-to-ACT, same bank, different row (tRC).
  Picos TDiffRow = nanosToPicos(40.0);

  /// ACT-to-ACT, different banks on the same layer of one vault.
  Picos TDiffBank = nanosToPicos(16.0);

  /// Successive column accesses within one open row (data beat interval).
  Picos TInRow = nanosToPicos(1.6);

  /// ACT-to-ACT, banks on different layers of one vault.
  Picos TInVault = nanosToPicos(8.0);

  /// Row activation latency before the first column access (tRCD).
  Picos ActivateLatency = nanosToPicos(14.0);

  /// Column access + TSV traversal latency (CAS + hop).
  Picos AccessLatency = nanosToPicos(10.0);

  /// All-bank refresh period (tREFI-like): every RefreshInterval the
  /// vault is unavailable for RefreshDuration. 0 disables refresh; the
  /// calibrated experiments run without it (a ~2% rate tax), the
  /// realism tests with it.
  Picos RefreshInterval = 0;

  /// Vault-blocking duration of one all-bank refresh (tRFC-like).
  Picos RefreshDuration = nanosToPicos(160.0);

  /// In-TSV link compression: bursts move ceil(beats / ratio) beats over
  /// the TSV bundle instead of their raw beat count. 1.0 (the default)
  /// disables the codec entirely - wireBeats() is then the identity and
  /// no run can observe the knob. Values > 1.0 model a lossless layer
  /// between the vault controller and the TSVs (the
  /// irredundant/compressed-layout tradeoff the layout sweeps compare
  /// against). Must be >= 1.0.
  double TsvCompressRatio = 1.0;

  /// One-time compress + decompress pipeline latency per burst, paid at
  /// the end of the (shortened) data transfer. 0 when the codec is off.
  /// Deliberately excluded from the conservative bounds below: omitting
  /// a positive term keeps every bound a lower bound on the actual
  /// completion, which is what the sharded engine's window protocol
  /// requires.
  Picos TsvCodecLatency = 0;

  /// Beats a \p RawBeats-beat burst occupies on the TSV bundle after
  /// compression (identity when the codec is off). Every beat count used
  /// for bus occupancy, column pacing or lookahead bounds must flow
  /// through here, or the bounds diverge from the issue path and the
  /// parallel engine's windows become unsound.
  std::uint64_t wireBeats(std::uint64_t RawBeats) const {
    if (TsvCompressRatio <= 1.0 || RawBeats == 0)
      return RawBeats;
    const auto Compressed = static_cast<std::uint64_t>(
        (static_cast<double>(RawBeats) + TsvCompressRatio - 1.0) /
        TsvCompressRatio);
    return Compressed == 0 ? 1 : Compressed;
  }

  /// Per-state lookahead derivation for the sharded engine's distance-
  /// based bounds: the minimum decision-to-completion distance of a
  /// \p Beats-beat burst whose row may already be open. Every completion
  /// pays the column-access + TSV hop (AccessLatency) and then streams
  /// its beats over the vault's TSV bundle, so no request selected at
  /// decision time D can complete before D + hitPathBound(Beats).
  /// Callers pass wire beats (post-compression); the actual transfer
  /// additionally pays TsvCodecLatency, so the bound stays conservative.
  Picos hitPathBound(std::uint64_t Beats) const {
    return AccessLatency + Beats * TsvPeriod;
  }

  /// As hitPathBound, for a burst that must first activate its row
  /// (closed bank, row miss, or closed-page policy): tRCD + tCL + the
  /// TSV burst. The bank-state -> bound table lives in
  /// docs/Performance.md §2b.
  Picos missPathBound(std::uint64_t Beats) const {
    return ActivateLatency + hitPathBound(Beats);
  }

  /// Returns true if the parameters are internally consistent (non-zero
  /// beat, and the paper's ordering t_in_row <= t_in_vault <= t_diff_bank
  /// <= t_diff_row holds).
  bool isValid() const;

  /// Aborts with a diagnostic if the timing set is invalid.
  void validate() const;
};

/// Default HMC-like parameter set calibrated in DESIGN.md §6 (identical to
/// a default-constructed Timing; spelled as a function for discoverability).
Timing defaultHmcTiming();

/// A slower, conservative set (DDR3-on-TSV-like): larger activate costs,
/// same beat rate. Used by the timing-sensitivity ablation.
Timing conservativeTiming();

/// An aggressive projection: halved activation overheads.
Timing aggressiveTiming();

/// The cross-shard lookahead for the vault-sharded parallel engine: the
/// minimum simulated time between a vault-side decision and its earliest
/// observable effect on the host shard. Every completion crosses the
/// column-access + TSV + crossbar path, so AccessLatency bounds it from
/// below; intra-vault constraints (t_diff_*) never cross shards and do
/// not cap the window. Host -> vault injection has zero latency and is
/// handled by sub-phase ordering inside a window instead.
Picos conservativeLookahead(const Timing &T);

} // namespace fft3d

#endif // FFT3D_MEM3D_TIMING_H
