//===- mem3d/Address.cpp - Physical address mapping ------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Address.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cstdio>

using namespace fft3d;

const char *fft3d::addressMapKindName(AddressMapKind Kind) {
  switch (Kind) {
  case AddressMapKind::ColVaultBankRow:
    return "col-vault-bank-row";
  case AddressMapKind::ColBankVaultRow:
    return "col-bank-vault-row";
  case AddressMapKind::ColVaultRowBank:
    return "col-vault-row-bank";
  case AddressMapKind::ColRowBankVault:
    return "col-row-bank-vault";
  }
  fft3d_unreachable("unknown AddressMapKind");
}

AddressMapper::AddressMapper(const Geometry &G, AddressMapKind Kind,
                             bool XorHashRowIntoBank)
    : Geo(G), Kind(Kind), XorHash(XorHashRowIntoBank) {
  Geo.validate();
  ColBits = log2Exact(Geo.RowBufferBytes);
  VaultBits = log2Exact(Geo.NumVaults);
  BankBits = log2Exact(Geo.banksPerVault());
  RowBits = log2Exact(Geo.RowsPerBank);
}

DecodedAddr AddressMapper::decode(PhysAddr Addr) const {
  assert(Addr < Geo.capacityBytes() && "address beyond device capacity");
  DecodedAddr D;
  auto take = [&Addr](unsigned Bits) {
    const std::uint64_t Value = Addr & ((1ULL << Bits) - 1);
    Addr >>= Bits;
    return Value;
  };

  D.Column = take(ColBits);
  switch (Kind) {
  case AddressMapKind::ColVaultBankRow:
    D.Vault = static_cast<unsigned>(take(VaultBits));
    D.Bank = static_cast<unsigned>(take(BankBits));
    D.Row = take(RowBits);
    break;
  case AddressMapKind::ColBankVaultRow:
    D.Bank = static_cast<unsigned>(take(BankBits));
    D.Vault = static_cast<unsigned>(take(VaultBits));
    D.Row = take(RowBits);
    break;
  case AddressMapKind::ColVaultRowBank:
    D.Vault = static_cast<unsigned>(take(VaultBits));
    D.Row = take(RowBits);
    D.Bank = static_cast<unsigned>(take(BankBits));
    break;
  case AddressMapKind::ColRowBankVault:
    D.Row = take(RowBits);
    D.Bank = static_cast<unsigned>(take(BankBits));
    D.Vault = static_cast<unsigned>(take(VaultBits));
    break;
  }
  assert(Addr == 0 && "address wider than the decoded fields");

  if (XorHash) {
    // Permute bank and vault with the low row bits. XOR keeps the mapping
    // bijective because the row field itself is untouched.
    D.Bank = static_cast<unsigned>((D.Bank ^ D.Row) & (Geo.banksPerVault() - 1));
    D.Vault = static_cast<unsigned>((D.Vault ^ (D.Row >> BankBits)) &
                                    (Geo.NumVaults - 1));
  }
  return D;
}

PhysAddr AddressMapper::encode(const DecodedAddr &DIn) const {
  DecodedAddr D = DIn;
  assert(D.Vault < Geo.NumVaults && D.Bank < Geo.banksPerVault() &&
         D.Row < Geo.RowsPerBank && D.Column < Geo.RowBufferBytes &&
         "decoded coordinates out of range");

  if (XorHash) {
    // Invert the XOR permutation (XOR is its own inverse).
    D.Vault = static_cast<unsigned>((D.Vault ^ (D.Row >> BankBits)) &
                                    (Geo.NumVaults - 1));
    D.Bank = static_cast<unsigned>((D.Bank ^ D.Row) & (Geo.banksPerVault() - 1));
  }

  PhysAddr Addr = 0;
  unsigned Shift = 0;
  auto put = [&](std::uint64_t Value, unsigned Bits) {
    Addr |= Value << Shift;
    Shift += Bits;
  };

  put(D.Column, ColBits);
  switch (Kind) {
  case AddressMapKind::ColVaultBankRow:
    put(D.Vault, VaultBits);
    put(D.Bank, BankBits);
    put(D.Row, RowBits);
    break;
  case AddressMapKind::ColBankVaultRow:
    put(D.Bank, BankBits);
    put(D.Vault, VaultBits);
    put(D.Row, RowBits);
    break;
  case AddressMapKind::ColVaultRowBank:
    put(D.Vault, VaultBits);
    put(D.Row, RowBits);
    put(D.Bank, BankBits);
    break;
  case AddressMapKind::ColRowBankVault:
    put(D.Row, RowBits);
    put(D.Bank, BankBits);
    put(D.Vault, VaultBits);
    break;
  }
  return Addr;
}

std::string AddressMapper::describe() const {
  char Buffer[128];
  const char *Layout = nullptr;
  switch (Kind) {
  case AddressMapKind::ColVaultBankRow:
    Layout = "[col:%u][vault:%u][bank:%u][row:%u]";
    break;
  case AddressMapKind::ColBankVaultRow:
    Layout = "[col:%u][bank:%u][vault:%u][row:%u]";
    break;
  case AddressMapKind::ColVaultRowBank:
    Layout = "[col:%u][vault:%u][row:%u][bank:%u]";
    break;
  case AddressMapKind::ColRowBankVault:
    Layout = "[col:%u][row:%u][bank:%u][vault:%u]";
    break;
  }
  // The middle two field widths follow the same order as the format string;
  // pick them per kind.
  unsigned A = 0, B = 0, C = 0;
  switch (Kind) {
  case AddressMapKind::ColVaultBankRow:
    A = VaultBits, B = BankBits, C = RowBits;
    break;
  case AddressMapKind::ColBankVaultRow:
    A = BankBits, B = VaultBits, C = RowBits;
    break;
  case AddressMapKind::ColVaultRowBank:
    A = VaultBits, B = RowBits, C = BankBits;
    break;
  case AddressMapKind::ColRowBankVault:
    A = RowBits, B = BankBits, C = VaultBits;
    break;
  }
  std::snprintf(Buffer, sizeof(Buffer), Layout, ColBits, A, B, C);
  std::string Result = Buffer;
  if (XorHash)
    Result += " (xor-hashed)";
  return Result;
}
