//===- mem3d/Vault.cpp - Vault: banks + shared TSV channel ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Vault.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

Vault::Vault(const Geometry &G, const Timing &T)
    : Geo(G), Time(T), Banks(G.banksPerVault()),
      LayerNextActivate(G.LayersPerVault, 0) {}

Bank &Vault::bank(unsigned Index) {
  assert(Index < Banks.size() && "bank index out of range");
  return Banks[Index];
}

const Bank &Vault::bank(unsigned Index) const {
  assert(Index < Banks.size() && "bank index out of range");
  return Banks[Index];
}

Picos Vault::earliestActivate(unsigned Bank) const {
  const unsigned Layer = Geo.layerOfBank(Bank);
  return std::max(LayerNextActivate[Layer], VaultNextActivate);
}

void Vault::recordActivate(unsigned Bank, Picos When) {
  const unsigned Layer = Geo.layerOfBank(Bank);
  LayerNextActivate[Layer] = When + Time.TDiffBank;
  VaultNextActivate = When + Time.TInVault;
}

void Vault::reserveBus(Picos Start, Picos End) {
  assert(Start >= BusFree && "overlapping TSV bus reservation");
  assert(End >= Start && "negative bus occupancy");
  BusFree = End;
}
