//===- mem3d/TraceFile.cpp - Request-trace capture and replay -------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/TraceFile.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>

using namespace fft3d;

void fft3d::writeTrace(std::ostream &OS,
                       const std::vector<TraceRecord> &Records) {
  OS << "# fft3d memory trace v1: time_ps R|W hex_addr bytes\n";
  for (const TraceRecord &R : Records)
    OS << R.Time << ' ' << (R.IsWrite ? 'W' : 'R') << " 0x" << std::hex
       << R.Addr << std::dec << ' ' << R.Bytes << '\n';
}

bool fft3d::readTrace(std::istream &IS, std::vector<TraceRecord> &Records,
                      std::uint64_t *ErrorLine) {
  std::string Line;
  std::uint64_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream SS(Line);
    TraceRecord R;
    std::string Dir, AddrText;
    if (!(SS >> R.Time >> Dir >> AddrText >> R.Bytes) ||
        (Dir != "R" && Dir != "W") || R.Bytes == 0) {
      if (ErrorLine)
        *ErrorLine = LineNo;
      return false;
    }
    R.IsWrite = Dir == "W";
    try {
      R.Addr = std::stoull(AddrText, nullptr, 16);
    } catch (...) {
      if (ErrorLine)
        *ErrorLine = LineNo;
      return false;
    }
    Records.push_back(R);
  }
  return true;
}

TraceCapture::TraceCapture(Memory3D &Mem, EventQueue &Events) : Mem(Mem) {
  Mem.setRequestObserver(
      [this, &Events](const MemRequest &Req, const DecodedAddr &) {
        Records.push_back(
            TraceRecord{Events.now(), Req.IsWrite, Req.Addr, Req.Bytes});
      });
}

TraceCapture::~TraceCapture() { detach(); }

void TraceCapture::detach() {
  if (Attached) {
    Mem.setRequestObserver(nullptr);
    Attached = false;
  }
}

ReplayResult fft3d::replayTrace(Memory3D &Mem, EventQueue &Events,
                                const std::vector<TraceRecord> &Records,
                                bool HonorTimestamps, unsigned Window) {
  ReplayResult Result;
  if (Records.empty())
    return Result;
  const Picos Start = Events.now();
  Picos Last = Start;

  if (HonorTimestamps) {
    for (const TraceRecord &R : Records) {
      Result.Bytes += R.Bytes;
      Events.scheduleAt(Start + R.Time, [&Mem, &Last, R] {
        MemRequest Req;
        Req.IsWrite = R.IsWrite;
        Req.Addr = R.Addr;
        Req.Bytes = R.Bytes;
        Mem.submit(Req, [&Last](const MemRequest &, Picos At) {
          Last = std::max(Last, At);
        });
      });
    }
    Result.Requests = Records.size();
    Events.run();
  } else {
    if (Window == 0)
      reportFatalError("replay needs a non-zero request window");
    std::size_t Next = 0;
    unsigned InFlight = 0;
    std::function<void()> Pump = [&] {
      while (Next < Records.size() && InFlight < Window) {
        const TraceRecord &R = Records[Next++];
        Result.Bytes += R.Bytes;
        ++Result.Requests;
        ++InFlight;
        MemRequest Req;
        Req.IsWrite = R.IsWrite;
        Req.Addr = R.Addr;
        Req.Bytes = R.Bytes;
        Mem.submit(Req, [&](const MemRequest &, Picos At) {
          Last = std::max(Last, At);
          --InFlight;
          Pump();
        });
      }
    };
    Pump();
    Events.run();
  }

  Result.Elapsed = Last > Start ? Last - Start : 0;
  Result.AchievedGBps = bytesOverPicosToGBps(Result.Bytes, Result.Elapsed);
  return Result;
}
