//===- mem3d/Timing.cpp - 3D-memory timing parameters ---------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Timing.h"

#include "support/ErrorHandling.h"

using namespace fft3d;

bool Timing::isValid() const {
  if (TsvPeriod == 0 || TInRow == 0)
    return false;
  if (RefreshInterval != 0 && RefreshDuration >= RefreshInterval)
    return false;
  // The codec can only shorten bursts; a ratio below one would make the
  // "compressed" transfer longer than the raw one and break the
  // wire-beats <= raw-beats assumption the lookahead bounds rely on.
  if (TsvCompressRatio < 1.0)
    return false;
  // The paper's latency ordering (§3.1): same-row access is fastest, then
  // cross-layer pipelined ACTs, then same-layer bank ACTs, then same-bank
  // row conflicts.
  return TInRow <= TInVault && TInVault <= TDiffBank && TDiffBank <= TDiffRow;
}

void Timing::validate() const {
  if (TsvCompressRatio < 1.0)
    reportFatalError("invalid 3D-memory timing: TSV compression ratio must "
                     "be >= 1.0 (1.0 disables the codec)");
  if (!isValid())
    reportFatalError("invalid 3D-memory timing: require 0 < t_in_row <= "
                     "t_in_vault <= t_diff_bank <= t_diff_row");
}

Timing fft3d::defaultHmcTiming() { return Timing(); }

Timing fft3d::conservativeTiming() {
  Timing T;
  T.TDiffRow = nanosToPicos(50.0);
  T.TDiffBank = nanosToPicos(24.0);
  T.TInVault = nanosToPicos(12.0);
  T.ActivateLatency = nanosToPicos(18.0);
  T.AccessLatency = nanosToPicos(14.0);
  return T;
}

Timing fft3d::aggressiveTiming() {
  Timing T;
  T.TDiffRow = nanosToPicos(20.0);
  T.TDiffBank = nanosToPicos(8.0);
  T.TInVault = nanosToPicos(4.0);
  T.ActivateLatency = nanosToPicos(7.0);
  T.AccessLatency = nanosToPicos(5.0);
  return T;
}

Picos fft3d::conservativeLookahead(const Timing &T) {
  // Both completion paths respect this bound: a normal issue finishes no
  // earlier than CmdTime + AccessLatency, and an offline-vault failure
  // completes exactly AccessLatency after the decision (the request still
  // made the TSV round trip). Memory3D cross-checks the bound at
  // construction so a future timing change cannot silently shrink the
  // real minimum below the window width.
  return T.AccessLatency;
}
