//===- mem3d/TraceFile.h - Request-trace capture and replay -----*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny text trace format so external workloads can be run through the
/// simulator (and fft3d-generated traffic can be inspected with ordinary
/// tools). One record per line:
///
///   <time_ps> <R|W> <hex address> <bytes>
///
/// Lines starting with '#' are comments. Capture attaches to a Memory3D
/// via its request observer; replay submits the records at their
/// recorded times (or back to back with a window, for rate measurement).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_TRACEFILE_H
#define FFT3D_MEM3D_TRACEFILE_H

#include "mem3d/Memory3D.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace fft3d {

/// One trace record.
struct TraceRecord {
  Picos Time = 0;
  bool IsWrite = false;
  PhysAddr Addr = 0;
  std::uint32_t Bytes = 8;

  bool operator==(const TraceRecord &Other) const = default;
};

/// Serializes records to the text format.
void writeTrace(std::ostream &OS, const std::vector<TraceRecord> &Records);

/// Parses the text format. Returns false (and stops) on a malformed
/// line; \p ErrorLine receives its 1-based number when non-null.
bool readTrace(std::istream &IS, std::vector<TraceRecord> &Records,
               std::uint64_t *ErrorLine = nullptr);

/// Captures every request submitted to \p Mem (via the request observer)
/// until detach() or destruction.
class TraceCapture {
public:
  explicit TraceCapture(Memory3D &Mem, EventQueue &Events);
  ~TraceCapture();

  TraceCapture(const TraceCapture &) = delete;
  TraceCapture &operator=(const TraceCapture &) = delete;

  const std::vector<TraceRecord> &records() const { return Records; }

  /// Stops capturing (clears the observer).
  void detach();

private:
  Memory3D &Mem;
  bool Attached = true;
  std::vector<TraceRecord> Records;
};

/// Outcome of a replay.
struct ReplayResult {
  std::uint64_t Requests = 0;
  std::uint64_t Bytes = 0;
  Picos Elapsed = 0;
  double AchievedGBps = 0.0;
};

/// Replays \p Records into \p Mem. With \p HonorTimestamps, each request
/// is submitted at its recorded time; otherwise requests are issued as
/// fast as \p Window outstanding requests allow (rate measurement mode).
ReplayResult replayTrace(Memory3D &Mem, EventQueue &Events,
                         const std::vector<TraceRecord> &Records,
                         bool HonorTimestamps = true, unsigned Window = 64);

} // namespace fft3d

#endif // FFT3D_MEM3D_TRACEFILE_H
