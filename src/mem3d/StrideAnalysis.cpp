//===- mem3d/StrideAnalysis.cpp - Strided-stream structure ----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/StrideAnalysis.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

using namespace fft3d;

StrideProfile fft3d::analyzeStride(const AddressMapper &Mapper, PhysAddr Base,
                                   std::uint64_t StrideBytes,
                                   std::uint64_t Accesses) {
  assert(Accesses != 0 && "empty analysis horizon");
  const std::uint64_t Capacity = Mapper.geometry().capacityBytes();

  StrideProfile Profile;
  Profile.Accesses = Accesses;

  struct BankState {
    std::uint64_t LastIndex = 0;
    std::uint64_t LastRow = 0;
    std::uint64_t Visits = 0;
    std::uint64_t GapSum = 0;
    std::uint64_t RowChanges = 0;
  };
  std::map<std::pair<unsigned, unsigned>, BankState> Banks;
  std::map<unsigned, unsigned> VaultLastLayer;
  std::uint64_t SameLayerTransitions = 0, VaultTransitions = 0;
  const Geometry &Geo = Mapper.geometry();

  for (std::uint64_t I = 0; I != Accesses; ++I) {
    const PhysAddr Addr = (Base + I * StrideBytes) % Capacity;
    const DecodedAddr D = Mapper.decode(Addr);
    const unsigned Layer = Geo.layerOfBank(D.Bank);
    auto [VaultIt, FirstVisit] = VaultLastLayer.try_emplace(D.Vault, Layer);
    if (!FirstVisit) {
      ++VaultTransitions;
      if (VaultIt->second == Layer)
        ++SameLayerTransitions;
      VaultIt->second = Layer;
    }
    BankState &B = Banks[{D.Vault, D.Bank}];
    if (B.Visits != 0) {
      B.GapSum += I - B.LastIndex;
      if (B.LastRow != D.Row)
        ++B.RowChanges;
    }
    B.LastIndex = I;
    B.LastRow = D.Row;
    ++B.Visits;
  }

  Profile.DistinctVaults = static_cast<unsigned>(VaultLastLayer.size());
  Profile.DistinctBanks = static_cast<unsigned>(Banks.size());
  Profile.SameLayerTransitionFraction =
      VaultTransitions == 0 ? 0.0
                            : static_cast<double>(SameLayerTransitions) /
                                  static_cast<double>(VaultTransitions);

  std::uint64_t GapSum = 0, GapCount = 0, RowChanges = 0, Revisits = 0;
  for (const auto &[Key, B] : Banks) {
    GapSum += B.GapSum;
    GapCount += B.Visits - 1;
    RowChanges += B.RowChanges;
    Revisits += B.Visits - 1;
  }
  Profile.MeanSameBankGap =
      GapCount == 0 ? static_cast<double>(Accesses)
                    : static_cast<double>(GapSum) /
                          static_cast<double>(GapCount);
  Profile.RowMissFraction =
      Revisits == 0 ? 0.0
                    : static_cast<double>(RowChanges) /
                          static_cast<double>(Accesses);
  return Profile;
}

double fft3d::predictStridedAccessRate(const StrideProfile &Profile,
                                       const Timing &Time, unsigned Window) {
  assert(Window != 0 && "zero-window front end");
  const double RoundTripNs = picosToNanos(
      Time.ActivateLatency + Time.AccessLatency + Time.TsvPeriod);

  // Window bound: W requests in flight over one round trip each.
  const double WindowRate = Window / RoundTripNs;

  // Bank bound: each ACT to the same bank needs t_diff_row; a bank sees
  // one access per MeanSameBankGap stream accesses. Only row-changing
  // revisits pay it (RowMissFraction of the stream).
  double BankRate = std::numeric_limits<double>::infinity();
  if (Profile.RowMissFraction > 0.0)
    BankRate = Profile.MeanSameBankGap / picosToNanos(Time.TDiffRow);

  // Vault bound: consecutive ACTs within a vault space at t_diff_bank
  // when the banks share a layer and pipeline at t_in_vault otherwise;
  // the profile knows the mix.
  const double MeanActSpacingNs =
      Profile.SameLayerTransitionFraction * picosToNanos(Time.TDiffBank) +
      (1.0 - Profile.SameLayerTransitionFraction) *
          picosToNanos(Time.TInVault);
  const double VaultRate =
      Profile.DistinctVaults / std::max(MeanActSpacingNs, 1e-9);

  // Command bound: one command per TSV period per touched vault.
  const double CommandRate =
      Profile.DistinctVaults / picosToNanos(Time.TsvPeriod);

  return std::min({WindowRate, BankRate, VaultRate, CommandRate});
}
