//===- mem3d/Bank.h - DRAM bank state machine -------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-bank state: which row (if any) is latched in the row buffer, and
/// the earliest times the bank may accept another ACTIVATE or another
/// column access. The controller owns all scheduling decisions; the bank
/// only records the consequences.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_BANK_H
#define FFT3D_MEM3D_BANK_H

#include "support/Units.h"

#include <cstdint>
#include <optional>

namespace fft3d {

/// State of one DRAM bank.
class Bank {
public:
  /// Row currently held in the row buffer, if any.
  std::optional<std::uint64_t> openRow() const { return OpenRow; }

  /// Earliest time the next ACTIVATE to this bank may issue (t_diff_row
  /// after the previous one).
  Picos nextActivateTime() const { return NextActivate; }

  /// Earliest time the next column access to this bank may issue.
  Picos nextColumnTime() const { return NextColumn; }

  /// Returns true if \p Row is open in the row buffer.
  bool isRowHit(std::uint64_t Row) const {
    return OpenRow.has_value() && *OpenRow == Row;
  }

  /// Records an ACTIVATE of \p Row at \p When with same-bank spacing
  /// \p TDiffRow.
  void recordActivate(std::uint64_t Row, Picos When, Picos TDiffRow) {
    OpenRow = Row;
    NextActivate = When + TDiffRow;
  }

  /// Records a column burst whose first column command issued at \p CmdTime
  /// and which occupies the bank column path for \p Beats beats of
  /// \p TInRow each.
  void recordColumnBurst(Picos CmdTime, std::uint64_t Beats, Picos TInRow) {
    NextColumn = CmdTime + Beats * TInRow;
  }

  /// Closes the row buffer (closed-page policy / precharge).
  void closeRow() { OpenRow.reset(); }

private:
  std::optional<std::uint64_t> OpenRow;
  Picos NextActivate = 0;
  Picos NextColumn = 0;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_BANK_H
