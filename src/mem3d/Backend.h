//===- mem3d/Backend.h - One memory stack behind a seam ---------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-backend seam: a Backend is one complete 3D-memory stack
/// together with the simulation engine that drives it. Everything above
/// this interface (phase engines, processors, the cluster layer) talks to
/// a stack only through it, so one process can host S independent stacks
/// - each with its own ShardedEventQueue, its own vault controllers and
/// its own simulated clock - without the single-stack code paths knowing.
///
/// StackBackend is the concrete device-backed implementation. Its
/// construction order (engine first, then the device on that engine) is
/// exactly the order the single-stack processors used before the seam
/// existed, so extracting it changes no observable behavior: byte-for-byte
/// identical stats, traces and reports.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_BACKEND_H
#define FFT3D_MEM3D_BACKEND_H

#include "mem3d/Memory3D.h"
#include "sim/ShardedEventQueue.h"

namespace fft3d {

/// Interface over one memory stack: the device plus the engine that
/// advances its simulated time. Implementations own both; callers hold
/// references only for the backend's lifetime.
class Backend {
public:
  virtual ~Backend();

  /// Stable identifier of this stack within its cluster (0 for the lone
  /// stack of a single-stack run).
  virtual unsigned id() const = 0;

  /// The stack's memory device.
  virtual Memory3D &memory() = 0;

  /// The host-shard event queue: submissions, completions and phase
  /// wakeups for this stack all execute here.
  virtual EventQueue &events() = 0;

  /// The vault-sharded engine driving this stack.
  virtual ShardedEventQueue &engine() = 0;

  /// This stack's current simulated time (host-shard clock).
  Picos now() const { return const_cast<Backend *>(this)->events().now(); }
};

/// One simulated 3D-memory stack: a vault-sharded conservative engine
/// plus a Memory3D built on it. Not copyable or movable (the device holds
/// references into the engine).
class StackBackend final : public Backend {
public:
  /// Builds the stack: the engine gets one shard per vault, the device's
  /// conservative lookahead, and \p SimThreads workers; the device is
  /// then built on that engine. \p Id names the stack in multi-stack
  /// runs (labels, trace pids).
  ///
  /// A fault spec with per-stack sections or cluster directives is
  /// scoped before it reaches the device: the device sees only the
  /// vault-level directives that apply to stack \p Id (unscoped
  /// directives apply to every stack). A plain single-stack spec is
  /// passed through untouched.
  explicit StackBackend(const MemoryConfig &Config, unsigned SimThreads = 1,
                        unsigned Id = 0);

  StackBackend(const StackBackend &) = delete;
  StackBackend &operator=(const StackBackend &) = delete;

  unsigned id() const override { return StackId; }
  Memory3D &memory() override { return Mem; }
  EventQueue &events() override { return Engine.host(); }
  ShardedEventQueue &engine() override { return Engine; }

private:
  /// Returns \p Config with its fault spec narrowed to stack \p Id's
  /// view (identity when no narrowing is needed, preserving the shared
  /// spec pointer and the fault-free fast path).
  static MemoryConfig scopedToStack(const MemoryConfig &Config, unsigned Id);

  unsigned StackId;
  ShardedEventQueue Engine;
  Memory3D Mem;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_BACKEND_H
