//===- mem3d/MemStats.h - Memory simulator statistics -----------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the benchmark harness reads out of the memory simulator:
/// traffic, row-buffer behaviour, TSV occupancy and request latency. These
/// are exactly the quantities the paper's evaluation reasons about (row
/// activations, bandwidth utilization, latency).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_MEMSTATS_H
#define FFT3D_MEM3D_MEMSTATS_H

#include "obs/Metrics.h"
#include "support/Stats.h"
#include "support/Units.h"

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

namespace fft3d {

/// Per-vault traffic and row-buffer counters.
struct VaultStats {
  std::uint64_t Reads = 0;
  std::uint64_t Writes = 0;
  std::uint64_t BytesRead = 0;
  std::uint64_t BytesWritten = 0;
  std::uint64_t RowActivations = 0;
  std::uint64_t RowHits = 0;
  std::uint64_t RowMisses = 0;
  /// Commands pushed out of a periodic refresh window.
  std::uint64_t RefreshStalls = 0;
  /// Total time the vault's TSV bus carried data.
  Picos BusBusy = 0;
  /// Fault-injection counters (all zero without a fault spec).
  /// Reads that paid an ECC retry penalty.
  std::uint64_t EccRetries = 0;
  /// Commands pushed out of a thermal-throttle pause window.
  std::uint64_t ThrottleStalls = 0;
  /// Requests redirected to this vault's spare because it was offline at
  /// submit time (counted on the failed vault).
  std::uint64_t OfflineRedirects = 0;
  /// Queued requests completed with Failed=true because the vault went
  /// offline before they issued.
  std::uint64_t OfflineFailed = 0;

  std::uint64_t totalBytes() const { return BytesRead + BytesWritten; }
  std::uint64_t totalAccesses() const { return Reads + Writes; }

  /// Row-buffer hit rate in [0, 1]; 0 when there were no accesses.
  double hitRate() const;

  void merge(const VaultStats &Other);
};

/// Aggregate statistics for the whole device.
class MemStats {
public:
  explicit MemStats(unsigned NumVaults);

  VaultStats &vault(unsigned Index);
  const VaultStats &vault(unsigned Index) const;
  unsigned numVaults() const { return static_cast<unsigned>(Vaults.size()); }

  /// Sum over all vaults.
  VaultStats total() const;

  /// Records a completed request's latency (enqueue to last beat).
  void recordLatency(Picos Latency) {
    LatencyStat.addSample(picosToNanos(Latency));
  }

  /// Request latency statistics, in nanoseconds.
  const RunningStat &latencyNanos() const { return LatencyStat; }

  /// Mutable access for the controllers that feed the latency statistic.
  RunningStat &latencyStatForUpdate() { return LatencyStat; }

  /// Enables a latency histogram (\p BucketNanos-wide buckets); the
  /// controllers then feed it alongside the running statistic. Replaces
  /// any previous histogram.
  void enableLatencyHistogram(double BucketNanos, unsigned NumBuckets);

  /// The histogram, or nullptr when not enabled.
  const Histogram *latencyHistogram() const { return LatencyHist.get(); }
  Histogram *latencyHistogramForUpdate() { return LatencyHist.get(); }

  /// Latency percentile in nanoseconds (0 when no histogram is enabled).
  double latencyPercentileNanos(double Fraction) const;

  /// Switches latency recording to per-vault shards for the sharded
  /// parallel engine: each controller feeds only its own vault's
  /// RunningStat/Histogram (no cross-thread writes), and
  /// foldLatencyShards() merges them in vault order - a fixed floating-
  /// point summation order, so the folded result is bit-identical for
  /// any thread count.
  void enableLatencyShards();
  bool latencyShardsEnabled() const { return !LatencyShards.empty(); }

  /// Vault \p Index's latency shard (sharding must be enabled).
  RunningStat &latencyShard(unsigned Index);
  /// Vault \p Index's histogram shard, or nullptr when no histogram is
  /// enabled.
  Histogram *latencyHistogramShard(unsigned Index);

  /// Merges every shard into the device-wide statistic in vault order
  /// and empties the shards. No-op when sharding is off; call at phase
  /// boundaries before reading latencyNanos().
  void foldLatencyShards();

  /// Achieved bandwidth over \p Elapsed, in GB/s.
  double achievedGBps(Picos Elapsed) const;

  /// Mean TSV-bus occupancy over \p Elapsed, in [0, 1].
  double busUtilization(Picos Elapsed) const;

  void reset();

  /// Prints a short human-readable summary.
  void print(std::ostream &OS, Picos Elapsed) const;

  /// Adds the current counter values into \p Registry under "mem.*",
  /// per-vault (labeled vault=V) and as device totals. Counters add on
  /// export, so call this once per measurement interval - e.g. at the
  /// end of a phase, before reset() - and the registry accumulates
  /// across intervals. Latency lands as gauges (mean/max ns) plus a
  /// sample-count counter.
  void exportTo(MetricsRegistry &Registry) const;

  /// As above, with \p Extra labels merged into every exported metric.
  /// Multi-stack runs pass {{"stack", S}} so S devices' "mem.*" series
  /// stay distinct (the per-vault label becomes {stack=S, vault=V}) and
  /// snapshots merge deterministically instead of colliding. The
  /// empty-label overload above is the unchanged single-stack spelling.
  void exportTo(MetricsRegistry &Registry, const MetricLabels &Extra) const;

private:
  /// One vault's private latency accumulator, cache-line padded because
  /// adjacent vaults' controllers feed them from different threads.
  struct alignas(64) LatencyShard {
    RunningStat Stat;
    std::unique_ptr<Histogram> Hist;
  };

  std::vector<VaultStats> Vaults;
  RunningStat LatencyStat;
  std::unique_ptr<Histogram> LatencyHist;
  std::vector<LatencyShard> LatencyShards;
  /// Histogram geometry, remembered so enableLatencyShards and
  /// enableLatencyHistogram compose in either call order.
  double HistBucketNanos = 0;
  unsigned HistNumBuckets = 0;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_MEMSTATS_H
