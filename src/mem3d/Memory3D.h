//===- mem3d/Memory3D.h - Top-level 3D memory device ------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete 3D-stacked memory device (paper Fig. 1): an address mapper
/// in front of V independent vaults, each with its own controller. This is
/// the substrate every experiment runs on; the FPGA side submits timed
/// read/write bursts and receives completion callbacks through the shared
/// event queue.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_MEMORY3D_H
#define FFT3D_MEM3D_MEMORY3D_H

#include "fault/FaultInjector.h"
#include "mem3d/Address.h"
#include "mem3d/MemStats.h"
#include "mem3d/MemoryController.h"
#include "mem3d/Request.h"
#include "sim/EventQueue.h"

#include <memory>
#include <vector>

namespace fft3d {

/// Configuration of a Memory3D instance.
struct MemoryConfig {
  Geometry Geo;
  Timing Time;
  AddressMapKind MapKind = AddressMapKind::ColVaultBankRow;
  bool XorHash = false;
  SchedulePolicy Sched = SchedulePolicy::FrFcfs;
  PagePolicy Page = PagePolicy::OpenPage;
  /// Optional fault schedule. Null (the default) is the zero-overhead
  /// off path: no injector is built and every timing decision is
  /// bit-identical to the fault-free model.
  std::shared_ptr<const FaultSpec> Faults;
};

/// The 3D memory device model.
class Memory3D {
public:
  Memory3D(EventQueue &Events, const MemoryConfig &Config);

  /// Builds the device on the vault-sharded parallel engine: vault V's
  /// controller schedules into \p Engine's shard V, completions cross
  /// back to the host shard through the engine's outboxes, and latency
  /// samples go to per-vault shards folded at phase boundaries. The
  /// engine must have exactly NumVaults shards and a lookahead no wider
  /// than the device's real minimum cross-shard latency
  /// (conservativeLookahead(Time)).
  Memory3D(ShardedEventQueue &Engine, const MemoryConfig &Config);
  ~Memory3D();

  // Not copyable or movable: controllers hold references into the device.
  Memory3D(const Memory3D &) = delete;
  Memory3D &operator=(const Memory3D &) = delete;

  const MemoryConfig &config() const { return Config; }
  const AddressMapper &mapper() const { return Mapper; }
  const Geometry &geometry() const { return Config.Geo; }
  const Timing &timing() const { return Config.Time; }

  /// Theoretical peak bandwidth of the device in GB/s: every vault's TSV
  /// bundle streaming a beat per TSV clock.
  double peakBandwidthGBps() const;

  /// Observer invoked for every submitted request with its decoded
  /// coordinates; used by tests and trace studies. Null disables.
  using RequestObserver =
      std::function<void(const MemRequest &, const DecodedAddr &)>;

  /// Installs (or clears, with nullptr) the request observer.
  void setRequestObserver(RequestObserver Observer) {
    this->Observer = std::move(Observer);
  }

  /// Submits a request; \p Done fires when its last data beat completes.
  /// The request must lie within one row buffer (callers split bursts).
  void submit(const MemRequest &Req, MemCallback Done);

  /// Splits an arbitrary [Addr, Addr+Bytes) transfer into row-buffer-sized
  /// requests and submits them all; \p Done fires once per piece.
  /// Returns the number of requests submitted.
  unsigned submitSpan(PhysAddr Addr, std::uint64_t Bytes, bool IsWrite,
                      MemCallback Done);

  /// Total requests queued in all vault controllers.
  std::size_t pendingRequests() const;

  /// Deepest any single vault controller queue has been.
  std::size_t maxQueueDepth() const;

  MemStats &stats() { return Stats; }
  const MemStats &stats() const { return Stats; }

  /// Attaches a timeline tracer to the device and all its vault
  /// controllers; null detaches. \p Pid selects the process track.
  void setTracer(Tracer *T, std::uint32_t Pid = 0);

  /// The fault oracle, or nullptr when no fault spec is configured.
  const FaultInjector *faults() const { return Injector.get(); }

  /// Vaults online at \p Now (all of them without a fault spec).
  unsigned healthyVaults(Picos Now) const {
    return Injector ? Injector->healthyVaults(Now) : Config.Geo.NumVaults;
  }

private:
  Memory3D(EventQueue &Events, const MemoryConfig &Config,
           ShardedEventQueue *Sharded);

  /// The host-side queue: submissions, redirect decisions and (in sharded
  /// mode, via the boundary merge) completions all execute here.
  EventQueue &Events;
  /// Non-null when built on the sharded engine.
  ShardedEventQueue *Sharded = nullptr;
  MemoryConfig Config;
  AddressMapper Mapper;
  MemStats Stats;
  std::unique_ptr<FaultInjector> Injector;
  std::vector<Vault> Vaults;
  std::vector<std::unique_ptr<MemoryController>> Controllers;
  /// Sharded mode only: per-vault shadow tracers the controllers record
  /// into from their worker threads, absorbed into the user's tracer in
  /// vault order at every window boundary.
  std::vector<std::unique_ptr<Tracer>> ShadowTracers;
  RequestObserver Observer;
  std::uint64_t NextRequestId = 0;
  Tracer *Trace = nullptr;
  std::uint32_t TracePid = 0;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_MEMORY3D_H
