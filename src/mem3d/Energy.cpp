//===- mem3d/Energy.cpp - 3D-memory energy model ---------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Energy.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

using namespace fft3d;

bool EnergyParams::isValid() const {
  return ActivatePJ >= 0 && ReadBeatPJ >= 0 && WriteBeatPJ >= 0 &&
         TsvBeatPJ >= 0 && StaticMilliwattsPerVault >= 0;
}

void EnergyParams::validate() const {
  if (!isValid())
    reportFatalError("energy coefficients must be non-negative");
}

double EnergyBreakdown::milliwatts(Picos Elapsed) const {
  if (Elapsed == 0)
    return 0.0;
  // pJ / ps = W; scale to mW.
  return totalPJ() / static_cast<double>(Elapsed) * 1e3;
}

void EnergyBreakdown::print(std::ostream &OS, std::uint64_t Bytes,
                            Picos Elapsed) const {
  OS << "energy: " << totalPJ() / 1e6 << " uJ total ("
     << ActivatePJ / 1e6 << " activate, " << (ReadPJ + WritePJ) / 1e6
     << " column, " << TsvPJ / 1e6 << " TSV, " << StaticPJ / 1e6
     << " static)\n"
     << "  " << picojoulesPerBit(Bytes) << " pJ/bit at "
     << milliwatts(Elapsed) << " mW average\n";
}

EnergyModel::EnergyModel(const EnergyParams &Params) : Params(Params) {
  Params.validate();
}

EnergyBreakdown EnergyModel::compute(const VaultStats &Stats, Picos Elapsed,
                                     unsigned BytesPerBeat) const {
  EnergyBreakdown E;
  const double ReadBeats = static_cast<double>(
      ceilDiv(Stats.BytesRead, BytesPerBeat));
  const double WriteBeats = static_cast<double>(
      ceilDiv(Stats.BytesWritten, BytesPerBeat));
  E.ActivatePJ = Params.ActivatePJ * static_cast<double>(Stats.RowActivations);
  E.ReadPJ = Params.ReadBeatPJ * ReadBeats;
  E.WritePJ = Params.WriteBeatPJ * WriteBeats;
  E.TsvPJ = Params.TsvBeatPJ * (ReadBeats + WriteBeats);
  // mW * ps = pJ * 1e-3.
  E.StaticPJ = Params.StaticMilliwattsPerVault *
               static_cast<double>(Elapsed) * 1e-3;
  return E;
}

EnergyBreakdown EnergyModel::compute(const MemStats &Stats, Picos Elapsed,
                                     unsigned BytesPerBeat) const {
  EnergyBreakdown Sum;
  for (unsigned V = 0; V != Stats.numVaults(); ++V) {
    const EnergyBreakdown E =
        compute(Stats.vault(V), Elapsed, BytesPerBeat);
    Sum.ActivatePJ += E.ActivatePJ;
    Sum.ReadPJ += E.ReadPJ;
    Sum.WritePJ += E.WritePJ;
    Sum.TsvPJ += E.TsvPJ;
    Sum.StaticPJ += E.StaticPJ;
  }
  return Sum;
}
