//===- mem3d/Address.h - Physical address mapping ---------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps linear physical byte addresses onto (vault, bank, row, column)
/// coordinates. The interleaving order is a first-class design choice: the
/// paper's bandwidth results depend on where the vault bits sit relative to
/// the row-offset bits, so the mapper supports several orders plus an
/// optional XOR (bank-hash) permutation, all bijective by construction.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_ADDRESS_H
#define FFT3D_MEM3D_ADDRESS_H

#include "mem3d/Geometry.h"

#include <cstdint>
#include <string>

namespace fft3d {

/// Physical byte address into the 3D memory.
using PhysAddr = std::uint64_t;

/// Decomposed address. Column is the byte offset within the row buffer;
/// Bank is the vault-local bank id (layer-major).
struct DecodedAddr {
  unsigned Vault = 0;
  unsigned Bank = 0;
  std::uint64_t Row = 0;
  std::uint64_t Column = 0;

  bool operator==(const DecodedAddr &Other) const = default;
};

/// Bit-field orders, listed from least-significant field upwards.
enum class AddressMapKind {
  /// [column][vault][bank][row] - sequential addresses round-robin all
  /// vaults at row-buffer granularity. Default: maximizes sequential
  /// bandwidth, which the row-major layout relies on in phase 1.
  ColVaultBankRow,

  /// [column][bank][vault][row] - sequential addresses sweep the banks of
  /// one vault before moving to the next vault.
  ColBankVaultRow,

  /// [column][vault][row][bank] - vault-interleaved, bank chosen by high
  /// bits; whole vault-row planes are contiguous.
  ColVaultRowBank,

  /// [column][row][bank][vault] - each bank is one big contiguous extent.
  /// The pathological mapping: no interleaving at all.
  ColRowBankVault,
};

/// Returns a human-readable name for \p Kind.
const char *addressMapKindName(AddressMapKind Kind);

/// Bijective translator between PhysAddr and DecodedAddr for a Geometry.
class AddressMapper {
public:
  /// \p XorHashRowIntoBank enables the classic bank-permutation hash
  /// (bank/vault bits XORed with low row bits) that real controllers use
  /// to spread pathological strides.
  AddressMapper(const Geometry &G, AddressMapKind Kind,
                bool XorHashRowIntoBank = false);

  const Geometry &geometry() const { return Geo; }
  AddressMapKind kind() const { return Kind; }
  bool xorHashEnabled() const { return XorHash; }

  /// Decodes a byte address. \p Addr must be < capacityBytes().
  DecodedAddr decode(PhysAddr Addr) const;

  /// Encodes coordinates back to a byte address (inverse of decode()).
  PhysAddr encode(const DecodedAddr &D) const;

  /// Describes the bit layout, e.g. "[col:13][vault:4][bank:3][row:14]".
  std::string describe() const;

private:
  Geometry Geo;
  AddressMapKind Kind;
  bool XorHash;
  unsigned ColBits;
  unsigned VaultBits;
  unsigned BankBits;
  unsigned RowBits;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_ADDRESS_H
