//===- mem3d/Energy.h - 3D-memory energy model ------------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Energy accounting for the 3D memory. The paper's companion work
/// (reference [6], "DRAM Row Activation Energy Optimization for Stride
/// Memory Access") motivates the dynamic layout as much by activation
/// *energy* as by bandwidth: a row activation senses an entire 8 KiB
/// page, so a layout that reads one 8-byte element per activation pays
/// three orders of magnitude more pJ/bit than one that drains the whole
/// row buffer.
///
/// The default coefficients are representative of low-voltage stacked
/// DRAM (HMC-class, ~3.7 pJ/bit end-to-end for streaming access, an
/// order of magnitude below DDR3's ~40 pJ/bit): ~0.9 nJ per activation
/// (activate + precharge of an 8 KiB page), per-beat column/array and
/// TSV transport energy, and per-vault background power.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_ENERGY_H
#define FFT3D_MEM3D_ENERGY_H

#include "mem3d/MemStats.h"
#include "support/Units.h"

#include <cstdint>
#include <ostream>

namespace fft3d {

/// Energy coefficients (picojoules unless noted).
struct EnergyParams {
  /// One ACTIVATE + PRECHARGE pair: sensing and restoring a full row.
  double ActivatePJ = 900.0;

  /// Column access + array read per 8-byte beat.
  double ReadBeatPJ = 18.0;

  /// Column access + array write per 8-byte beat.
  double WriteBeatPJ = 20.0;

  /// Moving one 8-byte beat across the TSV bundle (either direction).
  double TsvBeatPJ = 6.0;

  /// Background + peripheral power per vault, in milliwatts.
  double StaticMilliwattsPerVault = 30.0;

  bool isValid() const;
  void validate() const;
};

/// Per-component energy totals for one measurement window.
struct EnergyBreakdown {
  double ActivatePJ = 0.0;
  double ReadPJ = 0.0;
  double WritePJ = 0.0;
  double TsvPJ = 0.0;
  double StaticPJ = 0.0;

  double totalPJ() const {
    return ActivatePJ + ReadPJ + WritePJ + TsvPJ + StaticPJ;
  }

  /// Dynamic energy only (everything but the background term).
  double dynamicPJ() const { return totalPJ() - StaticPJ; }

  /// Energy per transferred bit over \p Bytes of traffic.
  double picojoulesPerBit(std::uint64_t Bytes) const {
    return Bytes == 0 ? 0.0 : totalPJ() / (8.0 * static_cast<double>(Bytes));
  }

  /// Average power over \p Elapsed, in milliwatts.
  double milliwatts(Picos Elapsed) const;

  void print(std::ostream &OS, std::uint64_t Bytes, Picos Elapsed) const;
};

/// Turns memory statistics into energy figures.
class EnergyModel {
public:
  explicit EnergyModel(const EnergyParams &Params = EnergyParams());

  const EnergyParams &params() const { return Params; }

  /// Energy of one vault's recorded activity over \p Elapsed.
  EnergyBreakdown compute(const VaultStats &Stats, Picos Elapsed,
                          unsigned BytesPerBeat = 8) const;

  /// Whole-device energy: sums vaults and charges static power per vault.
  EnergyBreakdown compute(const MemStats &Stats, Picos Elapsed,
                          unsigned BytesPerBeat = 8) const;

private:
  EnergyParams Params;
};

} // namespace fft3d

#endif // FFT3D_MEM3D_ENERGY_H
