//===- mem3d/Request.h - Memory request descriptor --------------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of work the FPGA side submits to the 3D memory. The simulator
/// is a timing model: requests carry addresses and sizes, not payload bytes
/// (the numeric FFT data lives in the functional layer, src/fft).
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_REQUEST_H
#define FFT3D_MEM3D_REQUEST_H

#include "mem3d/Address.h"
#include "support/Units.h"

#include <cstdint>
#include <functional>

namespace fft3d {

/// A read or write burst. A request must not cross a row-buffer boundary;
/// the trace generators split larger transfers.
struct MemRequest {
  std::uint64_t Id = 0;
  bool IsWrite = false;
  PhysAddr Addr = 0;
  std::uint32_t Bytes = 8;
  /// Set on the copy handed to the completion callback when the request
  /// could not be served (its vault went offline mid-flight under fault
  /// injection). Failed completions are retryable: the data was never
  /// transferred and the caller may resubmit after re-planning.
  bool Failed = false;
};

/// Completion notification: the request and the simulation time at which
/// its last data beat crossed the TSVs.
using MemCallback = std::function<void(const MemRequest &, Picos)>;

} // namespace fft3d

#endif // FFT3D_MEM3D_REQUEST_H
