//===- mem3d/Backend.cpp - One memory stack behind a seam -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Backend.h"

#include "fault/FaultSpec.h"

using namespace fft3d;

Backend::~Backend() = default;

MemoryConfig StackBackend::scopedToStack(const MemoryConfig &Config,
                                         unsigned Id) {
  if (!Config.Faults ||
      (!Config.Faults->hasStackScopes() && !Config.Faults->hasClusterFaults()))
    return Config;
  MemoryConfig Scoped = Config;
  Scoped.Faults = std::make_shared<FaultSpec>(
      Config.Faults->forStack(static_cast<int>(Id)));
  if (Scoped.Faults->empty())
    Scoped.Faults = nullptr;
  return Scoped;
}

StackBackend::StackBackend(const MemoryConfig &Config, unsigned SimThreads,
                           unsigned Id)
    : StackId(Id),
      Engine(Config.Geo.NumVaults, conservativeLookahead(Config.Time),
             SimThreads),
      Mem(Engine, scopedToStack(Config, Id)) {}
