//===- mem3d/Backend.cpp - One memory stack behind a seam -----------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Backend.h"

using namespace fft3d;

Backend::~Backend() = default;

StackBackend::StackBackend(const MemoryConfig &Config, unsigned SimThreads,
                           unsigned Id)
    : StackId(Id),
      Engine(Config.Geo.NumVaults, conservativeLookahead(Config.Time),
             SimThreads),
      Mem(Engine, Config) {}
