//===- mem3d/Geometry.cpp - 3D-memory organization -------------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Geometry.h"

#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

using namespace fft3d;

bool Geometry::isValid() const {
  if (!isPowerOf2(NumVaults) || !isPowerOf2(LayersPerVault) ||
      !isPowerOf2(BanksPerLayer) || !isPowerOf2(RowsPerBank) ||
      !isPowerOf2(RowBufferBytes))
    return false;
  if (NumTsvsPerVault == 0 || NumTsvsPerVault % 8 != 0)
    return false;
  if (RowBufferBytes < bytesPerBeat())
    return false;
  return true;
}

void Geometry::validate() const {
  if (!isValid())
    reportFatalError("invalid 3D-memory geometry: all structural dimensions "
                     "must be powers of two and NumTsvsPerVault a non-zero "
                     "multiple of 8 no wider than the row buffer");
}
