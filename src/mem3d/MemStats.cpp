//===- mem3d/MemStats.cpp - Memory simulator statistics -------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/MemStats.h"

#include <cassert>

using namespace fft3d;

double VaultStats::hitRate() const {
  const std::uint64_t Total = RowHits + RowMisses;
  return Total == 0 ? 0.0
                    : static_cast<double>(RowHits) / static_cast<double>(Total);
}

void VaultStats::merge(const VaultStats &Other) {
  Reads += Other.Reads;
  Writes += Other.Writes;
  BytesRead += Other.BytesRead;
  BytesWritten += Other.BytesWritten;
  RowActivations += Other.RowActivations;
  RowHits += Other.RowHits;
  RowMisses += Other.RowMisses;
  RefreshStalls += Other.RefreshStalls;
  BusBusy += Other.BusBusy;
  EccRetries += Other.EccRetries;
  ThrottleStalls += Other.ThrottleStalls;
  OfflineRedirects += Other.OfflineRedirects;
  OfflineFailed += Other.OfflineFailed;
}

MemStats::MemStats(unsigned NumVaults) : Vaults(NumVaults) {}

VaultStats &MemStats::vault(unsigned Index) {
  assert(Index < Vaults.size() && "vault index out of range");
  return Vaults[Index];
}

const VaultStats &MemStats::vault(unsigned Index) const {
  assert(Index < Vaults.size() && "vault index out of range");
  return Vaults[Index];
}

VaultStats MemStats::total() const {
  VaultStats Sum;
  for (const VaultStats &V : Vaults)
    Sum.merge(V);
  return Sum;
}

double MemStats::achievedGBps(Picos Elapsed) const {
  return bytesOverPicosToGBps(total().totalBytes(), Elapsed);
}

double MemStats::busUtilization(Picos Elapsed) const {
  if (Elapsed == 0 || Vaults.empty())
    return 0.0;
  return static_cast<double>(total().BusBusy) /
         (static_cast<double>(Elapsed) * static_cast<double>(Vaults.size()));
}

void MemStats::enableLatencyHistogram(double BucketNanos,
                                      unsigned NumBuckets) {
  LatencyHist = std::make_unique<Histogram>(BucketNanos, NumBuckets);
  HistBucketNanos = BucketNanos;
  HistNumBuckets = NumBuckets;
  for (LatencyShard &S : LatencyShards)
    S.Hist = std::make_unique<Histogram>(BucketNanos, NumBuckets);
}

double MemStats::latencyPercentileNanos(double Fraction) const {
  return LatencyHist ? LatencyHist->percentile(Fraction) : 0.0;
}

void MemStats::enableLatencyShards() {
  if (!LatencyShards.empty())
    return;
  LatencyShards = std::vector<LatencyShard>(Vaults.size());
  if (LatencyHist)
    for (LatencyShard &S : LatencyShards)
      S.Hist = std::make_unique<Histogram>(HistBucketNanos, HistNumBuckets);
}

RunningStat &MemStats::latencyShard(unsigned Index) {
  assert(Index < LatencyShards.size() && "latency shard out of range");
  return LatencyShards[Index].Stat;
}

Histogram *MemStats::latencyHistogramShard(unsigned Index) {
  assert(Index < LatencyShards.size() && "latency shard out of range");
  return LatencyShards[Index].Hist.get();
}

void MemStats::foldLatencyShards() {
  for (LatencyShard &S : LatencyShards) {
    LatencyStat.merge(S.Stat);
    S.Stat.reset();
    if (S.Hist && LatencyHist) {
      LatencyHist->merge(*S.Hist);
      S.Hist = std::make_unique<Histogram>(HistBucketNanos, HistNumBuckets);
    }
  }
}

void MemStats::reset() {
  for (VaultStats &V : Vaults)
    V = VaultStats();
  LatencyStat.reset();
  if (LatencyHist)
    enableLatencyHistogram(LatencyHist->bucketWidth(),
                           LatencyHist->numBuckets());
  for (LatencyShard &S : LatencyShards) {
    S.Stat.reset();
    if (S.Hist)
      S.Hist = std::make_unique<Histogram>(HistBucketNanos, HistNumBuckets);
  }
}

namespace {

void exportVault(MetricsRegistry &Registry, const VaultStats &V,
                 const MetricLabels &Labels) {
  Registry.counter("mem.reads", Labels).add(V.Reads);
  Registry.counter("mem.writes", Labels).add(V.Writes);
  Registry.counter("mem.bytes_read", Labels).add(V.BytesRead);
  Registry.counter("mem.bytes_written", Labels).add(V.BytesWritten);
  Registry.counter("mem.row_activations", Labels).add(V.RowActivations);
  Registry.counter("mem.row_hits", Labels).add(V.RowHits);
  Registry.counter("mem.row_misses", Labels).add(V.RowMisses);
  Registry.counter("mem.refresh_stalls", Labels).add(V.RefreshStalls);
  Registry.counter("mem.bus_busy_ps", Labels).add(V.BusBusy);
  Registry.counter("mem.ecc_retries", Labels).add(V.EccRetries);
  Registry.counter("mem.throttle_stalls", Labels).add(V.ThrottleStalls);
  Registry.counter("mem.offline_redirects", Labels).add(V.OfflineRedirects);
  Registry.counter("mem.offline_failed", Labels).add(V.OfflineFailed);
}

} // namespace

void MemStats::exportTo(MetricsRegistry &Registry) const {
  exportTo(Registry, MetricLabels());
}

void MemStats::exportTo(MetricsRegistry &Registry,
                        const MetricLabels &Extra) const {
  for (unsigned I = 0; I != numVaults(); ++I) {
    MetricLabels Labels = Extra;
    Labels.add("vault", std::to_string(I));
    exportVault(Registry, Vaults[I], Labels);
  }
  exportVault(Registry, total(), Extra);
  Registry.counter("mem.latency_samples", Extra).add(LatencyStat.count());
  Registry.gauge("mem.latency_mean_ns", Extra).set(LatencyStat.mean());
  Registry.gauge("mem.latency_max_ns", Extra).set(LatencyStat.max());
}

void MemStats::print(std::ostream &OS, Picos Elapsed) const {
  const VaultStats Sum = total();
  OS << "memory: " << Sum.totalAccesses() << " accesses, "
     << formatBytes(Sum.totalBytes()) << " moved in "
     << formatDuration(Elapsed) << "\n"
     << "  bandwidth: " << achievedGBps(Elapsed) << " GB/s, TSV occupancy "
     << busUtilization(Elapsed) * 100.0 << "%\n"
     << "  row buffer: " << Sum.RowActivations << " activations, hit rate "
     << Sum.hitRate() * 100.0 << "%\n"
     << "  latency: mean " << LatencyStat.mean() << " ns, max "
     << LatencyStat.max() << " ns over " << LatencyStat.count()
     << " requests\n";
  // Fault counters only appear under fault injection, so fault-free
  // output stays byte-identical to the pre-fault model.
  if (Sum.EccRetries != 0 || Sum.ThrottleStalls != 0 ||
      Sum.OfflineRedirects != 0 || Sum.OfflineFailed != 0)
    OS << "  faults: " << Sum.EccRetries << " ECC retries, "
       << Sum.ThrottleStalls << " throttle stalls, " << Sum.OfflineRedirects
       << " redirects, " << Sum.OfflineFailed << " failed completions\n";
}
