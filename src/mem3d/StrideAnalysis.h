//===- mem3d/StrideAnalysis.h - Strided-stream structure --------*- C++ -*-===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis of a strided access stream against an address
/// mapping: which vaults and banks the walk touches, how often it
/// revisits the same bank, and how often that revisit lands in a
/// different DRAM row. These structural quantities are what turn a
/// stride + mapping into a bandwidth number - the analytical model uses
/// them to predict strided throughput for any request window, and the
/// tests cross-check the prediction against the event-driven simulator.
///
//===----------------------------------------------------------------------===//

#ifndef FFT3D_MEM3D_STRIDEANALYSIS_H
#define FFT3D_MEM3D_STRIDEANALYSIS_H

#include "mem3d/Address.h"
#include "mem3d/Timing.h"

#include <cstdint>

namespace fft3d {

/// Structural profile of a strided walk.
struct StrideProfile {
  /// Accesses examined (the analysis horizon).
  std::uint64_t Accesses = 0;
  /// Distinct vaults touched.
  unsigned DistinctVaults = 0;
  /// Distinct (vault, bank) pairs touched.
  unsigned DistinctBanks = 0;
  /// Mean number of stream accesses between successive visits to the
  /// same (vault, bank); equals Accesses when a bank is never revisited
  /// within the horizon.
  double MeanSameBankGap = 0.0;
  /// Fraction of accesses whose target row differs from the previous
  /// access to the same bank (i.e. guaranteed row misses).
  double RowMissFraction = 0.0;
  /// Over consecutive accesses to the same vault: fraction whose bank
  /// sits on the same layer as the previous one (those ACTs space at
  /// t_diff_bank; cross-layer ones pipeline at t_in_vault).
  double SameLayerTransitionFraction = 0.0;
};

/// Walks \p Accesses addresses Base, Base+Stride, ... through \p Mapper.
StrideProfile analyzeStride(const AddressMapper &Mapper, PhysAddr Base,
                            std::uint64_t StrideBytes,
                            std::uint64_t Accesses);

/// Predicted sustained rate of the strided read stream in accesses per
/// nanosecond, for a front end with \p Window outstanding requests. The
/// rate is the tightest of four structural bounds:
///  - window:   Window / blocking round trip;
///  - bank:     same-bank ACTs must be t_diff_row apart;
///  - vault:    per-vault ACT pipelining at t_in_vault;
///  - command:  one command per TSV period per touched vault.
double predictStridedAccessRate(const StrideProfile &Profile,
                                const Timing &Time, unsigned Window);

} // namespace fft3d

#endif // FFT3D_MEM3D_STRIDEANALYSIS_H
