//===- mem3d/Memory3D.cpp - Top-level 3D memory device --------------------===//
//
// Part of the fft3d project.
//
//===----------------------------------------------------------------------===//

#include "mem3d/Memory3D.h"

#include "sim/ShardedEventQueue.h"
#include "support/ErrorHandling.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace fft3d;

Memory3D::Memory3D(EventQueue &Events, const MemoryConfig &Config)
    : Memory3D(Events, Config, nullptr) {}

Memory3D::Memory3D(ShardedEventQueue &Engine, const MemoryConfig &Config)
    : Memory3D(Engine.host(), Config, &Engine) {}

Memory3D::Memory3D(EventQueue &Events, const MemoryConfig &Config,
                   ShardedEventQueue *Sharded)
    : Events(Events), Sharded(Sharded), Config(Config),
      Mapper(Config.Geo, Config.MapKind, Config.XorHash),
      Stats(Config.Geo.NumVaults) {
  Config.Geo.validate();
  Config.Time.validate();
  if (Sharded) {
    if (Sharded->numShards() != Config.Geo.NumVaults)
      reportFatalError("sharded engine shard count must equal the vault "
                       "count - one shard per controller");
    if (Sharded->lookahead() > conservativeLookahead(Config.Time))
      reportFatalError("sharded engine lookahead exceeds the device's "
                       "minimum cross-shard latency; completions could "
                       "land inside an already-executed window");
    Stats.enableLatencyShards();
  }
  if (Config.Faults && !Config.Faults->empty())
    Injector =
        std::make_unique<FaultInjector>(*Config.Faults, Config.Geo.NumVaults);
  Vaults.reserve(Config.Geo.NumVaults);
  for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
    Vaults.emplace_back(this->Config.Geo, this->Config.Time);
  for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
    Controllers.push_back(std::make_unique<MemoryController>(
        Sharded ? Sharded->shard(V) : Events, Vaults[V], this->Config.Geo,
        this->Config.Time, Config.Sched, Config.Page, Stats.vault(V), Stats,
        Injector.get(), V, Sharded));
  if (Sharded)
    // Distance-based lookahead: each controller tells the window planner
    // how far away its earliest possible completion is, so windows widen
    // from the static AccessLatency floor to the real queue-state bound.
    for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
      Sharded->setShardBound(V, [C = Controllers[V].get()](Picos QueueNext) {
        return C->earliestCompletionBound(QueueNext);
      });
}

Memory3D::~Memory3D() {
  // The barrier hook and bound oracles capture this device; never leave
  // them dangling on an engine that outlives us.
  if (Sharded) {
    if (!ShadowTracers.empty())
      Sharded->setBarrierHook(nullptr);
    for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
      Sharded->setShardBound(V, nullptr);
  }
}

void Memory3D::setTracer(Tracer *T, std::uint32_t Pid) {
  Trace = T;
  TracePid = Pid;
  if (Sharded) {
    // Controllers execute on worker threads, so they must not write the
    // caller's tracer directly: each vault records into a private shadow,
    // and the window-boundary hook absorbs the shadows in vault order
    // while the workers are parked. The merged stream is single-writer
    // and identical for every thread count; its canonical order is
    // [window's host events][window's vault events, by vault].
    ShadowTracers.clear();
    if (T) {
      for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
        ShadowTracers.push_back(
            std::make_unique<Tracer>(T->categories(), std::size_t(1) << 12));
      Sharded->setBarrierHook([this] {
        for (auto &Shadow : ShadowTracers)
          Trace->absorb(*Shadow);
      });
    } else {
      Sharded->setBarrierHook(nullptr);
    }
    for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
      Controllers[V]->setTracer(T ? ShadowTracers[V].get() : nullptr, Pid);
  } else {
    for (auto &C : Controllers)
      C->setTracer(T, Pid);
  }
  if (T)
    for (unsigned V = 0; V != Config.Geo.NumVaults; ++V)
      T->setThreadName(Pid, V, "vault " + std::to_string(V));
}

double Memory3D::peakBandwidthGBps() const {
  const double BytesPerBeat = Config.Geo.bytesPerBeat();
  const double BeatNanos = picosToNanos(Config.Time.TsvPeriod);
  return Config.Geo.NumVaults * BytesPerBeat / BeatNanos;
}

void Memory3D::submit(const MemRequest &ReqIn, MemCallback Done) {
  MemRequest Req = ReqIn;
  if (Req.Id == 0)
    Req.Id = ++NextRequestId;
  DecodedAddr Where = Mapper.decode(Req.Addr);
  if (Injector && Injector->vaultOffline(Where.Vault, Events.now())) {
    // Post-re-plan steady state: an offline vault's blocks live on its
    // deterministic spare, so new traffic is redirected there (same bank
    // and row coordinates, a different controller). Only requests already
    // queued when a vault dies fail (see MemoryController::wake).
    const unsigned Spare = Injector->redirectVault(Where.Vault, Events.now());
    if (Spare == Where.Vault) {
      // Every vault is offline: fail fast, retryably.
      ++Stats.vault(Where.Vault).OfflineFailed;
      if (Trace && Trace->wants(TraceCatFault))
        Trace->instant(TraceCatFault, "offline_fail", TracePid, Where.Vault,
                       Events.now(), "req", Req.Id);
      if (Done) {
        Req.Failed = true;
        const Picos FailAt = Events.now() + Config.Time.AccessLatency;
        Events.scheduleAt(FailAt, [Done = std::move(Done), Req, FailAt] {
          Done(Req, FailAt);
        });
      }
      return;
    }
    ++Stats.vault(Where.Vault).OfflineRedirects;
    if (Trace && Trace->wants(TraceCatFault))
      Trace->instant(TraceCatFault, "offline_redirect", TracePid, Where.Vault,
                     Events.now(), "spare", Spare, "req", Req.Id);
    Where.Vault = Spare;
  }
  if (Observer)
    Observer(Req, Where);
  if (Sharded) {
    // Cross into the vault's shard through its inbox; the mail executes
    // at this exact host timestamp, so the controller sees the same
    // enqueue time as the sequential engine. Re-deriving the decode in
    // the shard (cheap, pure) keeps the capture inside the Action's
    // inline buffer - the submit path stays allocation-free.
    //
    // The effect bound tells the window planner how soon this request's
    // completion could echo back: it pays CAS + TSV, serializes on the
    // target vault's bus (whose reservation only extends, and is stable
    // to read here - the vault workers are parked while the host runs),
    // and streams its full burst. Under fault injection the offline-fail
    // path completes at the bare AccessLatency, so only the static floor
    // is sound there.
    const Picos NowPs = Events.now();
    Picos EffectBound = NowPs + Config.Time.AccessLatency;
    if (!Injector) {
      const std::uint64_t Beats = Config.Time.wireBeats(
          ceilDiv(Req.Bytes, Config.Geo.bytesPerBeat()));
      EffectBound =
          std::max(EffectBound, Vaults[Where.Vault].busFreeTime()) +
          Beats * Config.Time.TsvPeriod;
    }
    Sharded->postToShard(
        Where.Vault, NowPs,
        [this, Req, Vault = Where.Vault, Done = std::move(Done)]() mutable {
          DecodedAddr Where = Mapper.decode(Req.Addr);
          Where.Vault = Vault;
          Controllers[Vault]->enqueue(Req, Where, std::move(Done));
        },
        EffectBound);
    return;
  }
  Controllers[Where.Vault]->enqueue(Req, Where, std::move(Done));
}

unsigned Memory3D::submitSpan(PhysAddr Addr, std::uint64_t Bytes, bool IsWrite,
                              MemCallback Done) {
  assert(Bytes != 0 && "empty span");
  const std::uint64_t RowBytes = Config.Geo.RowBufferBytes;
  unsigned Submitted = 0;
  while (Bytes != 0) {
    const std::uint64_t Offset = Addr % RowBytes;
    const std::uint64_t Chunk = std::min(Bytes, RowBytes - Offset);
    MemRequest Req;
    Req.IsWrite = IsWrite;
    Req.Addr = Addr;
    Req.Bytes = static_cast<std::uint32_t>(Chunk);
    submit(Req, Done);
    Addr += Chunk;
    Bytes -= Chunk;
    ++Submitted;
  }
  return Submitted;
}

std::size_t Memory3D::pendingRequests() const {
  std::size_t Total = 0;
  for (const auto &C : Controllers)
    Total += C->pending();
  return Total;
}

std::size_t Memory3D::maxQueueDepth() const {
  std::size_t Max = 0;
  for (const auto &C : Controllers)
    Max = std::max(Max, C->maxQueueDepth());
  return Max;
}
